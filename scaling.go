package piranha

import (
	"fmt"
	"strings"

	"piranha/internal/core"
	"piranha/internal/stats"
)

// ScalingSweep configures RunScalingSweep: a weak-scaling sweep over
// node count on the glueless 2-D torus (ScaleOut machines), the
// simulator's reproduction of the paper's §2.6 scaling argument.
type ScalingSweep struct {
	// Nodes are the machine sizes to run. Empty selects
	// DefaultScalingNodes.
	Nodes []int
	// CPUsPerChip sets the cores per node (default 1 — the scaling
	// suite measures the interconnect and protocol, not the chip).
	CPUsPerChip int
	// PerNode is the per-node transaction budget: each point warms
	// PerNode.Warm x N and measures PerNode.Measure x N transactions,
	// so every node does the same work at every size (weak scaling).
	// The zero value selects DefaultPerNodeScale.
	PerNode Scale
	// Seed and IntraWorkers mirror the Run options and apply to every
	// point alike.
	Seed         uint64
	IntraWorkers int
}

// DefaultScalingNodes are the paper-motivated sweep points: 8 through
// the 1024-node design target.
var DefaultScalingNodes = []int{8, 64, 256, 1024}

// DefaultPerNodeScale keeps the largest point tractable: 4 measured
// transactions per node is 4096 at 1024 nodes.
var DefaultPerNodeScale = Scale{Warm: 1, Measure: 4}

// ScalingPoint is one node-count point of a scaling sweep.
type ScalingPoint struct {
	Nodes      int     `json:"nodes"`
	CPUs       int     `json:"cpus"`
	NsPerTx    float64 `json:"ns_per_tx"`
	TxPerS     float64 `json:"tx_per_s"`
	Speedup    float64 `json:"speedup"`    // throughput vs the first point
	Efficiency float64 `json:"efficiency"` // Speedup / (Nodes/Nodes[0])
	Result     Result  `json:"result"`
}

// ScalingResult is a full scaling sweep.
type ScalingResult struct {
	Name   string         `json:"name"`
	Points []ScalingPoint `json:"points"`
}

// RunScalingSweep runs one workload across ScaleOut machines at each
// cfg.Nodes size and reports throughput, speedup relative to the
// smallest machine, and parallel efficiency — the simulator's version
// of the paper's OLTP/DSS scaling curves. Points run concurrently
// (SetParallelism) yet the result is deterministic: the same seed and
// config reproduce identical curves, byte for byte, at any -jintra or
// worker count.
func RunScalingSweep(w Workload, cfg ScalingSweep) ScalingResult {
	nodes := cfg.Nodes
	if len(nodes) == 0 {
		nodes = DefaultScalingNodes
	}
	cpus := cfg.CPUsPerChip
	if cpus < 1 {
		cpus = 1
	}
	per := cfg.PerNode
	if per == (Scale{}) {
		per = DefaultPerNodeScale
	}
	name := string(w.Kind)
	if name == "" {
		name = string(core.OLTP)
	}

	exps := make([]Experiment, len(nodes))
	for i, n := range nodes {
		exps[i] = core.Experiment{
			Name:         fmt.Sprintf("%s@%dn", name, n),
			Sys:          ScaleOut(n, cpus),
			Work:         w,
			WarmTx:       per.Warm * uint64(n),
			MeasureTx:    per.Measure * uint64(n),
			Seed:         cfg.Seed,
			IntraWorkers: cfg.IntraWorkers,
		}
	}
	results := RunBatch(exps)

	pts := make([]ScalingPoint, len(results))
	for i, r := range results {
		p := ScalingPoint{
			Nodes:   nodes[i],
			CPUs:    nodes[i] * cpus,
			NsPerTx: r.TimePerTx,
			Result:  r,
		}
		if r.TimePerTx > 0 {
			p.TxPerS = 1e9 / r.TimePerTx
		}
		if base := pts[0].TxPerS; i > 0 && base > 0 {
			p.Speedup = p.TxPerS / base
			p.Efficiency = p.Speedup * float64(nodes[0]) / float64(nodes[i])
		} else if i == 0 {
			p.Speedup = 1
			p.Efficiency = 1
		}
		pts[i] = p
	}
	return ScalingResult{Name: name, Points: pts}
}

// String renders the sweep as a table plus a speedup sparkline.
func (s ScalingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scaling sweep %s (weak scaling, 2-D torus)\n", s.Name)
	fmt.Fprintf(&b, "  %-7s %-6s %-12s %-12s %-9s %s\n",
		"nodes", "cpus", "ns/tx", "tx/s", "speedup", "efficiency")
	speed := make([]float64, len(s.Points))
	for i, p := range s.Points {
		fmt.Fprintf(&b, "  %-7d %-6d %-12.0f %-12.0f %-9.2f %.2f\n",
			p.Nodes, p.CPUs, p.NsPerTx, p.TxPerS, p.Speedup, p.Efficiency)
		speed[i] = p.Speedup
	}
	fmt.Fprintf(&b, "  speedup vs nodes |%s|", stats.Sparkline(speed))
	return b.String()
}
