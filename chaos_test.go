package piranha

import (
	"encoding/json"
	"testing"
	"time"
)

// chaosPlan composes message-level faults with one fail-stop node death
// early in the measured window.
func chaosPlan() FaultPlan {
	p := testPlan()
	p.FailStop = []NodeFailure{{Node: 1, At: 10 * 1000 * 1000}} // 10 us in ps
	return p
}

func chaosCfg() ChaosSweep {
	return ChaosSweep{
		Multipliers: []float64{0.5, 1.1},
		FaultMults:  []float64{0, 1},
		Plan:        chaosPlan(),
		Arrivals:    Arrivals{Capacity: 256, RetryBudget: 2},
		Scale:       faultScale,
		Seed:        9,
		Intervals:   20 * time.Microsecond,
	}
}

func TestChaosSweepComposed(t *testing.T) {
	c := RunChaosSweep(MultiChip(2, 2), OLTP(), chaosCfg())
	if len(c.Cells) != 4 {
		t.Fatalf("grid size %d, want 4", len(c.Cells))
	}
	for li := range c.LoadMults {
		base, faulted := c.Cell(0, li), c.Cell(1, li)
		if base.MTTRNs != 0 || base.Result.Faults != nil {
			t.Fatalf("fault x0 column not fault-free: %+v", base)
		}
		if faulted.MTTRNs <= 0 {
			t.Fatalf("fail-stop cell has no MTTR: %+v", faulted)
		}
		if faulted.Result.Recovery == nil || faulted.Result.Recovery.CapacityFrac != 0.5 {
			t.Fatalf("fail-stop cell missing degraded capacity: %+v", faulted.Result.Recovery)
		}
	}
	for _, cell := range c.Cells {
		if cell.Result.SLO == nil {
			t.Fatalf("cell %g/%g missing SLO accounting", cell.LoadMult, cell.FaultMult)
		}
		if cell.AchievedTxS <= 0 {
			t.Fatalf("cell %g/%g achieved nothing", cell.LoadMult, cell.FaultMult)
		}
	}
	if c.SLOTargetNs <= 0 {
		t.Fatalf("SLO target not auto-derived: %+v", c.SLOTargetNs)
	}
}

// TestChaosSweepDeterministic reruns the composed campaign and compares
// the full JSON surface byte for byte.
func TestChaosSweepDeterministic(t *testing.T) {
	a, err := json.Marshal(RunChaosSweep(MultiChip(2, 2), OLTP(), chaosCfg()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(RunChaosSweep(MultiChip(2, 2), OLTP(), chaosCfg()))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("chaos sweep rerun diverged")
	}
}

// TestChaosSweepIntraParallelIdentity crosses the campaign with -jintra:
// the surface must be byte-identical at any intra-run worker count.
func TestChaosSweepIntraParallelIdentity(t *testing.T) {
	run := func(workers int) string {
		cfg := chaosCfg()
		cfg.IntraWorkers = workers
		b, err := json.Marshal(RunChaosSweep(MultiChip(2, 2), OLTP(), cfg))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if serial, par := run(1), run(4); serial != par {
		t.Fatal("chaos sweep diverged between jintra 1 and 4")
	}
}
