// OLTP scaling study: sweep the on-chip core count (Figure 6a) and then
// scale out to multiple chips over the glueless interconnect (Figure 7),
// printing speedups and where each configuration's L1 misses are served.
package main

import (
	"fmt"

	"piranha"
	"piranha/internal/core"
)

func main() {
	scale := piranha.Scale{Warm: 50, Measure: 100}

	fmt.Println("=== on-chip scaling (Fig 6a): OLTP, 1..8 cores ===")
	var base piranha.Result
	for _, n := range []int{1, 2, 4, 8} {
		sys := piranha.SystemConfig{Chips: 1, Chip: core.PiranhaChip(n)}
		r := piranha.Run(sys, piranha.OLTP(), piranha.WithScale(scale))
		if n == 1 {
			base = r
		}
		h, f, m := r.Miss.Fractions()
		fmt.Printf("P%-2d  ns/tx=%-9.0f speedup=%.2f  misses: L2hit=%.0f%% fwd=%.0f%% mem=%.0f%%\n",
			n, r.TimePerTx, base.TimePerTx/r.TimePerTx, h*100, f*100, m*100)
	}

	fmt.Println("\n=== multi-chip scaling (Fig 7): 4-core chips, 1..4 chips ===")
	var one piranha.Result
	for n := 1; n <= 4; n++ {
		r := piranha.Run(piranha.MultiChip(n, 4), piranha.OLTP(), piranha.WithScale(scale))
		if n == 1 {
			one = r
		}
		fmt.Printf("%d chip(s), %2d CPUs: ns/tx=%-9.0f speedup=%.2f\n",
			n, r.CPUs, r.TimePerTx, one.TimePerTx/r.TimePerTx)
	}
}
