// Quickstart: build the Piranha P8 chip, run a short OLTP measurement,
// and print the paper's headline metrics — then compare against the
// next-generation out-of-order processor on a per-chip basis.
package main

import (
	"fmt"

	"piranha"
)

func main() {
	fmt.Println("Piranha quickstart: P8 vs OOO on OLTP (short run)")

	scale := piranha.Scale{Warm: 50, Measure: 100}
	p8 := piranha.Run(piranha.P8(), piranha.OLTP(), piranha.WithScale(scale))
	ooo := piranha.Run(piranha.OOO(), piranha.OLTP(), piranha.WithScale(scale))

	fmt.Println(p8)
	fmt.Println(ooo)

	busy, hit, miss, _ := p8.Agg.Normalized(p8.Agg.Total())
	fmt.Printf("\nP8 execution time: %.0f ns/tx (busy %.0f%%, L2 stall %.0f%%, mem stall %.0f%%)\n",
		p8.TimePerTx, busy*100, hit*100, miss*100)

	h, f, m := p8.Miss.Fractions()
	fmt.Printf("P8 L1-miss service: L2 hit %.0f%%, forwarded from a peer L1 %.0f%%, memory %.0f%%\n",
		h*100, f*100, m*100)

	fmt.Printf("\nPer-chip speedup of Piranha over the 1 GHz out-of-order design: %.2fx\n",
		ooo.TimePerTx/p8.TimePerTx)
}
