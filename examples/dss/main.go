// DSS example: the TPC-D Query-6-style parallel scan. DSS is
// compute-bound with streaming, independent loads, so the out-of-order
// core's advantages show — and Piranha's eight cores still win on
// aggregate throughput with near-linear on-chip speedup.
package main

import (
	"fmt"

	"piranha"
	"piranha/internal/core"
)

func main() {
	scale := piranha.Scale{Warm: 30, Measure: 90}

	fmt.Println("=== DSS (TPC-D Q6 scan): single-chip comparison ===")
	for _, c := range []struct {
		name string
		sys  piranha.SystemConfig
	}{
		{"P1", piranha.P1()},
		{"INO", piranha.INO()},
		{"OOO", piranha.OOO()},
		{"P8", piranha.P8()},
		{"P8F", piranha.P8F()},
	} {
		r := piranha.Run(c.sys, piranha.DSS(), piranha.WithScale(scale))
		busy, hit, miss, _ := r.Agg.Normalized(r.Agg.Total())
		fmt.Printf("%-4s ns/chunk=%-9.0f busy=%.0f%% L2stall=%.0f%% memstall=%.0f%%\n",
			c.name, r.TimePerTx, busy*100, hit*100, miss*100)
	}

	fmt.Println("\n=== near-linear on-chip speedup ===")
	var base piranha.Result
	for _, n := range []int{1, 2, 4, 8} {
		sys := piranha.SystemConfig{Chips: 1, Chip: core.PiranhaChip(n)}
		r := piranha.Run(sys, piranha.DSS(), piranha.WithScale(scale))
		if n == 1 {
			base = r
		}
		fmt.Printf("P%-2d speedup=%.2f\n", n, base.TimePerTx/r.TimePerTx)
	}
}
