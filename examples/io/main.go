// I/O architecture example (paper §2, Figure 2/3): an I/O chip is a
// full-fledged member of the interconnect and the global shared-memory
// coherence protocol. A processing chip and an I/O chip share a fabric;
// device DMA moves data coherently (invalidating and forwarding like any
// CPU), and scheduling the device driver on the I/O chip's own CPU gives
// it lower-latency access to the device structures than a driver running
// on the processing chip would get.
package main

import (
	"fmt"

	"piranha/internal/cache"
	"piranha/internal/core"
	"piranha/internal/cpu"
	"piranha/internal/ionode"
	"piranha/internal/pe"
	"piranha/internal/sim"
)

func main() {
	// Node 0: an 8-CPU processing chip. Node 1: the I/O chip.
	fabric := pe.NewFabric(pe.DefaultConfig(2), pe.NewFlatNetwork(25*sim.Nanosecond))
	proc := core.NewChip(core.PiranhaChip(8), fabric.Proto(0))
	fabric.BindL2(0, proc.L2)
	io := ionode.New(ionode.DefaultConfig(), fabric.Proto(1))
	fabric.BindL2(1, io.Node.L2)

	fmt.Println("Piranha I/O node: coherent DMA and driver placement")
	fmt.Printf("processing node: %d CPUs, 4 channels; I/O node: %d CPU, %d channels\n\n",
		len(proc.Cores), len(io.Node.Cores), io.Channels())

	// A buffer homed at the processing node (page 0 -> node 0).
	buf := cache.Addr(0x0000)
	// Device control structures homed at the I/O node (page 1 -> node 1).
	devCtl := cache.Addr(cache.PageBytes)

	// The CPU dirties the buffer, then the device writes it to disk:
	// the DMA read forwards from the CPU's cache across the fabric.
	now, _ := proc.Access(0, 0, cpu.Store, buf)
	done := io.DiskWrite(now, buf, 512)
	fmt.Printf("disk write of a CPU-dirty buffer completed at %.1f us (coherent DMA read)\n",
		float64(done)/float64(sim.Microsecond))

	// The device then DMAs fresh data into the buffer: the CPU's stale
	// copy must be invalidated by the coherence protocol.
	proc.Access(done, 0, cpu.Load, buf) // re-cache it
	intr := io.DiskRead(done, buf, 512)
	if proc.DL1[0].State(buf.Line()) != cache.Invalid {
		panic("DMA write did not invalidate the remote CPU copy")
	}
	fmt.Printf("disk read DMA invalidated the processing chip's cached buffer (interrupt at %.1f us)\n",
		float64(intr)/float64(sim.Microsecond))

	// Driver placement: access latency to the device control structures
	// from the I/O chip's CPU (local) vs the processing chip (remote).
	t0 := intr + sim.Microsecond
	localDone, _ := io.Node.Access(t0, 0, cpu.Load, devCtl)
	remoteDone, _ := proc.Access(t0, 0, cpu.Load, devCtl)
	fmt.Printf("\ndevice-structure load latency:\n")
	fmt.Printf("  driver on I/O-chip CPU:     %4.0f ns (local)\n",
		float64(localDone-t0)/float64(sim.Nanosecond))
	fmt.Printf("  driver on processing chip:  %4.0f ns (remote fetch)\n",
		float64(remoteDone-t0)/float64(sim.Nanosecond))
	fmt.Println("\nscheduling the driver next to the device wins — the paper's argument")
	fmt.Printf("\nDMA lines moved: %d, interrupts: %d\n", io.DMALines, io.Interrupts)
}
