// Command chaos composes the failure machinery end to end: an open-loop
// arrival stream with a retry budget, an SLO accountant, and a fail-stop
// node death mid-measurement — then a full composed campaign (load
// multipliers × fault-rate grid) printing the degradation surface an
// operator would capacity-plan from. Everything is seeded: rerunning
// reproduces identical output, byte for byte, at any -jintra.
package main

import (
	"fmt"
	"time"

	"piranha"
)

func main() {
	fmt.Println("=== 2xP4/OLTP: node 1 fail-stops 100us into the measured window ===")
	plan := piranha.FaultPlan{
		MsgLoss:  1e-4, // background message loss healed by TSRF recovery
		Mirrored: true, // the RAS mirror adopts the dead node's home lines
		FailStop: []piranha.NodeFailure{{Node: 1, At: 100 * piranha.Microsecond}},
	}
	res := piranha.Run(piranha.MultiChip(2, 4), piranha.OLTP(),
		piranha.WithName("2xP4 oltp failstop"),
		piranha.WithSeed(7),
		piranha.WithScale(piranha.Scale{Warm: 30, Measure: 120}),
		piranha.WithArrivals(piranha.Arrivals{
			Process:     piranha.ArrivalPoisson,
			Rate:        3e4, // tx per second of simulated time
			Capacity:    256,
			RetryBudget: 2, // shed work re-offers twice with exponential backoff
		}),
		piranha.WithSLO(1500*time.Microsecond, 0.1),
		piranha.WithFaults(plan),
	)
	fmt.Println(res)
	if rec := res.Recovery; rec != nil {
		for _, ev := range rec.Events {
			fmt.Printf("recovery: node %d  mttr %v  migrated %d procs  "+
				"homes adopted %d  sharers dropped %d  owners reclaimed %d\n",
				ev.Node, time.Duration(ev.MTTR()/piranha.Nanosecond)*time.Nanosecond,
				ev.Migrated, ev.HomesAdopted, ev.SharersDropped, ev.OwnerReclaims)
		}
		fmt.Printf("capacity after failure: %.0f%% of CPUs alive\n", rec.CapacityFrac*100)
	}
	if res.SLO != nil {
		fmt.Println(res.SLO)
	}
	fmt.Printf("admission: %d arrived, %d admitted, %d shed (%d after retry exhaustion)\n\n",
		res.Admission.Arrivals, res.Admission.Admitted,
		res.Admission.Shed, res.Admission.RetryExhausted)

	fmt.Println("=== composed campaign: load x fault grid with a mid-run death ===")
	surface := piranha.RunChaosSweep(piranha.MultiChip(2, 4), piranha.OLTP(),
		piranha.ChaosSweep{
			Multipliers: []float64{0.5, 1.1},
			FaultMults:  []float64{0, 1},
			Plan:        plan,
			Arrivals:    piranha.Arrivals{Capacity: 256, RetryBudget: 2},
			Scale:       piranha.Scale{Warm: 30, Measure: 60},
			Seed:        7,
		})
	fmt.Println(surface)
}
