// Microcode example: assemble the protocol engines' reference read-path
// handlers, run a complete remote-read transaction across a remote engine
// and a home engine, and verify the paper's count — four instructions at
// the requesting node's remote engine: SEND, RECEIVE, TEST, LSEND.
package main

import (
	"fmt"

	"piranha/internal/useq"
)

func main() {
	prog, err := useq.Assemble(useq.ReferenceProtocol)
	if err != nil {
		panic(err)
	}
	fmt.Printf("assembled %d words into the %d-word microcode store\n\n",
		len(prog.Words), useq.StoreSize)

	for i, w := range prog.Words[:8] {
		fmt.Printf("  %03x  %s\n", i, w)
	}
	fmt.Println("  ...")

	re, he, _, err := useq.RemoteReadCounts()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nremote read transaction:\n")
	fmt.Printf("  remote engine executed %d instructions (paper: SEND, RECEIVE, TEST, LSEND = 4)\n", re)
	fmt.Printf("  home engine executed   %d instructions (LSEND, LRECEIVE, SEND)\n", he)
}
