// ISA example: assemble an Alpha-subset pointer-chase microbenchmark,
// run it functionally on the interpreter, and then replay its memory
// trace through a Piranha core + chip to measure load-to-use latency at
// each level of the hierarchy — the L1 hit, L2 hit and memory latencies
// of Table 1 observed from software.
package main

import (
	"fmt"

	"piranha/internal/cache"
	"piranha/internal/core"
	"piranha/internal/cpu"
	"piranha/internal/isa"
	"piranha/internal/l2"
	"piranha/internal/sim"
)

// chaseSrc builds a pointer ring at 64 KB and chases it.
const chaseSrc = `
	; r2 = base of the pointer ring (64 KB)
	lda   r2, 0(zero)
	ldah  r2, 1(r2)
	; build a ring of 512 pointers with 8-line stride
	lda   r3, 512(zero)       ; count
	lda   r6, 512(zero)       ; stride in bytes (8 lines)
	bis   r2, zero, r4        ; cursor
init:	addq  r4, r6, r5          ; next = cursor + 8 lines
	stq   r5, 0(r4)
	bis   r5, zero, r4
	subq  r3, 1, r3
	bne   r3, init
	stq   r2, 0(r4)           ; close the ring
	; chase it
	lda   r3, 2048(zero)
	bis   r2, zero, r1
chase:	ldq   r1, 0(r1)
	subq  r3, 1, r3
	bne   r3, chase
	halt
`

// chipTrace replays the machine's memory events through a chip.
type chipTrace struct {
	chip *core.Chip
	core *cpu.Core
	now  sim.Time
}

func (t *chipTrace) Fetch(pc uint64) {
	t.now = t.core.Exec(t.now, cpu.Op{Kind: cpu.KIFetch, Addr: cache.Addr(pc)})
}
func (t *chipTrace) Load(a uint64, dep bool) {
	t.now = t.core.Exec(t.now, cpu.Op{Kind: cpu.KLoad, Addr: cache.Addr(a), Dep: dep})
}
func (t *chipTrace) Store(a uint64) {
	t.now = t.core.Exec(t.now, cpu.Op{Kind: cpu.KStore, Addr: cache.Addr(a)})
}
func (t *chipTrace) WriteHint(a uint64) {
	t.now = t.core.Exec(t.now, cpu.Op{Kind: cpu.KStoreHint, Addr: cache.Addr(a)})
}

func main() {
	prog, err := isa.Assemble(chaseSrc, 0x1000)
	if err != nil {
		panic(err)
	}
	m := isa.NewMachine(prog)

	// Attach the timing trace: every fetch/load/store the interpreter
	// performs is charged through a single-core Piranha chip.
	chip := core.NewChip(core.PiranhaChip(1), l2.LocalOnly{})
	tr := &chipTrace{chip: chip, core: chip.Cores[0]}
	m.Tr = tr

	n, err := m.Run(1_000_000)
	if err != nil {
		panic(err)
	}

	fmt.Printf("pointer chase: %d instructions retired, halted=%v\n", n, m.Halt)
	fmt.Printf("simulated time: %.1f us\n", float64(tr.now)/float64(sim.Microsecond))
	bd := tr.core.Breakdown
	fmt.Printf("breakdown: busy=%.1fus l2stall=%.1fus memstall=%.1fus\n",
		float64(bd.CPUBusy)/float64(sim.Microsecond),
		float64(bd.L2HitStall)/float64(sim.Microsecond),
		float64(bd.L2Miss)/float64(sim.Microsecond))
	perLoad := float64(tr.now) / 2048
	fmt.Printf("~%.1f ns per dependent load (ring footprint 256 KB: L1-missing, L2/memory served)\n",
		perLoad/1000)

	spinlockDemo()
}

// spinlockDemo runs the classic Alpha ldq_l/stq_c spinlock acquire —
// the primitive the database's latches compile to.
func spinlockDemo() {
	prog, err := isa.Assemble(`
		lda   r2, 0(zero)
		ldah  r2, 2(r2)          ; lock word address
	acquire:ldq_l r1, 0(r2)
		bne   r1, acquire        ; held? spin
		lda   r1, 1(zero)
		stq_c r1, 0(r2)
		beq   r1, acquire        ; lost the race? retry
		; --- critical section ---
		lda   r4, 7(zero)
		; --- release ---
		stq   r31, 0(r2)
		halt
	`, 0x3000)
	if err != nil {
		panic(err)
	}
	m := isa.NewMachine(prog)
	if _, err := m.Run(1000); err != nil {
		panic(err)
	}
	fmt.Printf("\nspinlock via ldq_l/stq_c: acquired, critical section ran (r4=%d), released (lock=%d)\n",
		m.R[4], m.Mem.Read8(0x20000))
}
