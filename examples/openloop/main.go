// Open-loop example: instead of the paper's closed-loop measurement
// (every server process always has a next transaction — measuring
// capacity), transactions arrive on a seeded stochastic process and
// queue for admission, so the simulator reports what an operator sees:
// arrival→completion tail latency as a function of offered load, the
// hockey stick, and shedding once a bounded queue overflows.
package main

import (
	"fmt"

	"piranha"
)

func main() {
	fmt.Println("=== P8/OLTP under a bursty open-loop stream (MMPP, 50k tx/s) ===")
	r := piranha.Run(piranha.P8(), piranha.OLTP(),
		piranha.WithScale(piranha.Scale{Warm: 50, Measure: 150}),
		piranha.WithArrivals(piranha.Arrivals{
			Process:  piranha.ArrivalMMPP,
			Rate:     5e4, // tx per second of simulated time
			Burst:    8,
			Capacity: 256,
		}))
	fmt.Println(r)
	fmt.Println(r.Lat)
	fmt.Printf("admission: %d arrived, %d admitted, %d shed, max queue depth %d\n\n",
		r.Admission.Arrivals, r.Admission.Admitted, r.Admission.Shed, r.Admission.MaxDepth)

	fmt.Println("=== hockey stick: P8/OLTP throughput vs p99 over offered load ===")
	sweep := piranha.RunLoadSweep(piranha.P8(), piranha.OLTP(), piranha.LoadSweep{
		Scale: piranha.Scale{Warm: 30, Measure: 90},
	})
	fmt.Println(sweep)
}
