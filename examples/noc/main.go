// Interconnect example: build a 16-node torus of Piranha routers (four
// channels per processing node, exactly the prototype's channel count),
// inject mixed-priority traffic, and watch the hot-potato adaptive router
// deliver everything — then shrink the buffers and watch deflection
// routing absorb the contention.
package main

import (
	"fmt"

	"piranha/internal/noc"
	"piranha/internal/sim"
)

func run(buffers int, rate float64) {
	cfg := noc.DefaultConfig()
	cfg.BufferPool = buffers
	net, err := noc.NewNetwork(cfg, noc.Torus{W: 4, H: 4}, 1)
	if err != nil {
		panic(err)
	}
	rng := sim.NewRNG(2)
	injected := 0
	for c := 0; c < 3000; c++ {
		for node := 0; node < 16; node++ {
			if rng.Float64() < rate {
				dst := rng.Intn(16)
				if dst != node {
					net.Inject(node, dst, rng.Intn(noc.Priorities), rng.Bool(0.3))
					injected++
				}
			}
		}
		net.Step()
	}
	if err := net.Run(1 << 30); err != nil {
		panic(err)
	}
	st := net.Stats()
	fmt.Printf("buffers=%-3d rate=%.2f  delivered %d/%d  avg latency %.1f cycles  "+
		"deflections %d  max buffer depth %d\n",
		buffers, rate, st.Delivered, injected, st.AvgLatency, st.Deflections, st.MaxPoolDepth)
}

func main() {
	fmt.Println("Piranha system interconnect: 4x4 torus, hot-potato adaptive routing")
	fmt.Println("\nample buffering:")
	run(16, 0.2)
	run(16, 0.5)
	fmt.Println("\ntiny buffers (deflection does the work):")
	run(2, 0.2)
	run(2, 0.5)
}
