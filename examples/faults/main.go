// Command faults runs the P8/OLTP workload under a deterministic
// fault-injection plan — link bit errors healed by CRC retransmission,
// lost protocol messages healed by TSRF timeout recovery, memory bit
// flips healed by SECDED ECC with mirroring failover — and prints the
// Result.Faults counter block. Rerunning with the same seed reproduces
// the identical counters.
package main

import (
	"fmt"
	"time"

	"piranha"
)

func main() {
	plan := piranha.FaultPlan{
		LinkBER:       2e-5, // per-wire-bit corruption probability
		MsgLoss:       5e-4, // per-transaction-leg message loss
		MemFlip:       5e-4, // per-line-read bit-flip probability
		MemDoubleFrac: 0.25, // fraction of flips hitting two bits
		StallProb:     1e-6, // transient node stall per message
		Mirrored:      true, // uncorrectable errors fail over to the mirror
	}

	// Single chip: memory ECC faults and scrub latency.
	res := piranha.Run(piranha.P8(), piranha.OLTP(),
		piranha.WithSeed(7),
		piranha.WithScale(piranha.Scale{Warm: 40, Measure: 120}),
		piranha.WithIntervals(5*time.Microsecond),
		piranha.WithFaults(plan),
	)
	fmt.Println(res)
	fmt.Println(*res.Faults)
	if res.Series.Len() > 0 {
		fmt.Print(res.Series)
	}

	// Two chips: the interconnect is live, so link retransmission, lost
	// messages and the TSRF recovery sweep all fire.
	res2 := piranha.Run(piranha.MultiChip(2, 4), piranha.OLTP(),
		piranha.WithName("2xP4 oltp"),
		piranha.WithSeed(7),
		piranha.WithScale(piranha.Scale{Warm: 40, Measure: 120}),
		piranha.WithFaults(plan),
	)
	fmt.Println(res2)
	fmt.Println(*res2.Faults)
}
