package piranha

import (
	"bytes"
	"testing"

	"piranha/internal/core"
)

func TestScaleOutTorusDims(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{8, 2, 4}, {32, 4, 8}, {64, 8, 8}, {256, 16, 16}, {1024, 32, 32},
	}
	for _, c := range cases {
		w, h := torusDims(c.n)
		if w != c.w || h != c.h {
			t.Errorf("torusDims(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
		sys := ScaleOut(c.n, 1)
		if sys.Chips != c.n || sys.Topology.Nodes() != c.n {
			t.Errorf("ScaleOut(%d): %d chips, topology %d nodes", c.n, sys.Chips, sys.Topology.Nodes())
		}
	}
}

// TestScaleOut256ByteIdentity is the scale-out determinism contract: a
// 256-node torus run is byte-identical across -jintra worker counts and
// across the serial and parallel batch runners. This is the machine
// size where the sparse-activation NoC, the diameter-sized arrival
// wheel, and the O(active) fabric paths are all exercised, so identity
// here certifies they preserve the simulation's event and RNG streams.
func TestScaleOut256ByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node run in -short mode")
	}
	sys := ScaleOut256()
	small := Scale{Warm: 4, Measure: 16}

	wantJS, wantTr := runTraced(t, sys, OLTP(), 11, 1)
	for _, workers := range []int{4} {
		gotJS, gotTr := runTraced(t, sys, OLTP(), 11, workers)
		if !bytes.Equal(wantJS, gotJS) {
			t.Errorf("jintra=%d: Result JSON diverges from serial\n got %s\nwant %s", workers, gotJS, wantJS)
		}
		if !bytes.Equal(wantTr, gotTr) {
			t.Errorf("jintra=%d: trace bytes diverge from serial (%d vs %d bytes)", workers, len(gotTr), len(wantTr))
		}
	}

	// Serial loop vs the bounded-pool batch runner on the same machine.
	exp := Experiment{
		Name: "scale256", Sys: sys, Work: core.WorkloadSpec{Kind: core.OLTP},
		WarmTx: small.Warm, MeasureTx: small.Measure, Seed: 11,
	}
	serial := RunExperiment(exp)
	SetParallelism(4)
	batch := RunBatch([]Experiment{exp})[0]
	SetParallelism(0)
	if serial != batch {
		t.Fatalf("serial vs RunBatch differ:\n serial=%+v\n batch=%+v", serial, batch)
	}
}

// TestScalingSweepDeterministic runs a small sweep twice and requires
// identical curves — the property that lets cmd/piranha's scaling mode
// and the CI smoke job cmp whole output files.
func TestScalingSweepDeterministic(t *testing.T) {
	cfg := ScalingSweep{Nodes: []int{8, 32}, PerNode: Scale{Warm: 1, Measure: 2}, Seed: 5}
	a := RunScalingSweep(OLTP(), cfg)
	b := RunScalingSweep(OLTP(), cfg)
	if a.String() != b.String() {
		t.Fatalf("scaling sweep not deterministic:\n%s\n---\n%s", a, b)
	}
	if len(a.Points) != 2 || a.Points[0].Nodes != 8 || a.Points[1].Nodes != 32 {
		t.Fatalf("unexpected points: %+v", a.Points)
	}
	if a.Points[0].Speedup != 1 || a.Points[1].Speedup <= 1 {
		t.Fatalf("speedup not increasing: %+v", a.Points)
	}
}

// TestNewSystemErrBadTopology pins the error path NewSystemErr adds: a
// topology whose node count disagrees with Chips must come back as an
// error (and as a panic from NewSystem), not a mis-built machine.
func TestNewSystemErrBadTopology(t *testing.T) {
	bad := ScaleOut(64, 1)
	bad.Chips = 32 // topology still 8x8
	if _, err := core.NewSystemErr(bad); err == nil {
		t.Fatal("NewSystemErr accepted a 64-node topology on a 32-chip system")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewSystem did not panic on bad topology")
		}
	}()
	core.NewSystem(bad)
}
