package piranha

// The benchmark harness regenerates every table and figure of the
// paper's evaluation section (plus its quantitative in-text claims).
// Each benchmark reports its headline numbers via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the full paper-vs-measured record (also collected in
// EXPERIMENTS.md). A full-scale regeneration is cmd/figures.
//
// Config sweeps inside each figure fan out across host CPUs via
// internal/runner; the reported metrics are bit-identical to a serial
// run (see determinism_test.go), but ns/op scales with GOMAXPROCS —
// run with -cpu 1 or call SetParallelism(1) for serial-comparable
// timings. The engine's own hot-path microbenchmarks live in
// internal/sim/engine_bench_test.go.

import (
	"io"
	"testing"
	"time"

	"piranha/internal/core"
	"piranha/internal/trace"
)

// benchScale keeps the whole suite tractable; cmd/figures uses
// PaperScale for the full-precision run.
var benchScale = Scale{Warm: 60, Measure: 150}

func reportMetrics(b *testing.B, f FigureReport) {
	b.Helper()
	for k, v := range f.Metrics {
		b.ReportMetric(v, k)
	}
}

// BenchmarkRun_NoTrace is the tracing-off baseline for one P8/OLTP run:
// with no tracer attached the instrumented hot paths must cost nothing
// (compare ns/op and allocs/op against BenchmarkRun_Traced; the pair is
// recorded in EXPERIMENTS.md).
func BenchmarkRun_NoTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(P8(), OLTP(), WithScale(benchScale))
	}
}

// BenchmarkRun_Traced runs the same experiment with the ring tracer
// recording every component event but without exporting it: the delta
// over BenchmarkRun_NoTrace is the pure recording cost (the ring and
// its count set are the only extra allocations, made once at setup).
func BenchmarkRun_Traced(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunExperiment(Experiment{
			Name: "bench", Sys: P8(),
			Work:   core.WorkloadSpec{Kind: core.OLTP},
			WarmTx: benchScale.Warm, MeasureTx: benchScale.Measure,
			Trace: trace.New(0),
		})
	}
}

// BenchmarkRun_TracedExport additionally serializes the trace to
// io.Discard, covering the full -trace code path including the Chrome
// JSON writer.
func BenchmarkRun_TracedExport(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(P8(), OLTP(), WithScale(benchScale), WithTrace(io.Discard))
	}
}

// BenchmarkRun_Intervals adds the per-window sampler on top of the
// untraced baseline.
func BenchmarkRun_Intervals(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(P8(), OLTP(), WithScale(benchScale), WithIntervals(2*time.Microsecond))
	}
}

// BenchmarkTable1Configs renders the Table 1 parameter table (checking
// the presets agree with the paper's numbers is TestPresetsMatchTable1
// in internal/core).
func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table1().Text == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig5_OLTP regenerates Figure 5's OLTP half: P1, INO, OOO, P8
// normalized execution time with the busy/L2/memory breakdown.
// Paper shape: P1 ~2.3x OOO; INO isolates ~1.6x of that; P8 ~1/2.9 OOO.
func BenchmarkFig5_OLTP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := fig5Single(OLTPKindForBench, benchScale)
		reportMetrics(b, rep)
	}
}

// BenchmarkFig5_DSS regenerates Figure 5's DSS half.
// Paper shape: OOO ~3.5x P1; P8 ~1/2.3 OOO.
func BenchmarkFig5_DSS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := fig5Single(DSSKindForBench, benchScale)
		reportMetrics(b, rep)
	}
}

// BenchmarkFig6a_Speedup regenerates Figure 6(a): OLTP speedup at
// 1/2/4/8 on-chip cores. Paper: ~7x at eight cores.
func BenchmarkFig6a_Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := Fig6(benchScale)
		b.ReportMetric(rep.Metrics["speedup_P8"], "speedup_P8")
		b.ReportMetric(rep.Metrics["speedup_P4"], "speedup_P4")
		b.ReportMetric(rep.Metrics["speedup_P2"], "speedup_P2")
	}
}

// BenchmarkFig6b_MissBreakdown regenerates Figure 6(b): the L1-miss
// service breakdown versus core count. Paper: L2-hit share falls from
// ~90% toward 40% while the memory share stays under ~20%.
func BenchmarkFig6b_MissBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := Fig6(benchScale)
		for _, k := range []string{"misshit_P1", "misshit_P8", "missfwd_P8", "missmem_P1", "missmem_P8"} {
			b.ReportMetric(rep.Metrics[k], k)
		}
	}
}

// BenchmarkFig7_MultiChip regenerates Figure 7: OLTP speedup from one to
// four chips, Piranha (P4 per chip) vs OOO. Paper: 3.0 vs 2.6 at four
// chips, with a single-chip P4 ~1.5x one OOO chip.
func BenchmarkFig7_MultiChip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := Fig7(benchScale)
		for _, k := range []string{"piranha_speedup_4chips", "ooo_speedup_4chips", "single_chip_P4_over_OOO"} {
			b.ReportMetric(rep.Metrics[k], k)
		}
	}
}

// BenchmarkFig8_FullCustom regenerates Figure 8: the full-custom P8F
// against OOO. Paper: ~5.0x on OLTP, ~5.3x on DSS.
func BenchmarkFig8_FullCustom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := Fig8(benchScale)
		b.ReportMetric(rep.Metrics["oltp_speedup_P8F"], "oltp_speedup_P8F")
		b.ReportMetric(rep.Metrics["dss_speedup_P8F"], "dss_speedup_P8F")
	}
}

// BenchmarkText_TPCC reproduces §4's TPC-C sensitivity claim:
// P8 outperforms OOO by over 3x on a TPC-C-like workload.
func BenchmarkText_TPCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := TextTPCC(benchScale)
		b.ReportMetric(rep.Metrics["speedup_P8_over_OOO"], "speedup_P8_over_OOO")
	}
}

// BenchmarkText_Pessimistic reproduces §4's pessimistic-parameter study:
// 400 MHz cores, 32 KB direct-mapped L1s, 22/32 ns L2 cost ~29% more
// time but keep a ~2.25x advantage over OOO.
func BenchmarkText_Pessimistic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := TextPessimistic(benchScale)
		b.ReportMetric(rep.Metrics["slowdown_frac"], "slowdown_frac")
		b.ReportMetric(rep.Metrics["speedup_pess_over_OOO"], "speedup_pess_over_OOO")
	}
}

// BenchmarkText_CacheTradeoff reproduces §4's design-space note: with
// only ~22% of P8's time in L2-miss stall, even a much larger L2 buys
// little, so trading CPUs for SRAM is not advantageous.
func BenchmarkText_CacheTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := TextCacheTradeoff(benchScale)
		b.ReportMetric(rep.Metrics["infinite_l2_gain_frac"], "infinite_l2_gain_frac")
		b.ReportMetric(rep.Metrics["p8_over_p4big"], "p4big_slowdown")
	}
}

// BenchmarkAblation_Inclusion runs the paper's central L2 design choice
// head to head: Piranha's non-inclusive victim L2 vs a conventional
// inclusive L2 of identical geometry, on OLTP at P8.
func BenchmarkAblation_Inclusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := AblationInclusion(benchScale)
		b.ReportMetric(rep.Metrics["inclusive_slowdown_frac"], "inclusive_slowdown_frac")
		b.ReportMetric(rep.Metrics["mem_miss_frac_inclusive"], "mem_frac_inclusive")
		b.ReportMetric(rep.Metrics["mem_miss_frac_noninc"], "mem_frac_noninc")
	}
}

// BenchmarkSec24_OpenPage reproduces §2.4: keeping RDRAM pages open
// ~1 us yields an open-page hit rate over 50% on OLTP-like streams.
func BenchmarkSec24_OpenPage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := Sec24OpenPage()
		b.ReportMetric(rep.Metrics["hit_rate_1000ns"], "hit_rate_1000ns")
		b.ReportMetric(rep.Metrics["hit_rate_100ns"], "hit_rate_100ns")
	}
}

// BenchmarkSec253_CMI reproduces the cruise-missile-invalidate study:
// a handful of injected messages regardless of sharer count, bounded
// buffering, and competitive (flat) invalidation latency at scale.
func BenchmarkSec253_CMI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := Sec253CMI()
		b.ReportMetric(rep.Metrics["cmi_msgs_1024n_41sharers"], "cmi_msgs_1024n_41sharers")
		b.ReportMetric(rep.Metrics["bcast_msgs_1024n_41sharers"], "bcast_msgs_1024n_41sharers")
		b.ReportMetric(rep.Metrics["cmi_lat_ns_1024n_41sharers"], "cmi_lat_ns_1024n")
		b.ReportMetric(rep.Metrics["bcast_lat_ns_1024n_41sharers"], "bcast_lat_ns_1024n")
	}
}

// BenchmarkSec253_NoNAK reproduces the protocol ablation: the NAK-free
// protocol sends fewer messages and keeps lower home-engine occupancy
// than a DASH-style NAK/retry baseline.
func BenchmarkSec253_NoNAK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := Sec253NoNAK()
		b.ReportMetric(rep.Metrics["msgs_per_txn_piranha-no-nak"], "msgs_nonak")
		b.ReportMetric(rep.Metrics["msgs_per_txn_dash-baseline"], "msgs_dash")
		b.ReportMetric(rep.Metrics["naks_dash-baseline"], "naks_dash")
	}
}

// BenchmarkSec251_Microcode reproduces §2.5.1: a remote read costs four
// instructions at the remote engine.
func BenchmarkSec251_Microcode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := Sec251Microcode()
		b.ReportMetric(rep.Metrics["re_instructions"], "re_instructions")
		b.ReportMetric(rep.Metrics["store_words"], "store_words")
	}
}

// BenchmarkSec261_LinkCode reproduces §2.6.1: the DC-balanced code with
// inversion-insensitive decoding recovers every frame under injected
// wire errors.
func BenchmarkSec261_LinkCode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := Sec261LinkCode()
		b.ReportMetric(rep.Metrics["frames_lost"], "frames_lost")
		b.ReportMetric(rep.Metrics["inverted_share"], "inverted_share")
	}
}

// BenchmarkFig9_Area reproduces Figure 9's floorplan proportions: ~75%
// of the processing node in CPUs + caches.
func BenchmarkFig9_Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := Fig9Area()
		b.ReportMetric(rep.Metrics["core_cache_fraction"], "core_cache_fraction")
	}
}
