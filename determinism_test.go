package piranha

import (
	"fmt"
	"testing"

	"piranha/internal/core"
)

// TestRunDeterministic is the bit-identical contract the parallel runner
// rests on: the same seeded experiment run twice yields byte-identical
// results, down to every counter.
func TestRunDeterministic(t *testing.T) {
	exp := Experiment{
		Name:      "det",
		Sys:       P4(),
		Work:      core.WorkloadSpec{Kind: core.OLTP},
		WarmTx:    tiny.Warm,
		MeasureTx: tiny.Measure,
		Seed:      99,
	}
	a, b := RunExperiment(exp), RunExperiment(exp)
	if a != b {
		t.Fatalf("same-seed runs differ:\n a=%+v\n b=%+v", a, b)
	}
	if fmt.Sprintf("%#v", a) != fmt.Sprintf("%#v", b) {
		t.Fatal("same-seed runs render differently")
	}
	// A different seed must actually change the simulation.
	exp.Seed = 100
	if c := RunExperiment(exp); c == a {
		t.Fatal("different seed produced an identical result")
	}
}

// TestRunBatchMatchesSerial checks the public batch API end to end:
// results come back in input order and bit-identical to a serial loop,
// whatever the worker bound.
func TestRunBatchMatchesSerial(t *testing.T) {
	exps := []Experiment{
		{Name: "P1", Sys: P1(), Work: core.WorkloadSpec{Kind: core.OLTP}, WarmTx: tiny.Warm, MeasureTx: tiny.Measure},
		{Name: "P4", Sys: P4(), Work: core.WorkloadSpec{Kind: core.OLTP}, WarmTx: tiny.Warm, MeasureTx: tiny.Measure},
		{Name: "OOO", Sys: OOO(), Work: core.WorkloadSpec{Kind: core.DSS}, WarmTx: tiny.Warm, MeasureTx: tiny.Measure},
		{Name: "P4x2", Sys: MultiChip(2, 4), Work: core.WorkloadSpec{Kind: core.OLTP}, WarmTx: tiny.Warm, MeasureTx: tiny.Measure},
	}
	want := make([]Result, len(exps))
	for i, e := range exps {
		want[i] = RunExperiment(e)
	}
	for _, workers := range []int{1, 4} {
		SetParallelism(workers)
		got := RunBatch(exps)
		SetParallelism(0)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d (%s) differs from serial run:\n got %+v\nwant %+v",
					workers, i, exps[i].Name, got[i], want[i])
			}
		}
	}
}

// TestFigureHarnessDeterministic regenerates one parallel sweep twice and
// requires identical rendered text and metric maps — the property that
// lets cmd/figures fan out without changing any reported number.
func TestFigureHarnessDeterministic(t *testing.T) {
	SetParallelism(4)
	defer SetParallelism(0)
	a, b := Fig6(tiny), Fig6(tiny)
	if a.Text != b.Text {
		t.Fatalf("rendered text differs between runs:\n%s\n---\n%s", a.Text, b.Text)
	}
	if len(a.Metrics) != len(b.Metrics) {
		t.Fatalf("metric count differs: %d vs %d", len(a.Metrics), len(b.Metrics))
	}
	for k, v := range a.Metrics {
		if bv, ok := b.Metrics[k]; !ok || bv != v {
			t.Fatalf("metric %q differs: %v vs %v", k, v, bv)
		}
	}
}
