package piranha

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"piranha/internal/core"
)

// TestRunDeterministic is the bit-identical contract the parallel runner
// rests on: the same seeded experiment run twice yields byte-identical
// results, down to every counter.
func TestRunDeterministic(t *testing.T) {
	exp := Experiment{
		Name:      "det",
		Sys:       P4(),
		Work:      core.WorkloadSpec{Kind: core.OLTP},
		WarmTx:    tiny.Warm,
		MeasureTx: tiny.Measure,
		Seed:      99,
	}
	a, b := RunExperiment(exp), RunExperiment(exp)
	if a != b {
		t.Fatalf("same-seed runs differ:\n a=%+v\n b=%+v", a, b)
	}
	if fmt.Sprintf("%#v", a) != fmt.Sprintf("%#v", b) {
		t.Fatal("same-seed runs render differently")
	}
	// A different seed must actually change the simulation.
	exp.Seed = 100
	if c := RunExperiment(exp); c == a {
		t.Fatal("different seed produced an identical result")
	}
}

// TestRunBatchMatchesSerial checks the public batch API end to end:
// results come back in input order and bit-identical to a serial loop,
// whatever the worker bound.
func TestRunBatchMatchesSerial(t *testing.T) {
	exps := []Experiment{
		{Name: "P1", Sys: P1(), Work: core.WorkloadSpec{Kind: core.OLTP}, WarmTx: tiny.Warm, MeasureTx: tiny.Measure},
		{Name: "P4", Sys: P4(), Work: core.WorkloadSpec{Kind: core.OLTP}, WarmTx: tiny.Warm, MeasureTx: tiny.Measure},
		{Name: "OOO", Sys: OOO(), Work: core.WorkloadSpec{Kind: core.DSS}, WarmTx: tiny.Warm, MeasureTx: tiny.Measure},
		{Name: "P4x2", Sys: MultiChip(2, 4), Work: core.WorkloadSpec{Kind: core.OLTP}, WarmTx: tiny.Warm, MeasureTx: tiny.Measure},
	}
	want := make([]Result, len(exps))
	for i, e := range exps {
		want[i] = RunExperiment(e)
	}
	for _, workers := range []int{1, 4} {
		SetParallelism(workers)
		got := RunBatch(exps)
		SetParallelism(0)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d (%s) differs from serial run:\n got %+v\nwant %+v",
					workers, i, exps[i].Name, got[i], want[i])
			}
		}
	}
}

// runTraced executes one run capturing both the versioned Result JSON
// and the Chrome trace bytes — the two artifacts the intra-parallel
// engine must reproduce byte-for-byte.
func runTraced(t *testing.T, sys SystemConfig, w Workload, seed uint64, workers int) ([]byte, []byte) {
	t.Helper()
	var tr bytes.Buffer
	res := Run(sys, w, WithSeed(seed), WithScale(tiny), WithTrace(&tr), WithIntraParallel(workers))
	js, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return js, tr.Bytes()
}

// TestIntraParallelByteIdentity is the tentpole contract of two-phase
// partitioned execution: for every machine shape, workload, seed, and
// phase-worker count, the Result JSON and the captured Perfetto trace
// are byte-identical to the serial engine's. The timing model partition
// replays the exact serial event history; the workers only move op
// generation off it.
func TestIntraParallelByteIdentity(t *testing.T) {
	cases := []struct {
		name string
		sys  SystemConfig
		work Workload
	}{
		{"p8-oltp", P8(), OLTP()},
		{"p2-dss", P2(), DSS()},
		{"p1-oltp-fallback", P1(), OLTP()}, // P1-sized: must fall back to serial
		{"2xp2-oltp", MultiChip(2, 2), OLTP()},
	}
	for _, c := range cases {
		for _, seed := range []uint64{3, 77} {
			wantJS, wantTr := runTraced(t, c.sys, c.work, seed, 1)
			for _, workers := range []int{2, 4} {
				gotJS, gotTr := runTraced(t, c.sys, c.work, seed, workers)
				if !bytes.Equal(wantJS, gotJS) {
					t.Errorf("%s seed=%d workers=%d: Result JSON diverges from serial\n got %s\nwant %s",
						c.name, seed, workers, gotJS, wantJS)
				}
				if !bytes.Equal(wantTr, gotTr) {
					t.Errorf("%s seed=%d workers=%d: trace bytes diverge from serial (%d vs %d bytes)",
						c.name, seed, workers, len(gotTr), len(wantTr))
				}
			}
		}
	}
}

// TestFigureHarnessIntraParallelIdentical pins the figures pipeline: a
// sweep regenerated under SetIntraParallel(4) renders the same text and
// metrics as the serial harness — the property the CI jintra job cmp's
// at the whole-file level.
func TestFigureHarnessIntraParallelIdentical(t *testing.T) {
	serial := Fig6(tiny)
	SetIntraParallel(4)
	defer SetIntraParallel(1)
	par := Fig6(tiny)
	if serial.Text != par.Text {
		t.Fatalf("rendered text differs under intra-parallel execution:\n%s\n---\n%s", serial.Text, par.Text)
	}
	for k, v := range serial.Metrics {
		if pv, ok := par.Metrics[k]; !ok || pv != v {
			t.Fatalf("metric %q differs: serial %v, intra-parallel %v", k, v, pv)
		}
	}
}

// TestFigureHarnessDeterministic regenerates one parallel sweep twice and
// requires identical rendered text and metric maps — the property that
// lets cmd/figures fan out without changing any reported number.
func TestFigureHarnessDeterministic(t *testing.T) {
	SetParallelism(4)
	defer SetParallelism(0)
	a, b := Fig6(tiny), Fig6(tiny)
	if a.Text != b.Text {
		t.Fatalf("rendered text differs between runs:\n%s\n---\n%s", a.Text, b.Text)
	}
	if len(a.Metrics) != len(b.Metrics) {
		t.Fatalf("metric count differs: %d vs %d", len(a.Metrics), len(b.Metrics))
	}
	for k, v := range a.Metrics {
		if bv, ok := b.Metrics[k]; !ok || bv != v {
			t.Fatalf("metric %q differs: %v vs %v", k, v, bv)
		}
	}
}
