// Command piranha-bench measures the simulator's host-side performance
// and emits a versioned JSON report (BENCH_10.json) so the repository
// carries a committed benchmark trajectory. Five families of benchmarks
// run:
//
//   - End-to-end: full OLTP and DSS experiments at P1 and P8, reporting
//     host ns per simulated transaction — the number that tells you how
//     long a paper-scale figure run costs on this machine. The P8 rows
//     repeat under two-phase intra-run parallelism (-jintra 2, 4, and
//     GOMAXPROCS phase workers) with a speedup column against the
//     serial engine; the harness fails if a parallel row's simulated
//     Result differs from the serial row's by even one counter. A P1
//     jintra row pins the automatic serial fallback.
//   - Micro: the three memory-system hot paths the dense-state refactor
//     targets (L2 line lookup, protocol-engine directory dispatch, noc
//     hop delivery). These must be allocation-free in steady state; the
//     harness fails loudly if they are not.
//   - Load sweeps: open-loop throughput-vs-p99 hockey-stick curves for
//     P1/P8 OLTP and P8 DSS with the detected saturation multiplier.
//     These are simulated (host-independent) numbers, deterministic for
//     a given -seed.
//   - Chaos: a two-chip open-loop run with one fail-stop node death,
//     reporting MTTR and pre-fault vs post-recovery throughput from the
//     per-interval completion bins. The harness fails if the degraded
//     machine's post-recovery rate falls below half the pre-fault rate,
//     or if the run's JSON diverges between -jintra 1 and 4.
//   - Scaling: OLTP on the glueless 2-D torus at 8 through 1024 nodes
//     (quick: through 64) with a fixed per-node transaction budget, so
//     host ns per simulated transaction is the per-node simulation
//     rate. The harness fails if the 1024-node rate exceeds 10x the
//     64-node rate (the sparse-activation O(active) contract), or if
//     the anchor row's simulated JSON diverges across a rerun or
//     between -jintra 1 and 4.
//
// With -baseline, the micro rows are compared against a previously
// committed report and the run fails on a >10% allocs/op regression
// (end-to-end rows are excluded: their allocation totals scale with the
// transaction count, which -quick changes).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"piranha"
	"piranha/internal/cache"
	"piranha/internal/core"
	"piranha/internal/fault"
	"piranha/internal/ics"
	"piranha/internal/l1"
	"piranha/internal/l2"
	"piranha/internal/noc"
	"piranha/internal/pe"
	"piranha/internal/ras"
	"piranha/internal/sim"
	"piranha/internal/workload"
)

// schemaVersion is the report format version; benchVersion is the PR
// trajectory index (BENCH_<benchVersion>.json).
const (
	schemaVersion = 1
	benchVersion  = 10
)

// Result is one benchmark row.
type Result struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"` // "end-to-end" or "micro"
	Iters       int     `json:"iters"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// NsPerSimTx is host time per simulated transaction (end-to-end only).
	NsPerSimTx float64 `json:"ns_per_sim_tx,omitempty"`
	// IntraWorkers is the phase-worker count for jintra end-to-end rows
	// (0 = serial engine).
	IntraWorkers int `json:"intra_workers,omitempty"`
	// SpeedupVsSerial is NsPerSimTx(serial) / NsPerSimTx(this row), set
	// only on jintra rows.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// Report is the whole BENCH_10.json document.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	BenchVersion  int    `json:"bench_version"`
	Quick         bool   `json:"quick"`
	GoVersion     string `json:"go_version"`
	GoOS          string `json:"go_os"`
	GoArch        string `json:"go_arch"`
	// NumCPU is the host's logical CPU count: the ceiling on any jintra
	// row's speedup. On a single-CPU host the jintra rows record the
	// two-phase machinery's overhead, not a speedup.
	NumCPU int      `json:"num_cpu"`
	Notes  string   `json:"notes,omitempty"`
	Suite  []Result `json:"suite"`
	// Sweeps holds the open-loop load-sweep curves (simulated numbers,
	// deterministic for a given seed — unlike the host-time Suite rows).
	Sweeps []SweepSummary `json:"sweeps,omitempty"`
	// Chaos is the committed fail-stop robustness row (simulated,
	// deterministic per seed).
	Chaos *ChaosSummary `json:"chaos,omitempty"`
	// Scaling holds the N-node torus rows: per-node simulation rate and
	// the simulated throughput curve (the simulated numbers are
	// deterministic per seed; the host rates are not).
	Scaling []ScalingRow `json:"scaling,omitempty"`
}

// ScalingRow is one N-node point of the scaling section. Transactions
// scale with the node count, so NsPerSimTx (host ns per simulated
// transaction) is the per-node simulation rate and staying within 10x
// of the 64-node row at 1024 nodes means the hot paths grew with the
// active set, not the machine size.
type ScalingRow struct {
	Name       string  `json:"name"`
	Nodes      int     `json:"nodes"`
	MeasureTx  uint64  `json:"measure_tx"`
	NsPerSimTx float64 `json:"ns_per_sim_tx"`
	// SimNsPerTx is the simulated time per transaction (deterministic).
	SimNsPerTx float64 `json:"sim_ns_per_tx"`
}

// ChaosSummary is the fail-stop row: one node of a two-chip open-loop
// machine dies mid-measurement; the row records the recovery timeline
// and the throughput on either side of it.
type ChaosSummary struct {
	Name string `json:"name"`
	// MTTRNs is restored − onset for the single fail-stop event.
	MTTRNs float64 `json:"mttr_ns"`
	// CapacityFrac is the alive-CPU fraction after the death (0.5 here).
	CapacityFrac float64 `json:"capacity_frac"`
	Migrated     int     `json:"migrated"`
	HomesAdopted int     `json:"homes_adopted"`
	// PreFaultTxS and PostRecoveryTxS are completion rates over the
	// whole bins strictly before onset and strictly after restored.
	PreFaultTxS     float64 `json:"pre_fault_tx_s"`
	PostRecoveryTxS float64 `json:"post_recovery_tx_s"`
	// DegradedRatio is pre/post; the harness enforces <= 2 (the degraded
	// half-machine must keep at least half the pre-fault rate).
	DegradedRatio    float64 `json:"degraded_ratio"`
	ShedRate         float64 `json:"shed_rate"`
	SLOViolationRate float64 `json:"slo_violation_rate"`
}

// SweepSummary is one committed hockey-stick curve: throughput vs tail
// latency over offered load, with the detected saturation multiplier
// (-1 when the sweep never saturates).
type SweepSummary struct {
	Name                 string       `json:"name"`
	CapacityTxS          float64      `json:"capacity_tx_s"`
	SaturationMultiplier float64      `json:"saturation_multiplier"`
	Points               []SweepPoint `json:"points"`
}

// SweepPoint is one offered-load point of a SweepSummary.
type SweepPoint struct {
	Multiplier  float64 `json:"multiplier"`
	OfferedTxS  float64 `json:"offered_tx_s"`
	AchievedTxS float64 `json:"achieved_tx_s"`
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	P999Ns      float64 `json:"p999_ns"`
}

// loadSweep runs one open-loop sweep and compresses it to the committed
// summary form (the full per-point Results would bloat the report).
func loadSweep(name string, kind core.WorkloadKind, cpus int, seed uint64, warmTx, measureTx uint64) SweepSummary {
	s := piranha.RunLoadSweep(
		piranha.SystemConfig{Chips: 1, Chip: core.PiranhaChip(cpus)},
		piranha.Workload{Kind: kind},
		piranha.LoadSweep{
			Multipliers: []float64{0.3, 0.7, 0.95, 1.2},
			Scale:       piranha.Scale{Warm: warmTx, Measure: measureTx},
			Seed:        seed,
		})
	sum := SweepSummary{Name: name, CapacityTxS: s.CapacityTxS, SaturationMultiplier: -1}
	if s.Saturation >= 0 {
		sum.SaturationMultiplier = s.Points[s.Saturation].Multiplier
	}
	for _, p := range s.Points {
		sum.Points = append(sum.Points, SweepPoint{
			Multiplier:  p.Multiplier,
			OfferedTxS:  p.OfferedTxS,
			AchievedTxS: p.AchievedTxS,
			P50Ns:       p.P50Ns,
			P99Ns:       p.P99Ns,
			P999Ns:      p.P999Ns,
		})
	}
	return sum
}

// failStopBench runs the chaos row: a two-chip open-loop OLTP machine
// offered 0.35x its calibrated capacity loses node 1 mid-measurement.
// The run repeats under -jintra 4 and the harness fails unless the two
// JSON-serialized Results are byte-identical, the recovery event is
// well-formed, and the post-recovery completion rate stays within 2x of
// the pre-fault rate (the surviving half-machine has the headroom, and
// the blackout backlog drains at full degraded capacity).
func failStopBench(seed uint64) *ChaosSummary {
	sys := core.SystemConfig{Chips: 2, Chip: core.PiranhaChip(4)}
	cal := core.Run(core.Experiment{
		Name: "chaos/calibrate", Sys: sys,
		Work:   core.WorkloadSpec{Kind: core.OLTP},
		WarmTx: 30, MeasureTx: 120, Seed: seed,
	})
	exp := core.Experiment{
		Name: "chaos/failstop", Sys: sys,
		Work: core.WorkloadSpec{Kind: core.OLTP, Arrivals: workload.ArrivalSpec{
			Rate: 0.35 * 1e9 / cal.TimePerTx, Capacity: 256, RetryBudget: 2,
		}},
		WarmTx: 30, MeasureTx: 120, Seed: seed,
		Intervals: 50 * sim.Microsecond,
		// 2x the closed-loop residence time (8 CPUs x 8 server procs,
		// Little's law), mirroring RunChaosSweep's auto-derivation.
		SLOTarget: sim.Time(2*64*cal.TimePerTx) * sim.Nanosecond,
		Faults: fault.Plan{
			FailStop: []fault.NodeFailure{{Node: 1, At: 200 * sim.Microsecond}},
		},
	}
	run := func(workers int) (core.Result, []byte) {
		e := exp
		e.IntraWorkers = workers
		// Private failover target per run: never share mutable state.
		e.FaultAdopt = ras.NewFailover(0).Takeover
		res := core.Run(e)
		b, err := json.Marshal(res)
		if err != nil {
			fatalf("chaos row: marshal: %v", err)
		}
		return res, b
	}
	r, b1 := run(1)
	_, b4 := run(4)
	if !bytes.Equal(b1, b4) {
		fatalf("chaos row: JSON diverged between -jintra 1 and 4")
	}
	if r.Recovery == nil || len(r.Recovery.Events) != 1 {
		fatalf("chaos row: no fail-stop recovery event recorded")
	}
	ev := r.Recovery.Events[0]

	// Completion rates over whole bins strictly before onset and strictly
	// after restored; the final (possibly partial) bin is excluded.
	s := r.Series
	var preTx, postTx uint64
	var preBins, postBins int
	for i, b := range s.Bins {
		lo := s.Origin + sim.Time(i)*s.Interval
		switch {
		case lo+s.Interval <= ev.Onset:
			preTx += b.Completions
			preBins++
		case lo >= ev.Restored && i < len(s.Bins)-1:
			postTx += b.Completions
			postBins++
		}
	}
	if preBins == 0 || postBins == 0 || preTx == 0 || postTx == 0 {
		fatalf("chaos row: degenerate windows (pre %d tx/%d bins, post %d tx/%d bins)",
			preTx, preBins, postTx, postBins)
	}
	binS := float64(s.Interval) / 1e12 // ps → s
	sum := &ChaosSummary{
		Name:            "chaos/failstop/2chip",
		MTTRNs:          float64(ev.Restored-ev.Onset) / float64(sim.Nanosecond),
		CapacityFrac:    r.Recovery.CapacityFrac,
		Migrated:        ev.Migrated,
		HomesAdopted:    ev.HomesAdopted,
		PreFaultTxS:     float64(preTx) / (float64(preBins) * binS),
		PostRecoveryTxS: float64(postTx) / (float64(postBins) * binS),
	}
	sum.DegradedRatio = sum.PreFaultTxS / sum.PostRecoveryTxS
	if r.Admission != nil && r.Admission.Arrivals > 0 {
		sum.ShedRate = float64(r.Admission.Shed) / float64(r.Admission.Arrivals)
	}
	if r.SLO != nil {
		sum.SLOViolationRate = r.SLO.ViolationRate()
	}
	if sum.DegradedRatio > 2 {
		fatalf("chaos row: post-recovery rate %.0f tx/s is less than half the pre-fault %.0f tx/s",
			sum.PostRecoveryTxS, sum.PreFaultTxS)
	}
	return sum
}

// scalingBench runs the N-node scaling suite: OLTP on ScaleOut torus
// machines with piranha.DefaultPerNodeScale transactions per node. The
// anchor row (64 nodes, or the quick list's midpoint) additionally
// reruns serially and under -jintra 4; the harness fails unless all
// three simulated Results serialize identically. After the sweep the
// per-node rate gate runs: at 1024 nodes, host ns per simulated
// transaction must stay within 10x of the 64-node row.
func scalingBench(seed uint64, quick bool) []ScalingRow {
	nodes := []int{8, 64, 256, 1024}
	anchor := 64
	if quick {
		nodes = []int{8, 32, 64}
		anchor = 32
	}
	per := piranha.DefaultPerNodeScale
	run := func(n, workers int) (core.Result, float64) {
		exp := core.Experiment{
			Name:         fmt.Sprintf("scaling/oltp/%dn", n),
			Sys:          piranha.ScaleOut(n, 1),
			Work:         core.WorkloadSpec{Kind: core.OLTP},
			WarmTx:       per.Warm * uint64(n),
			MeasureTx:    per.Measure * uint64(n),
			Seed:         seed,
			IntraWorkers: workers,
		}
		//piranha:allow determinism host benchmark harness measures wall-clock by design
		t0 := time.Now()
		res := core.Run(exp)
		//piranha:allow determinism host benchmark harness measures wall-clock by design
		dt := time.Since(t0)
		if res.Tx != exp.MeasureTx {
			fatalf("%s: measured %d transactions, want %d", exp.Name, res.Tx, exp.MeasureTx)
		}
		return res, float64(dt.Nanoseconds()) / float64(exp.MeasureTx)
	}
	rows := make([]ScalingRow, 0, len(nodes))
	rates := map[int]float64{}
	for _, n := range nodes {
		res, nsPerTx := run(n, 0)
		if n == anchor {
			b1, err := json.Marshal(res)
			if err != nil {
				fatalf("scaling row: marshal: %v", err)
			}
			rerun, _ := run(n, 0)
			b2, _ := json.Marshal(rerun)
			j4, _ := run(n, 4)
			b3, _ := json.Marshal(j4)
			if !bytes.Equal(b1, b2) {
				fatalf("scaling row %dn: JSON diverged across reruns", n)
			}
			if !bytes.Equal(b1, b3) {
				fatalf("scaling row %dn: JSON diverged between -jintra 1 and 4", n)
			}
		}
		rows = append(rows, ScalingRow{
			Name:       fmt.Sprintf("scaling/oltp/%dn", n),
			Nodes:      n,
			MeasureTx:  per.Measure * uint64(n),
			NsPerSimTx: nsPerTx,
			SimNsPerTx: res.TimePerTx,
		})
		rates[n] = nsPerTx
	}
	if r64, r1024 := rates[64], rates[1024]; r64 > 0 && r1024 > 0 && r1024 > 10*r64 {
		fatalf("scaling: 1024-node per-node rate %.0f ns/sim-tx exceeds 10x the 64-node rate %.0f ns/sim-tx",
			r1024, r64)
	}
	return rows
}

// measure times iters calls of fn, each covering ops operations, after
// warm calls to reach steady state, and returns per-operation cost.
func measure(name, kind string, warm, iters, ops int, fn func()) Result {
	for i := 0; i < warm; i++ {
		fn()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	//piranha:allow determinism host benchmark harness measures wall-clock by design
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	//piranha:allow determinism host benchmark harness measures wall-clock by design
	dt := time.Since(t0)
	runtime.ReadMemStats(&m1)
	total := float64(iters * ops)
	return Result{
		Name:        name,
		Kind:        kind,
		Iters:       iters,
		Ops:         ops,
		NsPerOp:     float64(dt.Nanoseconds()) / total,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / total,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / total,
	}
}

// endToEnd runs one full experiment per iteration and reports host ns
// per simulated transaction plus the (deterministic) simulated Result,
// so jintra rows can be checked bit-identical against their serial row.
func endToEnd(name string, kind core.WorkloadKind, cpus, intraWorkers int, seed, warmTx, measureTx uint64, iters int) (Result, core.Result) {
	exp := core.Experiment{
		Name:         name,
		Sys:          core.SystemConfig{Chips: 1, Chip: core.PiranhaChip(cpus)},
		Work:         core.WorkloadSpec{Kind: kind},
		WarmTx:       warmTx,
		MeasureTx:    measureTx,
		Seed:         seed,
		IntraWorkers: intraWorkers,
	}
	var last core.Result
	r := measure(name, "end-to-end", 1, iters, 1, func() {
		last = core.Run(exp)
		if last.Tx != measureTx {
			fatalf("%s: measured %d transactions, want %d", name, last.Tx, measureTx)
		}
	})
	r.NsPerSimTx = r.NsPerOp / float64(measureTx)
	r.IntraWorkers = intraWorkers
	return r, last
}

// fakeMem is the fixed-latency memory stub behind the L2 micro rig.
type fakeMem struct{}

func (fakeMem) Read(now sim.Time, _ cache.Addr) (sim.Time, sim.Time) {
	return now + 60*sim.Nanosecond, now + 90*sim.Nanosecond
}
func (fakeMem) Write(now sim.Time, _ cache.Addr) sim.Time { return now + 40*sim.Nanosecond }

// l2LookupBench probes a warmed single-chip L2's line table: half the
// probes hit resident lines, half miss, exercising both probe-chain
// outcomes of the dense table.
func l2LookupBench(iters int) Result {
	clock := sim.MHz(500)
	var l1s []*l1.Cache
	var ds []*l1.Cache
	for cpu := 0; cpu < 8; cpu++ {
		d := l1.New(l1.Data, cpu, cpu*2, l1.DefaultConfig())
		i := l1.New(l1.Instruction, cpu, cpu*2+1, l1.DefaultConfig())
		ds = append(ds, d)
		l1s = append(l1s, d, i)
	}
	mems := make([]l2.Memory, 8)
	for b := range mems {
		mems[b] = fakeMem{}
	}
	cache2 := l2.New(l2.DefaultConfig(), clock, l1s, mems, ics.New(ics.DefaultConfig(clock)), l2.LocalOnly{})

	const lines = 4096
	now := sim.Time(0)
	for i := 0; i < lines; i++ {
		now += 50 * sim.Nanosecond
		cache2.Access(now, ds[i%8], l2.Read, cache.Addr(i)*cache.LineBytes)
	}
	probes := make([]cache.LineAddr, 2*lines)
	for i := range probes {
		probes[i] = cache.LineAddr(i)
	}
	var hits int
	r := measure("micro/l2_lookup", "micro", 2, iters, len(probes), func() {
		hits = 0
		for _, line := range probes {
			if cache2.HasLine(line) {
				hits++
			}
		}
	})
	if hits == 0 || hits == len(probes) {
		fatalf("l2_lookup: degenerate probe mix (%d/%d hits)", hits, len(probes))
	}
	return r
}

// peDirDispatchBench measures the directory half of a home-engine
// dispatch (decode, add sharer, re-encode, store) on a warmed dense
// directory table.
func peDirDispatchBench(iters int) Result {
	f := pe.NewFabric(pe.DefaultConfig(8), pe.NewFlatNetworkN(25*sim.Nanosecond, 8))
	lines := f.SeedDirectory(4096)
	var touched int
	r := measure("micro/pe_dirdispatch", "micro", 2, iters, len(lines), func() {
		touched = f.DirectoryDispatch(lines)
	})
	if touched != len(lines) {
		fatalf("pe_dirdispatch: touched %d entries, want %d", touched, len(lines))
	}
	return r
}

// nocHopBench delivers a recycled packet batch across an 8-node ring;
// per-op is per delivered packet.
func nocHopBench(iters int) Result {
	hb, err := noc.NewHopBench(noc.DefaultConfig(), noc.Ring{N: 8}, 1, 64)
	if err != nil {
		fatalf("noc bench: %v", err)
	}
	round := func() {
		n, err := hb.Round(1 << 20)
		if err != nil {
			fatalf("noc bench round: %v", err)
		}
		if n != hb.Packets() {
			fatalf("noc bench: delivered %d packets, want %d", n, hb.Packets())
		}
	}
	// The arrival wheel's buckets and the routers' queues grow their
	// backing arrays toward a high-water mark over the first few hundred
	// rounds (adaptive routing varies each round's arrival pattern);
	// beyond ~300 rounds every structure has peaked and rounds allocate
	// exactly nothing.
	return measure("micro/noc_hop", "micro", 512, iters, hb.Packets(), round)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "piranha-bench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	quick := flag.Bool("quick", false, "smaller transaction counts and iteration budgets (CI smoke)")
	out := flag.String("o", "BENCH_10.json", "output report path")
	baseline := flag.String("baseline", "", "compare micro allocs/op against this committed report (fail on >10% regression)")
	seed := flag.Uint64("seed", 0, "workload seed for the end-to-end and sweep rows (0 = default)")
	flag.Parse()

	warmTx, measureTx := uint64(100), uint64(500)
	e2eIters, microIters := 3, 50
	if *quick {
		warmTx, measureTx = 20, 50
		e2eIters, microIters = 1, 10
	}

	rep := Report{
		SchemaVersion: schemaVersion,
		BenchVersion:  benchVersion,
		Quick:         *quick,
		GoVersion:     runtime.Version(),
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
	}
	if rep.NumCPU < 2 {
		rep.Notes = "single-CPU host: jintra rows verify byte-identity and record the two-phase machinery's overhead; speedup requires NumCPU >= phase workers"
	}
	add := func(r Result) {
		rep.Suite = append(rep.Suite, r)
		extra := ""
		if r.NsPerSimTx > 0 {
			extra = fmt.Sprintf("  %12.0f ns/sim-tx", r.NsPerSimTx)
		}
		if r.SpeedupVsSerial > 0 {
			extra += fmt.Sprintf("  %5.2fx vs serial", r.SpeedupVsSerial)
		}
		fmt.Printf("%-22s %12.1f ns/op %10.3f allocs/op %12.1f B/op%s\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, extra)
	}
	// jintra repeats a serial end-to-end row under two-phase parallel
	// execution, records the speedup, and fails loudly if the simulated
	// Result moved by even one counter — the byte-identity contract,
	// enforced on every bench run rather than only in the test suite.
	jintra := func(serial Result, serialRes core.Result, kind core.WorkloadKind, cpus, workers int, tag string) {
		name := serial.Name + "/jintra" + tag
		r, res := endToEnd(name, kind, cpus, workers, *seed, warmTx, measureTx, e2eIters)
		res.Name = serialRes.Name // rows differ by name alone; counters may not
		if res != serialRes {
			fatalf("%s: simulated result diverged from serial row %s", name, serial.Name)
		}
		r.SpeedupVsSerial = serial.NsPerSimTx / r.NsPerSimTx
		add(r)
	}

	oltp1, oltp1Res := endToEnd("oltp/p1", core.OLTP, 1, 0, *seed, warmTx, measureTx, e2eIters)
	add(oltp1)
	oltp8, oltp8Res := endToEnd("oltp/p8", core.OLTP, 8, 0, *seed, warmTx, measureTx, e2eIters)
	add(oltp8)
	dss1, _ := endToEnd("dss/p1", core.DSS, 1, 0, *seed, warmTx, measureTx, e2eIters)
	add(dss1)
	dss8, dss8Res := endToEnd("dss/p8", core.DSS, 8, 0, *seed, warmTx, measureTx, e2eIters)
	add(dss8)

	// P8 rows at 2, 4, and GOMAXPROCS phase workers (tagged "max" so the
	// report's row-name set is stable across machines), plus one P1 row
	// pinning the automatic serial fallback.
	jintra(oltp8, oltp8Res, core.OLTP, 8, 2, "2")
	jintra(oltp8, oltp8Res, core.OLTP, 8, 4, "4")
	jintra(oltp8, oltp8Res, core.OLTP, 8, runtime.GOMAXPROCS(0), "max")
	jintra(dss8, dss8Res, core.DSS, 8, 2, "2")
	jintra(dss8, dss8Res, core.DSS, 8, 4, "4")
	jintra(oltp1, oltp1Res, core.OLTP, 1, 4, "4")

	add(l2LookupBench(microIters))
	add(peDirDispatchBench(microIters))
	add(nocHopBench(microIters))

	// Open-loop load sweeps: the committed hockey-stick trajectory. These
	// are simulated numbers (deterministic per seed), so the curves are
	// comparable across hosts and PRs.
	for _, sw := range []struct {
		name string
		kind core.WorkloadKind
		cpus int
	}{
		{"sweep/oltp/p1", core.OLTP, 1},
		{"sweep/oltp/p8", core.OLTP, 8},
		{"sweep/dss/p8", core.DSS, 8},
	} {
		s := loadSweep(sw.name, sw.kind, sw.cpus, *seed, warmTx, measureTx)
		rep.Sweeps = append(rep.Sweeps, s)
		sat := "none"
		if s.SaturationMultiplier > 0 {
			sat = fmt.Sprintf("%gx", s.SaturationMultiplier)
		}
		last := s.Points[len(s.Points)-1]
		fmt.Printf("%-22s capacity %8.0f tx/s  saturates at %-5s p99@%gx %.0f ns\n",
			s.Name, s.CapacityTxS, sat, last.Multiplier, last.P99Ns)
	}

	// The chaos row: fail-stop recovery, degraded-mode throughput, and
	// the jintra byte-identity of the whole fault pipeline.
	ch := failStopBench(*seed)
	rep.Chaos = ch
	fmt.Printf("%-22s mttr %8.0f ns  pre %8.0f tx/s  post %8.0f tx/s  ratio %.2f  sloviol %.3f\n",
		ch.Name, ch.MTTRNs, ch.PreFaultTxS, ch.PostRecoveryTxS, ch.DegradedRatio, ch.SLOViolationRate)

	// The N-node scaling section: per-node simulation rate on the torus
	// machines, with the O(active) 10x gate and anchor-row byte-identity
	// enforced inside.
	rep.Scaling = scalingBench(*seed, *quick)
	for _, row := range rep.Scaling {
		fmt.Printf("%-22s %12.0f ns/sim-tx  sim %8.0f ns/tx  (%d nodes, %d tx)\n",
			row.Name, row.NsPerSimTx, row.SimNsPerTx, row.Nodes, row.MeasureTx)
	}

	// The refactor's contract: the three hot paths allocate nothing in
	// steady state. Enforce it on every run, not just under -baseline.
	failed := false
	for _, r := range rep.Suite {
		if r.Kind == "micro" && r.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "piranha-bench: %s allocates %.4f objects/op; hot paths must be allocation-free\n",
				r.Name, r.AllocsPerOp)
			failed = true
		}
	}

	if *baseline != "" {
		if err := compareBaseline(*baseline, rep); err != nil {
			fmt.Fprintf(os.Stderr, "piranha-bench: %v\n", err)
			failed = true
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s\n", *out)
	if failed {
		os.Exit(1)
	}
}

// compareBaseline fails when a micro benchmark's allocs/op regressed
// more than 10% against the committed report (and any regression at all
// from an allocation-free baseline).
func compareBaseline(path string, cur Report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.SchemaVersion != schemaVersion {
		return fmt.Errorf("baseline %s: schema_version %d, want %d", path, base.SchemaVersion, schemaVersion)
	}
	byName := make(map[string]Result)
	for _, r := range base.Suite {
		if r.Kind == "micro" {
			byName[r.Name] = r
		}
	}
	for _, r := range cur.Suite {
		if r.Kind != "micro" {
			continue
		}
		b, ok := byName[r.Name]
		if !ok {
			continue // new benchmark: nothing to regress against
		}
		limit := b.AllocsPerOp * 1.10
		if r.AllocsPerOp > limit {
			return fmt.Errorf("%s: allocs/op %.4f exceeds baseline %.4f by >10%%",
				r.Name, r.AllocsPerOp, b.AllocsPerOp)
		}
	}
	return nil
}
