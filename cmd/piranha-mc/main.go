// Command piranha-mc model-checks a registered coherence protocol: it
// exhaustively explores the reachable state space of an N-node
// micro-system (2–4 nodes, one line, home at node 0) and verifies the
// §3.5 safety claims — NAK-freedom, deadlock-freedom, no stale-data
// reads, TSRF bounds — reporting any violation with a minimal
// counterexample trace.
//
// Usage:
//
//	piranha-mc                          # piranha protocol, 2 nodes
//	piranha-mc -nodes 4 -ops 4         # larger micro-system
//	piranha-mc -json                    # result as JSON on stdout
//	piranha-mc -selftest                # mutation self-test (checker's
//	                                    # own regression: planted bugs
//	                                    # must be caught)
//	piranha-mc -cx-dir traces/          # write counterexample traces
//
// Exit status is 0 when the exploration (or self-test) is clean, 1 on
// a violation (or an undetected planted bug), 2 on a usage error.
// Output is deterministic: the same flags produce byte-identical
// output on every run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"piranha/internal/lint"
	"piranha/internal/mcheck"
	"piranha/internal/protocol"
)

func main() {
	var (
		proto      = flag.String("protocol", "piranha", "registered protocol to check")
		nodes      = flag.Int("nodes", 2, "micro-system size (2-4; node 0 is the home)")
		ops        = flag.Int("ops", mcheck.DefaultMaxOps, "processor-operation budget per trace")
		depth      = flag.Int("depth", 0, "BFS depth bound (0 = explore to exhaustion)")
		maxStates  = flag.Int("max-states", mcheck.DefaultMaxStates, "state-count safety valve")
		tsrf       = flag.Int("tsrf", mcheck.DefaultTSRFEntries, "per-node TSRF occupancy bound")
		violations = flag.Int("max-violations", 1, "stop after this many violations")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON on stdout")
		selftest   = flag.Bool("selftest", false, "run the mutation self-test instead of a plain check")
		mutate     = flag.String("mutate", "", "plant a cataloged bug (see protocol.Mutations) before checking")
		cxDir      = flag.String("cx-dir", "", "directory for counterexample Chrome traces (created if missing)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "piranha-mc: unexpected arguments; configuration is flag-driven")
		os.Exit(2)
	}
	if *nodes < 2 || *nodes > 4 {
		fmt.Fprintln(os.Stderr, "piranha-mc: -nodes must be 2, 3 or 4")
		os.Exit(2)
	}
	spec, ok := protocol.Lookup(*proto)
	if !ok {
		fmt.Fprintf(os.Stderr, "piranha-mc: unknown protocol %q (registered:", *proto)
		for _, s := range protocol.Registered() {
			fmt.Fprintf(os.Stderr, " %s", s.Name)
		}
		fmt.Fprintln(os.Stderr, ")")
		os.Exit(2)
	}
	cfg := mcheck.Config{
		Nodes: *nodes, MaxOps: *ops, MaxDepth: *depth,
		MaxStates: *maxStates, TSRFEntries: *tsrf, MaxViolations: *violations,
	}

	if *selftest {
		os.Exit(runSelfTest(cfg, *jsonOut, *cxDir, spec.Name))
	}

	table, label := spec.Table, spec.Name
	if *mutate != "" {
		m, ok := protocol.MutationByName(*mutate)
		if !ok {
			fmt.Fprintf(os.Stderr, "piranha-mc: unknown mutation %q (cataloged:", *mutate)
			for _, m := range protocol.Mutations() {
				fmt.Fprintf(os.Stderr, " %s", m.Name)
			}
			fmt.Fprintln(os.Stderr, ")")
			os.Exit(2)
		}
		table, label = m.Apply(), spec.Name+"+"+m.Name
	}

	res := mcheck.Check(table, cfg)
	res.Protocol = label
	if *cxDir != "" {
		if err := writeCounterexamples(*cxDir, label, res.Violations); err != nil {
			fmt.Fprintln(os.Stderr, "piranha-mc:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		if err := writeResultJSON(os.Stdout, res, spec); err != nil {
			fmt.Fprintln(os.Stderr, "piranha-mc:", err)
			os.Exit(2)
		}
	} else {
		report(res, spec)
	}
	if len(res.Violations) > 0 {
		os.Exit(1)
	}
}

// report prints the human-readable summary: the exploration's scale,
// then each violation as a piranha-vet-style diagnostic followed by its
// counterexample trace.
func report(res *mcheck.Result, spec protocol.Spec) {
	scope := "bounded"
	if res.Exhausted {
		scope = "exhausted"
	}
	fmt.Printf("piranha-mc: %s, %d nodes: %d states, %d transitions, depth %d (%s)\n",
		res.Protocol, res.Nodes, res.States, res.Transitions, res.Depth, scope)
	if len(res.Violations) == 0 {
		fmt.Println("piranha-mc: no violations")
		return
	}
	diags := res.Diagnostics(spec)
	for i, v := range res.Violations {
		fmt.Println(diags[i])
		for _, s := range v.Trace {
			if s.Msg != "" {
				fmt.Printf("    n%d %s %s  [%s]\n        %s\n", s.Actor, s.Kind, s.Msg, s.Rule, s.State)
			} else {
				fmt.Printf("    n%d %s  [%s]\n        %s\n", s.Actor, s.Kind, s.Rule, s.State)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "piranha-mc: %d violation(s)\n", len(res.Violations))
}

// runSelfTest plants each cataloged bug and requires the checker to
// catch it. A clean self-test exits 0; an undetected mutation exits 1.
func runSelfTest(cfg mcheck.Config, jsonOut bool, cxDir, protoName string) int {
	if cfg.MaxViolations < 4 {
		// A planted bug may trip sibling invariants before its
		// documented one; give the expected invariant room to surface.
		cfg.MaxViolations = 4
	}
	results := mcheck.SelfTest(cfg)
	missed := 0
	for _, r := range results {
		if !r.Detected {
			missed++
		}
	}
	if cxDir != "" {
		for _, m := range protocol.Mutations() {
			res := mcheck.Check(m.Apply(), cfg)
			name := fmt.Sprintf("%s-%s", protoName, m.Name)
			if err := writeNamedCounterexamples(cxDir, name, res.Violations); err != nil {
				fmt.Fprintln(os.Stderr, "piranha-mc:", err)
				return 2
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "piranha-mc:", err)
			return 2
		}
	} else {
		for _, r := range results {
			verdict := "DETECTED"
			if !r.Detected {
				verdict = "MISSED"
			}
			fmt.Printf("piranha-mc: selftest %-22s expect %-22s %s (%d states, depth %d)\n",
				r.Mutation, r.Expect, verdict, r.States, r.Depth)
		}
	}
	if missed > 0 {
		fmt.Fprintf(os.Stderr, "piranha-mc: %d planted bug(s) not detected\n", missed)
		return 1
	}
	return 0
}

func writeCounterexamples(dir, protoName string, violations []mcheck.Violation) error {
	return writeNamedCounterexamples(dir, protoName, violations)
}

// writeResultJSON emits the exploration result with its violations
// rendered in the same diagnostic wire shape piranha-vet -json uses, so
// downstream tooling parses findings from either command identically.
func writeResultJSON(w io.Writer, res *mcheck.Result, spec protocol.Spec) error {
	var diags bytes.Buffer
	if err := lint.WriteJSON(&diags, res.Diagnostics(spec)); err != nil {
		return err
	}
	out := struct {
		*mcheck.Result
		Diagnostics json.RawMessage `json:"diagnostics"`
	}{Result: res, Diagnostics: bytes.TrimSpace(diags.Bytes())}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeNamedCounterexamples writes one Chrome trace per violation as
// <prefix>-cx<i>-<invariant>.json under dir.
func writeNamedCounterexamples(dir, prefix string, violations []mcheck.Violation) error {
	if len(violations) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, v := range violations {
		path := filepath.Join(dir, fmt.Sprintf("%s-cx%d-%s.json", prefix, i, v.Invariant))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := mcheck.WriteCounterexample(f, prefix, v); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "piranha-mc: counterexample written to %s\n", path)
	}
	return nil
}
