// Command pasm assembles protocol-engine microcode (paper §2.5.1) and
// prints the resulting 21-bit words with their disassembly. With no file
// argument it assembles the built-in reference protocol handlers.
//
// Usage:
//
//	pasm [file.uasm]
package main

import (
	"fmt"
	"os"

	"piranha/internal/sortutil"
	"piranha/internal/useq"
)

func main() {
	src := useq.ReferenceProtocol
	name := "(reference protocol)"
	if len(os.Args) > 1 {
		b, err := os.ReadFile(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src = string(b)
		name = os.Args[1]
	}
	p, err := useq.Assemble(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d words (%d-bit), store %d/%d\n\n", name, len(p.Words), useq.WordBits, len(p.Words), useq.StoreSize)
	// Invert the label table for annotation, walking labels
	// alphabetically so co-located labels print in a fixed order.
	byAddr := map[uint16][]string{}
	for _, l := range sortutil.Keys(p.Labels) {
		byAddr[p.Labels[l]] = append(byAddr[p.Labels[l]], l)
	}
	for i, w := range p.Words {
		label := ""
		for _, l := range byAddr[uint16(i)] {
			label += l + ":"
		}
		fmt.Printf("%03x  %06x  %-14s %s\n", i, uint32(w), label, w)
	}
}
