// Command piranha-vet runs the repository's static-analysis suite
// (internal/lint): determinism, hot-path allocation, protocol-table
// completeness/NAK-freedom, and nil-receiver guards. See DESIGN.md §8
// for the checked invariants and the annotation grammar.
//
// Usage:
//
//	piranha-vet ./...                  # whole module (the CI gate)
//	piranha-vet -json ./...            # findings as a JSON array
//	piranha-vet ./internal/... figures.go piranha.go
//
// Patterns select which files' findings are reported (the whole module
// is always loaded and type-checked): `./...` matches everything,
// `./dir/...` a subtree, `./dir` one directory, and a `*.go` path one
// file. Exit status is 0 when clean, 1 when findings remain, 2 on a
// load or usage error.
//
// With -json the findings are emitted as a JSON array on stdout (empty
// array when clean) in the same shape piranha-mc -json uses, so one
// consumer handles both tools.
package main

import (
	"flag"
	"fmt"
	"os"
	"path"
	"strings"

	"piranha/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "piranha-vet:", err)
		os.Exit(2)
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "piranha-vet:", err)
		os.Exit(2)
	}

	diags := lint.Run(mod, lint.DefaultAnalyzers())
	var kept []lint.Diagnostic
	for _, d := range diags {
		if matchAny(patterns, d.File) {
			kept = append(kept, d)
		}
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, kept); err != nil {
			fmt.Fprintln(os.Stderr, "piranha-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range kept {
			fmt.Println(d)
		}
	}
	if len(kept) > 0 {
		fmt.Fprintf(os.Stderr, "piranha-vet: %d finding(s)\n", len(kept))
		os.Exit(1)
	}
}

// matchAny reports whether the module-relative file matches one of the
// command-line patterns.
func matchAny(patterns []string, file string) bool {
	for _, p := range patterns {
		if matchPattern(p, file) {
			return true
		}
	}
	return false
}

func matchPattern(pat, file string) bool {
	pat = strings.TrimPrefix(pat, "./")
	switch {
	case pat == "..." || pat == ".":
		return true
	case strings.HasSuffix(pat, "/..."):
		return strings.HasPrefix(file, strings.TrimSuffix(pat, "...")) // keeps the "/"
	case strings.HasSuffix(pat, ".go"):
		return file == pat
	default:
		return path.Dir(file) == strings.TrimSuffix(pat, "/")
	}
}
