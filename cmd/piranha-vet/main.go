// Command piranha-vet runs the repository's static-analysis suite
// (internal/lint): determinism, hot-path allocation, protocol-table
// completeness/NAK-freedom, and nil-receiver guards. See DESIGN.md §8
// for the checked invariants and the annotation grammar.
//
// Usage:
//
//	piranha-vet ./...                  # whole module (the CI gate)
//	piranha-vet ./internal/... figures.go piranha.go
//
// Patterns select which files' findings are reported (the whole module
// is always loaded and type-checked): `./...` matches everything,
// `./dir/...` a subtree, `./dir` one directory, and a `*.go` path one
// file. Exit status is 0 when clean, 1 when findings remain, 2 on a
// load or usage error.
package main

import (
	"fmt"
	"os"
	"path"
	"strings"

	"piranha/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "piranha-vet:", err)
		os.Exit(2)
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "piranha-vet:", err)
		os.Exit(2)
	}

	diags := lint.Run(mod, lint.DefaultAnalyzers())
	n := 0
	for _, d := range diags {
		if matchAny(patterns, d.File) {
			fmt.Println(d)
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "piranha-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// matchAny reports whether the module-relative file matches one of the
// command-line patterns.
func matchAny(patterns []string, file string) bool {
	for _, p := range patterns {
		if matchPattern(p, file) {
			return true
		}
	}
	return false
}

func matchPattern(pat, file string) bool {
	pat = strings.TrimPrefix(pat, "./")
	switch {
	case pat == "..." || pat == ".":
		return true
	case strings.HasSuffix(pat, "/..."):
		return strings.HasPrefix(file, strings.TrimSuffix(pat, "...")) // keeps the "/"
	case strings.HasSuffix(pat, ".go"):
		return file == pat
	default:
		return path.Dir(file) == strings.TrimSuffix(pat, "/")
	}
}
