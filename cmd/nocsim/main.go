// Command nocsim runs the standalone interconnect simulator (paper §2.6):
// pick a topology, inject uniform random traffic at a given rate, and
// report delivery latency, hops, hot-potato deflections and buffer
// occupancy.
//
// Usage:
//
//	nocsim -topo torus -w 4 -h 4 -cycles 5000 -rate 0.4 -buffers 16
package main

import (
	"flag"
	"fmt"
	"os"

	"piranha/internal/noc"
	"piranha/internal/sim"
)

func main() {
	var (
		topoName = flag.String("topo", "torus", "topology: ring|mesh|torus|full")
		w        = flag.Int("w", 4, "width (mesh/torus) or node count (ring/full)")
		h        = flag.Int("h", 4, "height (mesh/torus)")
		cycles   = flag.Int("cycles", 5000, "injection cycles")
		rate     = flag.Float64("rate", 0.3, "packets injected per node per cycle")
		long     = flag.Float64("long", 0.3, "fraction of long (data) packets")
		buffers  = flag.Int("buffers", 16, "shared buffer pool per router")
		seed     = flag.Uint64("seed", 1, "rng seed")
	)
	flag.Parse()

	var topo noc.Topology
	switch *topoName {
	case "ring":
		topo = noc.Ring{N: *w}
	case "mesh":
		topo = noc.Mesh{W: *w, H: *h}
	case "torus":
		topo = noc.Torus{W: *w, H: *h}
	case "full":
		topo = noc.Full{N: *w}
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoName)
		os.Exit(2)
	}

	cfg := noc.DefaultConfig()
	cfg.BufferPool = *buffers
	net, err := noc.NewNetwork(cfg, topo, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rng := sim.NewRNG(*seed + 1)
	n := topo.Nodes()
	injected := 0
	for c := 0; c < *cycles; c++ {
		for node := 0; node < n; node++ {
			if rng.Float64() < *rate {
				dst := rng.Intn(n)
				if dst == node {
					continue
				}
				net.Inject(node, dst, rng.Intn(noc.Priorities), rng.Bool(*long))
				injected++
			}
		}
		net.Step()
	}
	if err := net.Run(1 << 30); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := net.Stats()
	fmt.Printf("topology %s  nodes=%d  injected=%d  delivered=%d\n", *topoName, n, injected, st.Delivered)
	fmt.Printf("avg latency: %.1f cycles   max: %d\n", st.AvgLatency, st.MaxLatency)
	fmt.Printf("avg hops:    %.2f\n", st.AvgHops)
	fmt.Printf("deflections: %d\n", st.Deflections)
	fmt.Printf("max buffer occupancy: %d (pool %d)\n", st.MaxPoolDepth, *buffers)
}
