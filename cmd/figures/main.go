// Command figures regenerates every table and figure of the paper's
// evaluation (plus the quantitative claims made in the text) and prints
// them as ASCII tables and bar charts. See EXPERIMENTS.md for the
// paper-vs-measured record these outputs feed.
//
// Usage:
//
//	figures             # paper-scale transaction counts (slower)
//	figures -quick      # reduced counts for a fast sanity pass
//	figures -parallel 4 # bound the simulation worker pool (0 = all CPUs)
//	figures -only fig5  # one artifact: table1, fig5, fig6, fig7, fig8,
//	                    # fig9, tpcc, pess, openpage, cmi, nonak,
//	                    # microcode, link, directory, scaling (opt-in:
//	                    # the N-node torus suite runs only when named)
//
// Every simulation is deterministic and self-contained, so artifacts are
// generated concurrently (and each config sweep fans out internally via
// piranha.RunBatch); the printed output is identical to a serial run.
//
// -intervals 2us appends per-run ASCII sparklines (busy, busy fraction,
// miss rate per window) to each report; -trace out.json additionally
// captures a Chrome trace-event file covering every simulated run;
// -json prints each report as a JSON object instead of text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"piranha"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced transaction counts")
	only := flag.String("only", "", "generate a single artifact")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU, 1 = serial)")
	jintra := flag.Int("jintra", 1, "phase workers per simulation (two-phase partitioned execution; output is byte-identical at any setting)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file covering all runs")
	jsonOut := flag.Bool("json", false, "print reports as JSON objects, one per line")
	intervals := flag.Duration("intervals", 0, "sample interval metrics per window of simulated time (e.g. 2us)")
	flag.Parse()

	piranha.SetParallelism(*parallel)
	piranha.SetIntraParallel(*jintra)
	if *intervals > 0 {
		piranha.SetIntervals(*intervals)
	}
	if *traceOut != "" {
		piranha.SetTraceCapture(0)
	}

	scale := piranha.PaperScale
	if *quick {
		scale = piranha.QuickScale
	}

	artifacts := []struct {
		name string
		gen  func() piranha.FigureReport
	}{
		{"table1", func() piranha.FigureReport { return piranha.Table1() }},
		{"fig5", func() piranha.FigureReport { return piranha.Fig5(scale) }},
		{"fig6", func() piranha.FigureReport { return piranha.Fig6(scale) }},
		{"fig7", func() piranha.FigureReport { return piranha.Fig7(scale) }},
		{"fig8", func() piranha.FigureReport { return piranha.Fig8(scale) }},
		{"tpcc", func() piranha.FigureReport { return piranha.TextTPCC(scale) }},
		{"tradeoff", func() piranha.FigureReport { return piranha.TextCacheTradeoff(scale) }},
		{"inclusion", func() piranha.FigureReport { return piranha.AblationInclusion(scale) }},
		{"pess", func() piranha.FigureReport { return piranha.TextPessimistic(scale) }},
		{"openpage", func() piranha.FigureReport { return piranha.Sec24OpenPage() }},
		{"cmi", func() piranha.FigureReport { return piranha.Sec253CMI() }},
		{"nonak", func() piranha.FigureReport { return piranha.Sec253NoNAK() }},
		{"microcode", func() piranha.FigureReport { return piranha.Sec251Microcode() }},
		{"link", func() piranha.FigureReport { return piranha.Sec261LinkCode() }},
		{"directory", func() piranha.FigureReport { return piranha.DirectoryNote() }},
		{"fig9", func() piranha.FigureReport { return piranha.Fig9Area() }},
		// Opt-in (see the selection loop): the N-node scaling suite
		// simulates up to 1024-node machines, so it runs only when named
		// by -only — the default figures_output.txt golden is unchanged.
		{"scaling", func() piranha.FigureReport { return piranha.ScalingSuite(scale) }},
	}

	var selected []struct {
		name string
		gen  func() piranha.FigureReport
	}
	for _, a := range artifacts {
		if a.name == *only || (*only == "" && a.name != "scaling") {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "unknown artifact %q\n", *only)
		os.Exit(2)
	}

	// Artifacts are independent deterministic computations: generate them
	// concurrently (bounded by the same worker budget as the sweeps), but
	// print strictly in the canonical order. Trace capture accumulates
	// batches in submission order, so it needs the artifacts themselves
	// generated sequentially (each sweep still fans out internally).
	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	reports := make([]piranha.FigureReport, len(selected))
	if *traceOut != "" {
		for i, a := range selected {
			reports[i] = a.gen()
		}
	} else {
		sem := make(chan struct{}, workers)
		done := make(chan int)
		for i, a := range selected {
			i, a := i, a
			//piranha:allow determinism reports land in index-ordered slots and print serially after the barrier
			go func() {
				sem <- struct{}{}
				reports[i] = a.gen()
				<-sem
				done <- i
			}()
		}
		for range selected {
			<-done
		}
	}
	enc := json.NewEncoder(os.Stdout)
	for _, r := range reports {
		if *jsonOut {
			if err := enc.Encode(reportJSON{ID: r.ID, Title: r.Title, Metrics: r.Metrics, Results: r.Results}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Println(r)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := piranha.WriteCapturedTraces(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// reportJSON is the -json wire form of one artifact; each result inside
// carries its own schema_version (see DESIGN.md).
type reportJSON struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Metrics map[string]float64 `json:"metrics"`
	Results []piranha.Result   `json:"results,omitempty"`
}
