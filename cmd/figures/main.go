// Command figures regenerates every table and figure of the paper's
// evaluation (plus the quantitative claims made in the text) and prints
// them as ASCII tables and bar charts. See EXPERIMENTS.md for the
// paper-vs-measured record these outputs feed.
//
// Usage:
//
//	figures            # paper-scale transaction counts (slower)
//	figures -quick     # reduced counts for a fast sanity pass
//	figures -only fig5 # one artifact: table1, fig5, fig6, fig7, fig8,
//	                   # fig9, tpcc, pess, openpage, cmi, nonak,
//	                   # microcode, link, directory
package main

import (
	"flag"
	"fmt"
	"os"

	"piranha"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced transaction counts")
	only := flag.String("only", "", "generate a single artifact")
	flag.Parse()

	scale := piranha.PaperScale
	if *quick {
		scale = piranha.QuickScale
	}

	artifacts := []struct {
		name string
		gen  func() piranha.FigureReport
	}{
		{"table1", func() piranha.FigureReport { return piranha.Table1() }},
		{"fig5", func() piranha.FigureReport { return piranha.Fig5(scale) }},
		{"fig6", func() piranha.FigureReport { return piranha.Fig6(scale) }},
		{"fig7", func() piranha.FigureReport { return piranha.Fig7(scale) }},
		{"fig8", func() piranha.FigureReport { return piranha.Fig8(scale) }},
		{"tpcc", func() piranha.FigureReport { return piranha.TextTPCC(scale) }},
		{"tradeoff", func() piranha.FigureReport { return piranha.TextCacheTradeoff(scale) }},
		{"inclusion", func() piranha.FigureReport { return piranha.AblationInclusion(scale) }},
		{"pess", func() piranha.FigureReport { return piranha.TextPessimistic(scale) }},
		{"openpage", func() piranha.FigureReport { return piranha.Sec24OpenPage() }},
		{"cmi", func() piranha.FigureReport { return piranha.Sec253CMI() }},
		{"nonak", func() piranha.FigureReport { return piranha.Sec253NoNAK() }},
		{"microcode", func() piranha.FigureReport { return piranha.Sec251Microcode() }},
		{"link", func() piranha.FigureReport { return piranha.Sec261LinkCode() }},
		{"directory", func() piranha.FigureReport { return piranha.DirectoryNote() }},
		{"fig9", func() piranha.FigureReport { return piranha.Fig9Area() }},
	}

	found := false
	for _, a := range artifacts {
		if *only != "" && a.name != *only {
			continue
		}
		found = true
		fmt.Println(a.gen())
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown artifact %q\n", *only)
		os.Exit(2)
	}
}
