// Command piranha runs simulated machine configurations against
// workloads and prints the paper's metrics: time per transaction, the
// execution-time breakdown, the L1-miss breakdown, and memory statistics.
//
// Usage:
//
//	piranha -config p8 -workload oltp -chips 1 -warm 100 -tx 200
//	piranha -config p1,p8,ooo -workload oltp,dss   # a sweep: every
//	                                               # config x workload pair,
//	                                               # run in parallel
//
// Configurations: p1, p2, p4, p8 (Piranha prototype with N cores), ino,
// ooo (next-generation 1 GHz processor), p8f (full-custom Piranha), pess
// (pessimistic ASIC parameters), and the glueless scale-out machines
// scale8/scale32/scale64/scale256/scale1024 (single-core chips on a 2-D
// torus; -chips must be left alone or match). Workloads: oltp, dss,
// tpcc, web.
//
// -scaling-sweep runs the N-node scaling suite instead: per workload it
// runs ScaleOut machines at each node count ('default' = 8,64,256,1024)
// with a fixed per-node transaction budget and prints throughput,
// speedup vs the smallest machine, and parallel efficiency.
//
// Sweeps fan out across host CPUs (bounded by -parallel); each run is an
// isolated deterministic simulation, so results are printed in sweep
// order and are identical to running each pair alone.
//
// -trace out.json writes a Chrome trace-event file (open in Perfetto or
// chrome://tracing) covering every run in the sweep; -intervals samples
// per-window busy/stall/miss series; -json prints one versioned Result
// object per experiment instead of the text summary. Traces and JSON
// are byte-identical regardless of -parallel.
//
// -faults runs a fault-injection campaign: the flag takes a base plan
// ("default" or "ber=1e-5,loss=1e-4,memflip=1e-4,stall=1e-6,mirror") and
// -fault-grid a list of rate multipliers; every config x workload pair
// runs once per multiplier and a degradation table (throughput vs fault
// rate, with the fault counter block) prints per pair. Campaigns are
// deterministic: the same seed and grid reproduce identical counters and
// curves.
//
// -faults also accepts fail-stop node deaths ("failstop=1@10us", with
// optional "detect=" and "redispatch=" tunables): the node dies that
// long after the measured window starts, its processes migrate, the
// directory is reconstructed at the RAS mirror, and the run reports an
// MTTR and degraded-mode counters.
//
// Combining -load-sweep with -faults runs the composed chaos campaign:
// the load grid crossed with the fault grid, one degradation surface
// (p50/p99/p999, shed rate, SLO violations, MTTR per cell) per config x
// workload pair. See RunChaosSweep.
//
// -arrivals switches runs to open-loop: transactions arrive on a seeded
// stochastic process ("poisson,rate=2e5,cap=256", "mmpp,rate=1.5e5,
// burst=8", "diurnal,rate=2e5,depth=0.8", optionally "mix=oltp:3/dss:1")
// and queue for admission; results grow arrival→completion latency
// percentiles and admission counters. -load-sweep runs the open-loop
// hockey-stick campaign instead: per config x workload pair it
// calibrates closed-loop capacity, offers load at the listed capacity
// multipliers, and prints throughput vs tail latency with the detected
// saturation point.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"piranha"
	"piranha/internal/core"
	"piranha/internal/fault"
	"piranha/internal/ras"
	"piranha/internal/runner"
	"piranha/internal/sim"
	"piranha/internal/stats"
	"piranha/internal/trace"
	"piranha/internal/workload"
)

// defaultFaultPlan is the campaign base when -faults=default: rates low
// enough that the machine limps rather than halts, high enough that a
// short smoke run exercises every fault class.
func defaultFaultPlan() fault.Plan {
	return fault.Plan{
		LinkBER:       1e-5,
		MsgLoss:       1e-4,
		MemFlip:       1e-4,
		MemDoubleFrac: 0.1,
		StallProb:     1e-6,
	}
}

// parseFaultPlan parses the -faults spec: "default", or comma-separated
// key=value pairs (ber, loss, memflip, double, stall), the bare "mirror"
// token, fail-stop deaths as "failstop=NODE@TIME" (repeatable; TIME is a
// duration after the measured window starts, e.g. "failstop=1@10us"),
// and the fail-stop tunables "detect=DURATION" / "redispatch=DURATION".
func parseFaultPlan(spec string) (fault.Plan, error) {
	if spec == "default" {
		return defaultFaultPlan(), nil
	}
	var p fault.Plan
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if tok == "mirror" {
			p.Mirrored = true
			continue
		}
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return p, fmt.Errorf("bad -faults token %q (want key=value or mirror)", tok)
		}
		switch k {
		case "failstop":
			ns, at, ok := strings.Cut(v, "@")
			if !ok {
				return p, fmt.Errorf("bad -faults failstop %q (want NODE@TIME, e.g. 1@10us)", v)
			}
			node, err := strconv.Atoi(ns)
			if err != nil {
				return p, fmt.Errorf("bad -faults failstop node %q: %v", ns, err)
			}
			d, err := time.ParseDuration(at)
			if err != nil {
				return p, fmt.Errorf("bad -faults failstop time %q: %v", at, err)
			}
			p.FailStop = append(p.FailStop, fault.NodeFailure{
				Node: node, At: sim.Time(d.Nanoseconds()) * sim.Nanosecond,
			})
			continue
		case "detect", "redispatch":
			d, err := time.ParseDuration(v)
			if err != nil {
				return p, fmt.Errorf("bad -faults %s duration %q: %v", k, v, err)
			}
			if k == "detect" {
				p.DetectLatency = sim.Time(d.Nanoseconds()) * sim.Nanosecond
			} else {
				p.RedispatchPenalty = sim.Time(d.Nanoseconds()) * sim.Nanosecond
			}
			continue
		}
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return p, fmt.Errorf("bad -faults value %q: %v", tok, err)
		}
		switch k {
		case "ber":
			p.LinkBER = x
		case "loss":
			p.MsgLoss = x
		case "memflip":
			p.MemFlip = x
		case "double":
			p.MemDoubleFrac = x
		case "stall":
			p.StallProb = x
		default:
			return p, fmt.Errorf("unknown -faults key %q (ber|loss|memflip|double|stall|failstop|detect|redispatch|mirror)", k)
		}
	}
	return p, nil
}

// parseGrid parses the -fault-grid multiplier list.
func parseGrid(spec string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		x, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -fault-grid value %q: %v", tok, err)
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-fault-grid is empty")
	}
	return out, nil
}

// faultLine renders one grid row's counters compactly.
func faultLine(fs *piranha.FaultStats) string {
	if fs == nil {
		return "-"
	}
	return fmt.Sprintf("inj=%-6d retrans=%-5d lost=%-4d rec=%-4d mem=%d/%d/%d stalls=%d",
		fs.Injected, fs.Retransmits, fs.MessagesLost, fs.Recovered,
		fs.MemCorrected, fs.MemFailovers, fs.MemUnrecoverable, fs.Stalls)
}

func main() {
	var (
		config    = flag.String("config", "p8", "comma-separated configurations: p1|p2|p4|p8|ino|ooo|p8f|pess")
		work      = flag.String("workload", "oltp", "comma-separated workloads: oltp|dss|tpcc|web")
		chips     = flag.Int("chips", 1, "number of chips (glueless interconnect)")
		warm      = flag.Uint64("warm", 100, "warm-up transactions")
		tx        = flag.Uint64("tx", 200, "measured transactions")
		seed      = flag.Uint64("seed", 0, "workload seed (0 = default)")
		parallel  = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU, 1 = serial)")
		jintra    = flag.Int("jintra", 1, "phase workers per simulation (two-phase partitioned execution; output is byte-identical at any setting)")
		verbose   = flag.Bool("v", false, "print full statistics")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON file covering all runs")
		jsonOut   = flag.Bool("json", false, "print results as versioned JSON, one object per line")
		intervals = flag.Duration("intervals", 0, "sample interval metrics per window of simulated time (e.g. 2us)")
		faults    = flag.String("faults", "", "fault campaign base plan: 'default' or e.g. 'ber=1e-5,loss=1e-4,memflip=1e-4,stall=1e-6,mirror'")
		faultGrid = flag.String("fault-grid", "0,1,2,4,8", "comma-separated rate multipliers swept per config x workload pair")
		arrivals  = flag.String("arrivals", "", "open-loop arrival stream, e.g. 'poisson,rate=2e5,cap=256' or 'mmpp,rate=1.5e5,burst=8,mix=oltp:3/dss:1' (rate in tx/s of simulated time; with -load-sweep the rate is set per point and may be omitted)")
		loadSweep = flag.String("load-sweep", "", "load-sweep campaign: 'default' or comma-separated capacity multipliers (e.g. '0.3,0.7,0.95,1.2') run open-loop per config x workload pair")
		scaling   = flag.String("scaling-sweep", "", "N-node scaling sweep on the glueless 2-D torus: 'default' (8,64,256,1024) or comma-separated node counts (e.g. '8,64'); -warm/-tx become per-node budgets when set")
		scaleCPUs = flag.Int("scale-cpus", 1, "cores per chip for -scaling-sweep machines")
	)
	flag.Parse()

	var arrivalSpec piranha.Arrivals
	if *arrivals != "" {
		spec := *arrivals
		if *loadSweep != "" && !strings.Contains(spec, "rate=") {
			// Sweep mode overrides the rate per point; let the template
			// omit it.
			spec += ",rate=1"
		}
		var err error
		if arrivalSpec, err = workload.ParseArrivals(spec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	var (
		basePlan fault.Plan
		grid     []float64
	)
	if *faults != "" {
		var err error
		if basePlan, err = parseFaultPlan(*faults); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if grid, err = parseGrid(*faultGrid); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	sysByName := map[string]piranha.SystemConfig{
		"p1": piranha.P1(), "p2": piranha.P2(), "p4": piranha.P4(),
		"p8": piranha.P8(), "ino": piranha.INO(), "ooo": piranha.OOO(),
		"p8f": piranha.P8F(), "pess": piranha.Pessimistic(),
		"scale8": piranha.ScaleOut8(), "scale32": piranha.ScaleOut32(),
		"scale64": piranha.ScaleOut64(), "scale256": piranha.ScaleOut256(),
		"scale1024": piranha.ScaleOut1024(),
	}
	// lookup resolves a -config name and applies -chips: flat-network
	// configs take the flag verbatim; scale-out configs carry their own
	// torus, so a conflicting -chips is a diagnostic, not a mis-built
	// machine (the Validate call is the NewSystemErr check run early).
	lookup := func(c string) piranha.SystemConfig {
		sys, ok := sysByName[c]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown config %q\n", c)
			os.Exit(2)
		}
		if sys.Topology == nil || *chips != 1 {
			sys.Chips = *chips
		}
		if err := sys.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "config %q: %v (drop -chips or pick the matching scale-out preset)\n", c, err)
			os.Exit(2)
		}
		return sys
	}
	kindByName := map[string]core.WorkloadKind{
		"oltp": core.OLTP, "dss": core.DSS, "tpcc": core.TPCC, "web": core.WEB,
	}

	workloads := strings.Split(*work, ",")

	if *scaling != "" {
		// N-node scaling suite: one weak-scaling sweep per workload over
		// ScaleOut machines (§2.6's 1024-node design target). -config is
		// ignored — the machine is derived from the node counts.
		cfg := piranha.ScalingSweep{
			CPUsPerChip:  *scaleCPUs,
			Seed:         *seed,
			IntraWorkers: *jintra,
		}
		if *scaling != "default" {
			for _, tok := range strings.Split(*scaling, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil || n < 2 {
					fmt.Fprintf(os.Stderr, "bad -scaling-sweep node count %q\n", tok)
					os.Exit(2)
				}
				cfg.Nodes = append(cfg.Nodes, n)
			}
		}
		// -warm/-tx default to the sweep's per-node budget; honor them
		// only when the user set them (as per-node counts).
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "warm":
				cfg.PerNode.Warm = *warm
			case "tx":
				cfg.PerNode.Measure = *tx
			}
		})
		if cfg.PerNode.Warm > 0 || cfg.PerNode.Measure > 0 {
			if cfg.PerNode.Warm == 0 {
				cfg.PerNode.Warm = piranha.DefaultPerNodeScale.Warm
			}
			if cfg.PerNode.Measure == 0 {
				cfg.PerNode.Measure = piranha.DefaultPerNodeScale.Measure
			}
		}
		piranha.SetParallelism(*parallel)
		enc := json.NewEncoder(os.Stdout)
		for _, w := range workloads {
			kind, ok := kindByName[w]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown workload %q\n", w)
				os.Exit(2)
			}
			s := piranha.RunScalingSweep(piranha.Workload{Kind: kind}, cfg)
			if *jsonOut {
				if err := enc.Encode(s); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				continue
			}
			fmt.Println(s)
		}
		return
	}

	if *loadSweep != "" && *faults != "" {
		// Composed chaos campaign: the load sweep crossed with the fault
		// grid — one degradation surface per config x workload pair, each
		// cell a full open-loop run under the scaled plan (fail-stop
		// deaths kept verbatim at any multiplier > 0).
		mults := piranha.DefaultChaosLoadMultipliers
		if *loadSweep != "default" {
			var err error
			if mults, err = parseGrid(*loadSweep); err != nil {
				fmt.Fprintln(os.Stderr, strings.Replace(err.Error(), "-fault-grid", "-load-sweep", 1))
				os.Exit(2)
			}
		}
		piranha.SetParallelism(*parallel)
		enc := json.NewEncoder(os.Stdout)
		for _, c := range strings.Split(*config, ",") {
			sys := lookup(c)
			for _, w := range workloads {
				kind, ok := kindByName[w]
				if !ok {
					fmt.Fprintf(os.Stderr, "unknown workload %q\n", w)
					os.Exit(2)
				}
				s := piranha.RunChaosSweep(sys, piranha.Workload{Kind: kind}, piranha.ChaosSweep{
					Multipliers:  mults,
					FaultMults:   grid,
					Plan:         basePlan,
					Arrivals:     arrivalSpec,
					Scale:        piranha.Scale{Warm: *warm, Measure: *tx},
					Seed:         *seed,
					Intervals:    *intervals,
					IntraWorkers: *jintra,
				})
				s.Name = c + "/" + w
				if *jsonOut {
					if err := enc.Encode(s); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					continue
				}
				fmt.Println(s)
			}
		}
		return
	}

	if *loadSweep != "" {
		// Load-sweep campaign: one hockey-stick curve per config x
		// workload pair, each sweep fanning its points across the batch
		// pool. Output (text or JSON) is deterministic for a given seed.
		mults := piranha.DefaultSweepMultipliers
		if *loadSweep != "default" {
			var err error
			if mults, err = parseGrid(*loadSweep); err != nil {
				fmt.Fprintln(os.Stderr, strings.Replace(err.Error(), "-fault-grid", "-load-sweep", 1))
				os.Exit(2)
			}
		}
		piranha.SetParallelism(*parallel)
		enc := json.NewEncoder(os.Stdout)
		for _, c := range strings.Split(*config, ",") {
			sys := lookup(c)
			for _, w := range workloads {
				kind, ok := kindByName[w]
				if !ok {
					fmt.Fprintf(os.Stderr, "unknown workload %q\n", w)
					os.Exit(2)
				}
				s := piranha.RunLoadSweep(sys, piranha.Workload{Kind: kind}, piranha.LoadSweep{
					Multipliers:  mults,
					Arrivals:     arrivalSpec,
					Scale:        piranha.Scale{Warm: *warm, Measure: *tx},
					Seed:         *seed,
					Intervals:    *intervals,
					IntraWorkers: *jintra,
				})
				s.Name = c + "/" + w
				if *jsonOut {
					if err := enc.Encode(s); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					continue
				}
				fmt.Println(s)
			}
		}
		return
	}
	var exps []core.Experiment
	var pairs []string // campaign mode: config/workload group labels
	for _, c := range strings.Split(*config, ",") {
		sys := lookup(c)
		for _, w := range workloads {
			kind, ok := kindByName[w]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown workload %q\n", w)
				os.Exit(2)
			}
			name := c
			if len(workloads) > 1 {
				// Disambiguate sweep rows: the same config appears once
				// per workload.
				name = c + "/" + w
			}
			e := core.Experiment{
				Name:         name,
				Sys:          sys,
				Work:         core.WorkloadSpec{Kind: kind, Arrivals: arrivalSpec},
				WarmTx:       *warm,
				MeasureTx:    *tx,
				Seed:         *seed,
				Intervals:    sim.Time(intervals.Nanoseconds()) * sim.Nanosecond,
				IntraWorkers: *jintra,
			}
			if *traceOut != "" {
				e.Trace = trace.New(0)
			}
			if *faults == "" {
				exps = append(exps, e)
				continue
			}
			// Campaign mode: one run per grid multiplier. Every run gets
			// a private failover target — experiments execute in parallel
			// and must not share mutable state.
			pairs = append(pairs, name)
			for _, m := range grid {
				ge := e
				ge.Name = fmt.Sprintf("%s x%g", name, m)
				ge.Faults = basePlan.Scaled(m)
				if ge.Faults.Mirrored {
					ge.FaultEscalate = ras.NewFailover(0).Uncorrectable
				}
				if len(ge.Faults.FailStop) > 0 {
					ge.FaultAdopt = ras.NewFailover(0).Takeover
				}
				exps = append(exps, ge)
			}
		}
	}

	failed := false
	enc := json.NewEncoder(os.Stdout)
	outs := runner.Run(context.Background(), exps, *parallel)

	if *faults != "" && !*jsonOut {
		// Degradation tables: one per config x workload pair, rows in
		// grid order (results arrive in input order, pair-major).
		for pi, pair := range pairs {
			fmt.Printf("fault campaign %s: plan ber=%g loss=%g memflip=%g(double=%g) stall=%g mirrored=%v seed=%d\n",
				pair, basePlan.LinkBER, basePlan.MsgLoss, basePlan.MemFlip,
				basePlan.MemDoubleFrac, basePlan.StallProb, basePlan.Mirrored, *seed)
			fmt.Printf("  %-8s %-10s %-8s %s\n", "xrate", "ns/tx", "rel-tput", "faults")
			var baseNs float64
			tputs := make([]float64, 0, len(grid))
			for gi, m := range grid {
				out := outs[pi*len(grid)+gi]
				if out.Err != nil {
					fmt.Fprintln(os.Stderr, out.Err)
					failed = true
					tputs = append(tputs, 0)
					continue
				}
				res := out.Result
				if baseNs == 0 {
					baseNs = res.TimePerTx
				}
				rel := 0.0
				if res.TimePerTx > 0 {
					rel = baseNs / res.TimePerTx
				}
				tputs = append(tputs, rel)
				fmt.Printf("  %-8g %-10.0f %-8.3f %s\n", m, res.TimePerTx, rel, faultLine(res.Faults))
				if res.Series.Len() > 0 && *verbose {
					fmt.Print(res.Series)
				}
			}
			fmt.Printf("  tput vs rate |%s|\n", stats.Sparkline(tputs))
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	for _, out := range outs {
		if out.Err != nil {
			fmt.Fprintln(os.Stderr, out.Err)
			failed = true
			continue
		}
		res := out.Result
		if *jsonOut {
			if err := enc.Encode(res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed = true
			}
			continue
		}
		fmt.Println(res)
		if res.Lat != nil {
			fmt.Println(res.Lat)
		}
		if res.Admission != nil {
			a := res.Admission
			fmt.Printf("admission: arrivals=%d admitted=%d shed=%d completed=%d maxdepth=%d\n",
				a.Arrivals, a.Admitted, a.Shed, a.Completed, a.MaxDepth)
		}
		if res.Series.Len() > 0 {
			fmt.Print(res.Series)
		}
		if *verbose {
			busy, hit, miss, other := res.Agg.Normalized(res.Agg.Total())
			fmt.Printf("\nexecution time breakdown:\n")
			fmt.Printf("  CPU busy       %6.1f%%\n", busy*100)
			fmt.Printf("  L2 hit stall   %6.1f%%\n", hit*100)
			fmt.Printf("  L2 miss stall  %6.1f%%\n", miss*100)
			fmt.Printf("  other/idle     %6.1f%%\n", other*100)
			h, f, m := res.Miss.Fractions()
			fmt.Printf("\nL1 miss breakdown (total %d):\n", res.Miss.Total())
			fmt.Printf("  L2 hit  %6.1f%%\n  L2 fwd  %6.1f%%\n  L2 miss %6.1f%%\n", h*100, f*100, m*100)
			fmt.Printf("\nper-tx L2 controller events: hit=%.0f fwd=%.0f upgrade=%.0f mem=%.0f inval=%.0f wb2=%.0f wbmem=%.0f\n",
				float64(res.L2.Hits)/float64(res.Tx), float64(res.L2.Fwds)/float64(res.Tx),
				float64(res.L2.Upgrades)/float64(res.Tx), float64(res.L2.LocalMem+res.L2.Remote+res.L2.RemoteDirty)/float64(res.Tx),
				float64(res.L2.Invals)/float64(res.Tx), float64(res.L2.WritebacksToL2)/float64(res.Tx),
				float64(res.L2.WritebacksToMem)/float64(res.Tx))
			fmt.Printf("core svc counts per tx: L1=%.0f hit=%.0f fwd=%.0f mem=%.0f rem=%.0f dirty=%.0f\n",
				float64(res.Svc[0])/float64(res.Tx), float64(res.Svc[1])/float64(res.Tx),
				float64(res.Svc[2])/float64(res.Tx), float64(res.Svc[3])/float64(res.Tx),
				float64(res.Svc[4])/float64(res.Tx), float64(res.Svc[5])/float64(res.Tx))
			fmt.Printf("instructions retired: %d\n", res.Instructions)
			fmt.Printf("context switches:     %d\n", res.CtxSwitches)
			fmt.Printf("open-page hit rate:   %.1f%%\n", res.PageHitRate*100)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		traces := make([]*trace.Tracer, len(exps))
		labels := make([]string, len(exps))
		for i, e := range exps {
			traces[i], labels[i] = e.Trace, e.Name
		}
		if err := trace.WriteChromeMulti(f, traces, labels, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}
