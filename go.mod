module piranha

go 1.22
