package piranha

import (
	"fmt"
	"strings"
	"time"

	"piranha/internal/core"
	"piranha/internal/ras"
	"piranha/internal/sim"
	"piranha/internal/stats"
	"piranha/internal/workload"
)

// ChaosSweep configures RunChaosSweep: a composed campaign crossing an
// open-loop offered-load sweep with a fault-rate grid — the "how does
// the tail degrade when the machine is both busy and broken" experiment.
// Each cell of the grid is one full open-loop run at (load multiplier ×
// calibrated capacity) under (fault multiplier × base plan); a fault
// multiplier of zero drops the plan entirely (including fail-stop
// deaths), so the first column is the fault-free baseline the rest of
// the surface is read against.
type ChaosSweep struct {
	// Multipliers are the offered-load points as fractions of calibrated
	// closed-loop capacity. Empty selects DefaultChaosLoadMultipliers.
	Multipliers []float64
	// FaultMults scale the base plan per grid column. Empty selects
	// DefaultChaosFaultMultipliers.
	FaultMults []float64
	// Plan is the base fault plan (rates, and fail-stop deaths which are
	// kept verbatim at any multiplier > 0).
	Plan FaultPlan
	// Arrivals is the per-cell stream template; Rate is overridden per
	// cell. The zero value means Poisson with an unbounded queue.
	Arrivals Arrivals
	// SLOTarget is the latency objective every cell's SLO accountant
	// uses. Zero auto-derives 2× the calibrated closed-loop residence
	// time — Little's law at full multiprogramming (server processes ×
	// service time), doubled for slack — so light-load fault-free cells
	// comfortably meet it and overload or failure blows it.
	SLOTarget time.Duration
	// SLOBudget is the tolerated violation fraction (default 10%).
	SLOBudget float64
	// Scale, Seed, Intervals and IntraWorkers mirror the Run options and
	// apply to the calibration run and every cell alike.
	Scale        Scale
	Seed         uint64
	Intervals    time.Duration
	IntraWorkers int
}

// DefaultChaosLoadMultipliers brackets the knee with one point past it.
var DefaultChaosLoadMultipliers = []float64{0.5, 0.9, 1.2}

// DefaultChaosFaultMultipliers cover baseline, nominal, and aggressive
// fault rates.
var DefaultChaosFaultMultipliers = []float64{0, 1, 4}

// ChaosCell is one (load, fault) cell of the degradation surface.
type ChaosCell struct {
	LoadMult    float64 `json:"load_mult"`
	FaultMult   float64 `json:"fault_mult"`
	OfferedTxS  float64 `json:"offered_tx_s"`
	AchievedTxS float64 `json:"achieved_tx_s"`
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	P999Ns      float64 `json:"p999_ns"`
	// ShedRate is sheds over arrivals; SLOViolationRate counts
	// violations and sheds over settled transactions.
	ShedRate         float64 `json:"shed_rate"`
	SLOViolationRate float64 `json:"slo_violation_rate"`
	// MTTRNs sums the cell's fail-stop recovery times (0 when no node
	// died).
	MTTRNs float64 `json:"mttr_ns"`
	Result Result  `json:"result"`
}

// ChaosResult is a full composed campaign: the calibrated capacity, the
// derived SLO target, and the cell grid in fault-major order.
type ChaosResult struct {
	Name        string      `json:"name"`
	CapacityTxS float64     `json:"capacity_tx_s"`
	SLOTargetNs float64     `json:"slo_target_ns"`
	LoadMults   []float64   `json:"load_mults"`
	FaultMults  []float64   `json:"fault_mults"`
	Cells       []ChaosCell `json:"cells"`
}

// Cell returns the cell at (faultMult index fi, loadMult index li).
func (c ChaosResult) Cell(fi, li int) ChaosCell {
	return c.Cells[fi*len(c.LoadMults)+li]
}

// procsPerCPU mirrors the experiment's server-process multiprogramming
// level (the buildWorkload defaults) without running anything, so the
// auto-derived SLO target can account for closed-loop residence time.
func procsPerCPU(w Workload, a Arrivals) int {
	per := func(kind core.WorkloadKind) int {
		switch kind {
		case core.DSS:
			if w.DSS.InstrPerLine != 0 {
				return w.DSS.ProcsPerCPU
			}
			return workload.DefaultDSS().ProcsPerCPU
		case core.WEB:
			if w.DSS.InstrPerLine != 0 {
				return w.DSS.ProcsPerCPU
			}
			return workload.WebLike().ProcsPerCPU
		case core.TPCC:
			if w.OLTP.InstrPerTx != 0 {
				return w.OLTP.ProcsPerCPU
			}
			return workload.TPCCLike().ProcsPerCPU
		default:
			if w.OLTP.InstrPerTx != 0 {
				return w.OLTP.ProcsPerCPU
			}
			return workload.DefaultOLTP().ProcsPerCPU
		}
	}
	if len(a.Mix) > 0 {
		total := 0
		for _, t := range a.Mix {
			total += per(core.WorkloadKind(t.Kind))
		}
		return total
	}
	return per(w.Kind)
}

// RunChaosSweep drives one machine/workload pair through the composed
// load × fault grid. Calibration runs once; every cell then shares the
// same capacity anchor and SLO target, so the surface is comparable
// across both axes. Cells run concurrently (SetParallelism) yet the
// result is deterministic: the same seed and config reproduce identical
// surfaces, byte for byte, at any -jintra or worker count.
func RunChaosSweep(sys SystemConfig, w Workload, cfg ChaosSweep) ChaosResult {
	if cfg.Scale == (Scale{}) {
		cfg.Scale = QuickScale
	}
	loads := cfg.Multipliers
	if len(loads) == 0 {
		loads = DefaultChaosLoadMultipliers
	}
	fmults := cfg.FaultMults
	if len(fmults) == 0 {
		fmults = DefaultChaosFaultMultipliers
	}
	name := string(w.Kind)
	if name == "" {
		name = string(core.OLTP)
	}
	intervals := sim.Time(cfg.Intervals.Nanoseconds()) * sim.Nanosecond

	cal := RunBatch([]Experiment{{
		Name:         name + "/calibrate",
		Sys:          sys,
		Work:         w,
		WarmTx:       cfg.Scale.Warm,
		MeasureTx:    cfg.Scale.Measure,
		Seed:         cfg.Seed,
		IntraWorkers: cfg.IntraWorkers,
	}})[0]
	capacity := 1e9 / cal.TimePerTx // ns/tx → tx/s

	slo := sim.Time(cfg.SLOTarget.Nanoseconds()) * sim.Nanosecond
	if slo <= 0 {
		// A transaction's closed-loop residence time is concurrency ×
		// service time (Little's law): every CPU timeshares its whole
		// server-process pool. 2× that is met with room to spare by a
		// light-load open-loop cell and blown under overload or failure.
		concurrency := float64(cal.CPUs * procsPerCPU(w, cfg.Arrivals))
		slo = sim.Time(2*concurrency*cal.TimePerTx) * sim.Nanosecond
	}

	exps := make([]Experiment, 0, len(fmults)*len(loads))
	for _, fm := range fmults {
		for _, lm := range loads {
			wk := w
			wk.Arrivals = cfg.Arrivals
			wk.Arrivals.Rate = lm * capacity
			e := core.Experiment{
				Name:         fmt.Sprintf("%s@%gx/f%gx", name, lm, fm),
				Sys:          sys,
				Work:         wk,
				WarmTx:       cfg.Scale.Warm,
				MeasureTx:    cfg.Scale.Measure,
				Seed:         cfg.Seed,
				Intervals:    intervals,
				IntraWorkers: cfg.IntraWorkers,
				SLOTarget:    slo,
				SLOBudget:    cfg.SLOBudget,
				Faults:       cfg.Plan.Scaled(fm),
			}
			// Private failover targets per cell: cells run concurrently
			// and must not share mutable state.
			if e.Faults.Mirrored {
				e.FaultEscalate = ras.NewFailover(e.Faults.MirrorLatency).Uncorrectable
			}
			if len(e.Faults.FailStop) > 0 {
				e.FaultAdopt = ras.NewFailover(e.Faults.MirrorLatency).Takeover
			}
			exps = append(exps, e)
		}
	}
	results := RunBatch(exps)

	cells := make([]ChaosCell, len(results))
	for i, r := range results {
		c := ChaosCell{
			LoadMult:   loads[i%len(loads)],
			FaultMult:  fmults[i/len(loads)],
			OfferedTxS: exps[i].Work.Arrivals.Rate,
			Result:     r,
		}
		if r.TimePerTx > 0 {
			c.AchievedTxS = 1e9 / r.TimePerTx
		}
		if r.Lat != nil {
			ns := float64(sim.Nanosecond)
			c.P50Ns = float64(r.Lat.Quantile(0.50)) / ns
			c.P99Ns = float64(r.Lat.Quantile(0.99)) / ns
			c.P999Ns = float64(r.Lat.Quantile(0.999)) / ns
		}
		if r.Admission != nil && r.Admission.Arrivals > 0 {
			c.ShedRate = float64(r.Admission.Shed) / float64(r.Admission.Arrivals)
		}
		if r.SLO != nil {
			c.SLOViolationRate = r.SLO.ViolationRate()
		}
		if r.Recovery != nil {
			c.MTTRNs = float64(r.Recovery.MTTRTotal) / float64(sim.Nanosecond)
		}
		cells[i] = c
	}
	return ChaosResult{
		Name:        name,
		CapacityTxS: capacity,
		SLOTargetNs: float64(slo) / float64(sim.Nanosecond),
		LoadMults:   loads,
		FaultMults:  fmults,
		Cells:       cells,
	}
}

// String renders the degradation surface: one block per fault multiplier
// with per-load rows, plus a p99 sparkline over the whole grid.
func (c ChaosResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos sweep %s: capacity %.0f tx/s, SLO target %.0f ns\n",
		c.Name, c.CapacityTxS, c.SLOTargetNs)
	p99s := make([]float64, 0, len(c.Cells))
	for fi, fm := range c.FaultMults {
		fmt.Fprintf(&b, " faults x%g\n", fm)
		fmt.Fprintf(&b, "  %-6s %-12s %-12s %-10s %-10s %-10s %-8s %-8s %s\n",
			"load", "offered/s", "achieved/s", "p50(ns)", "p99(ns)", "p999(ns)", "shed", "sloviol", "mttr(ns)")
		for li := range c.LoadMults {
			cell := c.Cell(fi, li)
			fmt.Fprintf(&b, "  %-6g %-12.0f %-12.0f %-10.0f %-10.0f %-10.0f %-8.3f %-8.3f %.0f\n",
				cell.LoadMult, cell.OfferedTxS, cell.AchievedTxS,
				cell.P50Ns, cell.P99Ns, cell.P999Ns,
				cell.ShedRate, cell.SLOViolationRate, cell.MTTRNs)
			p99s = append(p99s, cell.P99Ns)
		}
	}
	fmt.Fprintf(&b, "  p99 over grid |%s|", stats.Sparkline(p99s))
	return b.String()
}

// WithSLO attaches a per-window SLO accountant to an open-loop run: the
// latency objective, window width (Intervals when set, else 50 µs), and
// error budget land in Result.SLO and the JSON "slo" block.
func WithSLO(target time.Duration, budget float64) Option {
	return func(rc *runConfig) {
		rc.exp.SLOTarget = sim.Time(target.Nanoseconds()) * sim.Nanosecond
		rc.exp.SLOBudget = budget
	}
}
