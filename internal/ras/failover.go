package ras

import "piranha/internal/sim"

// Failover is the memory-mirroring escalation target for uncorrectable
// ECC errors (paper §2.7): a line whose SECDED decode reports a double
// error is re-fetched from the mirror node instead of killing the run.
// It is deliberately tiny — just the mirror-read latency and a counter —
// so the fault engine can hold it behind a plain function hook without
// the core package importing ras.
type Failover struct {
	// MirrorLatency is the extra time a mirror-served read pays (the
	// protocol engine forwards the request to the mirror node).
	MirrorLatency sim.Time

	// Failovers counts uncorrectable errors served from the mirror.
	Failovers uint64

	// Adopted counts directory-resident lines of fail-stopped homes this
	// mirror has taken over (the whole dead home fails over, not just
	// one uncorrectable line).
	Adopted uint64
}

// NewFailover returns a failover target; latency <= 0 selects the
// default 120 ns mirror-read cost.
func NewFailover(latency sim.Time) *Failover {
	if latency <= 0 {
		latency = 120 * sim.Nanosecond
	}
	return &Failover{MirrorLatency: latency}
}

// Uncorrectable handles one uncorrectable memory error at time now,
// returning the mirror-read latency and recovered=true. The nil receiver
// declines (no mirror configured).
func (f *Failover) Uncorrectable(now sim.Time) (extra sim.Time, recovered bool) {
	if f == nil {
		return 0, false
	}
	_ = now
	f.Failovers++
	return f.MirrorLatency, true
}

// Takeover records the mirror adopting n directory-resident lines from
// a dead home node after a fail-stop. The nil receiver declines.
func (f *Failover) Takeover(n int) {
	if f == nil || n <= 0 {
		return
	}
	f.Adopted += uint64(n)
}
