// Package ras implements the reliability/availability/serviceability
// hooks of paper §2.7. Piranha's programmable protocol engines can change
// the semantics of memory accesses, which enables:
//
//   - Persistent memory regions: memory that survives power failures and
//     crashes, with capability checks on access and persistent-memory
//     barriers that force volatile (cached) state to safe memory —
//     letting databases commit without a disk write.
//   - Memory mirroring: writes to protected regions are transparently
//     duplicated on a mirror node, so a node failure loses no data.
//   - Dual-redundant execution: two cores run the same stream and a
//     checker compares their retired-operation fingerprints.
//   - Protocol error recovery: each in-flight transaction's TSRF entry
//     carries its state; timed-out transactions are encapsulated and
//     handed to recovery software rather than wedging the engine.
package ras

import (
	"fmt"

	"piranha/internal/cache"
	"piranha/internal/core"
	"piranha/internal/cpu"
	"piranha/internal/sim"
)

// Region is a protected physical address range.
type Region struct {
	Lo, Hi cache.Addr
	// Writers holds the capability set: CPU IDs allowed to write.
	// Empty means unrestricted.
	Writers map[int]bool
	// Mirror enables write duplication to a mirror memory.
	Mirror bool
}

// Contains reports whether an address falls in the region.
func (r Region) Contains(a cache.Addr) bool { return a >= r.Lo && a < r.Hi }

// Manager wraps a chip with RAS semantics. The simulator carries no data
// values, so durability is modeled with per-line version numbers: a
// write bumps the volatile version; a persist barrier copies volatile
// versions into the persistent image; a crash discards everything not
// persisted (matching exactly what the hardware's caches would lose).
type Manager struct {
	chip    *core.Chip
	regions []Region

	volatileV  map[cache.LineAddr]uint64 // version in cache hierarchy
	persistedV map[cache.LineAddr]uint64 // version in safe memory
	mirrorV    map[cache.LineAddr]uint64 // version on the mirror node

	// MirrorLatency is the extra time a mirrored write pays (the
	// protocol engine forwards a copy to the mirror node).
	MirrorLatency sim.Time

	// Stats.
	Writes           uint64
	MirroredWrites   uint64
	CapabilityFaults uint64
	Barriers         uint64
	FlushedLines     uint64
}

// NewManager wraps a chip.
func NewManager(chip *core.Chip) *Manager {
	return &Manager{
		chip:          chip,
		volatileV:     make(map[cache.LineAddr]uint64),
		persistedV:    make(map[cache.LineAddr]uint64),
		mirrorV:       make(map[cache.LineAddr]uint64),
		MirrorLatency: 120 * sim.Nanosecond,
	}
}

// Protect registers a region.
func (m *Manager) Protect(r Region) { m.regions = append(m.regions, r) }

// regionOf returns the protected region containing a, if any.
func (m *Manager) regionOf(a cache.Addr) *Region {
	for i := range m.regions {
		if m.regions[i].Contains(a) {
			return &m.regions[i]
		}
	}
	return nil
}

// Write performs a store with RAS semantics: capability check, version
// bump, optional mirroring. It returns the completion time.
func (m *Manager) Write(now sim.Time, cpuID int, a cache.Addr) (sim.Time, error) {
	r := m.regionOf(a)
	if r != nil && len(r.Writers) > 0 && !r.Writers[cpuID] {
		// The protocol engine intervenes and rejects the access.
		m.CapabilityFaults++
		return now, fmt.Errorf("ras: cpu %d lacks write capability for %#x", cpuID, a)
	}
	done, _ := m.chip.Access(now, cpuID, cpu.Store, a)
	m.Writes++
	m.volatileV[a.Line()]++
	if r != nil && r.Mirror {
		// The engine forwards a copy to the mirror node (charged off
		// the critical path; the paper's engines do this on the
		// memory-access intervention path).
		m.MirroredWrites++
		m.mirrorV[a.Line()] = m.volatileV[a.Line()]
		done += m.MirrorLatency
	}
	return done, nil
}

// Read performs a load (no RAS intervention needed for reads of
// unrestricted regions).
func (m *Manager) Read(now sim.Time, cpuID int, a cache.Addr) sim.Time {
	done, _ := m.chip.Access(now, cpuID, cpu.Load, a)
	return done
}

// PersistBarrier flushes every dirty cached line of the region to safe
// memory and marks their versions persistent — the commit primitive that
// replaces a disk/NVRAM write at transaction boundaries.
func (m *Manager) PersistBarrier(now sim.Time, r Region) (sim.Time, int) {
	m.Barriers++
	flushed := 0
	t := now
	for _, line := range m.chip.L2.DirtyLines(r.Lo, r.Hi) {
		if ok, done := m.chip.L2.FlushDirty(t, line); ok {
			flushed++
			if done > t {
				t = done
			}
		}
	}
	// All volatile versions inside the region are now in safe memory.
	for line, v := range m.volatileV {
		if r.Contains(line.Addr()) {
			m.persistedV[line] = v
		}
	}
	m.FlushedLines += uint64(flushed)
	return t, flushed
}

// Crash models a power failure: all cache state is lost; memory (and the
// mirror) survive. Versions not persisted are gone.
func (m *Manager) Crash() (lostDirtyLines int) {
	lost := m.chip.L2.CrashVolatile()
	m.volatileV = make(map[cache.LineAddr]uint64)
	return lost
}

// PersistedVersion reports a line's version in safe memory.
func (m *Manager) PersistedVersion(l cache.LineAddr) uint64 { return m.persistedV[l] }

// MirrorVersion reports a line's version on the mirror node.
func (m *Manager) MirrorVersion(l cache.LineAddr) uint64 { return m.mirrorV[l] }

// CurrentVersion reports a line's latest written version.
func (m *Manager) CurrentVersion(l cache.LineAddr) uint64 {
	if v, ok := m.volatileV[l]; ok {
		return v
	}
	return m.persistedV[l]
}

// RecoverFromMirror restores the persistent image from the mirror after
// a primary-memory failure, returning how many lines were recovered.
func (m *Manager) RecoverFromMirror() int {
	n := 0
	for line, v := range m.mirrorV {
		if m.persistedV[line] < v {
			m.persistedV[line] = v
			n++
		}
	}
	return n
}
