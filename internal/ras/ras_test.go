package ras

import (
	"testing"

	"piranha/internal/cache"
	"piranha/internal/core"
	"piranha/internal/cpu"
	"piranha/internal/l2"
	"piranha/internal/sim"
)

func newChip() *core.Chip {
	return core.NewChip(core.PiranhaChip(2), l2.LocalOnly{})
}

func TestPersistentRegionSurvivesCrash(t *testing.T) {
	m := NewManager(newChip())
	region := Region{Lo: 0x100000, Hi: 0x200000}
	m.Protect(region)
	a := cache.Addr(0x100040)

	// Write, barrier, write again, crash.
	now, err := m.Write(0, 0, a)
	if err != nil {
		t.Fatal(err)
	}
	now, flushed := m.PersistBarrier(now, region)
	if flushed == 0 {
		t.Fatal("barrier flushed nothing")
	}
	now, _ = m.Write(now, 0, a) // version 2, volatile only
	lost := m.Crash()
	if lost == 0 {
		t.Fatal("crash lost no dirty state (second write should be volatile)")
	}
	// Version 1 persisted; version 2 lost — exactly the barrier's contract.
	if v := m.PersistedVersion(a.Line()); v != 1 {
		t.Fatalf("persisted version %d, want 1", v)
	}
	if v := m.CurrentVersion(a.Line()); v != 1 {
		t.Fatalf("post-crash version %d, want 1", v)
	}
}

func TestBarrierCost(t *testing.T) {
	m := NewManager(newChip())
	region := Region{Lo: 0, Hi: 1 << 20}
	m.Protect(region)
	now := sim.Time(0)
	for i := 0; i < 32; i++ {
		now, _ = m.Write(now, 0, cache.Addr(i*4096))
	}
	done, flushed := m.PersistBarrier(now, region)
	if flushed != 32 {
		t.Fatalf("flushed %d lines, want 32", flushed)
	}
	if done <= now {
		t.Fatal("barrier must cost memory-write time")
	}
}

func TestCapabilityCheck(t *testing.T) {
	m := NewManager(newChip())
	m.Protect(Region{Lo: 0x100000, Hi: 0x200000, Writers: map[int]bool{0: true}})
	if _, err := m.Write(0, 1, 0x100000); err == nil {
		t.Fatal("unauthorized CPU wrote a protected region")
	}
	if m.CapabilityFaults != 1 {
		t.Fatalf("faults %d", m.CapabilityFaults)
	}
	if _, err := m.Write(0, 0, 0x100000); err != nil {
		t.Fatalf("authorized write rejected: %v", err)
	}
	// Unprotected addresses are unrestricted.
	if _, err := m.Write(0, 1, 0x900000); err != nil {
		t.Fatal(err)
	}
}

func TestMirroringSurvivesPrimaryFailure(t *testing.T) {
	m := NewManager(newChip())
	m.Protect(Region{Lo: 0x100000, Hi: 0x200000, Mirror: true})
	a := cache.Addr(0x100040)
	m.Write(0, 0, a)
	m.Write(100*sim.Nanosecond, 0, a)
	if m.MirroredWrites != 2 {
		t.Fatalf("mirrored writes %d", m.MirroredWrites)
	}
	// Primary memory fails before any persist barrier ran.
	m.Crash()
	if m.PersistedVersion(a.Line()) != 0 {
		t.Fatal("nothing should be persisted on the primary")
	}
	if n := m.RecoverFromMirror(); n != 1 {
		t.Fatalf("recovered %d lines from mirror, want 1", n)
	}
	if v := m.PersistedVersion(a.Line()); v != 2 {
		t.Fatalf("recovered version %d, want 2", v)
	}
}

func TestMirrorWriteLatency(t *testing.T) {
	m := NewManager(newChip())
	m.Protect(Region{Lo: 0x100000, Hi: 0x200000, Mirror: true})
	dPlain, _ := m.Write(0, 0, 0x900000)
	dMirror, _ := m.Write(0, 0, 0x100000)
	if dMirror-dPlain < m.MirrorLatency/2 {
		t.Fatalf("mirrored write should pay forwarding latency: %d vs %d", dMirror, dPlain)
	}
}

func TestCrashClearsCaches(t *testing.T) {
	chip := newChip()
	m := NewManager(chip)
	a := cache.Addr(0x40)
	chip.Access(0, 0, cpu.Store, a)
	if chip.DL1[0].State(a.Line()) != cache.Modified {
		t.Fatal("setup")
	}
	m.Crash()
	if chip.DL1[0].State(a.Line()) != cache.Invalid {
		t.Fatal("crash left cache state behind")
	}
	if err := chip.L2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLockstepAgreement(t *testing.T) {
	var l Lockstep
	for i := 0; i < 1000; i++ {
		l.Observe(0, cpu.KLoad, cache.Addr(i*64), 1)
		l.Observe(1, cpu.KLoad, cache.Addr(i*64), 1)
	}
	if l.Diverged() {
		t.Fatal("identical streams flagged")
	}
	a, b := l.Retired()
	if a != 1000 || b != 1000 {
		t.Fatalf("retired %d/%d", a, b)
	}
}

func TestLockstepDetectsFault(t *testing.T) {
	var l Lockstep
	for i := 0; i < 500; i++ {
		l.Observe(0, cpu.KLoad, cache.Addr(i*64), 1)
		addr := cache.Addr(i * 64)
		if i == 250 {
			addr ^= 0x40 // injected single-event upset in replica 1
		}
		l.Observe(1, cpu.KLoad, addr, 1)
	}
	if !l.Diverged() {
		t.Fatal("fault not detected")
	}
	if l.DivergedAt != 251 {
		t.Fatalf("diverged at op %d, want 251", l.DivergedAt)
	}
}
