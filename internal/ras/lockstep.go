package ras

import (
	"piranha/internal/cache"
	"piranha/internal/cpu"
)

// Lockstep is the dual-redundant-execution checker of §2.7: two cores
// execute the same stream and the checker compares a running fingerprint
// of their retired operations (opcode + address), flagging the first
// divergence. In hardware the protocol engines would perform this check
// on the results of dual-redundant computation; the fingerprint stands
// in for the compared results since the simulator carries no data values.
type Lockstep struct {
	fp  [2]uint64
	ops [2]uint64
	// DivergedAt is the operation index of the first mismatch (0 = none).
	DivergedAt uint64
}

// fold mixes one op into a fingerprint.
func fold(h uint64, kind cpu.OpKind, a cache.Addr, n int32) uint64 {
	h ^= uint64(kind) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h ^= uint64(a) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h ^= uint64(uint32(n)) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	return h
}

// Observe records one retired op of replica i (0 or 1) and checks for
// divergence once both replicas have retired the same count.
func (l *Lockstep) Observe(i int, kind cpu.OpKind, a cache.Addr, n int32) {
	l.fp[i] = fold(l.fp[i], kind, a, n)
	l.ops[i]++
	if l.DivergedAt == 0 && l.ops[0] == l.ops[1] && l.fp[0] != l.fp[1] {
		l.DivergedAt = l.ops[0]
	}
}

// Diverged reports whether the replicas have disagreed.
func (l *Lockstep) Diverged() bool { return l.DivergedAt != 0 }

// Retired returns each replica's retired-op count.
func (l *Lockstep) Retired() (uint64, uint64) { return l.ops[0], l.ops[1] }
