package protocol

import "fmt"

// Mutation is one deliberately planted protocol bug for the model
// checker's self-test: each edits a fresh copy of the piranha table in
// a way that still passes static Validate — the bug classes here are
// exactly the ones a transition-table review cannot catch — and names
// the invariant the checker must trip over, with a counterexample.
type Mutation struct {
	Name        string
	Description string
	// Expect is the mcheck invariant identifier the exploration must
	// report for the mutated table.
	Expect string
	apply  func(*Table)
}

// Apply returns a freshly built piranha table with the bug planted.
func (m Mutation) Apply() *Table {
	t := Piranha()
	m.apply(t)
	return t
}

// Mutations is the self-test catalog, in fixed order.
func Mutations() []Mutation {
	return []Mutation{
		{
			Name:        "drop-inval-ack",
			Description: "a sharer invalidates its copy but never acknowledges; the requester's gather count can never drain",
			Expect:      "ack-accounting",
			apply: func(t *Table) {
				dropOp(t.rule("i-shared"), OpAckRequester)
			},
		},
		{
			Name:        "wrong-reply-kind",
			Description: "the home answers a read-exclusive from a shared line with a header-only grant instead of data; the requester installs an exclusive line it never received",
			Expect:      "stale-fill",
			apply: func(t *Table) {
				swapOp(t.rule("q-write-shared"), OpReplyData, OpReplyGrant)
			},
		},
		{
			Name:        "missing-tsrf-release",
			Description: "a fill completes the transaction but leaks its TSRF entry; occupancy never returns to zero",
			Expect:      "tsrf-leak",
			apply: func(t *Table) {
				dropOp(t.rule("recv-reply"), OpReleaseTSRF)
			},
		},
		{
			Name:        "missing-dir-clear",
			Description: "a writeback updates memory but leaves the directory pointing at the departed owner; the next request is forwarded to a node with no copy",
			Expect:      "reached-hole",
			apply: func(t *Table) {
				dropOp(t.rule("w-owner"), OpDirClear)
			},
		},
	}
}

// MutationByName returns the named catalog entry.
func MutationByName(name string) (Mutation, bool) {
	for _, m := range Mutations() {
		if m.Name == name {
			return m, true
		}
	}
	return Mutation{}, false
}

// rule returns a pointer to the named rule; a missing name is a bug in
// the catalog, not a recoverable condition.
func (t *Table) rule(name string) *Rule {
	for i := range t.Rules {
		if t.Rules[i].Name == name {
			return &t.Rules[i]
		}
	}
	panic(fmt.Sprintf("protocol: mutation targets unknown rule %q", name))
}

// dropOp removes one opcode from a rule's action list.
func dropOp(r *Rule, op Op) {
	for i, o := range r.Do {
		if o == op {
			r.Do = append(append([]Op{}, r.Do[:i]...), r.Do[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("protocol: rule %q has no %v to drop", r.Name, op))
}

// swapOp replaces one opcode with another in a rule's action list.
func swapOp(r *Rule, from, to Op) {
	for i, o := range r.Do {
		if o == from {
			r.Do = append([]Op{}, r.Do...)
			r.Do[i] = to
			return
		}
	}
	panic(fmt.Sprintf("protocol: rule %q has no %v to swap", r.Name, from))
}
