// Package protocol lifts the inter-node coherence protocol out of the
// hardwired switches of internal/pe/transactions.go into a declarative
// transition table: a list of guarded actions keyed by directory state
// × L2 line kind × incoming message kind (refined by the request kind
// for request-bearing messages). The table serves three masters:
//
//   - internal/pe consults it for the per-request facets its dispatch
//     needs (ownership semantics, reply class) and is cross-validated
//     against the directory transitions it encodes (pe_test);
//   - internal/mcheck interprets the whole table as an abstract
//     message-passing machine and exhaustively explores its reachable
//     state space for 2–4 node micro-systems, proving the §3.5
//     invariants (NAK-freedom, deadlock-freedom, no stale fills,
//     TSRF bounds) instead of spot-checking them dynamically;
//   - internal/lint's protocoltable analyzer reads the Registry so its
//     AST-level exhaustiveness checks follow any protocol that is
//     registered, not just the one file it used to hardcode.
//
// The table is *data*: rules name their guard and carry a flat list of
// action opcodes. The interpreter giving the opcodes meaning lives in
// internal/mcheck; pe keeps its calibrated timing model and only
// shares the protocol *decisions* with the table. Rival protocols
// (ROADMAP item 4) plug in by registering a second Spec.
package protocol

import (
	"fmt"
	"sort"

	"piranha/internal/directory"
	"piranha/internal/l2"
)

// LineKind is the abstract per-node L2 state of a line as the protocol
// sees it: node granularity, with MESI's E and M collapsed (whether an
// exclusive copy has been dirtied is a property of the abstract data
// model, not of the protocol's dispatch).
type LineKind uint8

// Line kinds.
const (
	LineInvalid LineKind = iota
	LineShared
	LineExclusive
	NLineKinds
)

func (k LineKind) String() string {
	switch k {
	case LineInvalid:
		return "I"
	case LineShared:
		return "S"
	case LineExclusive:
		return "E"
	}
	return "?"
}

// MsgKind is a protocol message class on the inter-node fabric.
type MsgKind uint8

// Message kinds. MsgNone keys the spontaneous rules (processor-side
// issues and evictions) that start transactions rather than continue
// them.
const (
	MsgNone MsgKind = iota
	// MsgReq is a request travelling requester -> home on the low lane;
	// it carries an l2.Kind.
	MsgReq
	// MsgFwd is a request the home forwarded to the exclusive owner;
	// it carries the original l2.Kind and the requester's identity.
	MsgFwd
	// MsgInval invalidates a sharer's copy; the acknowledgment is owed
	// to the *requester* (eager exclusive replies gather acks there).
	MsgInval
	// MsgInvAck is a sharer's invalidation acknowledgment.
	MsgInvAck
	// MsgReply carries data (or a no-data exclusivity grant) to the
	// requester, from the home or from a forwarded-to owner.
	MsgReply
	// MsgWB is a replaced exclusive line returning to home memory; the
	// writer holds its copy until MsgWBAck so forwarded requests never
	// NAK (§3.5).
	MsgWB
	// MsgWBAck acknowledges a writeback; the writer's copy (and TSRF
	// entry) is released.
	MsgWBAck
	// MsgShareWB is the sharing writeback: when a forwarded read turns a
	// remote dirty line into a shared one, the owner refreshes home
	// memory with the dirty data. It closes the read-forward window the
	// home engine opened at the forward point (the home defers same-line
	// requests until it arrives) and needs no acknowledgment — the
	// owner's copy is already downgraded, not held.
	MsgShareWB
	NMsgKinds
)

func (k MsgKind) String() string {
	switch k {
	case MsgNone:
		return "none"
	case MsgReq:
		return "req"
	case MsgFwd:
		return "fwd"
	case MsgInval:
		return "inval"
	case MsgInvAck:
		return "inv-ack"
	case MsgReply:
		return "reply"
	case MsgWB:
		return "wb"
	case MsgWBAck:
		return "wb-ack"
	case MsgShareWB:
		return "share-wb"
	}
	return "?"
}

// Wildcards for rule keys.
const (
	// DirAny matches every directory state.
	DirAny directory.State = 0xff
	// LineAny matches every line kind.
	LineAny LineKind = 0xff
	// ReqAny matches every request kind (and request-less messages).
	ReqAny l2.Kind = 0xff
)

// Guard is an extra predicate a rule's key cannot express; guards are
// named so the table stays declarative and the interpreter supplies
// the semantics.
type Guard uint8

// Guards.
const (
	// GAlways enables the rule whenever its key matches.
	GAlways Guard = iota
	// GReqIsSharer: the requester appears in the directory sharer set.
	GReqIsSharer
	// GReqNotSharer: the requester does not appear in the sharer set.
	GReqNotSharer
	// GOwnerNotReq: the directory owner differs from the requester.
	GOwnerNotReq
	// GSenderIsOwner: the message sender is the directory owner
	// (writeback arriving before ownership moved).
	GSenderIsOwner
	// GSenderNotOwner: ownership moved while the message was in
	// flight (stale writeback).
	GSenderNotOwner
	// GNoPending: the acting node has no outstanding transaction.
	GNoPending
	// GPendingFill: the acting node has an outstanding fill.
	GPendingFill
	// GPendingWB: the acting node has a writeback awaiting its ack.
	GPendingWB
	// GEngineBusy: the acting node's protocol engine holds a TSRF entry
	// for the line. At the home this is the §3.5 deferral condition: a
	// forwarded transaction holds its entry until the owner's completion
	// (sharing writeback or reply), and same-line requests arriving in
	// that window are delayed in place, never NAKed.
	GEngineBusy
	// GPendingShareFill: the acting node awaits a *shared* data fill
	// (a read miss). An invalidation arriving in that window was
	// serialized after the read, so the fill may satisfy the one pending
	// load (the relaxed consistency model permits it) but must not be
	// cached. Exclusive fills never race a newer invalidation — writes
	// to an owned line are forwarded, not invalidated.
	GPendingShareFill
	NGuards
)

func (g Guard) String() string {
	switch g {
	case GAlways:
		return "always"
	case GReqIsSharer:
		return "req-is-sharer"
	case GReqNotSharer:
		return "req-not-sharer"
	case GOwnerNotReq:
		return "owner-not-req"
	case GSenderIsOwner:
		return "sender-is-owner"
	case GSenderNotOwner:
		return "sender-not-owner"
	case GNoPending:
		return "no-pending"
	case GPendingFill:
		return "pending-fill"
	case GPendingWB:
		return "pending-wb"
	case GEngineBusy:
		return "engine-busy"
	case GPendingShareFill:
		return "pending-share-fill"
	}
	return "?"
}

// Op is one declarative action opcode. The mcheck interpreter applies
// them in rule order against its abstract machine.
type Op uint8

// Action opcodes.
const (
	// OpSendReq emits the pending request to the home (issue rules).
	OpSendReq Op = iota
	// OpReserveTSRF / OpReleaseTSRF bracket a transaction's occupancy
	// of the acting node's engine TSRF.
	OpReserveTSRF
	OpReleaseTSRF
	// OpSupplyHome reads the home's data for a reply exactly as pe
	// does: from the home chip's cached copy when one exists, else
	// from home memory (where data and directory share the DRAM line).
	// The model checker asserts the supplied value is current.
	OpSupplyHome
	// OpSupplyOwn replies from the acting (owner) node's copy.
	OpSupplyOwn
	// OpReplyData sends a data-carrying reply to the requester; the
	// exclusivity bit follows the request kind (WantsExclusive) or the
	// clean-exclusive optimization.
	OpReplyData
	// OpReplyGrant sends a no-data exclusivity grant (upgrade grants,
	// wh64 grants).
	OpReplyGrant
	// OpForwardReq forwards the request to the directory owner.
	OpForwardReq
	// OpInvalSharers sends invalidations to every directory sharer
	// except the requester; the acknowledgments are owed to the
	// requester (eager exclusive replies, §2.5).
	OpInvalSharers
	// OpInvalHome drops the home chip's own copy (no-op when absent).
	OpInvalHome
	// OpDowngradeHome downgrades an exclusive home-chip copy to shared,
	// writing a dirty copy through to home memory (the same DRAM line
	// holds the directory); no-op when the home holds no exclusive copy.
	OpDowngradeHome
	// OpDirReadGrant applies pe's read-service directory update: the
	// clean-exclusive optimization (dir Uncached and no home-chip
	// copy) records the requester as exclusive owner; otherwise the
	// requester is added as a sharer.
	OpDirReadGrant
	// OpDirSetExclusiveReq / OpDirShareOwnerReq / OpDirClear are the
	// remaining directory transitions the protocol uses. ShareOwnerReq
	// rebuilds the entry as {old owner, requester} — the requester is
	// omitted when it is the home (home sharers are not recorded,
	// §2.5.2).
	OpDirSetExclusiveReq
	OpDirShareOwnerReq
	OpDirClear
	// OpFill installs the incoming reply in the acting node's L2
	// (shared or exclusive per the reply).
	OpFill
	// OpInvalidateLine drops the acting node's copy.
	OpInvalidateLine
	// OpDowngradeLine downgrades the acting node's copy to shared.
	OpDowngradeLine
	// OpAckRequester sends an invalidation ack to the requester named
	// in the message.
	OpAckRequester
	// OpGatherAck consumes one invalidation ack at the requester.
	OpGatherAck
	// OpUpdateMem writes the acting node's (or message's) data back to
	// home memory. Dirty shares update memory at owner-serve time,
	// exactly as pe models them (the reply-forwarded memory update is
	// not a separate message).
	OpUpdateMem
	// OpSendWB emits a writeback carrying the line's data; the
	// writer's copy persists until MsgWBAck.
	OpSendWB
	// OpSendShareWB emits the sharing writeback to the home: the dirty
	// data a forwarded read just shared refreshes home memory and
	// releases the home engine's read-forward TSRF entry.
	OpSendShareWB
	// OpAckWB acknowledges a writeback to its sender.
	OpAckWB
	// OpWriteLocal performs a store on an exclusively-held line
	// (advances the abstract data version).
	OpWriteLocal
	// OpComplete finishes the acting node's outstanding transaction
	// (or writeback) and frees its bookkeeping.
	OpComplete
	// OpDelay leaves the message in its channel: an early forwarded
	// request is delayed at the owner until its fill arrives (§3.5),
	// not NAKed.
	OpDelay
	// OpPoisonFill marks the outstanding shared fill as overtaken by an
	// invalidation: when the data lands it satisfies the pending load
	// once and is not cached.
	OpPoisonFill
	NOps
)

var opNames = [NOps]string{
	"send-req", "reserve-tsrf", "release-tsrf",
	"supply-home", "supply-own",
	"reply-data", "reply-grant", "forward-req",
	"inval-sharers", "inval-home", "downgrade-home",
	"dir-read-grant", "dir-set-exclusive-req", "dir-share-owner-req", "dir-clear",
	"fill", "invalidate-line", "downgrade-line", "ack-requester", "gather-ack",
	"update-mem", "send-wb", "send-share-wb", "ack-wb", "write-local", "complete", "delay",
	"poison-fill",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "?"
}

// Role restricts where a rule executes: at the line's home node, at a
// non-home node, or anywhere. Receptions are implicitly placed by
// their message's destination; the role matters chiefly for the
// spontaneous (MsgNone) rules, where home-local operations bypass the
// fabric entirely.
type Role uint8

// Roles.
const (
	RoleAny Role = iota
	RoleHome
	RoleRemote
)

func (r Role) String() string {
	switch r {
	case RoleAny:
		return "any"
	case RoleHome:
		return "home"
	case RoleRemote:
		return "remote"
	}
	return "?"
}

// Rule is one guarded action: when a node whose line kind is Line
// receives a message of kind Msg (refined by Req) while the home's
// directory entry is in state Dir and the guard holds, the actions Do
// fire atomically.
//
// Dir is the directory state as observed at the serialization point:
// for home-side rules that is the home's own entry; for requester- and
// owner-side rules, which never read the directory, it is DirAny.
type Rule struct {
	Name string
	Role Role
	Dir  directory.State
	Line LineKind
	Msg  MsgKind
	Req  l2.Kind
	When Guard
	Do   []Op
}

// Hole is a (directory state × line kind × message kind) combination
// the protocol declares unreachable, with the reason. The model
// checker proves the declaration: reaching a declared hole is a
// violation, exactly as a stale //piranha:unreachable ledger entry is
// a lint finding.
type Hole struct {
	Dir    directory.State
	Line   LineKind
	Msg    MsgKind
	Req    l2.Kind
	Reason string
}

// Table is one protocol's full transition table.
type Table struct {
	Rules []Rule
	Holes []Hole
}

// Spec registers a protocol: its table plus the metadata internal/lint
// needs to run AST-level exhaustiveness checks over the files that
// implement it.
type Spec struct {
	Name string
	// Files are the module-relative Go files carrying the protocol's
	// dispatch switches; the lint protocoltable analyzer checks each.
	Files []string
	// StatePkg/StateName and MsgPkg/MsgName locate the two enums whose
	// cross-product the dispatch must cover (module-relative package
	// directories).
	StatePkg, StateName string
	MsgPkg, MsgName     string
	Table               *Table
}

var registry = map[string]Spec{}

// Register adds a protocol spec; duplicate names panic (two protocols
// silently shadowing each other would rot the lint and mcheck gates).
func Register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("protocol: duplicate registration of " + s.Name)
	}
	if s.Table == nil {
		panic("protocol: spec " + s.Name + " has no table")
	}
	registry[s.Name] = s
}

// Registered returns all registered specs sorted by name (map order
// must never leak into lint or checker output).
func Registered() []Spec {
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the named spec.
func Lookup(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// RequestKinds enumerates the protocol's request kinds in declaration
// order.
var RequestKinds = []l2.Kind{l2.Read, l2.ReadEx, l2.Upgrade, l2.ReadExNoData}

// DirStates enumerates the directory states.
var DirStates = []directory.State{directory.Uncached, directory.Shared, directory.SharedCoarse, directory.Exclusive}

// matches reports whether the rule key covers (dir, line, msg, req).
func (r Rule) matches(dir directory.State, line LineKind, msg MsgKind, req l2.Kind) bool {
	return (r.Dir == DirAny || r.Dir == dir) &&
		(r.Line == LineAny || r.Line == line) && r.Msg == msg &&
		(r.Req == ReqAny || r.Req == req)
}

// covered reports whether a hole declaration covers the combination.
func (h Hole) covered(dir directory.State, line LineKind, msg MsgKind, req l2.Kind) bool {
	return (h.Dir == DirAny || h.Dir == dir) &&
		(h.Line == LineAny || h.Line == line) && h.Msg == msg &&
		(h.Req == ReqAny || h.Req == req)
}

// Match returns the rules enabled for a reception, in table order.
// Guards are not evaluated here (the interpreter owns their
// semantics); callers receive every key-matching rule.
func (t *Table) Match(dir directory.State, line LineKind, msg MsgKind, req l2.Kind) []Rule {
	var out []Rule
	for _, r := range t.Rules {
		if r.matches(dir, line, msg, req) {
			out = append(out, r)
		}
	}
	return out
}

// Unreachable reports whether the combination is a declared hole.
func (t *Table) Unreachable(dir directory.State, line LineKind, msg MsgKind, req l2.Kind) (string, bool) {
	for _, h := range t.Holes {
		if h.covered(dir, line, msg, req) {
			return h.Reason, true
		}
	}
	return "", false
}

// Validate checks the table's static completeness: every (directory
// state × line kind × reception kind × request kind) combination must
// be matched by at least one rule or declared as a hole, rule names
// must be unique, and every hole must excuse at least one otherwise
// uncovered combination (the semantic analogue of lint's "the ledger
// may not rot").
func (t *Table) Validate() error {
	names := map[string]bool{}
	for _, r := range t.Rules {
		if names[r.Name] {
			return fmt.Errorf("protocol: duplicate rule name %q", r.Name)
		}
		names[r.Name] = true
		if len(r.Do) == 0 {
			return fmt.Errorf("protocol: rule %q has no actions", r.Name)
		}
	}
	holeUsed := make([]bool, len(t.Holes))
	// Receptions that consult the key's full cross-product. MsgNone
	// (spontaneous) rules are driven by the processor, not a message,
	// so their coverage is "some rule exists per line kind", checked
	// below.
	receptions := []MsgKind{MsgReq, MsgFwd, MsgInval, MsgInvAck, MsgReply, MsgWB, MsgWBAck, MsgShareWB}
	for _, dir := range DirStates {
		for line := LineKind(0); line < NLineKinds; line++ {
			for _, msg := range receptions {
				for _, req := range RequestKinds {
					rules := t.Match(dir, line, msg, req)
					unconditional := false
					for _, r := range rules {
						if r.When == GAlways {
							unconditional = true
							break
						}
					}
					if unconditional {
						continue
					}
					// Only guarded rules (or none) cover this key: a hole
					// declaring the residual unreachable is live, and a key
					// with no rules at all must carry one. Keys covered
					// solely by guarded rules without a hole are left to the
					// model checker, which proves the guards exhaustive at
					// runtime or reports the reception as unspecified.
					excused := false
					for i, h := range t.Holes {
						if h.covered(dir, line, msg, req) {
							holeUsed[i] = true
							excused = true
						}
					}
					if len(rules) == 0 && !excused {
						return fmt.Errorf("protocol: no rule or hole for (dir=%v, line=%v, msg=%v, req=%v)",
							dir, line, msg, req)
					}
				}
			}
		}
	}
	for i, h := range t.Holes {
		if !holeUsed[i] {
			return fmt.Errorf("protocol: stale hole (dir=%v, line=%v, msg=%v, req=%v): every combination it covers has a rule",
				h.Dir, h.Line, h.Msg, h.Req)
		}
	}
	// Every line kind must be able to start something (issue or evict):
	// a protocol with no spontaneous rules is vacuously "safe".
	for line := LineKind(0); line < NLineKinds; line++ {
		found := false
		for _, r := range t.Rules {
			if r.Msg == MsgNone && r.Line == line {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("protocol: no spontaneous rule for line kind %v", line)
		}
	}
	return nil
}
