package protocol

import (
	"strings"
	"testing"

	"piranha/internal/directory"
	"piranha/internal/l2"
)

func TestPiranhaRegisteredAndValid(t *testing.T) {
	spec, ok := Lookup("piranha")
	if !ok {
		t.Fatal("piranha spec not registered")
	}
	if err := spec.Table.Validate(); err != nil {
		t.Fatalf("registered table invalid: %v", err)
	}
	if len(spec.Files) == 0 {
		t.Fatal("spec names no files for lint")
	}
	if spec.StateName != "State" || spec.MsgName != "Kind" {
		t.Fatalf("unexpected enum names: %q/%q", spec.StateName, spec.MsgName)
	}
}

func TestRegisteredSortedAndContainsPiranha(t *testing.T) {
	specs := Registered()
	if len(specs) == 0 {
		t.Fatal("no registered specs")
	}
	found := false
	for i, s := range specs {
		if i > 0 && specs[i-1].Name >= s.Name {
			t.Fatalf("Registered not sorted: %q before %q", specs[i-1].Name, s.Name)
		}
		if s.Name == "piranha" {
			found = true
		}
	}
	if !found {
		t.Fatal("piranha missing from Registered")
	}
}

func TestMatchAndWildcards(t *testing.T) {
	tab := Piranha()
	// The three-hop read: directory exclusive elsewhere. The busy-engine
	// deferral rule precedes the service rule in dispatch order.
	rules := tab.Match(directory.Exclusive, LineInvalid, MsgReq, l2.Read)
	if len(rules) != 2 || rules[0].Name != "q-defer" || rules[1].Name != "q-read-owned" {
		t.Fatalf("Match(E, I, req, read) = %v, want [q-defer q-read-owned]", names(rules))
	}
	if rules[1].When != GOwnerNotReq {
		t.Fatalf("q-read-owned guard = %v, want owner-not-req", rules[1].When)
	}
	// Invalidations are keyed by line kind; an invalid line carries the
	// racing-fill refinement ahead of the plain absorb.
	for _, c := range []struct {
		line LineKind
		want int
	}{{LineInvalid, 2}, {LineShared, 1}, {LineExclusive, 1}} {
		if got := tab.Match(directory.Exclusive, c.line, MsgInval, l2.Read); len(got) != c.want {
			t.Fatalf("Match(inval, line=%v) = %v, want %d rules", c.line, names(got), c.want)
		}
	}
	// The owner==requester residual is a declared hole.
	if _, ok := tab.Unreachable(directory.Exclusive, LineInvalid, MsgReq, l2.ReadEx); !ok {
		t.Fatal("owner==requester residual not declared unreachable")
	}
	// Replies with no transaction outstanding are a declared hole.
	if _, ok := tab.Unreachable(directory.Uncached, LineShared, MsgReply, l2.Read); !ok {
		t.Fatal("unsolicited reply not declared unreachable")
	}
}

func TestWantsExclusiveAndReplyData(t *testing.T) {
	cases := []struct {
		kind l2.Kind
		excl bool
		data bool
	}{
		{l2.Read, false, true},
		{l2.ReadEx, true, true},
		{l2.Upgrade, true, false},
		{l2.ReadExNoData, true, false},
	}
	for _, c := range cases {
		if got := WantsExclusive(c.kind); got != c.excl {
			t.Errorf("WantsExclusive(%v) = %v, want %v", c.kind, got, c.excl)
		}
		if got := ReplyCarriesData(c.kind); got != c.data {
			t.Errorf("ReplyCarriesData(%v) = %v, want %v", c.kind, got, c.data)
		}
	}
}

func TestValidateRejectsBrokenTables(t *testing.T) {
	// A rule removed without a hole declared: coverage gap.
	tab := Piranha()
	tab.Rules = without(tab.Rules, "i-shared")
	if err := tab.Validate(); err == nil || !strings.Contains(err.Error(), "no rule or hole") {
		t.Fatalf("dropping i-shared: err = %v, want coverage gap", err)
	}

	// A hole whose every combination is unconditionally covered: stale.
	tab = Piranha()
	tab.Holes = append(tab.Holes, Hole{
		Dir: DirAny, Line: LineShared, Msg: MsgInval, Req: ReqAny,
		Reason: "stale by construction",
	})
	if err := tab.Validate(); err == nil || !strings.Contains(err.Error(), "stale hole") {
		t.Fatalf("stale hole: err = %v, want stale-hole error", err)
	}

	// Duplicate rule names would make counterexamples ambiguous.
	tab = Piranha()
	tab.Rules = append(tab.Rules, tab.Rules[0])
	if err := tab.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate rule name") {
		t.Fatalf("duplicate name: err = %v, want duplicate-name error", err)
	}

	// An empty action list is a typo, not a protocol decision.
	tab = Piranha()
	tab.Rules[0].Do = nil
	if err := tab.Validate(); err == nil || !strings.Contains(err.Error(), "no actions") {
		t.Fatalf("empty actions: err = %v, want no-actions error", err)
	}
}

func TestMutationsStillValidate(t *testing.T) {
	pristine := Piranha()
	for _, m := range Mutations() {
		mutated := m.Apply()
		if err := mutated.Validate(); err != nil {
			t.Errorf("mutation %s breaks static validation (%v); the self-test needs bugs only the checker can see", m.Name, err)
		}
		if m.Expect == "" {
			t.Errorf("mutation %s declares no expected invariant", m.Name)
		}
		if tablesEqual(pristine, mutated) {
			t.Errorf("mutation %s left the table unchanged", m.Name)
		}
	}
	// Catalog lookup round-trips.
	if _, ok := MutationByName("drop-inval-ack"); !ok {
		t.Error("MutationByName misses a catalog entry")
	}
	if _, ok := MutationByName("no-such-bug"); ok {
		t.Error("MutationByName invents entries")
	}
}

func TestMutationsDoNotAliasPristine(t *testing.T) {
	m, _ := MutationByName("missing-tsrf-release")
	mutated := m.Apply()
	fresh := Piranha()
	if tablesEqual(fresh, mutated) {
		t.Fatal("Apply returned an unmutated table")
	}
	if !tablesEqual(fresh, Piranha()) {
		t.Fatal("mutation leaked into freshly built tables")
	}
	spec, _ := Lookup("piranha")
	if !tablesEqual(fresh, spec.Table) {
		t.Fatal("mutation leaked into the registered table")
	}
}

func TestStringersTotal(t *testing.T) {
	for o := Op(0); o < NOps; o++ {
		if s := o.String(); s == "" || s == "?" {
			t.Errorf("Op(%d) has no name", o)
		}
	}
	for g := Guard(0); g < NGuards; g++ {
		if s := g.String(); s == "?" {
			t.Errorf("Guard(%d) has no name", g)
		}
	}
	for k := MsgKind(0); k < NMsgKinds; k++ {
		if s := k.String(); s == "?" {
			t.Errorf("MsgKind(%d) has no name", k)
		}
	}
	for k := LineKind(0); k < NLineKinds; k++ {
		if s := k.String(); s == "?" {
			t.Errorf("LineKind(%d) has no name", k)
		}
	}
	for _, r := range []Role{RoleAny, RoleHome, RoleRemote} {
		if r.String() == "?" {
			t.Errorf("Role(%d) has no name", r)
		}
	}
	for _, req := range RequestKinds {
		if KindSlug(req) == "" {
			t.Errorf("KindSlug(%v) empty", req)
		}
	}
}

func names(rules []Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Name
	}
	return out
}

func without(rules []Rule, name string) []Rule {
	var out []Rule
	for _, r := range rules {
		if r.Name != name {
			out = append(out, r)
		}
	}
	return out
}

func tablesEqual(a, b *Table) bool {
	if len(a.Rules) != len(b.Rules) || len(a.Holes) != len(b.Holes) {
		return false
	}
	for i := range a.Rules {
		ra, rb := a.Rules[i], b.Rules[i]
		if ra.Name != rb.Name || ra.Dir != rb.Dir || ra.Line != rb.Line ||
			ra.Msg != rb.Msg || ra.Req != rb.Req || ra.When != rb.When ||
			ra.Role != rb.Role || len(ra.Do) != len(rb.Do) {
			return false
		}
		for j := range ra.Do {
			if ra.Do[j] != rb.Do[j] {
				return false
			}
		}
	}
	return true
}
