// The shipped protocol: Piranha's NAK-free invalidation-based directory
// protocol (ISCA 2000 §2.5, §3.5) as a declarative table. The rules are
// extracted one-for-one from the dispatch in internal/pe/transactions.go:
//
//   - reply forwarding: a request that hits a remote exclusive owner is
//     forwarded once and the owner replies straight to the requester
//     (three hops, never four);
//   - eager exclusive replies: exclusivity is granted before the
//     invalidation acks return; the acks gather at the requester;
//   - clean-exclusive optimization: a read of an uncached line with no
//     home-chip copy is granted exclusively;
//   - no NAKs: the directory is updated eagerly at the forward point, a
//     replaced exclusive line is held by its writer until the home
//     acknowledges the writeback, and a forwarded request that races
//     ahead of its target's fill is delayed, not bounced.
//
// One deliberate refinement over pe's timing model: pe sizes every
// upgrade reply as a header-only packet (it models no data), but an
// upgrade whose requester has dropped out of the sharer set — the copy
// was invalidated or silently evicted while the upgrade was in flight —
// must be answered with data (q-upgrade-miss-*). The model checker
// proves why: a no-data grant landing on an invalid line is a stale
// read, exactly the bug the wrong-reply-kind mutation plants.
package protocol

import (
	"piranha/internal/directory"
	"piranha/internal/l2"
)

// WantsExclusive maps a request kind to whether the transaction must
// end with the requester holding the line exclusively. The switch is
// exhaustive over l2.Kind so that adding a request kind without
// deciding its ownership semantics fails piranha-vet's protocol-table
// check rather than silently defaulting; internal/pe drives its
// dispatch off this predicate.
func WantsExclusive(kind l2.Kind) bool {
	switch kind {
	case l2.Read:
		return false
	case l2.ReadEx, l2.Upgrade, l2.ReadExNoData:
		return true
	}
	panic("protocol: unknown request kind")
}

// ReplyCarriesData reports whether the home's reply to a request it
// services itself carries the full line: reads and read-exclusives do,
// while upgrades and write-hint grants are header-only. pe maps this to
// its long/short packet sizes.
func ReplyCarriesData(kind l2.Kind) bool {
	switch kind {
	case l2.Read, l2.ReadEx:
		return true
	case l2.Upgrade, l2.ReadExNoData:
		return false
	}
	panic("protocol: unknown request kind")
}

// KindSlug is the request kind's name inside rule identifiers: the
// protocol's view (write/upgrade/wh64) rather than the cache's
// (ReadEx/Upgrade/ReadExNoData).
func KindSlug(kind l2.Kind) string {
	switch kind {
	case l2.Read:
		return "read"
	case l2.ReadEx:
		return "write"
	case l2.Upgrade:
		return "upgrade"
	case l2.ReadExNoData:
		return "wh64"
	}
	panic("protocol: unknown request kind")
}

// dirSlug names a directory state inside rule identifiers.
func dirSlug(dir directory.State) string {
	switch dir {
	case directory.Uncached:
		return "uncached"
	case directory.Shared:
		return "shared"
	case directory.SharedCoarse:
		return "shared-coarse"
	case directory.Exclusive:
		return "owned"
	}
	panic("protocol: unknown directory state")
}

// Piranha builds a fresh copy of the shipped protocol's table. Callers
// that want to mutate it (the mcheck self-test) get their own instance;
// the registered Spec holds another.
func Piranha() *Table {
	t := &Table{}
	t.Rules = append(t.Rules, issueRules()...)
	// The §3.5 deferral: while the home engine holds a TSRF entry for
	// the line (a forwarded transaction's sharing writeback or reply is
	// still due), same-line requests wait in their channel. This rule
	// precedes every q-* rule so reception dispatch hits it first.
	t.Rules = append(t.Rules, Rule{
		Name: "q-defer", Role: RoleHome, Dir: DirAny, Line: LineAny,
		Msg: MsgReq, Req: ReqAny, When: GEngineBusy, Do: []Op{OpDelay},
	})
	for _, dir := range DirStates {
		t.Rules = append(t.Rules, homeIssueRules(dir)...)
		t.Rules = append(t.Rules, homeRequestRules(dir)...)
	}
	t.Rules = append(t.Rules, forwardRules()...)
	t.Rules = append(t.Rules, invalRules()...)
	t.Rules = append(t.Rules, replyRules()...)
	t.Rules = append(t.Rules, writebackRules()...)
	t.Holes = holes()
	return t
}

// issueRules are the processor-driven starts at a node that is not the
// line's home: misses reserve a remote-engine TSRF entry and send the
// request; hits and evictions act locally. An exclusive eviction sends
// a writeback but holds the copy until the home's ack (§3.5) — that
// hold is what lets forwardRules serve every forwarded request.
func issueRules() []Rule {
	var out []Rule
	for _, req := range RequestKinds {
		line := LineInvalid
		if req == l2.Upgrade {
			line = LineShared
		}
		out = append(out, Rule{
			Name: "issue-" + KindSlug(req), Role: RoleRemote,
			Dir: DirAny, Line: line, Msg: MsgNone, Req: req, When: GNoPending,
			Do: []Op{OpReserveTSRF, OpSendReq},
		})
	}
	return append(out,
		Rule{Name: "write-hit", Role: RoleAny, Dir: DirAny, Line: LineExclusive,
			Msg: MsgNone, Req: ReqAny, When: GNoPending, Do: []Op{OpWriteLocal}},
		Rule{Name: "evict-shared", Role: RoleAny, Dir: DirAny, Line: LineShared,
			Msg: MsgNone, Req: ReqAny, When: GNoPending, Do: []Op{OpInvalidateLine}},
		Rule{Name: "evict-exclusive", Role: RoleRemote, Dir: DirAny, Line: LineExclusive,
			Msg: MsgNone, Req: ReqAny, When: GNoPending, Do: []Op{OpReserveTSRF, OpSendWB}},
		Rule{Name: "evict-exclusive-home", Role: RoleHome, Dir: DirAny, Line: LineExclusive,
			Msg: MsgNone, Req: ReqAny, When: GNoPending, Do: []Op{OpUpdateMem, OpInvalidateLine}},
	)
}

// homeIssueRules are the same processor-driven starts at the home node,
// where the directory is a local lookup and no request message exists:
// the home services itself (its own copies are never recorded in the
// directory, §2.5.2), invalidates remote sharers with the acks
// gathering locally, or — when a remote node owns the line — becomes a
// requester itself and forwards (pe's homeLocalOwnerFetch).
func homeIssueRules(dir directory.State) []Rule {
	slug := dirSlug(dir)
	switch dir {
	case directory.Uncached:
		return []Rule{
			{Name: "h-read-" + slug, Role: RoleHome, Dir: dir, Line: LineInvalid,
				Msg: MsgNone, Req: l2.Read, When: GNoPending,
				Do: []Op{OpSupplyHome, OpFill}},
			{Name: "h-write-" + slug, Role: RoleHome, Dir: dir, Line: LineInvalid,
				Msg: MsgNone, Req: l2.ReadEx, When: GNoPending,
				Do: []Op{OpSupplyHome, OpFill, OpWriteLocal}},
			{Name: "h-upgrade-" + slug, Role: RoleHome, Dir: dir, Line: LineShared,
				Msg: MsgNone, Req: l2.Upgrade, When: GNoPending,
				Do: []Op{OpFill, OpWriteLocal}},
			{Name: "h-wh64-" + slug, Role: RoleHome, Dir: dir, Line: LineInvalid,
				Msg: MsgNone, Req: l2.ReadExNoData, When: GNoPending,
				Do: []Op{OpFill, OpWriteLocal}},
		}
	case directory.Shared, directory.SharedCoarse:
		return []Rule{
			{Name: "h-read-" + slug, Role: RoleHome, Dir: dir, Line: LineInvalid,
				Msg: MsgNone, Req: l2.Read, When: GNoPending,
				Do: []Op{OpSupplyHome, OpFill}},
			{Name: "h-write-" + slug, Role: RoleHome, Dir: dir, Line: LineInvalid,
				Msg: MsgNone, Req: l2.ReadEx, When: GNoPending,
				Do: []Op{OpSupplyHome, OpInvalSharers, OpDirClear, OpFill, OpWriteLocal}},
			{Name: "h-upgrade-" + slug, Role: RoleHome, Dir: dir, Line: LineShared,
				Msg: MsgNone, Req: l2.Upgrade, When: GNoPending,
				Do: []Op{OpInvalSharers, OpDirClear, OpFill, OpWriteLocal}},
			{Name: "h-wh64-" + slug, Role: RoleHome, Dir: dir, Line: LineInvalid,
				Msg: MsgNone, Req: l2.ReadExNoData, When: GNoPending,
				Do: []Op{OpInvalSharers, OpDirClear, OpFill, OpWriteLocal}},
		}
	case directory.Exclusive:
		var out []Rule
		for _, req := range RequestKinds {
			line := LineInvalid
			if req == l2.Upgrade {
				line = LineShared
			}
			do := []Op{OpReserveTSRF, OpForwardReq, OpDirClear}
			if !WantsExclusive(req) {
				// The remote owner keeps a shared copy; the home's own
				// copy-to-be is not recorded.
				do = []Op{OpReserveTSRF, OpForwardReq, OpDirShareOwnerReq}
			}
			out = append(out, Rule{
				Name: "h-" + KindSlug(req) + "-" + slug, Role: RoleHome,
				Dir: dir, Line: line, Msg: MsgNone, Req: req, When: GNoPending,
				Do: do,
			})
		}
		return out
	}
	panic("protocol: unknown directory state")
}

// homeRequestRules service a remote node's request at the home. The
// directory is updated eagerly — at the reply or forward point — so the
// home engine's occupancy ends here; subsequent races are absorbed by
// the forward/inval/reply rules, never NAKed.
func homeRequestRules(dir directory.State) []Rule {
	slug := dirSlug(dir)
	switch dir {
	case directory.Uncached:
		return []Rule{
			{Name: "q-read-" + slug, Dir: dir, Line: LineAny, Msg: MsgReq, Req: l2.Read,
				When: GAlways,
				Do:   []Op{OpSupplyHome, OpDowngradeHome, OpDirReadGrant, OpReplyData}},
			{Name: "q-write-" + slug, Dir: dir, Line: LineAny, Msg: MsgReq, Req: l2.ReadEx,
				When: GAlways,
				Do:   []Op{OpSupplyHome, OpInvalHome, OpDirSetExclusiveReq, OpReplyData}},
			// An upgrade that finds the line uncached lost every race: the
			// requester's copy (and everyone else's) is gone, so the grant
			// must carry data.
			{Name: "q-upgrade-racer", Dir: dir, Line: LineAny, Msg: MsgReq, Req: l2.Upgrade,
				When: GAlways,
				Do:   []Op{OpSupplyHome, OpInvalHome, OpDirSetExclusiveReq, OpReplyData}},
			{Name: "q-wh64-" + slug, Dir: dir, Line: LineAny, Msg: MsgReq, Req: l2.ReadExNoData,
				When: GAlways,
				Do:   []Op{OpInvalHome, OpDirSetExclusiveReq, OpReplyGrant}},
		}
	case directory.Shared, directory.SharedCoarse:
		return []Rule{
			{Name: "q-read-" + slug, Dir: dir, Line: LineAny, Msg: MsgReq, Req: l2.Read,
				When: GAlways,
				Do:   []Op{OpSupplyHome, OpDowngradeHome, OpDirReadGrant, OpReplyData}},
			{Name: "q-write-" + slug, Dir: dir, Line: LineAny, Msg: MsgReq, Req: l2.ReadEx,
				When: GAlways,
				Do:   []Op{OpSupplyHome, OpInvalHome, OpInvalSharers, OpDirSetExclusiveReq, OpReplyData}},
			{Name: "q-upgrade-hit-" + slug, Dir: dir, Line: LineAny, Msg: MsgReq, Req: l2.Upgrade,
				When: GReqIsSharer,
				Do:   []Op{OpInvalHome, OpInvalSharers, OpDirSetExclusiveReq, OpReplyGrant}},
			// The refinement documented atop this file: the requester fell
			// out of the sharer set while its upgrade was in flight, so a
			// header-only grant would fill nothing — send the line.
			{Name: "q-upgrade-miss-" + slug, Dir: dir, Line: LineAny, Msg: MsgReq, Req: l2.Upgrade,
				When: GReqNotSharer,
				Do:   []Op{OpSupplyHome, OpInvalHome, OpInvalSharers, OpDirSetExclusiveReq, OpReplyData}},
			{Name: "q-wh64-" + slug, Dir: dir, Line: LineAny, Msg: MsgReq, Req: l2.ReadExNoData,
				When: GAlways,
				Do:   []Op{OpInvalHome, OpInvalSharers, OpDirSetExclusiveReq, OpReplyGrant}},
		}
	case directory.Exclusive:
		var out []Rule
		for _, req := range RequestKinds {
			do := []Op{OpForwardReq, OpDirSetExclusiveReq}
			if !WantsExclusive(req) {
				// A read forward opens the window in which the directory
				// says shared but memory is stale until the owner's sharing
				// writeback lands: the home engine keeps a TSRF entry for
				// the transaction and q-defer holds same-line requests
				// until MsgShareWB releases it. Exclusive forwards need no
				// entry — the new owner itself delays early requests
				// (f-early rules) until its fill arrives.
				do = []Op{OpReserveTSRF, OpForwardReq, OpDirShareOwnerReq}
			}
			out = append(out, Rule{
				Name: "q-" + KindSlug(req) + "-" + slug,
				Dir:  dir, Line: LineAny, Msg: MsgReq, Req: req, When: GOwnerNotReq,
				Do: do,
			})
		}
		return out
	}
	panic("protocol: unknown directory state")
}

// forwardRules run at the node a request was forwarded to. The no-NAK
// guarantee lives here: the owner either still holds the copy (it is
// held through an in-flight writeback) and serves, or the forward
// outran the fill that will make it the owner and is delayed in place
// until that fill lands — never bounced.
func forwardRules() []Rule {
	out := []Rule{
		{Name: "f-serve-read", Dir: DirAny, Line: LineExclusive, Msg: MsgFwd, Req: l2.Read,
			When: GAlways,
			// A dirty share: the owner downgrades, replies straight to the
			// requester (reply forwarding) and sends the sharing writeback
			// that refreshes home memory and closes the home engine's
			// read-forward window.
			Do: []Op{OpSupplyOwn, OpSendShareWB, OpDowngradeLine, OpReplyData}},
	}
	for _, req := range RequestKinds {
		if !WantsExclusive(req) {
			continue
		}
		out = append(out, Rule{
			Name: "f-serve-" + KindSlug(req),
			Dir:  DirAny, Line: LineExclusive, Msg: MsgFwd, Req: req, When: GAlways,
			// Dirty ownership moves to the requester; memory stays stale
			// until the new owner writes back.
			Do: []Op{OpSupplyOwn, OpInvalidateLine, OpReplyData}})
	}
	return append(out,
		Rule{Name: "f-early-invalid", Dir: DirAny, Line: LineInvalid, Msg: MsgFwd,
			Req: ReqAny, When: GPendingFill, Do: []Op{OpDelay}},
		Rule{Name: "f-early-shared", Dir: DirAny, Line: LineShared, Msg: MsgFwd,
			Req: ReqAny, When: GPendingFill, Do: []Op{OpDelay}},
	)
}

// invalRules run at a sharer receiving an invalidation. The ack is owed
// to the *requester* named in the message (eager exclusive replies
// gather acks there). Copies can already be gone (silent shared
// eviction) or already belong to a newer epoch (the owner's reply beat
// the home's invalidation across channels) — both absorb the message
// and ack without touching the line.
func invalRules() []Rule {
	return []Rule{
		{Name: "i-shared", Dir: DirAny, Line: LineShared, Msg: MsgInval, Req: ReqAny,
			When: GAlways, Do: []Op{OpInvalidateLine, OpAckRequester}},
		// The invalidation overtook a shared fill still in flight on the
		// owner's channel: it was serialized after the read, so the fill
		// serves the pending load once and is not cached (GS320-style
		// early invalidation, legal under the relaxed model).
		{Name: "i-racing-fill", Dir: DirAny, Line: LineInvalid, Msg: MsgInval, Req: ReqAny,
			When: GPendingShareFill, Do: []Op{OpPoisonFill, OpAckRequester}},
		{Name: "i-invalid", Dir: DirAny, Line: LineInvalid, Msg: MsgInval, Req: ReqAny,
			When: GAlways, Do: []Op{OpAckRequester}},
		{Name: "i-exclusive", Dir: DirAny, Line: LineExclusive, Msg: MsgInval, Req: ReqAny,
			When: GAlways, Do: []Op{OpAckRequester}},
	}
}

// replyRules run at a requester: the fill completes the transaction and
// frees its TSRF entry; invalidation acks are gathered as they trickle
// in (exclusivity was granted eagerly, so completion never waits).
func replyRules() []Rule {
	return []Rule{
		{Name: "a-gather", Dir: DirAny, Line: LineAny, Msg: MsgInvAck, Req: ReqAny,
			When: GAlways, Do: []Op{OpGatherAck}},
		{Name: "recv-reply", Dir: DirAny, Line: LineAny, Msg: MsgReply, Req: ReqAny,
			When: GPendingFill, Do: []Op{OpFill, OpReleaseTSRF, OpComplete}},
	}
}

// writebackRules run at the home when a replaced exclusive line
// returns. Ownership may have been forwarded away while the writeback
// was in flight; a stale writeback is acked but must not touch memory
// or the directory (the data already moved through the forward path).
func writebackRules() []Rule {
	out := []Rule{
		{Name: "w-owner", Dir: directory.Exclusive, Line: LineAny, Msg: MsgWB, Req: ReqAny,
			When: GSenderIsOwner, Do: []Op{OpUpdateMem, OpDirClear, OpAckWB}},
		{Name: "w-stale-owned", Dir: directory.Exclusive, Line: LineAny, Msg: MsgWB, Req: ReqAny,
			When: GSenderNotOwner, Do: []Op{OpAckWB}},
	}
	for _, dir := range DirStates {
		if dir == directory.Exclusive {
			continue
		}
		out = append(out, Rule{
			Name: "w-stale-" + dirSlug(dir),
			Dir:  dir, Line: LineAny, Msg: MsgWB, Req: ReqAny,
			When: GAlways, Do: []Op{OpAckWB}})
	}
	// The sharing writeback arrives while the directory is shared (the
	// forward point put it there) and the home engine holds the
	// read-forward TSRF entry. When the home was itself the requester
	// (h-read-owned) its pending fill owns the entry and the reply —
	// queued behind the sharing writeback on the owner's ordered channel
	// — releases it instead.
	for _, dir := range DirStates {
		if dir == directory.Uncached || dir == directory.Exclusive {
			continue
		}
		out = append(out,
			Rule{Name: "ws-own-fill-" + dirSlug(dir), Role: RoleHome, Dir: dir, Line: LineAny,
				Msg: MsgShareWB, Req: ReqAny, When: GPendingFill, Do: []Op{OpUpdateMem}},
			Rule{Name: "ws-share-" + dirSlug(dir), Role: RoleHome, Dir: dir, Line: LineAny,
				Msg: MsgShareWB, Req: ReqAny, When: GAlways, Do: []Op{OpUpdateMem, OpReleaseTSRF}},
		)
	}
	return append(out,
		Rule{Name: "wb-done", Dir: DirAny, Line: LineAny, Msg: MsgWBAck, Req: ReqAny,
			When: GPendingWB, Do: []Op{OpInvalidateLine, OpReleaseTSRF, OpComplete}},
	)
}

// holes declare the combinations the protocol promises never happen.
// The model checker proves each promise: reaching one is a violation
// with a counterexample, exactly as a stale //piranha:unreachable
// ledger entry is a lint finding.
func holes() []Hole {
	return []Hole{
		{Dir: directory.Exclusive, Line: LineAny, Msg: MsgReq, Req: ReqAny,
			Reason: "owner is the requester: a node never requests a line the directory records it owning — issue rules require an invalid or shared copy, grants synchronize through the reply, and writebacks hold the copy"},
		{Dir: DirAny, Line: LineInvalid, Msg: MsgFwd, Req: ReqAny,
			Reason: "forward to a node with no copy and no fill in flight: ownership is only redirected eagerly toward a requester whose fill is already on the wire, and a writing-back owner holds its copy until the home's ack"},
		{Dir: DirAny, Line: LineShared, Msg: MsgFwd, Req: ReqAny,
			Reason: "forward to a shared copy with no fill in flight: a shared holder is only the forward target while its upgrade grant races the forward"},
		{Dir: DirAny, Line: LineAny, Msg: MsgReply, Req: ReqAny,
			Reason: "reply with no transaction outstanding: replies pair one-to-one with reserved TSRF entries"},
		{Dir: DirAny, Line: LineAny, Msg: MsgWBAck, Req: ReqAny,
			Reason: "writeback ack with no writeback outstanding: acks pair one-to-one with writebacks"},
		{Dir: directory.Uncached, Line: LineAny, Msg: MsgShareWB, Req: ReqAny,
			Reason: "sharing writeback with the line uncached: the forward point records the owner and requester as sharers and q-defer holds every request that could clear them until the writeback lands"},
		{Dir: directory.Exclusive, Line: LineAny, Msg: MsgShareWB, Req: ReqAny,
			Reason: "sharing writeback with the line exclusively owned: the read-forward window the writeback closes keeps the directory shared until it arrives"},
	}
}

func init() {
	t := Piranha()
	if err := t.Validate(); err != nil {
		panic(err)
	}
	Register(Spec{
		Name: "piranha",
		Files: []string{
			"internal/protocol/piranha.go",
			"internal/pe/transactions.go",
		},
		StatePkg: "internal/directory", StateName: "State",
		MsgPkg: "internal/l2", MsgName: "Kind",
		Table: t,
	})
}
