package cache

// PageBytes is the virtual-memory page size used by the TLB model.
const PageBytes = 8192

// PageShift is log2(PageBytes).
const PageShift = 13

// TLB models the 256-entry 4-way set-associative translation buffers in
// each L1 module (paper §2.1). Translation itself is identity (the
// simulator works in physical addresses); the TLB exists to charge refill
// latency and to count misses.
type TLB struct {
	tags [][]uint64 // page numbers per set/way; ^0 means empty
	lru  [][]uint64
	tick uint64

	Hits   uint64
	Misses uint64
}

// NewTLB returns an empty TLB with entries total entries and ways ways.
func NewTLB(entries, ways int) *TLB {
	sets := entries / ways
	t := &TLB{tags: make([][]uint64, sets), lru: make([][]uint64, sets)}
	for i := range t.tags {
		t.tags[i] = make([]uint64, ways)
		t.lru[i] = make([]uint64, ways)
		for j := range t.tags[i] {
			t.tags[i][j] = ^uint64(0)
		}
	}
	return t
}

// Access touches the page containing a and reports whether it hit.
// On a miss the translation is filled (evicting LRU).
func (t *TLB) Access(a Addr) bool {
	page := uint64(a) >> PageShift
	si := page & uint64(len(t.tags)-1)
	set := t.tags[si]
	t.tick++
	for i, tag := range set {
		if tag == page {
			t.Hits++
			t.lru[si][i] = t.tick
			return true
		}
	}
	t.Misses++
	way := 0
	for i := 1; i < len(set); i++ {
		if t.lru[si][i] < t.lru[si][way] {
			way = i
		}
	}
	set[way] = page
	t.lru[si][way] = t.tick
	return false
}
