package cache

import (
	"testing"
	"testing/quick"

	"piranha/internal/sim"
)

func l1cfg() Config {
	return Config{SizeBytes: 64 << 10, Ways: 2, Replace: LRU}
}

func TestGeometry(t *testing.T) {
	c := New(l1cfg())
	if got := c.Config().Sets(); got != 512 {
		t.Fatalf("64KB 2-way: %d sets, want 512", got)
	}
	l2 := New(Config{SizeBytes: 128 << 10, Ways: 8, IndexShift: 3, Replace: RoundRobin})
	if got := l2.Config().Sets(); got != 256 {
		t.Fatalf("128KB 8-way bank: %d sets, want 256", got)
	}
}

func TestAddrLineRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		l := addr.Line()
		return l.Addr() <= addr && addr < l.Addr()+LineBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProbeInsert(t *testing.T) {
	c := New(l1cfg())
	if c.Probe(100) != nil {
		t.Fatal("hit in empty cache")
	}
	c.Insert(100, Shared)
	ln := c.Probe(100)
	if ln == nil || ln.State != Shared || ln.Tag != 100 {
		t.Fatalf("probe after insert: %+v", ln)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestInsertSameLineUpdatesState(t *testing.T) {
	c := New(l1cfg())
	c.Insert(7, Shared)
	c.Insert(7, Modified)
	if c.CountValid() != 1 {
		t.Fatalf("duplicate line: %d valid", c.CountValid())
	}
	if got := c.Lookup(7).State; got != Modified {
		t.Fatalf("state %v", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(l1cfg())
	// Three lines mapping to the same set of a 2-way cache.
	// Set index = line & 511, so lines 1, 513, 1025 conflict.
	c.Insert(1, Shared)
	c.Insert(513, Shared)
	c.Probe(1) // make line 1 most recent
	v := c.Insert(1025, Shared)
	if !v.State.Valid() || v.Tag != 513 {
		t.Fatalf("LRU should evict 513, evicted %+v", v)
	}
	if c.Lookup(1) == nil || c.Lookup(1025) == nil {
		t.Fatal("survivors missing")
	}
}

func TestRoundRobinEviction(t *testing.T) {
	c := New(Config{SizeBytes: 2 * LineBytes, Ways: 2, Replace: RoundRobin})
	// One set, two ways.
	c.Insert(0, Shared)
	c.Insert(1, Shared)
	v1 := c.Insert(2, Shared)
	v2 := c.Insert(3, Shared)
	if v1.Tag != 0 || v2.Tag != 1 {
		t.Fatalf("round robin evicted %d then %d, want 0 then 1", v1.Tag, v2.Tag)
	}
}

func TestInvalidPreferredOverEviction(t *testing.T) {
	c := New(Config{SizeBytes: 2 * LineBytes, Ways: 2, Replace: RoundRobin})
	c.Insert(0, Shared)
	c.Insert(1, Shared)
	c.Invalidate(0)
	v := c.Insert(2, Shared)
	if v.State.Valid() {
		t.Fatalf("should fill invalid way, evicted %+v", v)
	}
	if c.Lookup(1) == nil {
		t.Fatal("line 1 should survive")
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	c := New(l1cfg())
	c.Insert(5, Modified)
	old := c.Invalidate(5)
	if old.State != Modified {
		t.Fatalf("invalidate returned %v", old.State)
	}
	if c.Lookup(5) != nil {
		t.Fatal("line still present")
	}
	if c.Invalidate(5).State.Valid() {
		t.Fatal("double invalidate returned valid line")
	}

	c.Insert(6, Exclusive)
	if prev := c.Downgrade(6); prev != Exclusive {
		t.Fatalf("downgrade returned %v", prev)
	}
	if c.Lookup(6).State != Shared {
		t.Fatal("not downgraded")
	}
	if prev := c.Downgrade(999); prev != Invalid {
		t.Fatalf("downgrade of absent line returned %v", prev)
	}
}

func TestMESIHelpers(t *testing.T) {
	if Invalid.Valid() || !Shared.Valid() {
		t.Fatal("Valid() wrong")
	}
	if Shared.CanWrite() || !Modified.CanWrite() || !Exclusive.CanWrite() {
		t.Fatal("CanWrite() wrong")
	}
	if Modified.String() != "M" || Invalid.String() != "I" {
		t.Fatal("String() wrong")
	}
}

func TestCapacityInvariant(t *testing.T) {
	// Property: after any access sequence, valid lines never exceed
	// capacity and each line appears at most once.
	r := sim.NewRNG(5)
	c := New(Config{SizeBytes: 8 << 10, Ways: 4, Replace: LRU})
	capLines := (8 << 10) / LineBytes
	for i := 0; i < 20000; i++ {
		l := LineAddr(r.Intn(1000))
		switch r.Intn(3) {
		case 0:
			c.Insert(l, MESI(1+r.Intn(3)))
		case 1:
			c.Probe(l)
		case 2:
			c.Invalidate(l)
		}
		if c.CountValid() > capLines {
			t.Fatalf("capacity exceeded at step %d", i)
		}
	}
	seen := map[LineAddr]bool{}
	for _, ln := range c.Contents() {
		if seen[ln.Tag] {
			t.Fatalf("line %d present twice", ln.Tag)
		}
		seen[ln.Tag] = true
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(256, 4)
	a := Addr(0x12344000) // page-aligned (8 KB pages)
	if tlb.Access(a) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Access(a) || !tlb.Access(a+PageBytes-1) {
		t.Fatal("same page should hit")
	}
	if tlb.Access(a + PageBytes) {
		t.Fatal("next page should miss")
	}
	if tlb.Hits != 2 || tlb.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBEviction(t *testing.T) {
	tlb := NewTLB(256, 4)
	// 64 sets; pages with the same low 6 bits of page number conflict.
	// Fill one set with 5 pages; the first should be evicted.
	base := Addr(0)
	for i := 0; i < 5; i++ {
		tlb.Access(base + Addr(i*64*PageBytes))
	}
	if tlb.Access(base) {
		t.Fatal("LRU page should have been evicted")
	}
}

func BenchmarkProbeHit(b *testing.B) {
	c := New(l1cfg())
	c.Insert(42, Shared)
	for i := 0; i < b.N; i++ {
		c.Probe(42)
	}
}
