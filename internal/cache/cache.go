// Package cache provides the generic set-associative cache structures,
// addresses, and MESI states shared by the L1 and L2 models (paper §2.1,
// §2.3). Caches here are functional: they track tags and states exactly;
// timing lives with their controllers.
package cache

import "fmt"

// LineBytes is the coherence granularity throughout the system.
const LineBytes = 64

// LineShift is log2(LineBytes).
const LineShift = 6

// Addr is a physical byte address.
type Addr uint64

// Line returns the cache-line address containing a.
func (a Addr) Line() LineAddr { return LineAddr(a >> LineShift) }

// LineAddr is a cache-line-granularity address (Addr >> 6).
type LineAddr uint64

// Addr returns the first byte address of the line.
func (l LineAddr) Addr() Addr { return Addr(l) << LineShift }

// MESI is the four-state invalidation protocol state kept in the 2-bit
// state field of every L1 line.
type MESI uint8

// MESI states.
const (
	Invalid MESI = iota
	Shared
	Exclusive
	Modified
)

func (s MESI) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Valid reports whether the state holds data.
func (s MESI) Valid() bool { return s != Invalid }

// CanWrite reports whether a store may proceed without an upgrade.
func (s MESI) CanWrite() bool { return s == Exclusive || s == Modified }

// ReplacePolicy selects a victim way within a set.
type ReplacePolicy uint8

// Replacement policies.
const (
	// LRU replaces the least-recently-used way (used by the L1s).
	LRU ReplacePolicy = iota
	// RoundRobin replaces ways cyclically ("least-recently-loaded",
	// used by the L2 banks when no invalid way is available).
	RoundRobin
)

// Line is one cache line's bookkeeping.
type Line struct {
	Tag   LineAddr // the full line address (valid only when State != Invalid)
	State MESI
	// Dirty marks L2 lines newer than memory. (L1s use State==Modified.)
	Dirty bool
	// used is the LRU timestamp.
	used uint64
}

// Config describes a cache's geometry.
type Config struct {
	SizeBytes int
	Ways      int
	// IndexShift skips low line-address bits when computing the set
	// index (the L2 banks skip the 3 bank-select bits).
	IndexShift uint
	Replace    ReplacePolicy
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / LineBytes / c.Ways }

// Cache is a set-associative array of lines.
type Cache struct {
	cfg   Config
	sets  [][]Line
	rrPtr []int // round-robin pointer per set
	tick  uint64

	// Stats.
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New returns an empty cache with the given geometry.
func New(cfg Config) *Cache {
	n := cfg.Sets()
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a positive power of two", n))
	}
	c := &Cache{cfg: cfg, sets: make([][]Line, n), rrPtr: make([]int, n)}
	for i := range c.sets {
		c.sets[i] = make([]Line, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(l LineAddr) int {
	return int(uint64(l) >> c.cfg.IndexShift & uint64(len(c.sets)-1))
}

// Lookup returns the line holding l, or nil. It does not update LRU state;
// callers that model an access should use Probe.
func (c *Cache) Lookup(l LineAddr) *Line {
	set := c.sets[c.setIndex(l)]
	for i := range set {
		if set[i].State.Valid() && set[i].Tag == l {
			return &set[i]
		}
	}
	return nil
}

// Probe performs an access: on hit it updates recency and returns the
// line; on miss it returns nil. Hit/miss counters are updated.
func (c *Cache) Probe(l LineAddr) *Line {
	ln := c.Lookup(l)
	if ln == nil {
		c.Misses++
		return nil
	}
	c.Hits++
	c.tick++
	ln.used = c.tick
	return ln
}

// Insert fills line l with the given state, selecting a victim when the
// set is full. It returns the evicted line (State != Invalid only when a
// valid line was displaced).
func (c *Cache) Insert(l LineAddr, state MESI) (victim Line) {
	if state == Invalid {
		panic("cache: inserting invalid line")
	}
	si := c.setIndex(l)
	set := c.sets[si]
	// Reuse the line if present (state change), else an invalid way.
	way := -1
	for i := range set {
		if set[i].State.Valid() && set[i].Tag == l {
			way = i
			break
		}
	}
	if way < 0 {
		for i := range set {
			if !set[i].State.Valid() {
				way = i
				break
			}
		}
	}
	if way < 0 {
		switch c.cfg.Replace {
		case RoundRobin:
			way = c.rrPtr[si]
			c.rrPtr[si] = (way + 1) % c.cfg.Ways
		default: // LRU
			way = 0
			for i := 1; i < len(set); i++ {
				if set[i].used < set[way].used {
					way = i
				}
			}
		}
		victim = set[way]
		c.Evictions++
	}
	c.tick++
	set[way] = Line{Tag: l, State: state, used: c.tick}
	return victim
}

// Invalidate removes line l if present and returns its prior contents.
func (c *Cache) Invalidate(l LineAddr) (old Line) {
	if ln := c.Lookup(l); ln != nil {
		old = *ln
		*ln = Line{}
	}
	return old
}

// Downgrade moves line l to Shared if present in E/M, returning the prior
// state.
func (c *Cache) Downgrade(l LineAddr) MESI {
	if ln := c.Lookup(l); ln != nil {
		prev := ln.State
		if prev == Exclusive || prev == Modified {
			ln.State = Shared
		}
		return prev
	}
	return Invalid
}

// Contents returns all valid lines (for invariant checks in tests).
func (c *Cache) Contents() []Line {
	var out []Line
	for _, set := range c.sets {
		for _, ln := range set {
			if ln.State.Valid() {
				out = append(out, ln)
			}
		}
	}
	return out
}

// CountValid returns the number of valid lines.
func (c *Cache) CountValid() int {
	n := 0
	for _, set := range c.sets {
		for _, ln := range set {
			if ln.State.Valid() {
				n++
			}
		}
	}
	return n
}
