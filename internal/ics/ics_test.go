package ics

import (
	"testing"

	"piranha/internal/sim"
)

func TestPeakBandwidth(t *testing.T) {
	s := New(DefaultConfig(sim.MHz(500)))
	// 8 datapaths x 8 bytes x 500e6 cycles = 32 GB/s (paper §2.2).
	if got := s.PeakBandwidth(); got != 32_000_000_000 {
		t.Fatalf("peak bandwidth %d, want 32e9", got)
	}
}

func TestTransferOccupancy(t *testing.T) {
	clock := sim.MHz(500)
	s := New(Config{Datapaths: 1, Clock: clock, HintCycles: 1})
	// 64-byte line = 8 words = 8 cycles (+1 unhinted), no load: exact.
	done := s.Transfer(0, Low, 64, true)
	if done != clock.Cycles(8) {
		t.Fatalf("hinted 64B transfer took %d ps, want %d", done, clock.Cycles(8))
	}
	done2 := s.Transfer(1*sim.Microsecond, High, 64, false)
	if done2-1*sim.Microsecond < clock.Cycles(9) {
		t.Fatalf("unhinted transfer took %d ps, want >= %d", done2-1*sim.Microsecond, clock.Cycles(9))
	}
	if s.Transfers[Low] != 1 || s.Transfers[High] != 1 {
		t.Fatalf("lane counters %v", s.Transfers)
	}
	if s.Bytes[Low] != 64 {
		t.Fatalf("lane bytes %v", s.Bytes)
	}
}

func TestSaturationBackPressure(t *testing.T) {
	clock := sim.MHz(500)
	// One datapath, arrivals at 100% of its bandwidth: queueing delay
	// must appear (the Server model derives it from utilization).
	s := New(Config{Datapaths: 1, Clock: clock, HintCycles: 0})
	now := sim.Time(0)
	for i := 0; i < 5000; i++ {
		s.Transfer(now, Low, 64, true)
		now += clock.Cycles(8)
	}
	if s.AvgWait() <= 0 {
		t.Fatal("saturated switch shows no queueing delay")
	}
	// The full 8-path switch at the same absolute load is nearly free.
	s8 := New(DefaultConfig(clock))
	now = 0
	for i := 0; i < 5000; i++ {
		s8.Transfer(now, Low, 64, true)
		now += clock.Cycles(8)
	}
	if s8.AvgWait() >= s.AvgWait()/4 {
		t.Fatalf("8 datapaths (%v) should wait far less than 1 (%v)", s8.AvgWait(), s.AvgWait())
	}
}

func TestZeroSizeTransfer(t *testing.T) {
	s := New(DefaultConfig(sim.MHz(500)))
	// Control messages still occupy at least one cycle.
	if done := s.Transfer(0, High, 0, true); done != sim.MHz(500).Cycles(1) {
		t.Fatalf("zero-size transfer took %d", done)
	}
}
