// Package ics models Piranha's intra-chip switch (paper §2.2): a push-only
// transactional crossbar connecting the 27 on-chip clients (8 CPUs' L1
// pairs, 8 L2 banks, 2 protocol engines, system control) over eight
// internal 64-bit datapaths running along the chip's center.
//
// Two properties matter for the rest of the system and are modeled here:
//
//   - Bandwidth/occupancy: eight datapaths moving one 64-bit word per
//     500 MHz cycle give 32 GB/s — about 3x the memory bandwidth, so the
//     paper notes optimal scheduling is not critical. We model the eight
//     datapaths as a pool; a transfer occupies one for its duration.
//   - Ordering: transfers are atomic and the switch's implied ordering is
//     what lets the L2 controllers invalidate on-chip L1s without
//     acknowledgment messages. Functionally our single-threaded event
//     loop applies invalidations atomically, preserving that property;
//     the Switch type records the lane discipline (low/high priority)
//     used to avoid intra-chip protocol deadlock.
package ics

import (
	"piranha/internal/sim"
	"piranha/internal/trace"
)

// Lane is one of the two logical lanes multiplexed on the datapaths.
type Lane uint8

// Lanes. Requests travel on Low; replies and forwarded requests on High,
// mirroring the deadlock-avoidance discipline of the inter-node protocol.
const (
	Low Lane = iota
	High
)

// Config describes the switch.
type Config struct {
	Datapaths int       // internal 64-bit datapaths (8)
	Clock     sim.Clock // switch clock (core clock, 500 MHz)
	// HintCycles is the scheduling overhead when no early destination
	// hint was issued; with a hint the grant is speculative and the
	// transfer starts back-to-back (0 extra cycles).
	HintCycles int
}

// DefaultConfig is the prototype ICS: 8 datapaths at the core clock.
func DefaultConfig(clock sim.Clock) Config {
	return Config{Datapaths: 8, Clock: clock, HintCycles: 1}
}

// MinLatency is the static lower bound on any transfer through the
// switch: one 64-bit word moved back-to-back under an early destination
// hint occupies a datapath for exactly one cycle. The parallel engine's
// conservative lookahead is the minimum of this bound across the
// machine's component interconnects — no intra-chip effect can cross the
// switch faster.
func (c Config) MinLatency() sim.Time { return c.Clock.Cycles(1) }

// Switch is the intra-chip switch. Transfers acquire a datapath for
// size/8 cycles (one 64-bit word per cycle, back-to-back, no dead cycles).
type Switch struct {
	cfg   Config
	paths *sim.Server

	tr   *trace.Tracer
	node uint8

	// Per-lane transfer counts (the lanes share the datapaths; they are
	// distinct ready/ID signaling, not extra wires).
	Transfers [2]uint64
	Bytes     [2]uint64
}

// SetTracer attaches a tracer (nil disables) stamping events with the
// chip index.
func (s *Switch) SetTracer(tr *trace.Tracer, node uint8) { s.tr, s.node = tr, node }

// New returns an idle switch.
func New(cfg Config) *Switch {
	return &Switch{cfg: cfg, paths: sim.NewServer(cfg.Datapaths)}
}

// Transfer moves size bytes at time now on the given lane, with hinted
// indicating the initiator issued an early destination hint. It returns
// the completion time.
func (s *Switch) Transfer(now sim.Time, lane Lane, size int, hinted bool) sim.Time {
	words := int64((size + 7) / 8)
	if words == 0 {
		words = 1
	}
	cycles := words
	if !hinted {
		cycles += int64(s.cfg.HintCycles)
	}
	s.Transfers[lane]++
	s.Bytes[lane] += uint64(size)
	done := s.paths.Acquire(now, s.cfg.Clock.Cycles(cycles))
	s.tr.Span(trace.NOC, trace.KICS, s.node, int16(lane), 0, now, done, uint32(size))
	return done
}

// MinLatency re-exports the configured lower bound (see Config.MinLatency).
func (s *Switch) MinLatency() sim.Time { return s.cfg.MinLatency() }

// PeakBandwidth returns the switch's aggregate bandwidth in bytes/sec.
func (s *Switch) PeakBandwidth() int64 {
	cyclesPerSec := int64(sim.Second / s.cfg.Clock.Period)
	return int64(s.cfg.Datapaths) * 8 * cyclesPerSec
}

// AvgWait returns the mean queueing delay per transfer in picoseconds.
func (s *Switch) AvgWait() float64 { return s.paths.AvgWait() }
