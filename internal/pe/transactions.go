package pe

import (
	"piranha/internal/cache"
	"piranha/internal/directory"
	"piranha/internal/fault"
	"piranha/internal/l2"
	"piranha/internal/protocol"
	"piranha/internal/sim"
	"piranha/internal/trace"
)

// Engine units for trace events: home engine 0, remote engine 1.
const (
	unitHE = int16(0)
	unitRE = int16(1)
)

// NodeProto adapts one node's protocol engines to the l2.Remote interface.
type NodeProto struct {
	f  *Fabric
	id NodeID
}

var _ l2.Remote = (*NodeProto)(nil)

// HomeIsLocal implements l2.Remote.
func (p *NodeProto) HomeIsLocal(line cache.LineAddr) bool {
	return p.f.HomeOf(line) == p.id
}

// LocalDirState implements l2.Remote: the partial interpretation of the
// 44-bit entry the L2 controller performs itself.
func (p *NodeProto) LocalDirState(line cache.LineAddr) l2.RemoteState {
	e := p.f.dirEntry(p.f.nodes[p.id], line)
	switch e.State {
	case directory.Uncached:
		return l2.RemoteNone
	case directory.Exclusive:
		return l2.RemoteExclusive
	case directory.Shared, directory.SharedCoarse:
		return l2.RemoteShared
	}
	return l2.RemoteNone
}

// wantsExclusive and replySize defer to the declarative protocol table
// (internal/protocol), the single source of truth for request
// semantics; the model checker in internal/mcheck explores the same
// table, so what the engines execute is what the checker verified.
func wantsExclusive(kind l2.Kind) bool {
	return protocol.WantsExclusive(kind)
}

// replySize is the reply packet size for a request the home services:
// data-carrying replies are a full line, while upgrades and
// exclusive-no-data grants need only the header.
func replySize(kind l2.Kind) int {
	if protocol.ReplyCarriesData(kind) {
		return LongPacket
	}
	return ShortPacket
}

// Fetch implements l2.Remote: it runs a full inter-node transaction.
func (p *NodeProto) Fetch(now sim.Time, kind l2.Kind, line cache.LineAddr) (sim.Time, l2.Svc, bool) {
	f := p.f
	r := f.nodes[p.id]
	h := f.nodes[f.HomeOf(line)]
	wantEx := wantsExclusive(kind)

	if h == r {
		// Home-local line currently owned exclusively by a remote node:
		// the home engine forwards to the owner.
		return f.homeLocalOwnerFetch(now, r, kind, line)
	}

	// Remote home: the remote engine owns the transaction for its whole
	// duration (a TSRF entry in waiting state). A lost message strands
	// the entry until the recovery sweep reclaims it; the retry restarts
	// the transaction from the sweep time.
	for try := 0; try < fault.MaxLossRetries && f.inj.LoseMessage(); try++ {
		now = f.loseAndRecover(r.remote, now)
	}
	start, release := r.remote.tsrf.Reserve(now)
	r.remote.Stats.Transactions++
	r.remote.Stats.Occupancy += f.cfg.RemoteOccupancy
	start += f.cfg.RemoteOccupancy

	// Request travels to the home on the low-priority lane.
	arrive := r.remote.send(f.net, start, r.id, h.id, ShortPacket, prioLow)
	done, svc, excl := f.atHome(arrive, h, r.id, kind, line, wantEx)
	release(done)
	f.tr.Span(trace.PE, trace.KRemoteTx, uint8(r.id), unitRE, uint64(line.Addr()), now, done, uint32(kind))
	return done, svc, excl
}

// Message priorities (virtual lanes L and H; I/O has its own lane).
const (
	prioLow  = 1
	prioHigh = 2
)

// homeLocalOwnerFetch: the requester is the home; the directory says a
// remote node owns the line. Forward, collect the reply, update the
// directory (immediately — no confirmation message needed).
func (f *Fabric) homeLocalOwnerFetch(now sim.Time, h *node, kind l2.Kind, line cache.LineAddr) (sim.Time, l2.Svc, bool) {
	entry := f.dirEntry(h, line)
	if entry.State != directory.Exclusive {
		// The directory no longer shows a remote owner (e.g. it wrote
		// back in the meantime); the caller's memory data is current.
		return now, l2.SvcLocalMem, entry.State == directory.Uncached
	}
	o := f.nodes[entry.Owner]
	wantEx := wantsExclusive(kind)

	for try := 0; try < fault.MaxLossRetries && f.inj.LoseMessage(); try++ {
		now = f.loseAndRecover(h.home, now)
	}
	start, release := h.home.tsrf.Reserve(now)
	h.home.Stats.Transactions++
	h.home.Stats.Occupancy += f.cfg.HomeOccupancy
	start += f.cfg.HomeOccupancy

	fwd := h.home.send(f.net, start, h.id, o.id, ShortPacket, prioHigh)
	supplied := f.ownerServe(fwd, o, line, wantEx)
	reply := o.remote.send(f.net, supplied, o.id, h.id, LongPacket, prioHigh)
	f.ThreeHop++

	if wantEx {
		f.setDir(h, line, directory.Clear())
	} else {
		// Owner retains a shared copy; home memory was updated.
		f.setDir(h, line, directory.AddSharer(f.dcfg, directory.Clear(), o.id))
		f.DirtyShares++
	}
	release(reply)
	f.tr.Span(trace.PE, trace.KHomeTx, uint8(h.id), unitHE, uint64(line.Addr()), now, reply, uint32(kind))
	return reply, l2.SvcRemoteDirty, wantEx
}

// ownerServe runs the owner-side of a forwarded request: the owner's
// remote engine receives it and the owner chip supplies/invalidates.
// Per the no-NAK design the owner can always service the request.
func (f *Fabric) ownerServe(now sim.Time, o *node, line cache.LineAddr, exclusive bool) sim.Time {
	done := o.remote.process(now, 0)
	if o.l2 != nil {
		if onChip, _, t := o.l2.ServeRemote(done, line, exclusive); onChip {
			return t
		}
	}
	return done
}

// atHome executes the home side of a remote node's request.
func (f *Fabric) atHome(arrive sim.Time, h *node, req NodeID, kind l2.Kind, line cache.LineAddr, wantEx bool) (sim.Time, l2.Svc, bool) {
	if f.cfg.Baseline {
		// DASH-style: NAK when the home engine is saturated; the
		// requester retries after a backoff.
		for h.home.tsrf.InUse(arrive) >= h.home.tsrf.Size() {
			h.home.Stats.NAKs++
			h.home.Stats.Retries++
			// NAK back + retry request later.
			back := f.net.Send(arrive, h.id, req, ShortPacket, prioHigh)
			arrive = f.net.Send(back+f.cfg.RetryDelay, req, h.id, ShortPacket, prioLow)
		}
	}
	start, release := h.home.tsrf.Reserve(arrive)
	h.home.Stats.Transactions++
	h.home.Stats.Occupancy += f.cfg.HomeOccupancy
	start += f.cfg.HomeOccupancy

	entry := f.dirEntry(h, line)

	// Three-hop case: a remote owner (other than the requester) holds it.
	if entry.State == directory.Exclusive && entry.Owner != req {
		o := f.nodes[entry.Owner]
		fwd := h.home.send(f.net, start, h.id, o.id, ShortPacket, prioHigh)
		// The home's directory update completes immediately; its TSRF
		// entry frees as soon as the forward is sent (key occupancy
		// advantage over the baseline).
		if wantEx {
			f.setDir(h, line, directory.SetExclusive(directory.Entry{}, req))
		} else {
			e := directory.AddSharer(f.dcfg, directory.Clear(), o.id)
			e = directory.AddSharer(f.dcfg, e, req)
			f.setDir(h, line, e)
			f.DirtyShares++
		}
		supplied := f.ownerServe(fwd, o, line, wantEx)
		homeDone := fwd
		if f.cfg.Baseline {
			// Ownership-change confirmation: the owner notifies the
			// home, whose entry stays live until it arrives.
			homeDone = o.remote.send(f.net, supplied, o.id, h.id, ShortPacket, prioHigh)
		}
		release(homeDone)
		// Reply forwarding: owner replies straight to the requester.
		reply := o.remote.send(f.net, supplied, o.id, req, LongPacket, prioHigh)
		f.ThreeHop++
		f.tr.Span(trace.PE, trace.KHomeTx, uint8(h.id), unitHE, uint64(line.Addr()), arrive, homeDone, uint32(kind))
		return reply, l2.SvcRemoteDirty, wantEx
	}

	// The home services the request itself. Obtain the data: from the
	// home chip's caches when present, else from home memory (which also
	// yields the directory's authoritative copy — same DRAM line).
	var dataReady sim.Time
	suppliedByChip := false
	if h.l2 != nil && h.l2.HasLine(line) {
		_, _, t := h.l2.ServeRemote(start, line, wantEx)
		dataReady = t
		suppliedByChip = true
	} else {
		dataReady = start + f.cfg.MemLatency + f.mirrorExtra(start, h, line)
	}

	excl := wantEx
	var ackTime sim.Time
	if wantEx {
		// Invalidate all other remote sharers; eager exclusive reply:
		// the grant does not wait for acknowledgments (they gather at
		// the requester).
		sharers := f.sharersExcept(entry, req)
		ackTime = f.invalidate(start, h, req, line, sharers, entry.State == directory.SharedCoarse)
		if f.cfg.Baseline && ackTime > dataReady {
			// The baseline is strict request-reply: exclusivity waits.
			dataReady = ackTime
		}
		f.setDir(h, line, directory.SetExclusive(directory.Entry{}, req))
	} else {
		if entry.State == directory.Uncached && !suppliedByChip {
			// Clean-exclusive optimization: no other copy exists, so
			// grant E and record the requester as exclusive owner (it
			// may silently dirty the line).
			excl = true
			f.setDir(h, line, directory.SetExclusive(directory.Entry{}, req))
		} else {
			f.setDir(h, line, directory.AddSharer(f.dcfg, entry, req))
		}
	}

	reply := h.home.send(f.net, dataReady, h.id, req, replySize(kind), prioHigh)
	release(dataReady)
	svc := l2.SvcRemote
	f.tr.Span(trace.PE, trace.KHomeTx, uint8(h.id), unitHE, uint64(line.Addr()), arrive, reply, uint32(kind))
	return reply, svc, excl
}

// sharersExcept lists a directory entry's nodes excluding skip. After a
// fail-stop, dead nodes are filtered out: the reconstruction sweep purges
// precise vectors, but a coarse vector's re-encoded group bits can still
// cover the dead node, and no message may ever target a dead chip.
// The returned slice is the fabric's reused scratch (valid until the
// next call) and the enumeration word-walks the sharer bitset, so the
// cost is O(sharers), not O(nodes) plus an allocation per invalidation.
func (f *Fabric) sharersExcept(e directory.Entry, skip NodeID) []NodeID {
	out := f.sharerScratch[:0]
	switch e.State {
	case directory.Uncached:
		// No copies exist anywhere; nothing to invalidate.
	case directory.Exclusive:
		if e.Owner != skip && !(f.anyDead && f.nodes[e.Owner].dead) {
			out = append(out, e.Owner)
		}
	case directory.Shared, directory.SharedCoarse:
		out = e.Sharers.AppendMembers(out, f.cfg.Nodes)
		kept := out[:0]
		for _, n := range out {
			if n != skip && !(f.anyDead && f.nodes[n].dead) {
				kept = append(kept, n)
			}
		}
		out = kept
	}
	f.sharerScratch = out
	return out
}

// invalidate sends invalidations to the given sharer nodes and returns
// the time the final acknowledgment reaches the requesting node. With
// cruise-missile invalidates, only ceil(k/fanout) messages are injected;
// each visits its subset of nodes serially and the last node of each
// route acknowledges. Without CMI the home injects one message per
// sharer (serialized at the home engine) and every sharer acknowledges.
// coarse marks a coarse-vector entry: a visited node with no on-chip
// copy then counts as an over-invalidation (group-granular bookkeeping
// named it a sharer when it never was one).
func (f *Fabric) invalidate(now sim.Time, h *node, req NodeID, line cache.LineAddr, sharers []NodeID, coarse bool) sim.Time {
	if len(sharers) == 0 {
		return now
	}
	f.InvalsSent += uint64(len(sharers))
	var ackTime sim.Time

	visit := func(t sim.Time, n NodeID) sim.Time {
		tgt := f.nodes[n]
		done := tgt.remote.process(t, 0)
		if tgt.l2 != nil {
			if onChip, _, _ := tgt.l2.ServeRemote(done, line, true); !onChip && coarse {
				f.OverInvals++
			}
		}
		return done
	}

	if f.cfg.UseCMI && !f.cfg.Baseline {
		fanout := f.cfg.CMIFanout
		if fanout < 1 {
			fanout = 1
		}
		missiles := (len(sharers) + fanout - 1) / fanout
		per := (len(sharers) + missiles - 1) / missiles
		for m := 0; m < missiles; m++ {
			route := sharers[m*per:]
			if len(route) > per {
				route = route[:per]
			}
			if len(route) == 0 {
				continue
			}
			f.InvalMsgs++
			t := h.home.send(f.net, now, h.id, route[0], ShortPacket, prioHigh)
			t = visit(t, route[0])
			for _, n := range route[1:] {
				t = f.net.Send(t, route[0], n, ShortPacket, prioHigh)
				t = visit(t, n)
			}
			// The final node on the route acknowledges the requester.
			t = f.net.Send(t, route[len(route)-1], req, ShortPacket, prioHigh)
			f.InvalAcks++
			if t > ackTime {
				ackTime = t
			}
		}
		return ackTime
	}

	// Home-broadcast: one message per sharer, injected back-to-back from
	// the home engine, each acknowledged to the requester.
	inject := now
	for _, n := range sharers {
		inject += f.cfg.HomeOccupancy
		f.InvalMsgs++
		t := h.home.send(f.net, inject, h.id, n, ShortPacket, prioHigh)
		t = visit(t, n)
		t = f.net.Send(t, n, req, ShortPacket, prioHigh)
		f.InvalAcks++
		if t > ackTime {
			ackTime = t
		}
	}
	return ackTime
}

// Invalidate implements l2.Remote: a home-local write must invalidate
// remote sharers. With eager exclusive replies the grant returns after
// the home engine dispatches the invalidations; the acknowledgments
// gather at the requester in the background.
func (p *NodeProto) Invalidate(now sim.Time, line cache.LineAddr) sim.Time {
	f := p.f
	h := f.nodes[p.id]
	entry := f.dirEntry(h, line)
	sharers := f.sharersExcept(entry, p.id)
	if len(sharers) == 0 {
		f.setDir(h, line, directory.Clear())
		return now
	}
	start, release := h.home.tsrf.Reserve(now)
	h.home.Stats.Transactions++
	h.home.Stats.Occupancy += f.cfg.HomeOccupancy
	start += f.cfg.HomeOccupancy
	ack := f.invalidate(start, h, p.id, line, sharers, entry.State == directory.SharedCoarse)
	f.setDir(h, line, directory.Clear())
	grant := start
	if f.cfg.Baseline {
		grant = ack // strict request-reply: wait for all acks
	}
	release(grant)
	return grant
}

// Writeback implements l2.Remote: a dirty remote-homed line leaves the
// chip. The writer holds a valid copy until the home acknowledges, which
// is what guarantees forwarded requests never NAK; the latency is off the
// critical path.
func (p *NodeProto) Writeback(now sim.Time, line cache.LineAddr) {
	f := p.f
	r := f.nodes[p.id]
	h := f.nodes[f.HomeOf(line)]
	for try := 0; try < fault.MaxLossRetries && f.inj.LoseMessage(); try++ {
		now = f.loseAndRecover(r.remote, now)
	}
	start, release := r.remote.tsrf.Reserve(now)
	r.remote.Stats.Transactions++
	start += f.cfg.RemoteOccupancy
	arrive := r.remote.send(f.net, start, r.id, h.id, LongPacket, prioHigh)
	done := h.home.process(arrive, 0)
	// Home acknowledges; the writer's copy (and TSRF entry) persists
	// until then.
	ackBack := h.home.send(f.net, done, h.id, r.id, ShortPacket, prioHigh)
	release(ackBack)
	f.tr.Span(trace.PE, trace.KRemoteTx, uint8(r.id), unitRE, uint64(line.Addr()), now, ackBack, 0)

	e := f.dirEntry(h, line)
	if e.State == directory.Exclusive && e.Owner == r.id {
		f.setDir(h, line, directory.Clear())
	}
}
