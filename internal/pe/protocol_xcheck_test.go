package pe

import (
	"testing"

	"piranha/internal/l2"
	"piranha/internal/protocol"
)

// These tests cross-validate the timing engines against the declarative
// transition table: pe's per-request decisions (packet payload,
// exclusivity of the final state, forward-vs-reply directory update)
// must agree with the ops the table's service rules perform, because
// the model checker verifies the table, and that verification only
// covers the engines if the two stay in lockstep.

// hitRule is the home-service rule modeling pe's common-case reply path
// for a request kind: the Shared-directory hit (every kind has one
// there; upgrades split into hit/miss and pe's replySize models the
// hit).
func hitRule(t *testing.T, tab *protocol.Table, kind l2.Kind) protocol.Rule {
	t.Helper()
	name := "q-" + protocol.KindSlug(kind) + "-shared"
	if kind == l2.Upgrade {
		name = "q-upgrade-hit-shared"
	}
	return ruleByName(t, tab, name)
}

func ruleByName(t *testing.T, tab *protocol.Table, name string) protocol.Rule {
	t.Helper()
	for _, r := range tab.Rules {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("table has no rule %q", name)
	return protocol.Rule{}
}

func hasOp(r protocol.Rule, op protocol.Op) bool {
	for _, o := range r.Do {
		if o == op {
			return true
		}
	}
	return false
}

// Packet payload: pe sends a long packet exactly when the table's
// service rule replies with data.
func TestReplySizesMatchTable(t *testing.T) {
	tab := protocol.Piranha()
	for _, kind := range protocol.RequestKinds {
		r := hitRule(t, tab, kind)
		tableData := hasOp(r, protocol.OpReplyData)
		if grant := hasOp(r, protocol.OpReplyGrant); tableData == grant {
			t.Fatalf("%s: rule must reply with exactly one of data/grant", r.Name)
		}
		peLong := replySize(kind) == LongPacket
		if tableData != peLong {
			t.Errorf("%v: table rule %s carries data=%v, pe sends long packet=%v",
				kind, r.Name, tableData, peLong)
		}
	}
}

// Exclusivity: pe treats a request as ownership-taking exactly when the
// table's service rule records the requester as exclusive owner (reads
// instead apply the read-grant update).
func TestExclusivityMatchesTable(t *testing.T) {
	tab := protocol.Piranha()
	for _, kind := range protocol.RequestKinds {
		r := hitRule(t, tab, kind)
		tableExcl := hasOp(r, protocol.OpDirSetExclusiveReq)
		if read := hasOp(r, protocol.OpDirReadGrant); tableExcl == read {
			t.Fatalf("%s: rule must apply exactly one directory update", r.Name)
		}
		if peExcl := wantsExclusive(kind); tableExcl != peExcl {
			t.Errorf("%v: table rule %s sets exclusive=%v, pe wantsExclusive=%v",
				kind, r.Name, tableExcl, peExcl)
		}
	}
}

// Forwarding: when the directory shows a remote owner, pe's three-hop
// path grants the requester exclusivity (or shared ownership for reads)
// at the forward point — the table's q-*-owned rules must update the
// directory the same way.
func TestForwardDirectoryUpdateMatchesTable(t *testing.T) {
	tab := protocol.Piranha()
	for _, kind := range protocol.RequestKinds {
		r := ruleByName(t, tab, "q-"+protocol.KindSlug(kind)+"-owned")
		if !hasOp(r, protocol.OpForwardReq) {
			t.Fatalf("%s: owned-line service must forward", r.Name)
		}
		tableExcl := hasOp(r, protocol.OpDirSetExclusiveReq)
		if peExcl := wantsExclusive(kind); tableExcl != peExcl {
			t.Errorf("%v: forward rule %s sets exclusive=%v, pe wantsExclusive=%v",
				kind, r.Name, tableExcl, peExcl)
		}
		if !wantsExclusive(kind) && !hasOp(r, protocol.OpDirShareOwnerReq) {
			t.Errorf("%s: read forward must record owner and requester as sharers", r.Name)
		}
	}
}
