// Package pe implements Piranha's protocol engines and inter-node cache
// coherence protocol (paper §2.5).
//
// Each processing node has two microprogrammable engines: the home engine
// (HE) exports memory whose home is the local node, the remote engine (RE)
// imports memory homed elsewhere. Each engine has a 16-entry transaction
// state register file (TSRF); a transaction occupies an entry for its
// duration, bounding concurrency.
//
// The protocol is invalidation-based with four request types (read,
// read-exclusive, exclusive/upgrade, exclusive-without-data) and these
// distinguishing features, all modeled here:
//
//   - Clean-exclusive optimization: a read returns an exclusive copy when
//     no other node shares the line.
//   - Reply forwarding: a dirty remote read is 3-hop — requester -> home
//     -> owner -> requester — and the home completes its directory update
//     immediately, with no "ownership change" confirmation message (the
//     DASH-style baseline in this package sends one, for the ablation).
//   - Eager exclusive replies: ownership is granted before invalidation
//     acknowledgments arrive; acks are gathered at the requesting node.
//   - No NAKs, no retries: forwarded requests are always serviceable
//     (owners hold data until writebacks are acknowledged; early
//     forwarded requests are delayed at the owner), so the protocol has
//     no livelock or starvation. The baseline engine NAKs under conflict
//     and retries, for comparison.
//   - Cruise-missile invalidates (CMI): a write to a widely-shared line
//     injects only a handful of invalidation messages; each visits a
//     predetermined subset of sharers serially and the last node in each
//     subset acknowledges, bounding both injected messages and buffering.
//
// Directory state is stored in the spare ECC bits of the home node's
// memory (see internal/ecc and internal/directory); reading a line's
// directory costs a memory access at the home unless the home's L2 has
// the line on chip.
package pe

import (
	"fmt"

	"piranha/internal/cache"
	"piranha/internal/directory"
	"piranha/internal/fault"
	"piranha/internal/l2"
	"piranha/internal/linemap"
	"piranha/internal/sim"
	"piranha/internal/trace"
)

// NodeID identifies a node (processing or I/O chip).
type NodeID = directory.NodeID

// Network is the transport the engines send messages over. The fabric
// only needs point-to-point latency; detailed routing, deflection and
// buffering live in internal/noc, which can back this interface.
type Network interface {
	// Send delivers a message of size bytes from a to b, returning the
	// arrival time.
	Send(now sim.Time, from, to NodeID, bytes int, prio int) sim.Time
}

// Packet sizes (paper §2.6.1): short packets are 128 bits, long packets
// carry a 64-byte line as well.
const (
	ShortPacket = 16
	LongPacket  = 16 + cache.LineBytes
)

// FlatNetwork is a fixed-latency, per-node-egress-bandwidth network model
// used when full NoC simulation is not needed; the latency is calibrated
// so end-to-end remote accesses match Table 1 (120 ns clean, 180 ns
// dirty). Egress pools are a slice indexed directly by NodeID — Send is
// on the critical path of every inter-node message, and the previous
// lazy map lookup (with its fmt.Sprintf pool naming) was its dominant
// cost.
type FlatNetwork struct {
	OneWay sim.Time
	// egress models each node's four outbound channels, indexed by NodeID.
	egress []*sim.Pool
	clock  sim.Clock
}

// NewFlatNetwork returns a flat network with the given one-way latency.
// Egress pools are created on first use; Presize avoids even that.
func NewFlatNetwork(oneWay sim.Time) *FlatNetwork {
	return &FlatNetwork{OneWay: oneWay, clock: sim.MHz(500)}
}

// NewFlatNetworkN returns a flat network with the given one-way latency
// and all egress pools for nodes [0, nodes) pre-allocated, so Send never
// takes its slow path.
func NewFlatNetworkN(oneWay sim.Time, nodes int) *FlatNetwork {
	n := NewFlatNetwork(oneWay)
	n.Presize(nodes)
	return n
}

// Presize ensures egress pools exist for all nodes in [0, nodes).
func (n *FlatNetwork) Presize(nodes int) {
	for len(n.egress) < nodes {
		id := NodeID(len(n.egress))
		n.egress = append(n.egress, sim.NewPool(fmt.Sprintf("node%d-out", id), 4))
	}
}

// growEgress is Send's slow path: it extends the egress slice through
// from, allocating the missing pools.
func (n *FlatNetwork) growEgress(from NodeID) *sim.Pool {
	n.Presize(int(from) + 1)
	return n.egress[from]
}

// Send implements Network.
//
//piranha:hotpath
func (n *FlatNetwork) Send(now sim.Time, from, to NodeID, bytes int, prio int) sim.Time {
	if from == to {
		return now
	}
	var p *sim.Pool
	if int(from) < len(n.egress) {
		p = n.egress[from]
	} else {
		p = n.growEgress(from)
	}
	// Channel occupancy: 64 data bits per interconnect cycle.
	cycles := int64((bytes*8 + 63) / 64)
	sent := p.Acquire(now, n.clock.Cycles(cycles))
	return sent + n.OneWay
}

// Config holds the protocol-engine and fabric parameters.
type Config struct {
	// Nodes is the number of nodes in the system.
	Nodes int
	// TSRFEntries per engine (16 in the prototype).
	TSRFEntries int
	// HomeOccupancy/RemoteOccupancy are the per-message processing
	// times of the microcoded engines (a handful of instructions at
	// 500 MHz dual-threaded: tens of nanoseconds).
	HomeOccupancy   sim.Time
	RemoteOccupancy sim.Time
	// MemLatency is the home memory access for data+directory.
	MemLatency sim.Time
	// UseCMI selects cruise-missile invalidates over home-broadcast.
	UseCMI bool
	// CMIFanout is the number of invalidation messages injected per
	// write (each visits ceil(sharers/fanout) nodes).
	CMIFanout int
	// Baseline switches to the DASH-style NAK+retry protocol with
	// ownership-change confirmations (ablation only).
	Baseline bool
	// RetryDelay is the baseline's NAK retry backoff.
	RetryDelay sim.Time
}

// DefaultConfig is calibrated to Table 1's remote latencies with the
// prototype's 16-entry TSRFs.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:           nodes,
		TSRFEntries:     16,
		HomeOccupancy:   12 * sim.Nanosecond,
		RemoteOccupancy: 10 * sim.Nanosecond,
		MemLatency:      60 * sim.Nanosecond,
		UseCMI:          true,
		CMIFanout:       4,
		RetryDelay:      100 * sim.Nanosecond,
	}
}

// EngineStats counts one engine's activity.
type EngineStats struct {
	Transactions uint64
	Messages     uint64 // messages this engine emitted
	NAKs         uint64 // baseline only
	Retries      uint64 // baseline only
	Occupancy    sim.Time
	// Recoveries counts TSRF entries reclaimed by the timeout-based
	// error recovery (§2.7: failed transactions are detected via their
	// TSRF timers and handed to recovery software).
	Recoveries uint64
}

// Engine is one protocol engine (home or remote) of one node.
type Engine struct {
	Name  string
	tsrf  *sim.Pool
	occ   sim.Time
	Stats EngineStats
}

func newEngine(name string, entries int, occ sim.Time) *Engine {
	return &Engine{Name: name, tsrf: sim.NewPool(name, entries), occ: occ}
}

// process charges one message-handling step: a TSRF entry is (re)used for
// the engine occupancy. hold extends the entry's reservation (a thread in
// waiting state keeps its TSRF entry for the transaction's duration).
//
//piranha:hotpath
func (e *Engine) process(now sim.Time, hold sim.Time) sim.Time {
	d := e.occ
	if hold > d {
		d = hold
	}
	done := e.tsrf.Acquire(now, d)
	e.Stats.Transactions++
	e.Stats.Occupancy += e.occ
	return done - d + e.occ // processing completes after occupancy; entry stays held
}

// Recover scans the engine's TSRF for transactions outstanding longer
// than timeout (a lost reply, a failed node) and reclaims their entries,
// encapsulating the state for recovery software. Returns the number of
// transactions recovered.
func (e *Engine) Recover(now, timeout sim.Time) int {
	n := e.tsrf.RecoverStale(now, timeout)
	e.Stats.Recoveries += uint64(n)
	return n
}

// send emits one message and counts it.
func (e *Engine) send(n Network, now sim.Time, from, to NodeID, bytes, prio int) sim.Time {
	e.Stats.Messages++
	return n.Send(now, from, to, bytes, prio)
}

// node is the per-chip protocol state.
type node struct {
	id     NodeID
	l2     *l2.L2
	home   *Engine
	remote *Engine
	// dir holds the encoded 44-bit directory entries for this node's
	// home lines (absent means Uncached) in a dense per-home-node table
	// keyed by line address — the host-side analogue of Piranha storing
	// the directory in the home memory's spare ECC bits (§2.5.2): flat
	// index-addressed words, not pointer-boxed map values.
	dir *linemap.Map[uint64]
	// dead marks a fail-stopped node: it no longer sources requests, its
	// home lines are served by its RAS mirror, and the reconstruction
	// sweep has purged it from every surviving directory.
	dead bool
}

// Fabric is the multi-node coherence domain: all nodes' engines, the
// directory storage, and the interconnect.
type Fabric struct {
	cfg   Config
	dcfg  directory.Config
	net   Network
	nodes []*node
	tr    *trace.Tracer
	inj   *fault.Injector // nil when fault injection is off

	// anyDead short-circuits every fail-stop check: until the first
	// FailNode call the fault-free fast paths are untouched.
	anyDead bool
	// mirror maps each dead home to the surviving node serving its lines
	// (valid only where nodes[i].dead).
	mirror []NodeID

	// sharerScratch backs sharersExcept: fan-out enumeration is on the
	// write/invalidate hot path and must not allocate per invalidation.
	// The protocol runs on the single timing partition, so one scratch
	// slice per fabric is safe; each call fully overwrites it.
	sharerScratch []NodeID

	// Global protocol statistics.
	InvalsSent  uint64
	InvalMsgs   uint64 // invalidation messages injected (CMI collapses these)
	InvalAcks   uint64
	ThreeHop    uint64
	DirtyShares uint64
	// OverInvals counts invalidations delivered to nodes that held no
	// copy — the cost of the coarse vector's group-granular bookkeeping,
	// which grows with nodes-per-group when N is not a multiple of 42's
	// capacity (paper §2.5.2's representation trade-off, made visible).
	OverInvals uint64
}

// NewFabric builds an n-node coherence domain over the given network.
func NewFabric(cfg Config, net Network) *Fabric {
	f := &Fabric{cfg: cfg, dcfg: directory.Config{Nodes: cfg.Nodes}, net: net}
	// Per-home directory tables start at 1024 slots for small machines
	// (PR 5's warm steady state) but scale the initial capacity down as
	// the page-interleaved homes multiply: each home sees ~1/N of the
	// line universe, and 1024 nodes x 1024 pre-sized slots would burn
	// ~16 MB before a single line is cached. The tables still grow on
	// demand; only the starting footprint is O(active), not O(N^2).
	dirCap := 1024
	if cfg.Nodes > 64 {
		dirCap = 64
	}
	for i := 0; i < cfg.Nodes; i++ {
		f.nodes = append(f.nodes, &node{
			id:     NodeID(i),
			home:   newEngine(fmt.Sprintf("HE%d", i), cfg.TSRFEntries, cfg.HomeOccupancy),
			remote: newEngine(fmt.Sprintf("RE%d", i), cfg.TSRFEntries, cfg.RemoteOccupancy),
			dir:    linemap.New[uint64](dirCap),
		})
	}
	return f
}

// BindL2 attaches a chip's L2 to its node (two-phase init: the L2 needs
// the node's Remote adapter at construction, the fabric needs the L2).
func (f *Fabric) BindL2(id NodeID, l *l2.L2) { f.nodes[id].l2 = l }

// SetTracer attaches a tracer (nil is a no-op): transaction lifetimes
// record as pe spans and every inter-node message as a noc hop span.
func (f *Fabric) SetTracer(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	f.tr = tr
	f.net = tracedNet{inner: f.net, tr: tr}
}

// SetFaults attaches a fault injector. A disabled injector (nil plan or
// all-zero rates) leaves the fabric untouched so fault-free runs stay
// byte-identical. Call before SetTracer so hop spans include the fault
// latency.
func (f *Fabric) SetFaults(inj *fault.Injector) {
	if !inj.Enabled() {
		return
	}
	f.inj = inj
	f.net = faultNet{inner: f.net, inj: inj}
}

// faultNet wraps the fabric's network with the per-message fault model:
// link-level retransmit latency charged at the sender, transient stall
// latency at the receiver.
type faultNet struct {
	inner Network
	inj   *fault.Injector
}

// Send implements Network.
func (fn faultNet) Send(now sim.Time, from, to NodeID, bytes int, prio int) sim.Time {
	if from != to {
		now += fn.inj.LinkDelay(uint64(from), bytes)
	}
	done := fn.inner.Send(now, from, to, bytes, prio)
	if from != to {
		done += fn.inj.StallDelay(uint64(to))
	}
	return done
}

// ScheduleRecovery arms the periodic TSRF recovery sweep (paper §2.7) on
// the simulation engine: every plan SweepPeriod, each node's home and
// remote engines scan their TSRFs for transactions outstanding longer
// than the plan timeout and reclaim the entries. After any reclaim the
// node's L2 invariants are re-checked — recovery must never leave the
// coherence state inconsistent. The sweep consumes engine sequence
// numbers, so it is a no-op unless the injector is live; fault-free runs
// must not carry it.
func (f *Fabric) ScheduleRecovery(eng *sim.Engine) {
	if f.inj == nil {
		return
	}
	period := f.inj.Plan().SweepPeriod
	timeout := f.inj.Plan().Timeout
	var sweep func()
	sweep = func() {
		now := eng.Now()
		for _, nd := range f.nodes {
			n := nd.home.Recover(now, timeout) + nd.remote.Recover(now, timeout)
			f.inj.NoteSweep(n)
			if n > 0 && nd.l2 != nil {
				if err := nd.l2.CheckInvariants(); err != nil {
					panic(fmt.Sprintf("pe: recovery sweep on node %d broke coherence: %v", nd.id, err))
				}
			}
		}
		eng.After(period, sweep)
	}
	eng.After(period, sweep)
}

// loseAndRecover models one lost protocol message: the transaction's
// TSRF entry is reserved and never released (exactly what a lost reply
// leaves behind), stays occupied for the full timeout, and is reclaimed
// by the recovery sweep's staleness scan at the first sweep tick past
// the timeout — when the retry resumes. The scan runs here, on the
// synchronous transaction timeline, because the engines compute whole
// transactions ahead of the event clock: waiting for the scheduled sweep
// event would leave the abandoned mark in place long enough for
// concurrent losses to exhaust the 16-entry pool and wedge the machine.
// The periodic ScheduleRecovery sweep backstops anything left stranded.
func (f *Fabric) loseAndRecover(e *Engine, now sim.Time) sim.Time {
	start, _ := e.tsrf.Reserve(now) // release intentionally abandoned
	e.Stats.Transactions++
	recoverAt := f.inj.RecoverTime(start)
	f.inj.NoteSweep(e.Recover(recoverAt, f.inj.Plan().Timeout))
	f.inj.NoteRecovery(now, recoverAt)
	return recoverAt
}

// tracedNet wraps the fabric's network, recording each message as a
// hop span on the sending node's timeline (Arg = destination node).
type tracedNet struct {
	inner Network
	tr    *trace.Tracer
}

// Send implements Network.
func (t tracedNet) Send(now sim.Time, from, to NodeID, bytes int, prio int) sim.Time {
	done := t.inner.Send(now, from, to, bytes, prio)
	if from != to {
		t.tr.Span(trace.NOC, trace.KHop, uint8(from), int16(prio), uint64(bytes), now, done, uint32(to))
	}
	return done
}

// Proto returns the l2.Remote adapter for the given node.
func (f *Fabric) Proto(id NodeID) *NodeProto { return &NodeProto{f: f, id: id} }

// HomeOf returns the node whose memory holds the line (8 KB page
// interleave across nodes). After a fail-stop, a dead home's lines are
// served by its RAS mirror; the redirect costs one predicated load on
// the fault-free path and nothing changes until a node actually dies.
func (f *Fabric) HomeOf(l cache.LineAddr) NodeID {
	page := uint64(l) >> (cache.PageShift - cache.LineShift)
	h := NodeID(page % uint64(f.cfg.Nodes))
	if f.anyDead && f.nodes[h].dead {
		h = f.mirror[h]
	}
	return h
}

// FailStopStats summarizes one fail-stop directory reconstruction.
type FailStopStats struct {
	// SharersDropped counts entries purged of the dead node's sharer bit.
	SharersDropped int
	// OwnerReclaims counts exclusive entries reclaimed from the dead
	// owner (the line's data is restored from the RAS mirror).
	OwnerReclaims int
	// HomesAdopted counts dead-homed entries rebuilt at the mirror.
	HomesAdopted int
}

// nextAlive returns the first surviving node after id in ring order —
// the RAS mirror that adopts id's home memory.
func (f *Fabric) nextAlive(id NodeID) NodeID {
	for i := 1; i < f.cfg.Nodes; i++ {
		c := NodeID((int(id) + i) % f.cfg.Nodes)
		if !f.nodes[c].dead {
			return c
		}
	}
	panic("pe: fail-stop killed every node")
}

// dropNode removes a fail-stopped node from one directory entry: a dead
// exclusive owner reclaims the whole entry (memory is restored from the
// mirror), a dead sharer is erased from the vector. Coarse vectors are
// rebuilt from the surviving members, so the re-encoded group bits stay
// a superset of the true sharers exactly as in normal operation.
func dropNode(e directory.Entry, id NodeID) (directory.Entry, FailStopStats) {
	var st FailStopStats
	switch e.State {
	case directory.Uncached:
	case directory.Exclusive:
		if e.Owner == id {
			st.OwnerReclaims++
			return directory.Clear(), st
		}
	case directory.Shared, directory.SharedCoarse:
		if e.Sharers.Has(id) {
			st.SharersDropped++
			e.Sharers.Remove(id)
			if e.Sharers.Empty() {
				return directory.Clear(), st
			}
		}
	}
	return e, st
}

// purgeDead walks one surviving home's directory in ascending line order
// and erases the dead node from every entry that names it. Each touched
// entry costs a TSRF-mediated home-engine step plus the memory rewrite
// (the directory lives in the home memory's ECC bits), serialized on the
// recovery timeline.
func (f *Fabric) purgeDead(done sim.Time, h *node, id NodeID, st *FailStopStats) sim.Time {
	for _, line := range h.dir.Keys() {
		e := f.dirEntry(h, line)
		ne, d := dropNode(e, id)
		if d.SharersDropped == 0 && d.OwnerReclaims == 0 {
			continue
		}
		st.SharersDropped += d.SharersDropped
		st.OwnerReclaims += d.OwnerReclaims
		done = h.home.process(done, 0)
		done += f.cfg.MemLatency
		f.setDir(h, line, ne)
	}
	return done
}

// FailNode kills node id at time now (fail-stop). Recovery software,
// modeled as a TSRF-mediated sweep on the surviving protocol engines,
// reconstructs the directory: every surviving home is purged of the dead
// node's sharer/owner state, and the dead home's own entries are rebuilt
// at its RAS mirror — the mirrored memory carries the directory ECC bits
// too, so the entries survive verbatim (minus the dead node itself) and
// requests re-routed by HomeOf find them there. Returns when the sweep
// completes and what it touched. Surviving L2 invariants are re-checked
// afterwards; reconstruction must never leave coherence inconsistent.
func (f *Fabric) FailNode(now sim.Time, id NodeID) (sim.Time, FailStopStats) {
	var st FailStopStats
	dead := f.nodes[id]
	if dead.dead {
		panic(fmt.Sprintf("pe: node %d fail-stopped twice", id))
	}
	dead.dead = true
	f.anyDead = true
	if f.mirror == nil {
		f.mirror = make([]NodeID, f.cfg.Nodes)
	}
	m := f.nextAlive(id)
	f.mirror[id] = m
	// An earlier dead home whose mirror just died moves to ours: its
	// adopted entries live in id's directory and are swept below with it.
	for d := range f.mirror {
		if f.nodes[d].dead && f.mirror[d] == id {
			f.mirror[d] = m
		}
	}

	done := now
	for _, h := range f.nodes {
		if h.dead {
			continue
		}
		done = f.purgeDead(done, h, id, &st)
	}

	mn := f.nodes[m]
	for _, line := range dead.dir.Keys() {
		e := f.dirEntry(dead, line)
		e, d := dropNode(e, id)
		st.SharersDropped += d.SharersDropped
		st.OwnerReclaims += d.OwnerReclaims
		st.HomesAdopted++
		done = mn.home.process(done, 0)
		done += f.cfg.MemLatency
		f.setDir(mn, line, e)
	}
	dead.dir.Reset()

	for _, h := range f.nodes {
		if h.dead || h.l2 == nil {
			continue
		}
		if err := h.l2.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("pe: fail-stop reconstruction for node %d broke coherence on node %d: %v", id, h.id, err))
		}
	}
	return done, st
}

// mirrorExtra returns the extra memory latency when h serves line as an
// adopting mirror rather than its natural home: the read counts as a
// RAS failover and pays the mirror-read cost.
func (f *Fabric) mirrorExtra(now sim.Time, h *node, line cache.LineAddr) sim.Time {
	if !f.anyDead {
		return 0
	}
	page := uint64(line) >> (cache.PageShift - cache.LineShift)
	nat := NodeID(page % uint64(f.cfg.Nodes))
	if nat != h.id && f.nodes[nat].dead {
		return f.inj.FailoverPenalty(now)
	}
	return 0
}

// Engines returns a node's home and remote engines (stats inspection).
func (f *Fabric) Engines(id NodeID) (he, re *Engine) {
	return f.nodes[id].home, f.nodes[id].remote
}

// dirEntry decodes a home line's directory entry.
//
//piranha:hotpath
func (f *Fabric) dirEntry(h *node, line cache.LineAddr) directory.Entry {
	bits, _ := h.dir.Get(line)
	return directory.Decode(f.dcfg, bits)
}

// setDir encodes and stores a directory entry. A cleared entry frees
// its table slot (absent means Uncached), so the table tracks only the
// lines that are actually cached somewhere.
//
//piranha:hotpath
func (f *Fabric) setDir(h *node, line cache.LineAddr, e directory.Entry) {
	bits, err := directory.Encode(f.dcfg, e)
	if err != nil {
		badDirEntry(err)
	}
	if bits == 0 {
		h.dir.Delete(line)
		return
	}
	h.dir.Put(line, bits)
}

// badDirEntry keeps setDir's panic formatting off the hot path.
func badDirEntry(err error) {
	panic("pe: " + err.Error())
}
