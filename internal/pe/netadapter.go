package pe

import (
	"fmt"

	"piranha/internal/noc"
	"piranha/internal/sim"
)

// TopologyNetwork backs the protocol fabric with a real interconnect
// topology: per-hop latency is calibrated by running probe packets
// through the packet-level router simulation (internal/noc), and each
// message then pays distance-proportional latency plus per-node egress
// occupancy. This keeps the fabric's synchronous interface while the
// detailed hot-potato router model supplies the numbers — and it is how
// multi-chip experiments see non-uniform distance effects on topologies
// like rings and tori instead of the flat one-way constant.
type TopologyNetwork struct {
	topo    noc.Topology
	hops    [][]int
	clock   sim.Clock
	hopLat  sim.Time // per-hop latency (calibrated)
	baseLat sim.Time // fixed wire/interface overhead per message
	egress  []*sim.Server

	Messages uint64
}

// calibrationProbes bounds how many destinations the per-hop latency
// probe measures on large machines.
const calibrationProbes = 64

// NewTopologyNetwork calibrates per-hop latency on the given topology
// and returns the adapter. The interconnect clock is the router clock.
func NewTopologyNetwork(topo noc.Topology, clock sim.Clock, seed uint64) (*TopologyNetwork, error) {
	net, err := noc.NewNetwork(noc.DefaultConfig(), topo, seed)
	if err != nil {
		return nil, err
	}
	// Probe: measure uncontended delivery latency per hop by sending
	// short packets between increasingly distant node pairs. The hop
	// table comes from the network itself — recomputing Routes here
	// would repeat the O(N^2) BFS NewNetwork already paid.
	hops := net.Hops()
	// Above 64 nodes, probe a fixed budget of evenly-strided
	// destinations instead of all N-1: the calibration only needs an
	// uncontended cycles-per-hop average, and sampling keeps system
	// construction O(probes x diameter) rather than O(N x diameter).
	// At 64 nodes or fewer the stride is 1, so small systems probe
	// every destination exactly as before.
	probes := topo.Nodes() - 1
	if probes > calibrationProbes {
		probes = calibrationProbes
	}
	var totalCycles, totalHops int64
	for k := 0; k < probes; k++ {
		dst := 1 + k*(topo.Nodes()-1)/probes
		p := net.Inject(0, dst, 2, false)
		if err := net.Run(1 << 20); err != nil {
			return nil, err
		}
		totalCycles += p.DeliverCycle - p.InjectCycle
		totalHops += int64(hops[0][dst])
	}
	if totalHops == 0 {
		return nil, fmt.Errorf("pe: degenerate topology")
	}
	t := &TopologyNetwork{
		topo:    topo,
		hops:    hops,
		clock:   clock,
		hopLat:  clock.Cycles(totalCycles / totalHops),
		baseLat: 8 * sim.Nanosecond, // interface + synchronization
	}
	for i := 0; i < topo.Nodes(); i++ {
		t.egress = append(t.egress, sim.NewServer(len(topo.Neighbors(i))))
	}
	return t, nil
}

// HopLatency returns the calibrated per-hop latency.
func (t *TopologyNetwork) HopLatency() sim.Time { return t.hopLat }

// Send implements Network.
func (t *TopologyNetwork) Send(now sim.Time, from, to NodeID, bytes int, prio int) sim.Time {
	if from == to {
		return now
	}
	t.Messages++
	// Channel occupancy: 64 data bits per interconnect cycle.
	cycles := int64((bytes*8 + 63) / 64)
	sent := t.egress[from].Acquire(now, t.clock.Cycles(cycles))
	return sent + t.baseLat + sim.Time(t.hops[from][to])*t.hopLat
}
