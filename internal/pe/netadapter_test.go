package pe

import (
	"testing"

	"piranha/internal/cache"
	"piranha/internal/l2"
	"piranha/internal/noc"
	"piranha/internal/sim"
)

func TestTopologyNetworkCalibration(t *testing.T) {
	tn, err := NewTopologyNetwork(noc.Torus{W: 4, H: 4}, sim.MHz(500), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tn.HopLatency() <= 0 {
		t.Fatal("no hop latency calibrated")
	}
	// Neighbor vs opposite corner: 1 hop vs 4 hops on a 4x4 torus.
	near := tn.Send(0, 0, 1, ShortPacket, prioHigh)
	far := tn.Send(0, 0, 10, ShortPacket, prioHigh)
	if far <= near {
		t.Fatalf("distance should cost: near=%d far=%d", near, far)
	}
	if d := far - near; d < 3*tn.HopLatency()-sim.Nanosecond || d > 3*tn.HopLatency()+sim.Nanosecond {
		t.Fatalf("latency delta %d, want ~3 hops (%d)", d, 3*tn.HopLatency())
	}
	// Self-sends are free.
	if tn.Send(100, 3, 3, ShortPacket, prioLow) != 100 {
		t.Fatal("self-send should be immediate")
	}
}

func TestTopologyNetworkDrivesProtocol(t *testing.T) {
	// A 4-node ring fabric: reads to an adjacent home must be faster
	// than reads to the two-hop-distant home.
	tn, err := NewTopologyNetwork(noc.Ring{N: 4}, sim.MHz(500), 2)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFabric(DefaultConfig(4), tn)
	// Node 0 fetches lines homed at node 1 (1 hop) and node 2 (2 hops).
	line1 := lineHomed(f, 1)
	line2 := lineHomed(f, 2)
	d1, _, _ := f.Proto(0).Fetch(0, l2.Read, line1)
	d2, _, _ := f.Proto(0).Fetch(0, l2.Read, line2)
	if d2 <= d1 {
		t.Fatalf("2-hop home (%d) should be slower than 1-hop (%d)", d2, d1)
	}
	if tn.Messages == 0 {
		t.Fatal("no messages counted")
	}
}

// lineHomed finds a line whose home is the given node.
func lineHomed(f *Fabric, n NodeID) cache.LineAddr {
	for page := uint64(0); ; page++ {
		cand := cache.LineAddr(page << 7) // 8 KB page = 128 lines
		if f.HomeOf(cand) == n {
			return cand
		}
	}
}
