package pe

import (
	"testing"

	"piranha/internal/cache"
	"piranha/internal/directory"
	"piranha/internal/ics"
	"piranha/internal/l1"
	"piranha/internal/l2"
	"piranha/internal/sim"
)

// fakeMem mirrors the l2 test double.
type fakeMem struct{ reads, writes int }

func (m *fakeMem) Read(now sim.Time, _ cache.Addr) (sim.Time, sim.Time) {
	m.reads++
	return now + 60*sim.Nanosecond, now + 90*sim.Nanosecond
}
func (m *fakeMem) Write(now sim.Time, _ cache.Addr) sim.Time {
	m.writes++
	return now + 40*sim.Nanosecond
}

// chipRig is one chip bound into a fabric.
type chipRig struct {
	l2 *l2.L2
	d  []*l1.Cache
}

// newSystem builds n chips (4 CPUs each) over a flat network.
func newSystem(t testing.TB, n int, baseline bool) (*Fabric, []*chipRig) {
	t.Helper()
	cfg := DefaultConfig(n)
	cfg.Baseline = baseline
	cfg.UseCMI = !baseline
	f := NewFabric(cfg, NewFlatNetwork(25*sim.Nanosecond))
	clock := sim.MHz(500)
	var chips []*chipRig
	for i := 0; i < n; i++ {
		c := &chipRig{}
		var l1s []*l1.Cache
		for cpu := 0; cpu < 4; cpu++ {
			d := l1.New(l1.Data, cpu, cpu*2, l1.DefaultConfig())
			ic := l1.New(l1.Instruction, cpu, cpu*2+1, l1.DefaultConfig())
			c.d = append(c.d, d)
			l1s = append(l1s, d, ic)
		}
		var mems []l2.Memory
		for b := 0; b < 8; b++ {
			mems = append(mems, &fakeMem{})
		}
		c.l2 = l2.New(l2.DefaultConfig(), clock, l1s, mems, ics.New(ics.DefaultConfig(clock)), f.Proto(NodeID(i)))
		f.BindL2(NodeID(i), c.l2)
		chips = append(chips, c)
	}
	return f, chips
}

// lineHomedAt returns an address whose home is the given node.
func lineHomedAt(f *Fabric, node NodeID) cache.Addr {
	for page := uint64(0); ; page++ {
		a := cache.Addr(page << cache.PageShift)
		if f.HomeOf(a.Line()) == node {
			return a
		}
	}
}

func TestHomeOfInterleave(t *testing.T) {
	f := NewFabric(DefaultConfig(4), NewFlatNetwork(25*sim.Nanosecond))
	// Consecutive 8 KB pages round-robin across nodes; lines within a
	// page share a home.
	a := cache.Addr(0)
	if f.HomeOf(a.Line()) != f.HomeOf((a + 8191).Line()) {
		t.Fatal("same page, different homes")
	}
	if f.HomeOf(a.Line()) == f.HomeOf((a + 8192).Line()) {
		t.Fatal("adjacent pages should map to different homes")
	}
	seen := map[NodeID]bool{}
	for p := 0; p < 4; p++ {
		seen[f.HomeOf(cache.Addr(p<<cache.PageShift).Line())] = true
	}
	if len(seen) != 4 {
		t.Fatalf("4 pages hit %d homes", len(seen))
	}
}

func TestRemoteCleanReadLatency(t *testing.T) {
	f, chips := newSystem(t, 2, false)
	a := lineHomedAt(f, 1) // homed at chip 1, requested by chip 0
	done, svc := chips[0].l2.Access(0, chips[0].d[0], l2.Read, a)
	if svc != l2.SvcRemote {
		t.Fatalf("svc %v, want remote", svc)
	}
	// Table 1 calibration: ~120 ns remote clean.
	if done < 100*sim.Nanosecond || done > 160*sim.Nanosecond {
		t.Fatalf("remote clean latency %d ns, want ~120", done/sim.Nanosecond)
	}
	// Clean-exclusive optimization: sole system-wide copy gets E.
	if st := chips[0].d[0].State(a.Line()); st != cache.Exclusive {
		t.Fatalf("state %v, want E (clean-exclusive)", st)
	}
}

func TestRemoteDirtyThreeHop(t *testing.T) {
	f, chips := newSystem(t, 3, false)
	a := lineHomedAt(f, 1)
	// Chip 2 dirties the line (homed at 1); chip 0 then reads it.
	chips[2].l2.Access(0, chips[2].d[0], l2.ReadEx, a)
	now := 10 * sim.Microsecond
	done, svc := chips[0].l2.Access(now, chips[0].d[0], l2.Read, a)
	if svc != l2.SvcRemoteDirty {
		t.Fatalf("svc %v, want remote-dirty", svc)
	}
	if lat := done - now; lat < 140*sim.Nanosecond || lat > 240*sim.Nanosecond {
		t.Fatalf("3-hop latency %d ns, want ~180", lat/sim.Nanosecond)
	}
	if f.ThreeHop == 0 {
		t.Fatal("three-hop counter not incremented")
	}
	// Prior owner downgraded to shared; directory shows both sharers.
	if st := chips[2].d[0].State(a.Line()); st != cache.Shared {
		t.Fatalf("owner state %v, want S", st)
	}
	e := f.dirEntry(f.nodes[1], a.Line())
	if e.State != directory.Shared || !e.Sharers.Has(0) || !e.Sharers.Has(2) {
		t.Fatalf("directory after dirty share: %+v", e)
	}
}

func TestWriteInvalidatesRemoteSharers(t *testing.T) {
	f, chips := newSystem(t, 3, false)
	a := lineHomedAt(f, 0)
	// Chips 1 and 2 read the line homed at 0.
	chips[1].l2.Access(0, chips[1].d[0], l2.Read, a)
	chips[2].l2.Access(1*sim.Microsecond, chips[2].d[0], l2.Read, a)
	// Chip 0 (the home) writes: remote copies must die.
	chips[0].l2.Access(2*sim.Microsecond, chips[0].d[0], l2.ReadEx, a)
	if chips[1].l2.HasLine(a.Line()) || chips[2].l2.HasLine(a.Line()) {
		t.Fatal("remote sharers survived a home write")
	}
	if f.InvalsSent == 0 {
		t.Fatal("no invalidations sent")
	}
	e := f.dirEntry(f.nodes[0], a.Line())
	if e.State != directory.Uncached {
		t.Fatalf("directory %v after home write, want uncached", e.State)
	}
}

func TestRemoteWriteTracksExclusive(t *testing.T) {
	f, chips := newSystem(t, 2, false)
	a := lineHomedAt(f, 0)
	chips[1].l2.Access(0, chips[1].d[0], l2.ReadEx, a)
	e := f.dirEntry(f.nodes[0], a.Line())
	if e.State != directory.Exclusive || e.Owner != 1 {
		t.Fatalf("directory %+v, want exclusive@1", e)
	}
	// A local (home) read must now fetch from the remote owner.
	now := 10 * sim.Microsecond
	done, svc := chips[0].l2.Access(now, chips[0].d[0], l2.Read, a)
	if svc != l2.SvcRemoteDirty {
		t.Fatalf("svc %v, want remote-dirty", svc)
	}
	if lat := done - now; lat < 150*sim.Nanosecond {
		t.Fatalf("home read of remote-dirty line too fast: %d ns", lat/sim.Nanosecond)
	}
}

func TestUpgradeOfRemoteHomedSharedLine(t *testing.T) {
	f, chips := newSystem(t, 2, false)
	a := lineHomedAt(f, 1)
	// Both chips read (chip 0 remote, chip 1 local home).
	chips[0].l2.Access(0, chips[0].d[0], l2.Read, a)
	chips[1].l2.Access(1*sim.Microsecond, chips[1].d[0], l2.Read, a)
	// Chip 0 upgrades its shared copy: must revoke chip 1's.
	now := 10 * sim.Microsecond
	chips[0].l2.Access(now, chips[0].d[0], l2.Upgrade, a)
	if chips[0].d[0].State(a.Line()) != cache.Modified {
		t.Fatal("upgrader not M")
	}
	if chips[1].l2.HasLine(a.Line()) {
		t.Fatal("home chip copy survived remote upgrade")
	}
	e := f.dirEntry(f.nodes[1], a.Line())
	if e.State != directory.Exclusive || e.Owner != 0 {
		t.Fatalf("directory %+v, want exclusive@0", e)
	}
}

func TestWritebackClearsDirectory(t *testing.T) {
	f, chips := newSystem(t, 2, false)
	a := lineHomedAt(f, 1)
	chips[0].l2.Access(0, chips[0].d[0], l2.ReadEx, a) // dirty at chip 0
	p := f.Proto(0)
	p.Writeback(1*sim.Microsecond, a.Line())
	e := f.dirEntry(f.nodes[1], a.Line())
	if e.State != directory.Uncached {
		t.Fatalf("directory %v after writeback", e.State)
	}
}

func TestCMIBoundsInjectedMessages(t *testing.T) {
	// 16 sharers, fanout 4: at most 4 injected invalidation messages
	// and 4 acks — the paper's bounded-buffering argument.
	cfg := DefaultConfig(20)
	f := NewFabric(cfg, NewFlatNetwork(25*sim.Nanosecond))
	h := f.nodes[0]
	var sharers []NodeID
	entry := directory.Clear()
	for i := 1; i <= 16; i++ {
		sharers = append(sharers, NodeID(i))
		entry = directory.AddSharer(f.dcfg, entry, NodeID(i))
	}
	f.setDir(h, 0, entry)
	ack := f.invalidate(0, h, 19, 0, sharers, entry.State == directory.SharedCoarse)
	if f.InvalMsgs != 4 {
		t.Fatalf("CMI injected %d messages for 16 sharers, want 4", f.InvalMsgs)
	}
	if f.InvalAcks != 4 {
		t.Fatalf("CMI acks %d, want 4", f.InvalAcks)
	}
	if f.InvalsSent != 16 {
		t.Fatalf("invalidated %d sharers", f.InvalsSent)
	}
	if ack <= 0 {
		t.Fatal("no ack time")
	}
}

func TestCoarseOverInvalCount(t *testing.T) {
	// 50 nodes is not a multiple of the 42-bit vector width, so each
	// coarse group spans two nodes and naming one sharer names its
	// sibling too. The invalidation must still visit the sibling (the
	// vector is a superset) but count the visit as an over-invalidation.
	f, chips := newSystem(t, 50, false)
	a := lineHomedAt(f, 0)
	readers := []int{2, 4, 6, 8, 10, 12}
	for _, i := range readers {
		chips[i].l2.Access(0, chips[i].d[0], l2.Read, a)
	}
	if e := f.dirEntry(f.nodes[0], a.Line()); e.State != directory.SharedCoarse {
		t.Fatalf("directory %v after %d sharers, want SharedCoarse", e.State, len(readers))
	}
	chips[1].l2.Access(10*sim.Microsecond, chips[1].d[0], l2.ReadEx, a)
	if f.OverInvals == 0 {
		t.Fatal("coarse invalidation visited no non-holders; over-invalidations not counted")
	}
	if f.OverInvals >= f.InvalsSent {
		t.Fatalf("OverInvals %d >= InvalsSent %d: true sharers misclassified", f.OverInvals, f.InvalsSent)
	}
}

func TestBroadcastVsCMIMessageCounts(t *testing.T) {
	mk := func(useCMI bool) *Fabric {
		cfg := DefaultConfig(40)
		cfg.UseCMI = useCMI
		return NewFabric(cfg, NewFlatNetwork(25*sim.Nanosecond))
	}
	var sharers []NodeID
	for i := 1; i <= 32; i++ {
		sharers = append(sharers, NodeID(i))
	}
	cmi := mk(true)
	cmi.invalidate(0, cmi.nodes[0], 39, 0, sharers, false)
	bc := mk(false)
	bc.invalidate(0, bc.nodes[0], 39, 0, sharers, false)
	if cmi.InvalMsgs >= bc.InvalMsgs {
		t.Fatalf("CMI (%d msgs) should inject fewer than broadcast (%d)", cmi.InvalMsgs, bc.InvalMsgs)
	}
	if bc.InvalMsgs != 32 || bc.InvalAcks != 32 {
		t.Fatalf("broadcast counts %d/%d", bc.InvalMsgs, bc.InvalAcks)
	}
}

func TestBaselineSendsMoreMessages(t *testing.T) {
	// Same 3-hop dirty-read sequence under both protocols; the DASH
	// baseline must emit the extra ownership-change confirmation.
	run := func(baseline bool) uint64 {
		f, chips := newSystem(t, 3, baseline)
		a := lineHomedAt(f, 1)
		chips[2].l2.Access(0, chips[2].d[0], l2.ReadEx, a)
		chips[0].l2.Access(10*sim.Microsecond, chips[0].d[0], l2.Read, a)
		var msgs uint64
		for i := 0; i < 3; i++ {
			he, re := f.Engines(NodeID(i))
			msgs += he.Stats.Messages + re.Stats.Messages
		}
		return msgs
	}
	nonak := run(false)
	nak := run(true)
	if nak <= nonak {
		t.Fatalf("baseline messages %d should exceed no-NAK %d", nak, nonak)
	}
}

func TestBaselineNAKsUnderSaturation(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Baseline = true
	cfg.UseCMI = false
	cfg.TSRFEntries = 2
	f := NewFabric(cfg, NewFlatNetwork(25*sim.Nanosecond))
	h := f.nodes[1]
	// Saturate the home engine's two TSRF entries far into the future.
	_, rel1 := h.home.tsrf.Reserve(0)
	_, rel2 := h.home.tsrf.Reserve(0)
	done, _, _ := f.atHome(0, h, 0, l2.Read, 0x40, false)
	rel1(1 * sim.Millisecond)
	rel2(1 * sim.Millisecond)
	if h.home.Stats.NAKs == 0 {
		t.Fatal("saturated baseline home did not NAK")
	}
	if done <= 0 {
		t.Fatal("request never completed")
	}
}

func TestNoNAKQueuesInsteadOfNAKing(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TSRFEntries = 2
	f := NewFabric(cfg, NewFlatNetwork(25*sim.Nanosecond))
	h := f.nodes[1]
	_, rel1 := h.home.tsrf.Reserve(0)
	_, rel2 := h.home.tsrf.Reserve(0)
	rel1(200 * sim.Nanosecond)
	rel2(200 * sim.Nanosecond)
	done, _, _ := f.atHome(0, h, 0, l2.Read, 0x40, false)
	if h.home.Stats.NAKs != 0 {
		t.Fatal("no-NAK protocol NAKed")
	}
	if done < 200*sim.Nanosecond {
		t.Fatal("request should have waited for a TSRF entry")
	}
}

func TestCrossChipInvariantStress(t *testing.T) {
	_, chips := newSystem(t, 4, false)
	rng := sim.NewRNG(77)
	now := sim.Time(0)
	for i := 0; i < 8000; i++ {
		chip := chips[rng.Intn(4)]
		cpu := rng.Intn(4)
		// A shared hot region spanning pages homed at all nodes.
		a := cache.Addr(rng.Intn(512)) * cache.LineBytes
		if rng.Bool(0.5) {
			a += cache.Addr(rng.Intn(4)) << cache.PageShift
		}
		now += sim.Time(rng.Intn(500)) * sim.Nanosecond
		d := chip.d[cpu]
		st := d.State(a.Line())
		if rng.Bool(0.6) {
			if st == cache.Invalid {
				chip.l2.Access(now, d, l2.Read, a)
			}
		} else {
			switch st {
			case cache.Invalid:
				chip.l2.Access(now, d, l2.ReadEx, a)
			case cache.Shared:
				chip.l2.Access(now, d, l2.Upgrade, a)
			default:
				d.SetState(a.Line(), cache.Modified)
			}
		}
		if i%2000 == 1999 {
			for ci, c := range chips {
				if err := c.l2.CheckInvariants(); err != nil {
					t.Fatalf("step %d chip %d: %v", i, ci, err)
				}
			}
		}
	}
	// System-wide single-writer invariant: a line Modified on one chip
	// must not be valid anywhere else.
	for _, c := range chips {
		for cpu := 0; cpu < 4; cpu++ {
			for _, ln := range c.d[cpu].Contents() {
				if ln.State != cache.Modified && ln.State != cache.Exclusive {
					continue
				}
				for _, o := range chips {
					if o == c {
						continue
					}
					if o.l2.HasLine(ln.Tag) {
						t.Fatalf("line %#x exclusive on one chip, cached on another", ln.Tag)
					}
				}
			}
		}
	}
}

func TestEngineTimeoutRecovery(t *testing.T) {
	// A transaction whose reply never arrives (failed node) must not
	// wedge the engine: the TSRF timer reclaims the entry.
	e := newEngine("HE", 2, 10*sim.Nanosecond)
	e.tsrf.Reserve(0) // orphaned
	e.tsrf.Reserve(0) // orphaned
	if got := e.Recover(1*sim.Millisecond, 100*sim.Microsecond); got != 2 {
		t.Fatalf("recovered %d, want 2", got)
	}
	if e.Stats.Recoveries != 2 {
		t.Fatalf("stats %d", e.Stats.Recoveries)
	}
	// The engine serves new work afterwards.
	done := e.process(1*sim.Millisecond, 0)
	if done <= 1*sim.Millisecond {
		t.Fatal("engine wedged after recovery")
	}
}
