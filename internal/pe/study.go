package pe

import (
	"piranha/internal/cache"
	"piranha/internal/directory"
	"piranha/internal/l2"
	"piranha/internal/sim"
)

// InvalidateStudy invalidates a synthetic line shared by k remote nodes
// (home is node 0, requester the last node) and returns the number of
// invalidation messages injected and the time until the final
// acknowledgment reaches the requester. Used for the §2.5.3
// cruise-missile-invalidate comparison.
func (f *Fabric) InvalidateStudy(k int) (uint64, sim.Time) {
	h := f.nodes[0]
	entry := directory.Clear()
	var sharers []NodeID
	for i := 1; i <= k && i < f.cfg.Nodes-1; i++ {
		n := NodeID(i)
		sharers = append(sharers, n)
		entry = directory.AddSharer(f.dcfg, entry, n)
	}
	f.setDir(h, 0x40, entry)
	ack := f.invalidate(0, h, NodeID(f.cfg.Nodes-1), 0x40, sharers, entry.State == directory.SharedCoarse)
	return f.InvalMsgs, ack
}

// SeedDirectory installs count synthetic shared-line entries in node
// 0's home directory (each shared by node 1) and returns the lines, in
// insertion order. It exists so cmd/piranha-bench can warm the dense
// directory table before timing DirectoryDispatch.
func (f *Fabric) SeedDirectory(count int) []cache.LineAddr {
	h := f.nodes[0]
	lines := make([]cache.LineAddr, count)
	for i := range lines {
		line := cache.LineAddr(i)
		lines[i] = line
		f.setDir(h, line, directory.AddSharer(f.dcfg, directory.Clear(), 1))
	}
	return lines
}

// DirectoryDispatch performs, for each line, the directory half of a
// home-engine dispatch: decode the stored entry, fold in a sharer, and
// encode it back. Against a table warmed by SeedDirectory every store
// is an overwrite, so the loop is the steady-state directory path —
// cmd/piranha-bench asserts it allocates nothing. Returns the number of
// entries touched so the work cannot be optimized away.
func (f *Fabric) DirectoryDispatch(lines []cache.LineAddr) int {
	h := f.nodes[0]
	touched := 0
	for _, line := range lines {
		e := f.dirEntry(h, line)
		e = directory.AddSharer(f.dcfg, e, 1)
		f.setDir(h, line, e)
		touched++
	}
	return touched
}

// ContentionStudy drives a conflict-heavy transaction mix (alternating
// exclusive requests to a few hot home-local lines, so three-hop
// forwards and directory conflicts are frequent) against a fabric with
// small TSRFs, and reports total protocol messages, home-engine
// occupancy, NAKs and retries. It is the §2.5.3 NAK-free-vs-DASH
// ablation harness.
func ContentionStudy(baseline bool, nodes, txns int) (msgs uint64, occ sim.Time, naks, retries uint64, n int) {
	cfg := DefaultConfig(nodes)
	cfg.Baseline = baseline
	cfg.UseCMI = !baseline
	cfg.TSRFEntries = 4 // small, so bursts saturate the home engine
	f := NewFabric(cfg, NewFlatNetwork(25*sim.Nanosecond))
	rng := sim.NewRNG(99)
	now := sim.Time(0)
	for i := 0; i < txns; i++ {
		req := NodeID(1 + rng.Intn(nodes-1))
		line := cache.LineAddr(rng.Intn(8)) // 8 hot lines, all homed at 0
		kind := l2.ReadEx
		if rng.Bool(0.4) {
			kind = l2.Read
		}
		f.Proto(req).Fetch(now, kind, line)
		now += sim.Time(20+rng.Intn(30)) * sim.Nanosecond
	}
	for _, nd := range f.nodes {
		msgs += nd.home.Stats.Messages + nd.remote.Stats.Messages
		occ += nd.home.Stats.Occupancy
		naks += nd.home.Stats.NAKs
		retries += nd.home.Stats.Retries
	}
	return msgs, occ, naks, retries, txns
}
