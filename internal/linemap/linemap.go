// Package linemap provides the dense, index-addressed per-line state
// table the memory-system hot paths run on. The simulator's per-line
// coherence bookkeeping — the L2 banks' duplicate-tag records, their
// pending-transaction blocks, the protocol engines' home-directory
// entries — is touched by every simulated access, and Go's built-in
// map is the wrong structure for it: values are pointer-boxed (one
// heap object per line), lookups hash through runtime indirection, and
// iteration order is randomized. Piranha itself packs directory state
// into the spare ECC bits of each memory line (§2.5.2) precisely
// because per-line metadata must be compact and index-addressed; this
// package is the host-side analogue.
//
// Map is an open-addressed, linear-probed hash table with value-typed
// entries in two parallel slices (keys and values), a power-of-two
// capacity, and multiplicative (Fibonacci) hashing. Steady-state
// operations — lookups, overwrites of existing keys, deletes, and
// inserts that reuse tombstoned slots — allocate nothing; growth
// reallocates the two backing slices and is amortized over insertions
// exactly like append. Probing is deterministic (no per-process hash
// seed), so table order is a pure function of the operation history —
// one less source of iteration-order randomness, although callers that
// feed output from a table still sort (see Keys).
//
// Pointer validity: Ref and Put return interior pointers into the
// value slice. They remain valid across Get/Delete/overwriting Put,
// but any Put that inserts a NEW key may grow the table and must be
// assumed to invalidate previously obtained pointers. The L2 and
// protocol-engine call graphs honor this by completing all mutations
// through a pointer before any nested insert can run.
package linemap

import (
	"piranha/internal/cache"
	"piranha/internal/sortutil"
)

// slot states, kept in a parallel byte slice so probe loops scan a
// compact array.
const (
	empty    uint8 = iota // never used; terminates probe chains
	occupied              // live entry
	deleted               // tombstone; probe chains continue through it
)

// minCap is the smallest table allocated (power of two).
const minCap = 16

// Map is a dense hash table from cache.LineAddr to V. The zero value
// is ready to use; New pre-sizes one instead.
type Map[V any] struct {
	state []uint8
	keys  []cache.LineAddr
	vals  []V
	live  int // occupied slots
	used  int // occupied + deleted (probe-chain load)
}

// New returns a Map pre-sized to hold at least hint entries without
// growing.
func New[V any](hint int) *Map[V] {
	m := &Map[V]{}
	if hint > 0 {
		c := minCap
		for c*3 < hint*4 { // keep load factor <= 3/4 at hint entries
			c <<= 1
		}
		m.alloc(c)
	}
	return m
}

// alloc installs fresh backing arrays of capacity c (a power of two).
func (m *Map[V]) alloc(c int) {
	m.state = make([]uint8, c)
	m.keys = make([]cache.LineAddr, c)
	m.vals = make([]V, c)
	m.live, m.used = 0, 0
}

// Len returns the number of live entries.
func (m *Map[V]) Len() int { return m.live }

// Cap returns the current table capacity. Tests use it to assert that
// steady-state churn recycles slots instead of growing the table.
func (m *Map[V]) Cap() int { return len(m.state) }

// index returns the preferred slot for a key: Fibonacci hashing maps
// the full 64-bit key through the golden-ratio multiplier and keeps
// the top bits, which distributes the sequential, low-entropy line
// addresses the simulator generates far better than masking low bits.
//
//piranha:hotpath
func index(key cache.LineAddr, mask uint64) uint64 {
	return (uint64(key) * 0x9E3779B97F4A7C15) >> 32 & mask
}

// Ref returns a pointer to the value stored for key, or nil when the
// key is absent. The pointer is valid until the next growing Put.
//
//piranha:hotpath
func (m *Map[V]) Ref(key cache.LineAddr) *V {
	if len(m.state) == 0 {
		return nil
	}
	mask := uint64(len(m.state) - 1)
	for i := index(key, mask); ; i = (i + 1) & mask {
		switch m.state[i] {
		case empty:
			return nil
		case occupied:
			if m.keys[i] == key {
				return &m.vals[i]
			}
		}
	}
}

// Get returns the value stored for key and whether it was present.
//
//piranha:hotpath
func (m *Map[V]) Get(key cache.LineAddr) (V, bool) {
	if p := m.Ref(key); p != nil {
		return *p, true
	}
	var zero V
	return zero, false
}

// Put stores val for key, inserting or overwriting, and returns a
// pointer to the stored value. Overwrites and tombstone reuse are
// allocation-free; inserting a new key may grow the table.
//
//piranha:hotpath
func (m *Map[V]) Put(key cache.LineAddr, val V) *V {
	if len(m.state) == 0 {
		m.alloc(minCap)
	} else if (m.used+1)*4 > len(m.state)*3 {
		m.rehash()
	}
	mask := uint64(len(m.state) - 1)
	grave := -1
	for i := index(key, mask); ; i = (i + 1) & mask {
		switch m.state[i] {
		case empty:
			if grave >= 0 {
				i = uint64(grave) // reuse the first tombstone on the chain
			} else {
				m.used++
			}
			m.state[i] = occupied
			m.keys[i] = key
			m.vals[i] = val
			m.live++
			return &m.vals[i]
		case occupied:
			if m.keys[i] == key {
				m.vals[i] = val
				return &m.vals[i]
			}
		case deleted:
			if grave < 0 {
				grave = int(i)
			}
		}
	}
}

// Delete removes key if present, leaving a tombstone so probe chains
// through the slot stay intact. Reports whether an entry was removed.
//
//piranha:hotpath
func (m *Map[V]) Delete(key cache.LineAddr) bool {
	if len(m.state) == 0 {
		return false
	}
	mask := uint64(len(m.state) - 1)
	for i := index(key, mask); ; i = (i + 1) & mask {
		switch m.state[i] {
		case empty:
			return false
		case occupied:
			if m.keys[i] == key {
				m.state[i] = deleted
				var zero V
				m.vals[i] = zero // drop any pointers the value held
				m.live--
				return true
			}
		}
	}
}

// rehash re-inserts the live entries, growing when they genuinely fill
// the table and merely compacting tombstones away when they do not.
func (m *Map[V]) rehash() {
	c := len(m.state)
	if (m.live+1)*2 > c {
		c <<= 1
	}
	os, ok, ov := m.state, m.keys, m.vals
	m.alloc(c)
	for i, st := range os {
		if st == occupied {
			m.Put(ok[i], ov[i])
		}
	}
}

// Reset discards all entries in place, keeping the backing arrays so a
// warm table can be reused without reallocation.
func (m *Map[V]) Reset() {
	for i := range m.state {
		m.state[i] = empty
	}
	var zero V
	for i := range m.vals {
		m.vals[i] = zero
	}
	m.live, m.used = 0, 0
}

// Range calls f for every live entry in table order until f returns
// false. Table order is deterministic for a fixed operation history
// but is NOT sorted; callers feeding simulation output must use Keys.
// The value pointer is valid for the duration of the call.
func (m *Map[V]) Range(f func(key cache.LineAddr, val *V) bool) {
	for i, st := range m.state {
		if st == occupied && !f(m.keys[i], &m.vals[i]) {
			return
		}
	}
}

// Keys returns the live keys in ascending order — the deterministic
// iteration the determinism analyzer demands wherever table contents
// feed output, scheduling, or result slices.
func (m *Map[V]) Keys() []cache.LineAddr {
	out := make([]cache.LineAddr, 0, m.live)
	for i, st := range m.state {
		if st == occupied {
			out = append(out, m.keys[i])
		}
	}
	sortutil.Sort(out)
	return out
}
