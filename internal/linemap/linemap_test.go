package linemap

import (
	"testing"

	"piranha/internal/cache"
	"piranha/internal/sim"
)

func TestBasicOps(t *testing.T) {
	m := New[int](0)
	if m.Len() != 0 {
		t.Fatalf("new map Len = %d", m.Len())
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("Get on empty map reported present")
	}
	if m.Ref(7) != nil {
		t.Fatal("Ref on empty map non-nil")
	}
	if m.Delete(7) {
		t.Fatal("Delete on empty map reported removal")
	}
	m.Put(7, 70)
	m.Put(8, 80)
	if v, ok := m.Get(7); !ok || v != 70 {
		t.Fatalf("Get(7) = %d, %v", v, ok)
	}
	*m.Ref(7) = 71
	if v, _ := m.Get(7); v != 71 {
		t.Fatalf("Ref mutation lost: %d", v)
	}
	m.Put(7, 72)
	if v, _ := m.Get(7); v != 72 || m.Len() != 2 {
		t.Fatalf("overwrite: v=%d len=%d", v, m.Len())
	}
	if !m.Delete(7) || m.Len() != 1 {
		t.Fatalf("delete: len=%d", m.Len())
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := m.Get(8); !ok || v != 80 {
		t.Fatalf("unrelated key disturbed: %d, %v", v, ok)
	}
}

func TestZeroValueReady(t *testing.T) {
	var m Map[uint64]
	m.Put(1, 10)
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("zero-value map: %d, %v", v, ok)
	}
}

// TestTombstoneReuse pins the slot-recycling behavior the L2's
// eviction/refill churn depends on: deleting and re-inserting the same
// working set must not grow the table.
func TestTombstoneReuse(t *testing.T) {
	m := New[int](8)
	cap0 := len(m.state)
	for round := 0; round < 1000; round++ {
		for k := cache.LineAddr(0); k < 8; k++ {
			m.Put(k, round)
		}
		for k := cache.LineAddr(0); k < 8; k++ {
			if !m.Delete(k) {
				t.Fatalf("round %d: Delete(%d) missed", round, k)
			}
		}
	}
	if len(m.state) > 2*cap0 {
		t.Fatalf("churn grew table %d -> %d slots", cap0, len(m.state))
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after full delete", m.Len())
	}
}

func TestKeysSorted(t *testing.T) {
	m := New[int](0)
	for _, k := range []cache.LineAddr{9, 3, 1 << 40, 0, 12345} {
		m.Put(k, 1)
	}
	keys := m.Keys()
	want := []cache.LineAddr{0, 3, 9, 12345, 1 << 40}
	if len(keys) != len(want) {
		t.Fatalf("Keys len %d want %d", len(keys), len(want))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys[%d] = %d want %d", i, keys[i], want[i])
		}
	}
}

func TestReset(t *testing.T) {
	m := New[sim.Time](0)
	for k := cache.LineAddr(0); k < 100; k++ {
		m.Put(k, sim.Time(k))
	}
	cap0 := len(m.state)
	m.Reset()
	if m.Len() != 0 || len(m.state) != cap0 {
		t.Fatalf("Reset: len=%d cap %d->%d", m.Len(), cap0, len(m.state))
	}
	if _, ok := m.Get(5); ok {
		t.Fatal("entry survived Reset")
	}
	m.Put(5, 50)
	if v, _ := m.Get(5); v != 50 {
		t.Fatal("map unusable after Reset")
	}
}

// TestDifferentialVsMap drives a Map and a built-in map through the
// same seeded random operation stream and requires identical observable
// behavior at every step — the fuzz-style check that retired the Go-map
// implementation of the L2/PE per-line state.
func TestDifferentialVsMap(t *testing.T) {
	rng := sim.NewRNG(42)
	m := New[uint64](0)
	ref := make(map[cache.LineAddr]uint64)
	// Narrow key space forces constant collision/tombstone traffic.
	key := func() cache.LineAddr { return cache.LineAddr(rng.Intn(257)) * 0x10001 }
	for op := 0; op < 200000; op++ {
		k := key()
		switch rng.Intn(4) {
		case 0: // insert/overwrite
			v := uint64(op)
			m.Put(k, v)
			ref[k] = v
		case 1: // lookup
			got, ok := m.Get(k)
			want, wok := ref[k]
			if ok != wok || got != want {
				t.Fatalf("op %d: Get(%#x) = %d,%v want %d,%v", op, k, got, ok, want, wok)
			}
		case 2: // delete
			if m.Delete(k) != func() bool { _, ok := ref[k]; return ok }() {
				t.Fatalf("op %d: Delete(%#x) disagreed", op, k)
			}
			delete(ref, k)
		case 3: // in-place mutation through Ref
			p := m.Ref(k)
			if (p != nil) != func() bool { _, ok := ref[k]; return ok }() {
				t.Fatalf("op %d: Ref(%#x) presence disagreed", op, k)
			}
			if p != nil {
				*p += 7
				ref[k] += 7
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len %d want %d", op, m.Len(), len(ref))
		}
	}
	// Full-content sweep at the end.
	keys := m.Keys()
	if len(keys) != len(ref) {
		t.Fatalf("final Keys len %d want %d", len(keys), len(ref))
	}
	for _, k := range keys {
		v, ok := m.Get(k)
		if !ok || v != ref[k] {
			t.Fatalf("final Get(%#x) = %d,%v want %d", k, v, ok, ref[k])
		}
	}
}

// TestSteadyStateZeroAlloc pins the hot-path contract: lookups,
// overwrites, deletes and tombstone-reusing inserts allocate nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	m := New[uint64](64)
	for k := cache.LineAddr(0); k < 48; k++ {
		m.Put(k, uint64(k))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Put(13, 1)
		if p := m.Ref(13); p != nil {
			*p++
		}
		m.Get(29)
		m.Delete(47)
		m.Put(47, 2) // reuses the tombstone
	})
	if allocs != 0 {
		t.Fatalf("steady-state ops allocate %.1f/op", allocs)
	}
}

func BenchmarkRefHit(b *testing.B) {
	m := New[uint64](1024)
	for k := cache.LineAddr(0); k < 700; k++ {
		m.Put(k*64, uint64(k))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Ref(cache.LineAddr(i%700) * 64)
	}
}

func BenchmarkPutDeleteChurn(b *testing.B) {
	m := New[uint64](1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := cache.LineAddr(i % 512)
		m.Put(k, uint64(i))
		m.Delete(k)
	}
}
