package sortutil

import (
	"reflect"
	"testing"
)

func TestKeysString(t *testing.T) {
	m := map[string]float64{"b": 2, "a": 1, "c": 3}
	if got := Keys(m); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Keys = %v", got)
	}
}

func TestKeysDefinedIntegerType(t *testing.T) {
	type lineAddr uint64
	m := map[lineAddr]string{7: "", 1: "", 4: ""}
	if got := Keys(m); !reflect.DeepEqual(got, []lineAddr{1, 4, 7}) {
		t.Fatalf("Keys = %v", got)
	}
}

func TestKeysEmptyAndNil(t *testing.T) {
	if got := Keys(map[int]int{}); len(got) != 0 {
		t.Fatalf("Keys(empty) = %v", got)
	}
	var m map[int]int
	if got := Keys(m); len(got) != 0 {
		t.Fatalf("Keys(nil) = %v", got)
	}
}

func TestKeysStable(t *testing.T) {
	m := map[int]int{}
	for i := 0; i < 1000; i++ {
		m[i*7%1000] = i
	}
	first := Keys(m)
	for i := 0; i < 10; i++ {
		if !reflect.DeepEqual(Keys(m), first) {
			t.Fatal("Keys order varies across calls")
		}
	}
}
