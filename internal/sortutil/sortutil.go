// Package sortutil provides the deterministic-iteration helpers the
// simulator uses wherever a Go map feeds output, event scheduling, or a
// result slice. Go's map iteration order is deliberately randomized, so
// any such loop must run over sorted keys to keep simulation output
// byte-identical across runs and across serial/parallel execution — the
// property the determinism analyzer in internal/lint enforces.
package sortutil

import (
	"cmp"
	"slices"
)

// Keys returns the keys of m in ascending order. It generalizes the
// sortedKeys helper that the figure harness originally carried for its
// metrics maps: any ordered key type works, so duplicate-tag maps keyed
// by cache.LineAddr sort just as metrics maps keyed by string do.
func Keys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Sort sorts s in place in ascending order. It exists so packages that
// produce key slices from non-map tables (internal/linemap) deterministify
// them through the same package the analyzer whitelists.
func Sort[K cmp.Ordered](s []K) { slices.Sort(s) }
