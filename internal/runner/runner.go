// Package runner fans a batch of independent experiments across host
// CPUs. Every paper figure is a sweep of deterministic simulations, each
// owning its private Engine, System and seeded RNG, so runs share no
// mutable state and parallel execution returns bit-identical results in
// input order. A panic inside one run (e.g. a post-run invariant
// violation) is captured as that experiment's error instead of killing
// the batch.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"piranha/internal/core"
)

// runExperiment is the work function; a variable so tests can substitute
// panicking or cancelling workloads.
var runExperiment = core.Run

// Outcome is the result of one experiment in a batch: either a Result or
// the error that prevented it (a captured panic, or the context error
// for experiments skipped after cancellation).
type Outcome struct {
	Result core.Result
	Err    error
}

// Run executes exps on a bounded pool of workers goroutines (workers <= 0
// means GOMAXPROCS) and returns one Outcome per experiment, in input
// order. Cancelling ctx stops dispatch: experiments not yet started get
// Err = ctx.Err(), while in-flight ones run to completion so their
// results remain usable.
func Run(ctx context.Context, exps []core.Experiment, workers int) []Outcome {
	out := make([]Outcome, len(exps))
	if len(exps) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					out[i] = Outcome{Err: err}
					continue
				}
				out[i] = runOne(exps[i])
			}
		}()
	}

	next := 0
dispatch:
	for ; next < len(exps); next++ {
		select {
		case idx <- next:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	for i := next; i < len(exps); i++ {
		out[i] = Outcome{Err: ctx.Err()}
	}
	wg.Wait()
	return out
}

// runOne executes a single experiment, converting a panic into an error
// so one bad run cannot take down the rest of the batch.
func runOne(e core.Experiment) (o Outcome) {
	defer func() {
		if r := recover(); r != nil {
			o.Err = fmt.Errorf("runner: experiment %q panicked: %v\n%s", e.Name, r, debug.Stack())
		}
	}()
	o.Result = runExperiment(e)
	return o
}

// Results unwraps a batch into plain results, returning the first error
// encountered (with its experiment index) if any run failed.
func Results(outs []Outcome) ([]core.Result, error) {
	rs := make([]core.Result, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, fmt.Errorf("experiment %d: %w", i, o.Err)
		}
		rs[i] = o.Result
	}
	return rs, nil
}
