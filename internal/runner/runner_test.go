package runner

import (
	"context"
	"errors"
	"strings"
	"testing"

	"piranha/internal/core"
)

// smallExps returns a mixed sweep of genuinely distinct configurations,
// small enough to run many times in a unit test.
func smallExps() []core.Experiment {
	var exps []core.Experiment
	for _, n := range []int{1, 2, 4} {
		exps = append(exps, core.Experiment{
			Name:      "p",
			Sys:       core.SystemConfig{Chips: 1, Chip: core.PiranhaChip(n)},
			Work:      core.WorkloadSpec{Kind: core.OLTP},
			WarmTx:    10,
			MeasureTx: 20,
		})
	}
	exps = append(exps, core.Experiment{
		Name:      "ooo",
		Sys:       core.SystemConfig{Chips: 1, Chip: core.OOOChip()},
		Work:      core.WorkloadSpec{Kind: core.DSS},
		WarmTx:    10,
		MeasureTx: 20,
	})
	return exps
}

// TestParallelMatchesSerial is the core determinism guarantee: a batch
// run through the pool yields exactly the results a serial loop yields,
// in input order.
func TestParallelMatchesSerial(t *testing.T) {
	exps := smallExps()
	want := make([]core.Result, len(exps))
	for i, e := range exps {
		want[i] = core.Run(e)
	}
	for _, workers := range []int{0, 1, 2, 8} {
		outs := Run(context.Background(), exps, workers)
		got, err := Results(outs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d differs:\n got %+v\nwant %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	if outs := Run(context.Background(), nil, 4); len(outs) != 0 {
		t.Fatalf("empty batch returned %d outcomes", len(outs))
	}
}

// TestPanicCapture substitutes a work function that panics on one
// experiment: the batch must survive, the failing slot must carry the
// panic as an error, and the rest must complete normally.
func TestPanicCapture(t *testing.T) {
	orig := runExperiment
	defer func() { runExperiment = orig }()
	runExperiment = func(e core.Experiment) core.Result {
		if e.Name == "bad" {
			panic("invariant violated")
		}
		return core.Result{Name: e.Name}
	}
	exps := []core.Experiment{{Name: "a"}, {Name: "bad"}, {Name: "c"}}
	outs := Run(context.Background(), exps, 2)
	if outs[0].Err != nil || outs[0].Result.Name != "a" {
		t.Fatalf("outcome 0 corrupted: %+v", outs[0])
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "invariant violated") {
		t.Fatalf("panic not captured: %+v", outs[1].Err)
	}
	if outs[2].Err != nil || outs[2].Result.Name != "c" {
		t.Fatalf("outcome 2 corrupted: %+v", outs[2])
	}
	if _, err := Results(outs); err == nil || !strings.Contains(err.Error(), "experiment 1") {
		t.Fatalf("Results did not surface the failing index: %v", err)
	}
}

// TestContextCancellation cancels during the first experiment: completed
// work keeps its result, everything not yet started reports ctx.Err().
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	orig := runExperiment
	defer func() { runExperiment = orig }()
	runExperiment = func(e core.Experiment) core.Result {
		if e.Name == "first" {
			cancel()
		}
		return core.Result{Name: e.Name}
	}
	exps := []core.Experiment{{Name: "first"}, {Name: "b"}, {Name: "c"}, {Name: "d"}}
	outs := Run(ctx, exps, 1)
	if outs[0].Err != nil || outs[0].Result.Name != "first" {
		t.Fatalf("in-flight experiment did not complete: %+v", outs[0])
	}
	for i := 1; i < len(outs); i++ {
		if !errors.Is(outs[i].Err, context.Canceled) {
			t.Fatalf("outcome %d after cancel: %+v", i, outs[i])
		}
	}
}

// TestPreCancelled verifies a batch submitted with an already-cancelled
// context does no work at all.
func TestPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	orig := runExperiment
	defer func() { runExperiment = orig }()
	ran := false
	runExperiment = func(e core.Experiment) core.Result {
		ran = true
		return core.Result{}
	}
	outs := Run(ctx, smallExps(), 4)
	if ran {
		t.Fatal("work ran despite pre-cancelled context")
	}
	for i, o := range outs {
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("outcome %d: %+v", i, o)
		}
	}
}
