package kernel

import (
	"testing"

	"piranha/internal/cpu"
	"piranha/internal/sim"
)

// seqStream replays a fixed op sequence, tracking what it emitted so
// tests can reconcile kernel accounting against it exactly.
type seqStream struct {
	ops          []cpu.Op
	i            int
	computeInstr uint64
}

func (s *seqStream) Next(_ *sim.RNG) cpu.Op {
	op := s.ops[s.i%len(s.ops)]
	s.i++
	if op.Kind == cpu.KCompute {
		s.computeInstr += uint64(op.N)
	}
	return op
}

func newRigCfg(nCPU int, cfg Config) (*sim.Engine, *Kernel) {
	eng := sim.NewEngine()
	var cores []*cpu.Core
	for i := 0; i < nCPU; i++ {
		cores = append(cores, cpu.New(i, cpu.InOrder500(), flatMem{}))
	}
	return eng, New(eng, cores, cfg)
}

// TestIdleAccountingExact pins the idle→runnable transition: with a
// zero context-switch cost, a single process blocking on I/O of
// duration D idles the CPU for exactly D per transaction, charged to
// both IdleTime and the core's Other bucket.
func TestIdleAccountingExact(t *testing.T) {
	const ioDelay = 10 * sim.Microsecond
	const rounds = 5
	_, k := newRigCfg(1, Config{CtxSwitchInstr: 0, Quantum: 500 * sim.Nanosecond})
	s := &seqStream{ops: []cpu.Op{
		{Kind: cpu.KCompute, N: 1000},
		{Kind: cpu.KIO, IODelay: ioDelay},
		{Kind: cpu.KTxMark},
	}}
	k.Spawn(0, s, 1)
	k.RunTx(rounds)
	want := sim.Time(rounds) * ioDelay
	if k.IdleTime[0] != want {
		t.Errorf("IdleTime = %d ps, want exactly %d ps (%d I/O blocks of %d)", k.IdleTime[0], want, rounds, ioDelay)
	}
	if other := k.Cores()[0].Breakdown.Other; other != want {
		t.Errorf("Breakdown.Other = %d ps, want %d ps (idle must land in Other)", other, want)
	}
}

// TestContextSwitchInstructionAccounting reconciles the cores' executed
// instruction count against the streams' emitted compute work plus the
// configured per-switch charge: no instructions may appear from or
// vanish into the scheduler.
func TestContextSwitchInstructionAccounting(t *testing.T) {
	cfg := DefaultConfig()
	_, k := newRigCfg(1, cfg)
	mk := func() *seqStream {
		return &seqStream{ops: []cpu.Op{
			{Kind: cpu.KCompute, N: 1000},
			{Kind: cpu.KIO, IODelay: 20 * sim.Microsecond},
			{Kind: cpu.KTxMark},
		}}
	}
	sA, sB := mk(), mk()
	k.Spawn(0, sA, 1)
	k.Spawn(0, sB, 2)
	k.RunTx(10)
	if k.Switches == 0 {
		t.Fatal("no context switches recorded")
	}
	got := k.Cores()[0].Instructions
	want := sA.computeInstr + sB.computeInstr + k.Switches*uint64(cfg.CtxSwitchInstr)
	if got != want {
		t.Errorf("core executed %d instructions, want %d (streams emitted %d + %d switches x %d)",
			got, want, sA.computeInstr+sB.computeInstr, k.Switches, cfg.CtxSwitchInstr)
	}
}

// TestIdleCPUNeverRunnable pins the terminal-idle branch: a CPU whose
// processes can never wake (none spawned) must park without scheduling
// events forever, letting the engine drain, and accrue no idle time.
func TestIdleCPUNeverRunnable(t *testing.T) {
	_, k := newRigCfg(2, DefaultConfig())
	k.Spawn(0, &seqStream{ops: []cpu.Op{
		{Kind: cpu.KCompute, N: 1000},
		{Kind: cpu.KTxMark},
	}}, 1)
	elapsed := k.RunTx(5)
	if k.Tx < 5 {
		t.Fatalf("tx=%d: idle CPU 1 stalled the run", k.Tx)
	}
	if elapsed <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if k.IdleTime[1] != 0 {
		t.Errorf("CPU 1 accrued IdleTime %d with no processes; terminal idle must not be charged", k.IdleTime[1])
	}
}

// TestYieldSingleProcess pins yield with a ready queue of one: the
// rotation must come back to the same process (not deadlock or skip),
// still charging the switch.
func TestYieldSingleProcess(t *testing.T) {
	_, k := newRigCfg(1, DefaultConfig())
	k.Spawn(0, &seqStream{ops: []cpu.Op{
		{Kind: cpu.KCompute, N: 500},
		{Kind: cpu.KYield},
		{Kind: cpu.KTxMark},
	}}, 1)
	k.RunTx(5)
	if k.Tx < 5 {
		t.Fatalf("tx=%d: yield with one process stalled", k.Tx)
	}
	if k.Switches < 5 {
		t.Errorf("Switches = %d, want one per yield (>= 5)", k.Switches)
	}
}

// TestSchedulerDeterminism runs the same multiprogrammed workload twice
// and requires bit-identical accounting — the property every reported
// figure rests on.
func TestSchedulerDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64, uint64, sim.Time, uint64) {
		_, k := newRigCfg(2, DefaultConfig())
		for c := 0; c < 2; c++ {
			for i := 0; i < 4; i++ {
				k.Spawn(c, &loopStream{n: 700, perTx: 3, io: 15 * sim.Microsecond}, uint64(c*4+i))
			}
		}
		elapsed := k.RunTx(40)
		var instr uint64
		for _, core := range k.Cores() {
			instr += core.Instructions
		}
		return elapsed, k.Tx, k.Switches, k.IdleTime[0] + k.IdleTime[1], instr
	}
	e1, tx1, sw1, idle1, in1 := run()
	e2, tx2, sw2, idle2, in2 := run()
	if e1 != e2 || tx1 != tx2 || sw1 != sw2 || idle1 != idle2 || in1 != in2 {
		t.Errorf("scheduler not deterministic: (%d,%d,%d,%d,%d) vs (%d,%d,%d,%d,%d)",
			e1, tx1, sw1, idle1, in1, e2, tx2, sw2, idle2, in2)
	}
}
