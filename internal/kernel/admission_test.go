package kernel

import (
	"testing"

	"piranha/internal/sim"
	"piranha/internal/stats"
)

// openRig builds a 1-tenant open-loop rig: nCPU CPUs, procs open
// processes per CPU, the given admission capacity.
func openRig(nCPU, procs, capacity int) (*sim.Engine, *Kernel) {
	eng, k := newRig(nCPU)
	k.SetAdmission(NewAdmission(1, capacity))
	for c := 0; c < nCPU; c++ {
		for i := 0; i < procs; i++ {
			k.SpawnOpen(c, &loopStream{n: 1000, perTx: 4}, uint64(c*procs+i+1), 0)
		}
	}
	return eng, k
}

// offer schedules one Arrive event per timestamp.
func offer(eng *sim.Engine, k *Kernel, times ...sim.Time) {
	for _, at := range times {
		eng.Schedule(at, func() { k.Arrive(0) })
	}
}

func TestAdmissionBasicOpenLoop(t *testing.T) {
	eng, k := openRig(1, 2, 0)
	// Arrivals far apart: no queueing, every latency is pure service
	// time (~5 compute ops × 1000 instr @ 500 MHz = 10 µs).
	offer(eng, k, 1*sim.Microsecond, 30*sim.Microsecond, 60*sim.Microsecond, 90*sim.Microsecond)
	k.RunTx(4)
	a := k.Admission()
	if a.Stats.Arrivals != 4 || a.Stats.Admitted != 4 || a.Stats.Shed != 0 || a.Stats.Completed != 4 {
		t.Fatalf("stats: %+v", a.Stats)
	}
	if k.Tx != 4 {
		t.Fatalf("tx=%d", k.Tx)
	}
	if min := a.Lat.Min(); min < 9*int64(sim.Microsecond) || min > 15*int64(sim.Microsecond) {
		t.Fatalf("unqueued latency %d ps outside service-time window", min)
	}
	if a.Stats.MaxDepth != 0 {
		t.Fatalf("depth should stay 0 with spaced arrivals: %+v", a.Stats)
	}
}

func TestAdmissionQueueingRaisesLatency(t *testing.T) {
	// One process, burst of arrivals at t≈0: each waits for all previous
	// transactions, so latencies form a staircase and depth peaks.
	eng, k := openRig(1, 1, 0)
	offer(eng, k, 1, 2, 3, 4, 5, 6)
	k.RunTx(6)
	a := k.Admission()
	if a.Stats.Completed != 6 {
		t.Fatalf("completed %d", a.Stats.Completed)
	}
	if a.Stats.MaxDepth != 5 {
		t.Fatalf("max depth %d, want 5 (one running, five queued)", a.Stats.MaxDepth)
	}
	if a.Lat.Max() < 5*a.Lat.Min() {
		t.Fatalf("queueing staircase missing: min %d max %d", a.Lat.Min(), a.Lat.Max())
	}
	if a.Stats.DepthIntegral == 0 {
		t.Fatal("depth integral not accumulated")
	}
}

func TestAdmissionShedAtCapacity(t *testing.T) {
	eng, k := openRig(1, 1, 2)
	offer(eng, k, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	k.RunTx(3)
	a := k.Admission()
	// First arrival grabs the lone waiter, the next two queue (capacity
	// 2), the remaining seven are shed before any transaction finishes.
	if a.Stats.Arrivals != 10 || a.Stats.Admitted != 3 || a.Stats.Shed != 7 {
		t.Fatalf("stats: %+v", a.Stats)
	}
	if a.Stats.Admitted+a.Stats.Shed != a.Stats.Arrivals {
		t.Fatalf("arrival conservation violated: %+v", a.Stats)
	}
	if k.Tx != 3 {
		t.Fatalf("tx=%d, shed transactions must never execute", k.Tx)
	}
}

func TestAdmissionIdleCPURevives(t *testing.T) {
	// A long quiet gap parks every process with no pending wakeups — the
	// CPU loop goes fully dormant — and a late arrival must revive it.
	eng, k := openRig(1, 2, 0)
	offer(eng, k, 1*sim.Microsecond, 5*sim.Millisecond)
	k.RunTx(2)
	a := k.Admission()
	if a.Stats.Completed != 2 {
		t.Fatalf("late arrival not served: %+v", a.Stats)
	}
	if eng.Now() < 5*sim.Millisecond {
		t.Fatalf("run ended at %d before the late arrival", eng.Now())
	}
}

func TestAdmissionSeriesRows(t *testing.T) {
	eng, k := openRig(1, 1, 1)
	s := stats.NewSeries(10 * sim.Microsecond)
	k.Admission().AttachSeries(s)
	offer(eng, k, 1, 2, 3, 15*sim.Microsecond)
	k.RunTx(3)
	var arr, adm, shed uint64
	for _, b := range s.Bins {
		arr += b.Arrivals
		adm += b.Admitted
		shed += b.Shed
	}
	if arr != 4 || adm != 3 || shed != 1 {
		t.Fatalf("series rows arrivals=%d admitted=%d shed=%d", arr, adm, shed)
	}
}

func TestAdmissionMultiTenant(t *testing.T) {
	// Two tenants with separate pools: tenant 1's arrivals never run on
	// tenant 0's processes.
	eng, k := newRig(1)
	k.SetAdmission(NewAdmission(2, 0))
	s0 := &loopStream{n: 1000, perTx: 4}
	s1 := &loopStream{n: 1000, perTx: 4}
	k.SpawnOpen(0, s0, 1, 0)
	k.SpawnOpen(0, s1, 2, 1)
	eng.Schedule(1, func() { k.Arrive(0) })
	eng.Schedule(2, func() { k.Arrive(0) })
	eng.Schedule(3, func() { k.Arrive(1) })
	k.RunTx(3)
	a := k.Admission()
	if a.Stats.Completed != 3 {
		t.Fatalf("completed %d", a.Stats.Completed)
	}
	// s0 ran 2 transactions (10 ops + marks), s1 ran 1.
	if s0.counter <= s1.counter {
		t.Fatalf("tenant pools not isolated: s0=%d s1=%d ops", s0.counter, s1.counter)
	}
}

func TestAdmissionResetStatsKeepsQueue(t *testing.T) {
	eng, k := openRig(1, 1, 0)
	offer(eng, k, 1, 2, 3, 4)
	k.RunTx(1)
	a := k.Admission()
	queued := a.Depth()
	if queued == 0 {
		t.Fatal("expected queued transactions at reset point")
	}
	a.ResetStats(eng.Now())
	if a.Stats.Arrivals != 0 || a.Stats.Completed != 0 || a.Lat.Count() != 0 {
		t.Fatalf("reset left counters: %+v", a.Stats)
	}
	if a.Depth() != queued {
		t.Fatal("reset disturbed queue contents")
	}
	if a.Stats.MaxDepth != queued {
		t.Fatalf("post-reset MaxDepth %d, want carried depth %d", a.Stats.MaxDepth, queued)
	}
	k.RunTx(4)
	if a.Stats.Completed != 3 {
		t.Fatalf("carried transactions not completed: %+v", a.Stats)
	}
}

func TestAdmissionRetrySucceedsAfterBackoff(t *testing.T) {
	// Capacity 1, one server: the third arrival finds the queue full,
	// backs off, and is admitted on re-offer once the queue drains. Its
	// latency keeps the original arrival timestamp, so the backoff is
	// visible in the tail instead of hidden.
	eng, k := openRig(1, 1, 1)
	a := k.Admission()
	a.Retry = RetryPolicy{Budget: 3, Backoff: 20 * sim.Microsecond}
	offer(eng, k, 1, 2, 3)
	k.RunTx(3)
	if a.Stats.Shed != 0 || a.Stats.Completed != 3 {
		t.Fatalf("retry did not rescue the rejected arrival: %+v", a.Stats)
	}
	if a.Stats.Retried == 0 {
		t.Fatalf("no re-offers recorded: %+v", a.Stats)
	}
	if a.Stats.Arrivals != 3 {
		t.Fatalf("re-offers must not count as arrivals: %+v", a.Stats)
	}
	// The retried transaction waited out the 20 µs backoff, so the max
	// latency must exceed it.
	if a.Lat.Max() < 20*int64(sim.Microsecond) {
		t.Fatalf("backoff missing from retried latency: max %d ps", a.Lat.Max())
	}
}

func TestAdmissionRetryExhaustionOrdering(t *testing.T) {
	// Six arrivals hit a capacity-1 queue within 6 ps; service takes
	// ~10 µs, so with backoff 1 µs × factor 2 every rejected arrival
	// burns its whole budget while the queue is still full. The exact
	// counter values pin the deterministic exhaustion ordering.
	run := func() AdmissionStats {
		eng, k := openRig(1, 1, 1)
		a := k.Admission()
		a.Retry = RetryPolicy{Budget: 2, Backoff: 1 * sim.Microsecond, Factor: 2}
		offer(eng, k, 1, 2, 3, 4, 5, 6)
		k.RunTx(2)
		return a.Stats
	}
	s := run()
	if s.Arrivals != 6 || s.Admitted != 2 || s.Shed != 4 {
		t.Fatalf("stats: %+v", s)
	}
	if s.RetryExhausted != 4 {
		t.Fatalf("every shed should be budget exhaustion: %+v", s)
	}
	if s.Retried != 8 {
		t.Fatalf("4 rejected arrivals x 2 re-offers = 8, got %+v", s)
	}
	if s.Admitted+s.Shed != s.Arrivals {
		t.Fatalf("arrival conservation violated: %+v", s)
	}
	if s2 := run(); s != s2 {
		t.Fatalf("retry exhaustion not deterministic:\n%+v\n%+v", s, s2)
	}
}

func TestAdmissionResetStatsWindowCarryUnderShed(t *testing.T) {
	// A shed burst before the warm/measure boundary must not leak into
	// the measured window: ResetStats re-anchors the SLO accountant's
	// window 0 at the boundary and zeroes its counts, while the queued
	// transactions (and the degraded MaxDepth baseline) carry over.
	eng, k := openRig(1, 1, 2)
	a := k.Admission()
	slo := stats.NewSLO(1*sim.Microsecond, 10*sim.Microsecond, 0.1)
	a.AttachSLO(slo)
	offer(eng, k, 1, 2, 3, 4, 5, 6)
	k.RunTx(1)
	if a.Stats.Shed == 0 || slo.Shed == 0 {
		t.Fatalf("warm burst did not shed: %+v slo=%+v", a.Stats, slo)
	}
	boundary := eng.Now()
	a.ResetStats(boundary)
	if slo.Completed != 0 || slo.Shed != 0 || len(slo.Windows) != 0 {
		t.Fatalf("reset left SLO counts: %+v", slo)
	}
	if slo.Origin != boundary {
		t.Fatalf("SLO origin %d not re-anchored at boundary %d", slo.Origin, boundary)
	}
	if a.Depth() == 0 {
		t.Fatal("reset dropped carried queue contents")
	}
	k.RunTx(3)
	if a.Stats.Completed != 2 {
		t.Fatalf("carried transactions lost: %+v", a.Stats)
	}
	if slo.Completed != 2 {
		t.Fatalf("post-reset completions missed the SLO window: %+v", slo)
	}
	// Completions land in windows measured from the new origin — the
	// two carried transactions finish ~10 µs apart, so they occupy
	// nearby windows instead of piling into a stale pre-reset bucket.
	var winSum uint64
	for _, w := range slo.Windows {
		winSum += w.Completed
	}
	if winSum != 2 || len(slo.Windows) > 4 {
		t.Fatalf("window carry broken: %d windows %+v", len(slo.Windows), slo.Windows)
	}
}

func TestAdmissionDeterministicRerun(t *testing.T) {
	run := func() (AdmissionStats, stats.Quantile, sim.Time) {
		eng, k := openRig(2, 2, 4)
		r := sim.NewRNG(77)
		at := sim.Time(0)
		var times []sim.Time
		for i := 0; i < 200; i++ {
			at += sim.Time(1 + r.Intn(int(8*sim.Microsecond)))
			times = append(times, at)
		}
		offer(eng, k, times...)
		k.RunTx(100)
		a := k.Admission()
		a.Finalize(eng.Now())
		return a.Stats, *a.Lat, eng.Now()
	}
	s1, l1, t1 := run()
	s2, l2, t2 := run()
	if s1 != s2 || l1 != l2 || t1 != t2 {
		t.Fatalf("rerun diverged:\n%+v\n%+v", s1, s2)
	}
	if s1.Shed == 0 || s1.Completed == 0 {
		t.Fatalf("scenario not exercising shed+completion: %+v", s1)
	}
}
