package kernel

import (
	"testing"

	"piranha/internal/cache"
	"piranha/internal/cpu"
	"piranha/internal/l2"
	"piranha/internal/sim"
)

// flatMem satisfies cpu.MemSystem with instant L1 hits.
type flatMem struct{}

func (flatMem) Access(now sim.Time, _ int, _ cpu.AccessKind, _ cache.Addr) (sim.Time, l2.Svc) {
	return now, l2.SvcL1
}

// loopStream emits compute then a tx mark, optionally with I/O.
type loopStream struct {
	n       int32
	io      sim.Time
	perTx   int
	counter int
}

func (s *loopStream) Next(_ *sim.RNG) cpu.Op {
	s.counter++
	if s.io > 0 && s.counter%(s.perTx+2) == s.perTx+1 {
		return cpu.Op{Kind: cpu.KIO, IODelay: s.io}
	}
	if s.counter%(s.perTx+2) == 0 {
		return cpu.Op{Kind: cpu.KTxMark}
	}
	return cpu.Op{Kind: cpu.KCompute, N: s.n}
}

func newRig(nCPU int) (*sim.Engine, *Kernel) {
	eng := sim.NewEngine()
	var cores []*cpu.Core
	for i := 0; i < nCPU; i++ {
		cores = append(cores, cpu.New(i, cpu.InOrder500(), flatMem{}))
	}
	return eng, New(eng, cores, DefaultConfig())
}

func TestSingleProcessTx(t *testing.T) {
	eng, k := newRig(1)
	k.Spawn(0, &loopStream{n: 1000, perTx: 4}, 1)
	elapsed := k.RunTx(10)
	if k.Tx < 10 {
		t.Fatalf("tx=%d", k.Tx)
	}
	// 10 tx x 5 compute ops x 1000 instr @ 500 MHz = 100 us.
	if elapsed < 95*sim.Microsecond || elapsed > 110*sim.Microsecond {
		t.Fatalf("elapsed %d us", elapsed/sim.Microsecond)
	}
	_ = eng
}

func TestIOBlocksAndOverlaps(t *testing.T) {
	// One process with I/O: the CPU idles during I/O. Eight processes:
	// the I/O hides behind the other processes' compute.
	run := func(nproc int) (sim.Time, sim.Time) {
		_, k := newRig(1)
		for i := 0; i < nproc; i++ {
			k.Spawn(0, &loopStream{n: 2000, perTx: 4, io: 100 * sim.Microsecond}, uint64(i))
		}
		elapsed := k.RunTx(uint64(4 * nproc))
		return elapsed, k.IdleTime[0]
	}
	e1, idle1 := run(1)
	e8, idle8 := run(8)
	if idle1 == 0 {
		t.Fatal("single process should idle during I/O")
	}
	perTx1 := float64(e1) / 4
	perTx8 := float64(e8) / 32
	if perTx8 > perTx1/2 {
		t.Fatalf("multiprogramming did not hide I/O: %v vs %v per tx", perTx8, perTx1)
	}
	if idle8 >= idle1 {
		t.Fatalf("idle with 8 procs (%d) should shrink vs 1 proc (%d)", idle8, idle1)
	}
}

func TestContextSwitchesCharged(t *testing.T) {
	_, k := newRig(1)
	k.Spawn(0, &loopStream{n: 100, perTx: 2, io: 10 * sim.Microsecond}, 1)
	k.Spawn(0, &loopStream{n: 100, perTx: 2, io: 10 * sim.Microsecond}, 2)
	k.RunTx(20)
	if k.Switches == 0 {
		t.Fatal("no context switches recorded")
	}
}

func TestMultiCPUIndependence(t *testing.T) {
	_, k := newRig(4)
	for c := 0; c < 4; c++ {
		k.Spawn(c, &loopStream{n: 1000, perTx: 4}, uint64(c))
	}
	elapsed := k.RunTx(40)
	// 4 CPUs each committing ~10 tx in parallel: roughly the time one
	// CPU needs for 10, not 40.
	if elapsed > 120*sim.Microsecond {
		t.Fatalf("no parallel speedup: %d us", elapsed/sim.Microsecond)
	}
	total := uint64(0)
	for _, c := range k.Cores() {
		total += c.Instructions
	}
	if total < 160000 {
		t.Fatalf("instructions %d", total)
	}
}

func TestYieldRotatesProcesses(t *testing.T) {
	_, k := newRig(1)
	sA := &yieldStream{}
	sB := &yieldStream{}
	k.Spawn(0, sA, 1)
	k.Spawn(0, sB, 2)
	k.RunTx(10)
	if sA.ran == 0 || sB.ran == 0 {
		t.Fatalf("yield starved a process: %d/%d", sA.ran, sB.ran)
	}
}

type yieldStream struct{ ran int }

func (s *yieldStream) Next(_ *sim.RNG) cpu.Op {
	s.ran++
	switch s.ran % 3 {
	case 0:
		return cpu.Op{Kind: cpu.KYield}
	case 1:
		return cpu.Op{Kind: cpu.KCompute, N: 500}
	default:
		return cpu.Op{Kind: cpu.KTxMark}
	}
}
