// Package kernel is the lightweight operating-system model the workload
// runs under (paper §3.1/3.2: Oracle on Tru64 Unix, 8 server processes
// per CPU for OLTP to hide I/O latency, 4 per CPU for DSS; the kernel
// component is ~25% of OLTP execution time and is generated as part of
// the workload's op stream).
//
// The kernel pins processes to CPUs (Oracle dedicated server processes),
// runs each CPU's ready queue round-robin, blocks processes on I/O ops
// (log writes, reads) with an event-driven wakeup, and charges a
// context-switch instruction cost on every switch. CPU idle time (nothing
// runnable) lands in the Breakdown's Other bucket.
package kernel

import (
	"piranha/internal/cpu"
	"piranha/internal/sim"
	"piranha/internal/trace"
)

// Stream produces a process's architectural op stream.
type Stream interface {
	Next(r *sim.RNG) cpu.Op
}

// Config tunes the kernel model.
type Config struct {
	// CtxSwitchInstr is the instruction cost charged per context switch
	// (scheduler + TLB/state handling; a few thousand on Alpha).
	CtxSwitchInstr int32
	// Quantum bounds how far one CPU may run ahead of the event loop
	// before yielding, which bounds cross-CPU timing skew.
	Quantum sim.Time
}

// DefaultConfig returns the standard kernel parameters.
func DefaultConfig() Config {
	return Config{CtxSwitchInstr: 2000, Quantum: 500 * sim.Nanosecond}
}

// Process is one schedulable entity pinned to a CPU.
type Process struct {
	ID     int
	CPU    int
	Stream Stream

	rng    *sim.RNG
	ready  bool
	wakeAt sim.Time
	// wakeGen invalidates in-flight wake events after a migration: each
	// scheduled wake captures the generation and fires only if it still
	// matches. It only ever changes when FailCPUs moves the process, so
	// fault-free runs are bit-for-bit unaffected.
	wakeGen uint64

	// Open-loop fields (see admission.go). An open process executes one
	// admitted transaction at a time: between transactions it parks in
	// its tenant's waiter FIFO (waitAdm) instead of looping.
	open     bool
	tenant   int
	waitAdm  bool
	txArrive sim.Time // arrival timestamp of the transaction being run
}

// Kernel drives the cores.
type Kernel struct {
	cfg   Config
	eng   *sim.Engine
	cores []*cpu.Core
	procs [][]*Process // per CPU
	cur   []int        // round-robin position per CPU
	live  []bool       // per-CPU loop scheduled
	dead  []bool       // fail-stopped CPUs (nil until a failure)

	tr  *trace.Tracer
	adm *Admission // nil in closed-loop runs

	// Tx counts committed transactions (KTxMark ops).
	Tx uint64
	// Switches counts context switches.
	Switches uint64
	// IdleTime per CPU.
	IdleTime []sim.Time
	nextID   int
}

// New builds a kernel over an engine and a set of cores.
func New(eng *sim.Engine, cores []*cpu.Core, cfg Config) *Kernel {
	k := &Kernel{
		cfg:      cfg,
		eng:      eng,
		cores:    cores,
		procs:    make([][]*Process, len(cores)),
		cur:      make([]int, len(cores)),
		live:     make([]bool, len(cores)),
		IdleTime: make([]sim.Time, len(cores)),
	}
	return k
}

// SetTracer attaches a tracer (nil disables) for idle spans and
// context-switch instants.
func (k *Kernel) SetTracer(tr *trace.Tracer) { k.tr = tr }

// Spawn creates a process pinned to a CPU.
func (k *Kernel) Spawn(cpuID int, s Stream, seed uint64) *Process {
	k.nextID++
	p := &Process{ID: k.nextID, CPU: cpuID, Stream: s, rng: sim.NewRNG(seed), ready: true}
	k.procs[cpuID] = append(k.procs[cpuID], p)
	k.kick(cpuID)
	return p
}

// kick (re)schedules a CPU's dispatch loop.
func (k *Kernel) kick(cpuID int) {
	if k.live[cpuID] || (k.dead != nil && k.dead[cpuID]) {
		return
	}
	k.live[cpuID] = true
	k.eng.Schedule(k.eng.Now(), func() { k.dispatch(cpuID) })
}

// pick returns the next ready process on a CPU, or nil.
func (k *Kernel) pick(cpuID int) *Process {
	ps := k.procs[cpuID]
	for i := 0; i < len(ps); i++ {
		p := ps[(k.cur[cpuID]+i)%len(ps)]
		if p.ready {
			k.cur[cpuID] = (k.cur[cpuID] + i) % len(ps)
			return p
		}
	}
	return nil
}

// dispatch runs one CPU for up to a quantum of simulated time.
func (k *Kernel) dispatch(cpuID int) {
	k.live[cpuID] = false
	if k.dead != nil && k.dead[cpuID] {
		return // fail-stopped: stale continuations die here
	}
	core := k.cores[cpuID]
	now := k.eng.Now()
	deadline := now + k.cfg.Quantum

	p := k.pick(cpuID)
	if p == nil {
		// Idle: sleep until the earliest wakeup, if any. Processes parked
		// on the admission queue have no wakeup time — an arrival kicks
		// the CPU directly — so they must not drag wake to zero here.
		var wake sim.Time
		for _, q := range k.procs[cpuID] {
			if q.waitAdm {
				continue
			}
			if !q.ready && (wake == 0 || q.wakeAt < wake) {
				wake = q.wakeAt
			}
		}
		if wake == 0 {
			return // nothing will run here until an external kick
		}
		if wake < now {
			wake = now
		}
		k.IdleTime[cpuID] += wake - now
		core.Breakdown.Other += wake - now
		k.tr.Span(trace.Kernel, trace.KIdle, core.Node, int16(cpuID), 0, now, wake, 0)
		k.live[cpuID] = true
		k.eng.Schedule(wake, func() {
			k.live[cpuID] = false
			k.wakeSleepers(cpuID, k.eng.Now())
			k.kick(cpuID)
		})
		return
	}

	for now < deadline {
		k.wakeSleepers(cpuID, now)
		op := p.Stream.Next(p.rng)
		switch op.Kind {
		case cpu.KTxMark:
			k.Tx++
			if p.open {
				k.adm.complete(p, now)
				if at, ok := k.adm.take(p.tenant, now); ok {
					// A transaction is already queued: the process rolls
					// straight into it, inheriting its arrival time.
					p.txArrive = at
					break
				}
				// Nothing queued: park in the waiter FIFO until the next
				// arrival for this tenant, yielding the CPU meanwhile.
				p.ready = false
				p.waitAdm = true
				k.adm.wait(p)
				now = k.contextSwitch(core, now)
				next := k.pick(cpuID)
				if next == nil {
					k.eng.Schedule(now, func() { k.dispatch(cpuID) })
					k.live[cpuID] = true
					return
				}
				p = next
			}
		case cpu.KIO:
			p.ready = false
			p.wakeAt = now + op.IODelay
			wakeP, gen := p, p.wakeGen
			k.eng.Schedule(p.wakeAt, func() {
				if wakeP.wakeGen != gen {
					return // migrated since; the new CPU's wake governs
				}
				wakeP.ready = true
				k.kick(wakeP.CPU)
			})
			now = k.contextSwitch(core, now)
			next := k.pick(cpuID)
			if next == nil {
				k.eng.Schedule(now, func() { k.dispatch(cpuID) })
				k.live[cpuID] = true
				return
			}
			p = next
		case cpu.KYield:
			now = k.contextSwitch(core, now)
			k.cur[cpuID] = (k.cur[cpuID] + 1) % len(k.procs[cpuID])
			if np := k.pick(cpuID); np != nil {
				p = np
			}
		default:
			now = core.Exec(now, op)
		}
	}
	k.live[cpuID] = true
	k.eng.Schedule(now, func() {
		k.live[cpuID] = false
		k.dispatch(cpuID)
	})
}

// wakeSleepers marks due processes ready as local time advances within a
// quantum (their engine wake events may still be pending). Admission
// waiters are exempt: they have no due time and only an arrival (via
// Arrive) may unpark them.
func (k *Kernel) wakeSleepers(cpuID int, now sim.Time) {
	for _, q := range k.procs[cpuID] {
		if !q.ready && !q.waitAdm && q.wakeAt <= now {
			q.ready = true
		}
	}
}

// contextSwitch charges the switch cost and counts it.
func (k *Kernel) contextSwitch(core *cpu.Core, now sim.Time) sim.Time {
	k.Switches++
	k.tr.Instant(trace.Kernel, trace.KCtxSwitch, core.Node, int16(core.ID), 0, now, 0)
	return core.Exec(now, cpu.Op{Kind: cpu.KCompute, N: k.cfg.CtxSwitchInstr})
}

// RunTx runs the simulation until target transactions have committed (or
// the event queue drains). It returns the simulated time elapsed.
func (k *Kernel) RunTx(target uint64) sim.Time {
	start := k.eng.Now()
	k.eng.RunWhile(func() bool { return k.Tx < target })
	return k.eng.Now() - start
}

// RunTxDriven is RunTx with the event loop supplied by the caller — the
// intra-parallel epoch scheduler passes its RunWhile here. The condition
// handed to drive reads only kernel state, which lives entirely in the
// timing-model partition, so drive evaluates it with exactly RunTx's
// between-events cadence and the stopping point is bit-identical.
func (k *Kernel) RunTxDriven(target uint64, drive func(cond func() bool)) sim.Time {
	start := k.eng.Now()
	drive(func() bool { return k.Tx < target })
	return k.eng.Now() - start
}

// Cores exposes the kernel's cores (stat collection).
func (k *Kernel) Cores() []*cpu.Core { return k.cores }

// FailCPUs fail-stops the given CPUs: they never dispatch again, and
// every process pinned to them migrates round-robin onto the surviving
// CPUs in deterministic (victim-CPU, process-list) order. A migrated
// process pays the re-dispatch penalty before it becomes runnable on its
// new CPU (restart cost of recovery software rebuilding its context); a
// process parked on the admission queue just moves — the next arrival
// kicks its new CPU. Returns the number of processes migrated.
func (k *Kernel) FailCPUs(cpus []int, penalty sim.Time) int {
	if k.dead == nil {
		k.dead = make([]bool, len(k.cores))
	}
	for _, c := range cpus {
		k.dead[c] = true
	}
	alive := make([]int, 0, len(k.cores))
	for i := range k.cores {
		if !k.dead[i] {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		panic("kernel: fail-stop killed every CPU")
	}
	now := k.eng.Now()
	migrated, rr := 0, 0
	for _, c := range cpus {
		ps := k.procs[c]
		k.procs[c] = nil
		k.cur[c] = 0
		for _, p := range ps {
			t := alive[rr%len(alive)]
			rr++
			p.CPU = t
			p.wakeGen++ // in-flight wake events for the old CPU die
			k.procs[t] = append(k.procs[t], p)
			migrated++
			if p.waitAdm {
				continue
			}
			p.ready = false
			wake := now + penalty
			if p.wakeAt > wake {
				wake = p.wakeAt // still blocked on I/O past the penalty
			}
			p.wakeAt = wake
			wakeP, gen := p, p.wakeGen
			k.eng.Schedule(wake, func() {
				if wakeP.wakeGen != gen {
					return
				}
				wakeP.ready = true
				k.kick(wakeP.CPU)
			})
		}
	}
	return migrated
}

// AliveCPUs returns how many CPUs have not fail-stopped.
func (k *Kernel) AliveCPUs() int {
	if k.dead == nil {
		return len(k.cores)
	}
	n := 0
	for _, d := range k.dead {
		if !d {
			n++
		}
	}
	return n
}

