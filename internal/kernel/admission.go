// Admission queueing: the open-loop half of the kernel model. In
// closed-loop mode every server process always has a next transaction;
// in open-loop mode transactions *arrive* on an external stream and wait
// in a bounded admission queue until a server process of the right
// tenant frees up. The queue is where tail latency is born — past
// saturation, depth (and p99) grows without bound unless the shed
// policy drops the overflow.
package kernel

import (
	"piranha/internal/sim"
	"piranha/internal/stats"
)

// AdmissionStats aggregates one run's admission-queue activity.
type AdmissionStats struct {
	Arrivals  uint64 // transactions offered (first offers; re-offers excluded)
	Admitted  uint64 // accepted (ran or will run)
	Shed      uint64 // dropped for good, never executed
	Completed uint64 // finished (latency recorded)
	MaxDepth  int    // peak queued (not yet running) transactions
	// DepthIntegral is ∑ depth·dt over the run; divided by elapsed time
	// it yields the time-weighted mean queue depth.
	DepthIntegral sim.Time
	// Retried counts re-offers scheduled by the retry policy (one
	// arrival can contribute several).
	Retried uint64
	// RetryExhausted counts transactions shed only after burning their
	// whole retry budget (a subset of Shed).
	RetryExhausted uint64
}

// RetryPolicy is the admission queue's shed/retry policy: an arrival
// that finds the queue full is re-offered after a deterministic
// exponential backoff — Backoff·Factor^attempt, no jitter, so reruns
// replay the identical schedule — until Budget re-offers have failed,
// at which point it is shed for good. The zero value disables retry
// (immediate shed, the pre-existing behavior).
type RetryPolicy struct {
	// Budget is the maximum re-offers per arrival; 0 disables retry.
	Budget int
	// Backoff is the delay before the first re-offer.
	Backoff sim.Time
	// Factor multiplies the backoff per attempt (≤ 1 means 2).
	Factor int
}

// delay returns the backoff before re-offer number attempt (0-based).
func (rp RetryPolicy) delay(attempt int) sim.Time {
	b := rp.Backoff
	if b <= 0 {
		b = 1 * sim.Microsecond
	}
	f := rp.Factor
	if f <= 1 {
		f = 2
	}
	for i := 0; i < attempt; i++ {
		b *= sim.Time(f)
	}
	return b
}

// Admission is the kernel's admission queue: per-tenant ticket FIFOs
// (arrived transactions waiting for a process) and per-tenant waiter
// FIFOs (idle open-loop processes waiting for a transaction). At most
// one of the two is non-empty per tenant at any instant.
type Admission struct {
	// Capacity bounds the total queued (waiting, not running)
	// transactions across tenants; 0 means unbounded. Arrivals past the
	// bound are shed: counted, never executed.
	Capacity int
	// Lat records arrival→completion latency (queueing + service) in
	// picoseconds.
	Lat *stats.Quantile
	// Stats aggregates counters; reset at the warm/measure boundary.
	Stats AdmissionStats
	// Retry is the shed/retry policy; the zero value sheds immediately.
	Retry RetryPolicy

	series   *stats.Series
	slo      *stats.SLO
	queues   []ticketQueue
	waiters  [][]*Process
	depth    int
	lastTick sim.Time
	baseCap  int
}

// ticketQueue is a FIFO of arrival timestamps with an amortized-O(1)
// head index.
type ticketQueue struct {
	arrive []sim.Time
	head   int
}

func (q *ticketQueue) empty() bool { return q.head >= len(q.arrive) }

func (q *ticketQueue) push(at sim.Time) { q.arrive = append(q.arrive, at) }

func (q *ticketQueue) pop() sim.Time {
	at := q.arrive[q.head]
	q.head++
	if q.head == len(q.arrive) {
		q.arrive = q.arrive[:0]
		q.head = 0
	}
	return at
}

// NewAdmission builds an admission queue for the given tenant count
// (≥ 1) and capacity bound (0 = unbounded).
func NewAdmission(tenants, capacity int) *Admission {
	if tenants < 1 {
		tenants = 1
	}
	return &Admission{
		Capacity: capacity,
		Lat:      stats.NewQuantile("arrival→completion latency (ps)"),
		queues:   make([]ticketQueue, tenants),
		waiters:  make([][]*Process, tenants),
		baseCap:  capacity,
	}
}

// AttachSeries routes per-interval arrival/admitted/shed counts into an
// interval sampler (nil detaches).
func (a *Admission) AttachSeries(s *stats.Series) { a.series = s }

// AttachSLO routes completions and final sheds into a per-window SLO
// accountant (nil detaches).
func (a *Admission) AttachSLO(s *stats.SLO) { a.slo = s }

// SLO returns the attached SLO accountant (nil when none).
func (a *Admission) SLO() *stats.SLO { return a.slo }

// Degrade shrinks a bounded queue's capacity to frac of its configured
// value — the alive-CPU fraction after a fail-stop — never below 1, so
// the system keeps serving in degraded mode instead of queueing work it
// has lost the compute to run. Unbounded queues (capacity 0) stay
// unbounded. Fractions are applied to the original capacity, so
// successive failures compose without compounding rounding.
func (a *Admission) Degrade(frac float64) {
	if a == nil || a.baseCap == 0 {
		return
	}
	c := int(float64(a.baseCap) * frac)
	if c < 1 {
		c = 1
	}
	a.Capacity = c
}

// Depth returns the current queued-transaction count.
func (a *Admission) Depth() int { return a.depth }

// tick closes the depth integral up to now. Called before every depth
// change and at finalize.
func (a *Admission) tick(now sim.Time) {
	if now > a.lastTick {
		a.Stats.DepthIntegral += sim.Time(a.depth) * (now - a.lastTick)
		a.lastTick = now
	}
}

// take pops the oldest queued ticket for a tenant, if any.
func (a *Admission) take(tenant int, now sim.Time) (sim.Time, bool) {
	q := &a.queues[tenant]
	if q.empty() {
		return 0, false
	}
	a.tick(now)
	at := q.pop()
	a.depth--
	return at, true
}

// wait registers an idle open-loop process at the back of its tenant's
// waiter FIFO.
func (a *Admission) wait(p *Process) {
	a.waiters[p.tenant] = append(a.waiters[p.tenant], p)
}

// complete records one finished transaction's end-to-end latency.
func (a *Admission) complete(p *Process, now sim.Time) {
	a.Stats.Completed++
	a.Lat.Observe(int64(now - p.txArrive))
	a.slo.Observe(now, now-p.txArrive)
	a.series.AddCompletion(now)
}

// shed drops one transaction for good.
func (a *Admission) shed(now sim.Time, exhausted bool) {
	a.Stats.Shed++
	if exhausted {
		a.Stats.RetryExhausted++
	}
	a.series.AddArrival(now, true)
	a.slo.ObserveShed(now)
}

// ResetStats clears counters and the latency sketch at the warm/measure
// boundary without disturbing queue contents: in-flight and queued
// transactions carry over, exactly like cache state does.
func (a *Admission) ResetStats(now sim.Time) {
	a.Stats = AdmissionStats{MaxDepth: a.depth}
	a.Lat.Reset()
	a.slo.Reset(now)
	a.lastTick = now
}

// Finalize closes the depth integral at the end of the measured window.
func (a *Admission) Finalize(now sim.Time) { a.tick(now) }

// SetAdmission installs the admission queue on the kernel; open-loop
// spawns and arrivals require it.
func (k *Kernel) SetAdmission(a *Admission) { k.adm = a }

// Admission returns the installed admission queue (nil in closed-loop
// runs).
func (k *Kernel) Admission() *Admission { return k.adm }

// SpawnOpen creates an open-loop server process pinned to a CPU for one
// tenant. Unlike Spawn it starts blocked, parked in the tenant's waiter
// FIFO until a transaction arrives for it; the CPU is not kicked because
// nothing became runnable.
func (k *Kernel) SpawnOpen(cpuID int, s Stream, seed uint64, tenant int) *Process {
	k.nextID++
	p := &Process{
		ID: k.nextID, CPU: cpuID, Stream: s,
		rng: sim.NewRNG(seed), open: true, tenant: tenant, waitAdm: true,
	}
	k.procs[cpuID] = append(k.procs[cpuID], p)
	k.adm.wait(p)
	return p
}

// Arrive offers one transaction to a tenant at the current engine time.
// If a waiter is free the transaction starts immediately (its queueing
// delay is zero); otherwise it queues, or — at the capacity bound — is
// shed or re-offered later per the retry policy. The arrival driver
// schedules one engine event per arrival, so Arrive always runs at the
// arrival's exact timestamp.
func (k *Kernel) Arrive(tenant int) {
	a := k.adm
	now := k.eng.Now()
	a.Stats.Arrivals++
	if a.offer(k, tenant, now, now) {
		return
	}
	if a.Retry.Budget > 0 {
		a.scheduleRetry(k, tenant, now, 0)
		return
	}
	a.shed(now, false)
}

// offer tries to place one transaction (original arrival time origAt)
// with a tenant: hand it to a parked waiter, or queue it under the
// capacity bound. Returns false when the queue is full.
func (a *Admission) offer(k *Kernel, tenant int, origAt, now sim.Time) bool {
	if ws := a.waiters[tenant]; len(ws) > 0 {
		p := ws[0]
		a.waiters[tenant] = ws[1:]
		a.Stats.Admitted++
		a.series.AddArrival(now, false)
		p.waitAdm = false
		p.ready = true
		p.txArrive = origAt
		k.kick(p.CPU)
		return true
	}
	if a.Capacity > 0 && a.depth >= a.Capacity {
		return false
	}
	a.Stats.Admitted++
	a.series.AddArrival(now, false)
	a.tick(now)
	a.queues[tenant].push(origAt)
	a.depth++
	if a.depth > a.Stats.MaxDepth {
		a.Stats.MaxDepth = a.depth
	}
	return true
}

// scheduleRetry arms re-offer number attempt (0-based) for a rejected
// transaction. A retried transaction keeps its original arrival
// timestamp, so its eventual latency honestly includes the backoff —
// retry hides sheds, not queueing delay.
func (a *Admission) scheduleRetry(k *Kernel, tenant int, origAt sim.Time, attempt int) {
	a.Stats.Retried++
	k.eng.After(a.Retry.delay(attempt), func() {
		now := k.eng.Now()
		if a.offer(k, tenant, origAt, now) {
			return
		}
		if attempt+1 < a.Retry.Budget {
			a.scheduleRetry(k, tenant, origAt, attempt+1)
			return
		}
		a.shed(now, true)
	})
}
