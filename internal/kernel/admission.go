// Admission queueing: the open-loop half of the kernel model. In
// closed-loop mode every server process always has a next transaction;
// in open-loop mode transactions *arrive* on an external stream and wait
// in a bounded admission queue until a server process of the right
// tenant frees up. The queue is where tail latency is born — past
// saturation, depth (and p99) grows without bound unless the shed
// policy drops the overflow.
package kernel

import (
	"piranha/internal/sim"
	"piranha/internal/stats"
)

// AdmissionStats aggregates one run's admission-queue activity.
type AdmissionStats struct {
	Arrivals  uint64 // transactions offered
	Admitted  uint64 // accepted (ran or will run)
	Shed      uint64 // dropped by the capacity bound, never executed
	Completed uint64 // finished (latency recorded)
	MaxDepth  int    // peak queued (not yet running) transactions
	// DepthIntegral is ∑ depth·dt over the run; divided by elapsed time
	// it yields the time-weighted mean queue depth.
	DepthIntegral sim.Time
}

// Admission is the kernel's admission queue: per-tenant ticket FIFOs
// (arrived transactions waiting for a process) and per-tenant waiter
// FIFOs (idle open-loop processes waiting for a transaction). At most
// one of the two is non-empty per tenant at any instant.
type Admission struct {
	// Capacity bounds the total queued (waiting, not running)
	// transactions across tenants; 0 means unbounded. Arrivals past the
	// bound are shed: counted, never executed.
	Capacity int
	// Lat records arrival→completion latency (queueing + service) in
	// picoseconds.
	Lat *stats.Quantile
	// Stats aggregates counters; reset at the warm/measure boundary.
	Stats AdmissionStats

	series   *stats.Series
	queues   []ticketQueue
	waiters  [][]*Process
	depth    int
	lastTick sim.Time
}

// ticketQueue is a FIFO of arrival timestamps with an amortized-O(1)
// head index.
type ticketQueue struct {
	arrive []sim.Time
	head   int
}

func (q *ticketQueue) empty() bool { return q.head >= len(q.arrive) }

func (q *ticketQueue) push(at sim.Time) { q.arrive = append(q.arrive, at) }

func (q *ticketQueue) pop() sim.Time {
	at := q.arrive[q.head]
	q.head++
	if q.head == len(q.arrive) {
		q.arrive = q.arrive[:0]
		q.head = 0
	}
	return at
}

// NewAdmission builds an admission queue for the given tenant count
// (≥ 1) and capacity bound (0 = unbounded).
func NewAdmission(tenants, capacity int) *Admission {
	if tenants < 1 {
		tenants = 1
	}
	return &Admission{
		Capacity: capacity,
		Lat:      stats.NewQuantile("arrival→completion latency (ps)"),
		queues:   make([]ticketQueue, tenants),
		waiters:  make([][]*Process, tenants),
	}
}

// AttachSeries routes per-interval arrival/admitted/shed counts into an
// interval sampler (nil detaches).
func (a *Admission) AttachSeries(s *stats.Series) { a.series = s }

// Depth returns the current queued-transaction count.
func (a *Admission) Depth() int { return a.depth }

// tick closes the depth integral up to now. Called before every depth
// change and at finalize.
func (a *Admission) tick(now sim.Time) {
	if now > a.lastTick {
		a.Stats.DepthIntegral += sim.Time(a.depth) * (now - a.lastTick)
		a.lastTick = now
	}
}

// take pops the oldest queued ticket for a tenant, if any.
func (a *Admission) take(tenant int, now sim.Time) (sim.Time, bool) {
	q := &a.queues[tenant]
	if q.empty() {
		return 0, false
	}
	a.tick(now)
	at := q.pop()
	a.depth--
	return at, true
}

// wait registers an idle open-loop process at the back of its tenant's
// waiter FIFO.
func (a *Admission) wait(p *Process) {
	a.waiters[p.tenant] = append(a.waiters[p.tenant], p)
}

// complete records one finished transaction's end-to-end latency.
func (a *Admission) complete(p *Process, now sim.Time) {
	a.Stats.Completed++
	a.Lat.Observe(int64(now - p.txArrive))
}

// ResetStats clears counters and the latency sketch at the warm/measure
// boundary without disturbing queue contents: in-flight and queued
// transactions carry over, exactly like cache state does.
func (a *Admission) ResetStats(now sim.Time) {
	a.Stats = AdmissionStats{MaxDepth: a.depth}
	a.Lat.Reset()
	a.lastTick = now
}

// Finalize closes the depth integral at the end of the measured window.
func (a *Admission) Finalize(now sim.Time) { a.tick(now) }

// SetAdmission installs the admission queue on the kernel; open-loop
// spawns and arrivals require it.
func (k *Kernel) SetAdmission(a *Admission) { k.adm = a }

// Admission returns the installed admission queue (nil in closed-loop
// runs).
func (k *Kernel) Admission() *Admission { return k.adm }

// SpawnOpen creates an open-loop server process pinned to a CPU for one
// tenant. Unlike Spawn it starts blocked, parked in the tenant's waiter
// FIFO until a transaction arrives for it; the CPU is not kicked because
// nothing became runnable.
func (k *Kernel) SpawnOpen(cpuID int, s Stream, seed uint64, tenant int) *Process {
	k.nextID++
	p := &Process{
		ID: k.nextID, CPU: cpuID, Stream: s,
		rng: sim.NewRNG(seed), open: true, tenant: tenant, waitAdm: true,
	}
	k.procs[cpuID] = append(k.procs[cpuID], p)
	k.adm.wait(p)
	return p
}

// Arrive offers one transaction to a tenant at the current engine time.
// If a waiter is free the transaction starts immediately (its queueing
// delay is zero); otherwise it queues, or is shed at the capacity bound.
// The arrival driver schedules one engine event per arrival, so Arrive
// always runs at the arrival's exact timestamp.
func (k *Kernel) Arrive(tenant int) {
	a := k.adm
	now := k.eng.Now()
	a.Stats.Arrivals++
	if ws := a.waiters[tenant]; len(ws) > 0 {
		p := ws[0]
		a.waiters[tenant] = ws[1:]
		a.Stats.Admitted++
		a.series.AddArrival(now, false)
		p.waitAdm = false
		p.ready = true
		p.txArrive = now
		k.kick(p.CPU)
		return
	}
	if a.Capacity > 0 && a.depth >= a.Capacity {
		a.Stats.Shed++
		a.series.AddArrival(now, true)
		return
	}
	a.Stats.Admitted++
	a.series.AddArrival(now, false)
	a.tick(now)
	a.queues[tenant].push(now)
	a.depth++
	if a.depth > a.Stats.MaxDepth {
		a.Stats.MaxDepth = a.depth
	}
}
