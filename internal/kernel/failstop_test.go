package kernel

import (
	"testing"

	"piranha/internal/sim"
)

func TestFailCPUsMigratesAndCompletes(t *testing.T) {
	eng, k := newRig(2)
	k.Spawn(0, &loopStream{n: 1000, perTx: 4}, 1)
	k.Spawn(1, &loopStream{n: 1000, perTx: 4}, 2)
	k.RunTx(4)
	// Kill CPU 0 mid-run: its process must migrate to CPU 1, pay the
	// re-dispatch penalty, and keep committing transactions.
	eng.Schedule(eng.Now()+1, func() {
		if n := k.FailCPUs([]int{0}, 5*sim.Microsecond); n != 1 {
			t.Errorf("migrated %d processes, want 1", n)
		}
	})
	k.RunTx(12)
	if k.Tx < 12 {
		t.Fatalf("tx=%d, migrated process stopped committing", k.Tx)
	}
	if got := k.AliveCPUs(); got != 1 {
		t.Fatalf("alive CPUs = %d, want 1", got)
	}
	if len(k.procs[0]) != 0 || len(k.procs[1]) != 2 {
		t.Fatalf("process lists after migration: cpu0=%d cpu1=%d",
			len(k.procs[0]), len(k.procs[1]))
	}
}

func TestFailCPUsRedispatchPenaltyDelays(t *testing.T) {
	// One process, one surviving CPU: after the failure at ~t the process
	// may not run again before t+penalty.
	eng, k := newRig(2)
	k.Spawn(0, &loopStream{n: 1000, perTx: 4}, 1)
	k.RunTx(1)
	failAt := eng.Now() + 1
	const penalty = 50 * sim.Microsecond
	eng.Schedule(failAt, func() { k.FailCPUs([]int{0}, penalty) })
	k.RunTx(2)
	if eng.Now() < failAt+penalty {
		t.Fatalf("transaction committed at %d, before penalty elapsed at %d",
			eng.Now(), failAt+penalty)
	}
}

func TestFailCPUsOpenLoopWaitersMigrate(t *testing.T) {
	// Parked open-loop waiters migrate without a wake event (they are
	// not runnable); a later arrival must start them on the new CPU.
	eng, k := openRig(2, 1, 0)
	eng.Schedule(1, func() { k.FailCPUs([]int{0}, 5*sim.Microsecond) })
	offer(eng, k, 2*sim.Microsecond, 3*sim.Microsecond)
	k.RunTx(2)
	a := k.Admission()
	if a.Stats.Completed != 2 {
		t.Fatalf("arrivals not served after migration: %+v", a.Stats)
	}
}

func TestFailCPUsKillAllPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("killing every CPU did not panic")
		}
	}()
	_, k := newRig(2)
	k.FailCPUs([]int{0, 1}, 0)
}
