// Package directory implements Piranha's inter-node directory entry
// (paper §2.5.2): 44 bits per 64-byte line stored in the spare ECC bits,
// of which 2 encode the line state and 42 encode the sharing nodes.
//
// Two sharer representations are used, as in the paper:
//
//   - limited pointer: up to 4 explicit 10-bit node IDs (supports 1024
//     nodes); chosen while the line has at most 4 remote sharers.
//   - coarse vector: 42 bits, each covering a fixed group of nodes
//     (ceil(N/42) nodes per bit); chosen past 4 remote sharers.
//
// Directory information is kept at node granularity (not per CPU), and the
// home node's own sharers are NOT recorded in the directory — the home
// chip's L2 duplicate-tag state tracks those (paper: "The directory is not
// used to maintain information about sharers at the home node").
package directory

import (
	"fmt"
	"math/bits"
)

// EntryBits is the width of an encoded directory entry.
const EntryBits = 44

// MaxNodes is the largest system the 10-bit pointers support.
const MaxNodes = 1024

// MaxPointers is the number of explicit sharer pointers before the entry
// switches to the coarse-vector representation.
const MaxPointers = 4

// coarseBits is the number of group bits in coarse-vector form.
const coarseBits = 42

// State is the inter-node sharing state of a line.
type State uint8

// Directory states (2 bits).
const (
	// Uncached: no remote node holds the line.
	Uncached State = iota
	// Shared: one or more remote nodes hold read-only copies,
	// enumerated by explicit pointers.
	Shared
	// SharedCoarse: remote read-only copies tracked by a coarse vector.
	SharedCoarse
	// Exclusive: exactly one remote node holds the line exclusively
	// (clean-exclusive or dirty); its ID is in pointer 0.
	Exclusive
)

func (s State) String() string {
	switch s {
	case Uncached:
		return "uncached"
	case Shared:
		return "shared"
	case SharedCoarse:
		return "shared-coarse"
	case Exclusive:
		return "exclusive"
	}
	return "invalid"
}

// NodeID identifies a Piranha node (processing or I/O chip).
type NodeID uint16

// NodeSet is a bitset over up to MaxNodes nodes.
type NodeSet [MaxNodes / 64]uint64

// Add inserts node n.
func (s *NodeSet) Add(n NodeID) { s[n>>6] |= 1 << (uint(n) & 63) }

// Remove deletes node n.
func (s *NodeSet) Remove(n NodeID) { s[n>>6] &^= 1 << (uint(n) & 63) }

// Has reports whether node n is present.
func (s *NodeSet) Has(n NodeID) bool { return s[n>>6]&(1<<(uint(n)&63)) != 0 }

// Empty reports whether the set has no members.
func (s *NodeSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (s *NodeSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Members returns the member node IDs in ascending order, bounded by max
// nodes in the system.
func (s *NodeSet) Members(max int) []NodeID {
	return s.AppendMembers(nil, max)
}

// AppendMembers appends the member node IDs below max to dst in
// ascending order and returns the extended slice. It word-walks the
// bitset, so the cost tracks the population, not the machine size —
// at 1024 nodes a 3-sharer entry reads 16 words instead of testing
// 1024 ids. Hot paths pass a reused dst to avoid the per-call
// allocation Members pays.
func (s *NodeSet) AppendMembers(dst []NodeID, max int) []NodeID {
	words := (max + 63) >> 6
	if words > len(s) {
		words = len(s)
	}
	for w := 0; w < words; w++ {
		for word := s[w]; word != 0; word &= word - 1 {
			n := w<<6 + bits.TrailingZeros64(word)
			if n >= max {
				return dst
			}
			dst = append(dst, NodeID(n))
		}
	}
	return dst
}

// Entry is a decoded directory entry. For Shared/SharedCoarse, Sharers
// holds the set of remote nodes that may hold copies (coarse form yields a
// superset, exactly as the hardware representation does). For Exclusive,
// Owner holds the single remote owner.
type Entry struct {
	State   State
	Owner   NodeID
	Sharers NodeSet
}

// Config carries the system parameters the codec depends on.
type Config struct {
	// Nodes is the number of nodes in the system (<= MaxNodes).
	Nodes int
}

// GroupSize returns the number of nodes covered by one coarse-vector bit.
func (c Config) GroupSize() int {
	g := (c.Nodes + coarseBits - 1) / coarseBits
	if g < 1 {
		g = 1
	}
	return g
}

// group returns the coarse-vector bit index covering node n.
func (c Config) group(n NodeID) int { return int(n) / c.GroupSize() }

// Encode packs an entry into the low 44 bits of a uint64.
//
// Layout: bits [43:42] hold the state. The 42-bit body depends on state:
// Exclusive stores the owner in bits [9:0]; Shared stores count-1 in bits
// [41:40] and up to four 10-bit pointers in bits [39:0]; SharedCoarse
// stores the 42-bit group vector; Uncached stores zero.
func Encode(cfg Config, e Entry) (uint64, error) {
	if cfg.Nodes > MaxNodes {
		return 0, fmt.Errorf("directory: %d nodes exceeds max %d", cfg.Nodes, MaxNodes)
	}
	var body uint64
	switch e.State {
	case Uncached:
	case Exclusive:
		body = uint64(e.Owner)
	case Shared:
		// Word-walk the bitset rather than testing every node id:
		// encoding shared entries is the home engines' steady-state
		// directory-store path and must not allocate or pay O(N) for a
		// handful of sharers. Ids only grow along the walk, so the
		// first out-of-range id ends it (sharers at or past cfg.Nodes
		// are clamped away, matching the old i < cfg.Nodes bound).
		count := 0
		words := (cfg.Nodes + 63) >> 6
		for w := 0; w < words; w++ {
			for word := e.Sharers[w]; word != 0; word &= word - 1 {
				i := w<<6 + bits.TrailingZeros64(word)
				if i >= cfg.Nodes {
					break
				}
				if count < MaxPointers {
					body |= uint64(i) << (uint(count) * 10)
				}
				count++
			}
		}
		if count == 0 {
			return Encode(cfg, Clear())
		}
		if count > MaxPointers {
			return 0, fmt.Errorf("directory: %d sharers exceed %d pointers; use SharedCoarse", count, MaxPointers)
		}
		body |= uint64(count-1) << 40
	case SharedCoarse:
		words := (cfg.Nodes + 63) >> 6
		for w := 0; w < words; w++ {
			for word := e.Sharers[w]; word != 0; word &= word - 1 {
				i := w<<6 + bits.TrailingZeros64(word)
				if i >= cfg.Nodes {
					break
				}
				body |= 1 << uint(cfg.group(NodeID(i)))
			}
		}
	default:
		return 0, fmt.Errorf("directory: invalid state %d", e.State)
	}
	return uint64(e.State)<<42 | body, nil
}

// Decode unpacks a 44-bit entry.
func Decode(cfg Config, bits uint64) Entry {
	s := State(bits >> 42 & 3)
	body := bits & ((1 << 42) - 1)
	e := Entry{State: s}
	switch s {
	case Uncached:
	case Exclusive:
		e.Owner = NodeID(body & 0x3ff)
	case Shared:
		count := int(body>>40&3) + 1
		for i := 0; i < count; i++ {
			e.Sharers.Add(NodeID(body >> (uint(i) * 10) & 0x3ff))
		}
	case SharedCoarse:
		g := cfg.GroupSize()
		for b := 0; b < coarseBits; b++ {
			if body&(1<<uint(b)) == 0 {
				continue
			}
			for n := b * g; n < (b+1)*g && n < cfg.Nodes; n++ {
				e.Sharers.Add(NodeID(n))
			}
		}
	}
	return e
}

// AddSharer returns the entry updated to include a new remote sharer,
// switching representation to coarse vector when the pointer capacity is
// exceeded (the paper switches past 4 remote sharing nodes).
func AddSharer(cfg Config, e Entry, n NodeID) Entry {
	switch e.State {
	case Uncached:
		e.State = Shared
		e.Sharers = NodeSet{}
		e.Sharers.Add(n)
	case Exclusive:
		// Owner downgrades to sharer alongside the new one.
		e.State = Shared
		owner := e.Owner
		e.Sharers = NodeSet{}
		e.Sharers.Add(owner)
		e.Sharers.Add(n)
		e.Owner = 0
	case Shared:
		e.Sharers.Add(n)
		if e.Sharers.Count() > MaxPointers {
			e.State = SharedCoarse
		}
	case SharedCoarse:
		e.Sharers.Add(n)
	}
	return e
}

// SetExclusive returns the entry reset to a single exclusive remote owner.
func SetExclusive(e Entry, n NodeID) Entry {
	return Entry{State: Exclusive, Owner: n}
}

// Clear returns the uncached entry.
func Clear() Entry { return Entry{State: Uncached} }

// RemoveSharer returns the entry with node n removed. Removing from coarse
// form is conservative (the hardware cannot clear a group bit unless the
// whole group is invalidated), so like real coarse vectors it may keep n's
// group marked if the representation cannot prove the group is empty; the
// decoded sharer set therefore remains a superset of the true sharers.
func RemoveSharer(cfg Config, e Entry, n NodeID) Entry {
	switch e.State {
	case Exclusive:
		if e.Owner == n {
			return Clear()
		}
	case Shared:
		e.Sharers.Remove(n)
		if e.Sharers.Empty() {
			return Clear()
		}
	case SharedCoarse:
		// Conservative: only the full-invalidate path clears coarse bits.
	}
	return e
}
