package directory

import (
	"testing"
	"testing/quick"

	"piranha/internal/sim"
)

var cfg1k = Config{Nodes: 1024}

func TestEntryBitsFitECCSpare(t *testing.T) {
	// The codec must never produce more than the 44 bits the ECC scheme
	// frees per 64-byte line.
	e := Entry{State: SharedCoarse}
	for i := 0; i < 1024; i++ {
		e.Sharers.Add(NodeID(i))
	}
	bits, err := Encode(cfg1k, e)
	if err != nil {
		t.Fatal(err)
	}
	if bits>>EntryBits != 0 {
		t.Fatalf("encoding uses more than %d bits: %#x", EntryBits, bits)
	}
}

func TestUncachedRoundTrip(t *testing.T) {
	bits, err := Encode(cfg1k, Clear())
	if err != nil {
		t.Fatal(err)
	}
	if bits != 0 {
		t.Fatalf("uncached should encode to zero, got %#x", bits)
	}
	e := Decode(cfg1k, bits)
	if e.State != Uncached || !e.Sharers.Empty() {
		t.Fatalf("decoded %+v", e)
	}
}

func TestExclusiveRoundTrip(t *testing.T) {
	for _, owner := range []NodeID{0, 1, 511, 1023} {
		bits, err := Encode(cfg1k, SetExclusive(Entry{}, owner))
		if err != nil {
			t.Fatal(err)
		}
		e := Decode(cfg1k, bits)
		if e.State != Exclusive || e.Owner != owner {
			t.Fatalf("owner %d decoded as %+v", owner, e)
		}
	}
}

func TestSharedPointerRoundTrip(t *testing.T) {
	cases := [][]NodeID{
		{5},
		{0, 1023},
		{3, 17, 255},
		{1, 2, 3, 1000},
	}
	for _, sharers := range cases {
		var e Entry
		e.State = Shared
		for _, n := range sharers {
			e.Sharers.Add(n)
		}
		bits, err := Encode(cfg1k, e)
		if err != nil {
			t.Fatal(err)
		}
		got := Decode(cfg1k, bits)
		if got.State != Shared {
			t.Fatalf("state %v", got.State)
		}
		if got.Sharers.Count() != len(sharers) {
			t.Fatalf("sharer count %d, want %d", got.Sharers.Count(), len(sharers))
		}
		for _, n := range sharers {
			if !got.Sharers.Has(n) {
				t.Fatalf("lost sharer %d", n)
			}
		}
	}
}

func TestCoarseVectorSuperset(t *testing.T) {
	// Coarse form must decode to a superset of the encoded sharers and
	// must cover every node of a marked group.
	var e Entry
	e.State = SharedCoarse
	sharers := []NodeID{0, 100, 500, 999, 1023}
	for _, n := range sharers {
		e.Sharers.Add(n)
	}
	bits, err := Encode(cfg1k, e)
	if err != nil {
		t.Fatal(err)
	}
	got := Decode(cfg1k, bits)
	if got.State != SharedCoarse {
		t.Fatalf("state %v", got.State)
	}
	for _, n := range sharers {
		if !got.Sharers.Has(n) {
			t.Fatalf("coarse decode lost sharer %d", n)
		}
	}
	g := cfg1k.GroupSize()
	// Every decoded member's whole group must be present.
	for _, n := range got.Sharers.Members(1024) {
		base := (int(n) / g) * g
		for i := base; i < base+g && i < 1024; i++ {
			if !got.Sharers.Has(NodeID(i)) {
				t.Fatalf("group of node %d only partially present", n)
			}
		}
	}
}

func TestAddSharerSwitchesToCoarse(t *testing.T) {
	e := Clear()
	for i := 0; i < 4; i++ {
		e = AddSharer(cfg1k, e, NodeID(i*7))
	}
	if e.State != Shared {
		t.Fatalf("4 sharers should stay limited-pointer, got %v", e.State)
	}
	e = AddSharer(cfg1k, e, NodeID(700))
	if e.State != SharedCoarse {
		t.Fatalf("5th sharer should switch to coarse, got %v", e.State)
	}
	// Round-trip still covers all five.
	bits, err := Encode(cfg1k, e)
	if err != nil {
		t.Fatal(err)
	}
	got := Decode(cfg1k, bits)
	for _, n := range []NodeID{0, 7, 14, 21, 700} {
		if !got.Sharers.Has(n) {
			t.Fatalf("post-switch decode lost %d", n)
		}
	}
}

func TestAddSharerToExclusive(t *testing.T) {
	e := SetExclusive(Entry{}, 42)
	e = AddSharer(cfg1k, e, 99)
	if e.State != Shared || !e.Sharers.Has(42) || !e.Sharers.Has(99) {
		t.Fatalf("downgrade on add: %+v", e)
	}
}

func TestRemoveSharer(t *testing.T) {
	e := Clear()
	e = AddSharer(cfg1k, e, 1)
	e = AddSharer(cfg1k, e, 2)
	e = RemoveSharer(cfg1k, e, 1)
	if e.State != Shared || e.Sharers.Has(1) || !e.Sharers.Has(2) {
		t.Fatalf("remove: %+v", e)
	}
	e = RemoveSharer(cfg1k, e, 2)
	if e.State != Uncached {
		t.Fatalf("last removal should clear, got %v", e.State)
	}
	// Removing the exclusive owner clears.
	e = SetExclusive(Entry{}, 7)
	e = RemoveSharer(cfg1k, e, 7)
	if e.State != Uncached {
		t.Fatalf("owner removal should clear, got %v", e.State)
	}
}

func TestGroupSizeSmallSystems(t *testing.T) {
	for _, tc := range []struct{ nodes, want int }{
		{1, 1}, {2, 1}, {42, 1}, {43, 2}, {84, 2}, {1024, 25},
	} {
		if got := (Config{Nodes: tc.nodes}).GroupSize(); got != tc.want {
			t.Fatalf("GroupSize(%d) = %d, want %d", tc.nodes, got, tc.want)
		}
	}
}

func TestQuickPointerRoundTrip(t *testing.T) {
	r := sim.NewRNG(11)
	f := func(seed uint32, count uint8) bool {
		rr := r.Split(uint64(seed))
		n := int(count%4) + 1
		var e Entry
		e.State = Shared
		seen := map[NodeID]bool{}
		for len(seen) < n {
			id := NodeID(rr.Intn(1024))
			seen[id] = true
			e.Sharers.Add(id)
		}
		bits, err := Encode(cfg1k, e)
		if err != nil {
			return false
		}
		got := Decode(cfg1k, bits)
		if got.Sharers.Count() != len(seen) {
			return false
		}
		for id := range seen {
			if !got.Sharers.Has(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSet(t *testing.T) {
	var s NodeSet
	if !s.Empty() {
		t.Fatal("zero set should be empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(1023)
	if s.Count() != 4 {
		t.Fatalf("count %d", s.Count())
	}
	if !s.Has(63) || s.Has(62) {
		t.Fatal("membership wrong")
	}
	s.Remove(63)
	if s.Has(63) || s.Count() != 3 {
		t.Fatal("remove failed")
	}
	m := s.Members(1024)
	if len(m) != 3 || m[0] != 0 || m[1] != 64 || m[2] != 1023 {
		t.Fatalf("members %v", m)
	}
}

func BenchmarkEncodeDecodePointer(b *testing.B) {
	e := Clear()
	for i := 0; i < 4; i++ {
		e = AddSharer(cfg1k, e, NodeID(i*100))
	}
	for i := 0; i < b.N; i++ {
		bits, _ := Encode(cfg1k, e)
		Decode(cfg1k, bits)
	}
}

func BenchmarkEncodeDecodeCoarse(b *testing.B) {
	e := Entry{State: SharedCoarse}
	for i := 0; i < 64; i++ {
		e.Sharers.Add(NodeID(i * 16))
	}
	for i := 0; i < b.N; i++ {
		bits, _ := Encode(cfg1k, e)
		Decode(cfg1k, bits)
	}
}
