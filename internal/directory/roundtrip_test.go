package directory

import "testing"

// The model checker (internal/mcheck) routes every directory update of
// its micro-systems through Encode/Decode, so the codec must be exact
// for every sharer-bitset shape reachable at 2–4 nodes. This test is
// the static counterpart: exhaustively enumerate all subsets at each
// size and require a perfect round-trip for every encodable state.
func TestExhaustiveRoundTripSmallSystems(t *testing.T) {
	for nodes := 2; nodes <= 4; nodes++ {
		cfg := Config{Nodes: nodes}

		// Uncached ignores the body entirely.
		bits, err := Encode(cfg, Clear())
		if err != nil {
			t.Fatalf("nodes=%d: Encode(Clear) failed: %v", nodes, err)
		}
		if got := Decode(cfg, bits); got.State != Uncached || got.Sharers.Count() != 0 {
			t.Errorf("nodes=%d: uncached round-trip gave %+v", nodes, got)
		}

		// Exclusive: every possible owner.
		for owner := 0; owner < nodes; owner++ {
			e := Entry{State: Exclusive, Owner: NodeID(owner)}
			bits, err := Encode(cfg, e)
			if err != nil {
				t.Fatalf("nodes=%d owner=%d: %v", nodes, owner, err)
			}
			got := Decode(cfg, bits)
			if got.State != Exclusive || got.Owner != NodeID(owner) {
				t.Errorf("nodes=%d: exclusive owner %d round-trips to %+v", nodes, owner, got)
			}
		}

		// Shared and SharedCoarse: every non-empty subset of nodes. At
		// these sizes the subset count (≤ MaxPointers) always fits the
		// limited-pointer form, and each coarse-vector group covers one
		// node, so both representations must be exact.
		if g := cfg.GroupSize(); g != 1 {
			t.Fatalf("nodes=%d: group size %d, want 1 (coarse form would be lossy)", nodes, g)
		}
		for mask := 1; mask < 1<<nodes; mask++ {
			var want NodeSet
			for i := 0; i < nodes; i++ {
				if mask&(1<<i) != 0 {
					want.Add(NodeID(i))
				}
			}
			for _, state := range []State{Shared, SharedCoarse} {
				e := Entry{State: state, Sharers: want}
				bits, err := Encode(cfg, e)
				if err != nil {
					t.Fatalf("nodes=%d mask=%b state=%v: %v", nodes, mask, state, err)
				}
				got := Decode(cfg, bits)
				if got.State != state {
					t.Errorf("nodes=%d mask=%b: state %v round-trips to %v", nodes, mask, state, got.State)
				}
				for i := 0; i < nodes; i++ {
					if got.Sharers.Has(NodeID(i)) != want.Has(NodeID(i)) {
						t.Errorf("nodes=%d state=%v: sharer set %b round-trips to %v",
							nodes, state, mask, got.Sharers.Members(nodes))
						break
					}
				}
			}
		}

		// A shared encoding with an empty sharer set collapses to the
		// uncached encoding rather than a count-underflowed body.
		empty, err := Encode(cfg, Entry{State: Shared})
		if err != nil {
			t.Fatalf("nodes=%d: Encode(Shared, empty) failed: %v", nodes, err)
		}
		if got := Decode(cfg, empty); got.State != Uncached {
			t.Errorf("nodes=%d: empty shared set decodes as %v, want Uncached", nodes, got.State)
		}
	}
}
