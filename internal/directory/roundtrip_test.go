package directory

import "testing"

// The model checker (internal/mcheck) routes every directory update of
// its micro-systems through Encode/Decode, so the codec must be exact
// for every sharer-bitset shape reachable at 2–4 nodes. This test is
// the static counterpart: exhaustively enumerate all subsets at each
// size and require a perfect round-trip for every encodable state.
func TestExhaustiveRoundTripSmallSystems(t *testing.T) {
	for nodes := 2; nodes <= 4; nodes++ {
		cfg := Config{Nodes: nodes}

		// Uncached ignores the body entirely.
		bits, err := Encode(cfg, Clear())
		if err != nil {
			t.Fatalf("nodes=%d: Encode(Clear) failed: %v", nodes, err)
		}
		if got := Decode(cfg, bits); got.State != Uncached || got.Sharers.Count() != 0 {
			t.Errorf("nodes=%d: uncached round-trip gave %+v", nodes, got)
		}

		// Exclusive: every possible owner.
		for owner := 0; owner < nodes; owner++ {
			e := Entry{State: Exclusive, Owner: NodeID(owner)}
			bits, err := Encode(cfg, e)
			if err != nil {
				t.Fatalf("nodes=%d owner=%d: %v", nodes, owner, err)
			}
			got := Decode(cfg, bits)
			if got.State != Exclusive || got.Owner != NodeID(owner) {
				t.Errorf("nodes=%d: exclusive owner %d round-trips to %+v", nodes, owner, got)
			}
		}

		// Shared and SharedCoarse: every non-empty subset of nodes. At
		// these sizes the subset count (≤ MaxPointers) always fits the
		// limited-pointer form, and each coarse-vector group covers one
		// node, so both representations must be exact.
		if g := cfg.GroupSize(); g != 1 {
			t.Fatalf("nodes=%d: group size %d, want 1 (coarse form would be lossy)", nodes, g)
		}
		for mask := 1; mask < 1<<nodes; mask++ {
			var want NodeSet
			for i := 0; i < nodes; i++ {
				if mask&(1<<i) != 0 {
					want.Add(NodeID(i))
				}
			}
			for _, state := range []State{Shared, SharedCoarse} {
				e := Entry{State: state, Sharers: want}
				bits, err := Encode(cfg, e)
				if err != nil {
					t.Fatalf("nodes=%d mask=%b state=%v: %v", nodes, mask, state, err)
				}
				got := Decode(cfg, bits)
				if got.State != state {
					t.Errorf("nodes=%d mask=%b: state %v round-trips to %v", nodes, mask, state, got.State)
				}
				for i := 0; i < nodes; i++ {
					if got.Sharers.Has(NodeID(i)) != want.Has(NodeID(i)) {
						t.Errorf("nodes=%d state=%v: sharer set %b round-trips to %v",
							nodes, state, mask, got.Sharers.Members(nodes))
						break
					}
				}
			}
		}

		// A shared encoding with an empty sharer set collapses to the
		// uncached encoding rather than a count-underflowed body.
		empty, err := Encode(cfg, Entry{State: Shared})
		if err != nil {
			t.Fatalf("nodes=%d: Encode(Shared, empty) failed: %v", nodes, err)
		}
		if got := Decode(cfg, empty); got.State != Uncached {
			t.Errorf("nodes=%d: empty shared set decodes as %v, want Uncached", nodes, got.State)
		}
	}
}

// TestRoundTrip1000Nodes exercises the codec at a node count that does
// NOT divide evenly into the 42 coarse-vector bits: ceil(1000/42) = 24
// nodes per group, so the 42 groups nominally cover 1008 ids and the
// last group's expansion must clamp at node 1000 instead of inventing
// sharers 1000..1007 (which a glueless 1000-node machine would then
// try to invalidate). The 2–4-node exhaustive test above never sees
// this: its group size is 1.
func TestRoundTrip1000Nodes(t *testing.T) {
	const nodes = 1000
	cfg := Config{Nodes: nodes}
	if g := cfg.GroupSize(); g != 24 {
		t.Fatalf("group size %d, want 24", g)
	}

	// Exclusive with a high owner id uses the full 10-bit pointer.
	bits, err := Encode(cfg, Entry{State: Exclusive, Owner: 999})
	if err != nil {
		t.Fatal(err)
	}
	if got := Decode(cfg, bits); got.State != Exclusive || got.Owner != 999 {
		t.Fatalf("exclusive owner 999 round-trips to %+v", got)
	}

	// Limited-pointer form is exact at any id spread.
	var ptr NodeSet
	for _, n := range []NodeID{5, 41, 983, 999} {
		ptr.Add(n)
	}
	bits, err = Encode(cfg, Entry{State: Shared, Sharers: ptr})
	if err != nil {
		t.Fatal(err)
	}
	if got := Decode(cfg, bits); got.Sharers != ptr {
		t.Fatalf("limited-pointer sharers round-trip to %v", got.Sharers.Members(nodes))
	}

	// Coarse form: the decode is a clamped superset — every true sharer
	// present, nothing at or past node 1000, and only whole (clamped)
	// groups of the encoded members.
	cases := [][]NodeID{
		{999},                  // last group: covers 984..1007 unclamped
		{0, 500, 996},          // first, middle, and last group
		{983, 984},             // straddles the group 40/41 boundary
		{42, 66, 90, 114, 138}, // five sharers force coarse in practice
	}
	for _, ids := range cases {
		var truth NodeSet
		groups := map[int]bool{}
		for _, n := range ids {
			truth.Add(n)
			groups[cfg.group(n)] = true
		}
		bits, err := Encode(cfg, Entry{State: SharedCoarse, Sharers: truth})
		if err != nil {
			t.Fatalf("%v: %v", ids, err)
		}
		got := Decode(cfg, bits)
		if got.State != SharedCoarse {
			t.Fatalf("%v: state %v", ids, got.State)
		}
		for _, n := range ids {
			if !got.Sharers.Has(n) {
				t.Errorf("%v: decode lost sharer %d", ids, n)
			}
		}
		for w := (nodes + 63) / 64; w < len(got.Sharers); w++ {
			if got.Sharers[w] != 0 {
				t.Errorf("%v: decode set bits past the node count (word %d)", ids, w)
			}
		}
		want := 0
		for g := range groups {
			lo, hi := g*24, (g+1)*24
			if hi > nodes {
				hi = nodes
			}
			want += hi - lo
		}
		if got.Sharers.Count() != want {
			t.Errorf("%v: decoded %d sharers, want clamped group expansion %d", ids, got.Sharers.Count(), want)
		}
		for _, m := range got.Sharers.Members(MaxNodes) {
			if int(m) >= nodes {
				t.Errorf("%v: decoded phantom sharer %d beyond %d nodes", ids, m, nodes)
			}
			if !groups[cfg.group(m)] {
				t.Errorf("%v: decoded sharer %d outside any encoded group", ids, m)
			}
		}
	}

	// AppendMembers word-walk agrees with a naive Has scan at this size.
	var s NodeSet
	for i := 0; i < nodes; i += 37 {
		s.Add(NodeID(i))
	}
	var naive []NodeID
	for i := 0; i < nodes; i++ {
		if s.Has(NodeID(i)) {
			naive = append(naive, NodeID(i))
		}
	}
	walk := s.Members(nodes)
	if len(walk) != len(naive) {
		t.Fatalf("Members word-walk found %d ids, naive scan %d", len(walk), len(naive))
	}
	for i := range walk {
		if walk[i] != naive[i] {
			t.Fatalf("Members[%d] = %d, naive %d", i, walk[i], naive[i])
		}
	}
}
