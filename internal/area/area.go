// Package area models the Piranha processing node's die area and
// floorplan (paper §5, Figure 9): in the 0.18 µm ASIC process, roughly
// 75% of the node is the eight Alpha cores with their L1s and the L2
// banks, with the remainder split among the memory controllers, the
// intra-chip switch, the router and the protocol engines. The numbers
// here derive from the paper's stated proportions and the process's
// published cell metrics (4.2 µm² SRAM cells, 81 ps worst-case 2-input
// NAND).
package area

import (
	"fmt"
	"sort"
	"strings"
)

// SquareMM is an area in mm².
type SquareMM float64

// Module is one floorplan block.
type Module struct {
	Name  string
	Count int
	Each  SquareMM
}

// Total returns the module's total area.
func (m Module) Total() SquareMM { return SquareMM(float64(m.Count) * float64(m.Each)) }

// Process captures the ASIC process parameters (IBM SA27E-class).
type Process struct {
	// SRAMCellUM2 is the 6T SRAM cell size in µm².
	SRAMCellUM2 float64
	// NANDDelayPS is the worst-case unloaded 2-input NAND delay.
	NANDDelayPS float64
	// TargetMHz is the achievable clock with this methodology.
	TargetMHz int
}

// ASIC018 is the paper's 0.18 µm semi-custom process.
func ASIC018() Process {
	return Process{SRAMCellUM2: 4.2, NANDDelayPS: 81, TargetMHz: 500}
}

// SRAMArea estimates the array area for the given capacity in bytes,
// including a typical 40% overhead for decoders, sense amps and tags.
func (p Process) SRAMArea(bytes int) SquareMM {
	cells := float64(bytes) * 8
	um2 := cells * p.SRAMCellUM2 * 1.4
	return SquareMM(um2 / 1e6)
}

// Floorplan is the processing node's block list.
type Floorplan struct {
	Modules []Module
}

// PiranhaNode returns the eight-CPU processing node's floorplan. Block
// sizes follow the paper's proportions: the CPU+L1 column pairs dominate,
// the L2 banks and memory controllers line the die edges, and the ICS
// runs along the center.
func PiranhaNode(proc Process) Floorplan {
	l1 := proc.SRAMArea(2 * 64 << 10) // I + D per core
	l2bank := proc.SRAMArea(128 << 10)
	return Floorplan{Modules: []Module{
		{Name: "Alpha core", Count: 8, Each: 7.0},
		{Name: "L1 caches (I+D)", Count: 8, Each: l1},
		{Name: "L2 bank", Count: 8, Each: l2bank},
		{Name: "Memory controller", Count: 8, Each: 1.6},
		{Name: "Intra-chip switch", Count: 1, Each: 12.0},
		{Name: "Protocol engine", Count: 2, Each: 3.0},
		{Name: "Router+IQ+OQ+PS", Count: 1, Each: 8.0},
		{Name: "System control", Count: 1, Each: 2.0},
	}}
}

// Total returns the summed block area.
func (f Floorplan) Total() SquareMM {
	var t SquareMM
	for _, m := range f.Modules {
		t += m.Total()
	}
	return t
}

// CoreCacheFraction returns the fraction of area in CPUs + L1s + L2 —
// the paper reports roughly 75%.
func (f Floorplan) CoreCacheFraction() float64 {
	var cc SquareMM
	for _, m := range f.Modules {
		switch m.Name {
		case "Alpha core", "L1 caches (I+D)", "L2 bank":
			cc += m.Total()
		}
	}
	return float64(cc) / float64(f.Total())
}

// String renders the floorplan as a table sorted by total area.
func (f Floorplan) String() string {
	ms := append([]Module(nil), f.Modules...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Total() > ms[j].Total() })
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %5s %10s %10s %7s\n", "module", "count", "each(mm2)", "total(mm2)", "share")
	total := f.Total()
	for _, m := range ms {
		fmt.Fprintf(&b, "%-22s %5d %10.2f %10.2f %6.1f%%\n",
			m.Name, m.Count, float64(m.Each), float64(m.Total()), 100*float64(m.Total())/float64(total))
	}
	fmt.Fprintf(&b, "%-22s %27.2f\n", "TOTAL", float64(total))
	return b.String()
}
