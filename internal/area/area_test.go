package area

import (
	"strings"
	"testing"
)

func TestCoreCacheFractionMatchesPaper(t *testing.T) {
	f := PiranhaNode(ASIC018())
	frac := f.CoreCacheFraction()
	// Paper §5: "Roughly 75% of the Piranha processing node area is
	// dedicated to the Alpha cores and L1/L2 caches".
	if frac < 0.68 || frac > 0.82 {
		t.Fatalf("core+cache fraction %.2f, want ~0.75", frac)
	}
}

func TestSRAMScaling(t *testing.T) {
	p := ASIC018()
	if p.SRAMArea(128<<10) <= p.SRAMArea(64<<10) {
		t.Fatal("SRAM area must grow with capacity")
	}
	// 1 MB of 4.2 µm² cells with overhead: on the order of 50 mm².
	a := float64(p.SRAMArea(1 << 20))
	if a < 30 || a > 80 {
		t.Fatalf("1MB SRAM area %.1f mm2 out of plausible range", a)
	}
}

func TestFloorplanRender(t *testing.T) {
	f := PiranhaNode(ASIC018())
	out := f.String()
	for _, want := range []string{"Alpha core", "L2 bank", "TOTAL", "Intra-chip switch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("floorplan missing %q:\n%s", want, out)
		}
	}
	if f.Total() <= 0 {
		t.Fatal("no area")
	}
}
