// Package noc simulates Piranha's system interconnect (paper §2.6): the
// output queue (OQ), the topology-independent adaptive virtual cut-through
// router (RT, derived from the S3.mp S-Connect), and the input queue (IQ).
//
// Each processing node has four point-to-point channels (I/O nodes have
// two); packets are either Short (128 bits, 2 interconnect cycles on a
// channel) or Long (128-bit header + 64-byte data, 10 cycles). Four
// priority levels are supported end to end; the OQ never lets low
// priority block high priority, while the IQ additionally lets low
// priority *bypass* blocked high-priority traffic when it can proceed.
//
// Routing is "hot potato": a packet that cannot get its preferred output
// port is deflected out of any free port with its age incremented, and
// age raises effective priority, so a packet can theoretically reach an
// empty buffer anywhere in the network — which is why buffering needs
// grow linearly rather than quadratically with node count.
package noc

import "fmt"

// Topology describes which nodes connect to which.
type Topology interface {
	Nodes() int
	// Neighbors returns the nodes reachable over n's channels,
	// in channel order.
	Neighbors(n int) []int
}

// Ring connects n nodes in a cycle (2 channels each).
type Ring struct{ N int }

// Nodes implements Topology.
func (r Ring) Nodes() int { return r.N }

// Neighbors implements Topology.
func (r Ring) Neighbors(n int) []int {
	return []int{(n + 1) % r.N, (n - 1 + r.N) % r.N}
}

// Torus is a W x H 2D torus (4 channels each, matching the Piranha
// processing node's channel count).
type Torus struct{ W, H int }

// Nodes implements Topology.
func (t Torus) Nodes() int { return t.W * t.H }

// Neighbors implements Topology.
func (t Torus) Neighbors(n int) []int {
	x, y := n%t.W, n/t.W
	wrap := func(x, y int) int { return ((y+t.H)%t.H)*t.W + (x+t.W)%t.W }
	return []int{wrap(x+1, y), wrap(x-1, y), wrap(x, y+1), wrap(x, y-1)}
}

// Mesh is a W x H 2D mesh (edge nodes have fewer channels).
type Mesh struct{ W, H int }

// Nodes implements Topology.
func (m Mesh) Nodes() int { return m.W * m.H }

// Neighbors implements Topology.
func (m Mesh) Neighbors(n int) []int {
	x, y := n%m.W, n/m.W
	var out []int
	if x+1 < m.W {
		out = append(out, n+1)
	}
	if x > 0 {
		out = append(out, n-1)
	}
	if y+1 < m.H {
		out = append(out, n+m.W)
	}
	if y > 0 {
		out = append(out, n-m.W)
	}
	return out
}

// Full connects every pair of nodes directly.
type Full struct{ N int }

// Nodes implements Topology.
func (f Full) Nodes() int { return f.N }

// Neighbors implements Topology.
func (f Full) Neighbors(n int) []int {
	out := make([]int, 0, f.N-1)
	for i := 0; i < f.N; i++ {
		if i != n {
			out = append(out, i)
		}
	}
	return out
}

// Table is an arbitrary topology given by adjacency lists, as loaded into
// the routers' routing tables by the system controller. It also models
// I/O nodes, which have only two channels.
type Table struct{ Adj [][]int }

// Nodes implements Topology.
func (t Table) Nodes() int { return len(t.Adj) }

// Neighbors implements Topology.
func (t Table) Neighbors(n int) []int { return t.Adj[n] }

// Routes computes per-node next-hop tables (all shortest-path next hops)
// by BFS; hops[n][d] is the distance from n to d. Exported for the
// protocol fabric's topology-backed network adapter.
func Routes(t Topology) (next [][][]int, hops [][]int, err error) {
	return routes(t)
}

// routes computes per-node next-hop tables (all shortest-path next hops)
// by BFS. hops[n][d] is the distance from n to d.
func routes(t Topology) (next [][][]int, hops [][]int, err error) {
	n := t.Nodes()
	hops = make([][]int, n)
	next = make([][][]int, n)
	for src := 0; src < n; src++ {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range t.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for d, dv := range dist {
			if dv < 0 && d != src {
				return nil, nil, fmt.Errorf("noc: node %d unreachable from %d", d, src)
			}
		}
		hops[src] = dist
	}
	for src := 0; src < n; src++ {
		next[src] = make([][]int, n)
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			for _, v := range t.Neighbors(src) {
				if hops[v][dst] == hops[src][dst]-1 {
					next[src][dst] = append(next[src][dst], v)
				}
			}
		}
	}
	return next, hops, nil
}
