package noc

// HopBench drives the same pre-allocated packet batch through a network
// over and over, re-arming the packets between rounds instead of
// injecting fresh ones. Inject necessarily allocates one Packet per
// call, so a benchmark built on it can never show the delivery path's
// true allocation profile; HopBench isolates the steady-state hop
// machinery — output-queue arbitration, the arrival wheel, pool
// compaction — which after the first round allocates nothing.
// cmd/piranha-bench is the only intended caller.
type HopBench struct {
	Net  *Network
	pkts []*Packet
}

// NewHopBench builds a network over topo and a batch of packets spread
// round-robin across source nodes, each aimed at a distinct non-local
// destination with a mix of priorities and lengths.
func NewHopBench(cfg Config, topo Topology, seed uint64, packets int) (*HopBench, error) {
	net, err := NewNetwork(cfg, topo, seed)
	if err != nil {
		return nil, err
	}
	hb := &HopBench{Net: net}
	nodes := topo.Nodes()
	for i := 0; i < packets; i++ {
		src := i % nodes
		dst := (src + 1 + i%(nodes-1)) % nodes
		hb.pkts = append(hb.pkts, &Packet{
			ID:   uint64(i + 1),
			Src:  src,
			Dst:  dst,
			Prio: i % Priorities,
			Long: i%3 == 0,
		})
	}
	return hb, nil
}

// Packets returns the batch size (ops-per-round for throughput math).
func (hb *HopBench) Packets() int { return len(hb.pkts) }

// Round re-arms every packet, enqueues it at its source router, and
// steps the network until the whole batch drains, returning the number
// delivered. Delivered is re-sliced rather than reallocated, and every
// queue the batch flows through keeps its backing storage, so rounds
// after the first perform no allocation.
func (hb *HopBench) Round(maxCycles int64) (int, error) {
	n := hb.Net
	n.Delivered = n.Delivered[:0]
	for _, p := range hb.pkts {
		p.InjectCycle = n.cycle
		p.DeliverCycle = 0
		p.Hops = 0
		p.Deflections = 0
		p.age = 0
		n.rts[p.Src].oq = append(n.rts[p.Src].oq, p)
		n.inFlight++
		n.activate(p.Src)
	}
	if err := n.Run(maxCycles); err != nil {
		return 0, err
	}
	return len(n.Delivered), nil
}
