package noc

import (
	"sort"
	"testing"

	"piranha/internal/sim"
)

// TestOverflowBurstDeliveryOrder schedules a burst of arrivals far past
// the wheel horizon — the overflow path — in scrambled cycle order and
// asserts they deliver in exactly the order the old linear-rescan merge
// produced: ascending cycle, insertion sequence within a cycle.
func TestOverflowBurstDeliveryOrder(t *testing.T) {
	topo := Ring{N: 4}
	net, err := NewNetwork(DefaultConfig(), topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	horizon := int64(len(net.wheel))
	if horizon < minWheelSlots {
		t.Fatalf("wheel horizon %d below minimum %d", horizon, minWheelSlots)
	}

	// Occupy a spread of near-term buckets, then schedule arrivals whose
	// cycles collide with those slots one or more wheel laps out: every
	// one must take the overflow path. Cycles are deliberately scrambled
	// so the sorted insert is exercised off the append fast path.
	type want struct {
		cycle int64
		seq   uint64
		id    uint64
	}
	var wants []want
	mk := func(id uint64, at int64) {
		p := &Packet{ID: id, Src: 0, Dst: 1}
		net.schedule(at, p, 1)
		net.inFlight++
		wants = append(wants, want{cycle: at, seq: net.arrSeq, id: id})
	}
	// Near-term occupants claim their buckets (these deliver first).
	for i := int64(0); i < 8; i++ {
		mk(uint64(100+i), 10+i*3)
	}
	// Past-horizon burst: same buckets, 1..3 laps later, shuffled order.
	laps := []int64{2, 1, 3, 1, 2, 3, 1, 2}
	for i, lap := range laps {
		mk(uint64(200+i), 10+int64(i)*3+lap*horizon)
	}
	if net.ovHead != 0 || len(net.overflow) != len(laps) {
		t.Fatalf("expected %d overflow entries, got %d (head %d)", len(laps), len(net.overflow), net.ovHead)
	}
	for i := 1; i < len(net.overflow); i++ {
		a, b := net.overflow[i-1], net.overflow[i]
		if a.cycle > b.cycle || (a.cycle == b.cycle && a.seq > b.seq) {
			t.Fatalf("overflow not sorted at %d: (%d,%d) before (%d,%d)", i, a.cycle, a.seq, b.cycle, b.seq)
		}
	}

	if err := net.Run(8 * horizon); err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].cycle != wants[j].cycle {
			return wants[i].cycle < wants[j].cycle
		}
		return wants[i].seq < wants[j].seq
	})
	if len(net.Delivered) != len(wants) {
		t.Fatalf("delivered %d of %d", len(net.Delivered), len(wants))
	}
	for i, p := range net.Delivered {
		if p.ID != wants[i].id {
			t.Fatalf("delivery %d: packet %d, want %d", i, p.ID, wants[i].id)
		}
		if p.DeliverCycle != wants[i].cycle {
			t.Fatalf("delivery %d: cycle %d, want %d", i, p.DeliverCycle, wants[i].cycle)
		}
	}
}

// TestWheelSizedFromDiameter: a 32x32 torus (diameter 32, so a
// full-diameter long-packet journey spans 320 cycles) must get a wheel
// horizon past the old fixed 256 slots, while small machines keep it.
func TestWheelSizedFromDiameter(t *testing.T) {
	small, err := NewNetwork(DefaultConfig(), Torus{W: 4, H: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(small.wheel); got != minWheelSlots {
		t.Fatalf("4x4 torus wheel %d slots, want %d", got, minWheelSlots)
	}
	big, err := NewNetwork(DefaultConfig(), Torus{W: 32, H: 32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(big.wheel); got != 1024 {
		t.Fatalf("32x32 torus wheel %d slots, want 1024", got)
	}
}

// runTraffic drives uniform random traffic and a drain; forceDense
// re-activates every router before each step, turning the sparse walk
// back into the old dense 0..N-1 loop. Sparse activation claims skipping
// quiescent routers changes nothing — this is that claim, tested.
func runTraffic(t *testing.T, forceDense bool) NetStats {
	t.Helper()
	topo := Torus{W: 4, H: 4}
	net, err := NewNetwork(Config{BufferPool: 4, OQDepth: 8}, topo, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(99)
	n := topo.Nodes()
	dense := func() {
		if !forceDense {
			return
		}
		for i := 0; i < n; i++ {
			net.activate(i)
		}
	}
	for c := 0; c < 2000; c++ {
		for node := 0; node < n; node++ {
			if rng.Float64() < 0.35 {
				dst := rng.Intn(n)
				if dst == node {
					continue
				}
				net.Inject(node, dst, rng.Intn(Priorities), rng.Bool(0.3))
			}
		}
		dense()
		net.Step()
	}
	for net.InFlight() > 0 {
		dense()
		net.Step()
	}
	return net.Stats()
}

// TestSparseActivationMatchesDense asserts byte-identical outcomes
// between the sparse worklist walk and a forced dense walk over every
// router: same deliveries, latencies, hops, deflections and buffer
// depths under contended random traffic.
func TestSparseActivationMatchesDense(t *testing.T) {
	sparse := runTraffic(t, false)
	dense := runTraffic(t, true)
	if sparse != dense {
		t.Fatalf("sparse run diverged from dense run:\nsparse: %+v\ndense:  %+v", sparse, dense)
	}
}

// TestFastForwardSkipsIdleWindow: with every router quiescent and one
// arrival far in the future, Run must jump the clock instead of ticking
// through the window, and the packet's delivery cycle must be exactly
// the scheduled one.
func TestFastForwardSkipsIdleWindow(t *testing.T) {
	net, err := NewNetwork(DefaultConfig(), Ring{N: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	const far = int64(1 << 20)
	p := &Packet{ID: 1, Src: 0, Dst: 2}
	net.schedule(far, p, 2)
	net.inFlight++
	if err := net.Run(2 * far); err != nil {
		t.Fatal(err)
	}
	if p.DeliverCycle != far {
		t.Fatalf("delivered at %d, want %d", p.DeliverCycle, far)
	}
	if net.FastForwarded < far-minWheelSlots {
		t.Fatalf("fast-forwarded only %d of ~%d idle cycles", net.FastForwarded, far)
	}
}

// TestFastForwardWindowIsNotAWedge co-simulates the interconnect under
// a progress watchdog: each engine tick grants the network a bounded
// step budget, and the watchdog trips after maxIdle intervals without a
// delivery. A far-future arrival is a legitimate globally idle window —
// with fast-forward the first tick reaches it and the watchdog stays
// quiet; the control run (same driver, fast-forward withheld) burns its
// whole budget ticking empty cycles and must trip, proving the watchdog
// would have seen the window as a wedge.
func TestFastForwardWindowIsNotAWedge(t *testing.T) {
	drive := func(fastForward bool) (wedged bool, delivered int) {
		net, err := NewNetwork(DefaultConfig(), Ring{N: 4}, 1)
		if err != nil {
			t.Fatal(err)
		}
		const far = int64(1 << 20)
		p := &Packet{ID: 1, Src: 0, Dst: 2}
		net.schedule(far, p, 2)
		net.inFlight++

		eng := sim.NewEngine()
		wd := sim.NewWatchdog(eng, sim.Microsecond, 3,
			func() uint64 { return uint64(len(net.Delivered)) },
			func(string) { wedged = true })
		var tick func()
		ticks := 0
		tick = func() {
			if fastForward {
				net.FastForward()
			}
			for i := 0; i < 256 && net.InFlight() > 0; i++ {
				net.Step()
			}
			ticks++
			if net.InFlight() > 0 && ticks < 64 && !wedged {
				eng.After(sim.Microsecond, tick)
				return
			}
			wd.Stop()
		}
		eng.After(sim.Microsecond, tick)
		eng.Run()
		return wedged, len(net.Delivered)
	}

	wedged, delivered := drive(true)
	if wedged {
		t.Fatal("fast-forwarded idle window reported as a wedge")
	}
	if delivered != 1 {
		t.Fatalf("fast-forward run delivered %d packets, want 1", delivered)
	}
	wedged, delivered = drive(false)
	if !wedged {
		t.Fatal("control without fast-forward should trip the watchdog (else this test proves nothing)")
	}
	if delivered != 0 {
		t.Fatalf("control delivered %d packets inside its budget, want 0", delivered)
	}
}
