package noc

import (
	"testing"

	"piranha/internal/sim"
)

func TestTopologies(t *testing.T) {
	cases := []struct {
		name  string
		topo  Topology
		nodes int
		chans int // expected channels of node 0
	}{
		{"ring8", Ring{N: 8}, 8, 2},
		{"torus4x4", Torus{W: 4, H: 4}, 16, 4},
		{"mesh3x3-corner", Mesh{W: 3, H: 3}, 9, 2},
		{"full5", Full{N: 5}, 5, 4},
		{"table", Table{Adj: [][]int{{1}, {0, 2}, {1}}}, 3, 1},
	}
	for _, tc := range cases {
		if got := tc.topo.Nodes(); got != tc.nodes {
			t.Fatalf("%s: nodes %d, want %d", tc.name, got, tc.nodes)
		}
		if got := len(tc.topo.Neighbors(0)); got != tc.chans {
			t.Fatalf("%s: node 0 has %d channels, want %d", tc.name, got, tc.chans)
		}
	}
}

func TestTorusChannelCountMatchesPiranha(t *testing.T) {
	// Piranha processing nodes have exactly four channels; a 2D torus
	// uses all of them at every node.
	topo := Torus{W: 4, H: 4}
	for i := 0; i < topo.Nodes(); i++ {
		if len(topo.Neighbors(i)) != 4 {
			t.Fatalf("node %d has %d channels", i, len(topo.Neighbors(i)))
		}
	}
}

func TestRoutesShortestPath(t *testing.T) {
	_, hops, err := routes(Ring{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if hops[0][4] != 4 || hops[0][7] != 1 || hops[0][0] != 0 {
		t.Fatalf("ring distances wrong: %v", hops[0])
	}
	_, hops, err = routes(Torus{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Opposite corner of a 4x4 torus is 2+2 hops away.
	if hops[0][10] != 4 {
		t.Fatalf("torus distance 0->10 = %d, want 4", hops[0][10])
	}
}

func TestRoutesDisconnected(t *testing.T) {
	if _, _, err := routes(Table{Adj: [][]int{{1}, {0}, {}}}); err == nil {
		t.Fatal("disconnected topology accepted")
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	n, err := NewNetwork(DefaultConfig(), Torus{W: 4, H: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Inject(0, 10, 2, false)
	if err := n.Run(1000); err != nil {
		t.Fatal(err)
	}
	if p.DeliverCycle == 0 {
		t.Fatal("packet not delivered")
	}
	// 4 hops x 2 cycles, plus the injection cycle.
	if lat := p.DeliverCycle - p.InjectCycle; lat < 8 || lat > 12 {
		t.Fatalf("uncontended latency %d cycles, want ~9", lat)
	}
	if p.Hops != 4 {
		t.Fatalf("hops %d, want 4 (shortest path)", p.Hops)
	}
}

func TestLongPacketSlower(t *testing.T) {
	mk := func(long bool) int64 {
		n, _ := NewNetwork(DefaultConfig(), Ring{N: 4}, 1)
		p := n.Inject(0, 1, 0, long)
		if err := n.Run(100); err != nil {
			t.Fatal(err)
		}
		return p.DeliverCycle - p.InjectCycle
	}
	s, l := mk(false), mk(true)
	if l-s != LongCycles-ShortCycles {
		t.Fatalf("long-short latency delta %d, want %d", l-s, LongCycles-ShortCycles)
	}
}

func TestAllDeliveredUnderLoad(t *testing.T) {
	// Uniform random traffic at high load: every packet must still be
	// delivered exactly once (no loss, no duplication).
	n, err := NewNetwork(DefaultConfig(), Torus{W: 4, H: 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(9)
	injected := 0
	for c := 0; c < 400; c++ {
		for k := 0; k < 4; k++ {
			src, dst := rng.Intn(16), rng.Intn(16)
			if src != dst {
				n.Inject(src, dst, rng.Intn(4), rng.Bool(0.3))
				injected++
			}
		}
		n.Step()
	}
	if err := n.Run(100000); err != nil {
		t.Fatal(err)
	}
	if len(n.Delivered) != injected {
		t.Fatalf("delivered %d of %d", len(n.Delivered), injected)
	}
	seen := map[uint64]bool{}
	for _, p := range n.Delivered {
		if seen[p.ID] {
			t.Fatalf("packet %d delivered twice", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestHotPotatoDeflectsUnderContention(t *testing.T) {
	// Funnel heavy traffic into one node of a ring with tiny buffers:
	// deflections must occur, and everything still arrives.
	cfg := Config{BufferPool: 1, OQDepth: 4}
	n, err := NewNetwork(cfg, Torus{W: 4, H: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 16; i++ {
		for k := 0; k < 6; k++ {
			n.Inject(i, 0, 0, true)
		}
	}
	if err := n.Run(100000); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Delivered != 90 {
		t.Fatalf("delivered %d, want 90", st.Delivered)
	}
	if st.Deflections == 0 {
		t.Fatal("expected deflections under funnel contention")
	}
	if st.MaxPoolDepth > uint64(cfg.BufferPool)+8 {
		t.Fatalf("pool depth %d grew far past capacity %d", st.MaxPoolDepth, cfg.BufferPool)
	}
}

func TestPriorityWinsArbitration(t *testing.T) {
	// Two packets compete for the same single channel: the
	// high-priority one must go first.
	n, err := NewNetwork(DefaultConfig(), Ring{N: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Both from node 0 to node 1 (one channel toward 1).
	low := n.Inject(0, 1, 0, true)
	high := n.Inject(0, 1, 3, true)
	if err := n.Run(1000); err != nil {
		t.Fatal(err)
	}
	if high.DeliverCycle >= low.DeliverCycle {
		t.Fatalf("high prio delivered at %d, low at %d", high.DeliverCycle, low.DeliverCycle)
	}
}

func TestLowPriorityBypassesBlockedHigh(t *testing.T) {
	// IQ property: low priority may proceed when high priority is
	// blocked — here the low-priority packet goes the other way round
	// the ring while high waits for the busy channel.
	n, err := NewNetwork(DefaultConfig(), Ring{N: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate channel 0->1 with long transfers.
	n.Inject(0, 1, 3, true)
	n.Inject(0, 1, 3, true)
	// A low-priority packet for node 3 uses the reverse channel freely.
	low := n.Inject(0, 3, 0, false)
	if err := n.Run(1000); err != nil {
		t.Fatal(err)
	}
	if low.DeliverCycle-low.InjectCycle > 5 {
		t.Fatalf("low-priority packet blocked: %d cycles", low.DeliverCycle-low.InjectCycle)
	}
}

func TestAgingPreventsStarvation(t *testing.T) {
	// Keep injecting high-priority traffic across a node while one
	// low-priority packet transits it: the low packet must still get
	// through within bounded time thanks to age escalation.
	n, err := NewNetwork(DefaultConfig(), Ring{N: 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	victim := n.Inject(0, 4, 0, false)
	for c := 0; c < 300; c++ {
		n.Inject(1, 2, 3, false)
		n.Step()
		if victim.DeliverCycle != 0 {
			break
		}
	}
	n.Run(10000)
	if victim.DeliverCycle == 0 {
		t.Fatal("low-priority packet starved")
	}
}

func TestStatsSummary(t *testing.T) {
	n, _ := NewNetwork(DefaultConfig(), Full{N: 4}, 1)
	n.Inject(0, 1, 0, false)
	n.Inject(1, 2, 0, false)
	if err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Delivered != 2 || st.AvgHops != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.AvgLatency <= 0 {
		t.Fatal("no latency recorded")
	}
}

func BenchmarkTorusUniformTraffic(b *testing.B) {
	n, _ := NewNetwork(DefaultConfig(), Torus{W: 4, H: 4}, 11)
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := rng.Intn(16), rng.Intn(16)
		if src != dst {
			n.Inject(src, dst, rng.Intn(4), false)
		}
		n.Step()
	}
	n.Run(1 << 30)
}
