package noc

import (
	"fmt"

	"piranha/internal/fault"
	"piranha/internal/sim"
)

// Packet kinds and sizes (paper §2.6.1).
const (
	// ShortCycles is the channel occupancy of a 128-bit packet.
	ShortCycles = 2
	// LongCycles is the occupancy of a header + 64-byte-data packet.
	LongCycles = 10
	// Priorities supported by the OQ and IQ.
	Priorities = 4
)

// Packet is one interconnect packet in flight.
type Packet struct {
	ID   uint64
	Src  int
	Dst  int
	Prio int // 0 (lowest) .. 3
	Long bool

	// Telemetry.
	InjectCycle  int64
	DeliverCycle int64
	Hops         int
	Deflections  int
	age          int
}

func (p *Packet) cycles() int64 {
	if p.Long {
		return LongCycles
	}
	return ShortCycles
}

// bytes is the payload the link layer frames for this packet: a 128-bit
// header for short packets, header + 64-byte line for long ones.
func (p *Packet) bytes() int {
	if p.Long {
		return 80
	}
	return 16
}

// Config tunes the routers.
type Config struct {
	// BufferPool is the shared packet buffer capacity per router,
	// across all lanes and priorities (the S-Connect common pool).
	BufferPool int
	// OQDepth bounds locally-injected packets waiting for the router;
	// the fall-through path is a single cycle when the router is ready.
	OQDepth int
}

// DefaultConfig matches the prototype's modest buffering.
func DefaultConfig() Config { return Config{BufferPool: 16, OQDepth: 8} }

// router is one node's RT with its IQ and OQ.
type router struct {
	id   int
	pool []*Packet // shared buffer pool (transit packets)
	oq   []*Packet // locally injected, waiting
	// linkFree[i] is the cycle at which channel i is next available.
	linkFree []int64

	MaxPool uint64
	Refused uint64 // injections deferred because transit had priority
}

// Network is a cycle-driven simulation of the whole interconnect.
type Network struct {
	cfg   Config
	topo  Topology
	next  [][][]int
	hops  [][]int
	rts   []*router
	rng   *sim.RNG
	cycle int64
	seq   uint64

	inFlight  int
	arrivals  map[int64][]arrival // packets completing a hop at a cycle
	Delivered []*Packet

	flt *fault.Injector // nil when fault injection is off
}

type arrival struct {
	pkt *Packet
	at  int
}

// NewNetwork builds the interconnect over a topology.
func NewNetwork(cfg Config, topo Topology, seed uint64) (*Network, error) {
	next, hops, err := routes(topo)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:      cfg,
		topo:     topo,
		next:     next,
		hops:     hops,
		rng:      sim.NewRNG(seed),
		arrivals: make(map[int64][]arrival),
	}
	for i := 0; i < topo.Nodes(); i++ {
		n.rts = append(n.rts, &router{
			id:       i,
			linkFree: make([]int64, len(topo.Neighbors(i))),
		})
	}
	return n, nil
}

// SetFaults attaches a fault injector (nil disables): every hop runs the
// packet's frame through the link-layer encode/decode path at the plan's
// bit-error rate, and corrupted frames re-occupy the output channel for
// each retransmission.
func (n *Network) SetFaults(inj *fault.Injector) { n.flt = inj }

// Cycle returns the current interconnect cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// InFlight returns the number of undelivered packets.
func (n *Network) InFlight() int { return n.inFlight }

// Inject queues a packet for transmission from src.
func (n *Network) Inject(src, dst, prio int, long bool) *Packet {
	if src == dst {
		panic("noc: self-injection")
	}
	n.seq++
	p := &Packet{ID: n.seq, Src: src, Dst: dst, Prio: prio, Long: long, InjectCycle: n.cycle}
	rt := n.rts[src]
	rt.oq = append(rt.oq, p)
	n.inFlight++
	return p
}

// Step advances the network one interconnect cycle.
func (n *Network) Step() {
	n.cycle++
	// 1. Hop completions land in the receiving router's pool or IQ.
	for _, a := range n.arrivals[n.cycle] {
		p := a.pkt
		p.Hops++
		if a.at == p.Dst {
			p.DeliverCycle = n.cycle
			n.Delivered = append(n.Delivered, p)
			n.inFlight--
			continue
		}
		rt := n.rts[a.at]
		rt.pool = append(rt.pool, p)
		if u := uint64(len(rt.pool)); u > rt.MaxPool {
			rt.MaxPool = u
		}
	}
	delete(n.arrivals, n.cycle)

	// 2. Each router arbitrates its output channels: transit traffic
	// first (by priority then age — the OQ accepts new packets only
	// when the router has room), then local injections.
	for _, rt := range n.rts {
		n.arbitrate(rt)
	}
}

// arbitrate assigns packets to free output channels of one router.
func (n *Network) arbitrate(rt *router) {
	neigh := n.topo.Neighbors(rt.id)
	taken := make([]bool, len(neigh))
	for i, f := range rt.linkFree {
		if f > n.cycle {
			taken[i] = true
		}
	}

	// Order transit packets by (priority+age) descending, then age.
	order := make([]int, len(rt.pool))
	for i := range order {
		order[i] = i
	}
	eff := func(p *Packet) int { return p.Prio + p.age }
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && eff(rt.pool[order[j]]) > eff(rt.pool[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	var remaining []*Packet
	channelOf := func(target int) int {
		for i, v := range neigh {
			if v == target {
				return i
			}
		}
		return -1
	}

	sendOut := func(p *Packet, ch int) {
		occ := p.cycles()
		if r := n.flt.HopRetransmits(uint64(rt.id), p.bytes()); r > 0 {
			// Each go-back-N resend re-occupies the channel for the full
			// packet and delays the hop's arrival by the same amount.
			occ += int64(r) * p.cycles()
		}
		rt.linkFree[ch] = n.cycle + occ
		at := n.cycle + occ
		n.arrivals[at] = append(n.arrivals[at], arrival{pkt: p, at: neigh[ch]})
	}

	for _, idx := range order {
		p := rt.pool[idx]
		// Preferred: any shortest-path channel that is free. Start the
		// scan at a random offset so equal-cost paths share the load
		// (adaptive routing).
		sent := false
		pref := n.next[rt.id][p.Dst]
		off := 0
		if len(pref) > 1 {
			off = n.rng.Intn(len(pref))
		}
		for k := range pref {
			hop := pref[(k+off)%len(pref)]
			if ch := channelOf(hop); ch >= 0 && !taken[ch] {
				taken[ch] = true
				sendOut(p, ch)
				sent = true
				break
			}
		}
		if sent {
			continue
		}
		// Hot potato: deflect out of any free channel, aging the packet
		// so it wins arbitration downstream.
		if len(rt.pool) > n.cfg.BufferPool {
			for ch := range neigh {
				if !taken[ch] {
					taken[ch] = true
					p.age++
					p.Deflections++
					sendOut(p, ch)
					sent = true
					break
				}
			}
		}
		if !sent {
			// Waiting in the buffer also ages the packet, so starved
			// traffic eventually outranks everything else.
			p.age++
			remaining = append(remaining, p)
		}
	}
	rt.pool = remaining

	// 3. Local injections only when transit traffic left room (the OQ
	// gives priority to transit). Highest priority first; low priority
	// must not block high priority.
	for i := 1; i < len(rt.oq); i++ {
		for j := i; j > 0 && rt.oq[j].Prio > rt.oq[j-1].Prio; j-- {
			rt.oq[j], rt.oq[j-1] = rt.oq[j-1], rt.oq[j]
		}
	}
	var oqLeft []*Packet
	for _, p := range rt.oq {
		sent := false
		for _, hop := range n.next[rt.id][p.Dst] {
			if ch := channelOf(hop); ch >= 0 && !taken[ch] {
				taken[ch] = true
				sendOut(p, ch)
				sent = true
				break
			}
		}
		if !sent {
			rt.Refused++
			oqLeft = append(oqLeft, p)
		}
	}
	rt.oq = oqLeft
}

// Run steps until all injected packets are delivered or maxCycles pass.
func (n *Network) Run(maxCycles int64) error {
	for limit := n.cycle + maxCycles; n.inFlight > 0; {
		if n.cycle >= limit {
			return fmt.Errorf("noc: %d packets undelivered after %d cycles", n.inFlight, maxCycles)
		}
		n.Step()
	}
	return nil
}

// Stats summarizes delivered-packet telemetry.
type NetStats struct {
	Delivered    int
	AvgLatency   float64 // cycles
	MaxLatency   int64
	AvgHops      float64
	Deflections  uint64
	MaxPoolDepth uint64
}

// Stats computes summary statistics over delivered packets.
func (n *Network) Stats() NetStats {
	s := NetStats{Delivered: len(n.Delivered)}
	var totLat, totHops int64
	for _, p := range n.Delivered {
		lat := p.DeliverCycle - p.InjectCycle
		totLat += lat
		if lat > s.MaxLatency {
			s.MaxLatency = lat
		}
		totHops += int64(p.Hops)
		s.Deflections += uint64(p.Deflections)
	}
	if s.Delivered > 0 {
		s.AvgLatency = float64(totLat) / float64(s.Delivered)
		s.AvgHops = float64(totHops) / float64(s.Delivered)
	}
	for _, rt := range n.rts {
		if rt.MaxPool > s.MaxPoolDepth {
			s.MaxPoolDepth = rt.MaxPool
		}
	}
	return s
}
