package noc

import (
	"fmt"
	"math/bits"

	"piranha/internal/fault"
	"piranha/internal/sim"
)

// Packet kinds and sizes (paper §2.6.1).
const (
	// ShortCycles is the channel occupancy of a 128-bit packet.
	ShortCycles = 2
	// LongCycles is the occupancy of a header + 64-byte-data packet.
	LongCycles = 10
	// Priorities supported by the OQ and IQ.
	Priorities = 4
)

// Packet is one interconnect packet in flight.
type Packet struct {
	ID   uint64
	Src  int
	Dst  int
	Prio int // 0 (lowest) .. 3
	Long bool

	// Telemetry.
	InjectCycle  int64
	DeliverCycle int64
	Hops         int
	Deflections  int
	age          int
}

func (p *Packet) cycles() int64 {
	if p.Long {
		return LongCycles
	}
	return ShortCycles
}

// bytes is the payload the link layer frames for this packet: a 128-bit
// header for short packets, header + 64-byte line for long ones.
func (p *Packet) bytes() int {
	if p.Long {
		return 80
	}
	return 16
}

// Config tunes the routers.
type Config struct {
	// BufferPool is the shared packet buffer capacity per router,
	// across all lanes and priorities (the S-Connect common pool).
	BufferPool int
	// OQDepth bounds locally-injected packets waiting for the router;
	// the fall-through path is a single cycle when the router is ready.
	OQDepth int
}

// DefaultConfig matches the prototype's modest buffering.
func DefaultConfig() Config { return Config{BufferPool: 16, OQDepth: 8} }

// MinHopLatency is the static lower bound on one router hop: a short
// (header-only) packet occupies its output channel for ShortCycles of the
// interconnect clock, and the fall-through path adds no dead cycles. It
// feeds the parallel engine's conservative lookahead — no effect can
// cross the interconnect faster than its shortest hop.
func MinHopLatency(icClock sim.Clock) sim.Time { return icClock.Cycles(ShortCycles) }

// router is one node's RT with its IQ and OQ.
type router struct {
	id int
	// neigh caches Topology.Neighbors(id): arbitration consults it every
	// cycle, and several Topology implementations build the slice fresh
	// per call.
	neigh []int
	pool  []*Packet // shared buffer pool (transit packets)
	oq    []*Packet // locally injected, waiting
	// linkFree[i] is the cycle at which channel i is next available.
	linkFree []int64

	// Arbitration scratch, reused every cycle so the steady-state
	// router loop performs no allocation.
	taken []bool
	order []int
	keep  []*Packet

	MaxPool uint64
	Refused uint64 // injections deferred because transit had priority
}

// minWheelSlots is the smallest arrival-wheel horizon. A fault-free hop
// completes within LongCycles (10) cycles, so 256 cycles of lookahead
// covers small machines with room to spare; larger topologies size the
// wheel from their diameter (see wheelSlots) so steady-state traffic
// never spills past the horizon. Anything beyond the horizon — extreme
// retransmit chains, mostly — lands in the sorted overflow list.
const minWheelSlots = 1 << 8

// wheelSlots sizes the arrival wheel for a topology: enough power-of-two
// slots to cover a full-diameter journey of long packets with a 2x
// margin for channel occupancy and moderate retransmission, floored at
// minWheelSlots. A 32x32 torus (diameter 32) gets 1024 slots where the
// old fixed 256-cycle ring forced every distant hop of a large machine
// through the linear-scan overflow path.
func wheelSlots(hops [][]int) int {
	diam := 0
	for _, row := range hops {
		for _, h := range row {
			if h > diam {
				diam = h
			}
		}
	}
	need := diam * LongCycles * 2
	slots := minWheelSlots
	for slots < need {
		slots <<= 1
	}
	return slots
}

// wheelBucket is one slot of the arrival wheel: the cycle it currently
// holds arrivals for plus the arrivals themselves. The backing array is
// reused across wheel laps, so steady-state hop delivery allocates
// nothing.
type wheelBucket struct {
	cycle int64
	arr   []arrival
}

// Network is a cycle-driven simulation of the whole interconnect.
type Network struct {
	cfg   Config
	topo  Topology
	next  [][][]int
	hops  [][]int
	rts   []*router
	rng   *sim.RNG
	cycle int64
	seq   uint64

	inFlight int
	// Hop completions are held in a ring-indexed bucket wheel: bucket
	// cycle&mask holds the arrivals for that cycle. Step visits every
	// cycle in order, so a bucket is always drained before its slot is
	// needed for a cycle one lap ahead; the rare beyond-horizon insert
	// lands in overflow, kept sorted by (cycle, seq) so draining takes a
	// prefix instead of rescanning the whole spill, and bucket and prefix
	// are merged by arrival sequence so delivery order is identical to
	// the old per-cycle append order.
	wheel    []wheelBucket
	overflow []arrival // past-horizon arrivals, sorted by (cycle, seq)
	ovHead   int       // first pending overflow entry (drained prefix)
	due      []arrival // per-cycle merge scratch, reused
	arrSeq   uint64    // global arrival insertion sequence

	// Sparse activation: bit i of active marks router i as holding
	// buffered or locally-queued work. Step's arbitration walks only set
	// bits — a quiescent router's arbitrate is a no-op that consumes no
	// RNG, so skipping it is byte-identical and the per-cycle cost is
	// O(active routers), not O(N).
	active      []uint64
	activeCount int

	// FastForwarded counts cycles skipped across globally idle windows
	// (no active routers, all in-flight packets riding links).
	FastForwarded int64

	Delivered []*Packet

	flt *fault.Injector // nil when fault injection is off
}

type arrival struct {
	pkt   *Packet
	at    int
	cycle int64 // arrival cycle (used by overflow draining)
	seq   uint64
}

// NewNetwork builds the interconnect over a topology.
func NewNetwork(cfg Config, topo Topology, seed uint64) (*Network, error) {
	next, hops, err := routes(topo)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:    cfg,
		topo:   topo,
		next:   next,
		hops:   hops,
		rng:    sim.NewRNG(seed),
		wheel:  make([]wheelBucket, wheelSlots(hops)),
		active: make([]uint64, (topo.Nodes()+63)/64),
	}
	for i := 0; i < topo.Nodes(); i++ {
		neigh := topo.Neighbors(i)
		n.rts = append(n.rts, &router{
			id:       i,
			neigh:    neigh,
			linkFree: make([]int64, len(neigh)),
			taken:    make([]bool, len(neigh)),
		})
	}
	return n, nil
}

// SetFaults attaches a fault injector (nil disables): every hop runs the
// packet's frame through the link-layer encode/decode path at the plan's
// bit-error rate, and corrupted frames re-occupy the output channel for
// each retransmission.
func (n *Network) SetFaults(inj *fault.Injector) { n.flt = inj }

// Cycle returns the current interconnect cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// Hops returns the BFS hop-distance table computed at construction.
// Callers that need distances alongside a Network (e.g. latency
// calibration) should use this instead of recomputing Routes, which
// costs an O(N^2) BFS per call. The table is shared, not copied.
func (n *Network) Hops() [][]int { return n.hops }

// InFlight returns the number of undelivered packets.
func (n *Network) InFlight() int { return n.inFlight }

// Inject queues a packet for transmission from src.
func (n *Network) Inject(src, dst, prio int, long bool) *Packet {
	if src == dst {
		panic("noc: self-injection")
	}
	n.seq++
	p := &Packet{ID: n.seq, Src: src, Dst: dst, Prio: prio, Long: long, InjectCycle: n.cycle}
	rt := n.rts[src]
	rt.oq = append(rt.oq, p)
	n.inFlight++
	n.activate(src)
	return p
}

// activate marks router id as holding work so Step's sparse arbitration
// walk visits it.
//
//piranha:hotpath
func (n *Network) activate(id int) {
	w := uint(id) >> 6
	m := uint64(1) << (uint(id) & 63)
	if n.active[w]&m == 0 {
		n.active[w] |= m
		n.activeCount++
	}
}

// schedule queues an arrival for cycle at: the wheel bucket when the
// cycle is within the horizon and its slot is free (or already claimed
// by the same cycle), the overflow list otherwise. Overflow stays
// sorted by (cycle, seq) — the upper-bound binary insert keeps the
// monotone seq order stable within a cycle, a sustained burst of
// ascending-cycle spills degenerates to a plain append, and drainDue
// consumes a prefix instead of rescanning the whole list every cycle.
//
//piranha:hotpath
func (n *Network) schedule(at int64, pkt *Packet, rcv int) {
	n.arrSeq++
	a := arrival{pkt: pkt, at: rcv, cycle: at, seq: n.arrSeq}
	b := &n.wheel[at&int64(len(n.wheel)-1)]
	if len(b.arr) == 0 {
		b.cycle = at
		b.arr = append(b.arr, a)
		return
	}
	if b.cycle == at {
		b.arr = append(b.arr, a)
		return
	}
	lo, hi := n.ovHead, len(n.overflow)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.overflow[mid].cycle <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	n.overflow = append(n.overflow, arrival{})
	copy(n.overflow[lo+1:], n.overflow[lo:])
	n.overflow[lo] = a
}

// drainDue collects this cycle's arrivals into n.due in insertion-seq
// order, merging the wheel bucket with the overflow's due prefix. Both
// sources are individually seq-sorted (the bucket by appends, the
// prefix because same-cycle overflow entries keep insertion order), so
// a linear merge restores the exact order the old per-cycle append list
// had.
//
//piranha:hotpath
func (n *Network) drainDue() []arrival {
	n.due = n.due[:0]
	var bucket []arrival
	b := &n.wheel[n.cycle&int64(len(n.wheel)-1)]
	if len(b.arr) > 0 && b.cycle == n.cycle {
		bucket = b.arr
	}
	// Due overflow entries form a sorted prefix starting at ovHead;
	// consuming it is O(due) regardless of how much later spill waits
	// behind it.
	if n.ovHead >= len(n.overflow) || n.overflow[n.ovHead].cycle > n.cycle {
		if bucket == nil {
			return nil
		}
		n.due = append(n.due, bucket...)
		b.arr = b.arr[:0]
		return n.due
	}
	end := n.ovHead
	for end < len(n.overflow) && n.overflow[end].cycle <= n.cycle {
		end++
	}
	i := 0
	for _, a := range n.overflow[n.ovHead:end] {
		for i < len(bucket) && bucket[i].seq < a.seq {
			n.due = append(n.due, bucket[i])
			i++
		}
		n.due = append(n.due, a)
	}
	n.due = append(n.due, bucket[i:]...)
	n.ovHead = end
	if n.ovHead == len(n.overflow) {
		n.overflow = n.overflow[:0]
		n.ovHead = 0
	}
	if bucket != nil {
		b.arr = b.arr[:0]
	}
	return n.due
}

// Step advances the network one interconnect cycle.
func (n *Network) Step() {
	n.cycle++
	// 1. Hop completions land in the receiving router's pool or IQ.
	for _, a := range n.drainDue() {
		p := a.pkt
		p.Hops++
		if a.at == p.Dst {
			p.DeliverCycle = n.cycle
			n.Delivered = append(n.Delivered, p)
			n.inFlight--
			continue
		}
		rt := n.rts[a.at]
		rt.pool = append(rt.pool, p)
		if u := uint64(len(rt.pool)); u > rt.MaxPool {
			rt.MaxPool = u
		}
		n.activate(a.at)
	}

	// 2. Each active router arbitrates its output channels: transit
	// traffic first (by priority then age — the OQ accepts new packets
	// only when the router has room), then local injections. The walk
	// visits set bits in ascending id order — the same order as the old
	// dense 0..N-1 loop, so RNG consumption and packet outcomes are
	// byte-identical. Arbitration never activates another router within
	// the same cycle (sends land in the wheel for future cycles), so
	// clearing bits mid-walk is safe.
	for w := 0; w < len(n.active); w++ {
		set := n.active[w]
		for set != 0 {
			bit := set & -set
			set &^= bit
			rt := n.rts[w<<6+bits.TrailingZeros64(bit)]
			n.arbitrate(rt)
			if len(rt.pool) == 0 && len(rt.oq) == 0 {
				n.active[w] &^= bit
				n.activeCount--
			}
		}
	}
}

// nextArrival returns the earliest pending arrival cycle: the minimum
// stamp over occupied wheel buckets (a free slot accepts any future
// cycle, so an occupied bucket may sit laps ahead — the scan must read
// stamps, not walk cycles) or the overflow head, whichever is sooner.
// O(wheel slots), paid only when the network is globally idle.
func (n *Network) nextArrival() (int64, bool) {
	next := int64(-1)
	if n.ovHead < len(n.overflow) {
		next = n.overflow[n.ovHead].cycle
	}
	for i := range n.wheel {
		b := &n.wheel[i]
		if len(b.arr) > 0 && (next < 0 || b.cycle < next) {
			next = b.cycle
		}
	}
	if next < 0 {
		return 0, false
	}
	return next, true
}

// FastForward advances the clock across a globally idle window: when no
// router holds work, every in-flight packet is riding a link and the
// cycles until the next arrival provably change no state and consume no
// RNG — ticking them one by one would only burn host time. The jump
// stops one cycle short so the following Step lands exactly on the
// arrival. Returns the number of cycles skipped (0 when any router is
// active, nothing is in flight, or the next arrival is due anyway).
func (n *Network) FastForward() int64 {
	if n.activeCount != 0 || n.inFlight == 0 {
		return 0
	}
	next, ok := n.nextArrival()
	if !ok || next <= n.cycle+1 {
		return 0
	}
	skip := next - 1 - n.cycle
	n.cycle = next - 1
	n.FastForwarded += skip
	return skip
}

// arbitrate assigns packets to free output channels of one router.
func (n *Network) arbitrate(rt *router) {
	neigh := rt.neigh
	taken := rt.taken
	for i, f := range rt.linkFree {
		taken[i] = f > n.cycle
	}

	// Order transit packets by (priority+age) descending, then age.
	order := rt.order[:0]
	for i := range rt.pool {
		order = append(order, i)
	}
	rt.order = order
	eff := func(p *Packet) int { return p.Prio + p.age }
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && eff(rt.pool[order[j]]) > eff(rt.pool[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	remaining := rt.keep[:0]
	channelOf := func(target int) int {
		for i, v := range neigh {
			if v == target {
				return i
			}
		}
		return -1
	}

	sendOut := func(p *Packet, ch int) {
		occ := p.cycles()
		if r := n.flt.HopRetransmits(uint64(rt.id), p.bytes()); r > 0 {
			// Each go-back-N resend re-occupies the channel for the full
			// packet and delays the hop's arrival by the same amount.
			occ += int64(r) * p.cycles()
		}
		rt.linkFree[ch] = n.cycle + occ
		n.schedule(n.cycle+occ, p, neigh[ch])
	}

	for _, idx := range order {
		p := rt.pool[idx]
		// Preferred: any shortest-path channel that is free. Start the
		// scan at a random offset so equal-cost paths share the load
		// (adaptive routing).
		sent := false
		pref := n.next[rt.id][p.Dst]
		off := 0
		if len(pref) > 1 {
			off = n.rng.Intn(len(pref))
		}
		for k := range pref {
			hop := pref[(k+off)%len(pref)]
			if ch := channelOf(hop); ch >= 0 && !taken[ch] {
				taken[ch] = true
				sendOut(p, ch)
				sent = true
				break
			}
		}
		if sent {
			continue
		}
		// Hot potato: deflect out of any free channel, aging the packet
		// so it wins arbitration downstream.
		if len(rt.pool) > n.cfg.BufferPool {
			for ch := range neigh {
				if !taken[ch] {
					taken[ch] = true
					p.age++
					p.Deflections++
					sendOut(p, ch)
					sent = true
					break
				}
			}
		}
		if !sent {
			// Waiting in the buffer also ages the packet, so starved
			// traffic eventually outranks everything else.
			p.age++
			remaining = append(remaining, p)
		}
	}
	// Swap the survivor list into pool; the old pool array becomes next
	// cycle's scratch.
	rt.keep = rt.pool[:0]
	rt.pool = remaining

	// 3. Local injections only when transit traffic left room (the OQ
	// gives priority to transit). Highest priority first; low priority
	// must not block high priority.
	for i := 1; i < len(rt.oq); i++ {
		for j := i; j > 0 && rt.oq[j].Prio > rt.oq[j-1].Prio; j-- {
			rt.oq[j], rt.oq[j-1] = rt.oq[j-1], rt.oq[j]
		}
	}
	// Compact refused injections in place: writes trail reads, so the
	// survivor prefix never clobbers an unvisited entry.
	oqLeft := rt.oq[:0]
	for _, p := range rt.oq {
		sent := false
		for _, hop := range n.next[rt.id][p.Dst] {
			if ch := channelOf(hop); ch >= 0 && !taken[ch] {
				taken[ch] = true
				sendOut(p, ch)
				sent = true
				break
			}
		}
		if !sent {
			rt.Refused++
			oqLeft = append(oqLeft, p)
		}
	}
	rt.oq = oqLeft
}

// Run steps until all injected packets are delivered or maxCycles pass,
// fast-forwarding across globally idle windows. Every packet's delivery
// cycle, hop count and deflection count is identical to a cycle-by-cycle
// drain; only host time changes.
func (n *Network) Run(maxCycles int64) error {
	for limit := n.cycle + maxCycles; n.inFlight > 0; {
		if n.cycle >= limit {
			return fmt.Errorf("noc: %d packets undelivered after %d cycles", n.inFlight, maxCycles)
		}
		n.FastForward()
		n.Step()
	}
	return nil
}

// Stats summarizes delivered-packet telemetry.
type NetStats struct {
	Delivered    int
	AvgLatency   float64 // cycles
	MaxLatency   int64
	AvgHops      float64
	Deflections  uint64
	MaxPoolDepth uint64
	// FastForwarded is the number of cycles Run skipped across globally
	// idle windows (sparse activation's fast-forward).
	FastForwarded int64
}

// Stats computes summary statistics over delivered packets.
func (n *Network) Stats() NetStats {
	s := NetStats{Delivered: len(n.Delivered), FastForwarded: n.FastForwarded}
	var totLat, totHops int64
	for _, p := range n.Delivered {
		lat := p.DeliverCycle - p.InjectCycle
		totLat += lat
		if lat > s.MaxLatency {
			s.MaxLatency = lat
		}
		totHops += int64(p.Hops)
		s.Deflections += uint64(p.Deflections)
	}
	if s.Delivered > 0 {
		s.AvgLatency = float64(totLat) / float64(s.Delivered)
		s.AvgHops = float64(totHops) / float64(s.Delivered)
	}
	for _, rt := range n.rts {
		if rt.MaxPool > s.MaxPoolDepth {
			s.MaxPoolDepth = rt.MaxPool
		}
	}
	return s
}
