// Package l1 models Piranha's first-level caches (paper §2.1): per-core
// 64 KB two-way set-associative blocking instruction and data caches with
// single-cycle hit latency, a 2-bit MESI state per line, 256-entry 4-way
// TLBs, and (data cache only) a store buffer. The instruction cache is
// kept hardware-coherent and uses virtually the same design as the data
// cache, which is what lets the L2 treat both uniformly under the
// no-inclusion policy.
package l1

import (
	"piranha/internal/cache"
	"piranha/internal/sim"
)

// Kind distinguishes instruction from data caches.
type Kind uint8

// Cache kinds.
const (
	Instruction Kind = iota
	Data
)

func (k Kind) String() string {
	if k == Instruction {
		return "iL1"
	}
	return "dL1"
}

// Config describes an L1 module.
type Config struct {
	SizeBytes  int
	Ways       int
	TLBEntries int
	TLBWays    int
	// StoreBufEntries is the store buffer depth (data cache only).
	StoreBufEntries int
	// HitCycles is the access latency in core cycles (1 for Piranha).
	HitCycles int
}

// DefaultConfig is the prototype's 64 KB 2-way L1 with a 256-entry TLB.
func DefaultConfig() Config {
	return Config{
		SizeBytes:       64 << 10,
		Ways:            2,
		TLBEntries:      256,
		TLBWays:         4,
		StoreBufEntries: 8,
		HitCycles:       1,
	}
}

// Cache is one L1 module. It is a functional tag/state array; its
// controller-side timing (miss handling) is driven by the L2 bank.
type Cache struct {
	Kind Kind
	// CPU is the index of the core this module serves.
	CPU int
	// ID is the chip-wide L1 index (0..15: dL1s even, iL1s odd, or any
	// scheme the chip chooses); the L2 duplicate tags key on it.
	ID int

	cfg  Config
	arr  *cache.Cache
	TLB  *cache.TLB
	SB   *sim.Pool // store buffer occupancy (nil for iL1)
	hits uint64
}

// New returns an empty L1 module.
func New(kind Kind, cpu, id int, cfg Config) *Cache {
	c := &Cache{
		Kind: kind,
		CPU:  cpu,
		ID:   id,
		cfg:  cfg,
		arr: cache.New(cache.Config{
			SizeBytes: cfg.SizeBytes,
			Ways:      cfg.Ways,
			Replace:   cache.LRU,
		}),
		TLB: cache.NewTLB(cfg.TLBEntries, cfg.TLBWays),
	}
	if kind == Data {
		c.SB = sim.NewPool("storebuf", cfg.StoreBufEntries)
	}
	return c
}

// Config returns the module configuration.
func (c *Cache) Config() Config { return c.cfg }

// Probe performs a lookup for a load/fetch/store and returns the line's
// state (Invalid on miss) plus whether the TLB hit (a TLB miss costs a
// PAL-handled refill charged by the chip).
//
//piranha:hotpath
func (c *Cache) Probe(a cache.Addr) (cache.MESI, bool) {
	tlbHit := c.TLB.Access(a)
	if ln := c.arr.Probe(a.Line()); ln != nil {
		c.hits++
		return ln.State, tlbHit
	}
	return cache.Invalid, tlbHit
}

// State returns the current MESI state of the line without touching
// recency or counters.
//
//piranha:hotpath
func (c *Cache) State(l cache.LineAddr) cache.MESI {
	if ln := c.arr.Lookup(l); ln != nil {
		return ln.State
	}
	return cache.Invalid
}

// Fill installs a line in the given state and returns the displaced
// victim, if any. The caller (the L2 bank, which owns the duplicate tags)
// must process the victim.
func (c *Cache) Fill(l cache.LineAddr, st cache.MESI) (victim cache.Line) {
	return c.arr.Insert(l, st)
}

// SetState rewrites the state of a resident line (e.g. S->M on upgrade).
func (c *Cache) SetState(l cache.LineAddr, st cache.MESI) {
	if ln := c.arr.Lookup(l); ln != nil {
		ln.State = st
	}
}

// Invalidate drops the line, returning its prior state.
func (c *Cache) Invalidate(l cache.LineAddr) cache.MESI {
	return c.arr.Invalidate(l).State
}

// Downgrade moves an E/M line to S, returning the prior state.
func (c *Cache) Downgrade(l cache.LineAddr) cache.MESI {
	return c.arr.Downgrade(l)
}

// Stats exposes the underlying hit/miss counts.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.arr.Hits, c.arr.Misses, c.arr.Evictions
}

// Contents returns the valid lines (tests and duplicate-tag invariants).
func (c *Cache) Contents() []cache.Line { return c.arr.Contents() }

// CountValid returns the number of resident lines.
func (c *Cache) CountValid() int { return c.arr.CountValid() }
