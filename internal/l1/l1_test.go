package l1

import (
	"testing"

	"piranha/internal/cache"
)

func TestProbeFillInvalidate(t *testing.T) {
	c := New(Data, 0, 0, DefaultConfig())
	a := cache.Addr(0x1000)
	if st, _ := c.Probe(a); st != cache.Invalid {
		t.Fatalf("cold probe state %v", st)
	}
	c.Fill(a.Line(), cache.Exclusive)
	if st, _ := c.Probe(a); st != cache.Exclusive {
		t.Fatalf("state after fill %v", st)
	}
	if st := c.Invalidate(a.Line()); st != cache.Exclusive {
		t.Fatalf("invalidate returned %v", st)
	}
	if c.State(a.Line()) != cache.Invalid {
		t.Fatal("line survived invalidate")
	}
}

func TestSetStateUpgrade(t *testing.T) {
	c := New(Data, 0, 0, DefaultConfig())
	l := cache.Addr(0x40).Line()
	c.Fill(l, cache.Shared)
	c.SetState(l, cache.Modified)
	if c.State(l) != cache.Modified {
		t.Fatal("upgrade failed")
	}
	// SetState on an absent line is a no-op.
	c.SetState(999, cache.Modified)
	if c.State(999) != cache.Invalid {
		t.Fatal("SetState created a line")
	}
}

func TestVictimReturned(t *testing.T) {
	cfg := DefaultConfig()
	c := New(Data, 0, 0, cfg)
	sets := cfg.SizeBytes / cache.LineBytes / cfg.Ways
	// Three lines in one set of a 2-way cache force an eviction.
	l0 := cache.LineAddr(0)
	l1 := cache.LineAddr(sets)
	l2 := cache.LineAddr(2 * sets)
	c.Fill(l0, cache.Modified)
	c.Fill(l1, cache.Shared)
	v := c.Fill(l2, cache.Shared)
	if !v.State.Valid() || v.Tag != l0 || v.State != cache.Modified {
		t.Fatalf("victim %+v, want modified line 0", v)
	}
}

func TestInstructionCacheHasNoStoreBuffer(t *testing.T) {
	i := New(Instruction, 3, 7, DefaultConfig())
	if i.SB != nil {
		t.Fatal("iL1 should not have a store buffer")
	}
	d := New(Data, 3, 6, DefaultConfig())
	if d.SB == nil || d.SB.Size() != 8 {
		t.Fatal("dL1 store buffer missing or wrong size")
	}
	if i.Kind.String() != "iL1" || d.Kind.String() != "dL1" {
		t.Fatal("kind names wrong")
	}
}

func TestTLBIntegration(t *testing.T) {
	c := New(Data, 0, 0, DefaultConfig())
	c.Probe(0x2000)
	c.Probe(0x2040)
	if c.TLB.Misses != 1 || c.TLB.Hits != 1 {
		t.Fatalf("TLB hits=%d misses=%d", c.TLB.Hits, c.TLB.Misses)
	}
}

func TestStats(t *testing.T) {
	c := New(Data, 0, 0, DefaultConfig())
	c.Probe(0x100) // miss
	c.Fill(cache.Addr(0x100).Line(), cache.Shared)
	c.Probe(0x100) // hit
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}
