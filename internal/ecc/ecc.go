// Package ecc implements the single-error-correcting, double-error-detecting
// (SECDED) memory code that Piranha computes at 256-bit granularity instead
// of the conventional 64-bit granularity (paper §2.5.2).
//
// A SECDED code over k data bits needs r parity bits with 2^r >= k+r+1,
// plus one overall-parity bit. For k=64 that is 8 bits per word, i.e.
// 8 x 8 = 64 check bits per 64-byte line. For k=256 it is 9+1 = 10 bits per
// word, i.e. 2 x 10 = 20 check bits per line — leaving 64-20 = 44 spare
// bits per 64-byte line, which Piranha uses to store the directory entry
// with virtually no memory overhead.
package ecc

import "math/bits"

// DataBits is the ECC granularity in bits.
const DataBits = 256

// CheckBits is the number of check bits per 256-bit word
// (9 Hamming bits + 1 overall parity).
const CheckBits = 10

// Word is a 256-bit data word, least-significant word first.
type Word [4]uint64

// Bit returns data bit i (0 <= i < 256).
func (w Word) Bit(i int) int { return int(w[i>>6]>>(uint(i)&63)) & 1 }

// Flip toggles data bit i and returns the result.
func (w Word) Flip(i int) Word {
	w[i>>6] ^= 1 << (uint(i) & 63)
	return w
}

// Codeword carries a data word and its 10 check bits.
type Codeword struct {
	Data  Word
	Check uint16 // bits 0..8: Hamming parities; bit 9: overall parity
}

// Result describes the outcome of decoding a codeword.
type Result int

// Decode outcomes.
const (
	OK            Result = iota // no error detected
	CorrectedData               // a single data-bit error was corrected
	CorrectedCheck
	DoubleError // an uncorrectable (>=2 bit) error was detected
)

func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case CorrectedData:
		return "corrected-data"
	case CorrectedCheck:
		return "corrected-check"
	case DoubleError:
		return "double-error"
	}
	return "unknown"
}

// codePosition maps data bit i (0-based) to its 1-based position in the
// Hamming codeword, skipping power-of-two positions which hold parity.
var codePosition [DataBits]uint16

// dataIndex is the inverse map: codeword position -> data bit index + 1
// (0 means the position is a parity position).
var dataIndex [512]uint16

func init() {
	pos := uint16(1)
	for i := 0; i < DataBits; i++ {
		for pos&(pos-1) == 0 { // skip powers of two (parity positions)
			pos++
		}
		codePosition[i] = pos
		dataIndex[pos] = uint16(i) + 1
		pos++
	}
}

// syndrome computes the 9-bit Hamming syndrome and the overall parity of
// the data bits in w.
func syndrome(w Word) (syn uint16, parity int) {
	for i := 0; i < DataBits; i++ {
		if w.Bit(i) == 1 {
			syn ^= codePosition[i]
			parity ^= 1
		}
	}
	return syn, parity
}

// Encode computes the check bits for a data word.
func Encode(d Word) Codeword {
	syn, parity := syndrome(d)
	// Overall parity covers data bits and the 9 Hamming bits.
	overall := parity ^ parity9(syn)
	return Codeword{Data: d, Check: syn | uint16(overall)<<9}
}

// parity9 returns the parity of the low 9 bits of s.
func parity9(s uint16) int { return bits.OnesCount16(s&0x1ff) & 1 }

// Decode verifies and, if possible, corrects a codeword. It returns the
// (possibly corrected) data word and the decode result. This is standard
// extended-Hamming decoding: the syndrome locates a single error, and the
// overall parity distinguishes single (odd) from double (even) errors.
func Decode(c Codeword) (Word, Result) {
	recvSyn := c.Check & 0x1ff
	recvOverall := int(c.Check>>9) & 1

	dataSyn, dataParity := syndrome(c.Data)
	synDiff := recvSyn ^ dataSyn
	// Recompute the overall parity over the *received* codeword bits
	// (data + received Hamming bits) and compare with the stored bit.
	overallDiff := (dataParity ^ parity9(recvSyn)) ^ recvOverall

	switch {
	case synDiff == 0 && overallDiff == 0:
		return c.Data, OK
	case overallDiff == 1 && synDiff == 0:
		// The overall-parity bit itself flipped.
		return c.Data, CorrectedCheck
	case overallDiff == 1:
		// Odd number of flips with a nonzero syndrome: single-bit error
		// at codeword position synDiff.
		if di := dataIndex[synDiff]; di != 0 {
			return c.Data.Flip(int(di - 1)), CorrectedData
		}
		if synDiff&(synDiff-1) == 0 {
			// One of the Hamming parity bits flipped.
			return c.Data, CorrectedCheck
		}
		// Syndrome points outside the codeword: multi-bit error.
		return c.Data, DoubleError
	default:
		// Even number of flips, nonzero syndrome: uncorrectable.
		return c.Data, DoubleError
	}
}

// SpareBitsPerLine returns the number of check-storage bits left unused in
// a memory line of lineBytes when ECC is computed at granularity gran bits
// instead of the conventional 64-bit granularity. For Piranha's 64-byte
// lines and 256-bit granularity this is 44, the budget that holds the
// directory entry.
func SpareBitsPerLine(lineBytes, gran int) int {
	dataBits := lineBytes * 8
	budget := (dataBits / 64) * 8 // conventional 8 check bits per 64
	words := dataBits / gran
	need := words * checkBitsFor(gran)
	return budget - need
}

// checkBitsFor returns SECDED check bits for a k-bit word.
func checkBitsFor(k int) int {
	r := 0
	for (1 << r) < k+r+1 {
		r++
	}
	return r + 1 // +1 overall parity
}

// popcount64x4 counts set bits in a Word (used by tests and the directory).
func popcount64x4(w Word) int {
	return bits.OnesCount64(w[0]) + bits.OnesCount64(w[1]) +
		bits.OnesCount64(w[2]) + bits.OnesCount64(w[3])
}

// Weight returns the number of set data bits in the word.
func (w Word) Weight() int { return popcount64x4(w) }
