package ecc

import (
	"testing"
	"testing/quick"

	"piranha/internal/sim"
)

func randWord(r *sim.RNG) Word {
	return Word{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
}

func TestEncodeDecodeClean(t *testing.T) {
	r := sim.NewRNG(1)
	for i := 0; i < 1000; i++ {
		w := randWord(r)
		c := Encode(w)
		got, res := Decode(c)
		if res != OK || got != w {
			t.Fatalf("clean decode: res=%v", res)
		}
	}
}

func TestSingleDataBitCorrection(t *testing.T) {
	r := sim.NewRNG(2)
	for i := 0; i < 200; i++ {
		w := randWord(r)
		c := Encode(w)
		bit := r.Intn(DataBits)
		c.Data = c.Data.Flip(bit)
		got, res := Decode(c)
		if res != CorrectedData {
			t.Fatalf("bit %d: res=%v, want corrected-data", bit, res)
		}
		if got != w {
			t.Fatalf("bit %d: correction produced wrong word", bit)
		}
	}
}

func TestEverySingleDataBitCorrects(t *testing.T) {
	w := Word{0xdeadbeefcafef00d, 0x0123456789abcdef, ^uint64(0), 0}
	c := Encode(w)
	for bit := 0; bit < DataBits; bit++ {
		bad := c
		bad.Data = bad.Data.Flip(bit)
		got, res := Decode(bad)
		if res != CorrectedData || got != w {
			t.Fatalf("bit %d not corrected (res=%v)", bit, res)
		}
	}
}

func TestSingleCheckBitCorrection(t *testing.T) {
	w := Word{1, 2, 3, 4}
	c := Encode(w)
	for b := 0; b < CheckBits; b++ {
		bad := c
		bad.Check ^= 1 << b
		got, res := Decode(bad)
		if res != CorrectedCheck {
			t.Fatalf("check bit %d: res=%v, want corrected-check", b, res)
		}
		if got != w {
			t.Fatalf("check bit %d: data corrupted by correction", b)
		}
	}
}

func TestDoubleErrorDetection(t *testing.T) {
	r := sim.NewRNG(3)
	for i := 0; i < 200; i++ {
		w := randWord(r)
		c := Encode(w)
		b1 := r.Intn(DataBits)
		b2 := r.Intn(DataBits)
		for b2 == b1 {
			b2 = r.Intn(DataBits)
		}
		c.Data = c.Data.Flip(b1).Flip(b2)
		_, res := Decode(c)
		if res != DoubleError {
			t.Fatalf("double error (%d,%d) decoded as %v", b1, b2, res)
		}
	}
}

func TestDoubleErrorDataPlusCheck(t *testing.T) {
	w := Word{0xffff, 0, 0, 0xabc}
	c := Encode(w)
	for b := 0; b < CheckBits; b++ {
		bad := c
		bad.Data = bad.Data.Flip(100)
		bad.Check ^= 1 << b
		_, res := Decode(bad)
		if res != DoubleError {
			t.Fatalf("data+check(%d) double error decoded as %v", b, res)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint64, bitSel uint16) bool {
		w := Word{a, b, c, d}
		cw := Encode(w)
		// Clean round trip.
		if got, res := Decode(cw); res != OK || got != w {
			return false
		}
		// Single-flip round trip.
		bad := cw
		bad.Data = bad.Data.Flip(int(bitSel) % DataBits)
		got, res := Decode(bad)
		return res == CorrectedData && got == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpareBitsPerLine(t *testing.T) {
	// The paper's headline numbers: 256-bit granularity leaves 44 bits
	// per 64-byte line for the directory; 64-bit granularity leaves none.
	if got := SpareBitsPerLine(64, 256); got != 44 {
		t.Fatalf("spare bits at 256b granularity = %d, want 44", got)
	}
	if got := SpareBitsPerLine(64, 64); got != 0 {
		t.Fatalf("spare bits at 64b granularity = %d, want 0", got)
	}
}

func TestWordBitOps(t *testing.T) {
	var w Word
	w = w.Flip(0).Flip(63).Flip(64).Flip(255)
	if w.Bit(0) != 1 || w.Bit(63) != 1 || w.Bit(64) != 1 || w.Bit(255) != 1 {
		t.Fatal("flip/bit mismatch")
	}
	if w.Bit(1) != 0 || w.Bit(200) != 0 {
		t.Fatal("unexpected set bit")
	}
	if w.Weight() != 4 {
		t.Fatalf("weight %d, want 4", w.Weight())
	}
}

func BenchmarkEncode(b *testing.B) {
	w := Word{0xdeadbeef, 0xcafe, 0xf00d, 0x1234}
	for i := 0; i < b.N; i++ {
		Encode(w)
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	c := Encode(Word{1, 2, 3, 4})
	for i := 0; i < b.N; i++ {
		Decode(c)
	}
}
