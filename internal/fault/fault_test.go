package fault

import (
	"testing"

	"piranha/internal/cache"
	"piranha/internal/sim"
)

// drive exercises every injector hook in a fixed pattern and returns the
// folded stats.
func drive(j *Injector) Stats {
	for i := 0; i < 500; i++ {
		j.HopRetransmits(uint64(i%4), 16+64*(i%2))
		j.LinkDelay(uint64(i%4), 80)
		j.StallDelay(uint64(i % 4))
		if j.LoseMessage() {
			start := sim.Time(i) * sim.Microsecond
			j.NoteRecovery(start, j.RecoverTime(start))
		}
		j.MemRead(sim.Time(i)*sim.Microsecond, cache.Addr(0x1000*64))
	}
	return j.Collect()
}

// TestInjectorDeterministic: the same plan and seed replay the identical
// fault schedule and counters.
func TestInjectorDeterministic(t *testing.T) {
	plan := Plan{LinkBER: 1e-3, MsgLoss: 0.02, MemFlip: 0.05, MemDoubleFrac: 0.3, StallProb: 0.01, Mirrored: true}
	a := drive(New(plan, 7))
	b := drive(New(plan, 7))
	if a != b {
		t.Fatalf("same seed diverged:\n a=%+v\n b=%+v", a, b)
	}
	if a.Injected == 0 || a.MemFlips == 0 || a.Retransmits == 0 {
		t.Fatalf("nothing injected at aggressive rates: %+v", a)
	}
	c := drive(New(plan, 8))
	if a == c {
		t.Fatal("different run seeds produced the identical schedule")
	}
}

// TestNilAndDisabledInjectorNoOps: the nil injector and a zero-rate plan
// both inject nothing and charge nothing.
func TestNilAndDisabledInjectorNoOps(t *testing.T) {
	var nilInj *Injector
	if nilInj.Enabled() {
		t.Error("nil injector claims enabled")
	}
	if d := nilInj.LinkDelay(0, 80) + nilInj.StallDelay(0) + nilInj.MemRead(0, 0); d != 0 {
		t.Errorf("nil injector charged %d", d)
	}
	if nilInj.LoseMessage() {
		t.Error("nil injector lost a message")
	}
	nilInj.NoteSweep(3)
	nilInj.ResetStats()
	if s := nilInj.Collect(); s != (Stats{}) {
		t.Errorf("nil injector stats = %+v", s)
	}

	off := New(Plan{}, 7)
	if off.Enabled() {
		t.Error("zero-rate plan claims enabled")
	}
	if s := drive(off); s != (Stats{}) {
		t.Errorf("disabled injector injected: %+v", s)
	}
}

// TestMemReadOutcomes: single-bit flips are always corrected (scrub
// charged); forced double flips escalate — to the hook when present, to
// the plan's mirror latency when Mirrored, to unrecoverable otherwise.
func TestMemReadOutcomes(t *testing.T) {
	// All flips, all single-bit: every read pays exactly the scrub.
	j := New(Plan{MemFlip: 1, MemDoubleFrac: 0, ScrubLatency: 80 * sim.Nanosecond}, 1)
	for i := 0; i < 200; i++ {
		if d := j.MemRead(0, cache.Addr(64*i)); d != 80*sim.Nanosecond {
			t.Fatalf("read %d: scrub = %d, want 80ns", i, d)
		}
	}
	if j.Stats.MemCorrected != 200 || j.Stats.MemUnrecoverable != 0 {
		t.Fatalf("corrected=%d fatal=%d, want 200/0", j.Stats.MemCorrected, j.Stats.MemUnrecoverable)
	}

	// All double-bit, unmirrored: counted unrecoverable, no latency.
	j = New(Plan{MemFlip: 1, MemDoubleFrac: 1}, 1)
	for i := 0; i < 50; i++ {
		if d := j.MemRead(0, cache.Addr(64*i)); d != 0 {
			t.Fatalf("unmirrored double error charged %d", d)
		}
	}
	if j.Stats.MemUnrecoverable != 50 {
		t.Fatalf("unrecoverable = %d, want 50", j.Stats.MemUnrecoverable)
	}

	// Mirrored plan: every double error fails over at the mirror cost.
	j = New(Plan{MemFlip: 1, MemDoubleFrac: 1, Mirrored: true, MirrorLatency: 120 * sim.Nanosecond}, 1)
	for i := 0; i < 50; i++ {
		if d := j.MemRead(0, cache.Addr(64*i)); d != 120*sim.Nanosecond {
			t.Fatalf("mirrored double error charged %d, want 120ns", d)
		}
	}
	if j.Stats.MemFailovers != 50 || j.Stats.MemUnrecoverable != 0 {
		t.Fatalf("failovers=%d fatal=%d, want 50/0", j.Stats.MemFailovers, j.Stats.MemUnrecoverable)
	}

	// Escalation hook wins over the plan fields.
	j = New(Plan{MemFlip: 1, MemDoubleFrac: 1}, 1)
	calls := 0
	j.Escalate = func(now sim.Time) (sim.Time, bool) { calls++; return 5 * sim.Nanosecond, true }
	if d := j.MemRead(0, 0); d != 5*sim.Nanosecond {
		t.Fatalf("hooked double error charged %d, want 5ns", d)
	}
	if calls != 1 || j.Stats.MemFailovers != 1 {
		t.Fatalf("hook calls=%d failovers=%d, want 1/1", calls, j.Stats.MemFailovers)
	}
}

// TestRecoverTime pins the sweep-alignment formula to RecoverStale's
// strictly-greater staleness comparison: the recovery lands on the first
// sweep tick at which age > timeout.
func TestRecoverTime(t *testing.T) {
	j := New(Plan{MsgLoss: 1, SweepPeriod: 50 * sim.Microsecond, Timeout: 20 * sim.Microsecond}, 1)
	cases := []struct{ start, want sim.Time }{
		{0, 50 * sim.Microsecond},
		{29*sim.Microsecond + 1, 50 * sim.Microsecond},
		{30 * sim.Microsecond, 100 * sim.Microsecond}, // age at t=50us is exactly 20us: not yet stale
		{80 * sim.Microsecond, 150 * sim.Microsecond},
	}
	for _, c := range cases {
		if got := j.RecoverTime(c.start); got != c.want {
			t.Errorf("RecoverTime(%d) = %d, want %d", c.start, got, c.want)
		}
		// Cross-check against the pool the sweep actually drives.
		p := sim.NewPool("x", 1)
		start, _ := p.Reserve(c.start)
		prev := c.want - 50*sim.Microsecond
		if prev > start {
			if n := p.RecoverStale(prev, 20*sim.Microsecond); n != 0 {
				t.Errorf("start %d: sweep at %d reclaimed early", c.start, prev)
			}
		}
		if n := p.RecoverStale(c.want, 20*sim.Microsecond); n != 1 {
			t.Errorf("start %d: sweep at %d did not reclaim", c.start, c.want)
		}
	}
}

// TestScaledAndEnabled: grid scaling multiplies rates, saturates at 1,
// and a x0 plan is disabled.
func TestScaledAndEnabled(t *testing.T) {
	base := Plan{LinkBER: 1e-5, MsgLoss: 0.4, MemFlip: 1e-4, StallProb: 0, Mirrored: true}
	s := base.Scaled(4)
	if s.LinkBER != 4e-5 || s.MsgLoss != 1 || s.MemFlip != 4e-4 {
		t.Errorf("Scaled(4) = %+v", s)
	}
	if !s.Mirrored {
		t.Error("Scaled dropped Mirrored")
	}
	if z := base.Scaled(0); z.Enabled() {
		t.Errorf("x0 plan still enabled: %+v", z)
	}
	if (Plan{}).Enabled() {
		t.Error("zero plan enabled")
	}
}

// TestResetStatsClearsChannels: warm-phase link corruption must not leak
// into measured counters — ResetStats zeroes the per-source channels too.
func TestResetStatsClearsChannels(t *testing.T) {
	j := New(Plan{LinkBER: 5e-3}, 3)
	for i := 0; i < 200; i++ {
		j.HopRetransmits(uint64(i%2), 80)
	}
	warm := j.Collect()
	if warm.LinkWordErrors == 0 {
		t.Fatal("no warm-phase corruption at BER 5e-3; test needs a hotter plan")
	}
	j.ResetStats()
	if s := j.Collect(); s != (Stats{}) {
		t.Fatalf("counters survived ResetStats: %+v", s)
	}
	// The channels keep injecting afterwards (RNG position preserved).
	for i := 0; i < 200; i++ {
		j.HopRetransmits(uint64(i%2), 80)
	}
	if s := j.Collect(); s.LinkWordErrors == 0 {
		t.Fatal("channels dead after ResetStats")
	}
}
