// Package fault implements the deterministic fault-injection engine that
// exercises Piranha's §2.7 reliability story inside live timing runs:
// CRC-protected links with piggyback retransmission (internal/link),
// 256-bit SECDED memory ECC (internal/ecc), memory-mirroring failover
// (internal/ras), and timeout-based TSRF transaction recovery
// (pe.Engine.Recover / sim.Pool.RecoverStale).
//
// A Plan holds per-class rates; an Injector compiled from a plan is the
// live per-run engine that components consult at their natural fault
// points — the fabric per packet, the memory controllers per line read,
// the protocol engines per transaction leg. Every decision is drawn from
// sim.RNG streams split off one seeded base generator, so a fixed
// (plan, run-seed) pair replays the identical fault schedule no matter
// how many experiments run concurrently around it. A zero-rate plan
// compiles to a disabled injector whose every hook is a no-op, keeping
// fault-free runs bit-identical to runs that never heard of this
// package.
package fault

import (
	"fmt"

	"piranha/internal/cache"
	"piranha/internal/ecc"
	"piranha/internal/link"
	"piranha/internal/sim"
	"piranha/internal/stats"
)

// MaxLossRetries bounds how many consecutive message losses one protocol
// transaction will absorb (each costing a full TSRF timeout recovery)
// before the transaction is allowed through unconditionally, so even a
// pathological loss rate cannot livelock a run.
const MaxLossRetries = 4

// maxFrameRetries is the link-level go-back-N retry budget per packet.
const maxFrameRetries = 8

// scratchBytes bounds the synthetic frame used for the link encode/
// decode path; it covers the largest protocol packet (header + line).
const scratchBytes = 128

// NodeFailure schedules one deterministic fail-stop node death: chip
// Node stops executing and serving memory at absolute simulated time At
// (t=0 is run start, so warm-phase onsets are expressible). Fail-stop
// deaths are scheduled, not drawn from an RNG stream, so a chaos grid's
// fault-rate axis scales the transient classes while the death schedule
// stays fixed.
type NodeFailure struct {
	Node int
	At   sim.Time
}

// Plan describes one deterministic fault-injection campaign: per-class
// rates plus the recovery parameters. The zero value is the perfect
// machine — Enabled() is false and an injector built from it injects
// nothing.
type Plan struct {
	// Seed perturbs every fault stream; it is mixed with the run seed so
	// the same plan produces independent schedules across seeds but the
	// identical schedule across reruns.
	Seed uint64

	// LinkBER is the per-wire-bit corruption probability applied to every
	// 22-bit word a packet's frame transmits (link.Channel.BitErrorRate).
	LinkBER float64
	// MsgLoss is the probability one protocol transaction leg loses a
	// message entirely — beyond what link-level retransmission heals —
	// forcing timeout-based TSRF recovery.
	MsgLoss float64
	// MemFlip is the probability a memory line read observes flipped
	// bits and runs through the SECDED decode path.
	MemFlip float64
	// MemDoubleFrac is the fraction of memory flips that hit two bits
	// (uncorrectable by SECDED) rather than one.
	MemDoubleFrac float64
	// StallProb is the probability a message arrival finds its
	// destination node transiently stalled.
	StallProb float64

	// StallTime is the duration of a transient node stall.
	StallTime sim.Time
	// ScrubLatency is charged per correctable ECC error (the controller
	// rewrites the corrected line).
	ScrubLatency sim.Time
	// Mirrored escalates uncorrectable memory errors to mirroring
	// failover instead of counting them unrecoverable.
	Mirrored bool
	// MirrorLatency is the mirror-read cost when Mirrored is set and no
	// external escalation hook (ras.Failover) is wired.
	MirrorLatency sim.Time
	// SweepPeriod is the cadence of the periodic TSRF Recover sweep.
	SweepPeriod sim.Time
	// Timeout is the TSRF staleness threshold the sweep applies; an
	// entry is reclaimed at the first sweep where its age exceeds it.
	Timeout sim.Time

	// FailStop schedules deterministic fail-stop node deaths. Requires a
	// multi-chip system: the dead chip's home memory fails over to its
	// RAS mirror and the survivors keep serving in degraded mode.
	FailStop []NodeFailure
	// DetectLatency is the onset→detection delay: the time between a
	// node dying and the survivors beginning recovery.
	DetectLatency sim.Time
	// RedispatchPenalty is charged per process migrated off a dead node
	// before it becomes runnable on its new CPU.
	RedispatchPenalty sim.Time
}

// Enabled reports whether any fault class has a nonzero rate.
func (p Plan) Enabled() bool {
	return p.LinkBER > 0 || p.MsgLoss > 0 || p.MemFlip > 0 ||
		p.StallProb > 0 || len(p.FailStop) > 0
}

// Scaled returns a copy with every rate multiplied by m — the campaign
// grid axis. Durations, seed and mirroring are unchanged; probabilities
// saturate at 1. The fail-stop schedule is not a rate: any positive
// multiplier keeps it verbatim, while m = 0 (the grid's baseline cell)
// drops it so the zero cell stays a genuinely fault-free run.
func (p Plan) Scaled(m float64) Plan {
	p.LinkBER = capProb(p.LinkBER * m)
	p.MsgLoss = capProb(p.MsgLoss * m)
	p.MemFlip = capProb(p.MemFlip * m)
	p.StallProb = capProb(p.StallProb * m)
	if m <= 0 {
		p.FailStop = nil
	}
	return p
}

func capProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// withDefaults fills the duration parameters a zero-valued plan leaves
// open.
func (p Plan) withDefaults() Plan {
	if p.StallTime <= 0 {
		p.StallTime = 1 * sim.Microsecond
	}
	if p.ScrubLatency <= 0 {
		p.ScrubLatency = 80 * sim.Nanosecond
	}
	if p.MirrorLatency <= 0 {
		p.MirrorLatency = 120 * sim.Nanosecond
	}
	if p.SweepPeriod <= 0 {
		p.SweepPeriod = 50 * sim.Microsecond
	}
	if p.Timeout <= 0 {
		p.Timeout = 20 * sim.Microsecond
	}
	if p.DetectLatency <= 0 {
		p.DetectLatency = 10 * sim.Microsecond
	}
	if p.RedispatchPenalty <= 0 {
		p.RedispatchPenalty = 5 * sim.Microsecond
	}
	p.MemDoubleFrac = capProb(p.MemDoubleFrac)
	return p
}

// Stats is the counter block a fault campaign reports (Result.Faults).
// All fields are scalars so the struct stays comparable with == for
// determinism checks.
type Stats struct {
	// Injected totals the fault events that fired across all classes.
	Injected uint64
	// LinkWordErrors counts corrupted wire words the link layer detected
	// (weight violations plus CRC catches).
	LinkWordErrors uint64
	// Retransmits counts link frames resent by the go-back-N handshake.
	Retransmits uint64
	// MessagesLost counts protocol messages dropped outright.
	MessagesLost uint64
	// Recovered counts lost transactions healed by TSRF timeout
	// recovery (every loss either recovers or exhausts MaxLossRetries).
	Recovered uint64
	// SweepReclaims counts TSRF entries the periodic Recover sweep
	// reclaimed (losses near the end of a run may still be pending).
	SweepReclaims uint64
	// MemFlips counts line reads that saw injected bit flips.
	MemFlips uint64
	// MemCorrected counts flips SECDED corrected (scrub charged).
	MemCorrected uint64
	// MemFailovers counts uncorrectable errors served from the mirror.
	MemFailovers uint64
	// MemUnrecoverable counts uncorrectable errors with no mirror.
	MemUnrecoverable uint64
	// Stalls counts transient node stalls.
	Stalls uint64
	// RecoveryLatency is the total simulated time transactions spent
	// waiting on TSRF timeout recovery.
	RecoveryLatency sim.Time
	// NodesFailed counts fail-stop node deaths.
	NodesFailed uint64
	// ProcsMigrated counts processes the kernel moved off dead nodes.
	ProcsMigrated uint64
	// DirSharersDropped counts directory entries the reconstruction
	// sweep purged a dead sharer from.
	DirSharersDropped uint64
	// DirOwnerReclaims counts exclusive entries whose dead owner the
	// sweep reclaimed (data restored from the RAS mirror).
	DirOwnerReclaims uint64
	// HomesAdopted counts dead-homed directory entries the mirror node
	// adopted.
	HomesAdopted uint64
	// MirrorReads counts dead-home memory reads served by the mirror.
	MirrorReads uint64
	// MTTRTotal is the summed onset→restored-capacity time over all
	// fail-stop events.
	MTTRTotal sim.Time
}

// String renders the counter block on one line.
func (s Stats) String() string {
	out := fmt.Sprintf(
		"faults: injected=%d link[words=%d retrans=%d] lost=%d recovered=%d sweeps=%d recovery=%.1fus mem[flips=%d corrected=%d failover=%d fatal=%d] stalls=%d",
		s.Injected, s.LinkWordErrors, s.Retransmits, s.MessagesLost,
		s.Recovered, s.SweepReclaims,
		float64(s.RecoveryLatency)/float64(sim.Microsecond),
		s.MemFlips, s.MemCorrected, s.MemFailovers, s.MemUnrecoverable,
		s.Stalls)
	if s.NodesFailed > 0 {
		out += fmt.Sprintf(" failstop[nodes=%d migrated=%d dropped=%d reclaimed=%d adopted=%d mirror-reads=%d mttr=%.1fus]",
			s.NodesFailed, s.ProcsMigrated, s.DirSharersDropped,
			s.DirOwnerReclaims, s.HomesAdopted, s.MirrorReads,
			float64(s.MTTRTotal)/float64(sim.Microsecond))
	}
	return out
}

// RecoveryEvent is the timeline of one fail-stop node death: when it
// happened, when the survivors noticed, when full (degraded-mode)
// serving capacity was restored, and what the reconstruction touched.
type RecoveryEvent struct {
	Node     int
	Onset    sim.Time
	Detect   sim.Time
	Restored sim.Time

	Migrated       int // processes moved off the dead node
	SharersDropped int // directory entries purged of the dead sharer
	OwnerReclaims  int // exclusive entries reclaimed from the dead owner
	HomesAdopted   int // dead-homed entries the mirror adopted
}

// MTTR is the onset→restored-capacity time for this event.
func (e RecoveryEvent) MTTR() sim.Time { return e.Restored - e.Onset }

// Recovery is the fail-stop recovery log a run reports (Result.Recovery,
// schema v3). CapacityFrac is the fraction of CPU capacity still alive
// after the last recorded failure (1 when nothing died).
type Recovery struct {
	Events       []RecoveryEvent
	MTTRTotal    sim.Time
	CapacityFrac float64
}

// Injector is one run's live fault engine. It is not safe for concurrent
// use; RunBatch isolation comes from each experiment building its own.
// The nil *Injector is the disabled engine: every hook is a nil-safe
// no-op, mirroring the *trace.Tracer and *stats.Series idiom, so wired
// components hold a possibly-nil pointer and consult it unconditionally.
type Injector struct {
	plan Plan

	loss    *sim.RNG
	mem     *sim.RNG
	stall   *sim.RNG
	chans   map[uint64]*link.Channel
	chanKey *sim.RNG // stream the per-source channel seeds derive from
	seedW   uint64   // Weyl constant mixing source IDs into channel seeds
	icClock sim.Clock
	scratch []byte
	series  *stats.Series
	recov   Recovery

	// Escalate, when non-nil, handles uncorrectable memory errors —
	// ras mirroring failover returns the mirror-read latency and
	// recovered=true. When nil, the plan's Mirrored/MirrorLatency
	// fields decide.
	Escalate func(now sim.Time) (extra sim.Time, recovered bool)
	// Adopt, when non-nil, tells the RAS mirror it has taken over n
	// directory-resident lines of a fail-stopped home (ras.Failover.
	// Takeover, wired by the layer that owns the failover target — the
	// same hook pattern as Escalate, since fault cannot import ras).
	Adopt func(n int)

	// Stats accumulates the non-link counters live; Collect folds the
	// link channels' counters in.
	Stats Stats
}

// New compiles a plan into an injector. runSeed is the experiment's
// workload seed, mixed in so campaigns over seeds draw independent fault
// schedules. A disabled plan still compiles (all hooks no-op).
func New(p Plan, runSeed uint64) *Injector {
	p = p.withDefaults()
	base := sim.NewRNG(p.Seed ^ (runSeed * 0x9e3779b97f4a7c15) ^ 0xfa017bedb601a7e5)
	j := &Injector{
		plan:    p,
		loss:    base.Split(1),
		mem:     base.Split(2),
		stall:   base.Split(3),
		chans:   make(map[uint64]*link.Channel),
		seedW:   base.Uint64() | 1,
		icClock: sim.MHz(500),
		scratch: make([]byte, scratchBytes),
	}
	// Fixed pseudo-random frame payload: the content only feeds the
	// DC-balance weight check of the word code, never a measurement.
	pat := base.Split(4)
	for i := range j.scratch {
		j.scratch[i] = byte(pat.Uint64())
	}
	return j
}

// Enabled reports whether the injector injects anything.
func (j *Injector) Enabled() bool { return j != nil && j.plan.Enabled() }

// Plan returns the effective plan (defaults applied).
func (j *Injector) Plan() Plan {
	if j == nil {
		return Plan{}
	}
	return j.plan
}

// AttachSeries directs recovery-latency samples into the run's interval
// sampler (nil detaches).
func (j *Injector) AttachSeries(s *stats.Series) {
	if j == nil {
		return
	}
	j.series = s
}

// channel returns src's link channel, creating it deterministically: the
// seed is a fixed function of the base stream and the source ID, so the
// schedule does not depend on first-use order.
func (j *Injector) channel(src uint64) *link.Channel {
	ch := j.chans[src]
	if ch == nil {
		ch = link.NewChannel(j.plan.LinkBER, j.seedW*(src+0x9e3779b9)+0x2545f4914f6cdd1d)
		j.chans[src] = ch
	}
	return ch
}

// frame returns the synthetic payload for an n-byte packet.
func (j *Injector) frame(n int) []byte {
	if n > len(j.scratch) {
		n = len(j.scratch)
	}
	if n < 1 {
		n = 1
	}
	return j.scratch[:n]
}

// HopRetransmits rolls wire corruption for one packet of n payload bytes
// leaving src: the frame runs through link.Channel's real 22-bit encode/
// decode and CRC path at the plan's BER, and the result is how many extra
// frame transmissions the go-back-N handshake needed. A frame that
// exhausts the retry budget still delivers — sustained outright loss is
// the MsgLoss class — but pays the whole budget.
func (j *Injector) HopRetransmits(src uint64, bytes int) int {
	if j == nil || j.plan.LinkBER <= 0 {
		return 0
	}
	attempts, err := j.channel(src).Transmit(j.frame(bytes), maxFrameRetries)
	if err != nil {
		return maxFrameRetries
	}
	return attempts - 1
}

// LinkDelay is HopRetransmits expressed as retransmit latency: each
// resent frame re-occupies the channel for the packet's transfer time
// plus the trailing CRC word.
func (j *Injector) LinkDelay(src uint64, bytes int) sim.Time {
	n := j.HopRetransmits(src, bytes)
	if n == 0 {
		return 0
	}
	return sim.Time(n) * link.TransferTime(bytes+2, j.icClock)
}

// StallDelay rolls a transient stall of the receiving node against one
// message arrival.
func (j *Injector) StallDelay(node uint64) sim.Time {
	if j == nil || j.plan.StallProb <= 0 {
		return 0
	}
	_ = node
	if !j.stall.Bool(j.plan.StallProb) {
		return 0
	}
	j.Stats.Stalls++
	return j.plan.StallTime
}

// LoseMessage rolls protocol-message loss for one transaction leg and
// counts a hit.
func (j *Injector) LoseMessage() bool {
	if j == nil || j.plan.MsgLoss <= 0 {
		return false
	}
	if !j.loss.Bool(j.plan.MsgLoss) {
		return false
	}
	j.Stats.MessagesLost++
	return true
}

// RecoverTime returns when the periodic TSRF sweep will reclaim an entry
// reserved at start: the first sweep tick at which the entry's age
// strictly exceeds the plan timeout — the same comparison
// sim.Pool.RecoverStale applies, so the synchronous timeline and the
// scheduled sweep agree exactly.
func (j *Injector) RecoverTime(start sim.Time) sim.Time {
	if j == nil {
		return start
	}
	p := j.plan.SweepPeriod
	return ((start+j.plan.Timeout)/p + 1) * p
}

// NoteRecovery accounts one lost transaction healed at recoverAt.
func (j *Injector) NoteRecovery(now, recoverAt sim.Time) {
	if j == nil {
		return
	}
	j.Stats.Recovered++
	j.Stats.RecoveryLatency += recoverAt - now
	j.series.AddRecovery(recoverAt, recoverAt-now)
}

// NoteSweep accounts TSRF entries a Recover sweep reclaimed.
func (j *Injector) NoteSweep(n int) {
	if j == nil || n <= 0 {
		return
	}
	j.Stats.SweepReclaims += uint64(n)
}

// FailoverPenalty charges one dead-home memory read served from the RAS
// mirror: the deterministic mirror-read latency (plan MirrorLatency,
// defaulted), counted in MirrorReads.
func (j *Injector) FailoverPenalty(now sim.Time) sim.Time {
	if j == nil {
		return 0
	}
	_ = now
	j.Stats.MirrorReads++
	return j.plan.MirrorLatency
}

// NoteFailStop records one completed fail-stop recovery: the event joins
// the run's recovery log, the scalar counters absorb its totals, and the
// restored instant lands in the interval sampler's recovery track.
func (j *Injector) NoteFailStop(ev RecoveryEvent) {
	if j == nil {
		return
	}
	j.recov.Events = append(j.recov.Events, ev)
	j.recov.MTTRTotal += ev.MTTR()
	j.Stats.NodesFailed++
	j.Stats.ProcsMigrated += uint64(ev.Migrated)
	j.Stats.DirSharersDropped += uint64(ev.SharersDropped)
	j.Stats.DirOwnerReclaims += uint64(ev.OwnerReclaims)
	j.Stats.HomesAdopted += uint64(ev.HomesAdopted)
	j.Stats.MTTRTotal += ev.MTTR()
	if j.Adopt != nil {
		j.Adopt(ev.HomesAdopted)
	}
	j.series.AddRecovery(ev.Restored, ev.MTTR())
}

// SetCapacityFrac records the alive-CPU fraction after fail-stop deaths
// (the degraded-mode serving capacity the recovery block reports).
func (j *Injector) SetCapacityFrac(frac float64) {
	if j == nil {
		return
	}
	j.recov.CapacityFrac = frac
}

// Recovery returns the fail-stop recovery log accumulated so far.
func (j *Injector) Recovery() Recovery {
	if j == nil {
		return Recovery{}
	}
	return j.recov
}

// Diagnostic renders the live fault/recovery state for the watchdog's
// failure message: the counter block plus how many lost transactions are
// still awaiting their TSRF reclaim — the number that explains a stuck
// faulted run.
func (j *Injector) Diagnostic() string {
	if j == nil {
		return "faults: disabled"
	}
	s := j.Collect()
	pending := int64(s.MessagesLost) - int64(s.Recovered)
	if pending < 0 {
		pending = 0
	}
	return fmt.Sprintf("%s pending-reclaims=%d", s.String(), pending)
}

// MemRead rolls a memory fault against one line read at address a and
// returns the extra latency the read pays. A fault builds a line image,
// encodes it with the real SECDED code, flips one bit (anywhere in the
// codeword) or two data bits per MemDoubleFrac, and decodes: correctable
// outcomes charge the scrub, uncorrectable ones escalate to mirroring
// failover (Escalate hook or plan Mirrored) or count unrecoverable.
func (j *Injector) MemRead(now sim.Time, a cache.Addr) sim.Time {
	if j == nil || j.plan.MemFlip <= 0 {
		return 0
	}
	if !j.mem.Bool(j.plan.MemFlip) {
		return 0
	}
	j.Stats.MemFlips++
	var w ecc.Word
	for i := range w {
		w[i] = j.mem.Uint64()
	}
	w[0] ^= uint64(a)
	cw := ecc.Encode(w)
	if j.mem.Bool(j.plan.MemDoubleFrac) {
		// Two distinct data bits: uncorrectable by SECDED.
		b1 := j.mem.Intn(ecc.DataBits)
		b2 := j.mem.Intn(ecc.DataBits - 1)
		if b2 >= b1 {
			b2++
		}
		cw.Data = cw.Data.Flip(b1).Flip(b2)
	} else {
		// One bit, anywhere in the stored codeword: data or check
		// storage (the latter exercises the corrected-check path).
		pos := j.mem.Intn(ecc.DataBits + ecc.CheckBits)
		if pos < ecc.DataBits {
			cw.Data = cw.Data.Flip(pos)
		} else {
			cw.Check ^= 1 << uint(pos-ecc.DataBits)
		}
	}
	_, res := ecc.Decode(cw)
	switch res {
	case ecc.OK:
		return 0
	case ecc.CorrectedData, ecc.CorrectedCheck:
		j.Stats.MemCorrected++
		return j.plan.ScrubLatency
	case ecc.DoubleError:
		if j.Escalate != nil {
			if extra, ok := j.Escalate(now); ok {
				j.Stats.MemFailovers++
				return extra
			}
		}
		if j.plan.Mirrored {
			j.Stats.MemFailovers++
			return j.plan.MirrorLatency
		}
		j.Stats.MemUnrecoverable++
		return 0
	}
	return 0
}

// ResetStats zeroes the counters at the warm/measure boundary, including
// every link channel's counters (Channel.Reset), so warm-up corruption
// never pollutes measured-phase statistics. The RNG streams keep their
// positions: the fault schedule is one continuous sequence.
func (j *Injector) ResetStats() {
	if j == nil {
		return
	}
	j.Stats = Stats{}
	// Warm-phase fail-stop events leave the measured window's log, but
	// the degraded capacity fraction persists — the machine is still
	// short those nodes.
	j.recov.Events = nil
	j.recov.MTTRTotal = 0
	for _, ch := range j.chans {
		ch.Reset()
	}
}

// Collect folds the per-source link channel counters into the stats
// block and totals Injected. The map fold is commutative, so the result
// is iteration-order independent.
func (j *Injector) Collect() Stats {
	if j == nil {
		return Stats{}
	}
	s := j.Stats
	for _, ch := range j.chans {
		cs := ch.Stats()
		s.LinkWordErrors += cs.WordErrors + cs.CRCErrors
		s.Retransmits += cs.Retransmits
	}
	s.Injected = s.LinkWordErrors + s.MessagesLost + s.MemFlips + s.Stalls + s.NodesFailed
	return s
}
