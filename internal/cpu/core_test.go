package cpu

import (
	"testing"

	"piranha/internal/cache"
	"piranha/internal/l2"
	"piranha/internal/sim"
)

// scriptMem returns canned (latency, svc) pairs per access.
type scriptMem struct {
	lat []sim.Time
	svc []l2.Svc
	i   int
	log []AccessKind
}

func (m *scriptMem) Access(now sim.Time, _ int, k AccessKind, _ cache.Addr) (sim.Time, l2.Svc) {
	m.log = append(m.log, k)
	if m.i >= len(m.lat) {
		return now, l2.SvcL1
	}
	l, s := m.lat[m.i], m.svc[m.i]
	m.i++
	return now + l, s
}

func TestComputeBusyTime(t *testing.T) {
	c := New(0, InOrder500(), &scriptMem{})
	end := c.Exec(0, Op{Kind: KCompute, N: 1000})
	// 1000 instructions at CPI 1, 500 MHz = 2 us.
	if end != 2*sim.Microsecond {
		t.Fatalf("compute end %d, want 2 us", end)
	}
	if c.Breakdown.CPUBusy != 2*sim.Microsecond {
		t.Fatalf("busy %d", c.Breakdown.CPUBusy)
	}
	if c.Instructions != 1000 {
		t.Fatalf("instructions %d", c.Instructions)
	}
}

func TestWideIssueFasterCompute(t *testing.T) {
	narrow := New(0, InOrder1G(), &scriptMem{})
	wide := New(0, OutOfOrder1G(1.9), &scriptMem{})
	e1 := narrow.Exec(0, Op{Kind: KCompute, N: 1900})
	e2 := wide.Exec(0, Op{Kind: KCompute, N: 1900})
	if e2 >= e1 {
		t.Fatalf("4-issue (%d) not faster than 1-issue (%d)", e2, e1)
	}
	// 1900 instr at IPC 1.9, 1 GHz = 1000 cycles = 1 us.
	if e2 != 1*sim.Microsecond {
		t.Fatalf("wide compute end %d", e2)
	}
}

func TestInOrderLoadMissBlocks(t *testing.T) {
	mem := &scriptMem{lat: []sim.Time{80 * sim.Nanosecond}, svc: []l2.Svc{l2.SvcLocalMem}}
	c := New(0, InOrder500(), mem)
	end := c.Exec(0, Op{Kind: KLoad, Addr: 0x40})
	if end != 80*sim.Nanosecond {
		t.Fatalf("in-order miss should block fully: end %d", end)
	}
	if c.Breakdown.L2Miss != 80*sim.Nanosecond {
		t.Fatalf("L2Miss stall %d", c.Breakdown.L2Miss)
	}
}

func TestStallAttributionByClass(t *testing.T) {
	mem := &scriptMem{
		lat: []sim.Time{16 * sim.Nanosecond, 24 * sim.Nanosecond, 120 * sim.Nanosecond},
		svc: []l2.Svc{l2.SvcL2Hit, l2.SvcL2Fwd, l2.SvcRemote},
	}
	c := New(0, InOrder500(), mem)
	now := sim.Time(0)
	for i := 0; i < 3; i++ {
		now = c.Exec(now, Op{Kind: KLoad, Addr: 0x40})
	}
	if c.Breakdown.L2HitStall != 40*sim.Nanosecond {
		t.Fatalf("L2 hit stall %d, want 40ns (hit+fwd)", c.Breakdown.L2HitStall)
	}
	if c.Breakdown.L2Miss != 120*sim.Nanosecond {
		t.Fatalf("L2 miss stall %d", c.Breakdown.L2Miss)
	}
}

func TestOOOHidesIndependentMisses(t *testing.T) {
	// Four independent 80 ns misses: the OOO core issues them all and
	// only the window/MSHR limits apply; total time far below 4x80ns.
	mkMem := func() *scriptMem {
		return &scriptMem{
			lat: []sim.Time{80 * sim.Nanosecond, 80 * sim.Nanosecond, 80 * sim.Nanosecond, 80 * sim.Nanosecond},
			svc: []l2.Svc{l2.SvcLocalMem, l2.SvcLocalMem, l2.SvcLocalMem, l2.SvcLocalMem},
		}
	}
	ooo := New(0, OutOfOrder1G(1.5), mkMem())
	ino := New(0, InOrder1G(), mkMem())
	var tO, tI sim.Time
	for i := 0; i < 4; i++ {
		tO = ooo.Exec(tO, Op{Kind: KLoad, Addr: cache.Addr(i * 64)})
		tI = ino.Exec(tI, Op{Kind: KLoad, Addr: cache.Addr(i * 64)})
	}
	// Retire trailing compute to account for window drain.
	tO = ooo.Exec(tO, Op{Kind: KCompute, N: 10})
	if tI < 320*sim.Nanosecond {
		t.Fatalf("in-order total %d, want >= 320 ns", tI)
	}
	if tO > tI/2 {
		t.Fatalf("OOO (%d) should hide most of in-order (%d)", tO, tI)
	}
}

func TestOOODependentLoadsSerialize(t *testing.T) {
	mk := func() *scriptMem {
		return &scriptMem{
			lat: []sim.Time{80 * sim.Nanosecond, 80 * sim.Nanosecond, 80 * sim.Nanosecond},
			svc: []l2.Svc{l2.SvcLocalMem, l2.SvcLocalMem, l2.SvcLocalMem},
		}
	}
	dep := New(0, OutOfOrder1G(1.5), mk())
	var tD sim.Time
	for i := 0; i < 3; i++ {
		tD = dep.Exec(tD, Op{Kind: KLoad, Addr: cache.Addr(i * 64), Dep: true})
	}
	// Pointer chasing: each load waits for the previous one: >= 160 ns
	// of dependence stalls before the third load issues.
	if tD < 160*sim.Nanosecond {
		t.Fatalf("dependent chain finished in %d, want >= 160 ns", tD)
	}
	if dep.Breakdown.L2Miss < 150*sim.Nanosecond {
		t.Fatalf("dependence stalls not attributed: %d", dep.Breakdown.L2Miss)
	}
}

func TestWindowLimitStalls(t *testing.T) {
	// One long miss followed by more instructions than the window
	// holds: the core must stall when the window fills.
	mem := &scriptMem{lat: []sim.Time{1 * sim.Microsecond}, svc: []l2.Svc{l2.SvcLocalMem}}
	m := OutOfOrder1G(1.0)
	m.WindowSize = 64
	c := New(0, m, mem)
	end := c.Exec(0, Op{Kind: KLoad, Addr: 0x40})
	end = c.Exec(end, Op{Kind: KCompute, N: 1000})
	// 1000 instructions cannot all retire behind the 64-entry window:
	// the total must include most of the 1 us miss.
	if end < 900*sim.Nanosecond {
		t.Fatalf("window never filled: end %d", end)
	}
}

func TestMSHRLimit(t *testing.T) {
	var lat []sim.Time
	var svc []l2.Svc
	for i := 0; i < 10; i++ {
		lat = append(lat, 500*sim.Nanosecond)
		svc = append(svc, l2.SvcLocalMem)
	}
	m := OutOfOrder1G(1.0)
	m.MSHRs = 2
	c := New(0, m, &scriptMem{lat: lat, svc: svc})
	var now sim.Time
	for i := 0; i < 10; i++ {
		now = c.Exec(now, Op{Kind: KLoad, Addr: cache.Addr(i * 64)})
	}
	// With 2 MSHRs, the 10 overlapping 500 ns misses must serialize in
	// waves; with unlimited MSHRs the whole sequence would take ~7 ns.
	if now < 1200*sim.Nanosecond {
		t.Fatalf("MSHR limit not enforced: %d", now)
	}
	unlimited := New(1, OutOfOrder1G(1.0), &scriptMem{lat: lat, svc: svc})
	var free sim.Time
	for i := 0; i < 10; i++ {
		free = unlimited.Exec(free, Op{Kind: KLoad, Addr: cache.Addr(i * 64)})
	}
	if free >= now {
		t.Fatalf("8 MSHRs (%d) should beat 2 MSHRs (%d)", free, now)
	}
}

func TestStoreHintNonBlocking(t *testing.T) {
	mem := &scriptMem{lat: []sim.Time{120 * sim.Nanosecond}, svc: []l2.Svc{l2.SvcRemote}}
	c := New(0, InOrder500(), mem)
	end := c.Exec(0, Op{Kind: KStoreHint, Addr: 0x40})
	if end > 10*sim.Nanosecond {
		t.Fatalf("wh64 blocked the core: end %d", end)
	}
	if mem.log[0] != StoreHint {
		t.Fatalf("issued %v", mem.log[0])
	}
}

func TestIFetchMissStalls(t *testing.T) {
	mem := &scriptMem{lat: []sim.Time{16 * sim.Nanosecond}, svc: []l2.Svc{l2.SvcL2Hit}}
	c := New(0, InOrder500(), mem)
	end := c.Exec(0, Op{Kind: KIFetch, Addr: 0x1000})
	if end != 16*sim.Nanosecond {
		t.Fatalf("ifetch miss end %d", end)
	}
	if c.Breakdown.L2HitStall != 16*sim.Nanosecond {
		t.Fatal("ifetch stall not attributed")
	}
	// An L1 ifetch hit is free (pipelined).
	if got := c.Exec(end, Op{Kind: KIFetch, Addr: 0x1000}); got != end {
		t.Fatal("ifetch hit should cost nothing")
	}
}

func TestKernelOpsFreeAtCore(t *testing.T) {
	c := New(0, InOrder500(), &scriptMem{})
	for _, k := range []OpKind{KIO, KTxMark, KYield} {
		if got := c.Exec(100, Op{Kind: k}); got != 100 {
			t.Fatalf("op %d cost time at the core", k)
		}
	}
}
