// Package cpu provides the processor timing models: Piranha's single-issue
// in-order eight-stage core (paper §2.1) and the aggressive next-generation
// out-of-order core used as the comparison point (§3.3, the OOO and INO
// configurations of Table 1).
//
// Cores consume a stream of architectural operations (compute runs,
// instruction fetches, loads, stores, write hints) produced either by the
// workload generators (internal/workload) or by the Alpha-subset ISA
// interpreter (internal/isa), and charge time against the memory system
// they are attached to. Stall time is attributed to the paper's Figure-5
// buckets by where each miss was serviced.
package cpu

import (
	"piranha/internal/cache"
	"piranha/internal/l2"
	"piranha/internal/sim"
)

// OpKind classifies one element of an op stream.
type OpKind uint8

// Op kinds.
const (
	// KCompute executes N instructions with no memory operands.
	KCompute OpKind = iota
	// KIFetch touches an instruction-cache line (issued by the stream
	// at basic-block boundaries; sequential fetch within a line is
	// folded into KCompute).
	KIFetch
	// KLoad reads Addr through the data cache.
	KLoad
	// KStore writes Addr through the data cache.
	KStore
	// KStoreHint is the Alpha wh64 write hint: exclusivity without
	// data, off the critical path.
	KStoreHint
	// KIO blocks the process (log write, disk read); handled by the
	// kernel, not the core.
	KIO
	// KTxMark marks a completed transaction (throughput accounting).
	KTxMark
	// KYield voluntarily yields the CPU (daemon processes).
	KYield
)

// Op is one element of an op stream.
type Op struct {
	Kind OpKind
	// N is the instruction count for KCompute.
	N int32
	// Addr is the target of memory ops.
	Addr cache.Addr
	// Dep marks a load as data-dependent on the previous load (pointer
	// chasing); dependent loads cannot overlap in the OOO core.
	Dep bool
	// IODelay is the device latency for KIO.
	IODelay sim.Time
}

// AccessKind is the memory-system request type a core issues.
type AccessKind uint8

// Access kinds.
const (
	Fetch AccessKind = iota
	Load
	Store
	StoreHint
)

// MemSystem is what a core talks to: the chip (internal/core) implements
// it with the L1s, the intra-chip switch, the shared L2 and the protocol
// engines behind it.
type MemSystem interface {
	// Access performs one reference for the given CPU and returns the
	// completion time plus the service class for stall attribution.
	Access(now sim.Time, cpuID int, kind AccessKind, a cache.Addr) (sim.Time, l2.Svc)
}
