package cpu

import (
	"piranha/internal/l2"
	"piranha/internal/sim"
	"piranha/internal/stats"
	"piranha/internal/trace"
)

// Model selects and parameterizes a core's microarchitecture.
type Model struct {
	// Clock is the core frequency (500 MHz ASIC Piranha, 1 GHz OOO,
	// 1.25 GHz full-custom Piranha).
	Clock sim.Clock
	// IssueWidth is the superscalar width (1 or 4).
	IssueWidth int
	// WindowSize is the out-of-order instruction window (64 for OOO);
	// 0 or 1 selects the blocking in-order model.
	WindowSize int
	// MSHRs bounds outstanding misses for the OOO model.
	MSHRs int
	// IPC is the sustained instructions/cycle the core achieves on
	// compute runs. In-order single-issue cores sustain ~1 (the
	// eight-stage pipeline is fully bypassed; branch effects are
	// folded in by the workload's instruction counts). Wide-issue
	// cores sustain IssueWidth x (workload ILP efficiency): the
	// workload supplies this via SetComputeIPC.
	IPC float64
}

// InOrder500 is the Piranha ASIC core: 500 MHz, single-issue, blocking.
func InOrder500() Model {
	return Model{Clock: sim.MHz(500), IssueWidth: 1, WindowSize: 1, MSHRs: 1, IPC: 1}
}

// InOrder1G is Table 1's INO: the OOO chip restricted to single-issue
// in-order, keeping its 1 GHz clock and cache latencies.
func InOrder1G() Model {
	return Model{Clock: sim.MHz(1000), IssueWidth: 1, WindowSize: 1, MSHRs: 1, IPC: 1}
}

// OutOfOrder1G is Table 1's OOO: 1 GHz, 4-issue, 64-entry window.
func OutOfOrder1G(ipc float64) Model {
	return Model{Clock: sim.MHz(1000), IssueWidth: 4, WindowSize: 64, MSHRs: 8, IPC: ipc}
}

// InOrder1250 is the full-custom Piranha core (P8F): 1.25 GHz.
func InOrder1250() Model {
	return Model{Clock: sim.GHzX1000(1250), IssueWidth: 1, WindowSize: 1, MSHRs: 1, IPC: 1}
}

// InOrder returns whether the model is the blocking in-order pipeline.
func (m Model) InOrder() bool { return m.WindowSize <= 1 }

// pendingMiss is an outstanding OOO miss.
type pendingMiss struct {
	done       sim.Time
	svc        l2.Svc
	instrSince int32 // instructions retired since the miss issued
}

// Core is one processor's timing state.
type Core struct {
	ID    int
	Model Model
	Mem   MemSystem

	// Breakdown accumulates the Figure-5 buckets.
	Breakdown stats.Breakdown
	// Instructions retired.
	Instructions uint64
	// Counters by service class.
	SvcCounts [6]uint64

	// Tracer records pipeline-stall spans; nil disables tracing.
	Tracer *trace.Tracer
	// Series samples busy/stall time per interval; nil disables sampling.
	Series *stats.Series
	// Node is the chip index, stamped on trace events.
	Node uint8

	// OOO state.
	pending     []pendingMiss
	lastLoad    sim.Time // completion of the most recent load (dependences)
	lastLoadSvc l2.Svc
}

// New returns a core bound to a memory system.
func New(id int, m Model, mem MemSystem) *Core {
	return &Core{ID: id, Model: m, Mem: mem}
}

// charge attributes the stall over [start, end) to the right bucket.
func (c *Core) charge(svc l2.Svc, start, end sim.Time) {
	d := end - start
	if d <= 0 {
		return
	}
	switch svc {
	case l2.SvcL2Hit, l2.SvcL2Fwd:
		c.Breakdown.L2HitStall += d
	case l2.SvcL1:
		c.Breakdown.CPUBusy += d
		c.Series.AddBusy(start, end)
		return
	default:
		c.Breakdown.L2Miss += d
	}
	c.Series.AddStall(start, end)
	c.Tracer.Span(trace.CPU, trace.KStall, c.Node, int16(c.ID), 0, start, end, uint32(svc))
}

// Exec runs one op starting at now and returns when the core can proceed
// to the next op of the same thread.
func (c *Core) Exec(now sim.Time, op Op) sim.Time {
	switch op.Kind {
	case KCompute:
		return c.compute(now, op.N)
	case KIFetch:
		return c.fetch(now, op)
	case KLoad:
		return c.load(now, op)
	case KStore:
		return c.store(now, op)
	case KStoreHint:
		// wh64: issue and continue; exclusivity arrives in background.
		c.Mem.Access(now, c.ID, StoreHint, op.Addr)
		return c.tickBusy(now, 1)
	default:
		// Kernel-level ops cost the core nothing here.
		return now
	}
}

// tickBusy charges n issue slots of busy time.
func (c *Core) tickBusy(now sim.Time, n int32) sim.Time {
	cycles := float64(n) / c.Model.IPC
	d := sim.Time(cycles * float64(c.Model.Clock.Period))
	if d <= 0 {
		d = c.Model.Clock.Period
	}
	c.Breakdown.CPUBusy += d
	c.Instructions += uint64(n)
	c.Series.AddBusy(now, now+d)
	return now + d
}

func (c *Core) compute(now sim.Time, n int32) sim.Time {
	if n <= 0 {
		return now
	}
	if c.Model.InOrder() {
		return c.tickBusy(now, n)
	}
	return c.computeOOO(now, n)
}

// computeOOO retires instructions against the instruction window: while
// a miss is outstanding, at most WindowSize instructions can issue past
// it; the core then stalls until the miss completes. This is what limits
// how much latency an out-of-order core can hide — on streaming code the
// window covers only a fraction of the gap between misses.
func (c *Core) computeOOO(now sim.Time, n int32) sim.Time {
	for n > 0 {
		if len(c.pending) == 0 {
			return c.tickBusy(now, n)
		}
		oldest := c.pending[0]
		if oldest.done <= now {
			c.pending = c.pending[1:]
			continue
		}
		room := int32(c.Model.WindowSize) - oldest.instrSince
		if room > n {
			room = n
		}
		if room > 0 {
			now = c.tickBusy(now, room)
			for i := range c.pending {
				c.pending[i].instrSince += room
			}
			n -= room
			continue
		}
		// The window is full behind the outstanding miss: stall until
		// it completes.
		c.charge(oldest.svc, now, oldest.done)
		now = oldest.done
		c.pending = c.pending[1:]
	}
	return now
}

func (c *Core) fetch(now sim.Time, op Op) sim.Time {
	done, svc := c.Mem.Access(now, c.ID, Fetch, op.Addr)
	if svc == l2.SvcL1 {
		// Sequential fetch is pipelined; no visible cost.
		return now
	}
	c.SvcCounts[svc]++
	if c.Model.InOrder() {
		c.charge(svc, now, done)
		return done
	}
	// OOO front ends also stall on I-misses (fetch is in-order), but
	// the window lets some latency overlap with retirement: model as a
	// pending slot like a load the next compute run depends on.
	c.charge(svc, now, done)
	return done
}

func (c *Core) load(now sim.Time, op Op) sim.Time {
	if !c.Model.InOrder() {
		return c.loadOOO(now, op)
	}
	done, svc := c.Mem.Access(now, c.ID, Load, op.Addr)
	c.SvcCounts[svc]++
	if svc == l2.SvcL1 {
		return c.busyHit(now, done)
	}
	// Blocking cache: the pipeline stalls for the whole miss.
	c.Instructions++
	c.charge(svc, now, done)
	return done
}

// busyHit retires one instruction whose access hit the L1; any extra
// time the memory system reported (e.g. a PAL-handled TLB refill) is
// instruction execution, hence CPU-busy.
func (c *Core) busyHit(now, done sim.Time) sim.Time {
	end := c.tickBusy(now, 1)
	if done > end {
		c.Breakdown.CPUBusy += done - end
		c.Series.AddBusy(end, done)
		end = done
	}
	return end
}

func (c *Core) loadOOO(now sim.Time, op Op) sim.Time {
	issue := now
	if op.Dep && c.lastLoad > issue {
		// Data-dependent on the previous load: cannot issue until the
		// producer returns. This serialization is why OLTP gains
		// little from out-of-order execution (paper §4).
		c.charge(c.lastLoadSvc, issue, c.lastLoad)
		issue = c.lastLoad
	}
	done, svc := c.Mem.Access(issue, c.ID, Load, op.Addr)
	c.SvcCounts[svc]++
	c.lastLoad, c.lastLoadSvc = done, svc
	if svc == l2.SvcL1 {
		return c.busyHit(issue, done)
	}
	// MSHR limit: if too many misses are outstanding, stall for the
	// earliest to complete.
	for len(c.pending) >= c.Model.MSHRs {
		e := c.pending[0]
		c.pending = c.pending[1:]
		if e.done > issue {
			c.charge(e.svc, issue, e.done)
			issue = e.done
		}
	}
	c.pending = append(c.pending, pendingMiss{done: done, svc: svc})
	// The load issues in one slot; its latency hides unless the window
	// fills behind it (retireWindow) or a dependent load consumes it.
	return c.tickBusy(issue, 1)
}

func (c *Core) store(now sim.Time, op Op) sim.Time {
	done, svc := c.Mem.Access(now, c.ID, Store, op.Addr)
	c.SvcCounts[svc]++
	if svc == l2.SvcL1 {
		return c.busyHit(now, done)
	}
	if c.Model.InOrder() {
		// The memory system returns store-buffer back-pressure only
		// (the miss itself drains in the background); charge any wait.
		c.Instructions++
		c.charge(svc, now, done)
		return done
	}
	// OOO: stores retire through the write buffer off the critical path.
	return c.tickBusy(now, 1)
}
