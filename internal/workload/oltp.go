package workload

import (
	"piranha/internal/cache"
	"piranha/internal/cpu"
	"piranha/internal/sim"
)

// OLTPConfig parameterizes the TPC-B-style transaction workload (§3.1:
// 40 branches, dedicated server processes, 8 per CPU, log writes hidden
// by multiprogramming).
type OLTPConfig struct {
	Branches int // 40
	Tellers  int // 400
	// InstrPerTx is the per-transaction path length (database + kernel).
	// Real Oracle TPC-B paths run ~10x longer; the model transaction is
	// scaled down uniformly, which preserves every ratio the paper
	// reports since all configurations run the same stream.
	InstrPerTx int
	// KernelFrac is the fraction of the path executed in the kernel
	// (~25% per the paper).
	KernelFrac float64
	// BlockGets is the number of buffer-cache block accesses per
	// transaction, each with its buffer-header/latch metadata work.
	BlockGets int
	// HotDataFrac is the fraction of gets that hit the skewed hot
	// working set (vs uniformly cold blocks).
	HotDataFrac float64
	// ProcsPerCPU is the server-process multiprogramming level.
	ProcsPerCPU int
	// LogIOLatency is the commit's log-write latency (group commit to
	// a controller with NV cache).
	LogIOLatency sim.Time
	// CodeFuncs/KernFuncs are function counts for the code walkers.
	CodeFuncs, KernFuncs int
	// CodeTheta is the Zipf skew of function popularity.
	CodeTheta float64
	// ShareTheta is the skew of the shared communication structures
	// (buffer headers, latches, lock table, kernel data): higher means
	// hotter lines and more cross-CPU invalidation traffic.
	ShareTheta float64
	// DataTheta is the skew of the hot block working set.
	DataTheta float64
	// UseWriteHints enables wh64 on full-line history inserts.
	UseWriteHints bool
}

// DefaultOLTP returns the calibrated TPC-B-like configuration.
func DefaultOLTP() OLTPConfig {
	return OLTPConfig{
		Branches:      40,
		Tellers:       400,
		InstrPerTx:    16000,
		KernelFrac:    0.25,
		BlockGets:     60,
		HotDataFrac:   0.85,
		ProcsPerCPU:   8,
		LogIOLatency:  150 * sim.Microsecond,
		CodeFuncs:     128,
		KernFuncs:     64,
		CodeTheta:     0.95,
		ShareTheta:    0.90,
		DataTheta:     0.75,
		UseWriteHints: true,
	}
}

// TPCCLike returns a heavier transaction mix modeled after TPC-C
// (longer paths, more block gets, larger hot set) used for the §4
// sensitivity result (P8 > 3x OOO on TPC-C).
func TPCCLike() OLTPConfig {
	c := DefaultOLTP()
	c.InstrPerTx = 26000
	c.BlockGets = 84
	c.HotDataFrac = 0.75
	c.DataTheta = 0.65
	return c
}

// OLTP builds per-process op streams over a shared layout.
type OLTP struct {
	Cfg OLTPConfig
	Lay Layout
	// nProcs total across the machine (for PGA slicing).
	nProcs  int
	spawned int
	// hot block subset of SGAData.
	hotBlocks Region
	// Shared Zipf samplers. A sampler's Next reads only fields frozen
	// by NewZipf, so one instance serves every process; building them
	// once here instead of per process matters at scale-out sizes —
	// NewZipf is O(region lines), and a 1024-node machine constructs
	// thousands of server processes.
	metaZipf, hotZipf, kbssZipf, lockZipf *sim.Zipf
}

// NewOLTP prepares the workload for nProcs server processes.
func NewOLTP(cfg OLTPConfig, lay Layout, nProcs int) *OLTP {
	hot := Region{Base: lay.SGAData.Base, Bytes: 1 << 20} // 1 MB hot block set
	return &OLTP{
		Cfg: cfg, Lay: lay, nProcs: nProcs, hotBlocks: hot,
		metaZipf: sim.NewZipf(int(lay.SGAMeta.Lines()/64), cfg.ShareTheta),
		hotZipf:  sim.NewZipf(int(hot.Lines()), cfg.DataTheta),
		kbssZipf: sim.NewZipf(int(lay.KernBSS.Lines()), cfg.ShareTheta),
		lockZipf: sim.NewZipf(int(lay.LockTab.Lines()), cfg.ShareTheta),
	}
}

// NewProcess returns the op stream for the next server process.
func (o *OLTP) NewProcess() *OLTPProc {
	p := o.Process(o.spawned)
	o.spawned++
	return p
}

// Process builds the id'th server process's op stream without touching
// shared workload state: everything it reads (layout, config, hot-set
// bounds, the shared Zipf samplers) is immutable after NewOLTP, so
// distinct ids may be constructed concurrently — an intra-parallel run
// builds processes on the phase workers.
// Construction is a pure function of id: Process(i) for i = 0..n-1 in
// any order yields exactly the processes a serial NewProcess loop would.
func (o *OLTP) Process(id int) *OLTPProc {
	p := &OLTPProc{
		o:        o,
		id:       id,
		pga:      o.Lay.PGASlice(id, o.nProcs),
		code:     newCodeWalker(o.Lay.DBCode, o.Cfg.CodeFuncs, 12, o.Cfg.CodeTheta),
		kern:     newCodeWalker(o.Lay.OSCode, o.Cfg.KernFuncs, 12, o.Cfg.CodeTheta),
		metaZipf: o.metaZipf,
		hotZipf:  o.hotZipf,
		kbssZipf: o.kbssZipf,
		lockZipf: o.lockZipf,
		histCur:  uint64(id) * (o.Lay.History.Lines() / uint64(maxI(o.nProcs, 1))),
	}
	// The PGA hot set is the first 32 KB of the process's slice.
	p.pgaHot = Region{Base: p.pga.Base, Bytes: 32 << 10}
	return p
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// OLTPProc is one dedicated server process's op stream.
type OLTPProc struct {
	o      *OLTP
	id     int
	pga    Region
	pgaHot Region

	code, kern *codeWalker
	metaZipf   *sim.Zipf
	hotZipf    *sim.Zipf
	kbssZipf   *sim.Zipf
	lockZipf   *sim.Zipf

	histCur uint64
	logCur  uint64

	queue []cpu.Op
	head  int
	// Tx counts generated transactions.
	Tx uint64
}

// Next implements kernel.Stream.
func (p *OLTPProc) Next(r *sim.RNG) cpu.Op {
	if p.head >= len(p.queue) {
		p.queue = p.generate(r, p.queue[:0])
		p.head = 0
	}
	op := p.queue[p.head]
	p.head++
	return op
}

// load/store/hint helpers.
func ld(a cache.Addr, dep bool) cpu.Op { return cpu.Op{Kind: cpu.KLoad, Addr: a, Dep: dep} }
func st(a cache.Addr) cpu.Op           { return cpu.Op{Kind: cpu.KStore, Addr: a} }
func hint(a cache.Addr) cpu.Op         { return cpu.Op{Kind: cpu.KStoreHint, Addr: a} }

// generate emits one complete transaction.
func (p *OLTPProc) generate(r *sim.RNG, ops []cpu.Op) []cpu.Op {
	cfg := p.o.Cfg
	lay := p.o.Lay
	dbInstr := int(float64(cfg.InstrPerTx) * (1 - cfg.KernelFrac))
	kernInstr := cfg.InstrPerTx - dbInstr
	gets := cfg.BlockGets
	// Spread code between the block gets; kernel work in syscalls.
	codeChunk := dbInstr / (gets + 4)
	kernChunk := kernInstr / 6

	// metaGet emits the buffer-header lookup protecting a block access:
	// a hash-chain walk (dependent loads) and a latch acquire/release.
	metaGet := func() {
		h := lay.SGAMeta.LineAt(uint64(p.metaZipf.Next(r)) * 64)
		ops = append(ops, ld(h, false), ld(h+cache.LineBytes, true))
		// Latch acquire/release dirties the header line (pin counts,
		// LRU links) on about half the gets.
		if r.Bool(0.5) {
			ops = append(ops, st(h))
		}
		// Buffer-pool LRU/free-list latches: a handful of extremely
		// hot global lines every get has a chance of touching — the
		// classic OLTP communication hot spot.
		if r.Bool(0.6) {
			g := lay.SGAMeta.LineAt(uint64(r.Intn(8)))
			ops = append(ops, ld(g, false), st(g))
		}
	}
	// lockOp touches the lock-manager hash table.
	lockOp := func() {
		l := lay.LockTab.LineAt(uint64(p.lockZipf.Next(r)))
		ops = append(ops, ld(l, false), st(l))
	}
	// syscall emits a kernel code chunk plus shared kernel data.
	syscall := func() {
		ops = p.kern.emit(ops, r, kernChunk)
		for i := 0; i < 3; i++ {
			k := lay.KernBSS.LineAt(uint64(p.kbssZipf.Next(r)))
			ops = append(ops, ld(k, i > 0))
		}
		if r.Bool(0.4) {
			k := lay.KernBSS.LineAt(uint64(p.kbssZipf.Next(r)))
			ops = append(ops, st(k))
		}
	}
	// pgaWork touches the process's private sort/work area.
	pgaWork := func(n int) {
		for i := 0; i < n; i++ {
			ops = append(ops, ld(p.pgaHot.RandomLine(r), false))
		}
		ops = append(ops, st(p.pgaHot.RandomLine(r)))
	}

	// --- begin transaction: parse, lock, kernel entry ---
	ops = p.code.emit(ops, r, codeChunk*2)
	lockOp()
	lockOp()
	syscall()
	pgaWork(3)

	// --- account via B-tree: root -> internal -> leaf -> block ---
	ops = p.code.emit(ops, r, codeChunk)
	root := lay.BTreeI.LineAt(0)
	internal := lay.BTreeI.RandomLine(r)
	leaf := lay.BTreeL.RandomLine(r)
	ops = append(ops, ld(root, false), ld(internal, true), ld(leaf, true))
	metaGet()
	acct := lay.SGAData.RandomLine(r) // 512 MB: effectively always cold
	ops = append(ops, ld(acct, true), st(acct))

	// --- remaining block gets: hot working set + occasional cold ---
	for g := 0; g < gets-6; g++ {
		ops = p.code.emit(ops, r, codeChunk)
		metaGet()
		var b cache.Addr
		if r.Bool(cfg.HotDataFrac) {
			b = p.o.hotBlocks.LineAt(uint64(p.hotZipf.Next(r)))
		} else {
			b = lay.SGAData.RandomLine(r)
		}
		ops = append(ops, ld(b, true))
		// OLTP blocks are updated in place about half the time
		// (index maintenance, row updates, undo) — the migratory
		// sharing pattern that drives L2 forwarding on a CMP.
		if r.Bool(0.45) {
			ops = append(ops, st(b))
		}
		if g%5 == 4 {
			pgaWork(2)
		}
		if g%9 == 8 {
			syscall() // buffer reads, IPC, timer ticks
		}
	}

	// --- teller update ---
	ops = p.code.emit(ops, r, codeChunk)
	metaGet()
	t := lay.Teller.LineAt(uint64(r.Intn(cfg.Tellers)))
	ops = append(ops, ld(t, false), st(t))

	// --- branch update: the 40-row hot table every transaction hits ---
	ops = p.code.emit(ops, r, codeChunk)
	metaGet()
	b := lay.Branch.LineAt(uint64(r.Intn(cfg.Branches)))
	ops = append(ops, ld(b, false), st(b))

	// --- history insert: append-only, full-line writes ---
	ops = p.code.emit(ops, r, codeChunk)
	h := lay.History.LineAt(p.histCur)
	p.histCur++
	if cfg.UseWriteHints {
		ops = append(ops, hint(h), st(h))
	} else {
		ops = append(ops, st(h))
	}

	// --- redo log: build the record in the shared ring, commit ---
	ops = p.code.emit(ops, r, codeChunk)
	slot := (uint64(p.id) + p.logCur*uint64(p.o.nProcs)) % lay.Log.Lines()
	p.logCur++
	for i := uint64(0); i < 2; i++ {
		ops = append(ops, st(lay.Log.LineAt(slot+i)))
	}
	syscall()
	syscall() // commit path: log syscall + scheduler reentry

	// --- commit: log write I/O, transaction boundary ---
	ops = append(ops,
		cpu.Op{Kind: cpu.KIO, IODelay: cfg.LogIOLatency},
		cpu.Op{Kind: cpu.KTxMark},
	)
	p.Tx++
	return ops
}
