package workload

import (
	"testing"

	"piranha/internal/cache"
	"piranha/internal/cpu"
	"piranha/internal/sim"
)

func TestLayoutRegionsDisjointAndAligned(t *testing.T) {
	lay := DefaultLayout()
	regions := []Region{
		lay.OSCode, lay.DBCode, lay.KernBSS, lay.SGAData, lay.SGAMeta,
		lay.LockTab, lay.BTreeI, lay.BTreeL, lay.Branch, lay.Teller,
		lay.Log, lay.History, lay.Scan, lay.PGA,
	}
	for i, r := range regions {
		if uint64(r.Base)%cache.PageBytes != 0 {
			t.Fatalf("region %d not page-aligned: %#x", i, r.Base)
		}
		if r.Lines() == 0 {
			t.Fatalf("region %d empty", i)
		}
		for j, s := range regions {
			if i == j {
				continue
			}
			if r.Base < s.Base+cache.Addr(s.Bytes) && s.Base < r.Base+cache.Addr(r.Bytes) {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{Base: 0x10000, Bytes: 640}
	if r.Lines() != 10 {
		t.Fatalf("lines %d", r.Lines())
	}
	if r.LineAt(0) != 0x10000 || r.LineAt(9) != 0x10000+9*64 {
		t.Fatal("LineAt wrong")
	}
	if r.LineAt(10) != 0x10000 {
		t.Fatal("LineAt should wrap")
	}
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		a := r.RandomLine(rng)
		if a < r.Base || a >= r.Base+cache.Addr(r.Bytes) {
			t.Fatalf("random line %#x outside region", a)
		}
	}
}

func TestPGASlicesDisjoint(t *testing.T) {
	lay := DefaultLayout()
	a := lay.PGASlice(0, 64)
	b := lay.PGASlice(1, 64)
	if a.Base+cache.Addr(a.Bytes) > b.Base {
		t.Fatal("PGA slices overlap")
	}
}

func TestCodeWalkerFootprintAndJumps(t *testing.T) {
	lay := DefaultLayout()
	w := newCodeWalker(lay.DBCode, 512, 6, 0.8)
	r := sim.NewRNG(7)
	var ops []cpu.Op
	ops = w.emit(ops, r, 160000)
	seen := map[cache.Addr]int{}
	instr := int32(0)
	for _, op := range ops {
		switch op.Kind {
		case cpu.KIFetch:
			if op.Addr < lay.DBCode.Base || op.Addr >= lay.DBCode.Base+cache.Addr(lay.DBCode.Bytes) {
				t.Fatalf("fetch outside code region: %#x", op.Addr)
			}
			seen[op.Addr.Line().Addr()]++
		case cpu.KCompute:
			instr += op.N
		}
	}
	if instr < 160000 {
		t.Fatalf("emitted %d instructions, want >= 160000", instr)
	}
	// The walk must cover far more than an L1's worth of code (large
	// footprint) but revisit hot lines (Zipf skew).
	if len(seen) < 1500 {
		t.Fatalf("footprint only %d lines", len(seen))
	}
	max := 0
	for _, n := range seen {
		if n > max {
			max = n
		}
	}
	if max < 5 {
		t.Fatalf("no hot code lines (max revisit %d)", max)
	}
}

func TestOLTPTransactionShape(t *testing.T) {
	lay := DefaultLayout()
	o := NewOLTP(DefaultOLTP(), lay, 8)
	p := o.NewProcess()
	r := sim.NewRNG(3)

	var instr int32
	counts := map[cpu.OpKind]int{}
	branchRefs, logStores := 0, 0
	// Drain exactly one transaction.
	for {
		op := p.Next(r)
		counts[op.Kind]++
		if op.Kind == cpu.KCompute {
			instr += op.N
		}
		if (op.Kind == cpu.KLoad || op.Kind == cpu.KStore) &&
			op.Addr >= lay.Branch.Base && op.Addr < lay.Branch.Base+cache.Addr(lay.Branch.Bytes) {
			branchRefs++
		}
		if op.Kind == cpu.KStore && op.Addr >= lay.Log.Base && op.Addr < lay.Log.Base+cache.Addr(lay.Log.Bytes) {
			logStores++
		}
		if op.Kind == cpu.KTxMark {
			break
		}
	}
	cfg := DefaultOLTP()
	if instr < int32(cfg.InstrPerTx*8/10) || instr > int32(cfg.InstrPerTx*13/10) {
		t.Fatalf("instructions per tx = %d, want ~%d", instr, cfg.InstrPerTx)
	}
	if counts[cpu.KIO] != 1 {
		t.Fatalf("commits %d, want 1 log write", counts[cpu.KIO])
	}
	if branchRefs < 2 {
		t.Fatalf("branch table refs %d, want >= 2 (every tx updates a branch)", branchRefs)
	}
	if logStores < 2 {
		t.Fatalf("log stores %d", logStores)
	}
	if counts[cpu.KStoreHint] == 0 {
		t.Fatal("no wh64 on history insert")
	}
	if counts[cpu.KLoad] < 60 {
		t.Fatalf("only %d loads per tx", counts[cpu.KLoad])
	}
	if counts[cpu.KIFetch] < 500 {
		t.Fatalf("only %d ifetches per tx", counts[cpu.KIFetch])
	}
}

func TestOLTPDistinctProcessesSharedHotData(t *testing.T) {
	lay := DefaultLayout()
	o := NewOLTP(DefaultOLTP(), lay, 4)
	p1, p2 := o.NewProcess(), o.NewProcess()
	if p1.pga.Base == p2.pga.Base {
		t.Fatal("processes share a PGA")
	}
	// Both processes must touch the same branch region lines over many
	// transactions (the communication hot spot).
	r1, r2 := sim.NewRNG(1), sim.NewRNG(2)
	touch := func(p *OLTPProc, r *sim.RNG) map[cache.Addr]bool {
		s := map[cache.Addr]bool{}
		for tx := 0; tx < 20; tx++ {
			for {
				op := p.Next(r)
				if op.Kind == cpu.KTxMark {
					break
				}
				if op.Addr >= lay.Branch.Base && op.Addr < lay.Branch.Base+cache.Addr(lay.Branch.Bytes) {
					s[op.Addr] = true
				}
			}
		}
		return s
	}
	s1, s2 := touch(p1, r1), touch(p2, r2)
	common := 0
	for a := range s1 {
		if s2[a] {
			common++
		}
	}
	if common == 0 {
		t.Fatal("no shared branch lines between processes")
	}
}

func TestDSSScanShape(t *testing.T) {
	lay := DefaultLayout()
	d := NewDSS(DefaultDSS(), lay, 8)
	p := d.NewProcess()
	p2 := d.NewProcess()
	if p.start == p2.start {
		t.Fatal("slaves scan the same partition")
	}
	r := sim.NewRNG(5)
	var last cache.Addr
	seq := 0
	loads := 0
	for i := 0; i < 2000; i++ {
		op := p.Next(r)
		if op.Kind != cpu.KLoad {
			continue
		}
		loads++
		if op.Dep {
			t.Fatal("DSS loads must be independent (streaming)")
		}
		if last != 0 && op.Addr == last+cache.LineBytes {
			seq++
		}
		last = op.Addr
	}
	if loads == 0 || seq < loads*9/10 {
		t.Fatalf("scan not sequential: %d/%d", seq, loads)
	}
}

func TestDSSComputeDominates(t *testing.T) {
	d := NewDSS(DefaultDSS(), DefaultLayout(), 4)
	p := d.NewProcess()
	r := sim.NewRNG(9)
	var instr int64
	loads := 0
	for i := 0; i < 5000; i++ {
		op := p.Next(r)
		switch op.Kind {
		case cpu.KCompute:
			instr += int64(op.N)
		case cpu.KLoad:
			loads++
		}
	}
	if loads == 0 {
		t.Fatal("no loads")
	}
	perLine := instr / int64(loads)
	if perLine < 100 {
		t.Fatalf("only %d instructions per scanned line; DSS must be compute-heavy", perLine)
	}
}

func TestPointerChaseDependent(t *testing.T) {
	p := &PointerChase{Region: Region{Base: 0, Bytes: 1 << 20}, LoadsPerTx: 10}
	r := sim.NewRNG(1)
	seen := map[cache.Addr]bool{}
	marks := 0
	for i := 0; i < 1000; i++ {
		op := p.Next(r)
		if op.Kind == cpu.KTxMark {
			marks++
			continue
		}
		if !op.Dep {
			t.Fatal("chase loads must be dependent")
		}
		seen[op.Addr] = true
	}
	if marks == 0 || len(seen) < 500 {
		t.Fatalf("marks=%d distinct=%d", marks, len(seen))
	}
}

func TestStreamSequentialWithStores(t *testing.T) {
	s := &Stream{Region: Region{Base: 0x1000000, Bytes: 1 << 20}, StoreEvery: 4}
	r := sim.NewRNG(1)
	stores := 0
	for i := 0; i < 400; i++ {
		if s.Next(r).Kind == cpu.KStore {
			stores++
		}
	}
	if stores < 80 || stores > 120 {
		t.Fatalf("stores %d, want ~100", stores)
	}
}

func TestOOOIPC(t *testing.T) {
	if OOOIPC("dss") <= OOOIPC("oltp") {
		t.Fatal("DSS must have higher ILP than OLTP")
	}
	if OOOIPC("unknown") <= 1 {
		t.Fatal("default IPC should exceed 1")
	}
}

func TestTPCCHeavier(t *testing.T) {
	a, b := DefaultOLTP(), TPCCLike()
	if b.InstrPerTx <= a.InstrPerTx || b.BlockGets <= a.BlockGets {
		t.Fatal("TPC-C-like mix should be heavier than TPC-B")
	}
}
