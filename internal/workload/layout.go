// Package workload synthesizes the memory-reference and instruction
// streams of the paper's workloads (§3.1): an OLTP workload modeled after
// TPC-B running on an Oracle-like database engine (40 branches, dedicated
// server processes, SGA buffer cache and metadata, log writer), a DSS
// workload modeled after TPC-D Query 6 (a parallelized scan of the
// largest table), a TPC-C-like mix, and microbenchmarks.
//
// The generators are execution-driven, not statistical: every emitted
// reference has a concrete physical address in a laid-out address space,
// so cache contents, sharing, forwarding, invalidations and directory
// state all emerge from the hierarchy simulation rather than being
// asserted. References that always hit the L1 (stack, registers spilled,
// scratch) are folded into the compute ops' CPI as the usual filtered-
// trace approach; the emitted references are the ones that exercise the
// memory system: database blocks, B-tree levels, buffer headers and
// latches, the lock table, the redo-log buffer, history inserts, and the
// instruction stream over the database engine's and kernel's code.
package workload

import (
	"piranha/internal/cache"
	"piranha/internal/sim"
)

// Region is a contiguous range of simulated physical memory.
type Region struct {
	Base  cache.Addr
	Bytes uint64
}

// Lines returns the region's size in cache lines.
func (r Region) Lines() uint64 { return r.Bytes / cache.LineBytes }

// LineAt returns the address of the i-th line (wrapping).
func (r Region) LineAt(i uint64) cache.Addr {
	return r.Base + cache.Addr(i%r.Lines())*cache.LineBytes
}

// RandomLine returns a uniformly random line address.
func (r Region) RandomLine(rng *sim.RNG) cache.Addr {
	return r.LineAt(uint64(rng.Int63n(int64(r.Lines()))))
}

// Layout places the workload's address space. Regions are page-aligned
// (8 KB) so multi-chip home interleaving distributes them across nodes.
type Layout struct {
	OSCode  Region // kernel text (shared by every process)
	DBCode  Region // database engine text
	KernBSS Region // shared kernel data (scheduler, fs, net structures)

	SGAData Region // database buffer cache (block-sized reads/writes)
	SGAMeta Region // buffer headers, latches
	LockTab Region // lock manager hash table
	BTreeI  Region // index internal nodes
	BTreeL  Region // index leaf nodes
	Branch  Region // 40 hot branch rows, one line each
	Teller  Region // teller rows
	Log     Region // redo log buffer ring
	History Region // history table (appended)
	Scan    Region // DSS fact table
	PGA     Region // per-process private pools (sliced per process)
}

// DefaultLayout sizes the regions after the paper's setup (600 MB SGA,
// ~80 MB metadata, 500 MB DSS table), scaled where noted to keep the
// functional simulation cheap while preserving each region's relation to
// the 64 KB L1s and 1 MB L2 (what matters for miss behaviour).
func DefaultLayout() Layout {
	mb := func(n uint64) uint64 { return n << 20 }
	kb := func(n uint64) uint64 { return n << 10 }
	base := cache.Addr(0)
	next := func(bytes uint64) Region {
		r := Region{Base: base, Bytes: bytes}
		// Page-align and leave a guard page between regions.
		base += cache.Addr(bytes)
		base = (base + cache.PageBytes) &^ (cache.PageBytes - 1)
		return r
	}
	return Layout{
		OSCode:  next(kb(256)),
		DBCode:  next(kb(448)),
		KernBSS: next(kb(512)),
		SGAData: next(mb(512)),
		SGAMeta: next(mb(16)),
		LockTab: next(mb(2)),
		BTreeI:  next(kb(256)),
		BTreeL:  next(mb(32)),
		Branch:  next(kb(4)),  // 40 rows padded to 64 lines
		Teller:  next(kb(32)), // 400 rows, ~one per line
		Log:     next(mb(1)),
		History: next(mb(64)),
		Scan:    next(mb(512)),
		PGA:     next(mb(64)),
	}
}

// PGASlice returns process p's private slice of the PGA pool.
func (l Layout) PGASlice(p, nprocs int) Region {
	per := l.PGA.Bytes / uint64(nprocs)
	per &^= cache.PageBytes - 1
	if per < cache.PageBytes {
		per = cache.PageBytes
	}
	return Region{Base: l.PGA.Base + cache.Addr(uint64(p)*per), Bytes: per}
}
