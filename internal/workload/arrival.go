package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"piranha/internal/sim"
)

// Arrival process names accepted by ArrivalSpec.Process.
const (
	ArrivalPoisson = "poisson" // memoryless stream at the mean rate
	ArrivalMMPP    = "mmpp"    // two-state Markov-modulated on/off bursts
	ArrivalDiurnal = "diurnal" // sinusoidal load shape around the mean
)

// TenantShare is one entry of a multi-tenant arrival mix: a workload
// kind ("oltp", "dss", "web", "tpcc") and its integer weight in the
// arrival stream.
type TenantShare struct {
	Kind   string `json:"kind"`
	Weight int    `json:"weight"`
}

// ArrivalSpec describes an open-loop arrival stream. The zero value
// (Rate == 0) means closed-loop: the classic fixed-processes-per-CPU
// mode where every server process always has a next transaction. A
// positive Rate switches the run to open-loop — transactions arrive on
// a deterministic seeded stochastic process and wait in the kernel's
// admission queue for a server process — the same enable-by-value
// pattern as fault.Plan.
type ArrivalSpec struct {
	// Process selects the arrival process; empty means ArrivalPoisson.
	Process string
	// Rate is the mean offered load in transactions per second of
	// simulated time. Zero disables open-loop arrivals entirely.
	Rate float64
	// Burst is the MMPP on-state rate multiplier (default 8): during a
	// burst the instantaneous rate is Burst× the off-state rate, scaled
	// so the long-run mean stays Rate.
	Burst float64
	// OnFrac is the MMPP fraction of time spent in the on (burst) state
	// (default 0.2).
	OnFrac float64
	// Period is the modulation timescale: the MMPP mean on+off cycle
	// (default 100 µs) or the diurnal cycle length (default 500 µs).
	Period sim.Time
	// Depth is the diurnal amplitude in [0, 1): instantaneous rate
	// swings between Rate·(1−Depth) and Rate·(1+Depth) (default 0.8).
	Depth float64
	// Capacity bounds the admission queue; arrivals beyond it are shed
	// (counted, never executed). Zero means unbounded.
	Capacity int
	// RetryBudget, when positive on a bounded queue, re-offers a rejected
	// arrival up to that many times with deterministic exponential backoff
	// before shedding it for good. Zero keeps the immediate-shed policy.
	RetryBudget int
	// RetryBackoff is the delay before the first re-offer (default 1 µs).
	RetryBackoff sim.Time
	// RetryFactor multiplies the backoff per attempt (default 2).
	RetryFactor int
	// Mix is the multi-tenant composition of the stream. Empty means a
	// single tenant running the experiment's own workload kind. A
	// non-empty mix assigns each arrival a tenant drawn by weight, and
	// the system hosts one server-process pool per tenant.
	Mix []TenantShare
}

// Enabled reports whether the spec describes an open-loop run.
func (a ArrivalSpec) Enabled() bool { return a.Rate > 0 }

// withDefaults fills unset shape parameters.
func (a ArrivalSpec) withDefaults() ArrivalSpec {
	if a.Process == "" {
		a.Process = ArrivalPoisson
	}
	if a.Burst <= 1 {
		a.Burst = 8
	}
	if a.OnFrac <= 0 || a.OnFrac >= 1 {
		a.OnFrac = 0.2
	}
	if a.Period <= 0 {
		if a.Process == ArrivalDiurnal {
			a.Period = 500 * sim.Microsecond
		} else {
			a.Period = 100 * sim.Microsecond
		}
	}
	if a.Depth <= 0 || a.Depth >= 1 {
		a.Depth = 0.8
	}
	return a
}

// Validate rejects specs the generator cannot realize.
func (a ArrivalSpec) Validate() error {
	if !a.Enabled() {
		return nil
	}
	switch a.Process {
	case "", ArrivalPoisson, ArrivalMMPP, ArrivalDiurnal:
	default:
		return fmt.Errorf("workload: unknown arrival process %q", a.Process)
	}
	if a.Capacity < 0 {
		return fmt.Errorf("workload: negative admission capacity %d", a.Capacity)
	}
	if a.RetryBudget < 0 {
		return fmt.Errorf("workload: negative retry budget %d", a.RetryBudget)
	}
	if a.RetryBudget > 0 && a.Capacity == 0 {
		return fmt.Errorf("workload: retry budget %d needs a bounded queue (cap > 0)", a.RetryBudget)
	}
	for _, t := range a.Mix {
		if t.Weight <= 0 {
			return fmt.Errorf("workload: tenant %q has non-positive weight %d", t.Kind, t.Weight)
		}
	}
	return nil
}

// Tenants returns the number of tenant pools the spec implies (≥ 1).
func (a ArrivalSpec) Tenants() int {
	if len(a.Mix) == 0 {
		return 1
	}
	return len(a.Mix)
}

// ArrivalGen produces the arrival timestamps of one open-loop run. It
// owns a split sim.RNG stream, so the sequence is a pure function of
// (spec, seed): byte-identical across reruns and independent of how the
// rest of the simulation consumes randomness.
type ArrivalGen struct {
	spec ArrivalSpec
	rng  *sim.RNG

	last sim.Time // previous arrival timestamp

	// MMPP modulation state.
	on       bool
	stateEnd sim.Time

	// Tenant weight table (cumulative) for the weighted draw.
	cumW   []int
	totalW int
}

// NewArrivalGen builds a generator. rng must be a dedicated split
// stream; the generator consumes it exclusively.
func NewArrivalGen(spec ArrivalSpec, rng *sim.RNG) *ArrivalGen {
	g := &ArrivalGen{spec: spec.withDefaults(), rng: rng}
	for _, t := range spec.Mix {
		g.totalW += t.Weight
		g.cumW = append(g.cumW, g.totalW)
	}
	return g
}

// perPs converts a rate in tx/s of simulated time to tx/ps.
func perPs(rate float64) float64 { return rate / 1e12 }

// expStep draws an exponential inter-arrival step for the given rate,
// clamped to at least 1 ps so timestamps are strictly monotone.
func (g *ArrivalGen) expStep(lambdaPerPs float64) sim.Time {
	u := g.rng.Float64()
	d := -math.Log(1-u) / lambdaPerPs
	if d < 1 {
		return 1
	}
	if d > 1e15 { // 1000 s of simulated time: effectively "never"
		d = 1e15
	}
	return sim.Time(d)
}

// Next returns the next arrival's absolute timestamp (strictly greater
// than the previous one) and its tenant index.
func (g *ArrivalGen) Next() (at sim.Time, tenant int) {
	switch g.spec.Process {
	case ArrivalMMPP:
		at = g.nextMMPP()
	case ArrivalDiurnal:
		at = g.nextDiurnal()
	default:
		at = g.last + g.expStep(perPs(g.spec.Rate))
	}
	g.last = at
	if g.totalW > 0 {
		w := g.rng.Intn(g.totalW)
		for i, c := range g.cumW {
			if w < c {
				tenant = i
				break
			}
		}
	}
	return at, tenant
}

// nextMMPP samples from a two-state on/off modulated Poisson process.
// Off- and on-state rates are scaled so the long-run mean equals Rate:
// λ_off·(1−OnFrac) + Burst·λ_off·OnFrac = Rate. Dwell times are
// exponential with means OnFrac·Period and (1−OnFrac)·Period. Because
// the conditional arrival process is memoryless, resampling the
// inter-arrival gap at each state crossing is exact.
func (g *ArrivalGen) nextMMPP() sim.Time {
	s := g.spec
	lambdaOff := perPs(s.Rate / ((1 - s.OnFrac) + s.OnFrac*s.Burst))
	lambdaOn := s.Burst * lambdaOff
	meanOn := float64(s.Period) * s.OnFrac
	meanOff := float64(s.Period) * (1 - s.OnFrac)

	t := g.last
	for {
		lam := lambdaOff
		if g.on {
			lam = lambdaOn
		}
		cand := t + g.expStep(lam)
		if cand <= g.stateEnd {
			return cand
		}
		// Cross into the next modulation state and resample from there.
		t = g.stateEnd
		g.on = !g.on
		mean := meanOff
		if g.on {
			mean = meanOn
		}
		dwell := -math.Log(1-g.rng.Float64()) * mean
		if dwell < 1 {
			dwell = 1
		}
		g.stateEnd += sim.Time(dwell)
	}
}

// nextDiurnal samples from a sinusoidally-modulated Poisson process by
// Lewis-Shedler thinning against the peak rate λmax = Rate·(1+Depth).
func (g *ArrivalGen) nextDiurnal() sim.Time {
	s := g.spec
	lambdaMax := perPs(s.Rate * (1 + s.Depth))
	t := g.last
	for {
		t += g.expStep(lambdaMax)
		phase := 2 * math.Pi * float64(t%s.Period) / float64(s.Period)
		lam := perPs(s.Rate * (1 + s.Depth*math.Sin(phase)))
		if g.rng.Float64()*lambdaMax <= lam {
			return t
		}
	}
}

// ParseArrivals parses the CLI spec grammar shared by cmd/piranha and
// cmd/piranha-bench:
//
//	poisson,rate=2e5,cap=4096
//	mmpp,rate=1.5e5,burst=8,onfrac=0.2,period=100us
//	diurnal,rate=2e5,depth=0.8,period=500us
//	poisson,rate=2e5,mix=oltp:3/dss:1
//	poisson,rate=2e5,cap=64,retry=3,backoff=2us,factor=2
//
// The first comma-separated token may name the process; every other
// token is key=value. Durations accept ns/us/ms suffixes.
func ParseArrivals(s string) (ArrivalSpec, error) {
	var a ArrivalSpec
	for i, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if i == 0 && !strings.Contains(tok, "=") {
			a.Process = tok
			continue
		}
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return a, fmt.Errorf("arrivals: token %q is not key=value", tok)
		}
		var err error
		switch k {
		case "rate":
			a.Rate, err = strconv.ParseFloat(v, 64)
		case "burst":
			a.Burst, err = strconv.ParseFloat(v, 64)
		case "onfrac":
			a.OnFrac, err = strconv.ParseFloat(v, 64)
		case "depth":
			a.Depth, err = strconv.ParseFloat(v, 64)
		case "period":
			a.Period, err = parseDuration(v)
		case "cap":
			a.Capacity, err = strconv.Atoi(v)
		case "retry":
			a.RetryBudget, err = strconv.Atoi(v)
		case "backoff":
			a.RetryBackoff, err = parseDuration(v)
		case "factor":
			a.RetryFactor, err = strconv.Atoi(v)
		case "mix":
			a.Mix, err = parseMix(v)
		default:
			return a, fmt.Errorf("arrivals: unknown key %q", k)
		}
		if err != nil {
			return a, fmt.Errorf("arrivals: bad %s: %v", k, err)
		}
	}
	if err := a.Validate(); err != nil {
		return a, err
	}
	if !a.Enabled() {
		return a, fmt.Errorf("arrivals: rate must be positive (got %v)", a.Rate)
	}
	return a, nil
}

// parseMix parses "oltp:3/dss:1" tenant lists.
func parseMix(v string) ([]TenantShare, error) {
	var mix []TenantShare
	for _, part := range strings.Split(v, "/") {
		kind, w, ok := strings.Cut(part, ":")
		weight := 1
		if ok {
			n, err := strconv.Atoi(w)
			if err != nil {
				return nil, fmt.Errorf("weight %q: %v", w, err)
			}
			weight = n
		}
		mix = append(mix, TenantShare{Kind: kind, Weight: weight})
	}
	return mix, nil
}

// parseDuration parses simulated durations with ns/us/ms/s suffixes.
func parseDuration(v string) (sim.Time, error) {
	mult := sim.Time(1)
	switch {
	case strings.HasSuffix(v, "ns"):
		mult, v = sim.Nanosecond, strings.TrimSuffix(v, "ns")
	case strings.HasSuffix(v, "us"):
		mult, v = sim.Microsecond, strings.TrimSuffix(v, "us")
	case strings.HasSuffix(v, "ms"):
		mult, v = sim.Millisecond, strings.TrimSuffix(v, "ms")
	case strings.HasSuffix(v, "s"):
		mult, v = sim.Second, strings.TrimSuffix(v, "s")
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	return sim.Time(f * float64(mult)), nil
}
