package workload

import (
	"piranha/internal/cpu"
	"piranha/internal/sim"
)

// PointerChase is a latency microbenchmark: a chain of dependent loads
// over a region, the access pattern OLTP's B-tree descents exhibit.
type PointerChase struct {
	Region Region
	// Stride in lines between chain elements.
	Stride uint64
	// LoadsPerTx sets the throughput-marker granularity.
	LoadsPerTx int
	pos        uint64
	n          int
}

// Next implements kernel.Stream.
func (p *PointerChase) Next(r *sim.RNG) cpu.Op {
	if p.LoadsPerTx > 0 {
		p.n++
		if p.n%(p.LoadsPerTx+1) == 0 {
			return cpu.Op{Kind: cpu.KTxMark}
		}
	}
	stride := p.Stride
	if stride == 0 {
		stride = 33 // co-prime with typical set counts
	}
	p.pos = (p.pos + stride) % p.Region.Lines()
	return cpu.Op{Kind: cpu.KLoad, Addr: p.Region.LineAt(p.pos), Dep: true}
}

// Stream is a bandwidth microbenchmark: independent sequential loads
// (optionally stores), the DSS access pattern distilled.
type Stream struct {
	Region Region
	// StoreEvery writes one line per N loads (0 = read-only).
	StoreEvery int
	// LoadsPerTx sets the throughput-marker granularity.
	LoadsPerTx int
	pos        uint64
	n          int
}

// Next implements kernel.Stream.
func (s *Stream) Next(r *sim.RNG) cpu.Op {
	s.n++
	if s.LoadsPerTx > 0 && s.n%(s.LoadsPerTx+1) == 0 {
		return cpu.Op{Kind: cpu.KTxMark}
	}
	s.pos = (s.pos + 1) % s.Region.Lines()
	a := s.Region.LineAt(s.pos)
	if s.StoreEvery > 0 && s.n%s.StoreEvery == 0 {
		return cpu.Op{Kind: cpu.KStore, Addr: a}
	}
	return cpu.Op{Kind: cpu.KLoad, Addr: a}
}

// OOOIPC returns the sustained compute IPC a 4-issue out-of-order core
// achieves on each workload's instruction mix (§4: wide issue and OOO
// buy ~1.45x on OLTP — low ILP, data-dependent — and nearly 2x on DSS's
// tight loops). Used to set cpu.Model.IPC for the OOO configuration.
func OOOIPC(name string) float64 {
	switch name {
	case "oltp", "tpcc":
		return 1.60
	case "dss":
		return 1.90
	default:
		return 1.50
	}
}
