package workload

import (
	"piranha/internal/cpu"
	"piranha/internal/sim"
)

// instrPerLine is how many 4-byte Alpha instructions fit a 64-byte line.
const instrPerLine = 16

// codeWalker models an instruction stream over a code region: runs of
// sequential lines (basic blocks falling through) punctuated by jumps to
// function entry points drawn from a Zipf distribution — the hot-function
// skew every large engine exhibits. One KIFetch op is emitted per line
// transition; the 16 instructions of each line are a KCompute.
type codeWalker struct {
	region   Region
	nFuncs   int
	zipf     *sim.Zipf
	runLines int // mean sequential run length before a jump
	pos      uint64
	left     int
}

// newCodeWalker builds a walker with nFuncs entry points and the given
// mean run length in lines.
func newCodeWalker(region Region, nFuncs, runLines int, theta float64) *codeWalker {
	if nFuncs < 1 {
		nFuncs = 1
	}
	return &codeWalker{
		region:   region,
		nFuncs:   nFuncs,
		zipf:     sim.NewZipf(nFuncs, theta),
		runLines: runLines,
	}
}

// emit appends the ops for executing approximately instrs instructions.
func (w *codeWalker) emit(ops []cpu.Op, r *sim.RNG, instrs int) []cpu.Op {
	lines := (instrs + instrPerLine - 1) / instrPerLine
	total := w.region.Lines()
	for i := 0; i < lines; i++ {
		if w.left <= 0 {
			// Jump to a function entry; entries spread evenly across
			// the region, popularity Zipf-distributed.
			f := uint64(w.zipf.Next(r))
			w.pos = f * total / uint64(w.nFuncs)
			w.left = 1 + r.Intn(2*w.runLines)
		}
		ops = append(ops,
			cpu.Op{Kind: cpu.KIFetch, Addr: w.region.LineAt(w.pos)},
			cpu.Op{Kind: cpu.KCompute, N: instrPerLine},
		)
		w.pos++
		w.left--
	}
	return ops
}
