package workload

import (
	"math"
	"testing"

	"piranha/internal/sim"
)

func drawN(t *testing.T, spec ArrivalSpec, seed uint64, n int) ([]sim.Time, []int) {
	t.Helper()
	g := NewArrivalGen(spec, sim.NewRNG(seed))
	times := make([]sim.Time, n)
	tenants := make([]int, n)
	for i := 0; i < n; i++ {
		times[i], tenants[i] = g.Next()
	}
	return times, tenants
}

func TestArrivalMonotoneAndDeterministic(t *testing.T) {
	for _, proc := range []string{ArrivalPoisson, ArrivalMMPP, ArrivalDiurnal} {
		spec := ArrivalSpec{Process: proc, Rate: 2e5}
		a, _ := drawN(t, spec, 99, 2000)
		b, _ := drawN(t, spec, 99, 2000)
		prev := sim.Time(-1)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: rerun diverged at arrival %d: %d vs %d", proc, i, a[i], b[i])
			}
			if a[i] <= prev {
				t.Fatalf("%s: timestamps not strictly monotone at %d: %d after %d", proc, i, a[i], prev)
			}
			prev = a[i]
		}
	}
}

// TestArrivalMeanRate checks each process realizes its configured mean
// rate over a long horizon.
func TestArrivalMeanRate(t *testing.T) {
	const rate = 2e5 // tx/s → mean gap 5 µs
	for _, proc := range []string{ArrivalPoisson, ArrivalMMPP, ArrivalDiurnal} {
		spec := ArrivalSpec{Process: proc, Rate: rate}
		const n = 50000
		times, _ := drawN(t, spec, 7, n)
		elapsed := float64(times[n-1]) / float64(sim.Second)
		got := float64(n) / elapsed
		if math.Abs(got-rate)/rate > 0.05 {
			t.Errorf("%s: realized rate %.0f tx/s, want %.0f ±5%%", proc, got, rate)
		}
	}
}

// TestArrivalMMPPBurstiness checks the MMPP stream is measurably
// burstier than Poisson: the squared coefficient of variation of
// inter-arrival gaps exceeds 1 (Poisson's CV² is 1).
func TestArrivalMMPPBurstiness(t *testing.T) {
	cv2 := func(spec ArrivalSpec) float64 {
		const n = 40000
		times, _ := drawN(t, spec, 21, n)
		gaps := make([]float64, n-1)
		var mean float64
		for i := 1; i < n; i++ {
			gaps[i-1] = float64(times[i] - times[i-1])
			mean += gaps[i-1]
		}
		mean /= float64(len(gaps))
		var variance float64
		for _, g := range gaps {
			variance += (g - mean) * (g - mean)
		}
		variance /= float64(len(gaps))
		return variance / (mean * mean)
	}
	poisson := cv2(ArrivalSpec{Process: ArrivalPoisson, Rate: 2e5})
	mmpp := cv2(ArrivalSpec{Process: ArrivalMMPP, Rate: 2e5, Burst: 16, OnFrac: 0.1})
	if poisson < 0.9 || poisson > 1.1 {
		t.Errorf("poisson CV² = %.2f, want ~1", poisson)
	}
	if mmpp < poisson*1.5 {
		t.Errorf("mmpp CV² = %.2f not burstier than poisson %.2f", mmpp, poisson)
	}
}

// TestArrivalDiurnalShape checks the diurnal stream concentrates
// arrivals in the high-rate half of the cycle.
func TestArrivalDiurnalShape(t *testing.T) {
	spec := ArrivalSpec{Process: ArrivalDiurnal, Rate: 2e5, Depth: 0.9, Period: 500 * sim.Microsecond}
	times, _ := drawN(t, spec, 5, 40000)
	var peak, trough int
	for _, at := range times {
		// sin > 0 on the first half-period (peak), < 0 on the second.
		if at%spec.Period < spec.Period/2 {
			peak++
		} else {
			trough++
		}
	}
	if peak <= trough*2 {
		t.Errorf("diurnal arrivals not concentrated: peak-half %d vs trough-half %d", peak, trough)
	}
}

func TestArrivalMixWeights(t *testing.T) {
	spec := ArrivalSpec{Rate: 2e5, Mix: []TenantShare{{Kind: "oltp", Weight: 3}, {Kind: "dss", Weight: 1}}}
	_, tenants := drawN(t, spec, 3, 20000)
	counts := map[int]int{}
	for _, tn := range tenants {
		counts[tn]++
	}
	frac := float64(counts[0]) / 20000
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("tenant 0 got %.3f of arrivals, want 0.75", frac)
	}
	if counts[0]+counts[1] != 20000 {
		t.Errorf("unexpected tenant indices: %v", counts)
	}
}

func TestArrivalSpecEnabled(t *testing.T) {
	if (ArrivalSpec{}).Enabled() {
		t.Error("zero spec must be disabled")
	}
	if !(ArrivalSpec{Rate: 1}).Enabled() {
		t.Error("positive rate must enable")
	}
}

func TestParseArrivals(t *testing.T) {
	a, err := ParseArrivals("mmpp,rate=1.5e5,burst=8,onfrac=0.2,period=100us,cap=256")
	if err != nil {
		t.Fatal(err)
	}
	want := ArrivalSpec{Process: ArrivalMMPP, Rate: 1.5e5, Burst: 8, OnFrac: 0.2,
		Period: 100 * sim.Microsecond, Capacity: 256}
	if a.Process != want.Process || a.Rate != want.Rate || a.Burst != want.Burst ||
		a.OnFrac != want.OnFrac || a.Period != want.Period || a.Capacity != want.Capacity {
		t.Errorf("got %+v, want %+v", a, want)
	}

	a, err = ParseArrivals("poisson,rate=2e5,mix=oltp:3/dss:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Mix) != 2 || a.Mix[0] != (TenantShare{"oltp", 3}) || a.Mix[1] != (TenantShare{"dss", 1}) {
		t.Errorf("mix = %+v", a.Mix)
	}

	for _, bad := range []string{"", "poisson", "rate=0", "poisson,rate=2e5,bogus=1",
		"warp,rate=1e5", "poisson,rate=1e5,cap=-1", "poisson,rate=1e5,mix=oltp:0"} {
		if _, err := ParseArrivals(bad); err == nil {
			t.Errorf("ParseArrivals(%q) accepted", bad)
		}
	}
}
