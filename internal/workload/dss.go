package workload

import (
	"piranha/internal/cpu"
	"piranha/internal/sim"
)

// DSSConfig parameterizes the TPC-D Query-6-style scan (§3.1: an
// in-memory 500 MB database, the query parallelized into 4 server
// processes per CPU, each scanning its partition of the largest table to
// compute an aggregate).
type DSSConfig struct {
	// InstrPerLine is the filter/aggregate work per 64-byte table line
	// (several ~100-byte rows per pair of lines; DSS is tight loops
	// with good spatial locality, so most time is compute).
	InstrPerLine int
	// LinesPerChunk is the scan granularity between bookkeeping work.
	LinesPerChunk int
	// ChunksPerTx defines the throughput marker granularity.
	ChunksPerTx int
	// ProcsPerCPU is the parallel-query slave count per CPU.
	ProcsPerCPU int
	// LoopLines is the scan loop's code footprint in lines (tiny).
	LoopLines int
}

// DefaultDSS returns the calibrated Query-6 configuration.
func DefaultDSS() DSSConfig {
	return DSSConfig{
		InstrPerLine:  600,
		LinesPerChunk: 24,
		ChunksPerTx:   4,
		ProcsPerCPU:   4,
		LoopLines:     24,
	}
}

// WebLike returns a search-engine-style configuration (paper §6: "some
// web server applications, such as the AltaVista search engine, exhibit
// behavior similar to decision support (DSS) workloads"): index-scan
// loops with high thread counts per CPU to cover network latency, a
// slightly larger inner loop, and less work per scanned line (more
// memory-bound than Q6's aggregate).
func WebLike() DSSConfig {
	c := DefaultDSS()
	c.ProcsPerCPU = 8
	c.InstrPerLine = 400
	c.LoopLines = 48
	return c
}

// DSS builds scan streams over a shared layout.
type DSS struct {
	Cfg     DSSConfig
	Lay     Layout
	nProcs  int
	spawned int
}

// NewDSS prepares the parallel query for nProcs slaves.
func NewDSS(cfg DSSConfig, lay Layout, nProcs int) *DSS {
	return &DSS{Cfg: cfg, Lay: lay, nProcs: nProcs}
}

// NewProcess returns the next slave's stream, scanning its partition.
func (d *DSS) NewProcess() *DSSProc {
	p := d.Process(d.spawned)
	d.spawned++
	return p
}

// Process builds the id'th slave's stream without touching shared state;
// like OLTP.Process it is a pure function of id, safe to call
// concurrently for distinct ids.
func (d *DSS) Process(id int) *DSSProc {
	part := d.Lay.Scan.Lines() / uint64(maxI(d.nProcs, 1))
	return &DSSProc{
		d:     d,
		id:    id,
		start: uint64(id) * part,
		end:   uint64(id)*part + part,
		pos:   uint64(id) * part,
	}
}

// DSSProc is one parallel-query slave.
type DSSProc struct {
	d          *DSS
	id         int
	start, end uint64
	pos        uint64
	loopPos    int
	queue      []cpu.Op
	head       int
}

// Next implements kernel.Stream.
func (p *DSSProc) Next(r *sim.RNG) cpu.Op {
	if p.head >= len(p.queue) {
		p.queue = p.generate(r, p.queue[:0])
		p.head = 0
	}
	op := p.queue[p.head]
	p.head++
	return op
}

// generate emits one chunk group ending in a throughput marker.
func (p *DSSProc) generate(r *sim.RNG, ops []cpu.Op) []cpu.Op {
	cfg := p.d.Cfg
	lay := p.d.Lay
	loop := Region{Base: lay.DBCode.Base, Bytes: uint64(cfg.LoopLines) * 64}
	for c := 0; c < cfg.ChunksPerTx; c++ {
		for i := 0; i < cfg.LinesPerChunk; i++ {
			if p.pos >= p.end {
				p.pos = p.start // rescan (steady-state measurement)
			}
			// The scan loop's instruction fetches cycle a tiny footprint.
			ops = append(ops,
				cpu.Op{Kind: cpu.KIFetch, Addr: loop.LineAt(uint64(p.loopPos))},
				// Independent streaming load: the OOO core overlaps
				// these; Piranha's in-order core blocks per miss.
				cpu.Op{Kind: cpu.KLoad, Addr: lay.Scan.LineAt(p.pos)},
				cpu.Op{Kind: cpu.KCompute, N: int32(cfg.InstrPerLine)},
			)
			p.loopPos = (p.loopPos + 1) % cfg.LoopLines
			p.pos++
		}
		// Chunk bookkeeping: aggregate spill to the private area.
		ops = append(ops, cpu.Op{Kind: cpu.KCompute, N: 200})
	}
	ops = append(ops, cpu.Op{Kind: cpu.KTxMark})
	return ops
}
