package core

import (
	"fmt"
	"sort"

	"piranha/internal/fault"
	"piranha/internal/pe"
	"piranha/internal/sim"
	"piranha/internal/trace"
)

// scheduleFailStops arms the plan's fail-stop node deaths on the engine.
// Called at the warm/measure boundary, so each NodeFailure.At is relative
// to the start of the measured window — the only anchor a caller can
// predict, since the warm phase's simulated duration depends on the
// machine and workload.
//
// Each failure unfolds in three timeline instants (traced as
// fault-onset/fault-detect/fault-recover):
//
//	onset    — the node dies; its CPUs stop at their next dispatch
//	           boundary (at most one scheduler quantum of slop).
//	detect   — onset + DetectLatency: the kernel migrates the dead
//	           node's processes (re-dispatch penalty each), recovery
//	           software reconstructs the directory via the TSRF-mediated
//	           sweep (pe.FailNode) with the RAS mirror adopting the dead
//	           home's lines, and the admission queue's capacity shrinks
//	           to the alive-CPU fraction — degraded mode, not a wedge.
//	restored — when both the migrated processes are runnable again and
//	           the reconstruction sweep has finished; MTTR is
//	           restored − onset.
func scheduleFailStops(sys *System, inj *fault.Injector, ncpu int, tr *trace.Tracer, wd *sim.Watchdog) {
	plan := inj.Plan()
	fails := append([]fault.NodeFailure(nil), plan.FailStop...)
	if len(fails) == 0 {
		return
	}
	if sys.Fabric == nil {
		panic("core: fail-stop injection requires a multi-chip system")
	}
	if len(fails) >= len(sys.Chips) {
		panic(fmt.Sprintf("core: fail-stop plan kills %d of %d nodes; at least one must survive",
			len(fails), len(sys.Chips)))
	}
	seen := make(map[int]bool, len(fails))
	for _, f := range fails {
		if f.Node < 0 || f.Node >= len(sys.Chips) {
			panic(fmt.Sprintf("core: fail-stop node %d out of range [0,%d)", f.Node, len(sys.Chips)))
		}
		if seen[f.Node] {
			panic(fmt.Sprintf("core: node %d fail-stops twice in one plan", f.Node))
		}
		seen[f.Node] = true
		if f.At < 0 {
			panic(fmt.Sprintf("core: fail-stop time %d ps before the measured window", f.At))
		}
	}
	sort.Slice(fails, func(i, j int) bool { return fails[i].At < fails[j].At })

	perChip := len(sys.Chips[0].Cores)
	inj.SetCapacityFrac(1)
	for _, f := range fails {
		f := f
		sys.Engine.After(f.At, func() {
			onset := sys.Engine.Now()
			tr.Instant(trace.Kernel, trace.KFaultOnset, uint8(f.Node), -1, 0, onset, 0)
			sys.Engine.After(plan.DetectLatency, func() {
				detect := sys.Engine.Now()
				tr.Instant(trace.Kernel, trace.KFaultDetect, uint8(f.Node), -1, 0, detect, 0)
				cpus := make([]int, 0, perChip)
				for c := f.Node * perChip; c < (f.Node+1)*perChip; c++ {
					cpus = append(cpus, c)
				}
				migrated := sys.Kern.FailCPUs(cpus, plan.RedispatchPenalty)
				sweepDone, st := sys.Fabric.FailNode(detect, pe.NodeID(f.Node))
				frac := float64(sys.Kern.AliveCPUs()) / float64(ncpu)
				sys.Kern.Admission().Degrade(frac)
				inj.SetCapacityFrac(frac)
				restored := detect
				if migrated > 0 {
					restored += plan.RedispatchPenalty
				}
				if sweepDone > restored {
					restored = sweepDone
				}
				// The reconstruction sweep pre-books the surviving home
				// engines until sweepDone: memory accesses stall behind it,
				// and the machine may legitimately retire nothing for the
				// whole window. Tell the watchdog so a long sweep reads as
				// recovery in progress, not a wedge.
				wd.Defer(restored)
				inj.NoteFailStop(fault.RecoveryEvent{
					Node:           f.Node,
					Onset:          onset,
					Detect:         detect,
					Restored:       restored,
					Migrated:       migrated,
					SharersDropped: st.SharersDropped,
					OwnerReclaims:  st.OwnerReclaims,
					HomesAdopted:   st.HomesAdopted,
				})
				tr.Instant(trace.Kernel, trace.KFaultRecover, uint8(f.Node), -1, 0,
					restored, uint32((restored-onset)/sim.Nanosecond))
			})
		})
	}
}
