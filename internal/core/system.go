package core

import (
	"fmt"

	"piranha/internal/cpu"
	"piranha/internal/fault"
	"piranha/internal/kernel"
	"piranha/internal/l2"
	"piranha/internal/link"
	"piranha/internal/noc"
	"piranha/internal/pe"
	"piranha/internal/sim"
	"piranha/internal/stats"
	"piranha/internal/trace"
)

// SystemConfig describes a complete machine: one or more Piranha chips
// on a glueless interconnect (paper Figure 3).
type SystemConfig struct {
	Chips int
	Chip  ChipConfig
	// PE configures the protocol engines and inter-node protocol; the
	// zero value takes pe.DefaultConfig.
	PE pe.Config
	// NetOneWay is the flat one-way inter-chip latency used by the
	// protocol fabric (calibrated to Table 1's 120/180 ns).
	NetOneWay sim.Time
	// Topology, when set, backs the fabric with the packet-level router
	// model's calibrated distances instead of the flat latency (rings,
	// meshes, tori — the glueless configurations of Figure 3).
	Topology noc.Topology
	// Kernel configures the OS model; zero takes kernel.DefaultConfig.
	Kernel kernel.Config
}

// System is an assembled machine with its event engine and kernel.
type System struct {
	Cfg    SystemConfig
	Engine *sim.Engine
	Chips  []*Chip
	Fabric *pe.Fabric // nil for single-chip systems
	Kern   *kernel.Kernel
	Cores  []*cpu.Core // flattened across chips
}

// Validate checks the structural constraints NewSystemErr enforces —
// a topology whose node count matches Chips and whose graph is
// connected — without building the machine. Command-line front ends
// run it before committing to construction so a typo'd flag combination
// is a one-line diagnostic instead of a mid-run failure.
func (cfg SystemConfig) Validate() error {
	if cfg.Topology == nil {
		return nil
	}
	chips := cfg.Chips
	if chips < 1 {
		chips = 1
	}
	if n := cfg.Topology.Nodes(); n != chips {
		return fmt.Errorf("topology has %d nodes but the system has %d chips", n, chips)
	}
	if _, _, err := noc.Routes(cfg.Topology); err != nil {
		return err
	}
	return nil
}

// NewSystem builds the machine. It panics if the configuration is
// invalid (e.g. a degenerate topology); callers that want to surface
// configuration mistakes as errors should use NewSystemErr.
func NewSystem(cfg SystemConfig) *System {
	s, err := NewSystemErr(cfg)
	if err != nil {
		panic("core: " + err.Error())
	}
	return s
}

// NewSystemErr builds the machine, returning an error instead of
// panicking when the configuration cannot be assembled — a topology
// whose node count disagrees with Chips, or one the router model
// rejects. Command-line front ends use this to print a diagnostic
// rather than a stack trace.
func NewSystemErr(cfg SystemConfig) (*System, error) {
	if cfg.Chips < 1 {
		cfg.Chips = 1
	}
	if cfg.Kernel == (kernel.Config{}) {
		cfg.Kernel = kernel.DefaultConfig()
	}
	s := &System{Cfg: cfg, Engine: sim.NewEngine()}

	if cfg.Chips == 1 {
		s.Chips = append(s.Chips, NewChip(cfg.Chip, l2.LocalOnly{}))
	} else {
		pcfg := cfg.PE
		if pcfg.Nodes == 0 {
			pcfg = pe.DefaultConfig(cfg.Chips)
		}
		pcfg.Nodes = cfg.Chips
		var net pe.Network
		if cfg.Topology != nil {
			if n := cfg.Topology.Nodes(); n != cfg.Chips {
				return nil, fmt.Errorf("topology has %d nodes but the system has %d chips", n, cfg.Chips)
			}
			tn, err := pe.NewTopologyNetwork(cfg.Topology, sim.MHz(500), 1)
			if err != nil {
				return nil, err
			}
			net = tn
		} else {
			oneWay := cfg.NetOneWay
			if oneWay == 0 {
				oneWay = 25 * sim.Nanosecond
			}
			net = pe.NewFlatNetworkN(oneWay, cfg.Chips)
		}
		s.Fabric = pe.NewFabric(pcfg, net)
		for i := 0; i < cfg.Chips; i++ {
			chip := NewChip(cfg.Chip, s.Fabric.Proto(pe.NodeID(i)))
			s.Fabric.BindL2(pe.NodeID(i), chip.L2)
			s.Chips = append(s.Chips, chip)
		}
	}
	for _, chip := range s.Chips {
		s.Cores = append(s.Cores, chip.Cores...)
	}
	s.Kern = kernel.New(s.Engine, s.Cores, cfg.Kernel)
	return s, nil
}

// Attach wires a tracer and an interval sampler (either may be nil)
// through every component of the machine: cores, caches, L2 banks,
// switches, memory controllers, protocol engines, and the kernel.
func (s *System) Attach(tr *trace.Tracer, series *stats.Series) {
	for i, chip := range s.Chips {
		chip.Attach(tr, series, uint8(i))
	}
	if s.Fabric != nil {
		s.Fabric.SetTracer(tr)
	}
	s.Kern.SetTracer(tr)
}

// AttachFaults wires a fault injector through the machine: memory
// controllers roll ECC faults per line read, the protocol fabric rolls
// link corruption, stalls and message loss per message. A disabled
// injector leaves everything untouched. Call before Attach so the
// tracer's hop spans wrap the fault latency.
func (s *System) AttachFaults(inj *fault.Injector) {
	if !inj.Enabled() {
		return
	}
	for _, chip := range s.Chips {
		for _, mc := range chip.MCs {
			mc.SetFaults(inj)
		}
	}
	if s.Fabric != nil {
		s.Fabric.SetFaults(inj)
	}
}

// TotalCPUs returns the machine's CPU count.
func (s *System) TotalCPUs() int { return len(s.Cores) }

// Lookahead returns the machine's conservative lookahead: the minimum
// static latency any cross-component effect pays — the fastest ICS
// transfer on any chip, and for multi-chip machines also the fastest
// link-layer frame and router hop on the interconnect clock. An
// intra-run parallel execution may run partitions this far apart in
// simulated time without risking a causality violation. Zero (no chips)
// disables intra-run parallelism.
func (s *System) Lookahead() sim.Time {
	var la sim.Time
	for _, chip := range s.Chips {
		if m := chip.SW.MinLatency(); la == 0 || m < la {
			la = m
		}
	}
	if s.Fabric != nil {
		ic := sim.MHz(500)
		if m := link.MinLatency(ic); m < la {
			la = m
		}
		if m := noc.MinHopLatency(ic); m < la {
			la = m
		}
	}
	return la
}

// ResetStats clears all measurement counters (after warmup).
func (s *System) ResetStats() {
	for _, c := range s.Chips {
		c.ResetStats()
	}
	for i := range s.Kern.IdleTime {
		s.Kern.IdleTime[i] = 0
	}
}

// CheckInvariants validates every chip's coherence invariants.
func (s *System) CheckInvariants() error {
	for _, c := range s.Chips {
		if err := c.L2.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}
