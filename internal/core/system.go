package core

import (
	"piranha/internal/cpu"
	"piranha/internal/fault"
	"piranha/internal/kernel"
	"piranha/internal/l2"
	"piranha/internal/link"
	"piranha/internal/noc"
	"piranha/internal/pe"
	"piranha/internal/sim"
	"piranha/internal/stats"
	"piranha/internal/trace"
)

// SystemConfig describes a complete machine: one or more Piranha chips
// on a glueless interconnect (paper Figure 3).
type SystemConfig struct {
	Chips int
	Chip  ChipConfig
	// PE configures the protocol engines and inter-node protocol; the
	// zero value takes pe.DefaultConfig.
	PE pe.Config
	// NetOneWay is the flat one-way inter-chip latency used by the
	// protocol fabric (calibrated to Table 1's 120/180 ns).
	NetOneWay sim.Time
	// Topology, when set, backs the fabric with the packet-level router
	// model's calibrated distances instead of the flat latency (rings,
	// meshes, tori — the glueless configurations of Figure 3).
	Topology noc.Topology
	// Kernel configures the OS model; zero takes kernel.DefaultConfig.
	Kernel kernel.Config
}

// System is an assembled machine with its event engine and kernel.
type System struct {
	Cfg    SystemConfig
	Engine *sim.Engine
	Chips  []*Chip
	Fabric *pe.Fabric // nil for single-chip systems
	Kern   *kernel.Kernel
	Cores  []*cpu.Core // flattened across chips
}

// NewSystem builds the machine.
func NewSystem(cfg SystemConfig) *System {
	if cfg.Chips < 1 {
		cfg.Chips = 1
	}
	if cfg.Kernel == (kernel.Config{}) {
		cfg.Kernel = kernel.DefaultConfig()
	}
	s := &System{Cfg: cfg, Engine: sim.NewEngine()}

	if cfg.Chips == 1 {
		s.Chips = append(s.Chips, NewChip(cfg.Chip, l2.LocalOnly{}))
	} else {
		pcfg := cfg.PE
		if pcfg.Nodes == 0 {
			pcfg = pe.DefaultConfig(cfg.Chips)
		}
		pcfg.Nodes = cfg.Chips
		var net pe.Network
		if cfg.Topology != nil {
			tn, err := pe.NewTopologyNetwork(cfg.Topology, sim.MHz(500), 1)
			if err != nil {
				panic("core: " + err.Error())
			}
			net = tn
		} else {
			oneWay := cfg.NetOneWay
			if oneWay == 0 {
				oneWay = 25 * sim.Nanosecond
			}
			net = pe.NewFlatNetworkN(oneWay, cfg.Chips)
		}
		s.Fabric = pe.NewFabric(pcfg, net)
		for i := 0; i < cfg.Chips; i++ {
			chip := NewChip(cfg.Chip, s.Fabric.Proto(pe.NodeID(i)))
			s.Fabric.BindL2(pe.NodeID(i), chip.L2)
			s.Chips = append(s.Chips, chip)
		}
	}
	for _, chip := range s.Chips {
		s.Cores = append(s.Cores, chip.Cores...)
	}
	s.Kern = kernel.New(s.Engine, s.Cores, cfg.Kernel)
	return s
}

// Attach wires a tracer and an interval sampler (either may be nil)
// through every component of the machine: cores, caches, L2 banks,
// switches, memory controllers, protocol engines, and the kernel.
func (s *System) Attach(tr *trace.Tracer, series *stats.Series) {
	for i, chip := range s.Chips {
		chip.Attach(tr, series, uint8(i))
	}
	if s.Fabric != nil {
		s.Fabric.SetTracer(tr)
	}
	s.Kern.SetTracer(tr)
}

// AttachFaults wires a fault injector through the machine: memory
// controllers roll ECC faults per line read, the protocol fabric rolls
// link corruption, stalls and message loss per message. A disabled
// injector leaves everything untouched. Call before Attach so the
// tracer's hop spans wrap the fault latency.
func (s *System) AttachFaults(inj *fault.Injector) {
	if !inj.Enabled() {
		return
	}
	for _, chip := range s.Chips {
		for _, mc := range chip.MCs {
			mc.SetFaults(inj)
		}
	}
	if s.Fabric != nil {
		s.Fabric.SetFaults(inj)
	}
}

// TotalCPUs returns the machine's CPU count.
func (s *System) TotalCPUs() int { return len(s.Cores) }

// Lookahead returns the machine's conservative lookahead: the minimum
// static latency any cross-component effect pays — the fastest ICS
// transfer on any chip, and for multi-chip machines also the fastest
// link-layer frame and router hop on the interconnect clock. An
// intra-run parallel execution may run partitions this far apart in
// simulated time without risking a causality violation. Zero (no chips)
// disables intra-run parallelism.
func (s *System) Lookahead() sim.Time {
	var la sim.Time
	for _, chip := range s.Chips {
		if m := chip.SW.MinLatency(); la == 0 || m < la {
			la = m
		}
	}
	if s.Fabric != nil {
		ic := sim.MHz(500)
		if m := link.MinLatency(ic); m < la {
			la = m
		}
		if m := noc.MinHopLatency(ic); m < la {
			la = m
		}
	}
	return la
}

// ResetStats clears all measurement counters (after warmup).
func (s *System) ResetStats() {
	for _, c := range s.Chips {
		c.ResetStats()
	}
	for i := range s.Kern.IdleTime {
		s.Kern.IdleTime[i] = 0
	}
}

// CheckInvariants validates every chip's coherence invariants.
func (s *System) CheckInvariants() error {
	for _, c := range s.Chips {
		if err := c.L2.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}
