package core

import (
	"fmt"

	"piranha/internal/cpu"
	"piranha/internal/kernel"
	"piranha/internal/sim"
)

// Intra-run parallelism. The memory system is synchronous — a core's
// access walks L1 -> ICS -> L2 -> memory as nested calls inside one
// dispatch event — so the timing model itself stays a single partition
// (partition 0) whose event history is bit-identical to a serial run.
// What moves onto the phase workers is everything timing-independent:
//
//   - per-process construction (the Zipf tables dominate setup cost),
//   - workload op generation, pre-computed into per-process buffers
//     during the compute phase and handed to the kernel during the
//     commit phase.
//
// A process's op stream is a pure function of its own RNG (the kernel's
// dispatch loop passes the process RNG only to Stream.Next), so a
// generator partition owning that RNG reproduces the serial sequence
// exactly, no matter when — relative to simulated time — the ops are
// produced. The buffers therefore make the parallel run byte-identical
// by construction: partition 0 consumes the same ops at the same events,
// and nothing is ever scheduled onto its engine from another partition.

// bufStream interposes a refillable FIFO between the kernel and a
// workload stream. The kernel-facing Next ignores the kernel's RNG; the
// generator side owns a clone seeded identically, so the op sequence is
// the one the serial run would draw.
type bufStream struct {
	inner kernel.Stream
	rng   *sim.RNG
	buf   []cpu.Op
	head  int
	// req is the op count requested from the generator for the epoch in
	// flight: written at commit, read by the owning generator partition
	// during the next compute phase (the phase barrier orders the two).
	req int
	// batch is the generator's staging buffer, merged at commit.
	batch []cpu.Op
}

// Next implements kernel.Stream from the buffer. Underflow means the
// refill watermark was violated — a scheduling bug, never a workload
// condition — so it fails loudly rather than silently generating from
// the wrong goroutine.
func (b *bufStream) Next(_ *sim.RNG) cpu.Op {
	if b.head >= len(b.buf) {
		panic("core: intra-parallel op buffer underflow (refill watermark violated)")
	}
	op := b.buf[b.head]
	b.head++
	return op
}

// buffered returns the ops available to the kernel.
func (b *bufStream) buffered() int { return len(b.buf) - b.head }

// fill generates until at least n ops are staged (whole transactions:
// the inner stream's own queue granularity rides along invisibly).
func (b *bufStream) fill(n int) {
	for len(b.batch) < n {
		b.batch = append(b.batch, b.inner.Next(b.rng))
	}
}

// generate runs on a phase worker: produce what the last commit requested.
func (b *bufStream) generate() {
	if b.req > 0 {
		b.fill(b.req)
	}
}

// commit runs single-threaded in the commit phase: compact the consumed
// prefix, append the generated batch, and compute the next request so
// the buffer converges back to target.
func (b *bufStream) commit(target int) {
	if b.head > 0 {
		b.buf = append(b.buf[:0], b.buf[b.head:]...)
		b.head = 0
	}
	b.buf = append(b.buf, b.batch...)
	b.batch = b.batch[:0]
	b.req = target - len(b.buf)
	if b.req < 0 {
		b.req = 0
	}
}

// intraRun owns one experiment's two-phase execution state.
type intraRun struct {
	pe    *sim.ParallelEngine
	kern  *kernel.Kernel
	procs []*bufStream
}

// newIntraRun partitions the run: partition 0 adopts the system engine,
// and one generator partition per worker owns an interleaved slice of
// the process streams. It draws seeds, builds processes on the workers,
// pre-fills the op buffers, and spawns everything in the serial order —
// afterwards the caller just swaps RunTx for intraRun.RunTx. The spawn
// callback is the caller's Spawn/SpawnOpen choice (closed- vs open-loop)
// and must mirror the serial path exactly.
func newIntraRun(sys *System, workers, procsPerCPU int, newStream func(id int) kernel.Stream,
	spawn func(cpuID, id int, s kernel.Stream, seed uint64), rng *sim.RNG) *intraRun {
	ncpu := sys.TotalCPUs()
	n := ncpu * procsPerCPU

	// Epoch window: the hardware lookahead (minimum ICS/link/noc latency)
	// lower-bounds any sound window. Op generation has unbounded
	// lookahead — it depends on no other partition's state — so the
	// window is raised to a few scheduler quanta to amortize the phase
	// barriers; partitions that *do* exchange staged sends must keep the
	// window at the hardware bound (see DESIGN.md §11).
	window := sys.Lookahead()
	if q := 4 * sys.Cfg.Kernel.Quantum; window < q {
		window = q
	}
	pe := sim.NewParallelEngine(window, workers)
	pe.AddPartition("timing-model", sys.Engine)

	// Refill watermark: a dispatch quantum that starts just inside the
	// horizon runs to completion, so one epoch consumes at most
	// window+quantum of simulated time per CPU, at most IssueWidth ops
	// per core cycle, plus a few zero-time transaction marks. The buffer
	// target keeps two epochs of worst-case consumption in flight.
	period := int64(sys.Cfg.Chip.Core.Clock.Period)
	issue := sys.Cfg.Chip.Core.IssueWidth
	if issue < 1 {
		issue = 1
	}
	maxOps := int(int64(window+sys.Cfg.Kernel.Quantum)/period)*issue + 64
	target := 2*maxOps + 256

	// Seeds are drawn serially first — the draw order is part of the
	// byte-identity contract — then the heavyweight process construction
	// fans out across the phase workers.
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}
	r := &intraRun{pe: pe, kern: sys.Kern, procs: make([]*bufStream, n)}
	pe.Fan(n, func(i int) {
		r.procs[i] = &bufStream{inner: newStream(i), rng: sim.NewRNG(seeds[i])}
	})
	// Initial fill to the watermark, also on the workers, then committed
	// into the kernel-facing buffers before the first event runs.
	pe.Fan(n, func(i int) { r.procs[i].fill(target) })
	for _, b := range r.procs {
		b.commit(target)
	}

	// One generator partition per worker, owning procs in index stride;
	// ownership only balances load — generation is per-process
	// deterministic, so the assignment never shows in the output.
	for g := 0; g < workers; g++ {
		g := g
		gen := pe.AddPartition(fmt.Sprintf("opgen-%d", g), nil)
		gen.SetCompute(func(sim.Time) {
			for i := g; i < len(r.procs); i += workers {
				r.procs[i].generate()
			}
		})
	}
	// The commit phase hands generated batches to the kernel-facing
	// buffers in fixed process order — the buffer handoff deliberately
	// bypasses partition 0's event queue, whose (time, seq) history must
	// not shift by even one entry.
	pe.OnCommit(func() {
		for _, b := range r.procs {
			b.commit(target)
		}
	})

	id := 0
	for c := 0; c < ncpu; c++ {
		for p := 0; p < procsPerCPU; p++ {
			spawn(c, id, r.procs[id], seeds[id])
			id++
		}
	}
	return r
}

// RunTx is the drop-in replacement for Kernel.RunTx under the epoch loop.
func (r *intraRun) RunTx(target uint64) sim.Time {
	return r.kern.RunTxDriven(target, r.pe.RunWhile)
}

// Diagnostic exposes per-partition queue state for the watchdog.
func (r *intraRun) Diagnostic() string { return r.pe.Diagnostic() }

// Close stops the phase workers.
func (r *intraRun) Close() { r.pe.Close() }
