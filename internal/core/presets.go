package core

import (
	"piranha/internal/cpu"
	"piranha/internal/l1"
	"piranha/internal/l2"
	"piranha/internal/memctl"
	"piranha/internal/sim"
)

// Table 1 configuration presets. The OOO core's sustained IPC depends on
// the workload's ILP and is filled in by the experiment runner.

// piranhaL2 returns the prototype L2 (1 MB 8-way, 16/24 ns).
func piranhaL2() l2.Config { return l2.DefaultConfig() }

// PiranhaChip returns the ASIC prototype chip with n CPUs (P1/P2/P4/P8).
func PiranhaChip(n int) ChipConfig {
	return ChipConfig{
		CPUs:            n,
		Core:            cpu.InOrder500(),
		L1:              l1.DefaultConfig(),
		L2:              piranhaL2(),
		Mem:             memctl.DefaultConfig(),
		TLBRefillCycles: 30,
	}
}

// FullCustomChip returns P8F: 1.25 GHz cores, 1.5 MB 6-way L2 with
// 12 ns hit / 16 ns forward latency (Table 1's last column).
func FullCustomChip(n int) ChipConfig {
	c := PiranhaChip(n)
	c.Core = cpu.InOrder1250()
	c.L2.SizeBytes = 1536 << 10
	c.L2.Ways = 6
	c.L2.HitLatency = 12 * sim.Nanosecond
	c.L2.FwdLatency = 16 * sim.Nanosecond
	return c
}

// OOOChip returns the next-generation out-of-order chip (21364-like):
// one 1 GHz 4-issue 64-entry-window core, 1.5 MB 6-way L2 at 12 ns.
func OOOChip() ChipConfig {
	return ChipConfig{
		CPUs:            1,
		Core:            cpu.OutOfOrder1G(0), // IPC filled per workload
		L1:              l1.DefaultConfig(),
		L2:              oooL2(),
		Mem:             memctl.DefaultConfig(),
		TLBRefillCycles: 30,
	}
}

// INOChip returns Table 1's INO: the OOO chip restricted to single-issue
// in-order, isolating clock/latency effects from issue-width effects.
func INOChip() ChipConfig {
	c := OOOChip()
	c.Core = cpu.InOrder1G()
	return c
}

func oooL2() l2.Config {
	c := l2.DefaultConfig()
	c.SizeBytes = 1536 << 10
	c.Ways = 6
	c.HitLatency = 12 * sim.Nanosecond
	c.FwdLatency = 12 * sim.Nanosecond // single core: forwarding unused
	return c
}

// PessimisticPiranhaChip returns the §4 sensitivity design point:
// 400 MHz CPUs, 32 KB direct-mapped L1s, 22 ns L2 hit / 32 ns forward.
func PessimisticPiranhaChip(n int) ChipConfig {
	c := PiranhaChip(n)
	c.Core.Clock = sim.MHz(400)
	c.L1.SizeBytes = 32 << 10
	c.L1.Ways = 1
	c.L2.HitLatency = 22 * sim.Nanosecond
	c.L2.FwdLatency = 32 * sim.Nanosecond
	return c
}
