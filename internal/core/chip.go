// Package core assembles the Piranha processing node (paper §2, Figure 1)
// — CPUs, per-core L1 instruction/data caches, the intra-chip switch, the
// eight-bank shared non-inclusive L2, the per-bank memory controllers and
// the protocol engines — into a chip; assembles chips plus the interconnect
// fabric into a system; and provides the experiment runner that produces
// the paper's metrics (execution-time breakdowns, L1-miss breakdowns,
// speedups, engine occupancies, open-page hit rates).
package core

import (
	"fmt"

	"piranha/internal/cache"
	"piranha/internal/cpu"
	"piranha/internal/ics"
	"piranha/internal/l1"
	"piranha/internal/l2"
	"piranha/internal/memctl"
	"piranha/internal/sim"
	"piranha/internal/stats"
	"piranha/internal/trace"
)

// ChipConfig describes one processing chip.
type ChipConfig struct {
	// CPUs on the chip (8 for P8, 4 for the multi-chip P4 study, 1 for
	// P1/INO/OOO).
	CPUs int
	// Core is the processor model (clock, issue width, window).
	Core cpu.Model
	// L1 is the per-core I/D cache geometry.
	L1 l1.Config
	// L2 is the shared second-level cache (banks, ways, latencies).
	L2 l2.Config
	// Mem is the per-bank Rambus channel model.
	Mem memctl.Config
	// TLBRefillCycles is the PAL-handled TLB-miss cost in core cycles.
	TLBRefillCycles int
}

// Chip is one assembled processing node. It implements cpu.MemSystem for
// its cores.
type Chip struct {
	Cfg   ChipConfig
	Cores []*cpu.Core
	DL1   []*l1.Cache
	IL1   []*l1.Cache
	L2    *l2.L2
	MCs   []*memctl.Controller
	SW    *ics.Switch

	tr     *trace.Tracer
	series *stats.Series
	node   uint8
}

// Attach wires a tracer and an interval sampler (either may be nil)
// through every component of the chip, stamping events with the chip
// index.
func (c *Chip) Attach(tr *trace.Tracer, series *stats.Series, node uint8) {
	c.tr, c.series, c.node = tr, series, node
	c.L2.SetTracer(tr, node)
	c.SW.SetTracer(tr, node)
	for i, mc := range c.MCs {
		mc.SetTracer(tr, node, int16(i))
	}
	for _, core := range c.Cores {
		core.Tracer, core.Series, core.Node = tr, series, node
	}
}

// NewChip builds a chip wired to the given protocol-engine side (use
// l2.LocalOnly{} for single-chip systems).
func NewChip(cfg ChipConfig, remote l2.Remote) *Chip {
	if cfg.CPUs < 1 {
		panic("core: chip needs at least one CPU")
	}
	c := &Chip{Cfg: cfg}
	c.SW = ics.New(ics.DefaultConfig(cfg.Core.Clock))

	var l1s []*l1.Cache
	for i := 0; i < cfg.CPUs; i++ {
		d := l1.New(l1.Data, i, i*2, cfg.L1)
		ins := l1.New(l1.Instruction, i, i*2+1, cfg.L1)
		c.DL1 = append(c.DL1, d)
		c.IL1 = append(c.IL1, ins)
		l1s = append(l1s, d, ins)
	}
	var mems []l2.Memory
	for b := 0; b < cfg.L2.Banks; b++ {
		mc := memctl.New(cfg.Mem)
		c.MCs = append(c.MCs, mc)
		mems = append(mems, mc)
	}
	c.L2 = l2.New(cfg.L2, cfg.Core.Clock, l1s, mems, c.SW, remote)

	for i := 0; i < cfg.CPUs; i++ {
		c.Cores = append(c.Cores, cpu.New(i, cfg.Core, c))
	}
	return c
}

// Access implements cpu.MemSystem: the full L1 -> ICS -> L2 -> memory /
// protocol-engine path for one reference.
func (c *Chip) Access(now sim.Time, cpuID int, kind cpu.AccessKind, a cache.Addr) (sim.Time, l2.Svc) {
	switch kind {
	case cpu.Fetch:
		il1 := c.IL1[cpuID]
		st, tlbHit := il1.Probe(a)
		now = c.refill(now, tlbHit)
		if st.Valid() {
			c.series.AddAccess(now, false)
			return now, l2.SvcL1
		}
		c.series.AddAccess(now, true)
		done, svc := c.L2.Access(now, il1, l2.Read, a)
		c.tr.Span(trace.L1, trace.KMissFetch, c.node, int16(il1.ID), uint64(a), now, done, uint32(svc))
		return done, svc

	case cpu.Load:
		dl1 := c.DL1[cpuID]
		st, tlbHit := dl1.Probe(a)
		now = c.refill(now, tlbHit)
		if st.Valid() {
			c.series.AddAccess(now, false)
			return now, l2.SvcL1
		}
		c.series.AddAccess(now, true)
		done, svc := c.L2.Access(now, dl1, l2.Read, a)
		c.tr.Span(trace.L1, trace.KMissLoad, c.node, int16(dl1.ID), uint64(a), now, done, uint32(svc))
		return done, svc

	case cpu.Store:
		dl1 := c.DL1[cpuID]
		st, tlbHit := dl1.Probe(a)
		now = c.refill(now, tlbHit)
		if st.CanWrite() {
			// E -> M is a silent transition; dirtiness reaches the L2
			// bank with the eventual owner write-back.
			dl1.SetState(a.Line(), cache.Modified)
			c.series.AddAccess(now, false)
			return now, l2.SvcL1
		}
		kindL2 := l2.ReadEx
		if st == cache.Shared {
			kindL2 = l2.Upgrade
		}
		c.series.AddAccess(now, true)
		done, svc := c.L2.Access(now, dl1, kindL2, a)
		c.tr.Span(trace.L1, trace.KMissStore, c.node, int16(dl1.ID), uint64(a), now, done, uint32(svc))
		// The store retires into the store buffer; the CPU waits only
		// when all entries are occupied by in-flight misses.
		free := dl1.SB.Acquire(now, done-now) - (done - now)
		if free < now {
			free = now
		}
		return free, svc

	case cpu.StoreHint:
		dl1 := c.DL1[cpuID]
		st, _ := dl1.Probe(a)
		if st.CanWrite() {
			dl1.SetState(a.Line(), cache.Modified)
			return now, l2.SvcL1
		}
		// wh64: obtain exclusivity without data, off the critical path.
		c.L2.Access(now, dl1, l2.ReadExNoData, a)
		return now, l2.SvcL1
	}
	panic(fmt.Sprintf("core: unknown access kind %d", kind))
}

// refill charges the PAL-handled TLB refill when the probe missed.
func (c *Chip) refill(now sim.Time, tlbHit bool) sim.Time {
	if tlbHit || c.Cfg.TLBRefillCycles <= 0 {
		return now
	}
	return now + c.Cfg.Core.Clock.Cycles(int64(c.Cfg.TLBRefillCycles))
}

// MemStats sums the chip's memory-controller counters.
func (c *Chip) MemStats() (reads, writes, pageHits, pageMiss uint64) {
	for _, mc := range c.MCs {
		reads += mc.Reads
		writes += mc.Writes
		pageHits += mc.PageHits
		pageMiss += mc.PageMiss
	}
	return
}

// ResetStats clears per-measurement counters after warmup.
func (c *Chip) ResetStats() {
	for _, core := range c.Cores {
		core.Breakdown = stats.Breakdown{}
		core.Instructions = 0
		core.SvcCounts = [6]uint64{}
	}
	c.L2.ResetStats()
	for _, mc := range c.MCs {
		mc.Reads, mc.Writes, mc.PageHits, mc.PageMiss = 0, 0, 0, 0
		mc.DirReads, mc.DirWrites = 0, 0
	}
}
