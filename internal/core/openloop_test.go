package core

import (
	"encoding/json"
	"testing"

	"piranha/internal/sim"
	"piranha/internal/workload"
)

// p4 returns a small multi-CPU system for open-loop tests.
func p4() SystemConfig { return SystemConfig{Chips: 1, Chip: PiranhaChip(4)} }

// openExp is a small P4/OLTP open-loop experiment at a rate a 4-CPU
// machine sustains comfortably.
func openExp(rate float64) Experiment {
	return Experiment{
		Name:      "open",
		Sys:       p4(),
		Work:      WorkloadSpec{Kind: OLTP, Arrivals: workload.ArrivalSpec{Rate: rate}},
		WarmTx:    20,
		MeasureTx: 40,
		Seed:      7,
	}
}

func TestOpenLoopRunProducesLatency(t *testing.T) {
	r := Run(openExp(3e5))
	if r.Lat == nil || r.Admission == nil {
		t.Fatal("open-loop run missing Lat/Admission blocks")
	}
	if r.Lat.Count() == 0 {
		t.Fatal("no latencies recorded")
	}
	if r.Admission.Completed != r.Lat.Count() {
		t.Fatalf("completed %d != latency samples %d", r.Admission.Completed, r.Lat.Count())
	}
	if r.Admission.Arrivals < r.Admission.Admitted {
		t.Fatalf("arrival conservation violated: %+v", r.Admission)
	}
	if r.Lat.Quantile(0.99) < r.Lat.Quantile(0.50) {
		t.Fatalf("p99 %d < p50 %d", r.Lat.Quantile(0.99), r.Lat.Quantile(0.50))
	}
	// A transaction takes > 1 µs of service on this machine.
	if r.Lat.Min() < int64(sim.Microsecond) {
		t.Fatalf("implausible min latency %d ps", r.Lat.Min())
	}
}

func TestClosedLoopHasNoLatencyBlocks(t *testing.T) {
	e := openExp(3e5)
	e.Work.Arrivals = workload.ArrivalSpec{}
	r := Run(e)
	if r.Lat != nil || r.Admission != nil {
		t.Fatal("closed-loop run grew open-loop blocks")
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["latency_percentiles"]; ok {
		t.Fatal("closed-loop JSON contains latency_percentiles")
	}
	if _, ok := doc["admission"]; ok {
		t.Fatal("closed-loop JSON contains admission")
	}
}

// TestOpenLoopByteIdentity reruns the same open-loop experiment and
// compares full JSON output — arrival streams, admission decisions, and
// the latency sketch must be bit-reproducible.
func TestOpenLoopByteIdentity(t *testing.T) {
	for _, proc := range []string{workload.ArrivalPoisson, workload.ArrivalMMPP, workload.ArrivalDiurnal} {
		e := openExp(2.5e5)
		e.Work.Arrivals.Process = proc
		e.Work.Arrivals.Capacity = 64
		a, err := json.Marshal(Run(e))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(Run(e))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s: open-loop rerun diverged:\n%s\n%s", proc, a, b)
		}
	}
}

// TestOpenLoopIntraParallelIdentity is the jintra half of the contract:
// -jintra 1 vs 4 must emit byte-identical open-loop results.
func TestOpenLoopIntraParallelIdentity(t *testing.T) {
	run := func(workers int) string {
		e := openExp(2.5e5)
		e.IntraWorkers = workers
		e.Intervals = 20 * sim.Microsecond
		b, err := json.Marshal(Run(e))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	serial := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); got != serial {
			t.Fatalf("jintra %d diverged from serial:\n%s\n%s", w, serial, got)
		}
	}
}

// TestOpenLoopZeroRateFaultPlan combines open-loop arrivals with a
// zero-rate fault plan: the plan must remain a byte-exact no-op.
func TestOpenLoopZeroRateFaultPlan(t *testing.T) {
	base := openExp(2.5e5)
	a, _ := json.Marshal(Run(base))
	withPlan := openExp(2.5e5)
	withPlan.Faults.SweepPeriod = 50 * sim.Microsecond // zero rates: disabled
	b, _ := json.Marshal(Run(withPlan))
	if string(a) != string(b) {
		t.Fatalf("zero-rate fault plan perturbed open-loop run:\n%s\n%s", a, b)
	}
}

// TestOpenLoopOverloadSheds drives the queue past saturation with a
// small capacity: shedding must kick in and tail latency must stay
// bounded by the queue bound (roughly capacity × service time).
func TestOpenLoopOverloadSheds(t *testing.T) {
	e := openExp(5e6) // far beyond a 4-CPU machine's capacity
	e.Work.Arrivals.Capacity = 16
	r := Run(e)
	if r.Admission.Shed == 0 {
		t.Fatalf("overload with capacity 16 shed nothing: %+v", r.Admission)
	}
	if r.Admission.MaxDepth > 16 {
		t.Fatalf("queue depth %d exceeded capacity 16", r.Admission.MaxDepth)
	}
	if r.Admission.Admitted+r.Admission.Shed != r.Admission.Arrivals {
		t.Fatalf("arrival conservation violated: %+v", r.Admission)
	}
}

// TestOpenLoopMultiTenantMix runs an OLTP+DSS mix on one system.
func TestOpenLoopMultiTenantMix(t *testing.T) {
	e := openExp(2.5e5)
	e.Work.Arrivals.Mix = []workload.TenantShare{
		{Kind: "oltp", Weight: 3},
		{Kind: "dss", Weight: 1},
	}
	r := Run(e)
	if r.Admission.Completed == 0 {
		t.Fatal("mixed-tenant run completed nothing")
	}
	a, _ := json.Marshal(r)
	b, _ := json.Marshal(Run(e))
	if string(a) != string(b) {
		t.Fatal("mixed-tenant rerun diverged")
	}
}

// TestOpenLoopLatencyGrowsWithLoad is the hockey-stick in miniature:
// p99 at high utilization must exceed p99 at low utilization.
func TestOpenLoopLatencyGrowsWithLoad(t *testing.T) {
	low := Run(openExp(1e5))
	high := Run(openExp(8e5))
	if high.Lat.Quantile(0.99) <= low.Lat.Quantile(0.99) {
		t.Fatalf("p99 did not grow with load: low %d, high %d",
			low.Lat.Quantile(0.99), high.Lat.Quantile(0.99))
	}
}
