package core

import (
	"fmt"
	"os"
	"sync"

	"piranha/internal/fault"
	"piranha/internal/kernel"
	"piranha/internal/l2"
	"piranha/internal/sim"
	"piranha/internal/stats"
	"piranha/internal/trace"
	"piranha/internal/workload"
)

// WorkloadKind selects the workload family.
type WorkloadKind string

// Workload kinds.
const (
	OLTP WorkloadKind = "oltp"
	DSS  WorkloadKind = "dss"
	TPCC WorkloadKind = "tpcc"
	// WEB is the §6 AltaVista-style search workload (DSS-like scans
	// with web-server thread counts).
	WEB WorkloadKind = "web"
)

// WorkloadSpec names a workload and its configuration.
type WorkloadSpec struct {
	Kind WorkloadKind
	// OLTP config for OLTP/TPCC kinds (zero value takes defaults).
	OLTP workload.OLTPConfig
	// DSS config for the DSS kind (zero value takes defaults).
	DSS workload.DSSConfig
	// Arrivals switches the run to open-loop when enabled (Rate > 0):
	// transactions arrive on a deterministic seeded stochastic process
	// and queue at the kernel's admission layer, and the Result grows
	// latency-percentile and admission blocks. The zero value is the
	// classic closed-loop mode, byte-identical to a spec that never set
	// it — the same enable-by-value pattern as fault.Plan. A non-empty
	// Arrivals.Mix overrides Kind with one server-process pool per
	// tenant.
	Arrivals workload.ArrivalSpec
}

// Experiment is one simulation run.
type Experiment struct {
	Name      string
	Sys       SystemConfig
	Work      WorkloadSpec
	WarmTx    uint64
	MeasureTx uint64
	Seed      uint64
	// Trace, when non-nil, records component events for the measured
	// phase (the tracer is Reset at the warm/measure boundary).
	Trace *trace.Tracer
	// Intervals, when positive, samples machine-wide busy/stall/miss
	// activity per window of simulated time into Result.Series.
	Intervals sim.Time
	// Faults describes the fault-injection campaign; the zero value (or
	// any all-zero-rate plan) runs on perfect hardware, byte-identical
	// to a run that never set it.
	Faults fault.Plan
	// FaultEscalate, when non-nil, handles uncorrectable memory errors
	// (ras mirroring failover). Only consulted when Faults is enabled.
	FaultEscalate func(now sim.Time) (extra sim.Time, recovered bool)
	// FaultAdopt, when non-nil, notifies the RAS mirror that it adopted n
	// directory-resident lines of a fail-stopped home (ras.Failover.
	// Takeover — same hook pattern as FaultEscalate, since neither core
	// nor fault can import ras).
	FaultAdopt func(n int)
	// IntraWorkers enables two-phase parallel execution *within* this
	// run on that many phase workers (<= 1 is the serial engine). The
	// run's output is byte-identical either way: the timing model stays
	// a single partition whose event history never changes, while
	// workload op generation and process construction move onto the
	// workers. Runs on P1-sized machines or with zero lookahead fall
	// back to serial automatically.
	IntraWorkers int
	// SLOTarget, when positive on an open-loop run, attaches a per-window
	// SLO accountant to the admission queue: completions slower than the
	// target (and final sheds) are violations, bucketed into windows of
	// Intervals width (50 µs when Intervals is unset). Result.SLO carries
	// the accounting. Zero disables it — closed-loop runs and open-loop
	// runs that never set it are byte-identical to pre-SLO builds.
	SLOTarget sim.Time
	// SLOBudget is the tolerated violation fraction (error budget) for
	// BudgetBurn; zero takes the 10% default.
	SLOBudget float64
}

// Result carries the measurements an experiment produces.
type Result struct {
	Name    string
	Chips   int
	CPUs    int
	Tx      uint64
	Elapsed sim.Time
	// TimePerTx is the headline metric (ns per transaction); speedups
	// and the paper's normalized execution times are ratios of it.
	TimePerTx float64
	// Agg sums the per-core execution-time breakdowns.
	Agg stats.Breakdown
	// Miss is the machine-wide L1-miss service breakdown (Fig. 6b).
	Miss stats.MissBreakdown
	// PageHitRate is the memory controllers' open-page hit rate.
	PageHitRate float64
	// Instructions retired during measurement.
	Instructions uint64
	// Idle is total CPU idle time.
	Idle sim.Time
	// CtxSwitches during the whole run.
	CtxSwitches uint64
	// L2 aggregates the chips' L2 controller counters.
	L2 l2.Stats
	// Svc counts core-side accesses by service class (index l2.Svc).
	Svc [6]uint64
	// Series holds the per-interval time series when the experiment ran
	// with Intervals set; nil otherwise. A pointer keeps Result values
	// comparable with == for determinism checks.
	Series *stats.Series
	// Faults holds the fault-injection counters when the experiment ran
	// with an enabled fault plan; nil otherwise (same pointer idiom as
	// Series).
	Faults *fault.Stats
	// Lat holds the arrival→completion latency sketch (queueing +
	// service, picoseconds) for open-loop runs; nil otherwise (same
	// pointer idiom as Series).
	Lat *stats.Quantile
	// Admission holds the admission-queue counters for open-loop runs;
	// nil otherwise.
	Admission *kernel.AdmissionStats
	// SLO holds the per-window SLO accounting for open-loop runs with
	// SLOTarget set; nil otherwise (same pointer idiom as Series).
	SLO *stats.SLO
	// Recovery holds the fail-stop recovery timeline (per-event MTTR and
	// the post-failure capacity fraction) for runs whose fault plan killed
	// a node; nil otherwise.
	Recovery *fault.Recovery
}

// String renders a one-line summary.
func (r Result) String() string {
	busy, hit, miss, other := r.Agg.Normalized(r.Agg.Total())
	return fmt.Sprintf("%-18s chips=%d cpus=%-2d tx=%-5d ns/tx=%-10.0f busy=%.2f l2stall=%.2f memstall=%.2f other=%.2f",
		r.Name, r.Chips, r.CPUs, r.Tx, r.TimePerTx, busy, hit, miss, other)
}

// forceTrace reports whether PIRANHA_FORCE_TRACE is set: every run then
// records into a throwaway tracer, exercising the instrumented paths
// (the CI force-traced suite).
var forceTrace = sync.OnceValue(func() bool {
	return os.Getenv("PIRANHA_FORCE_TRACE") != ""
})

// Run executes the experiment.
func Run(e Experiment) Result {
	if e.MeasureTx == 0 {
		e.MeasureTx = 200
	}
	if e.Trace == nil && forceTrace() {
		e.Trace = trace.New(0)
	}
	if e.Work.Kind == "" {
		e.Work.Kind = OLTP
	}
	// The OOO core's sustained IPC depends on the workload's ILP.
	if e.Sys.Chip.Core.IssueWidth > 1 && e.Sys.Chip.Core.IPC == 0 {
		e.Sys.Chip.Core.IPC = workload.OOOIPC(string(e.Work.Kind))
	}
	sys := NewSystem(e.Sys)
	seed := e.Seed
	if seed == 0 {
		seed = 12345
	}
	// Fault wiring precedes tracer wiring so hop spans wrap the fault
	// latency. A zero-rate plan compiles to a disabled injector that
	// attaches nothing and schedules nothing: the run is byte-identical
	// to one with no fault plan at all.
	var inj *fault.Injector
	var wd *sim.Watchdog
	if e.Faults.Enabled() {
		inj = fault.New(e.Faults, seed)
		inj.Escalate = e.FaultEscalate
		inj.Adopt = e.FaultAdopt
		sys.AttachFaults(inj)
	}
	var series *stats.Series
	if e.Intervals > 0 {
		series = stats.NewSeries(e.Intervals)
	}
	if e.Trace != nil || series != nil {
		sys.Attach(e.Trace, series)
	}
	if inj != nil {
		inj.AttachSeries(series)
		if sys.Fabric != nil {
			sys.Fabric.ScheduleRecovery(sys.Engine)
		}
		// Watchdog: an injected fault must never hang a run. The sweep
		// heals lost transactions; if the machine nonetheless stops
		// retiring instructions, fail loudly with a diagnostic. Progress
		// is retired instructions plus committed transactions — not
		// transactions alone, which arrive in coarse round-robin waves
		// that can legitimately outlast several watchdog intervals.
		wd = sim.NewWatchdog(sys.Engine, 8*inj.Plan().SweepPeriod, 4,
			func() uint64 {
				n := sys.Kern.Tx
				for _, c := range sys.Cores {
					n += c.Instructions
				}
				return n
			}, nil)
		// Satellite diagnostic: a wedged fault campaign's panic message
		// includes the injected/recovered/pending-reclaim counters.
		wd.SetDiagnostic(inj.Diagnostic)
	}
	lay := workload.DefaultLayout()
	ncpu := sys.TotalCPUs()
	rng := sim.NewRNG(seed)

	// Tenant pools: closed-loop runs have exactly one (the experiment's
	// own kind); an open-loop mix hosts one server-process pool per
	// tenant. The pool table is what makes newStream a pure function of
	// the global process id — the jintra byte-identity contract.
	arrivalsOn := e.Work.Arrivals.Enabled()
	if arrivalsOn {
		if err := e.Work.Arrivals.Validate(); err != nil {
			panic("core: " + err.Error())
		}
	}
	kinds := []WorkloadKind{e.Work.Kind}
	if arrivalsOn && len(e.Work.Arrivals.Mix) > 0 {
		kinds = kinds[:0]
		for _, t := range e.Work.Arrivals.Mix {
			kinds = append(kinds, WorkloadKind(t.Kind))
		}
	}
	pools := make([]tenantPool, len(kinds))
	procsPerCPU := 0
	for t, k := range kinds {
		perCPU, stream := buildWorkload(k, e.Work, lay, ncpu)
		pools[t] = tenantPool{perCPU: perCPU, base: procsPerCPU, stream: stream}
		procsPerCPU += perCPU
	}
	newStream := func(id int) kernel.Stream {
		t, local := locateProc(pools, procsPerCPU, id)
		return pools[t].stream(local)
	}

	// Open-loop wiring: the admission queue, and the arrival driver's
	// dedicated RNG stream — split *before* the process seeds are drawn,
	// and only on open-loop runs, so closed-loop runs consume rng exactly
	// as before.
	spawn := func(c, id int, s kernel.Stream, procSeed uint64) {
		sys.Kern.Spawn(c, s, procSeed)
	}
	var adm *kernel.Admission
	if arrivalsOn {
		adm = kernel.NewAdmission(len(pools), e.Work.Arrivals.Capacity)
		adm.Retry = kernel.RetryPolicy{
			Budget:  e.Work.Arrivals.RetryBudget,
			Backoff: e.Work.Arrivals.RetryBackoff,
			Factor:  e.Work.Arrivals.RetryFactor,
		}
		sys.Kern.SetAdmission(adm)
		adm.AttachSeries(series)
		if e.SLOTarget > 0 {
			adm.AttachSLO(stats.NewSLO(e.SLOTarget, e.Intervals, e.SLOBudget))
		}
		gen := workload.NewArrivalGen(e.Work.Arrivals, rng.Split(0x41525256)) // "ARRV"
		startArrivals(sys.Engine, sys.Kern, gen)
		spawn = func(c, id int, s kernel.Stream, procSeed uint64) {
			t, _ := locateProc(pools, procsPerCPU, id)
			sys.Kern.SpawnOpen(c, s, procSeed, t)
		}
	}

	// Intra-run parallelism: two-phase partitioned execution moves
	// process construction and op generation onto phase workers while the
	// timing model keeps its exact serial event history. P1-sized
	// machines and zero-lookahead systems fall back to the serial engine.
	runTx := sys.Kern.RunTx
	if w := e.IntraWorkers; w > 1 && ncpu >= 2 && sys.Lookahead() > 0 {
		par := newIntraRun(sys, w, procsPerCPU, newStream, spawn, rng)
		defer par.Close()
		if wd != nil {
			wd.SetDiagnostic(func() string {
				return par.Diagnostic() + "; " + inj.Diagnostic()
			})
		}
		runTx = par.RunTx
	} else {
		id := 0
		for c := 0; c < ncpu; c++ {
			for p := 0; p < procsPerCPU; p++ {
				spawn(c, id, newStream(id), rng.Uint64())
				id++
			}
		}
	}

	// Warm up the caches and steady-state the scheduler, then reset all
	// counters and measure (the paper: "500 transactions after a
	// warm-up period").
	if e.WarmTx > 0 {
		runTx(e.WarmTx)
	}
	sys.ResetStats()
	// The trace and series cover exactly the measured phase; Reset
	// reuses their storage rather than reallocating (warm-phase events
	// are discarded, the count set keeps its counters zeroed). The
	// injector's counters (including the link channels') reset too, so
	// warm-up corruption doesn't pollute measured statistics.
	e.Trace.Reset()
	series.Reset(sys.Engine.Now())
	inj.ResetStats()
	if adm != nil {
		adm.ResetStats(sys.Engine.Now())
	}
	// Fail-stop node deaths are armed at the warm/measure boundary:
	// NodeFailure.At is relative to the start of the measured window, the
	// only anchor a plan author can predict.
	if inj != nil && len(inj.Plan().FailStop) > 0 {
		scheduleFailStops(sys, inj, ncpu, e.Trace, wd)
	}
	elapsed := runTx(e.WarmTx + e.MeasureTx)
	if inj != nil && sys.Kern.Tx < e.WarmTx+e.MeasureTx {
		// RunTx returned with the queue drained short of the target: the
		// fault campaign wedged the machine in a way even the recovery
		// sweep + watchdog ticks couldn't surface (they keep the queue
		// alive, so this indicates both were stopped). Fail loudly.
		panic(fmt.Sprintf("core: fault campaign wedged the run at %d/%d transactions",
			sys.Kern.Tx, e.WarmTx+e.MeasureTx))
	}

	r := Result{
		Name:        e.Name,
		Chips:       len(sys.Chips),
		CPUs:        ncpu,
		Tx:          e.MeasureTx,
		Elapsed:     elapsed,
		TimePerTx:   float64(elapsed) / float64(e.MeasureTx) / float64(sim.Nanosecond),
		CtxSwitches: sys.Kern.Switches,
		Series:      series,
	}
	if inj != nil {
		fs := inj.Collect()
		r.Faults = &fs
		if rec := inj.Recovery(); len(rec.Events) > 0 {
			r.Recovery = &rec
		}
	}
	if adm != nil {
		adm.Finalize(sys.Engine.Now())
		st := adm.Stats
		r.Admission = &st
		lat := *adm.Lat
		r.Lat = &lat
		r.SLO = adm.SLO()
	}
	var pageHits, pageTotal uint64
	for _, chip := range sys.Chips {
		for _, core := range chip.Cores {
			r.Agg.Add(core.Breakdown)
			r.Instructions += core.Instructions
			for i, n := range core.SvcCounts {
				r.Svc[i] += n
			}
		}
		ls := chip.L2.Stats
		r.L2.Hits += ls.Hits
		r.L2.Fwds += ls.Fwds
		r.L2.LocalMem += ls.LocalMem
		r.L2.Remote += ls.Remote
		r.L2.RemoteDirty += ls.RemoteDirty
		r.L2.Upgrades += ls.Upgrades
		r.L2.WritebacksToL2 += ls.WritebacksToL2
		r.L2.WritebacksToMem += ls.WritebacksToMem
		r.L2.Invals += ls.Invals
		mb := chip.L2.MissBreakdown()
		r.Miss.L2Hit += mb.L2Hit
		r.Miss.L2Fwd += mb.L2Fwd
		r.Miss.L2Miss += mb.L2Miss
		_, _, ph, pm := chip.MemStats()
		pageHits += ph
		pageTotal += ph + pm
	}
	if pageTotal > 0 {
		r.PageHitRate = float64(pageHits) / float64(pageTotal)
	}
	for _, t := range sys.Kern.IdleTime {
		r.Idle += t
	}
	if err := sys.CheckInvariants(); err != nil {
		panic("core: post-run invariant violation: " + err.Error())
	}
	return r
}

// DefaultKernel re-exports the kernel defaults for cmd-layer tuning.
func DefaultKernel() kernel.Config { return kernel.DefaultConfig() }
