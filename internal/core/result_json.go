package core

import (
	"encoding/json"

	"piranha/internal/stats"
)

// ResultSchemaVersion is the version stamped into every Result JSON
// object as "schema_version". Bump it on any breaking change to the
// wire shape (renamed/removed fields, changed units). The schema is
// documented in DESIGN.md §7, including the v1→v2 migration notes.
//
// v2 (open-loop tail latency): adds the "latency_percentiles" and
// "admission" blocks for open-loop runs. Both are omitted on
// closed-loop runs, so every v1 document is also a structurally valid
// v2 document — readers should accept either version and treat the
// absent blocks as "closed-loop run".
//
// v3 (serving under failure): adds the "slo" block (per-window SLO
// accounting for open-loop runs with a latency target) and the
// "recovery" block (fail-stop MTTR timeline and degraded capacity
// fraction), and extends "admission" with "retried"/"retry_exhausted"
// counters. All additions are omitted when the features are off, so
// every v2 document is also a structurally valid v3 document.
const ResultSchemaVersion = 3

// resultJSON is the versioned wire form of Result. All simulated times
// are picoseconds (the engine unit) except time_per_tx_ns, which is the
// headline nanoseconds-per-transaction metric as printed by the CLI.
type resultJSON struct {
	SchemaVersion int     `json:"schema_version"`
	Name          string  `json:"name"`
	Chips         int     `json:"chips"`
	CPUs          int     `json:"cpus"`
	Tx            uint64  `json:"tx"`
	ElapsedPs     int64   `json:"elapsed_ps"`
	TimePerTxNs   float64 `json:"time_per_tx_ns"`

	Breakdown breakdownJSON `json:"breakdown"`
	Miss      missJSON      `json:"l1_miss_breakdown"`

	PageHitRate  float64 `json:"page_hit_rate"`
	Instructions uint64  `json:"instructions"`
	IdlePs       int64   `json:"idle_ps"`
	CtxSwitches  uint64  `json:"ctx_switches"`

	L2  l2JSON  `json:"l2"`
	Svc svcJSON `json:"svc"`

	Series    *stats.Series  `json:"series,omitempty"`
	Faults    *faultJSON     `json:"faults,omitempty"`
	Lat       *latencyJSON   `json:"latency_percentiles,omitempty"`
	Admission *admissionJSON `json:"admission,omitempty"`
	SLO       *sloJSON       `json:"slo,omitempty"`
	Recovery  *recoveryJSON  `json:"recovery,omitempty"`
}

// sloJSON is the v3 SLO block for open-loop runs with a latency target:
// run totals plus the derived serving metrics, and the per-window counts
// that localize when a fault burned the error budget.
type sloJSON struct {
	TargetPs      int64             `json:"target_ps"`
	WindowPs      int64             `json:"window_ps"`
	Budget        float64           `json:"budget"`
	Completed     uint64            `json:"completed"`
	Violations    uint64            `json:"violations"`
	Shed          uint64            `json:"shed"`
	ViolationRate float64           `json:"violation_rate"`
	BudgetBurn    float64           `json:"budget_burn"`
	GoodputTxS    float64           `json:"goodput_tx_s"`
	Windows       []stats.SLOWindow `json:"windows,omitempty"`
}

// recoveryJSON is the v3 fail-stop recovery block: one event per dead
// node with the onset→detect→restored timeline, plus run totals.
type recoveryJSON struct {
	Events       []recoveryEventJSON `json:"events"`
	MTTRTotalPs  int64               `json:"mttr_total_ps"`
	CapacityFrac float64             `json:"capacity_frac"`
}

// recoveryEventJSON is one node's fail-stop recovery record.
type recoveryEventJSON struct {
	Node           int   `json:"node"`
	OnsetPs        int64 `json:"onset_ps"`
	DetectPs       int64 `json:"detect_ps"`
	RestoredPs     int64 `json:"restored_ps"`
	MTTRPs         int64 `json:"mttr_ps"`
	Migrated       int   `json:"migrated"`
	SharersDropped int   `json:"sharers_dropped"`
	OwnerReclaims  int   `json:"owner_reclaims"`
	HomesAdopted   int   `json:"homes_adopted"`
}

// latencyJSON is the v2 tail-latency block for open-loop runs: the
// arrival→completion (queueing + service) latency distribution of the
// measured window, in picoseconds. Omitted on closed-loop runs.
type latencyJSON struct {
	Count  uint64  `json:"count"`
	MeanPs float64 `json:"mean_ps"`
	MinPs  int64   `json:"min_ps"`
	MaxPs  int64   `json:"max_ps"`
	P50Ps  int64   `json:"p50_ps"`
	P90Ps  int64   `json:"p90_ps"`
	P99Ps  int64   `json:"p99_ps"`
	P999Ps int64   `json:"p999_ps"`
}

// admissionJSON is the v2 admission-queue block for open-loop runs.
// MeanDepth is the time-weighted average queue depth over the measured
// window. Omitted on closed-loop runs.
type admissionJSON struct {
	Arrivals  uint64  `json:"arrivals"`
	Admitted  uint64  `json:"admitted"`
	Shed      uint64  `json:"shed"`
	Completed uint64  `json:"completed"`
	MaxDepth  int     `json:"max_depth"`
	MeanDepth float64 `json:"mean_depth"`
	// v3 retry-policy counters; omitted when the policy is disabled so
	// v2 documents round-trip unchanged.
	Retried        uint64 `json:"retried,omitempty"`
	RetryExhausted uint64 `json:"retry_exhausted,omitempty"`
}

// faultJSON carries the fault-injection counter block for runs with an
// enabled fault plan. Omitted entirely on fault-free runs, keeping their
// wire form unchanged.
type faultJSON struct {
	Injected          uint64 `json:"injected"`
	LinkWordErrors    uint64 `json:"link_word_errors"`
	Retransmits       uint64 `json:"retransmits"`
	MessagesLost      uint64 `json:"messages_lost"`
	Recovered         uint64 `json:"recovered"`
	SweepReclaims     uint64 `json:"sweep_reclaims"`
	MemFlips          uint64 `json:"mem_flips"`
	MemCorrected      uint64 `json:"mem_corrected"`
	MemFailovers      uint64 `json:"mem_failovers"`
	MemUnrecoverable  uint64 `json:"mem_unrecoverable"`
	Stalls            uint64 `json:"stalls"`
	RecoveryLatencyPs int64  `json:"recovery_latency_ps"`
}

// breakdownJSON carries the Figure-5 execution-time split, both as raw
// simulated time and as fractions of the total.
type breakdownJSON struct {
	BusyPs     int64   `json:"busy_ps"`
	L2HitPs    int64   `json:"l2hit_stall_ps"`
	L2MissPs   int64   `json:"l2miss_stall_ps"`
	OtherPs    int64   `json:"other_ps"`
	BusyFrac   float64 `json:"busy_frac"`
	L2HitFrac  float64 `json:"l2hit_frac"`
	L2MissFrac float64 `json:"l2miss_frac"`
	OtherFrac  float64 `json:"other_frac"`
}

// missJSON is the Figure-6b L1-miss service split.
type missJSON struct {
	L2Hit  uint64 `json:"l2_hit"`
	L2Fwd  uint64 `json:"l2_fwd"`
	L2Miss uint64 `json:"l2_miss"`
}

// l2JSON flattens the L2 controller counters.
type l2JSON struct {
	Hits            uint64 `json:"hits"`
	Fwds            uint64 `json:"fwds"`
	LocalMem        uint64 `json:"local_mem"`
	Remote          uint64 `json:"remote"`
	RemoteDirty     uint64 `json:"remote_dirty"`
	Upgrades        uint64 `json:"upgrades"`
	WritebacksToL2  uint64 `json:"writebacks_to_l2"`
	WritebacksToMem uint64 `json:"writebacks_to_mem"`
	Invals          uint64 `json:"invals"`
}

// svcJSON names the per-service-class access counts (index l2.Svc).
type svcJSON struct {
	L1          uint64 `json:"l1"`
	L2Hit       uint64 `json:"l2_hit"`
	L2Fwd       uint64 `json:"l2_fwd"`
	LocalMem    uint64 `json:"local_mem"`
	Remote      uint64 `json:"remote"`
	RemoteDirty uint64 `json:"remote_dirty"`
}

// MarshalJSON renders the Result in its versioned wire form
// (schema_version 3; see DESIGN.md §7 for the field reference).
func (r Result) MarshalJSON() ([]byte, error) {
	busy, hit, miss, other := r.Agg.Normalized(r.Agg.Total())
	var lj *latencyJSON
	if r.Lat != nil {
		lj = &latencyJSON{
			Count:  r.Lat.Count(),
			MeanPs: r.Lat.Mean(),
			MinPs:  r.Lat.Min(),
			MaxPs:  r.Lat.Max(),
			P50Ps:  r.Lat.Quantile(0.50),
			P90Ps:  r.Lat.Quantile(0.90),
			P99Ps:  r.Lat.Quantile(0.99),
			P999Ps: r.Lat.Quantile(0.999),
		}
	}
	var aj *admissionJSON
	if r.Admission != nil {
		aj = &admissionJSON{
			Arrivals:  r.Admission.Arrivals,
			Admitted:  r.Admission.Admitted,
			Shed:      r.Admission.Shed,
			Completed: r.Admission.Completed,
			MaxDepth:  r.Admission.MaxDepth,
		}
		if r.Elapsed > 0 {
			aj.MeanDepth = float64(r.Admission.DepthIntegral) / float64(r.Elapsed)
		}
		aj.Retried = r.Admission.Retried
		aj.RetryExhausted = r.Admission.RetryExhausted
	}
	var sj *sloJSON
	if r.SLO != nil {
		sj = &sloJSON{
			TargetPs:      int64(r.SLO.Target),
			WindowPs:      int64(r.SLO.Window),
			Budget:        r.SLO.Budget,
			Completed:     r.SLO.Completed,
			Violations:    r.SLO.Violations,
			Shed:          r.SLO.Shed,
			ViolationRate: r.SLO.ViolationRate(),
			BudgetBurn:    r.SLO.BudgetBurn(),
			GoodputTxS:    r.SLO.Goodput(r.Elapsed),
			Windows:       r.SLO.Windows,
		}
	}
	var rj *recoveryJSON
	if r.Recovery != nil {
		rj = &recoveryJSON{
			Events:       make([]recoveryEventJSON, 0, len(r.Recovery.Events)),
			MTTRTotalPs:  int64(r.Recovery.MTTRTotal),
			CapacityFrac: r.Recovery.CapacityFrac,
		}
		for _, ev := range r.Recovery.Events {
			rj.Events = append(rj.Events, recoveryEventJSON{
				Node:           ev.Node,
				OnsetPs:        int64(ev.Onset),
				DetectPs:       int64(ev.Detect),
				RestoredPs:     int64(ev.Restored),
				MTTRPs:         int64(ev.MTTR()),
				Migrated:       ev.Migrated,
				SharersDropped: ev.SharersDropped,
				OwnerReclaims:  ev.OwnerReclaims,
				HomesAdopted:   ev.HomesAdopted,
			})
		}
	}
	var fj *faultJSON
	if r.Faults != nil {
		fj = &faultJSON{
			Injected:          r.Faults.Injected,
			LinkWordErrors:    r.Faults.LinkWordErrors,
			Retransmits:       r.Faults.Retransmits,
			MessagesLost:      r.Faults.MessagesLost,
			Recovered:         r.Faults.Recovered,
			SweepReclaims:     r.Faults.SweepReclaims,
			MemFlips:          r.Faults.MemFlips,
			MemCorrected:      r.Faults.MemCorrected,
			MemFailovers:      r.Faults.MemFailovers,
			MemUnrecoverable:  r.Faults.MemUnrecoverable,
			Stalls:            r.Faults.Stalls,
			RecoveryLatencyPs: int64(r.Faults.RecoveryLatency),
		}
	}
	return json.Marshal(resultJSON{
		SchemaVersion: ResultSchemaVersion,
		Name:          r.Name,
		Chips:         r.Chips,
		CPUs:          r.CPUs,
		Tx:            r.Tx,
		ElapsedPs:     int64(r.Elapsed),
		TimePerTxNs:   r.TimePerTx,
		Breakdown: breakdownJSON{
			BusyPs:     int64(r.Agg.CPUBusy),
			L2HitPs:    int64(r.Agg.L2HitStall),
			L2MissPs:   int64(r.Agg.L2Miss),
			OtherPs:    int64(r.Agg.Other),
			BusyFrac:   busy,
			L2HitFrac:  hit,
			L2MissFrac: miss,
			OtherFrac:  other,
		},
		Miss: missJSON{
			L2Hit:  r.Miss.L2Hit,
			L2Fwd:  r.Miss.L2Fwd,
			L2Miss: r.Miss.L2Miss,
		},
		PageHitRate:  r.PageHitRate,
		Instructions: r.Instructions,
		IdlePs:       int64(r.Idle),
		CtxSwitches:  r.CtxSwitches,
		L2: l2JSON{
			Hits:            r.L2.Hits,
			Fwds:            r.L2.Fwds,
			LocalMem:        r.L2.LocalMem,
			Remote:          r.L2.Remote,
			RemoteDirty:     r.L2.RemoteDirty,
			Upgrades:        r.L2.Upgrades,
			WritebacksToL2:  r.L2.WritebacksToL2,
			WritebacksToMem: r.L2.WritebacksToMem,
			Invals:          r.L2.Invals,
		},
		Svc: svcJSON{
			L1:          r.Svc[0],
			L2Hit:       r.Svc[1],
			L2Fwd:       r.Svc[2],
			LocalMem:    r.Svc[3],
			Remote:      r.Svc[4],
			RemoteDirty: r.Svc[5],
		},
		Series:    r.Series,
		Faults:    fj,
		Lat:       lj,
		Admission: aj,
		SLO:       sj,
		Recovery:  rj,
	})
}
