package core

import (
	"piranha/internal/kernel"
	"piranha/internal/sim"
	"piranha/internal/workload"
)

// Open-loop plumbing: tenant process pools and the arrival driver.
//
// A run's server processes are addressed by a single global id — the
// order Spawn/SpawnOpen is called — and everything about a process must
// be a pure function of that id (the jintra contract: phase workers
// construct processes concurrently and pre-generate their op streams).
// With multiple tenants the id space is laid out CPU-major: CPU c owns
// ids [c·P, (c+1)·P) where P is the per-CPU total, and within a CPU each
// tenant owns a fixed band of width perCPU in mix order. A process never
// runs another tenant's transactions, so its op stream stays pure.

// tenantPool is one tenant's slice of the process id space.
type tenantPool struct {
	perCPU int // processes per CPU for this tenant
	base   int // first in-CPU offset of this tenant's band
	stream func(local int) kernel.Stream
}

// locateProc resolves a global process id to (tenant, tenant-local id).
// The local id is what the tenant's workload builder partitions on
// (PGA slices, scan ranges), exactly as in a single-tenant run.
func locateProc(pools []tenantPool, perCPU, id int) (tenant, local int) {
	c, off := id/perCPU, id%perCPU
	for t := range pools {
		p := &pools[t]
		if off < p.base+p.perCPU {
			return t, c*p.perCPU + (off - p.base)
		}
	}
	panic("core: process id out of tenant range")
}

// buildWorkload constructs one tenant's workload over ncpu CPUs and
// returns its processes-per-CPU count and a pure stream factory over
// tenant-local ids. Closed-loop runs call it once with the experiment's
// kind; an open-loop mix calls it per tenant.
func buildWorkload(kind WorkloadKind, spec WorkloadSpec, lay workload.Layout, ncpu int) (int, func(local int) kernel.Stream) {
	switch kind {
	case DSS, WEB:
		cfg := spec.DSS
		if cfg.InstrPerLine == 0 {
			if kind == WEB {
				cfg = workload.WebLike()
			} else {
				cfg = workload.DefaultDSS()
			}
		}
		w := workload.NewDSS(cfg, lay, ncpu*cfg.ProcsPerCPU)
		return cfg.ProcsPerCPU, func(id int) kernel.Stream { return w.Process(id) }
	case TPCC:
		cfg := spec.OLTP
		if cfg.InstrPerTx == 0 {
			cfg = workload.TPCCLike()
		}
		w := workload.NewOLTP(cfg, lay, ncpu*cfg.ProcsPerCPU)
		return cfg.ProcsPerCPU, func(id int) kernel.Stream { return w.Process(id) }
	case OLTP:
		fallthrough
	default:
		cfg := spec.OLTP
		if cfg.InstrPerTx == 0 {
			cfg = workload.DefaultOLTP()
		}
		w := workload.NewOLTP(cfg, lay, ncpu*cfg.ProcsPerCPU)
		return cfg.ProcsPerCPU, func(id int) kernel.Stream { return w.Process(id) }
	}
}

// startArrivals installs the arrival driver: a self-rescheduling chain
// of engine events, one per arrival, always exactly one in flight. The
// chain lives in the timing-model partition (it reads only the
// generator's dedicated split RNG), so its event history — and therefore
// every admission decision — is bit-identical between the serial engine
// and any -jintra worker count. The chain never ends; RunTx's target
// condition is what stops the run.
func startArrivals(eng *sim.Engine, k *kernel.Kernel, gen *workload.ArrivalGen) {
	var schedule func()
	schedule = func() {
		at, tenant := gen.Next()
		eng.Schedule(at, func() {
			k.Arrive(tenant)
			schedule()
		})
	}
	schedule()
}
