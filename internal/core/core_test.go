package core

import (
	"testing"

	"piranha/internal/noc"
	"piranha/internal/sim"
)

// quickOLTP runs a short OLTP measurement on the given chip config.
func quickOLTP(t testing.TB, chips int, chip ChipConfig, tx uint64) Result {
	t.Helper()
	return Run(Experiment{
		Name:      "test",
		Sys:       SystemConfig{Chips: chips, Chip: chip},
		Work:      WorkloadSpec{Kind: OLTP},
		WarmTx:    tx / 2,
		MeasureTx: tx,
	})
}

func TestP1RunsAndAccounts(t *testing.T) {
	r := quickOLTP(t, 1, PiranhaChip(1), 40)
	if r.Tx != 40 || r.Elapsed <= 0 {
		t.Fatalf("result %+v", r)
	}
	if r.Agg.CPUBusy <= 0 || r.Agg.L2HitStall <= 0 || r.Agg.L2Miss <= 0 {
		t.Fatalf("breakdown has empty buckets: %+v", r.Agg)
	}
	if r.Miss.Total() == 0 {
		t.Fatal("no L1 misses recorded")
	}
	if r.Instructions == 0 {
		t.Fatal("no instructions")
	}
	if r.PageHitRate < 0 || r.PageHitRate > 1 {
		t.Fatalf("page hit rate out of range: %v", r.PageHitRate)
	}
}

func TestP8FasterThanP1(t *testing.T) {
	p1 := quickOLTP(t, 1, PiranhaChip(1), 60)
	p8 := quickOLTP(t, 1, PiranhaChip(8), 60)
	speedup := p1.TimePerTx / p8.TimePerTx
	if speedup < 3 {
		t.Fatalf("P8 speedup over P1 = %.2f, want substantial", speedup)
	}
	t.Logf("P8/P1 OLTP speedup: %.2f", speedup)
}

func TestNonInclusionVisibleInMissBreakdown(t *testing.T) {
	p8 := quickOLTP(t, 1, PiranhaChip(8), 60)
	hit, fwd, miss := p8.Miss.Fractions()
	if fwd <= 0 {
		t.Fatal("no L2 forwards at 8 CPUs; sharing model broken")
	}
	t.Logf("P8 miss breakdown: hit=%.2f fwd=%.2f mem=%.2f", hit, fwd, miss)
	p1 := quickOLTP(t, 1, PiranhaChip(1), 60)
	hit1, _, _ := p1.Miss.Fractions()
	if hit1 <= hit {
		t.Fatalf("L2 hit fraction should fall with more CPUs: P1=%.2f P8=%.2f", hit1, hit)
	}
}

func TestOOOBeatsINO(t *testing.T) {
	ooo := quickOLTP(t, 1, OOOChip(), 40)
	ino := quickOLTP(t, 1, INOChip(), 40)
	if ooo.TimePerTx >= ino.TimePerTx {
		t.Fatalf("OOO (%f) must beat INO (%f)", ooo.TimePerTx, ino.TimePerTx)
	}
}

func TestMultiChipRuns(t *testing.T) {
	r := quickOLTP(t, 2, PiranhaChip(2), 40)
	if r.Chips != 2 || r.CPUs != 4 {
		t.Fatalf("topology %+v", r)
	}
	if r.Elapsed <= 0 {
		t.Fatal("no progress")
	}
}

func TestDSSNearLinearSpeedup(t *testing.T) {
	run := func(cpus int) Result {
		return Run(Experiment{
			Sys:       SystemConfig{Chips: 1, Chip: PiranhaChip(cpus)},
			Work:      WorkloadSpec{Kind: DSS},
			WarmTx:    20,
			MeasureTx: 80,
		})
	}
	p1 := run(1)
	p8 := run(8)
	speedup := p1.TimePerTx / p8.TimePerTx
	if speedup < 5.5 {
		t.Fatalf("DSS speedup %f, want near-linear", speedup)
	}
	t.Logf("DSS P8/P1 speedup: %.2f", speedup)
}

func TestDeterminism(t *testing.T) {
	a := quickOLTP(t, 1, PiranhaChip(2), 30)
	b := quickOLTP(t, 1, PiranhaChip(2), 30)
	if a.Elapsed != b.Elapsed || a.Instructions != b.Instructions {
		t.Fatalf("runs diverged: %v/%v vs %v/%v", a.Elapsed, a.Instructions, b.Elapsed, b.Instructions)
	}
}

func TestPresetsMatchTable1(t *testing.T) {
	p8 := PiranhaChip(8)
	if p8.Core.Clock.Freq() != 500 || p8.Core.IssueWidth != 1 {
		t.Fatal("P8 core wrong")
	}
	if p8.L2.SizeBytes != 1<<20 || p8.L2.Ways != 8 || p8.L2.HitLatency != 16*sim.Nanosecond {
		t.Fatal("P8 L2 wrong")
	}
	ooo := OOOChip()
	if ooo.Core.Clock.Freq() != 1000 || ooo.Core.IssueWidth != 4 || ooo.Core.WindowSize != 64 {
		t.Fatal("OOO core wrong")
	}
	if ooo.L2.SizeBytes != 1536<<10 || ooo.L2.Ways != 6 || ooo.L2.HitLatency != 12*sim.Nanosecond {
		t.Fatal("OOO L2 wrong")
	}
	pf := FullCustomChip(8)
	if pf.Core.Clock.Freq() != 1250 || pf.L2.HitLatency != 12*sim.Nanosecond || pf.L2.FwdLatency != 16*sim.Nanosecond {
		t.Fatal("P8F wrong")
	}
	pess := PessimisticPiranhaChip(8)
	if pess.Core.Clock.Freq() != 400 || pess.L1.SizeBytes != 32<<10 || pess.L1.Ways != 1 {
		t.Fatal("pessimistic wrong")
	}
}

func TestMultiChipOnTorusTopology(t *testing.T) {
	// Four chips on a 2x2 torus via the NoC-calibrated fabric network:
	// the run must complete, scale, and keep coherence invariants.
	flat := Run(Experiment{
		Sys:       SystemConfig{Chips: 4, Chip: PiranhaChip(2)},
		Work:      WorkloadSpec{Kind: OLTP},
		WarmTx:    20,
		MeasureTx: 40,
	})
	torus := Run(Experiment{
		Sys: SystemConfig{
			Chips:    4,
			Chip:     PiranhaChip(2),
			Topology: noc.Torus{W: 2, H: 2},
		},
		Work:      WorkloadSpec{Kind: OLTP},
		WarmTx:    20,
		MeasureTx: 40,
	})
	if torus.Elapsed <= 0 || flat.Elapsed <= 0 {
		t.Fatal("no progress")
	}
	// Both transports must land in the same ballpark (the torus pays
	// real per-hop distances; the flat model a calibrated constant).
	ratio := torus.TimePerTx / flat.TimePerTx
	if ratio < 0.7 || ratio > 1.5 {
		t.Fatalf("topology-backed run diverged from flat model: ratio %v", ratio)
	}
}

func TestWebWorkloadKind(t *testing.T) {
	r := Run(Experiment{
		Sys:       SystemConfig{Chips: 1, Chip: PiranhaChip(2)},
		Work:      WorkloadSpec{Kind: WEB},
		WarmTx:    10,
		MeasureTx: 30,
	})
	if r.Tx != 30 || r.Agg.CPUBusy == 0 {
		t.Fatalf("web run: %+v", r)
	}
}

func TestChipStoreHintNonBlocking(t *testing.T) {
	chip := NewChip(PiranhaChip(1), localOnly())
	// wh64 on a cold line returns immediately (exclusivity arrives in
	// the background) but installs the line writable.
	done, svc := chip.Access(0, 0, cpuStoreHint, 0x4000)
	if done != 0 {
		t.Fatalf("wh64 blocked: %d", done)
	}
	_ = svc
	// A store right after hits the (now M) line.
	d2, svc2 := chip.Access(1000, 0, cpuStore, 0x4000)
	if svc2 != svcL1() {
		t.Fatalf("store after wh64 should hit: %v", svc2)
	}
	if d2 != 1000 {
		t.Fatalf("store after wh64 cost %d", d2-1000)
	}
}

func TestChipStoreBufferBackpressure(t *testing.T) {
	chip := NewChip(PiranhaChip(1), localOnly())
	// Fire more store misses than the 8-entry store buffer holds at
	// one instant: later stores must see back-pressure.
	var maxWait sim.Time
	for i := 0; i < 16; i++ {
		done, _ := chip.Access(0, 0, cpuStore, cacheAddr(uint64(i)<<20))
		if done > maxWait {
			maxWait = done
		}
	}
	if maxWait == 0 {
		t.Fatal("16 simultaneous store misses never back-pressured the CPU")
	}
}
