package core

import (
	"piranha/internal/cache"
	"piranha/internal/cpu"
	"piranha/internal/l2"
)

// Small aliases keeping the chip tests readable without importing half
// the tree inline.
func localOnly() l2.Remote          { return l2.LocalOnly{} }
func svcL1() l2.Svc                 { return l2.SvcL1 }
func cacheAddr(v uint64) cache.Addr { return cache.Addr(v) }

const (
	cpuStore     = cpu.Store
	cpuStoreHint = cpu.StoreHint
	cpuLoad      = cpu.Load
)
