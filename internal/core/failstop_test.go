package core

import (
	"encoding/json"
	"testing"

	"piranha/internal/fault"
	"piranha/internal/sim"
	"piranha/internal/workload"
)

// failStopExp is a 2-chip open-loop experiment that kills node 1 early
// in the measured window, with retry and SLO accounting on.
func failStopExp() Experiment {
	return Experiment{
		Name: "failstop",
		Sys:  SystemConfig{Chips: 2, Chip: PiranhaChip(2)},
		Work: WorkloadSpec{Kind: OLTP, Arrivals: workload.ArrivalSpec{
			Rate: 2.5e5, Capacity: 64,
			RetryBudget: 3, RetryBackoff: 2 * sim.Microsecond,
		}},
		WarmTx:    20,
		MeasureTx: 60,
		Seed:      7,
		Intervals: 20 * sim.Microsecond,
		SLOTarget: 200 * sim.Microsecond,
		Faults: fault.Plan{
			FailStop: []fault.NodeFailure{{Node: 1, At: 10 * sim.Microsecond}},
		},
	}
}

func TestFailStopRecoversAndDegrades(t *testing.T) {
	r := Run(failStopExp())
	if r.Recovery == nil || len(r.Recovery.Events) != 1 {
		t.Fatalf("expected one recovery event, got %+v", r.Recovery)
	}
	ev := r.Recovery.Events[0]
	if ev.Node != 1 {
		t.Fatalf("wrong node recovered: %+v", ev)
	}
	if ev.Detect <= ev.Onset || ev.Restored < ev.Detect || ev.MTTR() <= 0 {
		t.Fatalf("recovery timeline out of order: %+v", ev)
	}
	if r.Recovery.CapacityFrac != 0.5 {
		t.Fatalf("capacity frac = %v, want 0.5 (2 of 4 CPUs dead)", r.Recovery.CapacityFrac)
	}
	if ev.Migrated == 0 {
		t.Fatalf("no processes migrated off the dead node: %+v", ev)
	}
	if r.Faults == nil || r.Faults.NodesFailed != 1 {
		t.Fatalf("fault counters missed the node death: %+v", r.Faults)
	}
	if r.SLO == nil || r.SLO.Completed == 0 {
		t.Fatalf("SLO accounting missing: %+v", r.SLO)
	}
	if r.Admission == nil || r.Admission.Completed == 0 {
		t.Fatal("degraded run completed nothing")
	}
}

// TestFailStopByteIdentity is the determinism contract under failure:
// reruns and every -jintra level emit byte-identical JSON.
func TestFailStopByteIdentity(t *testing.T) {
	run := func(workers int) string {
		e := failStopExp()
		e.IntraWorkers = workers
		b, err := json.Marshal(Run(e))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	serial := run(1)
	if rerun := run(1); rerun != serial {
		t.Fatalf("fail-stop rerun diverged:\n%s\n%s", serial, rerun)
	}
	for _, w := range []int{2, 4} {
		if got := run(w); got != serial {
			t.Fatalf("jintra %d diverged from serial:\n%s\n%s", w, serial, got)
		}
	}
}

// TestFailStopClosedLoop kills a node under the classic closed-loop
// workload: processes migrate and the run still completes its target.
func TestFailStopClosedLoop(t *testing.T) {
	e := failStopExp()
	e.Work.Arrivals = workload.ArrivalSpec{}
	e.SLOTarget = 0
	r := Run(e)
	if r.Recovery == nil || len(r.Recovery.Events) != 1 {
		t.Fatalf("closed-loop fail-stop missing recovery event: %+v", r.Recovery)
	}
	if r.Tx != e.MeasureTx {
		t.Fatalf("run did not complete its transaction target: %+v", r)
	}
}

// TestFailStopPlanFieldsAloneAreInert is the byte-identity guard: a plan
// that sets only fail-stop *tuning* fields (detect latency, re-dispatch
// penalty) but kills no node stays disabled, and an arrivals-enabled run
// with it is byte-exact against the arrivals-only run.
func TestFailStopPlanFieldsAloneAreInert(t *testing.T) {
	base := failStopExp()
	base.Faults = fault.Plan{}
	a, _ := json.Marshal(Run(base))
	tuned := failStopExp()
	tuned.Faults = fault.Plan{
		DetectLatency:     3 * sim.Microsecond,
		RedispatchPenalty: 9 * sim.Microsecond,
	}
	if tuned.Faults.Enabled() {
		t.Fatal("tuning-only plan reports enabled")
	}
	b, _ := json.Marshal(Run(tuned))
	if string(a) != string(b) {
		t.Fatalf("tuning-only fail-stop plan perturbed the run:\n%s\n%s", a, b)
	}
}

// TestFailStopRequiresMultiChip checks the plan validator rejects
// killing the only node.
func TestFailStopRequiresMultiChip(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single-chip fail-stop did not panic")
		}
	}()
	e := failStopExp()
	e.Sys = SystemConfig{Chips: 1, Chip: PiranhaChip(4)}
	Run(e)
}
