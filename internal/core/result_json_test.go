package core

import (
	"encoding/json"
	"testing"
)

// goldenV1 is a verbatim schema_version-1 Result document (the wire
// shape every release before v2 produced). v2 only *adds* omitempty
// blocks, so v1 documents must keep decoding into the v2 wire struct
// with every field intact — the compatibility contract DESIGN.md §7
// documents for downstream consumers.
const goldenV1 = `{
  "schema_version": 1,
  "name": "P8/oltp",
  "chips": 1,
  "cpus": 8,
  "tx": 200,
  "elapsed_ps": 712345678,
  "time_per_tx_ns": 3561.7,
  "breakdown": {
    "busy_ps": 300000000, "l2hit_stall_ps": 150000000,
    "l2miss_stall_ps": 200000000, "other_ps": 62345678,
    "busy_frac": 0.42, "l2hit_frac": 0.21, "l2miss_frac": 0.28, "other_frac": 0.09
  },
  "l1_miss_breakdown": {"l2_hit": 1000, "l2_fwd": 400, "l2_miss": 600},
  "page_hit_rate": 0.51,
  "instructions": 3200000,
  "idle_ps": 1234567,
  "ctx_switches": 321,
  "l2": {
    "hits": 1000, "fwds": 400, "local_mem": 500, "remote": 80,
    "remote_dirty": 20, "upgrades": 60, "writebacks_to_l2": 30,
    "writebacks_to_mem": 40, "invals": 70
  },
  "svc": {"l1": 90000, "l2_hit": 1000, "l2_fwd": 400, "local_mem": 500,
          "remote": 80, "remote_dirty": 20}
}`

func TestGoldenV1DocumentDecodes(t *testing.T) {
	var doc resultJSON
	if err := json.Unmarshal([]byte(goldenV1), &doc); err != nil {
		t.Fatalf("v1 document no longer decodes: %v", err)
	}
	if doc.SchemaVersion != 1 {
		t.Fatalf("schema_version = %d", doc.SchemaVersion)
	}
	if doc.Name != "P8/oltp" || doc.CPUs != 8 || doc.Tx != 200 {
		t.Fatalf("header fields lost: %+v", doc)
	}
	if doc.ElapsedPs != 712345678 || doc.TimePerTxNs != 3561.7 {
		t.Fatalf("timing fields lost: %+v", doc)
	}
	if doc.Breakdown.BusyPs != 300000000 || doc.Breakdown.OtherFrac != 0.09 {
		t.Fatalf("breakdown lost: %+v", doc.Breakdown)
	}
	if doc.Miss.L2Fwd != 400 || doc.L2.Invals != 70 || doc.Svc.L1 != 90000 {
		t.Fatalf("counter blocks lost: miss=%+v l2=%+v svc=%+v", doc.Miss, doc.L2, doc.Svc)
	}
	// The v2-only blocks must read back as "absent", not zero-filled
	// structs — the marker a consumer uses for "closed-loop run".
	if doc.Lat != nil || doc.Admission != nil || doc.Faults != nil || doc.Series != nil {
		t.Fatal("v1 document grew optional blocks on decode")
	}
}

// goldenV2 is a verbatim schema_version-2 Result document with the
// open-loop blocks v2 introduced. v3 only *adds* omitempty blocks (slo,
// recovery, admission retry counters), so v2 documents must keep
// decoding with every field intact and the v3-only blocks absent.
const goldenV2 = `{
  "schema_version": 2,
  "name": "P8/oltp-open",
  "chips": 1,
  "cpus": 8,
  "tx": 200,
  "elapsed_ps": 712345678,
  "time_per_tx_ns": 3561.7,
  "breakdown": {
    "busy_ps": 300000000, "l2hit_stall_ps": 150000000,
    "l2miss_stall_ps": 200000000, "other_ps": 62345678,
    "busy_frac": 0.42, "l2hit_frac": 0.21, "l2miss_frac": 0.28, "other_frac": 0.09
  },
  "l1_miss_breakdown": {"l2_hit": 1000, "l2_fwd": 400, "l2_miss": 600},
  "page_hit_rate": 0.51,
  "instructions": 3200000,
  "idle_ps": 1234567,
  "ctx_switches": 321,
  "l2": {
    "hits": 1000, "fwds": 400, "local_mem": 500, "remote": 80,
    "remote_dirty": 20, "upgrades": 60, "writebacks_to_l2": 30,
    "writebacks_to_mem": 40, "invals": 70
  },
  "svc": {"l1": 90000, "l2_hit": 1000, "l2_fwd": 400, "local_mem": 500,
          "remote": 80, "remote_dirty": 20},
  "latency_percentiles": {
    "count": 180, "mean_ps": 2500000, "min_ps": 1100000, "max_ps": 9900000,
    "p50_ps": 2300000, "p90_ps": 4100000, "p99_ps": 7700000, "p999_ps": 9900000
  },
  "admission": {
    "arrivals": 200, "admitted": 185, "shed": 15, "completed": 180,
    "max_depth": 12, "mean_depth": 3.4
  }
}`

func TestGoldenV2DocumentDecodes(t *testing.T) {
	var doc resultJSON
	if err := json.Unmarshal([]byte(goldenV2), &doc); err != nil {
		t.Fatalf("v2 document no longer decodes: %v", err)
	}
	if doc.SchemaVersion != 2 {
		t.Fatalf("schema_version = %d", doc.SchemaVersion)
	}
	if doc.Lat == nil || doc.Lat.P99Ps != 7700000 {
		t.Fatalf("v2 latency block lost: %+v", doc.Lat)
	}
	if doc.Admission == nil || doc.Admission.Shed != 15 || doc.Admission.MeanDepth != 3.4 {
		t.Fatalf("v2 admission block lost: %+v", doc.Admission)
	}
	// v2 never wrote retry counters; they must read back zero.
	if doc.Admission.Retried != 0 || doc.Admission.RetryExhausted != 0 {
		t.Fatalf("v2 admission block grew retry counters: %+v", doc.Admission)
	}
	// The v3-only blocks must read back as "absent", not zero-filled.
	if doc.SLO != nil || doc.Recovery != nil {
		t.Fatal("v2 document grew v3 blocks on decode")
	}
}

// TestV3FailStopRoundTrip checks the slo/recovery blocks survive a
// marshal/unmarshal cycle with their derived metrics populated.
func TestV3FailStopRoundTrip(t *testing.T) {
	r := Run(failStopExp())
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var doc resultJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != 3 {
		t.Fatalf("schema_version = %d, want 3", doc.SchemaVersion)
	}
	if doc.SLO == nil || doc.SLO.Completed == 0 || doc.SLO.TargetPs == 0 {
		t.Fatalf("slo block missing or empty: %+v", doc.SLO)
	}
	if doc.Recovery == nil || len(doc.Recovery.Events) != 1 {
		t.Fatalf("recovery block missing: %+v", doc.Recovery)
	}
	ev := doc.Recovery.Events[0]
	if ev.MTTRPs != ev.RestoredPs-ev.OnsetPs {
		t.Fatalf("mttr_ps inconsistent: %+v", ev)
	}
	if doc.Recovery.CapacityFrac != 0.5 {
		t.Fatalf("capacity_frac = %v", doc.Recovery.CapacityFrac)
	}
}

func TestV2RoundTrip(t *testing.T) {
	r := Run(openExp(2.5e5))
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var doc resultJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != ResultSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", doc.SchemaVersion, ResultSchemaVersion)
	}
	if doc.Lat == nil || doc.Admission == nil {
		t.Fatal("open-loop v2 document missing latency/admission blocks")
	}
	if doc.Lat.P999Ps < doc.Lat.P50Ps || doc.Lat.MaxPs < doc.Lat.P999Ps {
		t.Fatalf("percentile ordering broken: %+v", doc.Lat)
	}
	if doc.Admission.Arrivals != r.Admission.Arrivals {
		t.Fatalf("admission block mismatch: %+v vs %+v", doc.Admission, r.Admission)
	}
}
