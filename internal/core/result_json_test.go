package core

import (
	"encoding/json"
	"testing"
)

// goldenV1 is a verbatim schema_version-1 Result document (the wire
// shape every release before v2 produced). v2 only *adds* omitempty
// blocks, so v1 documents must keep decoding into the v2 wire struct
// with every field intact — the compatibility contract DESIGN.md §7
// documents for downstream consumers.
const goldenV1 = `{
  "schema_version": 1,
  "name": "P8/oltp",
  "chips": 1,
  "cpus": 8,
  "tx": 200,
  "elapsed_ps": 712345678,
  "time_per_tx_ns": 3561.7,
  "breakdown": {
    "busy_ps": 300000000, "l2hit_stall_ps": 150000000,
    "l2miss_stall_ps": 200000000, "other_ps": 62345678,
    "busy_frac": 0.42, "l2hit_frac": 0.21, "l2miss_frac": 0.28, "other_frac": 0.09
  },
  "l1_miss_breakdown": {"l2_hit": 1000, "l2_fwd": 400, "l2_miss": 600},
  "page_hit_rate": 0.51,
  "instructions": 3200000,
  "idle_ps": 1234567,
  "ctx_switches": 321,
  "l2": {
    "hits": 1000, "fwds": 400, "local_mem": 500, "remote": 80,
    "remote_dirty": 20, "upgrades": 60, "writebacks_to_l2": 30,
    "writebacks_to_mem": 40, "invals": 70
  },
  "svc": {"l1": 90000, "l2_hit": 1000, "l2_fwd": 400, "local_mem": 500,
          "remote": 80, "remote_dirty": 20}
}`

func TestGoldenV1DocumentDecodes(t *testing.T) {
	var doc resultJSON
	if err := json.Unmarshal([]byte(goldenV1), &doc); err != nil {
		t.Fatalf("v1 document no longer decodes: %v", err)
	}
	if doc.SchemaVersion != 1 {
		t.Fatalf("schema_version = %d", doc.SchemaVersion)
	}
	if doc.Name != "P8/oltp" || doc.CPUs != 8 || doc.Tx != 200 {
		t.Fatalf("header fields lost: %+v", doc)
	}
	if doc.ElapsedPs != 712345678 || doc.TimePerTxNs != 3561.7 {
		t.Fatalf("timing fields lost: %+v", doc)
	}
	if doc.Breakdown.BusyPs != 300000000 || doc.Breakdown.OtherFrac != 0.09 {
		t.Fatalf("breakdown lost: %+v", doc.Breakdown)
	}
	if doc.Miss.L2Fwd != 400 || doc.L2.Invals != 70 || doc.Svc.L1 != 90000 {
		t.Fatalf("counter blocks lost: miss=%+v l2=%+v svc=%+v", doc.Miss, doc.L2, doc.Svc)
	}
	// The v2-only blocks must read back as "absent", not zero-filled
	// structs — the marker a consumer uses for "closed-loop run".
	if doc.Lat != nil || doc.Admission != nil || doc.Faults != nil || doc.Series != nil {
		t.Fatal("v1 document grew optional blocks on decode")
	}
}

func TestV2RoundTrip(t *testing.T) {
	r := Run(openExp(2.5e5))
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var doc resultJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != ResultSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", doc.SchemaVersion, ResultSchemaVersion)
	}
	if doc.Lat == nil || doc.Admission == nil {
		t.Fatal("open-loop v2 document missing latency/admission blocks")
	}
	if doc.Lat.P999Ps < doc.Lat.P50Ps || doc.Lat.MaxPs < doc.Lat.P999Ps {
		t.Fatalf("percentile ordering broken: %+v", doc.Lat)
	}
	if doc.Admission.Arrivals != r.Admission.Arrivals {
		t.Fatalf("admission block mismatch: %+v vs %+v", doc.Admission, r.Admission)
	}
}
