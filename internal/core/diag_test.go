package core

import (
	"testing"

	"piranha/internal/sim"
	"piranha/internal/workload"
)

// TestDiagQueueDetail is a calibration diagnostic: it reports where L2
// service time goes at P1 vs P8 (run with -v).
func TestDiagQueueDetail(t *testing.T) {
	for _, n := range []int{1, 8} {
		sys := NewSystem(SystemConfig{Chips: 1, Chip: PiranhaChip(n)})
		cfg := workload.DefaultOLTP()
		w := workload.NewOLTP(cfg, workload.DefaultLayout(), sys.TotalCPUs()*cfg.ProcsPerCPU)
		rng := sim.NewRNG(12345)
		for c := 0; c < sys.TotalCPUs(); c++ {
			for p := 0; p < cfg.ProcsPerCPU; p++ {
				sys.Kern.Spawn(c, w.NewProcess(), rng.Uint64())
			}
		}
		sys.Kern.RunTx(60)
		sys.ResetStats()
		elapsed := sys.Kern.RunTx(180)
		pend, ctl, tsrf, conf := sys.Chips[0].L2.QueueStats()
		perTx := func(v sim.Time) float64 { return float64(v) / 120 / 1000 }
		t.Logf("P%d elapsed=%v pendWait/tx=%.0fns ctlWait/tx=%.0fns tsrfWait/tx=%.0fns conflicts/tx=%.1f icsAvgWait=%.1fns",
			n, elapsed, perTx(pend), perTx(ctl), perTx(tsrf), float64(conf)/120,
			sys.Chips[0].SW.AvgWait()/1000)
		var bd sim.Time
		for _, c := range sys.Cores {
			bd += c.Breakdown.L2HitStall
		}
		t.Logf("P%d total L2HitStall/tx = %.0f ns", n, perTx(bd))
	}
}
