package ionode

import (
	"testing"

	"piranha/internal/cache"
	"piranha/internal/cpu"
	"piranha/internal/l2"
	"piranha/internal/sim"
)

func TestIOChipShape(t *testing.T) {
	c := New(DefaultConfig(), l2.LocalOnly{})
	if len(c.Node.Cores) != 1 {
		t.Fatalf("I/O chip has %d CPUs, want 1", len(c.Node.Cores))
	}
	if len(c.Node.MCs) != 1 {
		t.Fatalf("I/O chip has %d memory controllers, want 1", len(c.Node.MCs))
	}
	if c.Channels() != 2 {
		t.Fatalf("I/O chip has %d channels, want 2", c.Channels())
	}
}

func TestDMAIsCoherent(t *testing.T) {
	c := New(DefaultConfig(), l2.LocalOnly{})
	buf := cache.Addr(0x100000)
	// The driver CPU caches the buffer dirty.
	c.Node.Access(0, 0, cpu.Store, buf)
	if c.Node.DL1[0].State(buf.Line()) != cache.Modified {
		t.Fatal("setup: buffer not dirty in CPU cache")
	}
	// Device DMA overwrites the buffer: the CPU's copy must die.
	done := c.DiskRead(1*sim.Microsecond, buf, 4096)
	if done <= 1*sim.Microsecond {
		t.Fatal("no disk latency")
	}
	if c.Node.DL1[0].State(buf.Line()) != cache.Invalid {
		t.Fatal("DMA write did not invalidate the CPU's cached copy")
	}
	if c.DMALines != 4096/cache.LineBytes {
		t.Fatalf("DMA lines %d", c.DMALines)
	}
	if err := c.Node.L2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskWriteReadsCoherently(t *testing.T) {
	c := New(DefaultConfig(), l2.LocalOnly{})
	buf := cache.Addr(0x200000)
	c.Node.Access(0, 0, cpu.Store, buf) // dirty in CPU cache
	done := c.DiskWrite(0, buf, 128)
	if done < c.Cfg.DiskLatency {
		t.Fatal("write returned before the disk op")
	}
	// The CPU keeps its copy (reads downgrade, not invalidate).
	if st := c.Node.DL1[0].State(buf.Line()); st == cache.Invalid {
		t.Fatal("device read should not invalidate")
	}
	if err := c.Node.L2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskSerializes(t *testing.T) {
	c := New(DefaultConfig(), l2.LocalOnly{})
	a := c.DiskRead(0, 0x300000, 8192)
	b := c.DiskRead(0, 0x400000, 8192)
	if b <= a {
		t.Fatal("two disk ops did not serialize on the device")
	}
	if c.DiskOps != 2 || c.Interrupts != 2 {
		t.Fatalf("counters %+v", *c)
	}
}

func TestDriverCPURunsCode(t *testing.T) {
	// The I/O chip's CPU is a normal core: it can execute ops against
	// the chip's hierarchy (device-driver scheduling per the paper).
	c := New(DefaultConfig(), l2.LocalOnly{})
	core0 := c.Node.Cores[0]
	end := core0.Exec(0, cpu.Op{Kind: cpu.KCompute, N: 1000})
	end = core0.Exec(end, cpu.Op{Kind: cpu.KLoad, Addr: 0x500000})
	if end <= 0 || core0.Instructions == 0 {
		t.Fatal("driver CPU inert")
	}
}
