// Package ionode models the Piranha I/O chip (paper §2, Figure 2): a
// stripped-down processing chip with a single CPU, a single L2 bank and
// memory controller, and a two-channel router (no routing table needed).
// The PCI/X interface is fronted by an instance of the first-level data
// cache module, which gives the device address translation, access to
// I/O-space registers, interrupt generation — and, critically, makes DMA
// a full participant in the global coherence protocol: device writes
// invalidate cached copies exactly like CPU stores.
//
// The on-chip CPU exists so device drivers can be scheduled next to the
// device (low-latency I/O) or interpret accesses to virtual control
// registers; it is indistinguishable from a processing-chip CPU to
// software.
package ionode

import (
	"piranha/internal/cache"
	"piranha/internal/core"
	"piranha/internal/cpu"
	"piranha/internal/l1"
	"piranha/internal/l2"
	"piranha/internal/memctl"
	"piranha/internal/sim"
)

// Config describes the I/O chip.
type Config struct {
	// Core is the single on-chip CPU (same design as the processing
	// chip's cores).
	Core cpu.Model
	// L1 is the cache geometry (also used by the PCI/X-front dL1).
	L1 l1.Config
	// L2Bank is the single bank's share of the L2 design.
	L2  l2.Config
	Mem memctl.Config
	// Disk timing.
	DiskLatency   sim.Time // seek + controller
	DiskBandwidth int64    // bytes/sec
}

// DefaultConfig returns the prototype I/O chip: one 500 MHz core, one
// 128 KB L2 bank, one Rambus channel, and a disk with NV-cache-class
// latency.
func DefaultConfig() Config {
	l2cfg := l2.DefaultConfig()
	l2cfg.Banks = 1
	l2cfg.SizeBytes = 128 << 10
	return Config{
		Core:          cpu.InOrder500(),
		L1:            l1.DefaultConfig(),
		L2:            l2cfg,
		Mem:           memctl.DefaultConfig(),
		DiskLatency:   200 * sim.Microsecond,
		DiskBandwidth: 160 << 20,
	}
}

// Chip is the assembled I/O node.
type Chip struct {
	Cfg Config
	// Node is the underlying single-CPU chip (CPU 0 is the driver CPU).
	Node *core.Chip
	// PCI is the dL1 instance fronting the PCI/X interface.
	PCI *l1.Cache

	disk sim.Resource

	// Stats.
	DMALines   uint64
	Interrupts uint64
	DiskOps    uint64
}

// New builds an I/O chip wired to the coherence domain via remote
// (l2.LocalOnly for a standalone chip, a pe fabric adapter otherwise).
func New(cfg Config, remote l2.Remote) *Chip {
	chipCfg := core.ChipConfig{
		CPUs:            1,
		Core:            cfg.Core,
		L1:              cfg.L1,
		L2:              cfg.L2,
		Mem:             cfg.Mem,
		TLBRefillCycles: 30,
	}
	node := core.NewChip(chipCfg, remote)
	c := &Chip{Cfg: cfg, Node: node}
	// The PCI/X-front dL1 is an additional client of the (single) L2
	// bank, exactly like another core's data cache.
	c.PCI = l1.New(l1.Data, 1, 2, cfg.L1)
	node.L2.AddClient(c.PCI)
	return c
}

// Channels returns the I/O node's router channel count (two, for
// redundancy, vs four on processing nodes).
func (c *Chip) Channels() int { return 2 }

// DiskRead models a device read of n bytes completing into the buffer at
// dst: the disk transfers, the PCI/X engine DMAs each line through the
// coherence protocol (invalidating any cached copies), and an interrupt
// is raised for the driver CPU. It returns the interrupt time.
func (c *Chip) DiskRead(now sim.Time, dst cache.Addr, n int) sim.Time {
	c.DiskOps++
	xfer := sim.Time(int64(n) * int64(sim.Second) / c.Cfg.DiskBandwidth)
	ready := c.disk.Acquire(now+c.Cfg.DiskLatency, xfer)
	t := ready
	for off := 0; off < n; off += cache.LineBytes {
		// DMA write: exclusive ownership without data fetch (the
		// device overwrites whole lines), then the data lands.
		done, _ := c.Node.L2.Access(t, c.PCI, l2.ReadExNoData, dst+cache.Addr(off))
		t = done
		c.DMALines++
	}
	c.Interrupts++
	return t
}

// DiskWrite models writing n bytes from the buffer at src to the device:
// the DMA engine reads the lines coherently (forwarding from dirty
// caches as needed) and streams them to the disk.
func (c *Chip) DiskWrite(now sim.Time, src cache.Addr, n int) sim.Time {
	c.DiskOps++
	t := now
	for off := 0; off < n; off += cache.LineBytes {
		done, _ := c.Node.L2.Access(t, c.PCI, l2.Read, src+cache.Addr(off))
		t = done
	}
	xfer := sim.Time(int64(n) * int64(sim.Second) / c.Cfg.DiskBandwidth)
	done := c.disk.Acquire(t+c.Cfg.DiskLatency, xfer)
	c.Interrupts++
	return done
}
