// Package useq implements the microprogrammable controller at the heart
// of Piranha's protocol engines (paper §2.5.1, following the S3.mp design).
//
// The microcode store holds 1024 21-bit instructions. Each instruction is
// a 3-bit opcode, two 4-bit arguments, and a 10-bit next-instruction
// address. Seven instruction types exist: SEND, RECEIVE, LSEND (to the
// local node), LRECEIVE (from the local node), TEST, SET, and MOVE.
// RECEIVE, LRECEIVE and TEST behave as multi-way conditional branches: a
// 4-bit condition code is OR-ed into the least significant bits of the
// next-address field, giving up to 16 successors.
//
// To allow 500 MHz operation the hardware interleaves two threads,
// fetching the next instruction for an even-addressed thread while
// executing an odd-addressed one; the model reproduces that schedule. A
// thread is one TSRF entry (16 per engine): program counter, transaction
// address, timer, and state variables (the register file here).
package useq

import "fmt"

// Geometry of the microcode store.
const (
	// StoreSize is the number of microcode words.
	StoreSize = 1024
	// WordBits is the instruction width.
	WordBits = 21
	// Threads is the number of TSRF entries (concurrent transactions).
	Threads = 16
	// Regs is the per-thread state-variable count.
	Regs = 16
)

// Opcode is the 3-bit operation field.
type Opcode uint8

// The seven instruction types.
const (
	SEND     Opcode = iota // send a message to a remote node
	RECEIVE                // wait for a remote message; 16-way branch on type
	LSEND                  // send a message to the local node
	LRECEIVE               // wait for a local message; 16-way branch on type
	TEST                   // 16-way branch on a state variable
	SET                    // set a state variable to an immediate
	MOVE                   // copy one state variable to another
)

var opNames = [...]string{"SEND", "RECEIVE", "LSEND", "LRECEIVE", "TEST", "SET", "MOVE"}

func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", o)
}

// Word is one 21-bit microinstruction:
// bits [20:18] opcode, [17:14] arg0, [13:10] arg1, [9:0] next address.
type Word uint32

// Pack builds an instruction word.
func Pack(op Opcode, a0, a1 uint8, next uint16) Word {
	return Word(uint32(op)<<18 | uint32(a0&0xf)<<14 | uint32(a1&0xf)<<10 | uint32(next&0x3ff))
}

// Fields unpacks an instruction word.
func (w Word) Fields() (op Opcode, a0, a1 uint8, next uint16) {
	return Opcode(w >> 18 & 7), uint8(w >> 14 & 0xf), uint8(w >> 10 & 0xf), uint16(w & 0x3ff)
}

// String disassembles the word.
func (w Word) String() string {
	op, a0, a1, next := w.Fields()
	return fmt.Sprintf("%-8s %d, %d -> %03x", op, a0, a1, next)
}

// Message is what the engine exchanges with the world. Type is the 4-bit
// code that RECEIVE/LRECEIVE branch on; Arg carries a state variable.
type Message struct {
	Thread int
	Type   uint8
	Arg    uint8
	Local  bool // emitted by LSEND / consumed by LRECEIVE
}

// Thread is one TSRF entry.
type Thread struct {
	PC      uint16
	Regs    [Regs]uint8
	Waiting bool // blocked in RECEIVE/LRECEIVE
	Local   bool // waiting for a local (vs remote) message
	Halted  bool
	// Executed counts instructions retired by this thread.
	Executed uint64
}

// Engine is one microsequencer with its TSRF.
type Engine struct {
	store   [StoreSize]Word
	used    int
	threads [Threads]Thread

	// Out receives every message the engine sends; the harness drains it.
	Out []Message
	// inbox holds one pending message per thread.
	inbox [Threads]*Message

	// Cycles counts executed machine cycles (one instruction per cycle,
	// alternating even/odd threads).
	Cycles uint64
	parity int
}

// NewEngine loads a program into the microcode store.
func NewEngine(p *Program) (*Engine, error) {
	if len(p.Words) > StoreSize {
		return nil, fmt.Errorf("useq: program of %d words exceeds store (%d)", len(p.Words), StoreSize)
	}
	e := &Engine{used: len(p.Words)}
	copy(e.store[:], p.Words)
	for i := range e.threads {
		e.threads[i].Halted = true
	}
	return e, nil
}

// StoreUsed returns how many microcode words the program occupies.
func (e *Engine) StoreUsed() int { return e.used }

// Start activates a TSRF entry at the given entry point.
func (e *Engine) Start(thread int, entry uint16) {
	t := &e.threads[thread]
	*t = Thread{PC: entry}
}

// Thread returns a TSRF entry for inspection.
func (e *Engine) Thread(i int) *Thread { return &e.threads[i] }

// Deliver hands a message to a waiting thread (matched by TSRF entry,
// as the hardware matches responses by transaction address).
func (e *Engine) Deliver(m Message) error {
	t := &e.threads[m.Thread]
	if t.Halted {
		return fmt.Errorf("useq: message for halted thread %d", m.Thread)
	}
	if e.inbox[m.Thread] != nil {
		return fmt.Errorf("useq: thread %d inbox full", m.Thread)
	}
	mm := m
	e.inbox[m.Thread] = &mm
	return nil
}

// runnable reports whether thread i can execute an instruction now.
func (e *Engine) runnable(i int) bool {
	t := &e.threads[i]
	if t.Halted {
		return false
	}
	if !t.Waiting {
		return true
	}
	m := e.inbox[i]
	return m != nil && m.Local == t.Local
}

// Step executes one machine cycle: the next runnable thread of the
// current parity group runs one instruction (even/odd interleave).
// It reports whether any instruction executed.
func (e *Engine) Step() bool {
	for attempt := 0; attempt < 2; attempt++ {
		for k := 0; k < Threads/2; k++ {
			i := e.parity + 2*((int(e.Cycles)+k)%(Threads/2))
			if e.runnable(i) {
				e.exec(i)
				e.Cycles++
				e.parity = 1 - e.parity
				return true
			}
		}
		// No runnable thread of this parity; try the other group.
		e.parity = 1 - e.parity
	}
	return false
}

// Run steps until no thread can make progress or limit cycles pass.
func (e *Engine) Run(limit int) int {
	n := 0
	for n < limit && e.Step() {
		n++
	}
	return n
}

// exec retires one instruction of thread i.
func (e *Engine) exec(i int) {
	t := &e.threads[i]
	op, a0, a1, next := e.store[t.PC].Fields()
	switch op {
	case SEND, LSEND:
		t.Executed++
		e.Out = append(e.Out, Message{Thread: i, Type: a0, Arg: t.Regs[a1], Local: op == LSEND})
		t.PC = next
	case RECEIVE, LRECEIVE:
		local := op == LRECEIVE
		m := e.inbox[i]
		if m == nil || m.Local != local {
			// Enter the waiting state; the PC does not advance and the
			// instruction has not retired (it completes on delivery).
			t.Waiting = true
			t.Local = local
			return
		}
		e.inbox[i] = nil
		t.Waiting = false
		t.Executed++
		// The message's 4-bit type is OR-ed into the next address; the
		// message argument lands in the register named by a1.
		t.Regs[a1] = m.Arg
		t.PC = next | uint16(m.Type&0xf)
		_ = a0
	case TEST:
		t.Executed++
		t.PC = next | uint16(t.Regs[a0]&0xf)
	case SET:
		t.Executed++
		t.Regs[a0] = a1
		t.PC = next
	case MOVE:
		t.Executed++
		t.Regs[a0] = t.Regs[a1]
		t.PC = next
	}
	if t.PC == haltAddr {
		t.Halted = true
	}
}

// haltAddr is the conventional "transaction complete" address: jumping to
// the last store word halts the thread and frees the TSRF entry.
const haltAddr = StoreSize - 1
