package useq

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is assembled microcode plus its symbol table.
type Program struct {
	Words  []Word
	Labels map[string]uint16
}

// Entry resolves a label to its address.
func (p *Program) Entry(label string) (uint16, error) {
	a, ok := p.Labels[label]
	if !ok {
		return 0, fmt.Errorf("useq: unknown label %q", label)
	}
	return a, nil
}

// Assemble translates symbolic microcode into a Program. The syntax, one
// instruction per line:
//
//	; comment
//	label:  SET   r0, 7          ; state variable r0 := 7
//	        MOVE  r1, r0         ; r1 := r0
//	        TEST  r0 @table      ; 16-way branch on r0 into table
//	        SEND  5, r1          ; send remote message type 5, arg r1
//	        LSEND 2, r0          ; send local message type 2, arg r0
//	        RECEIVE  r3 @table   ; wait remote msg; arg->r3; branch on type
//	        LRECEIVE r3 @table   ; same for local messages
//	        HALT                 ; complete the transaction
//	.align 16                    ; branch tables must be 16-aligned
//	.org 64                      ; place following code at address 64
//
// Every instruction may end with "-> label" to name its successor
// explicitly; otherwise control falls through to the next word. Branch
// targets (@table) must be 16-aligned because the condition code is OR-ed
// into the low 4 bits of the next-address field.
func Assemble(src string) (*Program, error) {
	type pending struct {
		line   int
		op     Opcode
		a0, a1 uint8
		next   string // explicit successor label ("" = fall through)
		branch string // @table label for TEST/RECEIVE ("" = none)
		addr   uint16
		halt   bool
	}

	labels := map[string]uint16{"halt": haltAddr}
	var insts []pending
	addr := uint16(0)

	reg := func(tok string) (uint8, error) {
		if !strings.HasPrefix(tok, "r") {
			return 0, fmt.Errorf("expected register, got %q", tok)
		}
		v, err := strconv.Atoi(tok[1:])
		if err != nil || v < 0 || v >= Regs {
			return 0, fmt.Errorf("bad register %q", tok)
		}
		return uint8(v), nil
	}
	imm := func(tok string) (uint8, error) {
		v, err := strconv.Atoi(tok)
		if err != nil || v < 0 || v > 15 {
			return 0, fmt.Errorf("immediate %q out of 0..15", tok)
		}
		return uint8(v), nil
	}

	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Directives.
		if strings.HasPrefix(line, ".align") {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".align")))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("line %d: bad .align", ln+1)
			}
			for int(addr)%n != 0 {
				addr++
			}
			continue
		}
		if strings.HasPrefix(line, ".org") {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".org")))
			if err != nil || n < 0 || n >= StoreSize {
				return nil, fmt.Errorf("line %d: bad .org", ln+1)
			}
			addr = uint16(n)
			continue
		}
		// Labels (possibly several on one line before an instruction).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if name == "" || strings.ContainsAny(name, " \t") {
				return nil, fmt.Errorf("line %d: bad label %q", ln+1, name)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", ln+1, name)
			}
			labels[name] = addr
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		// Optional explicit successor.
		p := pending{line: ln + 1, addr: addr}
		if i := strings.Index(line, "->"); i >= 0 {
			p.next = strings.TrimSpace(line[i+2:])
			line = strings.TrimSpace(line[:i])
		}

		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		mnemonic := strings.ToUpper(fields[0])
		args := fields[1:]
		takeBranch := func() error {
			if len(args) == 0 || !strings.HasPrefix(args[len(args)-1], "@") {
				return fmt.Errorf("missing @table operand")
			}
			p.branch = args[len(args)-1][1:]
			args = args[:len(args)-1]
			return nil
		}

		var err error
		switch mnemonic {
		case "SET":
			p.op = SET
			if len(args) != 2 {
				err = fmt.Errorf("SET needs 2 operands")
				break
			}
			if p.a0, err = reg(args[0]); err == nil {
				p.a1, err = imm(args[1])
			}
		case "MOVE":
			p.op = MOVE
			if len(args) != 2 {
				err = fmt.Errorf("MOVE needs 2 operands")
				break
			}
			if p.a0, err = reg(args[0]); err == nil {
				p.a1, err = reg(args[1])
			}
		case "SEND", "LSEND":
			p.op = SEND
			if mnemonic == "LSEND" {
				p.op = LSEND
			}
			if len(args) != 2 {
				err = fmt.Errorf("%s needs 2 operands", mnemonic)
				break
			}
			if p.a0, err = imm(args[0]); err == nil {
				p.a1, err = reg(args[1])
			}
		case "RECEIVE", "LRECEIVE":
			p.op = RECEIVE
			if mnemonic == "LRECEIVE" {
				p.op = LRECEIVE
			}
			if err = takeBranch(); err != nil {
				break
			}
			if len(args) != 1 {
				err = fmt.Errorf("%s needs a register and @table", mnemonic)
				break
			}
			p.a1, err = reg(args[0])
		case "TEST":
			p.op = TEST
			if err = takeBranch(); err != nil {
				break
			}
			if len(args) != 1 {
				err = fmt.Errorf("TEST needs a register and @table")
				break
			}
			p.a0, err = reg(args[0])
		case "HALT":
			p.op = MOVE
			p.halt = true
		case "JMP":
			// Pseudo-instruction: an effect-free MOVE whose next field
			// is the target (used to populate branch-table slots).
			p.op = MOVE
			if len(args) != 1 {
				err = fmt.Errorf("JMP needs a target label")
				break
			}
			p.next = args[0]
		default:
			err = fmt.Errorf("unknown mnemonic %q", mnemonic)
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		insts = append(insts, p)
		addr++
		if int(addr) >= StoreSize {
			return nil, fmt.Errorf("line %d: program overflows microcode store", ln+1)
		}
	}

	// Second pass: resolve successors and emit.
	words := make([]Word, addr)
	occupied := make([]bool, addr)
	for i, p := range insts {
		next := uint16(haltAddr)
		switch {
		case p.halt:
		case p.next != "":
			a, ok := labels[p.next]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown label %q", p.line, p.next)
			}
			next = a
		case p.branch != "":
			a, ok := labels[p.branch]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown table %q", p.line, p.branch)
			}
			if a%16 != 0 {
				return nil, fmt.Errorf("line %d: table %q at %d not 16-aligned", p.line, p.branch, a)
			}
			next = a
		default:
			// Fall through to the next emitted instruction.
			if i+1 < len(insts) {
				next = insts[i+1].addr
			}
		}
		words[p.addr] = Pack(p.op, p.a0, p.a1, next)
		occupied[p.addr] = true
	}
	// Unoccupied (alignment padding) words halt if ever reached.
	for i, ok := range occupied {
		if !ok {
			words[i] = Pack(MOVE, 0, 0, haltAddr)
		}
	}
	return &Program{Words: words, Labels: labels}, nil
}
