package useq

import (
	"strings"
	"testing"
)

func TestPackFields(t *testing.T) {
	w := Pack(TEST, 5, 9, 0x2a3)
	op, a0, a1, next := w.Fields()
	if op != TEST || a0 != 5 || a1 != 9 || next != 0x2a3 {
		t.Fatalf("fields %v %d %d %#x", op, a0, a1, next)
	}
	if uint32(w)>>WordBits != 0 {
		t.Fatalf("word wider than %d bits", WordBits)
	}
	if !strings.Contains(w.String(), "TEST") {
		t.Fatalf("disassembly %q", w)
	}
}

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAssemblerBasics(t *testing.T) {
	p := mustAssemble(t, `
		; a tiny program
	start:	SET  r1, 7
		MOVE r2, r1
		HALT
	`)
	if len(p.Words) != 3 {
		t.Fatalf("%d words", len(p.Words))
	}
	if a, _ := p.Entry("start"); a != 0 {
		t.Fatalf("start at %d", a)
	}
	op, a0, a1, _ := p.Words[0].Fields()
	if op != SET || a0 != 1 || a1 != 7 {
		t.Fatal("SET encoding wrong")
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"SET r99, 1",            // bad register
		"SET r1, 99",            // immediate out of range
		"FROB r1, r2",           // unknown mnemonic
		"JMP nowhere",           // unknown label
		"x: SET r1,1\nx: HALT",  // duplicate label
		"TEST r1",               // missing table
		".org 5\nt: TEST r1 @t", // table at address 5: unaligned
	}
	for i, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Fatalf("case %d (%q): expected error", i, src)
		}
	}
}

func TestSetMoveTest(t *testing.T) {
	p := mustAssemble(t, `
	start:	SET  r0, 3
		MOVE r1, r0
		TEST r1 @table
	.align 16
	table:	JMP wrong       ; 0
		JMP wrong       ; 1
		JMP wrong       ; 2
	ok:	SET r5, 15      ; 3  <- r1 == 3 lands here
		HALT
	wrong:	SET r5, 1
		HALT
	`)
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	e.Start(0, 0)
	e.Run(100)
	th := e.Thread(0)
	if !th.Halted {
		t.Fatal("thread did not halt")
	}
	if th.Regs[5] != 15 {
		t.Fatalf("branch went wrong: r5=%d", th.Regs[5])
	}
}

func TestSendEmitsMessage(t *testing.T) {
	p := mustAssemble(t, `
	start:	SET  r2, 9
		SEND 4, r2
		LSEND 1, r2
		HALT
	`)
	e, _ := NewEngine(p)
	e.Start(3, 0)
	e.Run(100)
	if len(e.Out) != 2 {
		t.Fatalf("%d messages", len(e.Out))
	}
	if m := e.Out[0]; m.Thread != 3 || m.Type != 4 || m.Arg != 9 || m.Local {
		t.Fatalf("remote message %+v", m)
	}
	if m := e.Out[1]; !m.Local || m.Type != 1 {
		t.Fatalf("local message %+v", m)
	}
}

func TestReceiveBlocksAndBranches(t *testing.T) {
	p := mustAssemble(t, `
	start:	RECEIVE r1 @table
	.align 16
	table:	JMP t0
		JMP t0
	slot2:	SET r7, 2      ; message type 2 lands here
		HALT
	t0:	SET r7, 1
		HALT
	`)
	e, _ := NewEngine(p)
	e.Start(0, 0)
	if n := e.Run(10); n > 1 {
		t.Fatalf("engine ran %d cycles with nothing to receive", n)
	}
	if e.Thread(0).Halted {
		t.Fatal("halted while waiting")
	}
	// A local message must NOT wake a remote RECEIVE.
	if err := e.Deliver(Message{Thread: 0, Type: 2, Arg: 5, Local: true}); err != nil {
		t.Fatal(err)
	}
	if e.runnable(0) {
		t.Fatal("local message woke a remote RECEIVE")
	}
	e.inbox[0] = nil
	if err := e.Deliver(Message{Thread: 0, Type: 2, Arg: 5}); err != nil {
		t.Fatal(err)
	}
	e.Run(100)
	th := e.Thread(0)
	if th.Regs[7] != 2 {
		t.Fatalf("type-2 dispatch failed: r7=%d", th.Regs[7])
	}
	if th.Regs[1] != 5 {
		t.Fatalf("message arg not captured: r1=%d", th.Regs[1])
	}
}

func TestEvenOddInterleave(t *testing.T) {
	p := mustAssemble(t, `
	start:	SET r0, 1
		SET r0, 2
		SET r0, 3
		HALT
	`)
	e, _ := NewEngine(p)
	e.Start(0, 0) // even thread
	e.Start(1, 0) // odd thread
	// With both runnable, consecutive cycles must alternate parity.
	e.Step()
	first := e.Thread(0).Executed + 0
	e.Step()
	if e.Thread(0).Executed == first+1 {
		t.Fatal("same-parity thread ran twice in a row while the other was runnable")
	}
	e.Run(100)
	if !e.Thread(0).Halted || !e.Thread(1).Halted {
		t.Fatal("threads did not complete")
	}
}

// protocolSrc is the microcoded read path: the remote engine of the
// requesting node and the home engine, as sketched in the paper ("a
// typical read transaction to a remote home involves a total of four
// instructions at the remote engine of the requesting node: a SEND of the
// request to the home, a RECEIVE of the reply, a TEST of a state
// variable, and an LSEND that replies to the waiting processor").
const protocolSrc = `
; ---- remote engine (requester side) ----
re_read:	SEND 1, r1              ; request to home (type 1)
		RECEIVE r2 @re_reply    ; wait for the reply
.align 16
re_reply:	JMP re_err              ; type 0
		JMP re_err              ; type 1
re_data:	TEST r3 @re_state       ; type 2 = data reply
		JMP re_err              ; type 3
.align 16
re_state:	LSEND 2, r2 -> halt     ; state 0: reply to the waiting CPU
re_err:		SET r15, 15
		HALT

; ---- home engine ----
he_read:	LSEND 3, r1             ; read data+directory from memory
		LRECEIVE r2 @he_dir     ; local reply type = directory state
.align 16
he_dir:		SEND 2, r2 -> halt      ; 0: uncached -> data reply
		SEND 2, r2 -> halt      ; 1: shared -> data reply
he_fwd:		SEND 3, r4 -> halt      ; 2: exclusive -> forward to owner
`

func TestMicrocodedRemoteReadTransaction(t *testing.T) {
	p := mustAssemble(t, protocolSrc)
	if p2 := len(p.Words); p2 > StoreSize {
		t.Fatalf("program size %d", p2)
	}

	re, _ := NewEngine(p)
	he, _ := NewEngine(p)
	reEntry, _ := p.Entry("re_read")
	heEntry, _ := p.Entry("he_read")

	// CPU read request allocates TSRF entry 0 at the requester.
	re.Start(0, reEntry)
	re.Thread(0).Regs[1] = 7 // "address"
	re.Run(10)

	// The request message reaches the home: allocate a home thread.
	if len(re.Out) != 1 || re.Out[0].Type != 1 {
		t.Fatalf("requester emitted %+v", re.Out)
	}
	he.Start(0, heEntry)
	he.Thread(0).Regs[1] = re.Out[0].Arg
	he.Run(10)

	// The home asked its memory controller for data + directory.
	if len(he.Out) != 1 || !he.Out[0].Local || he.Out[0].Type != 3 {
		t.Fatalf("home emitted %+v", he.Out)
	}
	// Memory replies: directory state 0 (uncached), data token 9.
	if err := he.Deliver(Message{Thread: 0, Type: 0, Arg: 9, Local: true}); err != nil {
		t.Fatal(err)
	}
	he.Run(10)
	if len(he.Out) != 2 || he.Out[1].Type != 2 || he.Out[1].Arg != 9 {
		t.Fatalf("home reply %+v", he.Out)
	}

	// The data reply reaches the requester.
	if err := re.Deliver(Message{Thread: 0, Type: 2, Arg: 9}); err != nil {
		t.Fatal(err)
	}
	re.Run(10)

	reT := re.Thread(0)
	if !reT.Halted {
		t.Fatal("requester transaction did not complete")
	}
	// The paper's headline count: exactly four instructions at the RE.
	if reT.Executed != 4 {
		t.Fatalf("remote engine executed %d instructions, want 4", reT.Executed)
	}
	// Home engine: LSEND + LRECEIVE + SEND = 3.
	if he.Thread(0).Executed != 3 {
		t.Fatalf("home engine executed %d instructions, want 3", he.Thread(0).Executed)
	}
	// The CPU got its data.
	last := re.Out[len(re.Out)-1]
	if !last.Local || last.Type != 2 || last.Arg != 9 {
		t.Fatalf("CPU reply %+v", last)
	}
}

func TestMicrocodedDirtyForward(t *testing.T) {
	p := mustAssemble(t, protocolSrc)
	he, _ := NewEngine(p)
	entry, _ := p.Entry("he_read")
	he.Start(0, entry)
	he.Thread(0).Regs[4] = 11 // owner id token
	he.Run(10)
	// Directory state 2 = exclusive: the home must forward (type 3).
	he.Deliver(Message{Thread: 0, Type: 2, Arg: 0, Local: true})
	he.Run(10)
	if len(he.Out) != 2 || he.Out[1].Type != 3 || he.Out[1].Arg != 11 {
		t.Fatalf("forward message %+v", he.Out)
	}
}

func TestSixteenConcurrentThreads(t *testing.T) {
	p := mustAssemble(t, `
	start:	RECEIVE r1 @tbl
	.align 16
	tbl:	SET r2, 1 -> halt
	`)
	e, _ := NewEngine(p)
	for i := 0; i < Threads; i++ {
		e.Start(i, 0)
	}
	e.Run(100) // all block in RECEIVE
	for i := 0; i < Threads; i++ {
		if err := e.Deliver(Message{Thread: i, Type: 0, Arg: uint8(i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(1000)
	for i := 0; i < Threads; i++ {
		th := e.Thread(i)
		if !th.Halted || th.Regs[1] != uint8(i) {
			t.Fatalf("thread %d: halted=%v r1=%d", i, th.Halted, th.Regs[1])
		}
	}
}

func TestDeliverErrors(t *testing.T) {
	p := mustAssemble(t, "start: RECEIVE r1 @t\n.align 16\nt: HALT")
	e, _ := NewEngine(p)
	if err := e.Deliver(Message{Thread: 0, Type: 0}); err == nil {
		t.Fatal("delivery to halted thread accepted")
	}
	e.Start(0, 0)
	e.Run(10)
	if err := e.Deliver(Message{Thread: 0, Type: 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Deliver(Message{Thread: 0, Type: 0}); err == nil {
		t.Fatal("double delivery accepted")
	}
}

func TestMicrocodedWritePathEagerReply(t *testing.T) {
	for _, acks := range []int{0, 1, 3, 15} {
		instr, eager, err := RemoteWriteCounts(acks)
		if err != nil {
			t.Fatalf("acks=%d: %v", acks, err)
		}
		if !eager {
			t.Fatalf("acks=%d: grant was not eager", acks)
		}
		// SEND + RECEIVE + LSEND + TEST, plus (RECEIVE+TEST+SET+TEST)
		// per gathered acknowledgment... the per-ack loop costs a
		// bounded handful of instructions.
		min := uint64(4)
		max := uint64(4 + 6*acks + 2)
		if instr < min || instr > max {
			t.Fatalf("acks=%d: %d instructions, want %d..%d", acks, instr, min, max)
		}
	}
}

func TestMicrocodedWriteRejectsBadAckCount(t *testing.T) {
	if _, _, err := RemoteWriteCounts(16); err == nil {
		t.Fatal("16 acks should exceed the 4-bit counter")
	}
}

func BenchmarkMicrocodedRemoteRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := RemoteReadCounts(); err != nil {
			b.Fatal(err)
		}
	}
}
