package useq

import "fmt"

// ReferenceProtocol is the microcoded inter-node read path used by the
// documentation, examples and the §2.5.1 reproduction: the remote-engine
// side of a read to a remote home (the paper's four-instruction example)
// and the home-engine side (memory + directory lookup, data reply or
// forward to owner).
const ReferenceProtocol = `
; ---- remote engine (requester side) ----
re_read:	SEND 1, r1              ; request to home (type 1)
		RECEIVE r2 @re_reply    ; wait for the reply
.align 16
re_reply:	JMP re_err              ; type 0
		JMP re_err              ; type 1
re_data:	TEST r3 @re_state       ; type 2 = data reply
		JMP re_err              ; type 3
.align 16
re_state:	LSEND 2, r2 -> halt     ; state 0: reply to the waiting CPU
re_err:		SET r15, 15
		HALT

; ---- home engine ----
he_read:	LSEND 3, r1             ; read data+directory from memory
		LRECEIVE r2 @he_dir     ; local reply type = directory state
.align 16
he_dir:		SEND 2, r2 -> halt      ; 0: uncached -> data reply
		SEND 2, r2 -> halt      ; 1: shared -> data reply
he_fwd:		SEND 3, r4 -> halt      ; 2: exclusive -> forward to owner
`

// WriteProtocol extends the reference handlers with the read-exclusive
// (write) path, demonstrating the paper's eager-exclusive-reply and
// ack-gathering-at-the-requester semantics entirely in microcode. The
// sequencer has no arithmetic, so the pending-acknowledgment counter is
// decremented with the classic TEST-table idiom: a 16-way branch on the
// counter whose slot k executes "SET counter, k-1".
const WriteProtocol = `
; ---- remote engine: read-exclusive (write) path ----
; r1 = address token; the reply's arg carries the pending-ack count.
re_write:	SEND 4, r1              ; read-exclusive request to home
		RECEIVE r5 @re_wreply   ; ack count -> r5
.align 16
re_wreply:	JMP re_werr             ; 0
		JMP re_werr             ; 1
		JMP re_werr             ; 2
		JMP re_werr             ; 3
		JMP re_werr             ; 4
		JMP re_werr             ; 5
re_wdata:	LSEND 2, r5 -> ackwait  ; 6: exclusive reply -> EAGER grant
.align 16
; gather invalidation acknowledgments (type 7) at the requester
ackwait:	TEST r5 @ackdone
.align 16
ackdone:	HALT                    ; 0 pending: transaction complete
		JMP recvack             ; 1..15 pending: wait for an ack
		JMP recvack
		JMP recvack
		JMP recvack
		JMP recvack
		JMP recvack
		JMP recvack
		JMP recvack
		JMP recvack
		JMP recvack
		JMP recvack
		JMP recvack
		JMP recvack
		JMP recvack
		JMP recvack
recvack:	RECEIVE r6 @ackkind
.align 16
ackkind:	JMP re_werr             ; 0
		JMP re_werr             ; 1
		JMP re_werr             ; 2
		JMP re_werr             ; 3
		JMP re_werr             ; 4
		JMP re_werr             ; 5
		JMP re_werr             ; 6
ackgot:		TEST r5 @dectbl         ; 7: an ack: decrement the counter
.align 16
dectbl:		JMP re_werr             ; counter 0 cannot receive an ack
		SET r5, 0  -> ackwait
		SET r5, 1  -> ackwait
		SET r5, 2  -> ackwait
		SET r5, 3  -> ackwait
		SET r5, 4  -> ackwait
		SET r5, 5  -> ackwait
		SET r5, 6  -> ackwait
		SET r5, 7  -> ackwait
		SET r5, 8  -> ackwait
		SET r5, 9  -> ackwait
		SET r5, 10 -> ackwait
		SET r5, 11 -> ackwait
		SET r5, 12 -> ackwait
		SET r5, 13 -> ackwait
		SET r5, 14 -> ackwait
re_werr:	SET r15, 15
		HALT
`

// RemoteWriteCounts runs one microcoded read-exclusive transaction at
// the remote engine with nAcks outstanding invalidation acknowledgments
// and reports (instructions retired, whether the CPU grant was emitted
// before the first ack was consumed — the eager-reply property).
func RemoteWriteCounts(nAcks int) (reInstr uint64, eager bool, err error) {
	if nAcks < 0 || nAcks > 15 {
		return 0, false, fmt.Errorf("useq: ack count %d out of range", nAcks)
	}
	p, err := Assemble(WriteProtocol)
	if err != nil {
		return 0, false, err
	}
	re, err := NewEngine(p)
	if err != nil {
		return 0, false, err
	}
	entry, _ := p.Entry("re_write")
	re.Start(0, entry)
	re.Thread(0).Regs[1] = 7
	re.Run(100)
	if len(re.Out) != 1 || re.Out[0].Type != 4 {
		return 0, false, fmt.Errorf("useq: request not sent: %+v", re.Out)
	}
	// The home grants exclusivity eagerly, with nAcks acks to follow.
	if err := re.Deliver(Message{Thread: 0, Type: 6, Arg: uint8(nAcks)}); err != nil {
		return 0, false, err
	}
	re.Run(100)
	// The CPU grant (local send) must already be out.
	eager = len(re.Out) >= 2 && re.Out[1].Local && re.Out[1].Type == 2
	for i := 0; i < nAcks; i++ {
		if err := re.Deliver(Message{Thread: 0, Type: 7, Arg: 0}); err != nil {
			return 0, false, err
		}
		re.Run(100)
	}
	if !re.Thread(0).Halted {
		return 0, false, fmt.Errorf("useq: write transaction did not complete")
	}
	return re.Thread(0).Executed, eager, nil
}

// RemoteReadCounts runs one microcoded remote-read transaction end to end
// across a remote and a home engine and reports the instruction counts
// (the paper: four instructions at the remote engine) plus the microcode
// store usage.
func RemoteReadCounts() (reInstr, heInstr uint64, storeWords int, err error) {
	p, err := Assemble(ReferenceProtocol)
	if err != nil {
		return 0, 0, 0, err
	}
	re, err := NewEngine(p)
	if err != nil {
		return 0, 0, 0, err
	}
	he, _ := NewEngine(p)
	reEntry, _ := p.Entry("re_read")
	heEntry, _ := p.Entry("he_read")

	re.Start(0, reEntry)
	re.Thread(0).Regs[1] = 7
	re.Run(100)
	if len(re.Out) != 1 {
		return 0, 0, 0, fmt.Errorf("useq: requester emitted %d messages", len(re.Out))
	}
	he.Start(0, heEntry)
	he.Thread(0).Regs[1] = re.Out[0].Arg
	he.Run(100)
	if err := he.Deliver(Message{Thread: 0, Type: 0, Arg: 9, Local: true}); err != nil {
		return 0, 0, 0, err
	}
	he.Run(100)
	if err := re.Deliver(Message{Thread: 0, Type: 2, Arg: 9}); err != nil {
		return 0, 0, 0, err
	}
	re.Run(100)
	if !re.Thread(0).Halted || !he.Thread(0).Halted {
		return 0, 0, 0, fmt.Errorf("useq: transaction did not complete")
	}
	return re.Thread(0).Executed, he.Thread(0).Executed, len(p.Words), nil
}
