// Package memctl models Piranha's memory system (paper §2.4): one memory
// controller and direct-Rambus RDRAM channel per L2 bank, eight per chip.
// Each channel supports up to 32 RDRAM devices, sustains 1.6 GB/s, and
// serves a random access in 60 ns to the critical word (plus 30 ns for the
// rest of the cache line), or 40 ns when the access hits a page that the
// controller has kept open. A fully populated chip can have up to 2K
// 512-byte pages open; the controller's main complexity is the policy for
// which pages to keep open and for how long.
package memctl

import (
	"piranha/internal/cache"
	"piranha/internal/fault"
	"piranha/internal/sim"
	"piranha/internal/trace"
)

// Config describes one memory controller + RDRAM channel.
type Config struct {
	// RandomLatency is the closed-page latency to the critical word.
	RandomLatency sim.Time
	// OpenPageLatency is the latency when the page register hits.
	OpenPageLatency sim.Time
	// RestOfLine is the additional time for the full 64-byte line.
	RestOfLine sim.Time
	// BandwidthBytesPerSec is the sustained channel data rate.
	BandwidthBytesPerSec int64
	// PageBytes is the RDRAM page size.
	PageBytes int
	// PageRegisters is the number of independent open-page registers
	// on the channel (devices x banks).
	PageRegisters int
	// CloseTimeout is how long a page stays open without access before
	// the controller closes it (the paper finds ~1 us yields >50% hits
	// on OLTP).
	CloseTimeout sim.Time
}

// DefaultConfig is the prototype channel: 60/40 ns, +30 ns rest-of-line,
// 1.6 GB/s, 512-byte pages, 256 page registers per channel (32 devices x
// 8 banks), 1 us close timeout.
func DefaultConfig() Config {
	return Config{
		RandomLatency:        60 * sim.Nanosecond,
		OpenPageLatency:      40 * sim.Nanosecond,
		RestOfLine:           30 * sim.Nanosecond,
		BandwidthBytesPerSec: 1_600_000_000,
		PageBytes:            512,
		PageRegisters:        256,
		CloseTimeout:         1 * sim.Microsecond,
	}
}

// pageReg is one open-page register.
type pageReg struct {
	page     uint64
	open     bool
	lastUsed sim.Time
}

// Controller is one memory controller + channel.
type Controller struct {
	cfg     Config
	channel *sim.Server
	regs    []pageReg

	tr   *trace.Tracer
	node uint8
	unit int16 // channel index on the chip

	flt *fault.Injector // nil when fault injection is off

	// Stats.
	Reads     uint64
	Writes    uint64
	PageHits  uint64
	PageMiss  uint64
	DirReads  uint64
	DirWrites uint64
}

// SetTracer attaches a tracer (nil disables) stamping events with the
// chip and channel indices.
func (c *Controller) SetTracer(tr *trace.Tracer, node uint8, unit int16) {
	c.tr, c.node, c.unit = tr, node, unit
}

// SetFaults attaches a fault injector (nil disables): line reads roll
// memory bit flips through the SECDED decode path, paying scrub latency
// on correctable errors and mirroring failover on uncorrectable ones.
func (c *Controller) SetFaults(inj *fault.Injector) { c.flt = inj }

// New returns an idle controller.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg, channel: sim.NewServer(1), regs: make([]pageReg, cfg.PageRegisters)}
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// lineOccupancy is the channel time to move one cache line.
func (c *Controller) lineOccupancy() sim.Time {
	return sim.Time(int64(cache.LineBytes) * int64(sim.Second) / c.cfg.BandwidthBytesPerSec)
}

// page returns (register index, page number) for an address.
func (c *Controller) page(a cache.Addr) (int, uint64) {
	p := uint64(a) / uint64(c.cfg.PageBytes)
	return int(p % uint64(len(c.regs))), p
}

// access performs the page-policy bookkeeping and returns the latency to
// the critical word plus the page-policy outcome.
func (c *Controller) access(now sim.Time, a cache.Addr) (sim.Time, bool) {
	ri, p := c.page(a)
	r := &c.regs[ri]
	hit := r.open && r.page == p && now-r.lastUsed <= c.cfg.CloseTimeout
	r.page = p
	r.open = true
	r.lastUsed = now
	if hit {
		c.PageHits++
		return c.cfg.OpenPageLatency, true
	}
	c.PageMiss++
	return c.cfg.RandomLatency, false
}

// Read fetches the line containing a. It returns the time the critical
// word is available (the requester's completion) and the time the full
// line has transferred (the channel stays occupied until then).
func (c *Controller) Read(now sim.Time, a cache.Addr) (critical, full sim.Time) {
	c.Reads++
	lat, hit := c.access(now, a)
	full = c.channel.Acquire(now+lat, c.lineOccupancy())
	critical = full - c.cfg.RestOfLine
	if critical < now+lat {
		critical = now + lat
	}
	if extra := c.flt.MemRead(now, a); extra > 0 {
		// ECC scrub or mirror failover delays both the critical word and
		// line completion; the channel occupancy itself is unchanged.
		critical += extra
		full += extra
	}
	if c.tr != nil {
		k := trace.KPageMiss
		if hit {
			k = trace.KPageHit
		}
		c.tr.Span(trace.Mem, k, c.node, c.unit, uint64(a), now, full, 0)
	}
	return critical, full
}

// Write stores the line containing a; the caller does not wait for
// completion, but the channel occupancy is charged.
func (c *Controller) Write(now sim.Time, a cache.Addr) (done sim.Time) {
	c.Writes++
	lat, _ := c.access(now, a)
	done = c.channel.Acquire(now+lat, c.lineOccupancy())
	c.tr.Span(trace.Mem, trace.KMemWrite, c.node, c.unit, uint64(a), now, done, 0)
	return done
}

// ReadDirectory models fetching a line's directory entry, which lives in
// the same DRAM line's ECC bits: it costs a line read on the channel.
func (c *Controller) ReadDirectory(now sim.Time, a cache.Addr) sim.Time {
	c.DirReads++
	crit, _ := c.Read(now, a)
	return crit
}

// WriteDirectory models writing back an updated directory entry.
func (c *Controller) WriteDirectory(now sim.Time, a cache.Addr) sim.Time {
	c.DirWrites++
	return c.Write(now, a)
}

// HitRate returns the open-page hit fraction so far.
func (c *Controller) HitRate() float64 {
	t := c.PageHits + c.PageMiss
	if t == 0 {
		return 0
	}
	return float64(c.PageHits) / float64(t)
}

// Utilization returns channel busy time over elapsed.
func (c *Controller) Utilization(elapsed sim.Time) float64 {
	return c.channel.Utilization(elapsed)
}
