package memctl

import (
	"testing"

	"piranha/internal/cache"
	"piranha/internal/sim"
)

func TestColdReadLatency(t *testing.T) {
	c := New(DefaultConfig())
	crit, full := c.Read(0, 0x10000)
	// Random access: 60 ns to critical word, +30 ns rest of line...
	// with a 40 ns line occupancy, full = 60+40 = 100 ns and critical =
	// full-30 = 70 ns, no earlier than 60 ns.
	if crit < 60*sim.Nanosecond {
		t.Fatalf("critical word at %d ps, before the 60 ns access", crit)
	}
	if full-crit != 30*sim.Nanosecond {
		t.Fatalf("rest-of-line %d ps, want 30 ns", full-crit)
	}
}

func TestOpenPageHit(t *testing.T) {
	c := New(DefaultConfig())
	c.Read(0, 0x10000)
	// Second access to the same 512-byte page shortly after: open-page
	// latency.
	now := 200 * sim.Nanosecond
	crit, _ := c.Read(now, 0x10040)
	if c.PageHits != 1 {
		t.Fatalf("page hits %d, want 1", c.PageHits)
	}
	if lat := crit - now; lat > 70*sim.Nanosecond {
		t.Fatalf("open-page critical latency %d ps too high", lat)
	}
}

func TestCloseTimeout(t *testing.T) {
	c := New(DefaultConfig())
	c.Read(0, 0x10000)
	// After the 1 us close timeout the page re-opens at full latency.
	c.Read(5*sim.Microsecond, 0x10040)
	if c.PageHits != 0 || c.PageMiss != 2 {
		t.Fatalf("hits=%d miss=%d; timeout not applied", c.PageHits, c.PageMiss)
	}
}

func TestDifferentPagesConflictRegister(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	a := cache.Addr(0)
	// Address on a page that maps to the same register (page + 256
	// pages of 512 bytes).
	b := a + cache.Addr(cfg.PageRegisters*cfg.PageBytes)
	c.Read(0, a)
	c.Read(100*sim.Nanosecond, b) // displaces the open page
	c.Read(200*sim.Nanosecond, a) // must miss again
	if c.PageHits != 0 {
		t.Fatalf("conflicting pages should not hit (hits=%d)", c.PageHits)
	}
}

func TestChannelBandwidthOccupancy(t *testing.T) {
	c := New(DefaultConfig())
	// 64 bytes at 1.6 GB/s = 40 ns occupancy per line. Saturate the
	// channel (arrivals every 40 ns, i.e. 100% of its bandwidth) and
	// the utilization-based queueing model must push back.
	now := sim.Time(0)
	var lastFull sim.Time
	for i := 0; i < 2000; i++ {
		_, lastFull = c.Read(now, cache.Addr(i)<<20)
		now += 40 * sim.Nanosecond
	}
	if lastFull < now+100*sim.Nanosecond {
		t.Fatalf("saturated channel shows no queueing: full=%d now=%d", lastFull, now)
	}
	if u := c.Utilization(now); u < 0.8 {
		t.Fatalf("utilization %v under saturation", u)
	}
	// A lightly-loaded channel adds almost no delay.
	c2 := New(DefaultConfig())
	crit, _ := c2.Read(0, 0)
	if crit > 70*sim.Nanosecond {
		t.Fatalf("idle-channel read took %d ps", crit)
	}
}

func TestWriteAndDirectoryCounters(t *testing.T) {
	c := New(DefaultConfig())
	c.Write(0, 0x100)
	c.ReadDirectory(0, 0x200)
	c.WriteDirectory(0, 0x300)
	if c.Writes != 2 || c.Reads != 1 || c.DirReads != 1 || c.DirWrites != 1 {
		t.Fatalf("counters: %+v", *c)
	}
}

func TestHitRateOLTPLikeStream(t *testing.T) {
	// A stream with strong page locality (sequential lines with some
	// random jumps) should see a high open-page hit rate with the 1 us
	// timeout — the behaviour behind the paper's >50% OLTP result.
	c := New(DefaultConfig())
	r := sim.NewRNG(3)
	now := sim.Time(0)
	a := cache.Addr(0)
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			a = cache.Addr(r.Uint64() % (1 << 30))
		} else {
			a += cache.LineBytes
		}
		c.Read(now, a)
		now += 100 * sim.Nanosecond
	}
	if hr := c.HitRate(); hr < 0.4 {
		t.Fatalf("hit rate %v too low for a local stream", hr)
	}
}

func TestHitRateZeroWhenIdle(t *testing.T) {
	c := New(DefaultConfig())
	if c.HitRate() != 0 {
		t.Fatal("idle hit rate should be 0")
	}
}

func BenchmarkControllerRead(b *testing.B) {
	c := New(DefaultConfig())
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		c.Read(now, cache.Addr(i)<<6)
		now += 100 * sim.Nanosecond
	}
}
