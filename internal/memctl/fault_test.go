package memctl

import (
	"testing"

	"piranha/internal/cache"
	"piranha/internal/fault"
	"piranha/internal/sim"
)

// TestReadChargesScrubLatency: with an every-read single-bit-flip plan,
// each line read completes exactly one scrub later than the fault-free
// baseline, and the page-policy/channel behavior is untouched.
func TestReadChargesScrubLatency(t *testing.T) {
	const scrub = 80 * sim.Nanosecond
	clean := New(DefaultConfig())
	faulty := New(DefaultConfig())
	faulty.SetFaults(fault.New(fault.Plan{MemFlip: 1, ScrubLatency: scrub}, 1))

	now := sim.Time(0)
	for i := 0; i < 64; i++ {
		a := cache.Addr(i * 64 * 17)
		c1, f1 := clean.Read(now, a)
		c2, f2 := faulty.Read(now, a)
		if c2 != c1+scrub || f2 != f1+scrub {
			t.Fatalf("read %d: faulty (%d,%d) vs clean (%d,%d): want +%d", i, c2, f2, c1, f1, scrub)
		}
		now += 2 * sim.Microsecond
	}
	if faulty.PageHits != clean.PageHits || faulty.PageMiss != clean.PageMiss {
		t.Errorf("fault path changed page policy: %d/%d vs %d/%d",
			faulty.PageHits, faulty.PageMiss, clean.PageHits, clean.PageMiss)
	}
}

// TestReadEscalatesToFailover: double-bit errors on a mirrored plan pay
// the mirror latency and count as failovers, not unrecoverables.
func TestReadEscalatesToFailover(t *testing.T) {
	const mirror = 120 * sim.Nanosecond
	inj := fault.New(fault.Plan{MemFlip: 1, MemDoubleFrac: 1, Mirrored: true, MirrorLatency: mirror}, 1)
	clean := New(DefaultConfig())
	faulty := New(DefaultConfig())
	faulty.SetFaults(inj)

	for i := 0; i < 32; i++ {
		a := cache.Addr(i * 4096)
		now := sim.Time(i) * 3 * sim.Microsecond
		c1, _ := clean.Read(now, a)
		c2, _ := faulty.Read(now, a)
		if c2 != c1+mirror {
			t.Fatalf("read %d: critical %d vs clean %d, want +%d", i, c2, c1, mirror)
		}
	}
	s := inj.Collect()
	if s.MemFailovers != 32 || s.MemUnrecoverable != 0 {
		t.Fatalf("failovers=%d fatal=%d, want 32/0", s.MemFailovers, s.MemUnrecoverable)
	}
}
