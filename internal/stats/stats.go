// Package stats collects and renders the metrics the Piranha paper reports:
// execution-time breakdowns (CPU busy / L2-hit stall / L2-miss stall),
// L1-miss service breakdowns (L2 hit / L2 forward / L2 miss), throughput,
// and generic counters and histograms. Rendering produces the ASCII tables
// and bar charts used by cmd/figures to regenerate the paper's figures.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"piranha/internal/sim"
)

// Counter is a named monotonically-increasing event count.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.Value += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Value++ }

// Set is an ordered collection of named counters.
type Set struct {
	order    []string
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]*Counter)}
}

// Get returns the counter with the given name, creating it if needed.
//
//piranha:hotpath
func (s *Set) Get(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Reset zeroes every counter in place, keeping the map and order slice
// so a set can be reused across warm/measure phases without the
// unbounded reallocation Get would otherwise cause per run.
func (s *Set) Reset() {
	for _, c := range s.counters {
		c.Value = 0
	}
}

// Value returns the current value of a counter (zero if absent).
func (s *Set) Value(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value
	}
	return 0
}

// Names returns counter names in creation order.
func (s *Set) Names() []string { return append([]string(nil), s.order...) }

// String renders the set one counter per line.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.order {
		fmt.Fprintf(&b, "%-32s %12d\n", n, s.counters[n].Value)
	}
	return b.String()
}

// Histogram is a fixed-bucket latency/size histogram.
type Histogram struct {
	Name    string
	Bounds  []int64 // upper bounds (inclusive) of all but the last bucket
	Buckets []uint64
	Count   uint64
	Sum     int64
	Min     int64
	Max     int64
}

// NewHistogram returns a histogram with the given inclusive upper bounds.
func NewHistogram(name string, bounds ...int64) *Histogram {
	return &Histogram{
		Name:    name,
		Bounds:  bounds,
		Buckets: make([]uint64, len(bounds)+1),
		Min:     int64(^uint64(0) >> 1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.Bounds), func(i int) bool { return v <= h.Bounds[i] })
	h.Buckets[i]++
	h.Count++
	h.Sum += v
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the sample mean (zero when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// String renders the histogram with proportional bars.
func (h *Histogram) String() string {
	var b strings.Builder
	mn, mx := h.Min, h.Max
	if h.Count == 0 {
		// Min still holds the fresh-histogram sentinel (maxint64); show
		// zeros rather than leaking it into the rendering.
		mn, mx = 0, 0
	}
	fmt.Fprintf(&b, "%s: n=%d mean=%.1f min=%d max=%d\n", h.Name, h.Count, h.Mean(), mn, mx)
	var peak uint64
	for _, v := range h.Buckets {
		if v > peak {
			peak = v
		}
	}
	for i, v := range h.Buckets {
		label := "+Inf"
		if i < len(h.Bounds) {
			label = fmt.Sprintf("%d", h.Bounds[i])
		}
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", int(v*40/peak))
		}
		fmt.Fprintf(&b, "  <=%8s %10d %s\n", label, v, bar)
	}
	return b.String()
}

// Breakdown is the paper's Figure-5-style decomposition of execution time.
type Breakdown struct {
	CPUBusy    sim.Time // instruction execution (and L1 hits)
	L2HitStall sim.Time // stalls served by L2 hit or L2 forward to another L1
	L2Miss     sim.Time // stalls served by memory (local or remote)
	Other      sim.Time // scheduling, idle, I/O wait
}

// Total returns the sum of all components.
func (b Breakdown) Total() sim.Time {
	return b.CPUBusy + b.L2HitStall + b.L2Miss + b.Other
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.CPUBusy += o.CPUBusy
	b.L2HitStall += o.L2HitStall
	b.L2Miss += o.L2Miss
	b.Other += o.Other
}

// Normalized returns each component as a fraction of reference time ref.
func (b Breakdown) Normalized(ref sim.Time) (busy, l2hit, l2miss, other float64) {
	if ref == 0 {
		return
	}
	f := func(t sim.Time) float64 { return float64(t) / float64(ref) }
	return f(b.CPUBusy), f(b.L2HitStall), f(b.L2Miss), f(b.Other)
}

// MissBreakdown is the paper's Figure-6(b) decomposition of L1 misses by
// where they were served.
type MissBreakdown struct {
	L2Hit  uint64 // served by the shared L2
	L2Fwd  uint64 // forwarded to another on-chip L1
	L2Miss uint64 // served by memory (or a remote node)
}

// Total returns the total number of L1 misses.
func (m MissBreakdown) Total() uint64 { return m.L2Hit + m.L2Fwd + m.L2Miss }

// Fractions returns each component as a fraction of the total.
func (m MissBreakdown) Fractions() (hit, fwd, miss float64) {
	t := m.Total()
	if t == 0 {
		return
	}
	return float64(m.L2Hit) / float64(t), float64(m.L2Fwd) / float64(t), float64(m.L2Miss) / float64(t)
}
