package stats

import (
	"testing"

	"piranha/internal/sim"
)

func TestNilSeriesIsNoOp(t *testing.T) {
	var s *Series
	s.AddBusy(0, 100)
	s.AddStall(0, 100)
	s.AddAccess(50, true)
	s.Reset(0)
	if s.Len() != 0 {
		t.Fatalf("nil series Len = %d", s.Len())
	}
}

func TestSeriesSpanSplitAcrossBins(t *testing.T) {
	s := NewSeries(100)
	// Spans 3.5 bins: [50, 400) -> 50 in bin 0, 100 in bins 1-2, 100 in bin 3.
	s.AddBusy(50, 450)
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	want := []sim.Time{50, 100, 100, 100, 50}
	for i, w := range want {
		if s.Bins[i].Busy != w {
			t.Fatalf("bin %d busy = %d, want %d", i, s.Bins[i].Busy, w)
		}
	}
}

func TestSeriesEdgeBins(t *testing.T) {
	s := NewSeries(100)
	// A span ending exactly on a bin edge must not create the next bin.
	s.AddStall(0, 100)
	if s.Len() != 1 {
		t.Fatalf("edge-aligned span created %d bins, want 1", s.Len())
	}
	if s.Bins[0].Stall != 100 {
		t.Fatalf("bin 0 stall = %d, want 100", s.Bins[0].Stall)
	}
	// A span starting exactly on an edge lands wholly in that bin.
	s.AddStall(100, 150)
	if s.Len() != 2 || s.Bins[1].Stall != 50 || s.Bins[0].Stall != 100 {
		t.Fatalf("bins after edge-start span: %+v", s.Bins)
	}
	// An instant on an edge belongs to the later bin.
	s.AddAccess(200, true)
	if s.Len() != 3 || s.Bins[2].Accesses != 1 || s.Bins[2].Misses != 1 {
		t.Fatalf("bins after edge instant: %+v", s.Bins)
	}
	// Zero-length spans record nothing.
	s.AddBusy(250, 250)
	if s.Bins[2].Busy != 0 {
		t.Fatalf("zero-length span recorded busy time")
	}
}

func TestSeriesReset(t *testing.T) {
	s := NewSeries(10)
	s.AddBusy(0, 95)
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	before := cap(s.Bins)
	s.Reset(50)
	if s.Len() != 0 {
		t.Fatalf("Len after reset = %d", s.Len())
	}
	if cap(s.Bins) != before {
		t.Fatalf("Reset dropped the backing array: cap %d -> %d", before, cap(s.Bins))
	}
	// Post-reset spans bucket relative to the new origin; the pre-origin
	// part of a straddling span is clamped off.
	s.AddBusy(45, 65)
	if s.Len() != 2 || s.Bins[0].Busy != 10 || s.Bins[1].Busy != 5 {
		t.Fatalf("series after origin reset: %+v", s.Bins)
	}
	s.AddAccess(55, true)
	if s.Bins[0].Accesses != 1 {
		t.Fatalf("access not bucketed relative to origin: %+v", s.Bins)
	}
}

// TestSeriesDropsPreOriginInstants pins the warm/measure boundary
// semantics: an access or recovery instant from before the origin is
// warm-up activity and must be dropped, not folded into bin 0 (the old
// clamp overcounted the first measured interval).
func TestSeriesDropsPreOriginInstants(t *testing.T) {
	s := NewSeries(100)
	s.Reset(1000) // measurement starts at t=1000

	// In-flight warm-up events completing with pre-origin timestamps.
	s.AddAccess(999, true)
	s.AddRecovery(500, 250)
	if s.Len() != 0 {
		t.Fatalf("pre-origin instants created %d bins, want 0: %+v", s.Len(), s.Bins)
	}

	// The first measured instant lands in bin 0 untainted.
	s.AddAccess(1000, false)
	s.AddRecovery(1050, 30)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	b := s.Bins[0]
	if b.Accesses != 1 || b.Misses != 0 {
		t.Fatalf("bin 0 accesses/misses = %d/%d, want 1/0", b.Accesses, b.Misses)
	}
	if b.Recoveries != 1 || b.RecoveryPs != 30 {
		t.Fatalf("bin 0 recoveries/ps = %d/%d, want 1/30", b.Recoveries, b.RecoveryPs)
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet()
	s.Get("a").Add(3)
	s.Get("b").Inc()
	a := s.Get("a")
	s.Reset()
	if v := s.Value("a"); v != 0 {
		t.Fatalf("a = %d after reset", v)
	}
	if s.Get("a") != a {
		t.Fatal("Reset reallocated counters")
	}
	if got := s.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names after reset: %v", got)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 0.5, 1})
	if len(got) != 3 {
		t.Fatalf("sparkline length = %d", len(got))
	}
	if got[0] != ' ' {
		t.Fatalf("zero value rendered %q, want space", got[0])
	}
	if got[2] != '@' {
		t.Fatalf("peak rendered %q, want '@'", got[2])
	}
	// All-zero input must not divide by zero.
	if z := Sparkline([]float64{0, 0}); z != "  " {
		t.Fatalf("all-zero sparkline = %q", z)
	}
}
