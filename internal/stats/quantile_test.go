package stats

import (
	"math"
	"sort"
	"testing"

	"piranha/internal/sim"
)

// exactQuantile computes the true order statistic the sketch approximates.
func exactQuantile(sorted []int64, p float64) int64 {
	rank := int(p * float64(len(sorted)-1))
	return sorted[rank]
}

// checkAccuracy asserts every headline percentile is within the sketch's
// relative-error bound of the exact order statistic.
func checkAccuracy(t *testing.T, name string, samples []int64) {
	t.Helper()
	q := NewQuantile(name)
	for _, v := range samples {
		q.Observe(v)
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := q.Quantile(p)
		want := exactQuantile(sorted, p)
		// The bucket bound is 2^-5; the rank estimate can additionally
		// land one sample off, so compare against the neighbors too.
		lo, hi := want, want
		if r := int(p * float64(len(sorted)-1)); r > 0 {
			lo = sorted[r-1]
		}
		if r := int(p*float64(len(sorted)-1)) + 1; r < len(sorted) {
			hi = sorted[r+0]
		}
		tol := 1.0 / 32
		if float64(got) < float64(lo)*(1-tol)-1 || float64(got) > float64(hi)*(1+tol)+1 {
			t.Errorf("%s p%g: got %d, exact %d (window [%d,%d], tol %.3f)",
				name, p*100, got, want, lo, hi, tol)
		}
	}
}

func TestQuantileAccuracyUniform(t *testing.T) {
	r := sim.NewRNG(42)
	samples := make([]int64, 20000)
	for i := range samples {
		samples[i] = int64(r.Intn(1_000_000)) + 1
	}
	checkAccuracy(t, "uniform", samples)
}

func TestQuantileAccuracyExponential(t *testing.T) {
	r := sim.NewRNG(43)
	samples := make([]int64, 20000)
	for i := range samples {
		u := r.Float64()
		samples[i] = int64(-math.Log(1-u) * 250_000)
	}
	checkAccuracy(t, "exponential", samples)
}

func TestQuantileAccuracySmallValues(t *testing.T) {
	// Values below 2^5 land in exact unit buckets: quantiles are exact.
	q := NewQuantile("small")
	for v := int64(0); v < 32; v++ {
		q.Observe(v)
	}
	if got := q.Quantile(0.5); got != 15 {
		t.Errorf("p50 of 0..31: got %d, want 15", got)
	}
	if got := q.Quantile(1); got != 31 {
		t.Errorf("p100: got %d, want 31", got)
	}
	if got := q.Quantile(0); got != 0 {
		t.Errorf("p0: got %d, want 0", got)
	}
}

func TestQuantileDeterminism(t *testing.T) {
	build := func() *Quantile {
		r := sim.NewRNG(7)
		q := NewQuantile("d")
		for i := 0; i < 5000; i++ {
			q.Observe(int64(r.Intn(1 << 40)))
		}
		return q
	}
	a, b := build(), build()
	if *a != *b {
		t.Fatal("identical observation sequences produced different sketches")
	}
}

func TestQuantileOrderInvariance(t *testing.T) {
	r := sim.NewRNG(9)
	samples := make([]int64, 4096)
	for i := range samples {
		samples[i] = int64(r.Intn(1 << 30))
	}
	fwd, rev := NewQuantile("x"), NewQuantile("x")
	for _, v := range samples {
		fwd.Observe(v)
	}
	for i := len(samples) - 1; i >= 0; i-- {
		rev.Observe(samples[i])
	}
	if *fwd != *rev {
		t.Fatal("observation order changed sketch state")
	}
}

func TestQuantileMergeOrderInvariance(t *testing.T) {
	r := sim.NewRNG(11)
	parts := make([]*Quantile, 4)
	for i := range parts {
		parts[i] = NewQuantile("part")
		for j := 0; j < 1000*(i+1); j++ {
			parts[i].Observe(int64(r.Intn(1 << 35)))
		}
	}
	ab := NewQuantile("m")
	for _, p := range parts {
		ab.Merge(p)
	}
	ba := NewQuantile("m")
	for i := len(parts) - 1; i >= 0; i-- {
		ba.Merge(parts[i])
	}
	if *ab != *ba {
		t.Fatal("merge order changed sketch state")
	}
	// Merging must equal observing the union directly.
	var total uint64
	for _, p := range parts {
		total += p.Count()
	}
	if ab.Count() != total {
		t.Fatalf("merged count %d, want %d", ab.Count(), total)
	}
}

func TestQuantileEmptySentinel(t *testing.T) {
	q := NewQuantile("empty")
	if q.Count() != 0 || q.Min() != 0 || q.Max() != 0 || q.Mean() != 0 {
		t.Errorf("empty sketch leaks sentinels: %s", q)
	}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := q.Quantile(p); got != 0 {
			t.Errorf("empty p%g = %d, want 0", p*100, got)
		}
	}
	if s := q.String(); s != "empty: n=0 mean=0.0 min=0 max=0" {
		t.Errorf("empty String = %q", s)
	}
	// Merging an empty sketch is a no-op.
	o := NewQuantile("o")
	o.Observe(100)
	before := *o
	o.Merge(q)
	if *o != before {
		t.Error("merging an empty sketch changed state")
	}
}

func TestQuantileMonotone(t *testing.T) {
	r := sim.NewRNG(13)
	q := NewQuantile("mono")
	for i := 0; i < 10000; i++ {
		q.Observe(int64(r.Intn(1 << 45)))
	}
	prev := int64(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		v := q.Quantile(p)
		if v < prev {
			t.Fatalf("quantile not monotone: p=%.2f gives %d < %d", p, v, prev)
		}
		prev = v
	}
}

func TestQuantileNegativeClamp(t *testing.T) {
	q := NewQuantile("neg")
	q.Observe(-50)
	if q.Min() != 0 || q.Max() != 0 || q.Count() != 1 {
		t.Errorf("negative sample not clamped: %s", q)
	}
}

func TestQuantileReset(t *testing.T) {
	q := NewQuantile("r")
	q.Observe(12345)
	q.Reset()
	fresh := NewQuantile("r")
	if *q != *fresh {
		t.Error("Reset did not restore fresh state")
	}
}

func TestQuantileBucketBounds(t *testing.T) {
	// Every representative value must land in a bucket whose upper bound
	// is ≥ the value and within the relative-error contract.
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 65, 1000, 1 << 20, 1<<40 + 12345, 1<<62 + 999} {
		b := qBucket(v)
		up := qUpper(b)
		if up < v {
			t.Errorf("v=%d: bucket upper bound %d below value", v, up)
		}
		if v >= 32 && float64(up-v) > float64(v)/32+1 {
			t.Errorf("v=%d: bucket upper bound %d exceeds error contract", v, up)
		}
		if b > 0 && qUpper(b-1) >= v {
			t.Errorf("v=%d: previous bucket %d upper bound %d also covers value", v, b-1, qUpper(b-1))
		}
	}
}
