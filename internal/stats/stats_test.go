package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"piranha/internal/sim"
)

func TestCounterSet(t *testing.T) {
	s := NewSet()
	s.Get("a").Inc()
	s.Get("b").Add(5)
	s.Get("a").Add(2)
	if s.Value("a") != 3 || s.Value("b") != 5 {
		t.Fatalf("values a=%d b=%d", s.Value("a"), s.Value("b"))
	}
	if s.Value("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("creation order lost: %v", names)
	}
	if !strings.Contains(s.String(), "a") {
		t.Fatal("String() missing counter")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("lat", 10, 100, 1000)
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count != 5 {
		t.Fatalf("count %d", h.Count)
	}
	want := []uint64{2, 2, 0, 1}
	for i, w := range want {
		if h.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Buckets[i], w)
		}
	}
	if h.Min != 5 || h.Max != 5000 {
		t.Fatalf("min/max %d/%d", h.Min, h.Max)
	}
	if h.Mean() != (5+10+11+100+5000)/5.0 {
		t.Fatalf("mean %v", h.Mean())
	}
	if !strings.Contains(h.String(), "lat") {
		t.Fatal("render missing name")
	}
}

// TestZeroInputEdges sweeps the zero/empty-input corners of the
// package's reducers and renderers in one table: none may panic, divide
// by zero, or leak an internal sentinel into output.
func TestZeroInputEdges(t *testing.T) {
	cases := []struct {
		name  string
		check func(t *testing.T)
	}{
		{"histogram mean empty", func(t *testing.T) {
			h := NewHistogram("e", 10)
			if m := h.Mean(); m != 0 {
				t.Fatalf("empty Mean = %v, want 0", m)
			}
		}},
		{"histogram string empty", func(t *testing.T) {
			s := NewHistogram("e", 10).String()
			if !strings.Contains(s, "n=0 mean=0.0 min=0 max=0") {
				t.Fatalf("empty histogram renders %q; the Min sentinel leaked", s)
			}
		}},
		{"breakdown normalized zero ref", func(t *testing.T) {
			b := Breakdown{CPUBusy: 100}
			busy, hit, miss, other := b.Normalized(0)
			if busy != 0 || hit != 0 || miss != 0 || other != 0 {
				t.Fatalf("Normalized(0) = %v %v %v %v, want zeros", busy, hit, miss, other)
			}
		}},
		{"miss breakdown empty", func(t *testing.T) {
			hit, fwd, miss := MissBreakdown{}.Fractions()
			if hit != 0 || fwd != 0 || miss != 0 {
				t.Fatalf("empty Fractions = %v %v %v", hit, fwd, miss)
			}
		}},
		{"sparkline all zero", func(t *testing.T) {
			if got := Sparkline([]float64{0, 0, 0}); got != "   " {
				t.Fatalf("all-zero sparkline = %q, want spaces", got)
			}
		}},
		{"series fracs all zero", func(t *testing.T) {
			s := NewSeries(100)
			s.AddBusy(0, 0)  // records nothing
			s.AddAccess(50, false)
			for i, f := range s.BusyFracs() {
				if f != 0 {
					t.Fatalf("BusyFracs[%d] = %v on zero busy+stall", i, f)
				}
			}
			for i, r := range s.MissRates() {
				if r != 0 {
					t.Fatalf("MissRates[%d] = %v with zero misses", i, r)
				}
			}
		}},
		{"empty series string", func(t *testing.T) {
			if out := NewSeries(100).String(); out != "" {
				t.Fatalf("empty series renders %q, want empty", out)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.check)
	}
}

func TestHistogramBucketsProperty(t *testing.T) {
	f := func(vals []int16) bool {
		h := NewHistogram("p", 0, 50, 500)
		var n uint64
		for _, v := range vals {
			h.Observe(int64(v))
			n++
		}
		var sum uint64
		for _, b := range h.Buckets {
			sum += b
		}
		return sum == n && h.Count == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{CPUBusy: 100, L2HitStall: 50, L2Miss: 30, Other: 20}
	if b.Total() != 200 {
		t.Fatalf("total %d", b.Total())
	}
	busy, hit, miss, other := b.Normalized(200)
	if busy != 0.5 || hit != 0.25 || miss != 0.15 || other != 0.1 {
		t.Fatalf("normalized %v %v %v %v", busy, hit, miss, other)
	}
	var acc Breakdown
	acc.Add(b)
	acc.Add(b)
	if acc.Total() != 400 {
		t.Fatalf("accumulated total %d", acc.Total())
	}
	var zero Breakdown
	if a, _, _, _ := zero.Normalized(0); a != 0 {
		t.Fatal("zero ref should normalize to zero")
	}
	_ = sim.Time(0)
}

func TestMissBreakdown(t *testing.T) {
	m := MissBreakdown{L2Hit: 60, L2Fwd: 20, L2Miss: 20}
	hit, fwd, miss := m.Fractions()
	if hit != 0.6 || fwd != 0.2 || miss != 0.2 {
		t.Fatalf("fractions %v %v %v", hit, fwd, miss)
	}
	var empty MissBreakdown
	if h, f, ms := empty.Fractions(); h+f+ms != 0 {
		t.Fatal("empty fractions should be zero")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Params", "Name", "Value")
	tb.AddRow("speed", 500)
	tb.AddRow("ratio", 2.9)
	out := tb.String()
	if !strings.Contains(out, "Params") || !strings.Contains(out, "2.90") {
		t.Fatalf("table render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestStackedBars(t *testing.T) {
	sb := &StackedBars{Title: "Fig5", SegNames: []string{"busy", "l2", "mem"}}
	sb.AddBar("OOO", 0.5, 0.3, 0.2)
	sb.AddBar("P8", 0.2, 0.1, 0.05)
	out := sb.String()
	if !strings.Contains(out, "OOO") || !strings.Contains(out, "legend") {
		t.Fatalf("bars render:\n%s", out)
	}
	// The OOO bar (total 1.0) must be longer than the P8 bar (0.35).
	var oooLen, p8Len int
	for _, l := range strings.Split(out, "\n") {
		n := strings.Count(l, "#") + strings.Count(l, "=") + strings.Count(l, ".")
		if strings.HasPrefix(l, "OOO") {
			oooLen = n
		}
		if strings.HasPrefix(l, "P8") {
			p8Len = n
		}
	}
	if oooLen <= p8Len {
		t.Fatalf("bar lengths OOO=%d P8=%d", oooLen, p8Len)
	}
}
