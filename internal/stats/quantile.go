package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Quantile is a deterministic streaming quantile sketch for non-negative
// int64 samples (latencies in picoseconds). It is the tail-latency
// counterpart to Histogram: where Histogram reports a mean over a handful
// of caller-chosen buckets, Quantile answers p50/p90/p99/p999 queries
// with a bounded relative error, from a fixed-size structure.
//
// The sketch is HDR-histogram-style log-linear: values below 2^subBits
// land in exact unit buckets; above that, each power-of-two octave is
// split into 2^subBits sub-buckets, bounding the relative error of any
// reported quantile by 2^-subBits (~3.1%). All state is integer counts,
// so Observe order never changes the result and Merge is associative and
// commutative — two sketches merged in either order are bit-identical.
// No floating point touches the stored state; float enters only when a
// quantile rank is computed from a caller-supplied p.
type Quantile struct {
	Name    string
	count   uint64
	sum     int64
	min     int64
	max     int64
	buckets [nQBuckets]uint64
}

const (
	qSubBits  = 5
	qSubCount = 1 << qSubBits // 32 sub-buckets per octave
	// Highest exponent group: values up to 2^63-1 have bit length 63,
	// giving exp = 63 - (qSubBits+1) = 57, so groups 0..57 exist above
	// the exact region.
	nQBuckets = (64 - qSubBits) * qSubCount
)

// NewQuantile returns an empty sketch.
func NewQuantile(name string) *Quantile {
	return &Quantile{Name: name, min: int64(^uint64(0) >> 1)}
}

// qBucket maps a sample to its bucket index.
func qBucket(v int64) int {
	u := uint64(v)
	if u < qSubCount {
		return int(u)
	}
	exp := bits.Len64(u) - qSubBits - 1
	// u>>exp is in [qSubCount, 2*qSubCount); group exp occupies indices
	// [(exp+1)*qSubCount, (exp+2)*qSubCount).
	return exp*qSubCount + int(u>>uint(exp))
}

// qUpper returns the largest value mapping to bucket i.
func qUpper(i int) int64 {
	if i < qSubCount {
		return int64(i)
	}
	exp := i/qSubCount - 1
	sub := i%qSubCount + qSubCount
	return int64(uint64(sub+1)<<uint(exp) - 1)
}

// Observe records one sample. Negative samples are clamped to zero: the
// only way a latency goes negative is a bug upstream, and a poisoned
// sketch would hide it less visibly than a fat zero bucket.
func (q *Quantile) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	q.buckets[qBucket(v)]++
	q.count++
	q.sum += v
	if v < q.min {
		q.min = v
	}
	if v > q.max {
		q.max = v
	}
}

// Merge folds another sketch's samples into q. Merging in any order
// yields identical state.
func (q *Quantile) Merge(o *Quantile) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.buckets {
		q.buckets[i] += c
	}
	q.count += o.count
	q.sum += o.sum
	if o.min < q.min {
		q.min = o.min
	}
	if o.max > q.max {
		q.max = o.max
	}
}

// Count returns the number of samples observed.
func (q *Quantile) Count() uint64 { return q.count }

// Sum returns the exact sum of all samples.
func (q *Quantile) Sum() int64 { return q.sum }

// Mean returns the exact sample mean (zero when empty).
func (q *Quantile) Mean() float64 {
	if q.count == 0 {
		return 0
	}
	return float64(q.sum) / float64(q.count)
}

// Min returns the smallest sample (zero when empty).
func (q *Quantile) Min() int64 {
	if q.count == 0 {
		return 0
	}
	return q.min
}

// Max returns the largest sample (zero when empty).
func (q *Quantile) Max() int64 { return q.max }

// Quantile returns an upper bound for the p-quantile (0 ≤ p ≤ 1) with
// relative error at most 2^-qSubBits. An empty sketch reports zero — the
// same sentinel discipline as Histogram.String, which renders zeros
// rather than leaking the fresh-state min.
func (q *Quantile) Quantile(p float64) int64 {
	if q.count == 0 {
		return 0
	}
	if p <= 0 {
		return q.min
	}
	if p >= 1 {
		return q.max
	}
	// 0-based rank of the requested order statistic.
	rank := uint64(p * float64(q.count-1))
	var cum uint64
	for i, c := range q.buckets {
		cum += c
		if cum > rank {
			v := qUpper(i)
			if v > q.max {
				v = q.max
			}
			if v < q.min {
				v = q.min
			}
			return v
		}
	}
	return q.max
}

// Reset discards all samples in place.
func (q *Quantile) Reset() {
	*q = Quantile{Name: q.Name, min: int64(^uint64(0) >> 1)}
}

// String renders the headline percentiles on one line.
func (q *Quantile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%.1f min=%d max=%d", q.Name, q.count, q.Mean(), q.Min(), q.Max())
	if q.count > 0 {
		fmt.Fprintf(&b, " p50=%d p90=%d p99=%d p999=%d",
			q.Quantile(0.50), q.Quantile(0.90), q.Quantile(0.99), q.Quantile(0.999))
	}
	return b.String()
}
