package stats

import (
	"fmt"
	"strings"

	"piranha/internal/sim"
)

// Series is a per-interval time-series sampler: the simulation's busy
// time, stall time, and L1-miss traffic bucketed into fixed windows of
// simulated time. It is the interval-metrics half of the tracing
// subsystem — where a trace answers "what was cpu 3 doing at 41 µs",
// the series answers "how did machine-wide busyness evolve".
//
// Like *trace.Tracer, the nil *Series is the disabled sampler: every
// recording method is a nil-safe no-op, so instrumented components hold
// a possibly-nil pointer and call it unconditionally.
type Series struct {
	// Interval is the bin width in simulated time.
	Interval sim.Time `json:"interval_ps"`
	// Origin is the simulated time of bin 0's left edge; the measurement
	// phase sets it at the warm/measure boundary so bins cover only the
	// measured window.
	Origin sim.Time `json:"origin_ps"`
	// Bins holds one entry per elapsed interval, index i covering
	// simulated time [Origin+i*Interval, Origin+(i+1)*Interval).
	Bins []Bin `json:"bins"`
}

// Bin aggregates one interval's activity. The fault-recovery fields are
// omitempty so fault-free runs serialize exactly as before.
type Bin struct {
	Busy     sim.Time `json:"busy_ps"`  // cpu execution (incl. L1 hits)
	Stall    sim.Time `json:"stall_ps"` // cpu stalled on the memory system
	Accesses uint64   `json:"accesses"` // L1 probes
	Misses   uint64   `json:"misses"`   // L1 misses

	Recoveries uint64   `json:"recoveries,omitempty"`  // TSRF timeout recoveries completed
	RecoveryPs sim.Time `json:"recovery_ps,omitempty"` // time those transactions spent recovering

	// Open-loop arrival accounting (omitempty: closed-loop runs
	// serialize exactly as before).
	Arrivals uint64 `json:"arrivals,omitempty"` // transactions offered this interval
	Admitted uint64 `json:"admitted,omitempty"` // accepted into the admission queue
	Shed     uint64 `json:"shed,omitempty"`     // dropped by the bounded-queue shed policy

	// Completions counts open-loop transactions finishing this interval
	// — the per-bin throughput timeline a fail-stop campaign reads its
	// pre-fault vs. post-recovery rates from.
	Completions uint64 `json:"completions,omitempty"`
}

// NewSeries returns a sampler with the given bin width (which must be
// positive).
func NewSeries(interval sim.Time) *Series {
	if interval <= 0 {
		panic("stats: non-positive series interval")
	}
	return &Series{Interval: interval}
}

// ensure grows Bins to include index i and returns it.
func (s *Series) ensure(i int) *Bin {
	for len(s.Bins) <= i {
		s.Bins = append(s.Bins, Bin{})
	}
	return &s.Bins[i]
}

// addSpan distributes [start, end) across the bins it overlaps. A span
// straddling a bin edge is split proportionally, so per-bin totals are
// exact regardless of span length.
func (s *Series) addSpan(start, end sim.Time, busy bool) {
	if s == nil || end <= start {
		return
	}
	if start < s.Origin {
		start = s.Origin
		if end <= start {
			return
		}
	}
	start -= s.Origin
	end -= s.Origin
	for b := start / s.Interval; start < end; b++ {
		edge := (b + 1) * s.Interval
		if edge > end {
			edge = end
		}
		bin := s.ensure(int(b))
		if busy {
			bin.Busy += edge - start
		} else {
			bin.Stall += edge - start
		}
		start = edge
	}
}

// AddBusy records cpu execution time over [start, end).
func (s *Series) AddBusy(start, end sim.Time) { s.addSpan(start, end, true) }

// AddStall records cpu stall time over [start, end).
func (s *Series) AddStall(start, end sim.Time) { s.addSpan(start, end, false) }

// AddAccess records one L1 probe at the given instant (an instant on a
// bin edge belongs to the later bin). Instants before the origin are
// dropped: they belong to the warm-up phase, and folding them into bin
// 0 would overcount the first measured window — unlike spans, an
// instant has no measurable overlap with the measured region.
func (s *Series) AddAccess(at sim.Time, miss bool) {
	if s == nil {
		return
	}
	if at < s.Origin {
		return
	}
	bin := s.ensure(int((at - s.Origin) / s.Interval))
	bin.Accesses++
	if miss {
		bin.Misses++
	}
}

// AddRecovery records one TSRF timeout recovery completing at the given
// instant, with the latency the transaction spent wedged. Pre-origin
// instants are dropped, as in AddAccess.
func (s *Series) AddRecovery(at, latency sim.Time) {
	if s == nil {
		return
	}
	if at < s.Origin {
		return
	}
	bin := s.ensure(int((at - s.Origin) / s.Interval))
	bin.Recoveries++
	bin.RecoveryPs += latency
}

// AddArrival records one open-loop transaction arrival at the given
// instant; shed marks arrivals dropped by the admission queue's bound.
// Pre-origin instants are dropped, as in AddAccess.
func (s *Series) AddArrival(at sim.Time, shed bool) {
	if s == nil {
		return
	}
	if at < s.Origin {
		return
	}
	bin := s.ensure(int((at - s.Origin) / s.Interval))
	bin.Arrivals++
	if shed {
		bin.Shed++
	} else {
		bin.Admitted++
	}
}

// AddCompletion records one open-loop transaction completing at the
// given instant. Pre-origin instants are dropped, as in AddAccess.
func (s *Series) AddCompletion(at sim.Time) {
	if s == nil {
		return
	}
	if at < s.Origin {
		return
	}
	bin := s.ensure(int((at - s.Origin) / s.Interval))
	bin.Completions++
}

// Reset discards all bins in place (keeping the backing array) and
// restarts bin 0 at the given origin time.
func (s *Series) Reset(origin sim.Time) {
	if s == nil {
		return
	}
	s.Bins = s.Bins[:0]
	s.Origin = origin
}

// Len returns the number of elapsed intervals.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Bins)
}

// sparkRamp is the pure-ASCII intensity ramp used for sparklines.
const sparkRamp = " .:-=+*#@"

// Sparkline renders values as one character each, scaled to the peak.
func Sparkline(values []float64) string {
	var peak float64
	for _, v := range values {
		if v > peak {
			peak = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		i := 0
		if peak > 0 && v > 0 {
			i = 1 + int(v/peak*float64(len(sparkRamp)-2))
			if i > len(sparkRamp)-1 {
				i = len(sparkRamp) - 1
			}
		}
		b.WriteByte(sparkRamp[i])
	}
	return b.String()
}

// BusyFracs returns per-bin busy/(busy+stall) fractions.
func (s *Series) BusyFracs() []float64 {
	out := make([]float64, s.Len())
	for i, b := range s.Bins {
		if t := b.Busy + b.Stall; t > 0 {
			out[i] = float64(b.Busy) / float64(t)
		}
	}
	return out
}

// MissRates returns per-bin miss/access ratios.
func (s *Series) MissRates() []float64 {
	out := make([]float64, s.Len())
	for i, b := range s.Bins {
		if b.Accesses > 0 {
			out[i] = float64(b.Misses) / float64(b.Accesses)
		}
	}
	return out
}

// busyValues returns raw per-bin busy time for load sparklines.
func (s *Series) busyValues() []float64 {
	out := make([]float64, s.Len())
	for i, b := range s.Bins {
		out[i] = float64(b.Busy)
	}
	return out
}

// String renders the series as labeled ASCII sparklines, one char per
// interval.
func (s *Series) String() string {
	if s.Len() == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "interval %gus x %d bins\n", float64(s.Interval)/float64(sim.Microsecond), s.Len())
	fmt.Fprintf(&b, "  busy      |%s|\n", Sparkline(s.busyValues()))
	fmt.Fprintf(&b, "  busy frac |%s|\n", Sparkline(s.BusyFracs()))
	fmt.Fprintf(&b, "  miss rate |%s|\n", Sparkline(s.MissRates()))
	if vals, any := s.recoveryValues(); any {
		fmt.Fprintf(&b, "  recovery  |%s|\n", Sparkline(vals))
	}
	if vals, any := s.arrivalValues(); any {
		fmt.Fprintf(&b, "  arrivals  |%s|\n", Sparkline(vals))
	}
	if vals, any := s.completionValues(); any {
		fmt.Fprintf(&b, "  completes |%s|\n", Sparkline(vals))
	}
	return b.String()
}

// recoveryValues returns per-bin recovery counts and whether any bin saw
// a recovery (fault-free runs keep the String output unchanged).
func (s *Series) recoveryValues() ([]float64, bool) {
	out := make([]float64, s.Len())
	any := false
	for i, b := range s.Bins {
		out[i] = float64(b.Recoveries)
		if b.Recoveries > 0 {
			any = true
		}
	}
	return out, any
}

// arrivalValues returns per-bin arrival counts and whether any bin saw
// an arrival (closed-loop runs keep the String output unchanged).
func (s *Series) arrivalValues() ([]float64, bool) {
	out := make([]float64, s.Len())
	any := false
	for i, b := range s.Bins {
		out[i] = float64(b.Arrivals)
		if b.Arrivals > 0 {
			any = true
		}
	}
	return out, any
}

// completionValues returns per-bin completion counts and whether any bin
// saw one (closed-loop runs keep the String output unchanged).
func (s *Series) completionValues() ([]float64, bool) {
	out := make([]float64, s.Len())
	any := false
	for i, b := range s.Bins {
		out[i] = float64(b.Completions)
		if b.Completions > 0 {
			any = true
		}
	}
	return out, any
}
