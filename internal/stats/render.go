package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned ASCII tables for cmd/figures output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// StackedBars renders a Figure-5/6-style stacked horizontal bar chart.
// Each bar is a labeled sequence of segments whose widths are proportional
// to their values; the segment glyphs cycle through segGlyphs.
type StackedBars struct {
	Title    string
	SegNames []string
	bars     []stackedBar
	// Scale is the value corresponding to a full-width (60 char) bar.
	// Zero means auto-scale to the largest bar.
	Scale float64
}

type stackedBar struct {
	label string
	segs  []float64
}

var segGlyphs = []byte{'#', '=', '.', '~', '+', '%'}

// AddBar appends a bar with one value per segment name.
func (s *StackedBars) AddBar(label string, segs ...float64) {
	s.bars = append(s.bars, stackedBar{label: label, segs: segs})
}

// String renders the chart.
func (s *StackedBars) String() string {
	const width = 60
	scale := s.Scale
	if scale == 0 {
		for _, b := range s.bars {
			t := 0.0
			for _, v := range b.segs {
				t += v
			}
			if t > scale {
				scale = t
			}
		}
	}
	if scale == 0 {
		scale = 1
	}
	labelW := 0
	for _, b := range s.bars {
		if len(b.label) > labelW {
			labelW = len(b.label)
		}
	}
	var out strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&out, "%s\n", s.Title)
	}
	if len(s.SegNames) > 0 {
		fmt.Fprintf(&out, "%*s  legend:", labelW, "")
		for i, n := range s.SegNames {
			fmt.Fprintf(&out, " [%c]=%s", segGlyphs[i%len(segGlyphs)], n)
		}
		out.WriteByte('\n')
	}
	for _, b := range s.bars {
		total := 0.0
		fmt.Fprintf(&out, "%-*s  ", labelW, b.label)
		for i, v := range b.segs {
			n := int(v / scale * width)
			out.Write(bytesRepeat(segGlyphs[i%len(segGlyphs)], n))
			total += v
		}
		fmt.Fprintf(&out, "  %.2f\n", total)
	}
	return out.String()
}

func bytesRepeat(c byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return b
}
