package stats

import (
	"fmt"
	"strings"

	"piranha/internal/sim"
)

// SLO is a per-window service-level-objective accountant: every
// completed transaction either met the latency target or violated it,
// every final shed counts as a violation (the client got nothing), and
// the totals roll up into the three production-serving numbers — SLO
// violation rate, goodput, and error-budget burn. Windows are fixed
// spans of simulated time anchored at the measurement origin, so the
// per-window series shows exactly when a fault's latency wake blew the
// budget and when recovery pulled it back.
//
// Like *Series, the nil *SLO is the disabled accountant: every recording
// method is a nil-safe no-op.
type SLO struct {
	// Target is the latency objective: a completion slower than this is
	// a violation.
	Target sim.Time `json:"target_ps"`
	// Window is the accounting window width in simulated time.
	Window sim.Time `json:"window_ps"`
	// Budget is the tolerated violation fraction (the error budget);
	// BudgetBurn reports ViolationRate/Budget, >1 meaning the budget is
	// exhausted.
	Budget float64 `json:"budget"`
	// Origin anchors window 0's left edge (the warm/measure boundary).
	Origin sim.Time `json:"origin_ps"`

	// Completed/Violations/Shed are run totals; Windows holds the same
	// counts bucketed per window.
	Completed  uint64      `json:"completed"`
	Violations uint64      `json:"violations"`
	Shed       uint64      `json:"shed"`
	Windows    []SLOWindow `json:"windows"`
}

// SLOWindow is one accounting window's counts.
type SLOWindow struct {
	Completed  uint64 `json:"completed"`
	Violations uint64 `json:"violations"`
	Shed       uint64 `json:"shed"`
}

// NewSLO returns an accountant for the given latency target, window
// width, and error budget. A non-positive window defaults to 50 µs; a
// non-positive budget defaults to 10%.
func NewSLO(target, window sim.Time, budget float64) *SLO {
	if target <= 0 {
		panic("stats: non-positive SLO target")
	}
	if window <= 0 {
		window = 50 * sim.Microsecond
	}
	if budget <= 0 {
		budget = 0.1
	}
	return &SLO{Target: target, Window: window, Budget: budget}
}

// window grows Windows to include the window covering at.
func (s *SLO) window(at sim.Time) *SLOWindow {
	i := 0
	if at > s.Origin {
		i = int((at - s.Origin) / s.Window)
	}
	for len(s.Windows) <= i {
		s.Windows = append(s.Windows, SLOWindow{})
	}
	return &s.Windows[i]
}

// Observe records one completion at time at with the given end-to-end
// latency.
func (s *SLO) Observe(at, lat sim.Time) {
	if s == nil {
		return
	}
	w := s.window(at)
	s.Completed++
	w.Completed++
	if lat > s.Target {
		s.Violations++
		w.Violations++
	}
}

// ObserveShed records one transaction dropped for good at time at: the
// client saw an error, which burns budget like a violation.
func (s *SLO) ObserveShed(at sim.Time) {
	if s == nil {
		return
	}
	s.Shed++
	s.window(at).Shed++
}

// Reset clears the counters and windows and re-anchors window 0 at
// origin (the warm/measure boundary).
func (s *SLO) Reset(origin sim.Time) {
	if s == nil {
		return
	}
	s.Completed, s.Violations, s.Shed = 0, 0, 0
	s.Windows = s.Windows[:0]
	s.Origin = origin
}

// ViolationRate returns (violations+sheds)/(completions+sheds) — the
// fraction of offered-and-settled transactions that missed the SLO.
func (s *SLO) ViolationRate() float64 {
	if s == nil {
		return 0
	}
	n := s.Completed + s.Shed
	if n == 0 {
		return 0
	}
	return float64(s.Violations+s.Shed) / float64(n)
}

// BudgetBurn returns ViolationRate normalized by the error budget; a
// value above 1 means the budget is spent.
func (s *SLO) BudgetBurn() float64 {
	if s == nil || s.Budget <= 0 {
		return 0
	}
	return s.ViolationRate() / s.Budget
}

// Goodput returns SLO-compliant completions per second of simulated
// time over span.
func (s *SLO) Goodput(span sim.Time) float64 {
	if s == nil || span <= 0 {
		return 0
	}
	return float64(s.Completed-s.Violations) / (float64(span) / float64(sim.Second))
}

// String renders the totals plus a per-window violation sparkline.
func (s *SLO) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "slo: target=%.1fus completed=%d violations=%d shed=%d rate=%.2f%% burn=%.2fx",
		float64(s.Target)/float64(sim.Microsecond),
		s.Completed, s.Violations, s.Shed,
		100*s.ViolationRate(), s.BudgetBurn())
	if len(s.Windows) > 0 {
		vals := make([]float64, len(s.Windows))
		for i, w := range s.Windows {
			if n := w.Completed + w.Shed; n > 0 {
				vals[i] = float64(w.Violations+w.Shed) / float64(n)
			}
		}
		fmt.Fprintf(&b, "\n  violation |%s|", Sparkline(vals))
	}
	return b.String()
}
