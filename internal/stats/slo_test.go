package stats

import (
	"strings"
	"testing"

	"piranha/internal/sim"
)

func TestSLOAccounting(t *testing.T) {
	s := NewSLO(10*sim.Microsecond, 100*sim.Microsecond, 0.1)
	s.Observe(5*sim.Microsecond, 8*sim.Microsecond)    // met
	s.Observe(150*sim.Microsecond, 20*sim.Microsecond) // violated, window 1
	s.ObserveShed(160 * sim.Microsecond)               // window 1
	if s.Completed != 2 || s.Violations != 1 || s.Shed != 1 {
		t.Fatalf("totals: %+v", s)
	}
	// rate = (1 violation + 1 shed) / (2 completed + 1 shed)
	if got := s.ViolationRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("violation rate %v", got)
	}
	if burn := s.BudgetBurn(); burn < 6.6 || burn > 6.7 {
		t.Fatalf("budget burn %v", burn)
	}
	// goodput = 1 compliant completion over 1 ms
	if g := s.Goodput(sim.Millisecond); g != 1000 {
		t.Fatalf("goodput %v", g)
	}
	if len(s.Windows) != 2 || s.Windows[0].Completed != 1 || s.Windows[1].Shed != 1 {
		t.Fatalf("windows: %+v", s.Windows)
	}
}

func TestSLOResetReanchors(t *testing.T) {
	s := NewSLO(10*sim.Microsecond, 50*sim.Microsecond, 0)
	s.Observe(5*sim.Microsecond, 1*sim.Microsecond)
	s.Reset(200 * sim.Microsecond)
	if s.Completed != 0 || len(s.Windows) != 0 || s.Origin != 200*sim.Microsecond {
		t.Fatalf("reset incomplete: %+v", s)
	}
	s.Observe(210*sim.Microsecond, 1*sim.Microsecond)
	if len(s.Windows) != 1 {
		t.Fatalf("post-reset observation landed in window %d", len(s.Windows)-1)
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Observe(1, 2)
	s.ObserveShed(1)
	s.Reset(0)
	if s.ViolationRate() != 0 || s.BudgetBurn() != 0 || s.Goodput(sim.Second) != 0 {
		t.Fatal("nil SLO returned non-zero metrics")
	}
	if s.String() != "" {
		t.Fatal("nil SLO rendered text")
	}
}

func TestSLOString(t *testing.T) {
	s := NewSLO(10*sim.Microsecond, 50*sim.Microsecond, 0.1)
	s.Observe(5*sim.Microsecond, 20*sim.Microsecond)
	out := s.String()
	if !strings.Contains(out, "target=10.0us") || !strings.Contains(out, "violation |") {
		t.Fatalf("unexpected render:\n%s", out)
	}
}
