package sim

import (
	"sort"
	"testing"
)

// TestHeapOrderProperty drives the 4-ary heap with pseudo-random
// timestamps (duplicates included, deterministic seed) and checks the
// pop order against a reference sort by (time, insertion sequence).
func TestHeapOrderProperty(t *testing.T) {
	type key struct {
		at  Time
		seq int
	}
	rng := NewRNG(1234)
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		n := 1 + rng.Intn(500)
		ref := make([]key, n)
		var got []key
		for i := 0; i < n; i++ {
			// A small time range forces plenty of equal-time ties.
			at := Time(rng.Intn(64))
			ref[i] = key{at, i}
			i := i
			e.Schedule(at, func() { got = append(got, key{e.Now(), i}) })
		}
		sort.SliceStable(ref, func(a, b int) bool {
			if ref[a].at != ref[b].at {
				return ref[a].at < ref[b].at
			}
			return ref[a].seq < ref[b].seq
		})
		e.Run()
		if len(got) != n {
			t.Fatalf("trial %d: executed %d of %d events", trial, len(got), n)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: pop %d = %+v, reference %+v", trial, i, got[i], ref[i])
			}
		}
	}
}

// TestHeapChurnOrder interleaves scheduling from inside callbacks with
// pops, the pattern the timing models actually generate, and checks
// time never goes backwards and FIFO holds within a timestamp.
func TestHeapChurnOrder(t *testing.T) {
	e := NewEngine()
	rng := NewRNG(7)
	var last Time
	executed := 0
	var tick func()
	tick = func() {
		executed++
		if e.Now() < last {
			t.Fatalf("time went backwards: %d after %d", e.Now(), last)
		}
		last = e.Now()
		if executed < 5000 {
			for k := 0; k < 1+rng.Intn(3); k++ {
				e.After(Time(rng.Intn(16)), tick)
			}
		}
	}
	e.Schedule(0, tick)
	for executed < 5000 && e.Step() {
	}
	if executed < 5000 {
		t.Fatalf("churn drained early at %d events", executed)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := make(map[int]bool)
	var ids []EventID
	for i := 0; i < 10; i++ {
		i := i
		ids = append(ids, e.Schedule(Time(10+i), func() { ran[i] = true }))
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	if !e.Cancel(ids[3]) || !e.Cancel(ids[7]) {
		t.Fatal("cancel of a pending event failed")
	}
	if e.Cancel(ids[3]) {
		t.Fatal("double cancel succeeded")
	}
	if e.Pending() != 8 {
		t.Fatalf("Pending after cancels = %d, want 8", e.Pending())
	}
	e.Run()
	for i := 0; i < 10; i++ {
		want := i != 3 && i != 7
		if ran[i] != want {
			t.Fatalf("event %d ran=%v, want %v", i, ran[i], want)
		}
	}
	// All events retired: a stale ID must not cancel anything new.
	if e.Cancel(ids[0]) {
		t.Fatal("stale ID cancelled after execution")
	}
}

// TestCancelGeneration reuses a retired slot and checks a stale EventID
// for its previous occupant cannot cancel the new event.
func TestCancelGeneration(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(5, func() {})
	e.Run() // slot retired, generation bumped
	ran := false
	fresh := e.Schedule(10, func() { ran = true })
	if fresh.slot != stale.slot {
		t.Fatalf("free list did not reuse the slot (%d vs %d)", fresh.slot, stale.slot)
	}
	if e.Cancel(stale) {
		t.Fatal("stale ID cancelled the slot's new occupant")
	}
	e.Run()
	if !ran {
		t.Fatal("fresh event did not run")
	}
}

// TestCancelledEventsPruned checks RunUntil and Pending see through
// lazily-removed cancelled entries at the top of the heap.
func TestCancelledEventsPruned(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(10, func() { t.Fatal("cancelled event ran") })
	ran := false
	e.Schedule(50, func() { ran = true })
	e.Cancel(id)
	e.RunUntil(20)
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20 (cancelled event must not advance time)", e.Now())
	}
	if ran {
		t.Fatal("t=50 event ran before its time")
	}
	e.RunUntil(60)
	if !ran || e.Now() != 60 {
		t.Fatalf("ran=%v Now=%d, want true/60", ran, e.Now())
	}
}
