package sim

import "fmt"

// Watchdog detects a wedged simulation: a run whose event queue keeps
// ticking but whose progress counter has frozen — the failure mode a
// lost protocol message would cause if timeout recovery did not heal it.
// It schedules itself on the engine at a fixed interval and compares a
// caller-supplied progress counter across intervals; after maxIdle
// consecutive intervals with no movement it calls fail with a diagnostic
// instead of letting the run spin forever.
//
// The watchdog's self-rescheduling keeps the queue non-empty, which is
// exactly what makes the wedge observable: a run with nothing left but
// watchdog ticks executes them, time advances, and the frozen counter
// trips the alarm. Because each tick consumes an engine sequence number,
// attach a watchdog only to runs whose perturbation is acceptable (fault
// campaigns); fault-free runs must not carry one or their event
// tie-breaking — and thus byte-identity with the golden output — shifts.
type Watchdog struct {
	eng      *Engine
	interval Time
	maxIdle  int
	progress func() uint64
	fail     func(msg string)

	last    uint64
	primed  bool
	idle    int
	stopped bool
	grace   Time    // strikes forgiven through this time (declared recovery)
	pending EventID // the armed tick, cancelled by Stop
	diag    func() string
}

// Defer declares a recovery window: intervals overlapping it are
// forgiven instead of counted as strikes. A fail-stop reconstruction
// sweep legitimately pre-books the surviving home engines for its whole
// duration — a service blackout, not a wedge — and must not trip the
// alarm. The tick cadence is unchanged (the watchdog consumes the same
// engine sequence numbers), so byte-identity is unaffected.
func (w *Watchdog) Defer(until Time) {
	if w == nil {
		return
	}
	if until > w.grace {
		w.grace = until
	}
}

// SetDiagnostic attaches an extra diagnostic source appended to the
// failure message — a parallel run passes ParallelEngine.Diagnostic here
// so a stalled partition fails loudly with its per-partition queue state
// instead of hanging anonymously.
func (w *Watchdog) SetDiagnostic(diag func() string) { w.diag = diag }

// NewWatchdog arms a watchdog on e. progress must be monotone while the
// run is healthy (a transaction counter is ideal). fail receives the
// diagnostic when the run wedges; nil means panic, which is the right
// default — a wedged simulation has no valid results to salvage.
func NewWatchdog(e *Engine, interval Time, maxIdle int, progress func() uint64, fail func(msg string)) *Watchdog {
	if interval <= 0 {
		interval = Millisecond
	}
	if maxIdle < 1 {
		maxIdle = 1
	}
	if fail == nil {
		fail = func(msg string) { panic(msg) }
	}
	w := &Watchdog{
		eng:      e,
		interval: interval,
		maxIdle:  maxIdle,
		progress: progress,
		fail:     fail,
	}
	w.pending = e.After(interval, w.tick)
	return w
}

// Stop disarms the watchdog and cancels its pending tick, so a stopped
// watchdog no longer keeps the event queue alive (a run that stops its
// watchdog and drains its real work leaves an empty queue, not a tail
// of dead ticks).
func (w *Watchdog) Stop() {
	w.stopped = true
	w.eng.Cancel(w.pending)
}

func (w *Watchdog) tick() {
	if w.stopped {
		return
	}
	cur := w.progress()
	if w.eng.Now()-w.interval < w.grace {
		// This interval overlaps a declared recovery window: forgive it,
		// but keep the counter current so the first fully post-recovery
		// interval is judged on its own progress alone.
		w.primed = true
		w.last = cur
		w.idle = 0
		w.pending = w.eng.After(w.interval, w.tick)
		return
	}
	if !w.primed || cur != w.last {
		w.primed = true
		w.last = cur
		w.idle = 0
	} else {
		w.idle++
		if w.idle >= w.maxIdle {
			msg := fmt.Sprintf(
				"sim: watchdog: no progress over %d intervals of %d ps (progress counter stuck at %d, now=%d ps, %d events pending, %d executed)",
				w.idle, w.interval, cur, w.eng.Now(), w.eng.Pending(), w.eng.Executed())
			if w.diag != nil {
				msg += "; " + w.diag()
			}
			w.fail(msg)
			return
		}
	}
	w.pending = w.eng.After(w.interval, w.tick)
}
