package sim

import (
	"strings"
	"testing"
)

// TestPoolLateReleaseAfterRecoverIsNoOp pins the RecoverStale fix: a
// release closure firing after the sweep already reclaimed (and another
// reservation reused) its server must not clobber the new occupant.
func TestPoolLateReleaseAfterRecoverIsNoOp(t *testing.T) {
	p := NewPool("tsrf", 1)

	// Reservation A at t=100 is abandoned (its reply was lost).
	startA, releaseA := p.Reserve(100)
	if startA != 100 {
		t.Fatalf("start A = %d, want 100", startA)
	}

	// The sweep at t=5000 reclaims it (timeout 1000).
	if n := p.RecoverStale(5000, 1000); n != 1 {
		t.Fatalf("RecoverStale = %d, want 1", n)
	}
	if p.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", p.Recovered)
	}
	if got := p.InUse(5000); got != 0 {
		t.Fatalf("InUse after recover = %d, want 0", got)
	}

	// Reservation B reuses the server.
	startB, releaseB := p.Reserve(5000)
	if startB != 5000 {
		t.Fatalf("start B = %d, want 5000", startB)
	}
	busyBefore := p.BusyTime

	// A's release arrives late (the transaction's code path finally
	// unwound). It must be a no-op: B still holds the server.
	releaseA(6000)
	if p.BusyTime != busyBefore {
		t.Errorf("late release changed BusyTime: %d -> %d", busyBefore, p.BusyTime)
	}
	if got := p.InUse(7000); got != 1 {
		t.Errorf("late release freed B's server: InUse = %d, want 1", got)
	}

	// B's own release still works.
	releaseB(8000)
	if got := p.InUse(9000); got != 0 {
		t.Errorf("B's release ignored: InUse = %d, want 0", got)
	}
	if p.BusyTime != busyBefore+3000 {
		t.Errorf("BusyTime = %d, want %d", p.BusyTime, busyBefore+3000)
	}
}

// TestPoolRecoverStaleRespectsTimeout: a young open reservation and a
// closed (Acquire-style) busy server are both left alone.
func TestPoolRecoverStaleRespectsTimeout(t *testing.T) {
	p := NewPool("tsrf", 2)
	_, release := p.Reserve(0)
	p.Acquire(0, 10_000) // closed-end occupancy, not an open reservation

	if n := p.RecoverStale(500, 1000); n != 0 {
		t.Fatalf("RecoverStale reclaimed a young reservation: %d", n)
	}
	// Exactly at the timeout boundary the entry is not yet stale
	// (strictly-greater comparison).
	if n := p.RecoverStale(1000, 1000); n != 0 {
		t.Fatalf("RecoverStale reclaimed at age == timeout: %d", n)
	}
	if n := p.RecoverStale(1001, 1000); n != 1 {
		t.Fatalf("RecoverStale past timeout = %d, want 1", n)
	}
	release(2000) // late release of the reclaimed entry: must be inert
	if got := p.InUse(5000); got != 1 {
		t.Errorf("InUse = %d, want 1 (the Acquire occupancy)", got)
	}
}

// TestWatchdogFailsOnFrozenProgress: a run whose queue keeps ticking but
// whose progress counter froze must fail with a diagnostic.
func TestWatchdogFailsOnFrozenProgress(t *testing.T) {
	eng := NewEngine()
	var failMsg string
	progress := uint64(7) // never moves
	NewWatchdog(eng, 100, 3, func() uint64 { return progress }, func(msg string) { failMsg = msg })
	eng.Run()
	if failMsg == "" {
		t.Fatal("watchdog never fired on frozen progress")
	}
	for _, want := range []string{"no progress", "stuck at 7"} {
		if !strings.Contains(failMsg, want) {
			t.Errorf("diagnostic %q missing %q", failMsg, want)
		}
	}
	// First tick primes, then maxIdle idle intervals: fail at 4*interval.
	if eng.Now() != 400 {
		t.Errorf("failed at t=%d, want 400", eng.Now())
	}
}

// TestWatchdogSilentUnderProgress: while the counter moves, the watchdog
// keeps rescheduling and never fires; Stop disarms it.
func TestWatchdogSilentUnderProgress(t *testing.T) {
	eng := NewEngine()
	var progress uint64
	fired := false
	w := NewWatchdog(eng, 100, 2, func() uint64 { return progress }, func(string) { fired = true })
	// Progress bumps faster than the idle threshold.
	var bump func()
	bump = func() {
		progress++
		if eng.Now() < 2000 {
			eng.After(150, bump)
		}
	}
	eng.After(150, bump)
	eng.RunUntil(2000)
	if fired {
		t.Fatal("watchdog fired despite progress")
	}
	w.Stop()
	eng.Run()
	if fired {
		t.Fatal("watchdog fired after Stop")
	}
}

// TestWatchdogDeferForgivesRecoveryWindow: intervals overlapping a
// declared recovery window must not count as strikes — a fail-stop
// reconstruction sweep legitimately freezes progress for its whole
// duration — but the watchdog re-arms afterwards and still catches a
// counter that stays frozen once recovery is over.
func TestWatchdogDeferForgivesRecoveryWindow(t *testing.T) {
	eng := NewEngine()
	var failMsg string
	progress := uint64(7) // frozen throughout
	w := NewWatchdog(eng, 100, 3, func() uint64 { return progress }, func(msg string) { failMsg = msg })
	// Without Defer this fails at t=400; forgive through t=600.
	w.Defer(600)
	eng.Run()
	if failMsg == "" {
		t.Fatal("watchdog never fired after the recovery window closed")
	}
	// Strikes restart after the grace window: the tick at 600 is the last
	// forgiven one (its interval overlaps grace), then 3 idle strikes at
	// 700/800/900 → fail at t=900.
	if eng.Now() != 900 {
		t.Errorf("failed at t=%d, want 900", eng.Now())
	}

	// Progress resuming after the window keeps the watchdog silent.
	eng2 := NewEngine()
	fired := false
	var p2 uint64
	w2 := NewWatchdog(eng2, 100, 2, func() uint64 { return p2 }, func(string) { fired = true })
	w2.Defer(500)
	var bump func()
	bump = func() {
		p2++
		if eng2.Now() < 2000 {
			eng2.After(150, bump)
		}
	}
	eng2.After(500, bump) // blackout until 500, healthy afterwards
	eng2.RunUntil(2000)
	w2.Stop()
	if fired {
		t.Fatal("watchdog fired despite post-recovery progress")
	}

	// Nil receiver is a no-op (fault-free runs carry no watchdog).
	var wn *Watchdog
	wn.Defer(100)
}

// TestWatchdogStopEmptiesQueue: Stop must cancel the armed tick, not
// merely flag it dead — a stopped watchdog over a drained run leaves
// the queue empty instead of one pending no-op tick per Stop.
func TestWatchdogStopEmptiesQueue(t *testing.T) {
	eng := NewEngine()
	w := NewWatchdog(eng, 100, 2, func() uint64 { return 0 }, func(string) {})
	if eng.Pending() != 1 {
		t.Fatalf("pending = %d after arming, want 1", eng.Pending())
	}
	w.Stop()
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after Stop, want 0 (tick not cancelled)", eng.Pending())
	}
	// Stop mid-run: let a couple of ticks fire first, then disarm.
	eng2 := NewEngine()
	w2 := NewWatchdog(eng2, 100, 10, func() uint64 { return 0 }, func(string) {})
	eng2.RunUntil(250)
	if eng2.Pending() == 0 {
		t.Fatal("watchdog stopped rescheduling on its own")
	}
	w2.Stop()
	if eng2.Pending() != 0 {
		t.Fatalf("pending = %d after mid-run Stop, want 0", eng2.Pending())
	}
}
