package sim

// Server models a shared hardware unit (an L2 bank controller, a memory
// channel, the ICS datapaths) under the kernel's coarse-grained CPU
// interleaving. CPUs simulate in bounded-skew batches, so their requests
// reach shared resources slightly out of time order; a strict FIFO
// next-free model (Resource) would convert that harmless skew into large
// spurious queueing delays. Server instead derives the queueing delay
// from the unit's measured utilization over a decaying window — the
// standard approximation wait = service * rho/(1-rho), scaled down for
// multi-server units — which is insensitive to request ordering while
// still producing back-pressure as the unit approaches saturation.
type Server struct {
	// K is the number of identical servers (1 = a single controller).
	K int
	// Window is the utilization averaging window.
	Window Time

	epochStart Time
	epochBusy  Time
	lastNow    Time

	Requests uint64
	BusyTime Time
	WaitTime Time
}

// NewServer returns a unit with k servers and a default 20 us window.
func NewServer(k int) *Server {
	if k < 1 {
		k = 1
	}
	return &Server{K: k, Window: 20 * Microsecond}
}

// Acquire charges one request of the given service time arriving at now
// and returns its completion time.
func (s *Server) Acquire(now Time, service Time) Time {
	if service < 0 {
		service = 0
	}
	if now > s.lastNow {
		s.lastNow = now
	}
	span := s.lastNow - s.epochStart
	if span > s.Window {
		// Decay: halve the accumulated busy time over half the window.
		s.epochStart = s.lastNow - s.Window/2
		s.epochBusy /= 2
		span = s.Window / 2
	}
	var wait Time
	if span > 0 {
		rho := float64(s.epochBusy) / float64(span*Time(s.K))
		if rho > 0.95 {
			rho = 0.95
		}
		if rho > 0 {
			// M/D/1-flavored delay, reduced for multi-server pools
			// (a request only queues when all K servers are busy).
			w := float64(service) * rho / (2 * (1 - rho))
			for i := 1; i < s.K; i++ {
				w *= rho
			}
			wait = Time(w)
		}
	}
	s.Requests++
	s.BusyTime += service
	s.WaitTime += wait
	s.epochBusy += service
	return now + wait + service
}

// Utilization returns busy time over the elapsed span (cumulative).
func (s *Server) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.BusyTime) / float64(elapsed*Time(s.K))
}

// AvgWait returns the mean queueing delay per request in picoseconds.
func (s *Server) AvgWait() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.WaitTime) / float64(s.Requests)
}
