package sim

// Resource models a serially-occupied hardware unit (an L2 bank's control
// pipeline, a Rambus channel, an ICS datapath, a router link). A request
// arriving at time t with service time s begins at max(t, nextFree) and
// completes at begin+s. This captures queueing delay without simulating
// the queue entries individually, which is exact for FIFO service.
type Resource struct {
	Name     string
	nextFree Time

	// Accumulated statistics.
	Requests uint64
	BusyTime Time
	WaitTime Time
	MaxWait  Time
}

// Acquire reserves the resource for service duration s starting no earlier
// than now, and returns the completion time.
func (r *Resource) Acquire(now Time, s Time) (done Time) {
	start := now
	if r.nextFree > start {
		start = r.nextFree
	}
	wait := start - now
	r.Requests++
	r.WaitTime += wait
	if wait > r.MaxWait {
		r.MaxWait = wait
	}
	r.BusyTime += s
	r.nextFree = start + s
	return r.nextFree
}

// NextFree returns the earliest time the resource is available.
func (r *Resource) NextFree() Time { return r.nextFree }

// Utilization returns busy time as a fraction of the elapsed time span.
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.BusyTime) / float64(elapsed)
}

// AvgWait returns the mean queueing delay per request in picoseconds.
func (r *Resource) AvgWait() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.WaitTime) / float64(r.Requests)
}

// Pool models a unit with k identical servers (e.g. the 16 TSRF entries of
// a protocol engine, or the MSHRs of an out-of-order core). Requests are
// served FIFO by the earliest-free server.
type Pool struct {
	Name string
	free []Time // next-free time per server
	// heldSince records when an open-ended Reserve claimed each server
	// (zero when the server is not under an open reservation).
	heldSince []Time
	// gen counts reservation epochs per server. Release closures capture
	// the generation they were issued under, so a release arriving after
	// RecoverStale already reclaimed (and possibly re-reserved) the
	// server is a no-op instead of clobbering the new occupant.
	gen []uint32

	Requests uint64
	WaitTime Time
	MaxWait  Time
	BusyTime Time

	// Recovered counts reservations force-released by RecoverStale.
	Recovered uint64
}

// NewPool returns a Pool with k servers, all free at time zero.
func NewPool(name string, k int) *Pool {
	if k < 1 {
		k = 1
	}
	return &Pool{
		Name:      name,
		free:      make([]Time, k),
		heldSince: make([]Time, k),
		gen:       make([]uint32, k),
	}
}

// Size returns the number of servers.
func (p *Pool) Size() int { return len(p.free) }

// Acquire allocates the earliest-available server for duration s starting
// no earlier than now and returns the completion time.
func (p *Pool) Acquire(now Time, s Time) (done Time) {
	// Find the server that frees up first.
	best := 0
	for i := 1; i < len(p.free); i++ {
		if p.free[i] < p.free[best] {
			best = i
		}
	}
	start := now
	if p.free[best] > start {
		start = p.free[best]
	}
	wait := start - now
	p.Requests++
	p.WaitTime += wait
	if wait > p.MaxWait {
		p.MaxWait = wait
	}
	p.BusyTime += s
	p.free[best] = start + s
	return p.free[best]
}

// Reserve claims the earliest-available server starting no earlier than
// now, returning the start time and a release function the caller invokes
// with the actual end time once the work's duration is known. Useful for
// holdings whose length depends on downstream events (e.g. a TSRF entry
// held for a whole coherence transaction).
func (p *Pool) Reserve(now Time) (start Time, release func(end Time)) {
	best := 0
	for i := 1; i < len(p.free); i++ {
		if p.free[i] < p.free[best] {
			best = i
		}
	}
	start = now
	if p.free[best] > start {
		start = p.free[best]
	}
	wait := start - now
	p.Requests++
	p.WaitTime += wait
	if wait > p.MaxWait {
		p.MaxWait = wait
	}
	// Mark the server busy indefinitely until released.
	p.free[best] = start + reservedMark // placeholder; release overwrites
	p.heldSince[best] = start + 1       // +1 so a t=0 reservation is visible
	i, g := best, p.gen[best]
	return start, func(end Time) {
		if p.gen[i] != g {
			return // RecoverStale already reclaimed this reservation
		}
		if end < start {
			end = start
		}
		p.BusyTime += end - start
		p.free[i] = end
		p.heldSince[i] = 0
		p.gen[i]++
	}
}

// reservedMark flags a server under an open-ended reservation. It is far
// beyond any plausible simulated horizon (~1.1 s) so a reserved server is
// not misclassified as free, yet small enough that retry loops which back
// off past it (the baseline NAK protocol under a saturated TSRF) still
// terminate. Stale-release safety does not depend on its magnitude: the
// per-server generation counters make a release that arrives after
// RecoverStale reclaimed the entry a no-op.
const reservedMark Time = 1 << 40

// RecoverStale force-releases open reservations older than timeout — the
// protocol engines' error recovery: a transaction whose response never
// arrived is detected by its TSRF timer and its entry reclaimed (its
// state would be encapsulated for recovery software). Returns how many
// entries were recovered.
func (p *Pool) RecoverStale(now, timeout Time) int {
	n := 0
	for i, h := range p.heldSince {
		if h != 0 && now-(h-1) > timeout {
			p.BusyTime += now - (h - 1)
			p.free[i] = now
			p.heldSince[i] = 0
			p.gen[i]++ // invalidate the outstanding release closure
			p.Recovered++
			n++
		}
	}
	return n
}

// InUse reports how many servers are busy at time t.
func (p *Pool) InUse(t Time) int {
	n := 0
	for _, f := range p.free {
		if f > t {
			n++
		}
	}
	return n
}

// AvgWait returns the mean queueing delay per request in picoseconds.
func (p *Pool) AvgWait() float64 {
	if p.Requests == 0 {
		return 0
	}
	return float64(p.WaitTime) / float64(p.Requests)
}
