// Package sim provides the deterministic discrete-event simulation kernel
// used by every timing model in the Piranha simulator.
//
// Time is measured in integer picoseconds so that the 500 MHz ASIC core
// (2000 ps/cycle), the 1 GHz out-of-order core (1000 ps/cycle), and the
// 1.25 GHz full-custom core (800 ps/cycle) all have exact periods. The
// engine executes events from a binary heap ordered by (time, sequence
// number); ties are broken by insertion order, which makes every simulation
// run bit-for-bit reproducible.
package sim

import "container/heap"

// Time is a simulated instant or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	do  func()
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	nRun   uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.nRun }

// Pending returns the number of scheduled, not-yet-executed events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs do at absolute time at. Scheduling in the past panics:
// it always indicates a model bug, and silently reordering time would
// corrupt every downstream statistic.
func (e *Engine) Schedule(at Time, do func()) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, do: do})
}

// After runs do d picoseconds from now.
func (e *Engine) After(d Time, do func()) { e.Schedule(e.now+d, do) }

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.nRun++
	ev.do()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is left at the last executed
// event (or advanced to deadline if nothing remains before it).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile executes events until cond() becomes false or the queue drains.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}
