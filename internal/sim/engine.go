// Package sim provides the deterministic discrete-event simulation kernel
// used by every timing model in the Piranha simulator.
//
// Time is measured in integer picoseconds so that the 500 MHz ASIC core
// (2000 ps/cycle), the 1 GHz out-of-order core (1000 ps/cycle), and the
// 1.25 GHz full-custom core (800 ps/cycle) all have exact periods. The
// engine executes events from a 4-ary min-heap of value-typed entries
// ordered by (time, sequence number); ties are broken by insertion order,
// which makes every simulation run bit-for-bit reproducible. Callbacks
// live in a slot arena recycled through a free list, so steady-state
// Schedule/Step cycles perform no heap allocation, and each slot carries
// a generation counter so a stale EventID can never cancel a recycled
// event.
package sim

// Time is a simulated instant or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// entry is one heap element: the ordering key plus the index of the slot
// holding the callback. Keeping entries value-typed (24 bytes) means heap
// maintenance moves small values instead of chasing per-event pointers.
type entry struct {
	at   Time
	seq  uint64
	slot int32
}

// slot holds a scheduled callback. gen increments every time the slot is
// retired, invalidating any EventID issued for its previous occupant.
type slot struct {
	do  func()
	gen uint32
}

// EventID identifies a scheduled event for cancellation. The zero value
// never matches a live event.
type EventID struct {
	slot int32
	gen  uint32
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now   Time
	seq   uint64
	heap  []entry // 4-ary min-heap ordered by (at, seq)
	slots []slot
	free  []int32 // retired slot indices available for reuse
	live  int     // scheduled, not yet executed or cancelled
	nRun  uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.nRun }

// Pending returns the number of scheduled, not-yet-executed events
// (cancelled events are excluded even if still awaiting lazy removal).
func (e *Engine) Pending() int { return e.live }

// Schedule runs do at absolute time at and returns an ID that can cancel
// it. Scheduling in the past panics: it always indicates a model bug, and
// silently reordering time would corrupt every downstream statistic.
//
//piranha:hotpath
func (e *Engine) Schedule(at Time, do func()) EventID {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	var idx int32
	if n := len(e.free) - 1; n >= 0 {
		idx = e.free[n]
		e.free = e.free[:n]
	} else {
		e.slots = append(e.slots, slot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.do = do
	e.siftUp(entry{at: at, seq: e.seq, slot: idx})
	e.live++
	return EventID{slot: idx, gen: s.gen}
}

// After runs do d picoseconds from now and returns its cancellation ID.
//
//piranha:hotpath
func (e *Engine) After(d Time, do func()) EventID { return e.Schedule(e.now+d, do) }

// Cancel prevents a scheduled event from running and reports whether it
// was still pending. Cancellation is O(1): the slot's callback is cleared
// and its heap entry is discarded lazily when it reaches the top.
//
//piranha:hotpath
func (e *Engine) Cancel(id EventID) bool {
	if id.slot < 0 || int(id.slot) >= len(e.slots) {
		return false
	}
	s := &e.slots[id.slot]
	if s.gen != id.gen || s.do == nil {
		return false
	}
	s.do = nil
	e.live--
	return true
}

// retire frees ent's slot for reuse, bumping its generation so stale
// EventIDs cannot touch the next occupant.
//
//piranha:hotpath
func (e *Engine) retire(ent entry) func() {
	s := &e.slots[ent.slot]
	do := s.do
	s.do = nil
	s.gen++
	e.free = append(e.free, ent.slot)
	return do
}

// peek prunes cancelled events off the top of the heap and returns the
// timestamp of the next live event, if any.
//
//piranha:hotpath
func (e *Engine) peek() (Time, bool) {
	for len(e.heap) > 0 {
		top := e.heap[0]
		if e.slots[top.slot].do != nil {
			return top.at, true
		}
		e.popRoot()
		e.retire(top)
	}
	return 0, false
}

// Step executes the next event, if any, and reports whether one ran.
//
//piranha:hotpath
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		top := e.heap[0]
		e.popRoot()
		do := e.retire(top)
		if do == nil {
			continue // cancelled; discard lazily
		}
		e.now = top.at
		e.nRun++
		e.live--
		do()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is left at the last executed
// event (or advanced to deadline if nothing remains before it).
func (e *Engine) RunUntil(deadline Time) {
	for {
		at, ok := e.peek()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile executes events until cond() becomes false or the queue drains.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// NextEventAt returns the timestamp of the earliest live event, if any.
// It prunes cancelled events lazily, exactly as Step would.
func (e *Engine) NextEventAt() (Time, bool) { return e.peek() }

// RunUntilWhile executes events with timestamps <= deadline while cond()
// holds, leaving later events queued. Unlike RunUntil it never advances
// the clock to the deadline: the clock stays at the last executed event,
// so an engine driven in bounded windows (the parallel engine's epochs)
// keeps a (now, seq) history bit-identical to the same engine driven by
// one uninterrupted RunWhile. It reports whether cond() still held when
// the window was exhausted (false means cond stopped the run).
func (e *Engine) RunUntilWhile(deadline Time, cond func() bool) bool {
	for cond() {
		at, ok := e.peek()
		if !ok || at > deadline {
			return true
		}
		e.Step()
	}
	return false
}

// less is the (time, seq) total order shared by sift-up and sift-down.
func less(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp appends ent and restores the heap by walking the parent chain,
// shifting displaced parents down rather than swapping pairwise.
//
//piranha:hotpath
func (e *Engine) siftUp(ent entry) {
	e.heap = append(e.heap, ent)
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ent, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ent
}

// popRoot removes the minimum entry and restores the heap by sifting the
// last element down. A 4-ary layout does ~half the levels of a binary
// heap, trading slightly more comparisons per level for far fewer moves —
// a net win at the queue depths the timing models sustain.
//
//piranha:hotpath
func (e *Engine) popRoot() {
	h := e.heap
	n := len(h) - 1
	ent := h[n]
	h[n] = entry{}
	h = h[:n]
	e.heap = h
	if n == 0 {
		return
	}
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(h[j], h[m]) {
				m = j
			}
		}
		if !less(h[m], ent) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ent
}
