package sim

import "testing"

// The engine microbenchmarks pin down the per-event cost of the hot loop
// that every timing model runs on. EXPERIMENTS.md records the numbers
// before and after the 4-ary value-heap rewrite.

// BenchmarkSchedule measures steady-state insertion at a bounded queue
// depth, the shape real simulations sustain: fill 4096 events, drain,
// repeat. The callback is hoisted so the benchmark sees only the
// engine's own cost; per-op time is one push plus its amortized pop.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine()
	do := func() {}
	const depth = 4096
	for i := 0; i < depth; i++ {
		e.Schedule(Time(i), do)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	t := e.Now()
	filled := 0
	for i := 0; i < b.N; i++ {
		t++
		e.Schedule(t, do)
		if filled++; filled == depth {
			e.Run()
			filled = 0
		}
	}
	b.StopTimer()
	e.Run()
}

// BenchmarkStepHot measures the steady-state schedule-one/run-one cycle
// that dominates simulations: a self-rescheduling event chain, as the
// CPU and cache models produce.
func BenchmarkStepHot(b *testing.B) {
	e := NewEngine()
	var chain func()
	chain = func() { e.After(1, chain) }
	e.Schedule(0, chain)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkChurn measures mixed schedule/run churn with a standing
// population: each executed event reschedules four successors at jittered
// offsets, so the heap stays ~256 deep and every Step both sifts down on
// pop and sifts up on pushes.
func BenchmarkChurn(b *testing.B) {
	e := NewEngine()
	const standing = 256
	var spawn func()
	live := 0
	spawn = func() {
		live--
		for live < standing {
			live++
			// Deterministic jitter spreads timestamps so the heap is
			// exercised at varying depths rather than acting as a FIFO.
			e.After(Time(1+(e.Executed()*7+uint64(live)*13)%64), spawn)
		}
	}
	live = 1
	e.Schedule(0, spawn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
