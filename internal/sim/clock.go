package sim

// Clock converts between cycle counts of a fixed-frequency clock domain and
// simulated time. Piranha has several domains: the 500 MHz core/ICS clock,
// the interconnect clock, and the Rambus channel timing.
type Clock struct {
	// Period is the duration of one cycle in picoseconds.
	Period Time
}

// MHz returns a Clock with the given frequency in megahertz.
// The frequency must divide 1e6 MHz·ps evenly for common values
// (500 MHz → 2000 ps, 1000 MHz → 1000 ps, 1250 MHz → 800 ps).
func MHz(f int64) Clock { return Clock{Period: Time(1_000_000 / f * 1)} }

// GHzX1000 returns a Clock for f/1000 GHz, e.g. GHzX1000(1250) = 1.25 GHz.
func GHzX1000(f int64) Clock { return Clock{Period: Time(1_000_000_000 / (f * 1000))} }

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period }

// ToCycles converts a duration to a whole number of cycles, rounding up.
// A zero-period clock (unset) yields zero.
func (c Clock) ToCycles(d Time) int64 {
	if c.Period == 0 {
		return 0
	}
	return int64((d + c.Period - 1) / c.Period)
}

// Freq returns the frequency in MHz.
func (c Clock) Freq() int64 {
	if c.Period == 0 {
		return 0
	}
	return int64(1_000_000 / c.Period)
}
