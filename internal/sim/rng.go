package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**-style splitmix fallback) used by workload generators and
// routing decisions. Each component derives its own stream from a base
// seed so that adding a component never perturbs another component's
// sequence — a property math/rand's shared source does not give us.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent generator labeled by id.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id * 0x9e3779b97f4a7c15) ^ 0x5851f42d4c957f2d)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Zipf returns values in [0, n) following an approximate Zipf distribution
// with exponent theta (0 < theta < 1 typical for database hot sets).
// It uses the standard inverse-CDF approximation from Gray et al., which
// is what TPC workload generators use for skewed access.
type Zipf struct {
	n     int
	alpha float64
	zetan float64
	eta   float64
	theta float64
}

// NewZipf prepares a Zipf sampler over [0, n) with skew theta.
func NewZipf(n int, theta float64) *Zipf {
	if n < 1 {
		n = 1
	}
	z := &Zipf{n: n, theta: theta}
	for i := 1; i <= n; i++ {
		z.zetan += 1 / pow(float64(i), theta)
	}
	zeta2 := 1 + 1/pow(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// Next samples a value in [0, n).
func (z *Zipf) Next(r *RNG) int {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+pow(0.5, z.theta) {
		return 1
	}
	v := int(float64(z.n) * pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
