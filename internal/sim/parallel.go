// Two-phase partitioned event execution (conservative parallel discrete
// event simulation in the ACALSim mold). The event space is split into
// partitions, each owning a private Engine; an epoch loop alternates a
// compute phase — every partition drains its queue up to a conservative
// horizon concurrently on a pool of phase workers — with a single-threaded
// commit phase that merges cross-partition sends in a fixed (time, source,
// staging-order) total order. Because compute touches only partition-
// private state and commit is serial and sorted, the execution is
// bit-identical no matter how many workers run the compute phase — the
// property every determinism test in this repository pins.
//
// The horizon is derived from the lookahead: the minimum simulated-time
// lag between an event executing in one partition and its earliest
// possible effect on another (for the Piranha machine, the minimum
// ICS/link/noc transfer latency). An event at time t may therefore only
// stage sends at or after t+lookahead >= horizon; Stage enforces this and
// panics on a violation rather than silently corrupting the timeline.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Scheduler is the scheduling surface shared by the serial Engine and a
// Partition's private engine, letting model components take either.
type Scheduler interface {
	Now() Time
	Schedule(at Time, do func()) EventID
	After(d Time, do func()) EventID
	Cancel(id EventID) bool
}

// staged is one deferred cross-partition send. The (at, from, idx) triple
// is a total order independent of worker interleaving: at is the target
// timestamp, from the source partition, idx the source's staging order.
type staged struct {
	at   Time
	from int32
	idx  int32
	to   int32
	do   func()
}

// Partition is one slice of the event space: a private engine plus an
// optional compute hook, owned by exactly one phase worker per epoch.
type Partition struct {
	id   int
	name string
	eng  *Engine
	pe   *ParallelEngine

	// onCompute, when set, runs at the start of the partition's compute
	// phase with the epoch horizon (timing-independent producers — e.g.
	// workload op pre-generation — hook here instead of queueing events).
	onCompute func(horizon Time)

	// out is the epoch's staged cross-partition sends (compute writes,
	// commit reads; the phase barrier orders the two).
	out []staged
}

// ID returns the partition's index (0 is conventionally the timing model).
func (p *Partition) ID() int { return p.id }

// Name returns the partition's diagnostic label.
func (p *Partition) Name() string { return p.name }

// Engine returns the partition's private event queue.
func (p *Partition) Engine() *Engine { return p.eng }

// SetCompute installs fn to run at the start of every compute phase,
// before the partition's queue drains. fn executes on a phase worker and
// must touch only partition-private state.
func (p *Partition) SetCompute(fn func(horizon Time)) { p.onCompute = fn }

// Stage defers a cross-partition send: do runs on partition to's engine
// at absolute time at, scheduled during the next commit phase in the
// deterministic (at, from, idx) merge order. Stage is the only legal way
// to affect another partition from the compute phase; at must respect the
// lookahead window (at >= the current epoch horizon) or the conservative
// synchronization is unsound, so a violation panics.
func (p *Partition) Stage(to *Partition, at Time, do func()) {
	if at < p.pe.horizon {
		panic(fmt.Sprintf(
			"sim: staged send for %d ps violates the lookahead window (epoch horizon %d ps): cross-partition effects must lag the sender by at least the lookahead",
			at, p.pe.horizon))
	}
	p.out = append(p.out, staged{at: at, from: int32(p.id), idx: int32(len(p.out)), to: int32(to.id), do: do})
}

// compute runs one partition's compute phase: the hook, then the private
// queue up to the horizon. Partition 0 additionally honors cond between
// events (cond must read only partition-0 state) and never has its clock
// bumped to the horizon, keeping its (now, seq) history bit-identical to
// a serial run; other partitions advance to the horizon so committed
// sends are never in their past.
func (p *Partition) compute(cond func() bool) {
	p.out = p.out[:0]
	if p.onCompute != nil {
		p.onCompute(p.pe.horizon)
	}
	if p.id == 0 {
		p.pe.condHeld = p.eng.RunUntilWhile(p.pe.horizon, cond)
	} else {
		p.eng.RunUntil(p.pe.horizon)
	}
}

// ParallelEngine coordinates partitions through the two-phase epoch loop.
type ParallelEngine struct {
	lookahead Time
	workers   int
	parts     []*Partition

	tasks   chan func()
	started bool
	closed  bool

	// horizon is the running epoch's commit horizon: written by the epoch
	// loop before workers launch (the task handoff orders it), read by
	// Stage during compute.
	horizon Time
	// condHeld is partition 0's report of whether cond survived the epoch.
	condHeld bool

	epochs    uint64
	committed uint64
	scratch   []staged
	onCommit  []func()
}

// NewParallelEngine returns an epoch scheduler with the given lookahead
// window and phase-worker count. workers < 1 is clamped to 1; a single
// worker runs every phase inline on the caller's goroutine (no goroutines
// at all), which is also the reference the multi-worker output must match.
func NewParallelEngine(lookahead Time, workers int) *ParallelEngine {
	if lookahead <= 0 {
		panic("sim: parallel engine requires a positive lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	return &ParallelEngine{lookahead: lookahead, workers: workers}
}

// AddPartition registers a partition. eng may be nil to allocate a fresh
// private engine; passing an existing engine adopts it (the usual shape:
// partition 0 adopts the timing model's engine so serial and parallel
// runs share one event history).
func (pe *ParallelEngine) AddPartition(name string, eng *Engine) *Partition {
	if eng == nil {
		eng = NewEngine()
	}
	p := &Partition{id: len(pe.parts), name: name, eng: eng, pe: pe}
	pe.parts = append(pe.parts, p)
	return p
}

// OnCommit registers fn to run during every commit phase, single-threaded,
// after staged sends are applied, in registration order. Buffer handoffs
// that must not perturb a partition's event queue (the op-stream refill)
// live here.
func (pe *ParallelEngine) OnCommit(fn func()) { pe.onCommit = append(pe.onCommit, fn) }

// Lookahead returns the conservative window.
func (pe *ParallelEngine) Lookahead() Time { return pe.lookahead }

// Workers returns the phase-worker count.
func (pe *ParallelEngine) Workers() int { return pe.workers }

// Epochs returns how many compute/commit cycles have run.
func (pe *ParallelEngine) Epochs() uint64 { return pe.epochs }

// Committed returns how many staged cross-partition sends have been merged.
func (pe *ParallelEngine) Committed() uint64 { return pe.committed }

// Pending sums the partitions' queued events (sim.Engine hygiene: the
// parallel engine answers the same questions the serial one does).
func (pe *ParallelEngine) Pending() int {
	n := 0
	for _, p := range pe.parts {
		n += p.eng.Pending()
	}
	return n
}

// Executed sums the partitions' executed-event counts.
func (pe *ParallelEngine) Executed() uint64 {
	var n uint64
	for _, p := range pe.parts {
		n += p.eng.Executed()
	}
	return n
}

// Diagnostic renders per-partition queue state — the payload a
// partition-aware Watchdog appends so a stalled partition is identifiable
// from the failure message alone.
func (pe *ParallelEngine) Diagnostic() string {
	var b strings.Builder
	fmt.Fprintf(&b, "parallel engine: %d partitions, %d workers, lookahead %d ps, %d epochs, %d staged sends committed",
		len(pe.parts), pe.workers, pe.lookahead, pe.epochs, pe.committed)
	for _, p := range pe.parts {
		fmt.Fprintf(&b, "; [p%d %s] now=%d ps pending=%d executed=%d",
			p.id, p.name, p.eng.Now(), p.eng.Pending(), p.eng.Executed())
	}
	return b.String()
}

// Close stops the phase workers. The engine must not run afterwards.
func (pe *ParallelEngine) Close() {
	if pe.started && !pe.closed {
		close(pe.tasks)
	}
	pe.closed = true
}

// start lazily launches the worker pool.
func (pe *ParallelEngine) start() {
	if pe.started || pe.workers == 1 {
		return
	}
	pe.started = true
	pe.tasks = make(chan func(), pe.workers)
	for i := 0; i < pe.workers; i++ {
		go func() {
			for f := range pe.tasks {
				f()
			}
		}()
	}
}

// fanWait runs every task on the pool and waits for all of them — the
// phase barrier. With one worker the tasks run inline in order.
func (pe *ParallelEngine) fanWait(tasks []func()) {
	if pe.workers == 1 {
		for _, f := range tasks {
			f()
		}
		return
	}
	pe.start()
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, f := range tasks {
		f := f
		pe.tasks <- func() { defer wg.Done(); f() }
	}
	wg.Wait()
}

// Fan runs fn(0..n-1) on the phase workers and waits — the parallel-for
// used for heavy deterministic setup (per-process workload construction)
// so goroutine fan-out stays inside this package's worker pool.
func (pe *ParallelEngine) Fan(n int, fn func(i int)) {
	if pe.workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	tasks := make([]func(), n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() { fn(i) }
	}
	pe.fanWait(tasks)
}

// RunWhile drives the epoch loop until cond() becomes false or every
// partition drains with nothing staged. cond must read only partition-0
// state: it is evaluated between partition 0's events during compute and
// between epochs, exactly matching serial Engine.RunWhile's cadence on
// the partition-0 event stream.
func (pe *ParallelEngine) RunWhile(cond func() bool) {
	if pe.closed {
		panic("sim: parallel engine used after Close")
	}
	compute := make([]func(), len(pe.parts))
	for i, p := range pe.parts {
		p := p
		compute[i] = func() { p.compute(cond) }
	}
	for cond() {
		next, have := Time(0), false
		for _, p := range pe.parts {
			if at, ok := p.eng.NextEventAt(); ok && (!have || at < next) {
				next, have = at, true
			}
		}
		if !have {
			return // drained everywhere; nothing can become runnable
		}
		pe.horizon = next + pe.lookahead
		pe.fanWait(compute)
		pe.commit()
		if !pe.condHeld {
			return
		}
	}
}

// commit is the serial merge phase: staged sends from all partitions are
// ordered by (at, from, idx) — a total order no worker interleaving can
// perturb — and scheduled onto their target engines, then the commit
// hooks run. Target clocks sit at or before the horizon and every staged
// at is >= the horizon, so no send lands in a partition's past.
func (pe *ParallelEngine) commit() {
	all := pe.scratch[:0]
	for _, p := range pe.parts {
		all = append(all, p.out...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.idx < b.idx
	})
	for i := range all {
		s := &all[i]
		pe.parts[s.to].eng.Schedule(s.at, s.do)
		s.do = nil
	}
	pe.committed += uint64(len(all))
	pe.scratch = all[:0]
	for _, fn := range pe.onCommit {
		fn()
	}
	pe.epochs++
}
