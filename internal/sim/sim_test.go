package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 100 {
			e.After(5, chain)
		}
	}
	e.Schedule(0, chain)
	e.Run()
	if count != 100 {
		t.Fatalf("chain executed %d times, want 100", count)
	}
	if e.Now() != 99*5 {
		t.Fatalf("Now() = %d, want %d", e.Now(), 99*5)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := Time(10); i <= 100; i += 10 {
		e.Schedule(i, func() { ran++ })
	}
	e.RunUntil(50)
	if ran != 5 {
		t.Fatalf("ran %d events by t=50, want 5", ran)
	}
	if e.Pending() != 5 {
		t.Fatalf("pending %d, want 5", e.Pending())
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %d, want 50", e.Now())
	}
	e.Run()
	if ran != 10 {
		t.Fatalf("ran %d total, want 10", ran)
	}
}

func TestClock(t *testing.T) {
	c := MHz(500)
	if c.Period != 2000 {
		t.Fatalf("500MHz period = %d ps, want 2000", c.Period)
	}
	if MHz(1000).Period != 1000 {
		t.Fatalf("1GHz period wrong")
	}
	if GHzX1000(1250).Period != 800 {
		t.Fatalf("1.25GHz period = %d, want 800", GHzX1000(1250).Period)
	}
	if c.Cycles(3) != 6000 {
		t.Fatalf("Cycles(3) = %d", c.Cycles(3))
	}
	if c.ToCycles(6001) != 4 {
		t.Fatalf("ToCycles rounds up: got %d", c.ToCycles(6001))
	}
	if c.Freq() != 500 {
		t.Fatalf("Freq() = %d", c.Freq())
	}
}

func TestResourceQueueing(t *testing.T) {
	var r Resource
	// Two back-to-back requests of 10 ps each arriving at t=0.
	d1 := r.Acquire(0, 10)
	d2 := r.Acquire(0, 10)
	if d1 != 10 || d2 != 20 {
		t.Fatalf("completion times %d,%d; want 10,20", d1, d2)
	}
	if r.WaitTime != 10 {
		t.Fatalf("wait time %d, want 10", r.WaitTime)
	}
	// A request after the queue drained sees no wait.
	d3 := r.Acquire(100, 5)
	if d3 != 105 {
		t.Fatalf("idle-resource completion %d, want 105", d3)
	}
	if r.MaxWait != 10 {
		t.Fatalf("max wait %d, want 10", r.MaxWait)
	}
	if got := r.Utilization(105); got <= 0.2 || got >= 0.3 {
		t.Fatalf("utilization = %v, want 25/105", got)
	}
}

func TestPoolParallelism(t *testing.T) {
	p := NewPool("tsrf", 2)
	d1 := p.Acquire(0, 10)
	d2 := p.Acquire(0, 10)
	d3 := p.Acquire(0, 10)
	if d1 != 10 || d2 != 10 {
		t.Fatalf("two servers should run in parallel: %d, %d", d1, d2)
	}
	if d3 != 20 {
		t.Fatalf("third request should queue: %d", d3)
	}
	if p.InUse(5) != 2 {
		t.Fatalf("InUse(5) = %d, want 2", p.InUse(5))
	}
	if p.InUse(25) != 0 {
		t.Fatalf("InUse(25) = %d, want 0", p.InUse(25))
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	base := NewRNG(7)
	s1 := base.Split(1)
	s2 := base.Split(2)
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("split streams identical")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(9)
	z := NewZipf(1000, 0.8)
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next(r)]++
	}
	// Rank 0 should be drawn far more than a uniform share.
	if counts[0] < draws/200 {
		t.Fatalf("hot item drawn only %d of %d times", counts[0], draws)
	}
	// Top decile should dominate.
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if float64(top)/draws < 0.4 {
		t.Fatalf("top-10%% share = %v, expected heavy skew", float64(top)/draws)
	}
}

func BenchmarkEngine(b *testing.B) {
	e := NewEngine()
	var chain func()
	n := 0
	chain = func() {
		n++
		if n < b.N {
			e.After(1, chain)
		}
	}
	e.Schedule(0, chain)
	b.ResetTimer()
	e.Run()
}

func TestPoolReserveRelease(t *testing.T) {
	p := NewPool("tsrf", 2)
	s1, rel1 := p.Reserve(0)
	s2, _ := p.Reserve(0)
	if s1 != 0 || s2 != 0 {
		t.Fatalf("starts %d %d", s1, s2)
	}
	// Third reservation waits until a release.
	rel1(100)
	s3, rel3 := p.Reserve(10)
	if s3 != 100 {
		t.Fatalf("third reservation starts at %d, want 100", s3)
	}
	rel3(200)
	if p.InUse(250) != 1 {
		t.Fatalf("InUse(250) = %d, want 1 (the unreleased one)", p.InUse(250))
	}
}

func TestPoolRecoverStale(t *testing.T) {
	p := NewPool("tsrf", 2)
	p.Reserve(0) // never released: a lost transaction
	_, rel := p.Reserve(0)
	rel(50)
	// Before the timeout expires nothing is recovered.
	if n := p.RecoverStale(100, 200); n != 0 {
		t.Fatalf("premature recovery of %d entries", n)
	}
	if n := p.RecoverStale(1000, 200); n != 1 {
		t.Fatalf("recovered %d entries, want 1", n)
	}
	// The freed entry is reusable immediately.
	if s, _ := p.Reserve(1000); s != 1000 {
		t.Fatalf("recovered entry not reusable: start %d", s)
	}
}
