package sim

import (
	"strings"
	"testing"
)

// The parallel-engine tests drive a token ring of counter actors: node i
// forwards a token to node i+1 after a fixed link latency (the lookahead),
// while every node also runs a private chain of local tick events. Local
// ticks land at times ≡ 2 (mod 5) and token deliveries at multiples of
// the latency 10, so no two events ever tie and the serial single-engine
// execution order is fully determined by timestamps — making per-node
// logs directly comparable between the serial reference and the
// partitioned runs at any worker count.

const (
	ringLat    Time = 10
	ringNodes       = 4
	ringLimit       = 25 // deliveries per node
	ringTicks       = 40 // local ticks per node
	tickStart  Time = 2
	tickPeriod Time = 5
)

type ringNode struct {
	eng   *Engine
	part  *Partition // nil in the serial reference
	next  *ringNode
	send  func(n *ringNode, at Time, do func())
	log   []Time
	count int
	ticks int
}

func (n *ringNode) receive() {
	now := n.eng.Now()
	n.log = append(n.log, now)
	n.count++
	if n.count < ringLimit {
		nx := n.next
		n.send(n, now+ringLat, nx.receive)
	}
}

func (n *ringNode) tick() {
	n.ticks++
	if n.ticks < ringTicks {
		n.eng.After(tickPeriod, n.tick)
	}
}

// buildRing wires the actors; engines is one engine per node (serial mode
// passes the same engine n times).
func buildRing(engines []*Engine, parts []*Partition) []*ringNode {
	nodes := make([]*ringNode, len(engines))
	for i := range nodes {
		nodes[i] = &ringNode{eng: engines[i]}
		if parts != nil {
			nodes[i].part = parts[i]
		}
	}
	for i, n := range nodes {
		n.next = nodes[(i+1)%len(nodes)]
		if parts == nil {
			n.send = func(src *ringNode, at Time, do func()) { src.eng.Schedule(at, do) }
		} else {
			n.send = func(src *ringNode, at Time, do func()) { src.part.Stage(src.next.part, at, do) }
		}
		n.eng.Schedule(tickStart, n.tick)
	}
	nodes[0].eng.Schedule(0, nodes[0].receive)
	return nodes
}

// runRingSerial is the reference: all actors on one engine, plain sends.
func runRingSerial() ([]*ringNode, uint64) {
	eng := NewEngine()
	engines := make([]*Engine, ringNodes)
	for i := range engines {
		engines[i] = eng
	}
	nodes := buildRing(engines, nil)
	eng.Run()
	return nodes, eng.Executed()
}

// runRingParallel partitions one node per partition.
func runRingParallel(t *testing.T, workers int) ([]*ringNode, *ParallelEngine) {
	t.Helper()
	pe := NewParallelEngine(ringLat, workers)
	t.Cleanup(pe.Close)
	engines := make([]*Engine, ringNodes)
	parts := make([]*Partition, ringNodes)
	for i := range engines {
		parts[i] = pe.AddPartition("node", nil)
		engines[i] = parts[i].Engine()
	}
	nodes := buildRing(engines, parts)
	pe.RunWhile(func() bool { return true })
	return nodes, pe
}

func checkRingEqual(t *testing.T, label string, want, got []*ringNode) {
	t.Helper()
	for i := range want {
		if want[i].count != got[i].count || want[i].ticks != got[i].ticks {
			t.Errorf("%s: node %d count/ticks = %d/%d, want %d/%d",
				label, i, got[i].count, got[i].ticks, want[i].count, want[i].ticks)
		}
		if len(want[i].log) != len(got[i].log) {
			t.Fatalf("%s: node %d log length %d, want %d", label, i, len(got[i].log), len(want[i].log))
		}
		for j := range want[i].log {
			if want[i].log[j] != got[i].log[j] {
				t.Fatalf("%s: node %d delivery %d at %d ps, want %d ps",
					label, i, j, got[i].log[j], want[i].log[j])
			}
		}
	}
}

func TestParallelRingMatchesSerial(t *testing.T) {
	ref, refExecuted := runRingSerial()
	for _, workers := range []int{1, 2, 4} {
		nodes, pe := runRingParallel(t, workers)
		checkRingEqual(t, "workers="+string(rune('0'+workers)), ref, nodes)
		if pe.Executed() != refExecuted {
			t.Errorf("workers=%d: executed %d events, serial executed %d", workers, pe.Executed(), refExecuted)
		}
		if pe.Pending() != 0 {
			t.Errorf("workers=%d: %d events still pending after drain", workers, pe.Pending())
		}
		// Every cross-partition delivery except the initial token went
		// through the staging API.
		wantStaged := uint64(0)
		for _, n := range ref {
			wantStaged += uint64(n.count)
		}
		wantStaged--
		if pe.Committed() != wantStaged {
			t.Errorf("workers=%d: committed %d staged sends, want %d", workers, pe.Committed(), wantStaged)
		}
	}
}

// TestParallelCondStopsPartitionZero pins the serial-equivalence of the
// stop condition: cond is evaluated between partition-0 events exactly as
// Engine.RunWhile evaluates it between events, so partition 0's history
// is a bit-identical prefix of the unconstrained run.
func TestParallelCondStopsPartitionZero(t *testing.T) {
	const stopAt = 7
	ref, _ := runRingSerial()

	pe := NewParallelEngine(ringLat, 2)
	defer pe.Close()
	engines := make([]*Engine, ringNodes)
	parts := make([]*Partition, ringNodes)
	for i := range engines {
		parts[i] = pe.AddPartition("node", nil)
		engines[i] = parts[i].Engine()
	}
	nodes := buildRing(engines, parts)
	pe.RunWhile(func() bool { return nodes[0].count < stopAt })

	if nodes[0].count != stopAt {
		t.Fatalf("partition-0 count %d, want exactly %d", nodes[0].count, stopAt)
	}
	for j := 0; j < stopAt; j++ {
		if nodes[0].log[j] != ref[0].log[j] {
			t.Fatalf("delivery %d at %d ps, want %d ps (serial prefix)", j, nodes[0].log[j], ref[0].log[j])
		}
	}
}

func TestParallelStageLookaheadViolation(t *testing.T) {
	pe := NewParallelEngine(ringLat, 1)
	defer pe.Close()
	a := pe.AddPartition("a", nil)
	b := pe.AddPartition("b", nil)
	a.Engine().Schedule(0, func() {
		// Effect sooner than the lookahead: conservatively unsound.
		a.Stage(b, a.Engine().Now()+ringLat-1, func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead violation did not panic")
		}
		if !strings.Contains(r.(string), "lookahead") {
			t.Fatalf("panic %q does not name the lookahead window", r)
		}
	}()
	pe.RunWhile(func() bool { return true })
}

// TestParallelComputeCommitHooks checks the phase hooks: compute hooks
// see monotonically increasing horizons, commit hooks run once per epoch
// single-threaded after the merge.
func TestParallelComputeCommitHooks(t *testing.T) {
	pe := NewParallelEngine(100, 2)
	defer pe.Close()
	p0 := pe.AddPartition("model", nil)
	gen := pe.AddPartition("gen", nil)

	var horizons []Time
	gen.SetCompute(func(h Time) { horizons = append(horizons, h) })
	commits := 0
	pe.OnCommit(func() { commits++ })

	n := 0
	var step func()
	step = func() {
		n++
		if n < 5 {
			p0.Engine().After(250, step)
		}
	}
	p0.Engine().Schedule(0, step)
	pe.RunWhile(func() bool { return true })

	if n != 5 {
		t.Fatalf("model ran %d steps, want 5", n)
	}
	if uint64(commits) != pe.Epochs() || commits == 0 {
		t.Fatalf("%d commit-hook runs, want one per epoch (%d)", commits, pe.Epochs())
	}
	if len(horizons) != commits {
		t.Fatalf("%d compute-hook runs, want %d", len(horizons), commits)
	}
	for i := 1; i < len(horizons); i++ {
		if horizons[i] <= horizons[i-1] {
			t.Fatalf("horizon %d ps did not advance past %d ps", horizons[i], horizons[i-1])
		}
	}
	d := pe.Diagnostic()
	if !strings.Contains(d, "2 partitions") || !strings.Contains(d, "gen") {
		t.Fatalf("diagnostic %q lacks partition detail", d)
	}
}

// TestRunUntilWhile pins the window semantics the epoch loop depends on:
// the clock is never bumped to the deadline and cond is honored between
// events.
func TestRunUntilWhile(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{3, 6, 9, 12} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	if held := e.RunUntilWhile(10, func() bool { return len(fired) < 2 }); held {
		t.Fatal("cond stop misreported as window exhaustion")
	}
	if len(fired) != 2 || e.Now() != 6 {
		t.Fatalf("after cond stop: %d fired, now=%d; want 2 fired at now=6", len(fired), e.Now())
	}
	if held := e.RunUntilWhile(10, func() bool { return true }); !held {
		t.Fatal("window exhaustion misreported as cond stop")
	}
	if len(fired) != 3 || e.Now() != 9 {
		t.Fatalf("after window: %d fired, now=%d; want 3 fired, clock held at 9 (not bumped to 10)", len(fired), e.Now())
	}
}
