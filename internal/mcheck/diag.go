package mcheck

import (
	"fmt"
	"io"

	"piranha/internal/lint"
	"piranha/internal/protocol"
	"piranha/internal/sim"
	"piranha/internal/trace"
)

// Diagnostics renders a result's violations as piranha-vet diagnostics,
// anchored at the protocol's first registered file: the table is the
// artifact being checked, and the finding should land where its rules
// are edited. One diagnostic per violation, in discovery order.
func (r *Result) Diagnostics(spec protocol.Spec) []lint.Diagnostic {
	file := "internal/protocol"
	if len(spec.Files) > 0 {
		file = spec.Files[0]
	}
	var out []lint.Diagnostic
	for _, v := range r.Violations {
		msg := fmt.Sprintf("%d-node exploration: %s", r.Nodes, v.Detail)
		if v.Rule != "" && v.Rule != "(none)" {
			msg += fmt.Sprintf(" (firing %s)", v.Rule)
		}
		msg += fmt.Sprintf("; counterexample depth %d", v.Depth)
		out = append(out, lint.Diagnostic{
			File:     file,
			Line:     1,
			Analyzer: "mcheck/" + v.Invariant,
			Message:  msg,
		})
	}
	return out
}

// CounterexampleEvents lays a violation's trace out as named spans, one
// step per simulated nanosecond, so the Perfetto timeline reads top to
// bottom as the interleaving that breaks the invariant. Each step spans
// the acting node's row; the final instant marks the violation itself.
func CounterexampleEvents(v Violation) []trace.NamedEvent {
	const stride = sim.Time(1_000_000) // 1 ns per step, in picoseconds
	events := make([]trace.NamedEvent, 0, len(v.Trace)+1)
	var at sim.Time
	for _, s := range v.Trace {
		name := s.Rule
		if name == "" {
			name = s.Kind
		}
		detail := s.State
		if s.Msg != "" {
			detail = s.Msg + " | " + detail
		}
		events = append(events, trace.NamedEvent{
			Name: name, Cat: s.Kind, Detail: detail,
			Node: uint8(s.Actor), Unit: 0,
			Start: at, End: at + stride,
		})
		at += stride
	}
	events = append(events, trace.NamedEvent{
		Name: "violation:" + v.Invariant, Cat: "violation", Detail: v.Detail,
		Node: uint8(lastActor(v)), Unit: 0, Start: at, End: at,
	})
	return events
}

func lastActor(v Violation) int {
	if len(v.Trace) == 0 {
		return 0
	}
	return v.Trace[len(v.Trace)-1].Actor
}

// WriteCounterexample exports one violation as a Chrome/Perfetto trace.
// The output is deterministic for a given violation.
func WriteCounterexample(w io.Writer, protocolName string, v Violation) error {
	label := fmt.Sprintf("mcheck %s: %s", protocolName, v.Invariant)
	return trace.WriteChromeNamed(w, 1, label, CounterexampleEvents(v))
}

// SelfTestResult is one mutation's verdict.
type SelfTestResult struct {
	Mutation string `json:"mutation"`
	// Expect is the invariant the mutation is documented to break.
	Expect string `json:"expect"`
	// Found are the invariants the exploration actually reported.
	Found []string `json:"found"`
	// Detected is true when the expected invariant was among them with a
	// non-empty counterexample.
	Detected bool   `json:"detected"`
	States   int    `json:"states"`
	Depth    int    `json:"depth,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// SelfTest plants each cataloged protocol bug in a fresh copy of the
// shipped table and checks the exploration catches it: the checker's
// own regression suite. A mutation whose expected invariant is not
// reported — or is reported without a counterexample — is a finding
// about the *checker*, reported with Detected=false.
func SelfTest(cfg Config) []SelfTestResult {
	var out []SelfTestResult
	for _, m := range protocol.Mutations() {
		mutated := m.Apply()
		res := Check(mutated, cfg)
		r := SelfTestResult{Mutation: m.Name, Expect: m.Expect, States: res.States}
		for _, v := range res.Violations {
			r.Found = append(r.Found, v.Invariant)
			if v.Invariant == m.Expect && len(v.Trace) > 0 {
				r.Detected = true
				r.Depth = v.Depth
				r.Detail = v.Detail
			}
		}
		out = append(out, r)
	}
	return out
}
