package mcheck

import (
	"fmt"
	"sort"

	"piranha/internal/directory"
	"piranha/internal/l2"
	"piranha/internal/protocol"
)

// Config bounds one exploration.
type Config struct {
	// Nodes is the micro-system size (2..4); node 0 is the home.
	Nodes int
	// MaxOps bounds the processor operations (issues and write hits)
	// any single trace may consume; evictions ride free, so the
	// reachable space is finite.
	MaxOps int
	// MaxDepth bounds the BFS depth; 0 explores to exhaustion.
	MaxDepth int
	// MaxStates is a safety valve on the visited set; 0 selects the
	// default.
	MaxStates int
	// TSRFEntries is the per-node occupancy bound the checker enforces.
	TSRFEntries int
	// MaxViolations stops the search after this many findings (default 1).
	MaxViolations int

	dcfg directory.Config
}

// Defaults for zero Config fields.
const (
	DefaultMaxOps      = 4
	DefaultMaxStates   = 4_000_000
	DefaultTSRFEntries = 4
)

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.MaxOps == 0 {
		c.MaxOps = DefaultMaxOps
	}
	if c.MaxStates == 0 {
		c.MaxStates = DefaultMaxStates
	}
	if c.TSRFEntries == 0 {
		c.TSRFEntries = DefaultTSRFEntries
	}
	if c.MaxViolations == 0 {
		c.MaxViolations = 1
	}
	c.dcfg = directory.Config{Nodes: c.Nodes}
	return c
}

// Step is one transition of a counterexample trace.
type Step struct {
	Actor int    `json:"actor"`
	Kind  string `json:"kind"` // "deliver" or "op"
	Rule  string `json:"rule"`
	Msg   string `json:"msg,omitempty"`
	State string `json:"state"`
}

// Violation is one invariant failure with its minimal (BFS-shortest)
// counterexample from the initial state.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
	Rule      string `json:"rule,omitempty"`
	Depth     int    `json:"depth"`
	Trace     []Step `json:"trace"`
}

// RuleCount reports how often a rule fired across the exploration.
type RuleCount struct {
	Rule  string `json:"rule"`
	Fires int    `json:"fires"`
}

// Result summarizes one exploration.
type Result struct {
	Protocol    string `json:"protocol"`
	Nodes       int    `json:"nodes"`
	MaxOps      int    `json:"max_ops"`
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
	Depth       int    `json:"depth"`
	// Exhausted is true when the frontier emptied within every bound:
	// the reported state count is the complete reachable space.
	Exhausted  bool        `json:"exhausted"`
	Violations []Violation `json:"violations"`
	// RuleFires counts firings per rule, sorted by rule name. Rules
	// with zero fires are listed too: a never-fired rule is dead table
	// weight worth knowing about.
	RuleFires []RuleCount `json:"rule_fires"`
}

// record is one visited state with its BFS parent for counterexample
// reconstruction.
type record struct {
	st     state
	parent int32
	depth  int32
	via    Step
}

// explorer runs one bounded BFS.
type explorer struct {
	cfg     Config
	table   *protocol.Table
	states  []record
	visited map[string]int32
	result  *Result
	fires   map[string]int
}

// Check explores the table's reachable state space under cfg and
// reports violations with counterexamples. Exploration is fully
// deterministic: successor enumeration, state hashing, and violation
// order depend only on the table and config.
func Check(table *protocol.Table, cfg Config) *Result {
	cfg = cfg.withDefaults()
	e := &explorer{
		cfg:     cfg,
		table:   table,
		visited: make(map[string]int32),
		result: &Result{
			Nodes:  cfg.Nodes,
			MaxOps: cfg.MaxOps,
		},
		fires: make(map[string]int),
	}
	for _, r := range table.Rules {
		e.fires[r.Name] = 0
	}
	e.run()
	e.result.States = len(e.states)
	names := make([]string, 0, len(e.fires))
	for _, r := range table.Rules {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		e.result.RuleFires = append(e.result.RuleFires, RuleCount{Rule: n, Fires: e.fires[n]})
	}
	return e.result
}

func (e *explorer) run() {
	init := state{}
	bits, err := directory.Encode(e.cfg.dcfg, directory.Clear())
	if err != nil {
		e.result.Violations = append(e.result.Violations, Violation{
			Invariant: InvCodec, Detail: err.Error()})
		return
	}
	init.dir = bits
	e.states = append(e.states, record{st: init, parent: -1,
		via: Step{Kind: "init", State: init.summary(e.cfg.Nodes, e.cfg.dcfg)}})
	e.visited[init.key(e.cfg.Nodes)] = 0

	exhausted := true
	for head := 0; head < len(e.states); head++ {
		cur := int32(head)
		depth := e.states[head].depth
		if int(depth) > e.result.Depth {
			e.result.Depth = int(depth)
		}
		// State invariants hold at every reachable configuration.
		if v, ok := e.checkStateInvariants(&e.states[head].st); ok {
			e.report(cur, depth, v, Step{})
			if len(e.result.Violations) >= e.cfg.MaxViolations {
				return
			}
			continue
		}
		if e.cfg.MaxDepth > 0 && int(depth) >= e.cfg.MaxDepth {
			exhausted = false
			continue
		}
		enabled, stop := e.expand(cur, depth)
		if stop {
			return
		}
		if !enabled && !e.states[head].st.quiescent(e.cfg.Nodes) {
			e.report(cur, depth, &violationErr{InvDeadlock,
				"messages in flight but no rule is enabled at any node"}, Step{})
			if len(e.result.Violations) >= e.cfg.MaxViolations {
				return
			}
		}
		if len(e.states) >= e.cfg.MaxStates {
			exhausted = false
			break
		}
	}
	e.result.Exhausted = exhausted
}

// expand generates all successors of state cur in deterministic order:
// message deliveries (src-major, dst-minor), then spontaneous
// processor operations (node-major, table-order minor). It reports
// whether any transition was enabled and whether the search must stop.
func (e *explorer) expand(cur int32, depth int32) (enabled, stop bool) {
	n := e.cfg.Nodes
	// Deliveries.
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst || len(e.states[cur].st.chans[src][dst]) == 0 {
				continue
			}
			m := e.states[cur].st.chans[src][dst][0]
			fired, delayed, stop := e.deliver(cur, depth, dst, m)
			if stop {
				return enabled, true
			}
			if fired && !delayed {
				enabled = true
			}
		}
	}
	// Spontaneous operations.
	for node := 0; node < n; node++ {
		for ri := range e.table.Rules {
			r := e.table.Rules[ri]
			if r.Msg != protocol.MsgNone {
				continue
			}
			if fired, stop := e.spontaneous(cur, depth, node, r); stop {
				return enabled, true
			} else if fired {
				enabled = true
			}
		}
	}
	return enabled, false
}

// deliver pops the head of channel (m.src → dst) and fires the first
// key- and guard-matching rule.
func (e *explorer) deliver(cur int32, depth int32, dst int, m msg) (fired, delayed, stop bool) {
	st := &e.states[cur].st
	entry := directory.Decode(e.cfg.dcfg, st.dir)
	line := st.nodes[dst].line
	step := Step{Actor: dst, Kind: "deliver", Msg: m.String()}

	for ri := range e.table.Rules {
		r := e.table.Rules[ri]
		if r.Msg != m.kind || !e.roleOK(r, dst) || !keyMatches(r, entry.State, line, m.req) {
			continue
		}
		probe := &interp{cfg: &e.cfg, st: st, rule: r, act: dst, m: &m,
			entry: entry, oldOwner: entry.Owner,
			requester: receptionRequester(m), reqKind: m.req}
		if !probe.guardHolds() {
			continue
		}
		// First matching rule fires on a state copy.
		next := st.clone()
		next.chans[m.src][dst] = append([]msg(nil), next.chans[m.src][dst][1:]...)
		in := &interp{cfg: &e.cfg, st: &next, rule: r, act: dst, m: &m,
			entry: entry, oldOwner: entry.Owner,
			requester: receptionRequester(m), reqKind: m.req}
		wasDelayed, err := in.run()
		step.Rule = r.Name
		e.fires[r.Name]++
		if wasDelayed {
			return true, true, false
		}
		if err != nil {
			step.State = next.summary(e.cfg.Nodes, e.cfg.dcfg)
			return true, false, e.reportErr(cur, depth+1, err, step)
		}
		step.State = next.summary(e.cfg.Nodes, e.cfg.dcfg)
		e.admit(cur, depth, next, step)
		return true, false, false
	}

	// No rule accepts the reception: either a declared hole was reached
	// (the table's unreachability promise is broken) or the reception is
	// wholly unspecified — the configuration a NAKing protocol would
	// bounce, which this protocol promises never to need.
	step.Rule = "(none)"
	step.State = st.summary(e.cfg.Nodes, e.cfg.dcfg)
	if reason, ok := e.table.Unreachable(entry.State, line, m.kind, m.req); ok {
		return false, false, e.reportErr(cur, depth+1, &violationErr{InvReachedHole,
			fmt.Sprintf("declared-unreachable reception %v at node %d (dir=%v line=%v): %s",
				m.kind, dst, entry.State, line, reason)}, step)
	}
	return false, false, e.reportErr(cur, depth+1, &violationErr{InvUnspecified,
		fmt.Sprintf("no rule for %v at node %d (dir=%v line=%v req=%v) — a NAK would be required",
			m.kind, dst, entry.State, line, m.req)}, step)
}

// spontaneous fires one processor-side rule at a node if its key,
// guard, and operation budget allow.
func (e *explorer) spontaneous(cur int32, depth int32, node int, r protocol.Rule) (fired, stop bool) {
	st := &e.states[cur].st
	consuming := opConsuming(r)
	if consuming && int(st.ops) >= e.cfg.MaxOps {
		return false, false
	}
	entry := directory.Decode(e.cfg.dcfg, st.dir)
	if !e.roleOK(r, node) || !keyMatches(r, entry.State, st.nodes[node].line, r.Req) {
		return false, false
	}
	probe := &interp{cfg: &e.cfg, st: st, rule: r, act: node, m: nil,
		entry: entry, oldOwner: entry.Owner,
		requester: uint8(node), reqKind: r.Req}
	if !probe.guardHolds() {
		return false, false
	}
	next := st.clone()
	if consuming {
		next.ops++
	}
	in := &interp{cfg: &e.cfg, st: &next, rule: r, act: node, m: nil,
		entry: entry, oldOwner: entry.Owner,
		requester: uint8(node), reqKind: r.Req}
	_, err := in.run()
	e.fires[r.Name]++
	step := Step{Actor: node, Kind: "op", Rule: r.Name,
		State: next.summary(e.cfg.Nodes, e.cfg.dcfg)}
	if err != nil {
		return true, e.reportErr(cur, depth+1, err, step)
	}
	e.admit(cur, depth, next, step)
	return true, false
}

// admit records a successor state if it is new.
func (e *explorer) admit(parent int32, depth int32, next state, via Step) {
	e.result.Transitions++
	k := next.key(e.cfg.Nodes)
	if _, seen := e.visited[k]; seen {
		return
	}
	e.visited[k] = int32(len(e.states))
	e.states = append(e.states, record{st: next, parent: parent, depth: depth + 1, via: via})
}

// roleOK checks a rule's placement restriction against the acting node.
func (e *explorer) roleOK(r protocol.Rule, node int) bool {
	switch r.Role {
	case protocol.RoleHome:
		return node == home
	case protocol.RoleRemote:
		return node != home
	}
	return true
}

// keyMatches mirrors protocol.Rule key matching for a concrete triple.
func keyMatches(r protocol.Rule, dir directory.State, line protocol.LineKind, req l2.Kind) bool {
	return (r.Dir == protocol.DirAny || r.Dir == dir) &&
		(r.Line == protocol.LineAny || r.Line == line) &&
		(r.Req == protocol.ReqAny || r.Req == req)
}

// receptionRequester is the node a reply or ack must target.
func receptionRequester(m msg) uint8 {
	switch m.kind {
	case protocol.MsgReq, protocol.MsgFwd, protocol.MsgInval:
		return m.requester
	}
	return m.src
}

// opConsuming reports whether a spontaneous rule draws on the
// operation budget: issues (specific request kinds) and write hits do;
// evictions ride free, since each needs a preceding fill.
func opConsuming(r protocol.Rule) bool {
	if r.Req != protocol.ReqAny {
		return true
	}
	for _, op := range r.Do {
		if op == protocol.OpWriteLocal {
			return true
		}
	}
	return false
}

// checkStateInvariants verifies the properties every reachable state
// must satisfy, beyond the per-transition checks the interpreter makes.
func (e *explorer) checkStateInvariants(st *state) (*violationErr, bool) {
	n := e.cfg.Nodes
	// Single-writer: at most one exclusive copy systemwide, and the
	// exclusive copy is the last written version. A node with a
	// writeback in flight has relinquished ownership — its held copy
	// exists only to serve early forwards (§3.5) and OpSupplyOwn checks
	// currency at serve time — so it does not count as a writer.
	exclusives := 0
	for i := 0; i < n; i++ {
		nd := &st.nodes[i]
		if nd.line == protocol.LineExclusive && !nd.wb {
			exclusives++
			if nd.val != st.cur {
				return &violationErr{InvStaleSupply,
					fmt.Sprintf("node %d holds the line exclusively at v%d but the last write is v%d", i, nd.val, st.cur)}, true
			}
		}
		if int(nd.tsrf) > e.cfg.TSRFEntries {
			return &violationErr{InvTSRFBound,
				fmt.Sprintf("node %d occupies %d TSRF entries (bound %d)", i, nd.tsrf, e.cfg.TSRFEntries)}, true
		}
		// No stale readable copy: a shared holder lagging the last write
		// must have its invalidation already in flight (the bounded
		// window weak ordering permits); a stale copy nobody is coming
		// for is a read of lost data.
		if nd.line == protocol.LineShared && nd.val != st.cur && !st.invalInFlightTo(n, i) {
			return &violationErr{InvStaleSharer,
				fmt.Sprintf("node %d holds a readable v%d copy after write v%d with no invalidation in flight", i, nd.val, st.cur)}, true
		}
	}
	if exclusives > 1 {
		return &violationErr{InvMultiWriter,
			fmt.Sprintf("%d nodes hold the line exclusively", exclusives)}, true
	}
	if !st.quiescent(n) {
		return nil, false
	}
	// Quiescent-state invariants: with no message in flight, every
	// transaction is settled.
	for i := 0; i < n; i++ {
		nd := &st.nodes[i]
		if nd.hasPend || nd.wb {
			return &violationErr{InvLostTransact,
				fmt.Sprintf("node %d waits forever: nothing in flight can resolve its transaction", i)}, true
		}
		if nd.acks > 0 {
			return &violationErr{InvAckAccount,
				fmt.Sprintf("node %d is owed %d invalidation acks that can never arrive", i, nd.acks)}, true
		}
		if nd.tsrf > 0 {
			return &violationErr{InvTSRFLeak,
				fmt.Sprintf("node %d holds %d TSRF entries with no transaction outstanding", i, nd.tsrf)}, true
		}
	}
	if exclusives == 0 && st.mem != st.cur {
		return &violationErr{InvMemStale,
			fmt.Sprintf("memory holds v%d, last write is v%d, and no exclusive copy exists", st.mem, st.cur)}, true
	}
	return nil, false
}

// report records a violation found *at* state cur (state invariant).
func (e *explorer) report(cur int32, depth int32, v *violationErr, extra Step) {
	e.result.Violations = append(e.result.Violations, Violation{
		Invariant: v.invariant,
		Detail:    v.detail,
		Depth:     int(depth),
		Trace:     e.tracePath(cur, extra),
	})
}

// reportErr records a violation found on a transition out of cur and
// reports whether the search should stop.
func (e *explorer) reportErr(cur int32, depth int32, err error, step Step) bool {
	v, ok := err.(*violationErr)
	if !ok {
		v = &violationErr{InvUnspecified, err.Error()}
	}
	e.result.Violations = append(e.result.Violations, Violation{
		Invariant: v.invariant,
		Detail:    v.detail,
		Rule:      step.Rule,
		Depth:     int(depth),
		Trace:     e.tracePath(cur, step),
	})
	return len(e.result.Violations) >= e.cfg.MaxViolations
}

// tracePath reconstructs the shortest path from the initial state,
// appending the violating step when one exists.
func (e *explorer) tracePath(cur int32, extra Step) []Step {
	var rev []Step
	for i := cur; i >= 0; i = e.states[i].parent {
		rev = append(rev, e.states[i].via)
	}
	out := make([]Step, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	if extra.Kind != "" || extra.Rule != "" {
		out = append(out, extra)
	}
	return out
}
