// Package mcheck is a bounded model checker for protocol tables
// registered in internal/protocol: it exhaustively enumerates the
// reachable states of an N-node micro-system (2–4 nodes, one cache
// line, home at node 0) under all message interleavings and proves the
// §3.5 safety claims — NAK-freedom (every reception is specified),
// deadlock-freedom, no stale-data reads, and TSRF occupancy bounds —
// that the simulator's recovery sweep can only spot-check dynamically.
//
// The abstract machine follows the Guarded Action Language approach:
// protocol state is (directory entry, per-node line kind + abstract
// data version, in-flight messages, TSRF occupancy), and a rule firing
// is atomic. Data is a version counter: every store increments the
// global version, so "a reader always observes the last writer's
// value" becomes an equality check at each supply and fill. The
// directory entry is carried in its *encoded* 44-bit form and decoded
// at every step, so exploration also exercises the Encode/Decode codec
// across every sharer-bitset shape it can reach.
//
// Messages travel on per-(src,dst) FIFO channels, matching the fabric's
// ordered virtual lanes: messages between the same pair never reorder,
// while messages on different channels interleave arbitrarily. That is
// exactly the race surface the protocol's absorb rules (stale
// invalidations, stale writebacks, early forwards) exist for.
package mcheck

import (
	"fmt"
	"strings"

	"piranha/internal/directory"
	"piranha/internal/l2"
	"piranha/internal/protocol"
)

// maxNodes is the largest micro-system the checker explores. The state
// arrays are sized for it; Config.Nodes selects the live prefix.
const maxNodes = 4

// home is the node index holding the line's directory and memory.
const home = 0

// msg is one in-flight protocol message.
type msg struct {
	kind      protocol.MsgKind
	src, dst  uint8
	req       l2.Kind // request kind (MsgReq, MsgFwd only)
	requester uint8   // reply/ack target (MsgReq, MsgFwd, MsgInval)
	val       uint8   // data version carried (replies, writebacks)
	hasData   bool
	excl      bool // reply grants exclusivity
}

func (m msg) String() string {
	s := fmt.Sprintf("%v %d->%d", m.kind, m.src, m.dst)
	switch m.kind {
	case protocol.MsgReq, protocol.MsgFwd:
		s += fmt.Sprintf(" %s for n%d", protocol.KindSlug(m.req), m.requester)
	case protocol.MsgInval:
		s += fmt.Sprintf(" ack to n%d", m.requester)
	case protocol.MsgReply:
		if m.hasData {
			s += fmt.Sprintf(" data v%d", m.val)
		} else {
			s += " grant"
		}
		if m.excl {
			s += " excl"
		}
	case protocol.MsgWB, protocol.MsgShareWB:
		s += fmt.Sprintf(" v%d", m.val)
	}
	return s
}

// nodeState is one node's slice of the protocol state.
type nodeState struct {
	line    protocol.LineKind
	val     uint8 // data version held (meaningful when line != invalid)
	pend    l2.Kind
	hasPend bool  // a fill transaction is outstanding
	wb      bool  // a writeback awaits its ack
	inv     bool  // the pending shared fill was overtaken by an invalidation
	acks    uint8 // invalidation acks still owed to this node
	tsrf    uint8 // occupied TSRF entries
}

// state is one configuration of the micro-system. The directory entry
// is stored encoded (44 bits) so canonicalization round-trips the
// codec every step.
type state struct {
	dir   uint64
	mem   uint8 // memory's data version
	cur   uint8 // latest written version (abstract global clock)
	ops   uint8 // processor operations consumed (bounds the space)
	nodes [maxNodes]nodeState
	// chans[src][dst] is the FIFO channel between a node pair.
	chans [maxNodes][maxNodes][]msg
}

// clone deep-copies the state (channel slices included).
func (s *state) clone() state {
	out := *s
	for i := range s.chans {
		for j := range s.chans[i] {
			if len(s.chans[i][j]) > 0 {
				out.chans[i][j] = append([]msg(nil), s.chans[i][j]...)
			}
		}
	}
	return out
}

// key serializes the state into its canonical byte form. Field order is
// fixed, so equal states produce equal keys and the visited set is
// deterministic.
func (s *state) key(nodes int) string {
	var b []byte
	b = append(b,
		byte(s.dir), byte(s.dir>>8), byte(s.dir>>16), byte(s.dir>>24),
		byte(s.dir>>32), byte(s.dir>>40),
		s.mem, s.cur, s.ops)
	for n := 0; n < nodes; n++ {
		nd := &s.nodes[n]
		flags := byte(0)
		if nd.hasPend {
			flags |= 1
		}
		if nd.wb {
			flags |= 2
		}
		if nd.inv {
			flags |= 4
		}
		b = append(b, byte(nd.line), nd.val, byte(nd.pend), flags, nd.acks, nd.tsrf)
	}
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			ch := s.chans[src][dst]
			b = append(b, byte(len(ch)))
			for _, m := range ch {
				flags := byte(0)
				if m.hasData {
					flags |= 1
				}
				if m.excl {
					flags |= 2
				}
				b = append(b, byte(m.kind), m.src, m.dst, byte(m.req), m.requester, m.val, flags)
			}
		}
	}
	return string(b)
}

// quiescent reports whether no messages are in flight.
func (s *state) quiescent(nodes int) bool {
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if len(s.chans[src][dst]) > 0 {
				return false
			}
		}
	}
	return true
}

// invalInFlightTo reports whether any channel carries an invalidation
// addressed to node n.
func (s *state) invalInFlightTo(nodes, n int) bool {
	for src := 0; src < nodes; src++ {
		for _, m := range s.chans[src][n] {
			if m.kind == protocol.MsgInval {
				return true
			}
		}
	}
	return false
}

// summary renders the state for counterexample steps.
func (s *state) summary(nodes int, dcfg directory.Config) string {
	e := directory.Decode(dcfg, s.dir)
	var sb strings.Builder
	switch e.State {
	case directory.Exclusive:
		fmt.Fprintf(&sb, "dir=E(n%d)", e.Owner)
	case directory.Shared, directory.SharedCoarse:
		fmt.Fprintf(&sb, "dir=%v%v", e.State, e.Sharers.Members(nodes))
	default:
		sb.WriteString("dir=uncached")
	}
	fmt.Fprintf(&sb, " mem=v%d cur=v%d", s.mem, s.cur)
	for n := 0; n < nodes; n++ {
		nd := &s.nodes[n]
		fmt.Fprintf(&sb, " n%d=%v", n, nd.line)
		if nd.line != protocol.LineInvalid {
			fmt.Fprintf(&sb, "/v%d", nd.val)
		}
		if nd.hasPend {
			fmt.Fprintf(&sb, "+pend:%s", protocol.KindSlug(nd.pend))
		}
		if nd.wb {
			sb.WriteString("+wb")
		}
		if nd.inv {
			sb.WriteString("+poison")
		}
		if nd.acks > 0 {
			fmt.Fprintf(&sb, "+acks:%d", nd.acks)
		}
	}
	msgs := 0
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			msgs += len(s.chans[src][dst])
		}
	}
	if msgs > 0 {
		fmt.Fprintf(&sb, " msgs=%d", msgs)
	}
	return sb.String()
}

// violationErr carries an invariant violation out of the interpreter.
type violationErr struct {
	invariant string
	detail    string
}

func (v *violationErr) Error() string { return v.invariant + ": " + v.detail }

// Invariant identifiers, shared with the mutation self-test catalog in
// internal/protocol.
const (
	InvUnspecified  = "unspecified-reception"
	InvReachedHole  = "reached-hole"
	InvDeadlock     = "deadlock"
	InvStaleSupply  = "stale-supply"
	InvStaleFill    = "stale-fill"
	InvStaleSharer  = "stale-sharer"
	InvMultiWriter  = "multiple-writers"
	InvWriteGrant   = "write-not-granted"
	InvTSRFBound    = "tsrf-bound"
	InvTSRFLeak     = "tsrf-leak"
	InvAckAccount   = "ack-accounting"
	InvMemStale     = "mem-stale"
	InvCodec        = "directory-codec"
	InvLostTransact = "lost-transaction"
)

// interp applies one rule to a state copy. m is nil for spontaneous
// rules; actor is the node the rule fires at. It returns delayed=true
// when the rule elected to leave the message in place (OpDelay).
type interp struct {
	cfg  *Config
	st   *state
	rule protocol.Rule
	act  int
	m    *msg

	entry     directory.Entry // directory at rule entry
	oldOwner  directory.NodeID
	requester uint8
	reqKind   l2.Kind
	data      uint8
	hasData   bool
	cleanEx   bool
}

func (in *interp) node() *nodeState { return &in.st.nodes[in.act] }

func (in *interp) setDir(e directory.Entry) error {
	bits, err := directory.Encode(in.cfg.dcfg, e)
	if err != nil {
		return &violationErr{InvCodec, fmt.Sprintf("encoding %+v: %v", e, err)}
	}
	back := directory.Decode(in.cfg.dcfg, bits)
	if back.State != e.State {
		return &violationErr{InvCodec, fmt.Sprintf("entry %+v decoded as state %v", e, back.State)}
	}
	in.st.dir = bits
	return nil
}

func (in *interp) send(m msg) {
	in.st.chans[m.src][m.dst] = append(in.st.chans[m.src][m.dst], m)
}

// run applies the rule's opcodes in order. A returned violationErr
// aborts at the faulting opcode; the partially-applied state is the
// violation's final trace step.
func (in *interp) run() (delayed bool, err error) {
	s, nd := in.st, in.node()
	for _, op := range in.rule.Do {
		switch op {
		case protocol.OpSendReq:
			in.send(msg{kind: protocol.MsgReq, src: uint8(in.act), dst: home,
				req: in.reqKind, requester: uint8(in.act)})
			nd.pend, nd.hasPend = in.reqKind, true

		case protocol.OpReserveTSRF:
			if int(nd.tsrf) >= in.cfg.TSRFEntries {
				return false, &violationErr{InvTSRFBound,
					fmt.Sprintf("node %d exceeds %d TSRF entries", in.act, in.cfg.TSRFEntries)}
			}
			nd.tsrf++

		case protocol.OpReleaseTSRF:
			if nd.tsrf == 0 {
				return false, &violationErr{InvTSRFBound,
					fmt.Sprintf("node %d releases an unreserved TSRF entry", in.act)}
			}
			nd.tsrf--

		case protocol.OpSupplyHome:
			if s.nodes[home].line != protocol.LineInvalid {
				in.data = s.nodes[home].val
			} else {
				in.data = s.mem
			}
			in.hasData = true
			if in.data != s.cur {
				return false, &violationErr{InvStaleSupply,
					fmt.Sprintf("home supplies v%d but the last write is v%d", in.data, s.cur)}
			}

		case protocol.OpSupplyOwn:
			in.data, in.hasData = nd.val, true
			if in.data != s.cur {
				return false, &violationErr{InvStaleSupply,
					fmt.Sprintf("owner n%d supplies v%d but the last write is v%d", in.act, in.data, s.cur)}
			}

		case protocol.OpReplyData:
			in.send(msg{kind: protocol.MsgReply, src: uint8(in.act), dst: in.requester,
				val: in.data, hasData: true,
				excl: protocol.WantsExclusive(in.reqKind) || in.cleanEx})

		case protocol.OpReplyGrant:
			in.send(msg{kind: protocol.MsgReply, src: uint8(in.act), dst: in.requester,
				excl: true})

		case protocol.OpForwardReq:
			in.send(msg{kind: protocol.MsgFwd, src: uint8(in.act), dst: uint8(in.oldOwner),
				req: in.reqKind, requester: in.requester})
			if in.m == nil {
				// The home itself is the requester (home-local miss on a
				// remotely-owned line): it waits for the owner's reply.
				nd.pend, nd.hasPend = in.reqKind, true
			}

		case protocol.OpInvalSharers:
			for _, sh := range in.sharersExceptRequester() {
				in.send(msg{kind: protocol.MsgInval, src: uint8(in.act), dst: uint8(sh),
					requester: in.requester})
				s.nodes[in.requester].acks++
			}

		case protocol.OpInvalHome:
			s.nodes[home].line = protocol.LineInvalid

		case protocol.OpDowngradeHome:
			if s.nodes[home].line == protocol.LineExclusive {
				// A dirty home copy writes through on downgrade: home data
				// and directory live in the same local DRAM line, so the
				// home chip's dirty share refreshes memory as it is read —
				// without this, a later silent eviction of the home's
				// shared copy would strand the only current value.
				s.mem = s.nodes[home].val
				s.nodes[home].line = protocol.LineShared
			}

		case protocol.OpDirReadGrant:
			var e directory.Entry
			if in.entry.State == directory.Uncached && s.nodes[home].line == protocol.LineInvalid {
				// Clean-exclusive optimization: no copy exists anywhere.
				e = directory.SetExclusive(directory.Entry{}, directory.NodeID(in.requester))
				in.cleanEx = true
			} else {
				e = directory.AddSharer(in.cfg.dcfg, in.entry, directory.NodeID(in.requester))
			}
			if err := in.setDir(e); err != nil {
				return false, err
			}

		case protocol.OpDirSetExclusiveReq:
			if err := in.setDir(directory.SetExclusive(directory.Entry{}, directory.NodeID(in.requester))); err != nil {
				return false, err
			}

		case protocol.OpDirShareOwnerReq:
			e := directory.AddSharer(in.cfg.dcfg, directory.Clear(), in.oldOwner)
			if in.requester != home {
				e = directory.AddSharer(in.cfg.dcfg, e, directory.NodeID(in.requester))
			}
			if err := in.setDir(e); err != nil {
				return false, err
			}

		case protocol.OpDirClear:
			if err := in.setDir(directory.Clear()); err != nil {
				return false, err
			}

		case protocol.OpFill:
			if err := in.fill(); err != nil {
				return false, err
			}

		case protocol.OpInvalidateLine:
			nd.line = protocol.LineInvalid

		case protocol.OpDowngradeLine:
			if nd.line == protocol.LineExclusive {
				nd.line = protocol.LineShared
			}

		case protocol.OpAckRequester:
			in.send(msg{kind: protocol.MsgInvAck, src: uint8(in.act), dst: in.requester})

		case protocol.OpGatherAck:
			if nd.acks == 0 {
				return false, &violationErr{InvAckAccount,
					fmt.Sprintf("node %d received an invalidation ack with none owed", in.act)}
			}
			nd.acks--

		case protocol.OpUpdateMem:
			if in.m != nil && (in.m.kind == protocol.MsgWB || in.m.kind == protocol.MsgShareWB) {
				s.mem = in.m.val
			} else {
				s.mem = nd.val
			}

		case protocol.OpSendWB:
			in.send(msg{kind: protocol.MsgWB, src: uint8(in.act), dst: home,
				val: nd.val, hasData: true})
			nd.wb = true

		case protocol.OpSendShareWB:
			in.send(msg{kind: protocol.MsgShareWB, src: uint8(in.act), dst: home,
				val: nd.val, hasData: true})

		case protocol.OpAckWB:
			in.send(msg{kind: protocol.MsgWBAck, src: uint8(in.act), dst: in.m.src})

		case protocol.OpWriteLocal:
			if nd.line != protocol.LineExclusive {
				return false, &violationErr{InvWriteGrant,
					fmt.Sprintf("node %d writes a %v line", in.act, nd.line)}
			}
			s.cur++
			nd.val = s.cur

		case protocol.OpComplete:
			if in.m != nil && in.m.kind == protocol.MsgWBAck {
				nd.wb = false
				break
			}
			pendK := nd.pend
			nd.hasPend, nd.pend = false, 0
			if protocol.WantsExclusive(pendK) {
				// The store that motivated the miss retires now.
				if nd.line != protocol.LineExclusive {
					return false, &violationErr{InvWriteGrant,
						fmt.Sprintf("node %d completes %s holding a %v line", in.act, protocol.KindSlug(pendK), nd.line)}
				}
				s.cur++
				nd.val = s.cur
			}

		case protocol.OpDelay:
			return true, nil

		case protocol.OpPoisonFill:
			nd.inv = true

		default:
			return false, &violationErr{InvUnspecified, fmt.Sprintf("unknown opcode %v", op)}
		}
	}
	return false, nil
}

// fill installs a grant or data at the acting node. Two contexts: a
// reply reception, or a home-local (spontaneous) miss service.
func (in *interp) fill() error {
	nd := in.node()
	if in.m != nil {
		// Reply reception: the pending kind says what the fill means.
		pendK := nd.pend
		if in.m.hasData {
			nd.val = in.m.val
			if in.m.excl {
				nd.line = protocol.LineExclusive
			} else {
				nd.line = protocol.LineShared
			}
			if nd.inv {
				// An invalidation overtook this fill: the data satisfies
				// the pending load once and is not cached.
				nd.line = protocol.LineInvalid
				nd.inv = false
			}
			return nil
		}
		// Header-only grant.
		switch pendK {
		case l2.Upgrade:
			if nd.line != protocol.LineShared {
				return &violationErr{InvStaleFill,
					fmt.Sprintf("node %d holds no copy but its upgrade was granted without data", in.act)}
			}
			if nd.val != in.st.cur {
				return &violationErr{InvStaleFill,
					fmt.Sprintf("node %d promotes a stale v%d copy to exclusive (last write v%d)", in.act, nd.val, in.st.cur)}
			}
			nd.line = protocol.LineExclusive
		case l2.ReadExNoData:
			// The requester overwrites the whole line; the completion
			// write supplies the value.
			nd.line = protocol.LineExclusive
		default:
			return &violationErr{InvStaleFill,
				fmt.Sprintf("node %d asked for data (%s) but was granted none", in.act, protocol.KindSlug(pendK))}
		}
		return nil
	}
	// Home-local miss service (no message): the directory state at rule
	// entry decides the local fill kind, as the L2's duplicate tags do.
	if in.hasData {
		nd.val = in.data
	}
	if in.reqKind == l2.Read {
		if in.entry.State == directory.Uncached {
			nd.line = protocol.LineExclusive // local clean-exclusive
		} else {
			nd.line = protocol.LineShared
		}
		return nil
	}
	if in.reqKind == l2.Upgrade && nd.val != in.st.cur {
		return &violationErr{InvStaleFill,
			fmt.Sprintf("home promotes a stale v%d copy to exclusive (last write v%d)", nd.val, in.st.cur)}
	}
	nd.line = protocol.LineExclusive
	return nil
}

// sharersExceptRequester lists the directory's nodes minus the
// requester, in ascending order (invalidation fan-out order).
func (in *interp) sharersExceptRequester() []directory.NodeID {
	var out []directory.NodeID
	switch in.entry.State {
	case directory.Uncached:
	case directory.Exclusive:
		if in.entry.Owner != directory.NodeID(in.requester) {
			out = append(out, in.entry.Owner)
		}
	case directory.Shared, directory.SharedCoarse:
		for _, n := range in.entry.Sharers.Members(in.cfg.Nodes) {
			if n != directory.NodeID(in.requester) {
				out = append(out, n)
			}
		}
	}
	return out
}

// guardHolds evaluates a rule's guard against the current state.
func (in *interp) guardHolds() bool {
	nd := in.node()
	switch in.rule.When {
	case protocol.GAlways:
		return true
	case protocol.GReqIsSharer:
		return in.entry.Sharers.Has(directory.NodeID(in.requester))
	case protocol.GReqNotSharer:
		return !in.entry.Sharers.Has(directory.NodeID(in.requester))
	case protocol.GOwnerNotReq:
		return in.entry.Owner != directory.NodeID(in.requester)
	case protocol.GSenderIsOwner:
		return in.entry.State == directory.Exclusive && in.entry.Owner == directory.NodeID(in.m.src)
	case protocol.GSenderNotOwner:
		return in.entry.State != directory.Exclusive || in.entry.Owner != directory.NodeID(in.m.src)
	case protocol.GNoPending:
		return !nd.hasPend && !nd.wb && nd.tsrf == 0
	case protocol.GPendingFill:
		return nd.hasPend
	case protocol.GPendingWB:
		return nd.wb
	case protocol.GEngineBusy:
		return nd.tsrf > 0
	case protocol.GPendingShareFill:
		return nd.hasPend && !protocol.WantsExclusive(nd.pend)
	}
	return false
}
