package mcheck

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"piranha/internal/protocol"
)

// The headline claim: the shipped protocol's full 2-node state space is
// exhausted with zero violations. Every reachable interleaving of
// requests, forwards, invalidations, replies and writebacks at the
// default operation budget is visited.
func TestTwoNodeExhaustiveClean(t *testing.T) {
	res := Check(protocol.Piranha(), Config{Nodes: 2})
	if !res.Exhausted {
		t.Fatalf("2-node exploration not exhausted: %d states, depth %d", res.States, res.Depth)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("2-node exploration found violations: %+v", res.Violations)
	}
	if res.States < 1000 {
		t.Fatalf("suspiciously small state space (%d states): the explorer is not firing rules", res.States)
	}
}

// Larger micro-systems exercise the races a 2-node system cannot: a
// third party's invalidation overtaking an in-flight fill, forwards
// racing sharing writebacks, stale writebacks under forwarded
// ownership.
func TestThreeAndFourNodeExhaustiveClean(t *testing.T) {
	for _, n := range []int{3, 4} {
		res := Check(protocol.Piranha(), Config{Nodes: n})
		if !res.Exhausted {
			t.Fatalf("%d-node exploration not exhausted: %d states", n, res.States)
		}
		if len(res.Violations) != 0 {
			v := res.Violations[0]
			t.Fatalf("%d-node exploration: %s: %s\ntrace: %v", n, v.Invariant, v.Detail, v.Trace)
		}
	}
}

// Exploration is deterministic: two runs agree on every count and on
// the byte-level JSON encoding of the full result.
func TestDeterministicExploration(t *testing.T) {
	a := Check(protocol.Piranha(), Config{Nodes: 3})
	b := Check(protocol.Piranha(), Config{Nodes: 3})
	if a.States != b.States || a.Transitions != b.Transitions || a.Depth != b.Depth {
		t.Fatalf("runs disagree: %d/%d/%d vs %d/%d/%d",
			a.States, a.Transitions, a.Depth, b.States, b.Transitions, b.Depth)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("identical explorations produced different JSON")
	}
}

// The operation budget and depth bound are honored, and a bounded run
// says so instead of claiming exhaustion.
func TestBoundsReported(t *testing.T) {
	res := Check(protocol.Piranha(), Config{Nodes: 2, MaxDepth: 3})
	if res.Exhausted {
		t.Fatal("depth-bounded run claims exhaustion")
	}
	if res.Depth > 3 {
		t.Fatalf("depth bound ignored: reached %d", res.Depth)
	}
	// The state cap is checked between expansions, so it may overshoot
	// by one state's successors — it is a safety valve, not an exact
	// budget.
	res = Check(protocol.Piranha(), Config{Nodes: 2, MaxStates: 50})
	if res.Exhausted || res.States < 50 || res.States > 100 {
		t.Fatalf("state bound ignored: %d states, exhausted=%v", res.States, res.Exhausted)
	}
}

// Every rule that fires is counted; the count list is sorted and covers
// the whole table, and on an exhausted 2-node run the core service
// rules all fired.
func TestRuleFireAccounting(t *testing.T) {
	res := Check(protocol.Piranha(), Config{Nodes: 2})
	tab := protocol.Piranha()
	if len(res.RuleFires) != len(tab.Rules) {
		t.Fatalf("RuleFires covers %d rules, table has %d", len(res.RuleFires), len(tab.Rules))
	}
	fired := map[string]int{}
	for i, rc := range res.RuleFires {
		if i > 0 && res.RuleFires[i-1].Rule >= rc.Rule {
			t.Fatalf("RuleFires unsorted at %q", rc.Rule)
		}
		fired[rc.Rule] = rc.Fires
	}
	for _, core := range []string{"issue-read", "issue-write", "q-read-uncached", "q-write-uncached",
		"recv-reply", "w-owner", "wb-done", "i-shared", "a-gather", "h-write-shared"} {
		if fired[core] == 0 {
			t.Errorf("core rule %s never fired in an exhausted 2-node run", core)
		}
	}
}

// The mutation self-test: each cataloged protocol bug is detected with
// its documented invariant and a non-empty counterexample. This is the
// checker checking itself — a bug class it stops seeing is a
// regression in the checker, not a cleaner protocol.
func TestMutationsDetected(t *testing.T) {
	results := SelfTest(Config{Nodes: 2, MaxViolations: 4})
	if len(results) != len(protocol.Mutations()) {
		t.Fatalf("self-test ran %d mutations, catalog has %d", len(results), len(protocol.Mutations()))
	}
	for _, r := range results {
		if !r.Detected {
			t.Errorf("mutation %s: expected invariant %s not detected (found %v)",
				r.Mutation, r.Expect, r.Found)
			continue
		}
		if r.Depth == 0 {
			t.Errorf("mutation %s: counterexample has no steps", r.Mutation)
		}
	}
}

// A violation exports as a deterministic Chrome trace whose spans carry
// the rule names, so the counterexample is inspectable in Perfetto.
func TestCounterexampleExport(t *testing.T) {
	m, ok := protocol.MutationByName("wrong-reply-kind")
	if !ok {
		t.Fatal("mutation catalog lost wrong-reply-kind")
	}
	res := Check(m.Apply(), Config{Nodes: 2})
	if len(res.Violations) == 0 {
		t.Fatal("mutation produced no violation")
	}
	v := res.Violations[0]
	var a, b bytes.Buffer
	if err := WriteCounterexample(&a, "piranha", v); err != nil {
		t.Fatal(err)
	}
	if err := WriteCounterexample(&b, "piranha", v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("counterexample export is nondeterministic")
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var sawRule, sawViolation bool
	for _, e := range doc.TraceEvents {
		if strings.HasPrefix(e.Name, "violation:") {
			sawViolation = true
		}
		if e.Name == v.Trace[len(v.Trace)-1].Rule {
			sawRule = true
		}
	}
	if !sawViolation || !sawRule {
		t.Fatalf("export missing violation marker or rule spans (violation=%v rule=%v)", sawViolation, sawRule)
	}
}

// Violations surface in piranha-vet's diagnostic shape, anchored at the
// protocol's table file with the invariant as the analyzer name.
func TestDiagnostics(t *testing.T) {
	m, _ := protocol.MutationByName("missing-tsrf-release")
	res := Check(m.Apply(), Config{Nodes: 2})
	spec, _ := protocol.Lookup("piranha")
	diags := res.Diagnostics(spec)
	if len(diags) != len(res.Violations) {
		t.Fatalf("%d diagnostics for %d violations", len(diags), len(res.Violations))
	}
	d := diags[0]
	if d.File != spec.Files[0] {
		t.Errorf("diagnostic anchored at %q, want %q", d.File, spec.Files[0])
	}
	if d.Analyzer != "mcheck/"+InvTSRFLeak {
		t.Errorf("analyzer = %q, want mcheck/%s", d.Analyzer, InvTSRFLeak)
	}
	if !strings.Contains(d.Message, "counterexample depth") {
		t.Errorf("message lacks counterexample depth: %q", d.Message)
	}
	// A clean result yields no diagnostics.
	clean := Check(protocol.Piranha(), Config{Nodes: 2})
	if diags := clean.Diagnostics(spec); len(diags) != 0 {
		t.Errorf("clean run produced diagnostics: %v", diags)
	}
}

// The directory codec is exercised on every directory write during
// exploration: a 4-node run visits entries through Encode/Decode for
// every sharer-set shape the protocol can produce.
func TestExplorationRoundTripsCodec(t *testing.T) {
	res := Check(protocol.Piranha(), Config{Nodes: 4, MaxOps: 3})
	for _, v := range res.Violations {
		if v.Invariant == InvCodec {
			t.Fatalf("directory codec violation: %s", v.Detail)
		}
	}
}
