package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"piranha/internal/sim"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Span(CPU, KStall, 0, 0, 0, 0, 10, 0)
	tr.Instant(L2, KL2Owner, 0, 0, 0, 5, 0)
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil tracer counts: len=%d total=%d dropped=%d", tr.Len(), tr.Total(), tr.Dropped())
	}
	if got := tr.Events(nil); len(got) != 0 {
		t.Fatalf("nil tracer returned %d events", len(got))
	}
	if tr.Counts() != nil {
		t.Fatal("nil tracer returned a counts set")
	}
}

func TestRingWrap(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Span(L1, KMissLoad, 0, int16(i), uint64(i), sim.Time(i), sim.Time(i+1), 0)
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events(nil)
	if len(evs) != 4 {
		t.Fatalf("Events returned %d, want 4", len(evs))
	}
	// Oldest retained first: events 6,7,8,9.
	for i, e := range evs {
		if want := sim.Time(6 + i); e.Start != want {
			t.Fatalf("event %d start = %d, want %d", i, e.Start, want)
		}
	}
	// Counts cover all 10 recordings, dropped included.
	if got := tr.Counts().Value(Name(L1, KMissLoad)); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
}

func TestRingExactCapacity(t *testing.T) {
	tr := New(3)
	for i := 0; i < 3; i++ {
		tr.Instant(Mem, KPageHit, 0, 0, 0, sim.Time(i), 0)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0 at exact capacity", tr.Dropped())
	}
	evs := tr.Events(nil)
	if len(evs) != 3 || evs[0].Start != 0 || evs[2].Start != 2 {
		t.Fatalf("unexpected events %+v", evs)
	}
}

func TestResetReusesCounts(t *testing.T) {
	tr := New(8)
	tr.Span(CPU, KStall, 0, 0, 0, 0, 5, 0)
	set := tr.Counts()
	tr.Reset()
	if tr.Counts() != set {
		t.Fatal("Reset reallocated the counts set")
	}
	if got := set.Value(Name(CPU, KStall)); got != 0 {
		t.Fatalf("count after reset = %d, want 0", got)
	}
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatalf("after reset: len=%d total=%d", tr.Len(), tr.Total())
	}
	tr.Span(CPU, KStall, 0, 0, 0, 0, 5, 0)
	if got := set.Value(Name(CPU, KStall)); got != 1 {
		t.Fatalf("count after re-record = %d, want 1", got)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	tr := New(16)
	tr.Span(CPU, KStall, 0, 3, 0xdeadbeef, 800, 41_600, 2)
	tr.Span(L2, KL2Hit, 0, 5, 0x1000, 1_000_000, 1_021_000, 1)
	tr.Instant(L2, KL2Owner, 0, 5, 0x1000, 1_021_000, 7)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, 0, "test"); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var spans, instants, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if spans != 2 || instants != 1 || meta < 2 {
		t.Fatalf("spans=%d instants=%d meta=%d", spans, instants, meta)
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	mk := func() *Tracer {
		tr := New(8)
		tr.Span(NOC, KICS, 0, 1, 64, 100, 10_100, 0)
		tr.Span(Mem, KPageMiss, 0, 2, 4096, 10_100, 80_100, 0)
		return tr
	}
	var a, b bytes.Buffer
	if err := mk().WriteChrome(&a, 3, "x"); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteChrome(&b, 3, "x"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same events exported different bytes")
	}
}

// TestSpanNoAlloc locks in the zero-allocation recording guarantee for
// both disabled and enabled tracers.
func TestSpanNoAlloc(t *testing.T) {
	var nilTr *Tracer
	if n := testing.AllocsPerRun(100, func() {
		nilTr.Span(CPU, KStall, 0, 0, 0, 0, 10, 0)
	}); n != 0 {
		t.Fatalf("nil tracer Span allocates %v/op", n)
	}
	tr := New(64)
	tr.Span(CPU, KStall, 0, 0, 0, 0, 10, 0) // create the counter once
	if n := testing.AllocsPerRun(100, func() {
		tr.Span(CPU, KStall, 0, 0, 0, 0, 10, 0)
	}); n != 0 {
		t.Fatalf("enabled tracer Span allocates %v/op", n)
	}
}
