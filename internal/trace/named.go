package trace

import (
	"bufio"
	"fmt"
	"io"

	"piranha/internal/sim"
)

// NamedEvent is a span with a free-form name, for exporters whose event
// vocabulary is not the fixed component×kind table — the protocol model
// checker names each counterexample step after the transition rule that
// fired. Times follow the tracer convention (sim.Time picoseconds).
type NamedEvent struct {
	Name   string
	Cat    string
	Detail string
	Node   uint8
	Unit   int16
	Start  sim.Time
	End    sim.Time
}

// WriteChromeNamed exports named spans as a complete Chrome trace JSON
// object, one process with the given pid and label and one thread per
// (node, unit). The output depends only on the events and label, so it
// is byte-identical across reruns.
func WriteChromeNamed(w io.Writer, pid int, label string, events []NamedEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(s)
	}
	emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%q}}`, pid, label))
	named := map[int]bool{}
	for _, e := range events {
		id := int(e.Node)*1000 + int(e.Unit)
		if !named[id] {
			named[id] = true
			emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"node%d[%d]"}}`,
				pid, id, e.Node, e.Unit))
		}
		if e.End > e.Start {
			emit(fmt.Sprintf(`{"ph":"X","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"detail":%q}}`,
				e.Name, e.Cat, pid, id, usec(int64(e.Start)), usec(int64(e.End-e.Start)), e.Detail))
		} else {
			emit(fmt.Sprintf(`{"ph":"i","s":"t","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%s,"args":{"detail":%q}}`,
				e.Name, e.Cat, pid, id, usec(int64(e.Start)), e.Detail))
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
