// Package trace is the simulator-wide event-tracing subsystem: the
// observability layer behind the paper's evaluation (§4–§5), which slices
// execution time and L1-miss service per component. Every timing model on
// the hot path — cpu pipeline stalls, l1 miss issue/fill, l2 bank access
// and ownership decisions, protocol-engine home/remote transaction
// lifetimes, interconnect hops (inter-chip network and intra-chip
// switch), and memory-controller page hits/misses — records value-typed
// span or instant events into a per-run ring buffer.
//
// Design constraints, in priority order:
//
//   - Zero overhead when disabled. All recording methods are nil-safe:
//     components hold a possibly-nil *Tracer and call it unconditionally;
//     a nil receiver returns immediately with no allocation, so the
//     default (untraced) hot path is unchanged.
//   - Determinism. Events carry only simulated timestamps (sim.Time
//     picoseconds) and are recorded in engine execution order, which is
//     deterministic per run. Because every experiment owns a private
//     tracer, the byte stream exported from a RunBatch worker is
//     identical to the serial run's.
//   - Bounded memory. The ring buffer keeps the most recent Capacity
//     events; Dropped reports how many were overwritten. Counts (a
//     stats.Set keyed by "component.kind") cover *all* events including
//     dropped ones, and the set is Reset — not reallocated — between the
//     warm and measure phases.
//
// Export is Chrome trace-event JSON (chrome.go), loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
package trace

import (
	"piranha/internal/sim"
	"piranha/internal/stats"
)

// Component identifies the hardware layer that recorded an event.
type Component uint8

// Components, ordered roughly requester-to-memory.
const (
	CPU    Component = iota // core pipelines
	L1                      // per-core I/D caches
	L2                      // shared L2 banks / intra-chip coherence
	PE                      // protocol engines (home/remote transactions)
	NOC                     // interconnect: inter-chip hops and the ICS
	Mem                     // memory controllers / Rambus channels
	Kernel                  // OS model: scheduling, idle
	nComponents
)

func (c Component) String() string { return componentNames[c] }

var componentNames = [nComponents]string{
	"cpu", "l1", "l2", "pe", "noc", "mem", "kernel",
}

// Kind says what happened. Kinds are global (not per component) so an
// Event stays a flat value type.
type Kind uint8

// Event kinds.
const (
	// KStall is a cpu pipeline stall span; Arg is the l2.Svc class that
	// serviced the blocking access.
	KStall Kind = iota
	// KMissFetch/KMissLoad/KMissStore are L1 miss spans from issue to
	// fill; Arg is the l2.Svc service class.
	KMissFetch
	KMissLoad
	KMissStore
	// KL2Hit/KL2Fwd/KL2MissLocal/KL2MissRemote are L2 bank access spans
	// classified by where the request was serviced; Arg is the l2.Svc.
	KL2Hit
	KL2Fwd
	KL2MissLocal
	KL2MissRemote
	// KL2Owner is an instant marking an ownership decision: the
	// duplicate-tag owner of the line changed; Arg is the new owner L1
	// ID (or ^0 for the L2 itself).
	KL2Owner
	// KHomeTx/KRemoteTx are protocol-engine transaction lifetimes. For
	// single-chip systems KHomeTx covers the home-side service of an L2
	// miss (directory interpretation + memory), which the L2 controller
	// performs inline.
	KHomeTx
	KRemoteTx
	// KHop is one inter-chip message: injection to delivery; Arg is the
	// destination node.
	KHop
	// KICS is one intra-chip switch transfer; Unit is the lane.
	KICS
	// KPageHit/KPageMiss are memory reads split by the open-page policy
	// outcome; KMemWrite is a (posted) write.
	KPageHit
	KPageMiss
	KMemWrite
	// KCtxSwitch is a kernel context switch instant; KIdle a span with
	// no runnable process on the CPU.
	KCtxSwitch
	KIdle
	// KFaultOnset/KFaultDetect/KFaultRecover are the fail-stop timeline
	// instants: the node dies, the survivors notice, and degraded-mode
	// capacity is restored. Node is the dead chip; Arg on KFaultRecover
	// is the MTTR in nanoseconds, so a failure's latency wake lines up
	// with its recovery cost in the Perfetto view.
	KFaultOnset
	KFaultDetect
	KFaultRecover
	nKinds
)

func (k Kind) String() string { return kindNames[k] }

var kindNames = [nKinds]string{
	"stall",
	"fetch-miss", "load-miss", "store-miss",
	"hit", "fwd", "miss-local", "miss-remote", "owner",
	"home-tx", "remote-tx",
	"hop", "ics",
	"page-hit", "page-miss", "write",
	"ctx-switch", "idle",
	"fault-onset", "fault-detect", "fault-recover",
}

// componentOf maps each kind to its canonical component (used for name
// tables; the recording site passes the component explicitly).
var componentOf = [nKinds]Component{
	CPU,
	L1, L1, L1,
	L2, L2, L2, L2, L2,
	PE, PE,
	NOC, NOC,
	Mem, Mem, Mem,
	Kernel, Kernel,
	Kernel, Kernel, Kernel,
}

// spanNames precomputes "component.kind" so counting costs no
// allocation on the traced hot path.
var spanNames [nComponents][nKinds]string

func init() {
	for c := Component(0); c < nComponents; c++ {
		for k := Kind(0); k < nKinds; k++ {
			spanNames[c][k] = componentNames[c] + "." + kindNames[k]
		}
	}
}

// Name returns the canonical "component.kind" label for a kind.
func Name(c Component, k Kind) string { return spanNames[c][k] }

// Event is one recorded span (Start < End) or instant (Start == End).
// It is a flat value type — recording moves 40 bytes into a
// preallocated ring slot, never the heap.
type Event struct {
	Start sim.Time
	End   sim.Time
	Addr  uint64
	Arg   uint32 // kind-specific: service class, destination node, owner
	Unit  int16  // component-local unit: cpu, L1 ID, bank, lane
	Node  uint8  // chip/node index
	Comp  Component
	Kind  Kind
}

// DefaultCapacity is the ring size used when New is passed n <= 0:
// enough for the full measurement phase of a quick-scale run and a
// bounded tail of a paper-scale one.
const DefaultCapacity = 1 << 16

// Tracer records events for one simulation run. The zero *Tracer (nil)
// is the disabled tracer: every method is a nil-safe no-op — piranha-vet's
// nilguard analyzer checks that every exported method keeps that promise.
//
//piranha:nilguard
type Tracer struct {
	buf    []Event
	total  uint64 // events ever recorded (ring wraps past len(buf))
	counts *stats.Set
}

// New returns a tracer with the given ring capacity (n <= 0 selects
// DefaultCapacity). All memory is allocated up front; recording never
// allocates.
func New(n int) *Tracer {
	if n <= 0 {
		n = DefaultCapacity
	}
	return &Tracer{buf: make([]Event, n), counts: stats.NewSet()}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Span records a [start, end) span event.
//
//piranha:hotpath
func (t *Tracer) Span(c Component, k Kind, node uint8, unit int16, addr uint64, start, end sim.Time, arg uint32) {
	if t == nil {
		return
	}
	t.buf[t.total%uint64(len(t.buf))] = Event{
		Start: start, End: end, Addr: addr,
		Arg: arg, Unit: unit, Node: node, Comp: c, Kind: k,
	}
	t.total++
	t.counts.Get(spanNames[c][k]).Inc()
}

// Instant records a zero-duration event.
//
//piranha:hotpath
func (t *Tracer) Instant(c Component, k Kind, node uint8, unit int16, addr uint64, at sim.Time, arg uint32) {
	if t == nil {
		return
	}
	t.Span(c, k, node, unit, addr, at, at, arg)
}

// Len returns the number of events currently held in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.total < uint64(len(t.buf)) {
		return int(t.total)
	}
	return len(t.buf)
}

// Total returns the number of events ever recorded (including dropped).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped returns how many events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil || t.total <= uint64(len(t.buf)) {
		return 0
	}
	return t.total - uint64(len(t.buf))
}

// Events appends the retained events in recording order to dst and
// returns it. When the ring has wrapped, the oldest retained event
// comes first.
func (t *Tracer) Events(dst []Event) []Event {
	if t == nil {
		return dst
	}
	n := uint64(len(t.buf))
	if t.total <= n {
		return append(dst, t.buf[:t.total]...)
	}
	head := t.total % n
	dst = append(dst, t.buf[head:]...)
	return append(dst, t.buf[:head]...)
}

// Counts returns the per-"component.kind" event counts, covering every
// event recorded since the last Reset (dropped ring entries included).
func (t *Tracer) Counts() *stats.Set {
	if t == nil {
		return nil
	}
	return t.counts
}

// Reset discards all recorded events and zeroes the counts, reusing the
// ring and the counter set's storage. core.Run calls it at the
// warm/measure boundary so the exported trace covers exactly the
// measured phase.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.total = 0
	t.counts.Reset()
}
