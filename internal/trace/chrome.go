package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Chrome trace-event export (the "JSON Array Format" of the Trace Event
// spec), loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// Mapping: one simulation run is one process (pid); each traced hardware
// unit is a thread (tid) named "chip<n> <component>[<unit>]". Spans are
// complete events (ph "X") and instants ph "i". Timestamps are simulated
// microseconds with picosecond precision — wall-clock time never appears,
// so the bytes depend only on the recorded events and label, making the
// export byte-identical across serial and parallel runs.

// usec formats a sim.Time (picoseconds) as fractional microseconds.
func usec(t int64) string {
	us, ps := t/1_000_000, t%1_000_000
	if ps == 0 {
		return fmt.Sprintf("%d", us)
	}
	return fmt.Sprintf("%d.%06d", us, ps)
}

// tid flattens (node, unit) into a Chrome thread id.
func tid(e Event) int { return int(e.Node)*1000 + int(e.Comp)*100 + int(e.Unit) }

// WriteChrome exports one run's events as a complete Chrome trace JSON
// object with the given process id and label.
func (t *Tracer) WriteChrome(w io.Writer, pid int, label string) error {
	if t == nil {
		// A disabled tracer still exports a valid (empty) trace document.
		return WriteChromeMulti(w, nil, nil, pid)
	}
	return WriteChromeMulti(w, []*Tracer{t}, []string{label}, pid)
}

// WriteChromeMulti exports several runs' events into one Chrome trace
// JSON object; run i becomes process firstPid+i labeled labels[i]. The
// output is deterministic: it depends only on the tracers' contents and
// the labels, never on host time or goroutine interleaving.
func WriteChromeMulti(w io.Writer, traces []*Tracer, labels []string, firstPid int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(s)
	}
	var scratch []Event
	for i, tr := range traces {
		pid := firstPid + i
		label := fmt.Sprintf("run%d", pid)
		if i < len(labels) && labels[i] != "" {
			label = labels[i]
		}
		emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%q}}`, pid, label))

		scratch = tr.Events(scratch[:0])
		// Thread-name metadata in first-seen order (deterministic: the
		// event stream order is the engine's execution order).
		named := map[int]bool{}
		for _, e := range scratch {
			id := tid(e)
			if named[id] {
				continue
			}
			named[id] = true
			emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"chip%d %s[%d]"}}`,
				pid, id, e.Node, e.Comp, e.Unit))
		}
		for _, e := range scratch {
			name := spanNames[e.Comp][e.Kind]
			if e.End > e.Start {
				emit(fmt.Sprintf(`{"ph":"X","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"addr":"0x%x","arg":%d}}`,
					name, e.Comp, pid, tid(e), usec(int64(e.Start)), usec(int64(e.End-e.Start)), e.Addr, e.Arg))
			} else {
				emit(fmt.Sprintf(`{"ph":"i","s":"t","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%s,"args":{"addr":"0x%x","arg":%d}}`,
					name, e.Comp, pid, tid(e), usec(int64(e.Start)), e.Addr, e.Arg))
			}
		}
		if d := tr.Dropped(); d > 0 {
			emit(fmt.Sprintf(`{"ph":"M","name":"trace_dropped_events","pid":%d,"tid":0,"args":{"dropped":%d}}`, pid, d))
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
