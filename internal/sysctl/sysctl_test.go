package sysctl

import (
	"testing"

	"piranha/internal/noc"
)

func TestRegistersAndCounters(t *testing.T) {
	sc := New(8)
	if r := sc.Handle(Packet{Op: WriteReg, Reg: 0x10, Val: 42}); !r.OK {
		t.Fatal(r.Err)
	}
	if r := sc.Handle(Packet{Op: ReadReg, Reg: 0x10}); !r.OK || r.Val != 42 {
		t.Fatalf("read back %+v", r)
	}
	sc.Bump(7, 5)
	if r := sc.Handle(Packet{Op: ReadCounter, Reg: 7}); r.Val != 5 {
		t.Fatalf("counter %+v", r)
	}
}

func TestStartStopCores(t *testing.T) {
	sc := New(8)
	// After reset every core is stopped (init happens via the SC).
	for i := 0; i < 8; i++ {
		if sc.Running(i) {
			t.Fatalf("core %d running after reset", i)
		}
	}
	sc.Handle(Packet{Op: StartCPU, CPU: 3})
	if !sc.Running(3) || sc.Running(4) {
		t.Fatal("start wrong core")
	}
	sc.Handle(Packet{Op: StopCPU, CPU: 3})
	if sc.Running(3) {
		t.Fatal("stop failed")
	}
	if r := sc.Handle(Packet{Op: StartCPU, CPU: 99}); r.OK {
		t.Fatal("bogus CPU accepted")
	}
}

func TestRoutingTableValidation(t *testing.T) {
	sc := New(1)
	topo := noc.Ring{N: 4}
	for n := 0; n < 4; n++ {
		sc.Handle(Packet{Op: UpdateRoute, Node: n, Links: topo.Neighbors(n)})
	}
	if _, err := sc.RoutingTable(4); err != nil {
		t.Fatal(err)
	}
	// A missing row must fail.
	sc2 := New(1)
	sc2.Handle(Packet{Op: UpdateRoute, Node: 0, Links: []int{1}})
	if _, err := sc2.RoutingTable(2); err == nil {
		t.Fatal("incomplete table accepted")
	}
	// A disconnected table must fail.
	sc3 := New(1)
	sc3.Handle(Packet{Op: UpdateRoute, Node: 0, Links: []int{1}})
	sc3.Handle(Packet{Op: UpdateRoute, Node: 1, Links: []int{0}})
	sc3.Handle(Packet{Op: UpdateRoute, Node: 2, Links: []int{}})
	if _, err := sc3.RoutingTable(3); err == nil {
		t.Fatal("disconnected table accepted")
	}
}

func TestInitializeSystem(t *testing.T) {
	topo := noc.Torus{W: 2, H: 2}
	var scs []*Controller
	for i := 0; i < 4; i++ {
		scs = append(scs, New(8))
	}
	if err := InitializeSystem(scs, topo); err != nil {
		t.Fatal(err)
	}
	for n, sc := range scs {
		for cpu := 0; cpu < 8; cpu++ {
			if !sc.Running(cpu) {
				t.Fatalf("node %d cpu %d not started", n, cpu)
			}
		}
		if sc.MemTestsPassed != 1 {
			t.Fatalf("node %d memory untested", n)
		}
	}
	if err := InitializeSystem(scs[:2], topo); err == nil {
		t.Fatal("mismatched node count accepted")
	}
}

func TestInterruptDistribution(t *testing.T) {
	sc := New(8)
	for i := 0; i < 5; i++ {
		sc.Handle(Packet{Op: Interrupt})
	}
	if sc.Interrupts != 5 {
		t.Fatalf("interrupts %d", sc.Interrupts)
	}
	if r := sc.Handle(Packet{Op: ReadCounter, Reg: 0xFFFF}); r.Val != 5 {
		t.Fatal("interrupt counter not maintained")
	}
}

func TestBootstrap(t *testing.T) {
	if Bootstrap(8192) != 65536 {
		t.Fatal("serial boot arithmetic")
	}
}
