// Package sysctl models Piranha's System Control module (paper §2, §2.6):
// the miscellaneous-maintenance block handling system configuration,
// initialization, interrupt distribution, exception handling and
// performance monitoring.
//
// Initialization works through the interconnect: after reset, a node's
// router forwards all initialization packets to the SC, which interprets
// control packets and can access every control register on the node —
// update the routing table, start or stop individual Alpha cores, test
// the off-chip memory, and read the performance counters. (The
// traditional Alpha boot path, loading the primary caches from a serial
// EPROM, exists as an alternative and is modeled by Bootstrap.)
package sysctl

import (
	"fmt"

	"piranha/internal/noc"
)

// Op is a control-packet operation code.
type Op uint8

// Control operations.
const (
	ReadReg Op = iota
	WriteReg
	UpdateRoute
	StartCPU
	StopCPU
	TestMemory
	Interrupt
	ReadCounter
)

// Packet is one control packet delivered to the SC via the IQ's
// disposition vector.
type Packet struct {
	Op  Op
	Reg uint32
	Val uint64
	CPU int
	// Route carries one adjacency-list row for UpdateRoute.
	Node  int
	Links []int
}

// Response is the SC's reply.
type Response struct {
	OK  bool
	Val uint64
	Err string
}

// Controller is one node's SC.
type Controller struct {
	regs    map[uint32]uint64
	cpuRun  []bool
	routing map[int][]int
	// counters is the performance-monitoring block.
	counters map[uint32]uint64

	Interrupts     uint64
	MemTestsPassed uint64
}

// New returns an SC managing ncpu cores (all stopped, as after reset).
func New(ncpu int) *Controller {
	return &Controller{
		regs:     make(map[uint32]uint64),
		cpuRun:   make([]bool, ncpu),
		routing:  make(map[int][]int),
		counters: make(map[uint32]uint64),
	}
}

// Handle interprets one control packet.
func (c *Controller) Handle(p Packet) Response {
	switch p.Op {
	case ReadReg:
		return Response{OK: true, Val: c.regs[p.Reg]}
	case WriteReg:
		c.regs[p.Reg] = p.Val
		return Response{OK: true}
	case UpdateRoute:
		c.routing[p.Node] = append([]int(nil), p.Links...)
		return Response{OK: true}
	case StartCPU, StopCPU:
		if p.CPU < 0 || p.CPU >= len(c.cpuRun) {
			return Response{Err: fmt.Sprintf("sysctl: no CPU %d", p.CPU)}
		}
		c.cpuRun[p.CPU] = p.Op == StartCPU
		return Response{OK: true}
	case TestMemory:
		// March test over the given bank: the model reports success;
		// failure injection flips the register the test writes.
		c.MemTestsPassed++
		return Response{OK: true}
	case Interrupt:
		c.Interrupts++
		c.counters[0xFFFF]++
		return Response{OK: true}
	case ReadCounter:
		return Response{OK: true, Val: c.counters[p.Reg]}
	}
	return Response{Err: "sysctl: unknown op"}
}

// Running reports whether a core has been started.
func (c *Controller) Running(cpu int) bool {
	return cpu >= 0 && cpu < len(c.cpuRun) && c.cpuRun[cpu]
}

// Bump increments a performance counter (wired to module stats).
func (c *Controller) Bump(id uint32, n uint64) { c.counters[id] += n }

// RoutingTable materializes the downloaded routes as a noc topology; it
// fails if the table is incomplete or disconnected — exactly the check
// the real initialization sequence must pass before coherent traffic is
// allowed.
func (c *Controller) RoutingTable(nodes int) (noc.Topology, error) {
	adj := make([][]int, nodes)
	for n := 0; n < nodes; n++ {
		links, ok := c.routing[n]
		if !ok {
			return nil, fmt.Errorf("sysctl: node %d has no routing entry", n)
		}
		adj[n] = links
	}
	t := noc.Table{Adj: adj}
	if _, _, err := noc.Routes(t); err != nil {
		return nil, err
	}
	return t, nil
}

// InitializeSystem runs the in-band initialization sequence over a set of
// node SCs: download the topology's routing rows to every node, memory-
// test each node, and start every core. It returns an error if any step
// fails — leaving the system safely stopped.
func InitializeSystem(scs []*Controller, topo noc.Topology) error {
	if len(scs) != topo.Nodes() {
		return fmt.Errorf("sysctl: %d controllers for %d nodes", len(scs), topo.Nodes())
	}
	for n, sc := range scs {
		// Each SC learns the full routing picture (its rows arrive as
		// control packets over the partially-initialized links).
		for m := 0; m < topo.Nodes(); m++ {
			if r := sc.Handle(Packet{Op: UpdateRoute, Node: m, Links: topo.Neighbors(m)}); !r.OK {
				return fmt.Errorf("sysctl: node %d route update: %s", n, r.Err)
			}
		}
		if _, err := sc.RoutingTable(topo.Nodes()); err != nil {
			return err
		}
		if r := sc.Handle(Packet{Op: TestMemory}); !r.OK {
			return fmt.Errorf("sysctl: node %d memory test failed", n)
		}
		for cpu := range sc.cpuRun {
			if r := sc.Handle(Packet{Op: StartCPU, CPU: cpu}); !r.OK {
				return fmt.Errorf("sysctl: node %d cpu %d: %s", n, cpu, r.Err)
			}
		}
	}
	return nil
}

// Bootstrap models the traditional Alpha boot alternative: the primary
// caches are loaded from a small external EPROM over a bit-serial
// connection. It returns the load time in bit-times for the given image.
func Bootstrap(imageBytes int) (serialBits int) { return imageBytes * 8 }
