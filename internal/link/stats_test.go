package link

import "testing"

// TestStatsSnapshotAndReset: Stats() mirrors the public counters and
// Reset zeroes them without disturbing the channel's error sequence.
func TestStatsSnapshotAndReset(t *testing.T) {
	c := NewChannel(2e-3, 99)
	frame := make([]byte, 64)
	for i := range frame {
		frame[i] = byte(i * 7)
	}
	for i := 0; i < 100; i++ {
		c.Transmit(frame, 8)
	}
	s := c.Stats()
	if s.WordsSent != c.WordsSent || s.FramesSent != c.FramesSent ||
		s.WordErrors != c.WordErrors || s.CRCErrors != c.CRCErrors ||
		s.Retransmits != c.Retransmits || s.InvertedWords != c.InvertedWords {
		t.Fatalf("Stats() diverges from public counters: %+v", s)
	}
	if s.WordsSent == 0 || s.WordErrors+s.CRCErrors == 0 {
		t.Fatalf("no traffic/corruption at BER 2e-3: %+v", s)
	}

	c.Reset()
	if got := c.Stats(); got != (Stats{}) {
		t.Fatalf("Reset left counters: %+v", got)
	}

	// The RNG position survives Reset: a fresh channel with the same
	// seed fast-forwarded past the same traffic continues identically.
	ref := NewChannel(2e-3, 99)
	for i := 0; i < 100; i++ {
		ref.Transmit(frame, 8)
	}
	ref.Reset()
	for i := 0; i < 100; i++ {
		c.Transmit(frame, 8)
		ref.Transmit(frame, 8)
	}
	if c.Stats() != ref.Stats() {
		t.Fatalf("post-Reset sequences diverge: %+v vs %+v", c.Stats(), ref.Stats())
	}
}
