package link

import (
	"fmt"

	"piranha/internal/sim"
)

// Physical-layer constants from the paper.
const (
	// WireRateGbps is the per-wire signaling rate (4x the system clock).
	WireRateGbps = 2
	// DataBitsPerWord is the user data carried by each 22-bit word.
	DataBitsPerWord = 16
	// WordsPerInterconnectCycle: the signaling rate is 4x the
	// interconnect clock, so four words move per interconnect cycle,
	// i.e. 64 data bits per cycle per channel direction.
	WordsPerInterconnectCycle = 4
)

// Channel models one direction of an inter-chip link: framing into
// DC-balanced words, CRC protection, error injection, and the piggyback
// retransmission handshake. It is a functional model — timing is handled
// by the interconnect simulator — but it exercises the real encode/decode
// path for every word.
type Channel struct {
	rng *sim.RNG
	// BitErrorRate is the probability that any single wire bit flips
	// during a word transmission.
	BitErrorRate float64

	// Stats.
	WordsSent     uint64
	FramesSent    uint64
	WordErrors    uint64 // detected by weight violation
	CRCErrors     uint64 // escaped word detection, caught by CRC
	Retransmits   uint64
	InvertedWords uint64
}

// NewChannel returns a channel with the given error rate and RNG seed.
func NewChannel(ber float64, seed uint64) *Channel {
	return &Channel{rng: sim.NewRNG(seed), BitErrorRate: ber}
}

// transmitWord encodes, corrupts (maybe), and decodes one word.
// It reports the received payload and whether the word survived.
func (c *Channel) transmitWord(payload uint32) (uint32, bool) {
	invert := c.rng.Bool(0.5) // the randomly-generated 19th bit
	w, err := EncodeWord(payload, invert)
	if err != nil {
		panic("link: internal payload overflow")
	}
	if invert {
		c.InvertedWords++
	}
	c.WordsSent++
	if c.BitErrorRate > 0 {
		for bit := 0; bit < WordBits; bit++ {
			if c.rng.Bool(c.BitErrorRate) {
				w ^= 1 << uint(bit)
			}
		}
	}
	got, _, err := DecodeWord(w)
	if err != nil {
		c.WordErrors++
		return 0, false
	}
	return got, true
}

// Transmit sends a frame of bytes across the channel, retrying whole
// frames (go-back-N with window 1, as the piggyback handshake allows)
// until the frame arrives intact or maxRetries is exhausted. It returns
// the number of attempts used.
func (c *Channel) Transmit(frame []byte, maxRetries int) (attempts int, err error) {
	want := CRC16(frame)
	for attempts = 1; attempts <= maxRetries; attempts++ {
		c.FramesSent++
		ok := true
		rx := make([]byte, 0, len(frame))
		// 16 data bits per word; odd tail byte padded with zero.
		for i := 0; i < len(frame); i += 2 {
			hi := uint16(frame[i]) << 8
			var lo uint16
			if i+1 < len(frame) {
				lo = uint16(frame[i+1])
			}
			got, wok := c.transmitWord(JoinPayload(hi|lo, 0))
			if !wok {
				ok = false
				break
			}
			data, _ := SplitPayload(got)
			rx = append(rx, byte(data>>8))
			if i+1 < len(frame) {
				rx = append(rx, byte(data))
			}
		}
		if !ok {
			c.Retransmits++
			continue
		}
		// Trailing CRC word.
		got, wok := c.transmitWord(JoinPayload(want, 1))
		if !wok {
			c.Retransmits++
			continue
		}
		rxCRC, _ := SplitPayload(got)
		if CRC16(rx) != rxCRC {
			c.CRCErrors++
			c.Retransmits++
			continue
		}
		return attempts, nil
	}
	return attempts - 1, fmt.Errorf("link: frame lost after %d attempts", maxRetries)
}

// Stats is a snapshot of a channel's counters.
type Stats struct {
	WordsSent     uint64
	FramesSent    uint64
	WordErrors    uint64
	CRCErrors     uint64
	Retransmits   uint64
	InvertedWords uint64
}

// Stats snapshots the channel's counters.
func (c *Channel) Stats() Stats {
	return Stats{
		WordsSent:     c.WordsSent,
		FramesSent:    c.FramesSent,
		WordErrors:    c.WordErrors,
		CRCErrors:     c.CRCErrors,
		Retransmits:   c.Retransmits,
		InvertedWords: c.InvertedWords,
	}
}

// Reset zeroes the counters (e.g. at the warm/measure boundary so
// warm-up corruption doesn't pollute measured-phase statistics). The
// RNG keeps its position: the error sequence is unaffected.
func (c *Channel) Reset() {
	c.WordsSent = 0
	c.FramesSent = 0
	c.WordErrors = 0
	c.CRCErrors = 0
	c.Retransmits = 0
	c.InvertedWords = 0
}

// TransferTime returns how long moving n payload bytes takes on one
// channel direction given the interconnect clock. This is the bandwidth
// component only; routing latency is the interconnect simulator's job.
func TransferTime(n int, icClock sim.Clock) sim.Time {
	words := (n*8 + DataBitsPerWord - 1) / DataBitsPerWord
	cycles := (words + WordsPerInterconnectCycle - 1) / WordsPerInterconnectCycle
	return icClock.Cycles(int64(cycles))
}

// MinLatency is the static lower bound on moving anything across one
// channel direction: a single interconnect cycle (the smallest frame).
// It feeds the parallel engine's conservative lookahead — no inter-chip
// effect can cross a link faster than this.
func MinLatency(icClock sim.Clock) sim.Time { return TransferTime(1, icClock) }
