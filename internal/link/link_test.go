package link

import (
	"math/bits"
	"testing"
	"testing/quick"

	"piranha/internal/sim"
)

func TestEncodeBalance(t *testing.T) {
	// Every codeword, inverted or not, must have exactly 11 of 22 wires
	// high — the paper's DC-balance guarantee.
	for _, p := range []uint32{0, 1, 1000, 1 << 17, 1<<18 - 1} {
		for _, inv := range []bool{false, true} {
			w, err := EncodeWord(p, inv)
			if err != nil {
				t.Fatal(err)
			}
			if bits.OnesCount32(w) != 11 {
				t.Fatalf("payload %d inv=%v: weight %d", p, inv, bits.OnesCount32(w))
			}
		}
	}
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(p uint32, inv bool) bool {
		p %= 1 << PayloadBits
		w, err := EncodeWord(p, inv)
		if err != nil {
			return false
		}
		got, gotInv, err := DecodeWord(w)
		return err == nil && got == p && gotInv == inv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNoComplementaryBaseCodewords(t *testing.T) {
	// Base (non-inverted) codewords all have bit 21 clear, so no base
	// codeword can be the complement of another. Spot-check densely at
	// the range ends and sparsely in between.
	seen := make(map[uint32]bool)
	check := func(p uint32) {
		w, err := EncodeWord(p, false)
		if err != nil {
			t.Fatal(err)
		}
		if w&(1<<21) != 0 {
			t.Fatalf("base codeword for %d has MSB set", p)
		}
		comp := ^w & (1<<WordBits - 1)
		if seen[comp] {
			t.Fatalf("complementary pair found at payload %d", p)
		}
		seen[w] = true
	}
	for p := uint32(0); p < 4096; p++ {
		check(p)
	}
	for p := uint32(0); p < 1<<PayloadBits; p += 997 {
		check(p)
	}
	check(1<<PayloadBits - 1)
}

func TestEncodeUniqueness(t *testing.T) {
	// Distinct payloads must map to distinct codewords (dense prefix).
	seen := make(map[uint32]uint32)
	for p := uint32(0); p < 50000; p++ {
		w, err := EncodeWord(p, false)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[w]; dup {
			t.Fatalf("payloads %d and %d share codeword %#x", prev, p, w)
		}
		seen[w] = p
	}
}

func TestDecodeRejectsUnbalanced(t *testing.T) {
	if _, _, err := DecodeWord(0); err == nil {
		t.Fatal("all-zero word accepted")
	}
	if _, _, err := DecodeWord(1<<WordBits - 1); err == nil {
		t.Fatal("all-one word accepted")
	}
	// A single-wire error always breaks the weight and must be detected.
	w, _ := EncodeWord(12345, false)
	for bit := 0; bit < WordBits; bit++ {
		if _, _, err := DecodeWord(w ^ 1<<uint(bit)); err == nil {
			t.Fatalf("single-wire error at bit %d not detected", bit)
		}
	}
}

func TestInversionInsensitive(t *testing.T) {
	// The receiver recovers the same payload regardless of the random
	// inversion bit — the property that permits fiber/transformer links.
	f := func(p uint32) bool {
		p %= 1 << PayloadBits
		w0, _ := EncodeWord(p, false)
		w1, _ := EncodeWord(p, true)
		if w1 != ^w0&(1<<WordBits-1) {
			return false
		}
		d0, _, e0 := DecodeWord(w0)
		d1, _, e1 := DecodeWord(w1)
		return e0 == nil && e1 == nil && d0 == p && d1 == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadSplitJoin(t *testing.T) {
	f := func(d uint16, s uint8) bool {
		s &= 3
		gd, gs := SplitPayload(JoinPayload(d, s))
		return gd == d && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRC16KnownValue(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29b1 {
		t.Fatalf("CRC16 = %#x, want 0x29b1", got)
	}
	if CRC16(nil) != 0xffff {
		t.Fatal("CRC of empty input should be the initial value")
	}
}

func TestChannelCleanTransmission(t *testing.T) {
	c := NewChannel(0, 1)
	frame := []byte("piranha short packet payload....")
	attempts, err := c.Transmit(frame, 4)
	if err != nil || attempts != 1 {
		t.Fatalf("clean channel: attempts=%d err=%v", attempts, err)
	}
	if c.WordErrors != 0 || c.Retransmits != 0 {
		t.Fatalf("clean channel recorded errors: %+v", c)
	}
}

func TestChannelRecoversFromErrors(t *testing.T) {
	c := NewChannel(0.002, 7)
	frame := make([]byte, 64)
	for i := range frame {
		frame[i] = byte(i * 3)
	}
	fails := 0
	for i := 0; i < 200; i++ {
		if _, err := c.Transmit(frame, 50); err != nil {
			fails++
		}
	}
	if fails != 0 {
		t.Fatalf("%d frames lost despite retransmission", fails)
	}
	if c.Retransmits == 0 {
		t.Fatal("expected some retransmissions at BER 0.002")
	}
	if c.WordErrors == 0 {
		t.Fatal("expected word-level error detections")
	}
}

func TestChannelInversionStatistics(t *testing.T) {
	c := NewChannel(0, 99)
	frame := make([]byte, 2048)
	if _, err := c.Transmit(frame, 1); err != nil {
		t.Fatal(err)
	}
	// The random 19th bit should invert roughly half the words.
	frac := float64(c.InvertedWords) / float64(c.WordsSent)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("inversion fraction %v, want ~0.5", frac)
	}
}

func TestTransferTime(t *testing.T) {
	ic := sim.MHz(500)
	// Short packet: 128 bits = 8 words = 2 interconnect cycles.
	if got := TransferTime(16, ic); got != ic.Cycles(2) {
		t.Fatalf("short packet time %d, want %d", got, ic.Cycles(2))
	}
	// Long packet: 128+512 bits = 40 words = 10 cycles.
	if got := TransferTime(80, ic); got != ic.Cycles(10) {
		t.Fatalf("long packet time %d, want %d", got, ic.Cycles(10))
	}
}

func BenchmarkEncodeWord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		EncodeWord(uint32(i)&(1<<PayloadBits-1), i&1 == 0)
	}
}

func BenchmarkDecodeWord(b *testing.B) {
	w, _ := EncodeWord(123456, false)
	for i := 0; i < b.N; i++ {
		DecodeWord(w)
	}
}
