// Package link implements the logical layer of Piranha's inter-chip
// channels (paper §2.6.1): each channel is 22 wires per direction at
// 2 Gbit/s/wire, carrying a DC-balanced block code that encodes 19 bits
// per 22-bit word — 16 data bits, 2 bits of CRC/flow-control/error-
// recovery sideband, and a 19th randomly-generated bit encoded by
// inverting the whole word.
//
// The code guarantees that exactly 11 of the 22 wires carry '1' in every
// word (net DC current is zero), and the base set of codewords contains
// no two complementary elements, so whole-word inversion is always
// unambiguous. With the random inversion bit the links are statistically
// DC-balanced in the time domain per wire, making the channel insensitive
// to polarity and usable over fiber or transformer coupling.
package link

import (
	"fmt"
	"math/bits"
)

// Code geometry.
const (
	WordBits    = 22 // wires per direction
	PayloadBits = 18 // data+sideband bits per word
	// CodeBits counts the payload plus the random inversion bit.
	CodeBits = 19
)

// binom[n][k] = C(n,k) for n,k <= WordBits.
var binom [WordBits + 1][WordBits + 1]uint32

func init() {
	for n := 0; n <= WordBits; n++ {
		binom[n][0] = 1
		for k := 1; k <= n; k++ {
			binom[n][k] = binom[n-1][k-1]
			if k <= n-1 {
				binom[n][k] += binom[n-1][k]
			}
		}
	}
}

// unrank21 returns the index-th 21-bit word with exactly 11 set bits, in
// colexicographic order. Valid for index < C(21,11) = 352716.
func unrank21(index uint32) uint32 {
	var w uint32
	ones := 11
	for pos := 20; pos >= 0 && ones > 0; pos-- {
		// Words with bit pos clear: C(pos, ones) of the remaining.
		c := binom[pos][ones]
		if index >= c {
			w |= 1 << uint(pos)
			index -= c
			ones--
		}
	}
	return w
}

// rank21 is the inverse of unrank21.
func rank21(w uint32) uint32 {
	var index uint32
	ones := 11
	for pos := 20; pos >= 0 && ones > 0; pos-- {
		if w&(1<<uint(pos)) != 0 {
			index += binom[pos][ones]
			ones--
		}
	}
	return index
}

// EncodeWord encodes an 18-bit payload and the random inversion bit into
// a 22-bit DC-balanced word. Payload values must be < 2^18.
//
// Base codewords have bit 21 clear and exactly 11 of the remaining 21
// bits set — so every base word is balanced and no base word is the
// complement of another (a complement would have bit 21 set). Setting
// invert transmits the bitwise complement, which is itself balanced.
func EncodeWord(payload uint32, invert bool) (uint32, error) {
	if payload >= 1<<PayloadBits {
		return 0, fmt.Errorf("link: payload %#x exceeds %d bits", payload, PayloadBits)
	}
	w := unrank21(payload) // bit 21 clear; 11 ones among bits 0..20
	if invert {
		w = ^w & ((1 << WordBits) - 1)
	}
	return w, nil
}

// DecodeWord recovers the payload and the inversion bit from a received
// word. It reports an error for any word that is not a valid codeword
// (wrong weight or out-of-range rank), which is how single-wire errors
// are detected at the physical layer.
func DecodeWord(w uint32) (payload uint32, inverted bool, err error) {
	if w >= 1<<WordBits {
		return 0, false, fmt.Errorf("link: word %#x exceeds %d bits", w, WordBits)
	}
	if bits.OnesCount32(w) != 11 {
		return 0, false, fmt.Errorf("link: word %#x is not DC-balanced", w)
	}
	if w&(1<<21) != 0 {
		inverted = true
		w = ^w & ((1 << WordBits) - 1)
	}
	payload = rank21(w)
	if payload >= 1<<PayloadBits {
		return 0, false, fmt.Errorf("link: word decodes outside payload range")
	}
	return payload, inverted, nil
}

// SplitPayload separates an 18-bit payload into its 16 data bits and
// 2 sideband (CRC/flow-control) bits.
func SplitPayload(p uint32) (data uint16, side uint8) {
	return uint16(p & 0xffff), uint8(p >> 16 & 3)
}

// JoinPayload combines 16 data bits and 2 sideband bits into a payload.
func JoinPayload(data uint16, side uint8) uint32 {
	return uint32(data) | uint32(side&3)<<16
}

// CRC16 computes the CRC-16/CCITT-FALSE checksum used to protect packet
// payloads across a channel.
func CRC16(data []byte) uint16 {
	crc := uint16(0xffff)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
