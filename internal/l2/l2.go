// Package l2 implements Piranha's shared second-level cache (paper §2.3):
// a 1 MB unified cache physically partitioned into eight banks interleaved
// on the low line-address bits, each 8-way with round-robin replacement,
// logically shared by all on-chip CPUs.
//
// The defining property is **non-inclusion**. The aggregate L1 capacity
// (1 MB) equals the L2 capacity, so enforcing inclusion could waste the
// entire L2 on duplicates. Instead:
//
//   - L1 misses that also miss in the L2 are filled directly from memory
//     *without* allocating an L2 line; the L2 behaves as a large victim
//     cache filled only by L1 replacements.
//   - Each bank keeps a duplicate copy of the L1 tags and states for the
//     lines that interleave to it, extended with an ownership notion: the
//     owner of a line is the L2 (when it holds a valid copy), the L1 with
//     an exclusive copy, or — among multiple sharers — the last requester.
//     Only the owner writes data back on replacement, so even clean L1
//     victims write back to the L2 exactly once.
//   - The L2 controllers enforce intra-chip coherence like a full-map
//     centralized directory: on every access the duplicate L1 tags and the
//     L2 tags are checked in parallel, and requests are serviced by the
//     L2, forwarded to an owning L1, sent to the protocol engines, or sent
//     to memory. The intra-chip switch's ordering lets on-chip
//     invalidations complete without acknowledgments.
//
// The bank also partially interprets the inter-node directory (cached in
// its line bookkeeping) so that most local L1 requests avoid the protocol
// engines entirely.
package l2

import (
	"fmt"

	"piranha/internal/cache"
	"piranha/internal/ics"
	"piranha/internal/l1"
	"piranha/internal/linemap"
	"piranha/internal/sim"
	"piranha/internal/trace"
)

// Kind is the request type an L1 issues to the L2.
type Kind uint8

// Request kinds.
const (
	// Read requests a shared (or clean-exclusive) copy.
	Read Kind = iota
	// ReadEx requests an exclusive copy with data (store miss).
	ReadEx
	// Upgrade requests exclusivity for a line already held Shared.
	Upgrade
	// ReadExNoData requests exclusivity without data (the Alpha wh64
	// write-hint: the whole line will be overwritten).
	ReadExNoData
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case ReadEx:
		return "read-ex"
	case Upgrade:
		return "upgrade"
	case ReadExNoData:
		return "read-ex-nodata"
	}
	return "?"
}

// Svc says where a request was ultimately serviced; the CPU models use it
// to attribute stall time exactly as the paper's Figure 5/6 breakdowns do.
type Svc uint8

// Service classes.
const (
	SvcL1 Svc = iota // L1 hit (reported by the chip, not the L2)
	SvcL2Hit
	SvcL2Fwd       // forwarded to another on-chip L1
	SvcLocalMem    // home-local memory access
	SvcRemote      // remote home, clean
	SvcRemoteDirty // remote owner supplied the data
)

func (s Svc) String() string {
	switch s {
	case SvcL1:
		return "L1"
	case SvcL2Hit:
		return "L2-hit"
	case SvcL2Fwd:
		return "L2-fwd"
	case SvcLocalMem:
		return "local-mem"
	case SvcRemote:
		return "remote"
	case SvcRemoteDirty:
		return "remote-dirty"
	}
	return "?"
}

// IsMiss reports whether the class counts as an "L2 miss" in the paper's
// breakdowns (serviced by local or remote memory rather than on-chip).
func (s Svc) IsMiss() bool { return s >= SvcLocalMem }

// RemoteState is the bank's partial interpretation of the inter-node
// directory for a home-local line.
type RemoteState uint8

// Partial directory states.
const (
	RemoteNone RemoteState = iota
	RemoteShared
	RemoteExclusive
)

// Memory is the per-bank memory channel the L2 controller drives.
type Memory interface {
	Read(now sim.Time, a cache.Addr) (critical, full sim.Time)
	Write(now sim.Time, a cache.Addr) (done sim.Time)
}

// Remote is the protocol-engine side of the world. Single-chip systems
// plug in LocalOnly; multi-chip systems plug in the pe package's engines.
type Remote interface {
	// HomeIsLocal reports whether the line's home memory is this chip.
	HomeIsLocal(l cache.LineAddr) bool
	// LocalDirState returns the remote sharing state of a home-local
	// line (read together with the data from the ECC bits in memory).
	LocalDirState(l cache.LineAddr) RemoteState
	// Fetch services a transaction that must leave the chip: a miss to
	// a remote home, a home-local line owned exclusively by a remote
	// node, or an upgrade of a remote-homed shared line (kind Upgrade,
	// no data transfer). It returns the data-arrival time, the service
	// class, and whether system-wide exclusivity was granted (true for
	// writes; true for reads only when no other node holds a copy —
	// the clean-exclusive optimization).
	Fetch(now sim.Time, kind Kind, l cache.LineAddr) (done sim.Time, svc Svc, exclusive bool)
	// Invalidate invalidates all remote sharers of a home-local line
	// and returns when the acknowledgments have been gathered.
	Invalidate(now sim.Time, l cache.LineAddr) sim.Time
	// Writeback sends a dirty remotely-homed line back to its home
	// when the L2 replaces it with no L1 copies left.
	Writeback(now sim.Time, l cache.LineAddr)
}

// LocalOnly is the Remote implementation for single-chip systems:
// every line is home-local and never remotely shared.
type LocalOnly struct{}

// HomeIsLocal always reports true for a single-chip system.
func (LocalOnly) HomeIsLocal(cache.LineAddr) bool { return true }

// LocalDirState always reports no remote sharers.
func (LocalOnly) LocalDirState(cache.LineAddr) RemoteState { return RemoteNone }

// Fetch panics: a single-chip system never leaves the chip.
func (LocalOnly) Fetch(sim.Time, Kind, cache.LineAddr) (sim.Time, Svc, bool) {
	panic("l2: remote fetch on a single-chip system")
}

// Invalidate is a no-op with no remote sharers.
func (LocalOnly) Invalidate(now sim.Time, _ cache.LineAddr) sim.Time { return now }

// Writeback panics: a single-chip system has no remotely-homed lines.
func (LocalOnly) Writeback(sim.Time, cache.LineAddr) {
	panic("l2: remote writeback on a single-chip system")
}

// Config describes the chip's L2 and its latency parameters (Table 1).
type Config struct {
	Banks     int
	SizeBytes int // total across banks
	Ways      int

	// End-to-end load-to-use latencies seen by a CPU (Table 1).
	HitLatency sim.Time // request serviced by the L2 bank
	FwdLatency sim.Time // request forwarded to an owning L1
	// MemOverhead is the controller/ICS time added on top of the
	// memory channel's latency for L2->memory fills (Table 1's 80 ns
	// local latency minus the ~60 ns RDRAM access).
	MemOverhead sim.Time

	// BankCycles is the bank-controller occupancy per request, in
	// core-clock cycles.
	BankCycles int
	// PendEntries bounds concurrent outstanding transactions per bank.
	PendEntries int

	// Inclusive switches the L2 to a conventional inclusive design
	// (the ablation baseline for the paper's no-inclusion choice):
	// memory fills also allocate in the L2, and evicting an L2 line
	// back-invalidates any L1 copies. With 1 MB of aggregate L1s over
	// a 1 MB L2 this wastes most of the L2 on duplicates — the
	// paper's §2.3 argument.
	Inclusive bool
}

// DefaultConfig returns the prototype L2: 1 MB, 8 banks, 8-way,
// 16 ns hit / 24 ns forward / 80 ns to local memory.
func DefaultConfig() Config {
	return Config{
		Banks:       8,
		SizeBytes:   1 << 20,
		Ways:        8,
		HitLatency:  16 * sim.Nanosecond,
		FwdLatency:  24 * sim.Nanosecond,
		MemOverhead: 20 * sim.Nanosecond,
		BankCycles:  2,
		PendEntries: 16,
	}
}

// lineInfo is a bank's duplicate-tag record for one on-chip line: exactly
// which L1s hold it, who owns it, whether the on-chip copy is newer than
// memory, and the partially-interpreted remote state. Records live as
// values inside the bank's dense linemap table (one 8-byte struct per
// slot, no per-line heap object); the table hands out interior pointers,
// which stay valid across the deletes the eviction paths perform but not
// across a growing insert — serveMiss, the only inserter, installs its
// record before any pointer to it is used.
type lineInfo struct {
	sharers uint32 // bitmask over L1 IDs
	owner   int8   // ownerL2 or an L1 ID
	dirty   bool
	lastReq int8
	remote  RemoteState
}

const ownerL2 = int8(-1)

// Bank is one of the eight L2 banks with its controller state. The
// per-line duplicate-tag records and same-line transaction blocks are
// dense, index-addressed tables (see internal/linemap) rather than Go
// maps: every simulated access walks these structures, and pointer-boxed
// map values were the dominant steady-state allocation of the whole
// simulator.
type Bank struct {
	idx  int
	arr  *cache.Cache
	info *linemap.Map[lineInfo]
	ctl  *sim.Server
	pend *linemap.Map[sim.Time]
	tsrf *sim.Pool

	// Queueing telemetry.
	PendWait      sim.Time
	PendConflicts uint64
}

// Stats aggregates the chip-level L2 counters.
type Stats struct {
	Hits            uint64 // serviced by L2 data
	Fwds            uint64 // forwarded to an owning L1
	LocalMem        uint64
	Remote          uint64
	RemoteDirty     uint64
	Upgrades        uint64
	WritebacksToL2  uint64
	WritebacksToMem uint64
	Invals          uint64 // on-chip L1 invalidations issued
}

// L2 is the chip-level shared second-level cache: the eight banks, the
// duplicate-tag state, and the intra-chip coherence controller.
type L2 struct {
	cfg    Config
	clock  sim.Clock
	banks  []*Bank
	l1s    []*l1.Cache
	mems   []Memory
	sw     *ics.Switch
	remote Remote

	tr   *trace.Tracer
	node uint8

	Stats Stats
}

// SetTracer attaches a tracer (nil disables) stamping events with the
// chip index.
func (l *L2) SetTracer(tr *trace.Tracer, node uint8) { l.tr, l.node = tr, node }

// New assembles the L2. l1s are all the chip's L1 modules (their ID field
// indexes the duplicate-tag bitmask), mems has one channel per bank.
func New(cfg Config, clock sim.Clock, l1s []*l1.Cache, mems []Memory, sw *ics.Switch, remote Remote) *L2 {
	if len(mems) != cfg.Banks {
		panic(fmt.Sprintf("l2: %d memories for %d banks", len(mems), cfg.Banks))
	}
	if len(l1s) > 32 {
		panic("l2: more than 32 L1 modules")
	}
	bankShift := uint(0)
	for 1<<bankShift < cfg.Banks {
		bankShift++
	}
	l := &L2{cfg: cfg, clock: clock, l1s: l1s, mems: mems, sw: sw, remote: remote}
	for i := 0; i < cfg.Banks; i++ {
		l.banks = append(l.banks, &Bank{
			idx: i,
			arr: cache.New(cache.Config{
				SizeBytes:  cfg.SizeBytes / cfg.Banks,
				Ways:       cfg.Ways,
				IndexShift: bankShift,
				Replace:    cache.RoundRobin,
			}),
			info: linemap.New[lineInfo](1024),
			pend: linemap.New[sim.Time](1024),
			ctl:  sim.NewServer(1),
			tsrf: sim.NewPool(fmt.Sprintf("l2-pend-%d", i), cfg.PendEntries),
		})
	}
	return l
}

// BankOf returns the bank a line interleaves to.
//
//piranha:hotpath
func (l *L2) BankOf(line cache.LineAddr) *Bank {
	return l.banks[int(uint64(line)&uint64(l.cfg.Banks-1))]
}

// occupy charges the bank controller occupancy and returns the start time
// after any pending-transaction blocking on the same line.
//
//piranha:hotpath
func (b *Bank) occupy(l *L2, now sim.Time, line cache.LineAddr) sim.Time {
	if t, ok := b.pend.Get(line); ok && t > now {
		b.PendWait += t - now
		b.PendConflicts++
		now = t
	}
	return b.ctl.Acquire(now, l.clock.Cycles(int64(l.cfg.BankCycles)))
}

// block records that transactions on the line conflict until t.
//
//piranha:hotpath
func (b *Bank) block(line cache.LineAddr, t sim.Time) { b.pend.Put(line, t) }

// Access services an L1 miss (or upgrade) from the given L1 module.
// It performs all state transitions — filling the requesting L1,
// invalidating or downgrading peers, updating duplicate tags and
// ownership — and returns the data-ready time plus the service class.
func (l *L2) Access(now sim.Time, req *l1.Cache, kind Kind, a cache.Addr) (sim.Time, Svc) {
	done, svc := l.access(now, req, kind, a)
	if l.tr != nil {
		var k trace.Kind
		switch svc {
		case SvcL2Hit:
			k = trace.KL2Hit
		case SvcL2Fwd:
			k = trace.KL2Fwd
		case SvcLocalMem:
			k = trace.KL2MissLocal
		default:
			k = trace.KL2MissRemote
		}
		bank := int16(uint64(a.Line()) & uint64(l.cfg.Banks-1))
		l.tr.Span(trace.L2, k, l.node, bank, uint64(a), now, done, uint32(svc))
	}
	return done, svc
}

// access is the unwrapped service path; internal replays (the inclusive
// cascade and the upgrade-race fallback) re-enter here so one L1 request
// records exactly one span.
//
//piranha:hotpath
func (l *L2) access(now sim.Time, req *l1.Cache, kind Kind, a cache.Addr) (sim.Time, Svc) {
	line := a.Line()
	b := l.BankOf(line)
	start := b.occupy(l, now, line)

	info := b.info.Ref(line)
	switch kind {
	case Upgrade:
		return l.upgrade(b, start, req, line, info)
	case Read, ReadEx, ReadExNoData:
	default:
		panic("l2: unknown request kind")
	}

	// Parallel check of duplicate L1 tags and L2 tags.
	if info != nil {
		// When an L1 owns the line exclusively, any L2 copy is stale
		// (this only arises in the inclusive ablation, where the L2
		// keeps the tag as inclusion holder): the owner must supply.
		ownerHasExcl := info.owner >= 0 &&
			l.l1s[info.owner].State(line).CanWrite()
		if !ownerHasExcl {
			if l2line := b.arr.Probe(line); l2line != nil {
				// L2 has a valid copy: service directly.
				return l.serveFromL2(b, start, req, kind, line, info, l2line)
			}
		}
		if info.sharers != 0 {
			// Some L1 has it: forward to the owner.
			return l.serveByForward(b, start, req, kind, line, info)
		}
		// info with no sharers and no L2 line cannot exist.
		panic("l2: dangling line info")
	}
	b.arr.Misses++ // record the L2 miss for the tag array stats

	// On-chip miss: local memory or the protocol engines.
	return l.serveMiss(b, start, req, kind, line)
}

// serveFromL2 handles a hit in the L2 data array.
func (l *L2) serveFromL2(b *Bank, start sim.Time, req *l1.Cache, kind Kind, line cache.LineAddr, info *lineInfo, l2line *cache.Line) (sim.Time, Svc) {
	l.Stats.Hits++
	done := start + l.cfg.HitLatency
	switch kind {
	case Read:
		l.fill(b, done, req, line, cache.Shared, info)
		if gone, d, s := l.refillIfCascaded(b, done, req, kind, line, info); gone {
			return d, s
		}
		// L2 keeps its copy and remains the owner.
	case ReadEx, ReadExNoData:
		// Exclusivity: invalidate every other on-chip copy, including
		// the L2's own (the line now lives dirty in the requester L1).
		// An inclusive L2 instead keeps its (now stale) copy as the
		// inclusion tag-holder.
		done = l.revokeRemote(done, line, info)
		l.invalidateSharers(b, line, info, req.ID)
		if !l.cfg.Inclusive {
			b.arr.Invalidate(line)
		}
		l.fill(b, done, req, line, cache.Modified, info)
		if gone, d, s := l.refillIfCascaded(b, done, req, kind, line, info); gone {
			return d, s
		}
		info.owner = int8(req.ID)
		info.dirty = true
	}
	info.lastReq = int8(req.ID)
	b.block(line, done)
	return done, SvcL2Hit
}

// refillIfCascaded handles an inclusive-ablation corner: processing the
// L1 victim of a fill can cascade into an L2 eviction whose back-
// invalidation removes the line just installed. The request is then
// simply replayed (the displaced ways are now invalid, so the replay
// terminates).
func (l *L2) refillIfCascaded(b *Bank, now sim.Time, req *l1.Cache, kind Kind, line cache.LineAddr, info *lineInfo) (bool, sim.Time, Svc) {
	if !l.cfg.Inclusive || info.sharers&(1<<uint(req.ID)) != 0 {
		return false, 0, 0
	}
	d, s := l.access(now, req, kind, line.Addr())
	return true, d, s
}

// revokeRemote obtains system-wide exclusivity for a line other nodes may
// share: remote sharers of a home-local line are invalidated through the
// home engine; for a remote-homed line the remote engine runs an upgrade
// (exclusive-without-data) transaction at the line's home.
func (l *L2) revokeRemote(now sim.Time, line cache.LineAddr, info *lineInfo) sim.Time {
	if info.remote != RemoteShared {
		return now
	}
	if l.remote.HomeIsLocal(line) {
		now = l.remote.Invalidate(now, line)
	} else {
		now, _, _ = l.remote.Fetch(now, Upgrade, line)
	}
	info.remote = RemoteNone
	return now
}

// traceOwner records an ownership-decision instant: the duplicate-tag
// owner of the line changed. Arg is the new owner's L1 ID, or ^0 when
// ownership returns to the L2 itself.
func (l *L2) traceOwner(at sim.Time, line cache.LineAddr, owner int8) {
	if l.tr == nil {
		return
	}
	arg := ^uint32(0)
	if owner >= 0 {
		arg = uint32(owner)
	}
	bank := int16(uint64(line) & uint64(l.cfg.Banks-1))
	l.tr.Instant(trace.L2, trace.KL2Owner, l.node, bank, uint64(line.Addr()), at, arg)
}

// serveByForward handles a line held only by on-chip L1s.
func (l *L2) serveByForward(b *Bank, start sim.Time, req *l1.Cache, kind Kind, line cache.LineAddr, info *lineInfo) (sim.Time, Svc) {
	l.Stats.Fwds++
	done := start + l.cfg.FwdLatency
	switch kind {
	case Read:
		// The owner supplies the data and downgrades; ownership passes
		// to the last requester (near-optimal replacement policy).
		if info.owner >= 0 {
			l.l1s[info.owner].Downgrade(line)
		}
		l.fill(b, done, req, line, cache.Shared, info)
		if gone, d, s := l.refillIfCascaded(b, done, req, kind, line, info); gone {
			return d, s
		}
		info.owner = int8(req.ID)
	case ReadEx, ReadExNoData:
		done = l.revokeRemote(done, line, info)
		l.invalidateSharers(b, line, info, req.ID)
		l.fill(b, done, req, line, cache.Modified, info)
		if gone, d, s := l.refillIfCascaded(b, done, req, kind, line, info); gone {
			return d, s
		}
		info.owner = int8(req.ID)
		info.dirty = true
	}
	l.traceOwner(done, line, info.owner)
	info.lastReq = int8(req.ID)
	b.block(line, done)
	return done, SvcL2Fwd
}

// serveMiss handles a line with no on-chip copy.
func (l *L2) serveMiss(b *Bank, start sim.Time, req *l1.Cache, kind Kind, line cache.LineAddr) (sim.Time, Svc) {
	var done sim.Time
	var svc Svc
	newInfo := lineInfo{owner: int8(req.ID), lastReq: int8(req.ID)}
	fillState := cache.Shared

	if l.remote.HomeIsLocal(line) {
		// The line and its directory arrive together from local memory
		// (the directory lives in the line's spare ECC bits).
		mem := l.mems[b.idx]
		crit, _ := mem.Read(start, line.Addr())
		done = crit + l.cfg.MemOverhead
		svc = SvcLocalMem
		l.Stats.LocalMem++
		switch rs := l.remote.LocalDirState(line); rs {
		case RemoteExclusive:
			// A remote node owns the line dirty: only after the
			// directory arrives do the protocol engines forward the
			// request to the owner.
			done, svc, _ = l.remote.Fetch(done, kind, line)
			if svc == SvcRemoteDirty {
				l.Stats.RemoteDirty++
			} else {
				l.Stats.Remote++
			}
			l.Stats.LocalMem--
			if kind == Read {
				// The owner's reply also updates home memory; the
				// line is now shared between us and the prior owner.
				newInfo.remote = RemoteShared
			}
		case RemoteShared:
			if kind == ReadEx || kind == ReadExNoData {
				inv := l.remote.Invalidate(done, line)
				if inv > done {
					done = inv
				}
				newInfo.remote = RemoteNone
			} else {
				newInfo.remote = RemoteShared
			}
		default:
			newInfo.remote = RemoteNone
		}
	} else {
		// Remote home: the remote engine handles the whole transaction.
		var excl bool
		done, svc, excl = l.remote.Fetch(start, kind, line)
		if svc == SvcRemoteDirty {
			l.Stats.RemoteDirty++
		} else {
			l.Stats.Remote++
		}
		if !excl {
			newInfo.remote = RemoteShared
		}
	}

	switch kind {
	case Read:
		// Clean-exclusive optimization: return an exclusive copy when
		// no other cache in the system holds the line.
		if newInfo.remote == RemoteNone && req.Kind == l1.Data {
			fillState = cache.Exclusive
		}
	case ReadEx, ReadExNoData:
		fillState = cache.Modified
		newInfo.dirty = true
		newInfo.remote = RemoteNone
	}

	// Home-side service of an on-chip miss: the L2 controller interprets
	// the (ECC-resident) directory inline and drives local memory — the
	// duty a dedicated home engine performs for remote requesters, so it
	// is traced as a protocol-engine home transaction.
	if svc == SvcLocalMem {
		l.tr.Span(trace.PE, trace.KHomeTx, l.node, int16(b.idx), uint64(line.Addr()), start, done, uint32(kind))
	}

	// The whole off-chip transaction holds one of the bank's pending
	// entries; when all entries are busy, the request queues.
	if withEntry := b.tsrf.Acquire(start, done-start); withEntry > done {
		done = withEntry
	}

	// Non-inclusive fill: the line goes straight to the L1. The L2 is
	// NOT allocated; it fills later, if ever, when the L1 replaces the
	// line and writes it back as owner. (The inclusive ablation
	// allocates here too, paying the duplicate capacity.) The insert
	// happens before fill so the record's stable slot pointer is the one
	// the downstream victim processing sees.
	info := b.info.Put(line, newInfo)
	l.fill(b, done, req, line, fillState, info)
	if l.cfg.Inclusive {
		if v := b.arr.Insert(line, cache.Shared); v.State.Valid() && v.Tag != line {
			l.l2Evicted(b, done, v.Tag)
		}
	}
	b.block(line, done)
	return done, svc
}

// upgrade handles a store to a line the requester holds Shared.
func (l *L2) upgrade(b *Bank, start sim.Time, req *l1.Cache, line cache.LineAddr, info *lineInfo) (sim.Time, Svc) {
	l.Stats.Upgrades++
	if info == nil {
		// The line was invalidated underneath the requester (e.g. by a
		// peer's ReadEx racing ahead); treat as a fresh ReadEx.
		return l.access(start, req, ReadEx, line.Addr())
	}
	done := start + l.cfg.HitLatency
	done = l.revokeRemote(done, line, info)
	l.invalidateSharers(b, line, info, req.ID)
	if !l.cfg.Inclusive {
		b.arr.Invalidate(line)
	}
	req.SetState(line, cache.Modified)
	info.sharers |= 1 << uint(req.ID)
	info.owner = int8(req.ID)
	info.lastReq = int8(req.ID)
	info.dirty = true
	b.block(line, done)
	return done, SvcL2Hit
}

// invalidateSharers drops every on-chip L1 copy except keep's. The ICS
// ordering property means no acknowledgments are needed, so this costs
// only the invalidation transfers, which we charge to the switch but not
// to the requester's critical path.
func (l *L2) invalidateSharers(b *Bank, line cache.LineAddr, info *lineInfo, keep int) {
	for id := 0; id < len(l.l1s); id++ {
		if id == keep || info.sharers&(1<<uint(id)) == 0 {
			continue
		}
		l.l1s[id].Invalidate(line)
		info.sharers &^= 1 << uint(id)
		l.Stats.Invals++
	}
	if keep >= 0 {
		info.sharers &= 1 << uint(keep)
	} else {
		info.sharers = 0
	}
}

// fill installs the line in the requesting L1 at time t and processes the
// displaced victim through its own bank.
func (l *L2) fill(b *Bank, t sim.Time, req *l1.Cache, line cache.LineAddr, st cache.MESI, info *lineInfo) {
	info.sharers |= 1 << uint(req.ID)
	victim := req.Fill(line, st)
	// Data transfer to the L1 occupies the switch.
	l.sw.Transfer(t, ics.High, cache.LineBytes, true)
	if victim.State.Valid() {
		l.l1Evicted(t, req.ID, victim.Tag, victim.State)
	}
}

// l1Evicted processes an L1 replacement notice: the duplicate tags are
// updated and, when the evicting L1 owned the line, the data is written
// back into the L2 (the only way the victim-cache L2 is ever filled).
// The victim's MESI state tells the bank whether the data was modified
// (an E line upgraded to M silently still arrives here as M).
//piranha:hotpath
func (l *L2) l1Evicted(now sim.Time, l1id int, line cache.LineAddr, st cache.MESI) {
	b := l.BankOf(line)
	info := b.info.Ref(line)
	if info == nil || info.sharers&(1<<uint(l1id)) == 0 {
		panic("l2: duplicate tags out of sync with L1 eviction")
	}
	info.sharers &^= 1 << uint(l1id)
	if st == cache.Modified {
		info.dirty = true
	}

	if info.owner != int8(l1id) {
		// Non-owner replacement: the L2 told this L1 not to write back
		// (piggybacked decision); only the duplicate tag changes.
		l.dropIfGone(b, line, info)
		return
	}

	// Owner replacement: write the data back into the L2 (even clean
	// lines — the L2 may have no copy under non-inclusion).
	l.Stats.WritebacksToL2++
	l.sw.Transfer(now, ics.Low, cache.LineBytes, false)
	start := b.ctl.Acquire(now, l.clock.Cycles(int64(l.cfg.BankCycles)))
	l2victim := b.arr.Insert(line, cache.Shared)
	info.owner = ownerL2
	l.traceOwner(start, line, ownerL2)
	if l2victim.State.Valid() && l2victim.Tag != line {
		l.l2Evicted(b, start, l2victim.Tag)
	}
}

// l2Evicted handles replacement of a line from the L2 array itself.
func (l *L2) l2Evicted(b *Bank, now sim.Time, line cache.LineAddr) {
	info := b.info.Ref(line)
	if info == nil {
		panic("l2: evicting line without info")
	}
	if info.sharers != 0 {
		if l.cfg.Inclusive {
			// Inclusion: evicting the L2 line back-invalidates every
			// L1 copy — the cost the Piranha design avoids.
			for id := 0; id < len(l.l1s); id++ {
				if info.sharers&(1<<uint(id)) == 0 {
					continue
				}
				if st := l.l1s[id].Invalidate(line); st == cache.Modified {
					info.dirty = true
				}
				info.sharers &^= 1 << uint(id)
				l.Stats.Invals++
			}
		} else {
			// Non-inclusive: other L1s still hold the line; ownership
			// (and responsibility for the eventual write-back) moves
			// to the last requester still sharing, or any sharer.
			next := info.lastReq
			if next < 0 || info.sharers&(1<<uint(next)) == 0 {
				for id := 0; id < len(l.l1s); id++ {
					if info.sharers&(1<<uint(id)) != 0 {
						next = int8(id)
						break
					}
				}
			}
			info.owner = next
			l.traceOwner(now, line, next)
			return
		}
	}
	// No L1 copies remain.
	if info.dirty && l.remote.HomeIsLocal(line) {
		l.Stats.WritebacksToMem++
		l.mems[b.idx].Write(now, line.Addr())
	} else if info.dirty {
		// Dirty line homed remotely: the remote engine writes it back.
		l.Stats.WritebacksToMem++
		l.remote.Writeback(now, line)
	}
	b.info.Delete(line)
}

// dropIfGone removes the bookkeeping when no on-chip copy remains.
//
//piranha:hotpath
func (l *L2) dropIfGone(b *Bank, line cache.LineAddr, info *lineInfo) {
	if info.sharers == 0 && b.arr.Lookup(line) == nil {
		b.info.Delete(line)
	}
}
