package l2

import (
	"testing"

	"piranha/internal/cache"
	"piranha/internal/ics"
	"piranha/internal/l1"
	"piranha/internal/sim"
)

// fakeMem is a fixed-latency memory channel.
type fakeMem struct {
	reads, writes int
}

func (m *fakeMem) Read(now sim.Time, _ cache.Addr) (sim.Time, sim.Time) {
	m.reads++
	return now + 60*sim.Nanosecond, now + 90*sim.Nanosecond
}

func (m *fakeMem) Write(now sim.Time, _ cache.Addr) sim.Time {
	m.writes++
	return now + 40*sim.Nanosecond
}

// rig is a full single-chip L2 test harness: 8 CPUs, 16 L1s, 8 banks.
type rig struct {
	l2   *L2
	d    []*l1.Cache // data L1 per CPU
	i    []*l1.Cache // instruction L1 per CPU
	mems []*fakeMem
}

func newRig(t testing.TB) *rig {
	clock := sim.MHz(500)
	r := &rig{}
	var l1s []*l1.Cache
	for cpu := 0; cpu < 8; cpu++ {
		d := l1.New(l1.Data, cpu, cpu*2, l1.DefaultConfig())
		i := l1.New(l1.Instruction, cpu, cpu*2+1, l1.DefaultConfig())
		r.d = append(r.d, d)
		r.i = append(r.i, i)
		l1s = append(l1s, d, i)
	}
	var mems []Memory
	for b := 0; b < 8; b++ {
		m := &fakeMem{}
		r.mems = append(r.mems, m)
		mems = append(mems, m)
	}
	r.l2 = New(DefaultConfig(), clock, l1s, mems, ics.New(ics.DefaultConfig(clock)), LocalOnly{})
	return r
}

func (r *rig) check(t *testing.T) {
	t.Helper()
	if err := r.l2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestColdReadFromMemory(t *testing.T) {
	r := newRig(t)
	a := cache.Addr(0x4000)
	done, svc := r.l2.Access(0, r.d[0], Read, a)
	if svc != SvcLocalMem {
		t.Fatalf("svc %v, want local-mem", svc)
	}
	if done < 60*sim.Nanosecond {
		t.Fatalf("memory fill completed too fast: %d ps", done)
	}
	// Clean-exclusive optimization: the lone data reader gets E.
	if st := r.d[0].State(a.Line()); st != cache.Exclusive {
		t.Fatalf("fill state %v, want E", st)
	}
	// Non-inclusion: the L2 array was NOT allocated.
	if r.l2.BankOf(a.Line()).arr.Lookup(a.Line()) != nil {
		t.Fatal("memory fill must bypass the L2 array")
	}
	r.check(t)
}

func TestInstructionReadGetsShared(t *testing.T) {
	r := newRig(t)
	a := cache.Addr(0x8000)
	_, svc := r.l2.Access(0, r.i[0], Read, a)
	if svc != SvcLocalMem {
		t.Fatalf("svc %v", svc)
	}
	if st := r.i[0].State(a.Line()); st != cache.Shared {
		t.Fatalf("iL1 fill state %v, want S", st)
	}
	r.check(t)
}

func TestReadForwardedFromPeerL1(t *testing.T) {
	r := newRig(t)
	a := cache.Addr(0x4000)
	r.l2.Access(0, r.d[0], Read, a)
	done, svc := r.l2.Access(1000, r.d[1], Read, a)
	if svc != SvcL2Fwd {
		t.Fatalf("svc %v, want L2-fwd", svc)
	}
	if lat := done - 1000; lat < r.l2.cfg.FwdLatency {
		t.Fatalf("forward latency %d ps below configured %d", lat, r.l2.cfg.FwdLatency)
	}
	// Prior exclusive holder downgraded; both now shared.
	if r.d[0].State(a.Line()) != cache.Shared || r.d[1].State(a.Line()) != cache.Shared {
		t.Fatal("states after forward not S/S")
	}
	// Ownership moved to the last requester.
	info := r.l2.BankOf(a.Line()).info.Ref(a.Line())
	if info.owner != int8(r.d[1].ID) {
		t.Fatalf("owner %d, want %d", info.owner, r.d[1].ID)
	}
	r.check(t)
}

func TestReadExInvalidatesPeers(t *testing.T) {
	r := newRig(t)
	a := cache.Addr(0x4000)
	r.l2.Access(0, r.d[0], Read, a)
	r.l2.Access(100, r.d[1], Read, a)
	_, svc := r.l2.Access(2000, r.d[2], ReadEx, a)
	if svc != SvcL2Fwd {
		t.Fatalf("svc %v, want L2-fwd (owner supplies)", svc)
	}
	if r.d[0].State(a.Line()) != cache.Invalid || r.d[1].State(a.Line()) != cache.Invalid {
		t.Fatal("peer copies not invalidated")
	}
	if r.d[2].State(a.Line()) != cache.Modified {
		t.Fatal("writer did not get M")
	}
	if r.l2.Stats.Invals == 0 {
		t.Fatal("no invalidations recorded")
	}
	r.check(t)
}

func TestUpgradeInvalidatesSharers(t *testing.T) {
	r := newRig(t)
	a := cache.Addr(0x1c0)
	r.l2.Access(0, r.d[0], Read, a)
	r.l2.Access(10, r.d[3], Read, a)
	at := 1 * sim.Millisecond // after earlier transactions drain
	done, svc := r.l2.Access(at, r.d[0], Upgrade, a)
	if svc != SvcL2Hit {
		t.Fatalf("upgrade svc %v", svc)
	}
	if lat := done - at; lat > 2*r.l2.cfg.HitLatency {
		t.Fatalf("on-chip upgrade latency %d too high", lat)
	}
	if r.d[0].State(a.Line()) != cache.Modified {
		t.Fatal("upgrader not M")
	}
	if r.d[3].State(a.Line()) != cache.Invalid {
		t.Fatal("sharer not invalidated")
	}
	if r.l2.Stats.Upgrades != 1 {
		t.Fatalf("upgrades %d", r.l2.Stats.Upgrades)
	}
	r.check(t)
}

// evictFrom forces line a out of the given L1 by filling conflicting lines
// through the L2 (keeping duplicate tags in sync).
func evictFrom(t *testing.T, r *rig, c *l1.Cache, a cache.Addr) {
	t.Helper()
	sets := c.Config().SizeBytes / cache.LineBytes / c.Config().Ways
	for k := 1; c.State(a.Line()) != cache.Invalid; k++ {
		conflict := cache.Addr(uint64(a) + uint64(k*sets*cache.LineBytes))
		r.l2.Access(sim.Time(k)*sim.Microsecond, c, Read, conflict)
		if k > 8 {
			t.Fatal("eviction did not occur")
		}
	}
}

func TestOwnerEvictionFillsL2(t *testing.T) {
	r := newRig(t)
	a := cache.Addr(0x4000)
	r.l2.Access(0, r.d[0], Read, a) // d0 owner (E)
	if r.l2.Stats.WritebacksToL2 != 0 {
		t.Fatal("premature writeback")
	}
	evictFrom(t, r, r.d[0], a)
	if r.l2.Stats.WritebacksToL2 != 1 {
		t.Fatalf("writebacks to L2 = %d, want 1", r.l2.Stats.WritebacksToL2)
	}
	// The line now lives in the L2: a re-read is an L2 hit.
	_, svc := r.l2.Access(1*sim.Millisecond, r.d[0], Read, a)
	if svc != SvcL2Hit {
		t.Fatalf("re-read svc %v, want L2-hit (victim cache)", svc)
	}
	r.check(t)
}

func TestNonOwnerEvictionIsSilent(t *testing.T) {
	r := newRig(t)
	a := cache.Addr(0x4000)
	r.l2.Access(0, r.d[0], Read, a)
	r.l2.Access(10, r.d[1], Read, a) // owner is now d1 (last requester)
	evictFrom(t, r, r.d[0], a)       // d0 is a non-owner: silent drop
	if r.l2.Stats.WritebacksToL2 != 0 {
		t.Fatalf("non-owner eviction wrote back (%d)", r.l2.Stats.WritebacksToL2)
	}
	// d1 still holds it; a third reader is forwarded.
	_, svc := r.l2.Access(1*sim.Millisecond, r.d[2], Read, a)
	if svc != SvcL2Fwd {
		t.Fatalf("svc %v, want L2-fwd", svc)
	}
	r.check(t)
}

func TestCleanOwnerEvictionStillWritesBack(t *testing.T) {
	// The paper: "even clean lines that are replaced from an L1 may
	// cause a write-back to the L2".
	r := newRig(t)
	a := cache.Addr(0x4000)
	r.l2.Access(0, r.i[0], Read, a) // instruction line: always clean
	evictFrom(t, r, r.i[0], a)
	if r.l2.Stats.WritebacksToL2 != 1 {
		t.Fatalf("clean owner eviction: writebacks=%d", r.l2.Stats.WritebacksToL2)
	}
	r.check(t)
}

func TestDirtyL2EvictionWritesMemory(t *testing.T) {
	r := newRig(t)
	bank := r.l2.banks[0]
	setsL2 := (r.l2.cfg.SizeBytes / r.l2.cfg.Banks) / cache.LineBytes / r.l2.cfg.Ways
	// Build 9 dirty lines that all map to L2 bank 0, set 0, and push
	// each into the L2 via owner eviction.
	now := sim.Time(0)
	for k := 0; k < 9; k++ {
		a := cache.Addr(uint64(k) * uint64(setsL2) * uint64(r.l2.cfg.Banks) * cache.LineBytes)
		r.l2.Access(now, r.d[0], ReadEx, a) // dirty in d0
		now += 10 * sim.Microsecond
		evictFrom(t, r, r.d[0], a) // writeback into L2 bank 0 set 0
		now += 10 * sim.Microsecond
	}
	_ = bank
	writes := 0
	for _, m := range r.mems {
		writes += m.writes
	}
	if writes == 0 {
		t.Fatal("9 dirty lines into an 8-way set: expected a memory writeback")
	}
	r.check(t)
}

func TestMissBreakdownCounts(t *testing.T) {
	r := newRig(t)
	a := cache.Addr(0x4000)
	r.l2.Access(0, r.d[0], Read, a)                 // local mem
	r.l2.Access(100, r.d[1], Read, a)               // fwd
	evictFrom(t, r, r.d[1], a)                      // owner eviction -> L2 fill
	r.l2.Access(1*sim.Millisecond, r.d[2], Read, a) // hmm: d0 still shares; owner transferred
	mb := r.l2.MissBreakdown()
	if mb.Total() == 0 || mb.L2Miss == 0 || mb.L2Fwd == 0 {
		t.Fatalf("breakdown %+v", mb)
	}
	r.check(t)
}

func TestPendingBlocksConflicts(t *testing.T) {
	r := newRig(t)
	a := cache.Addr(0x4000)
	done1, _ := r.l2.Access(0, r.d[0], Read, a)
	// A conflicting request issued mid-flight starts only after the
	// first transaction completes.
	done2, _ := r.l2.Access(1, r.d[1], Read, a)
	if done2 < done1 {
		t.Fatalf("conflicting request overtook: %d < %d", done2, done1)
	}
	r.check(t)
}

func TestRandomizedInvariants(t *testing.T) {
	r := newRig(t)
	rng := sim.NewRNG(1234)
	now := sim.Time(0)
	// A hot region plus a large cold region, random mixes of reads,
	// writes and upgrades from all 8 CPUs and both cache kinds.
	for i := 0; i < 30000; i++ {
		cpu := rng.Intn(8)
		var a cache.Addr
		if rng.Bool(0.3) {
			a = cache.Addr(rng.Intn(2048)) * cache.LineBytes // hot 128KB
		} else {
			a = cache.Addr(rng.Intn(1<<22)) * cache.LineBytes
		}
		now += sim.Time(rng.Intn(200)) * sim.Nanosecond
		if rng.Bool(0.25) {
			c := r.i[cpu]
			r.l2.Access(now, c, Read, a)
			continue
		}
		c := r.d[cpu]
		st := c.State(a.Line())
		switch {
		case rng.Bool(0.7): // load
			if st == cache.Invalid {
				r.l2.Access(now, c, Read, a)
			}
		default: // store
			switch st {
			case cache.Invalid:
				r.l2.Access(now, c, ReadEx, a)
			case cache.Shared:
				r.l2.Access(now, c, Upgrade, a)
			default:
				c.SetState(a.Line(), cache.Modified)
			}
		}
		if i%5000 == 4999 {
			if err := r.l2.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	r.check(t)
	mb := r.l2.MissBreakdown()
	if mb.Total() == 0 {
		t.Fatal("no misses recorded in stress test")
	}
}

func TestServeRemoteRead(t *testing.T) {
	r := newRig(t)
	a := cache.Addr(0x4000)
	r.l2.Access(0, r.d[0], ReadEx, a) // dirty on chip
	onChip, dirty, done := r.l2.ServeRemote(1000, a.Line(), false)
	if !onChip || !dirty {
		t.Fatalf("onChip=%v dirty=%v", onChip, dirty)
	}
	if done <= 1000 {
		t.Fatal("no latency charged")
	}
	// Copy downgraded, marked remotely shared, no longer dirty.
	if r.d[0].State(a.Line()) != cache.Shared {
		t.Fatal("owner not downgraded")
	}
	if r.l2.LineDirty(a.Line()) {
		t.Fatal("dirty flag should clear after home update")
	}
	// A local write must now invalidate remotely: check partial state.
	if r.l2.BankOf(a.Line()).info.Ref(a.Line()).remote != RemoteShared {
		t.Fatal("partial directory state not updated")
	}
	r.check(t)
}

func TestServeRemoteExclusive(t *testing.T) {
	r := newRig(t)
	a := cache.Addr(0x4000)
	r.l2.Access(0, r.d[0], Read, a)
	r.l2.Access(10, r.d[1], Read, a)
	onChip, _, _ := r.l2.ServeRemote(1000, a.Line(), true)
	if !onChip {
		t.Fatal("line was on chip")
	}
	if r.l2.HasLine(a.Line()) {
		t.Fatal("remote exclusive must purge all on-chip state")
	}
	if r.d[0].State(a.Line()) != cache.Invalid || r.d[1].State(a.Line()) != cache.Invalid {
		t.Fatal("L1 copies survived")
	}
	r.check(t)
}

func TestServeRemoteAbsent(t *testing.T) {
	r := newRig(t)
	onChip, dirty, done := r.l2.ServeRemote(500, cache.Addr(0x9999000).Line(), false)
	if onChip || dirty || done != 500 {
		t.Fatalf("absent line: onChip=%v dirty=%v done=%d", onChip, dirty, done)
	}
}

func TestAggregateCacheGrowsWithSharers(t *testing.T) {
	// The non-inclusive hierarchy's point: distinct lines in distinct
	// L1s all stay on chip even past L2 capacity. Fill 8 CPUs with
	// disjoint working sets and verify every line remains tracked.
	r := newRig(t)
	now := sim.Time(0)
	var lines []cache.LineAddr
	for cpu := 0; cpu < 8; cpu++ {
		for k := 0; k < 512; k++ { // 32 KB per CPU
			a := cache.Addr((uint64(cpu)<<24 | uint64(k)) * cache.LineBytes)
			r.l2.Access(now, r.d[cpu], Read, a)
			now += 100 * sim.Nanosecond
			lines = append(lines, a.Line())
		}
	}
	for _, l := range lines {
		if !r.l2.HasLine(l) {
			t.Fatalf("line %#x fell off chip", l)
		}
	}
	r.check(t)
}

func BenchmarkL2AccessMixed(b *testing.B) {
	r := newRig(b)
	rng := sim.NewRNG(4)
	now := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := r.d[rng.Intn(8)]
		a := cache.Addr(rng.Intn(1<<14)) * cache.LineBytes
		now += 50 * sim.Nanosecond
		switch c.State(a.Line()) {
		case cache.Invalid:
			r.l2.Access(now, c, Read, a)
		case cache.Shared:
			r.l2.Access(now, c, Upgrade, a)
		default:
			c.SetState(a.Line(), cache.Modified)
		}
	}
}

// newInclusiveRig builds the ablation configuration.
func newInclusiveRig(t testing.TB) *rig {
	clock := sim.MHz(500)
	r := &rig{}
	var l1s []*l1.Cache
	for cpu := 0; cpu < 8; cpu++ {
		d := l1.New(l1.Data, cpu, cpu*2, l1.DefaultConfig())
		i := l1.New(l1.Instruction, cpu, cpu*2+1, l1.DefaultConfig())
		r.d = append(r.d, d)
		r.i = append(r.i, i)
		l1s = append(l1s, d, i)
	}
	var mems []Memory
	for b := 0; b < 8; b++ {
		m := &fakeMem{}
		r.mems = append(r.mems, m)
		mems = append(mems, m)
	}
	cfg := DefaultConfig()
	cfg.Inclusive = true
	r.l2 = New(cfg, clock, l1s, mems, ics.New(ics.DefaultConfig(clock)), LocalOnly{})
	return r
}

func TestInclusiveFillAllocatesL2(t *testing.T) {
	r := newInclusiveRig(t)
	a := cache.Addr(0x4000)
	r.l2.Access(0, r.d[0], Read, a)
	if r.l2.BankOf(a.Line()).arr.Lookup(a.Line()) == nil {
		t.Fatal("inclusive fill must allocate the L2")
	}
	r.check(t)
}

func TestInclusiveBackInvalidation(t *testing.T) {
	r := newInclusiveRig(t)
	setsL2 := (r.l2.cfg.SizeBytes / r.l2.cfg.Banks) / cache.LineBytes / r.l2.cfg.Ways
	// Fill 9 lines mapping to the same L2 set from a single L1 whose
	// own sets don't conflict: the 9th L2 insertion back-invalidates
	// the L1 copy of the evicted line.
	var lines []cache.Addr
	for k := 0; k < 9; k++ {
		a := cache.Addr(uint64(k) * uint64(setsL2) * uint64(r.l2.cfg.Banks) * cache.LineBytes)
		lines = append(lines, a)
		r.l2.Access(sim.Time(k)*sim.Microsecond, r.d[0], Read, a)
	}
	invalidated := 0
	for _, a := range lines {
		if r.d[0].State(a.Line()) == cache.Invalid {
			invalidated++
		}
	}
	if invalidated == 0 {
		t.Fatal("9 lines in an 8-way inclusive set: expected a back-invalidation")
	}
	r.check(t)
}

func TestInclusiveStressInvariants(t *testing.T) {
	r := newInclusiveRig(t)
	rng := sim.NewRNG(4321)
	now := sim.Time(0)
	for i := 0; i < 20000; i++ {
		cpu := rng.Intn(8)
		a := cache.Addr(rng.Intn(1<<13)) * cache.LineBytes
		now += sim.Time(rng.Intn(200)) * sim.Nanosecond
		c := r.d[cpu]
		st := c.State(a.Line())
		switch {
		case rng.Bool(0.6):
			if st == cache.Invalid {
				r.l2.Access(now, c, Read, a)
			}
		default:
			switch st {
			case cache.Invalid:
				r.l2.Access(now, c, ReadEx, a)
			case cache.Shared:
				r.l2.Access(now, c, Upgrade, a)
			default:
				c.SetState(a.Line(), cache.Modified)
			}
		}
		if i%5000 == 4999 {
			if err := r.l2.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	r.check(t)
}

// caps snapshots every bank's dense-table capacities (info, pend).
func (r *rig) caps() (info, pend []int) {
	for _, b := range r.l2.banks {
		info = append(info, b.info.Cap())
		pend = append(pend, b.pend.Cap())
	}
	return
}

// TestDenseTablesRecycleSlotsUnderEvictionChurn: sustained traffic over
// a working set far larger than the L1s forces constant L1 evictions,
// ownership replacements, and dropIfGone/l2Evicted deletions. After a
// warm-up pass the dense line tables must have reached steady size —
// continued churn recycles tombstoned slots instead of growing the
// backing arrays.
func TestDenseTablesRecycleSlotsUnderEvictionChurn(t *testing.T) {
	r := newRig(t)
	now := sim.Time(0)
	churn := func(rounds int) {
		for round := 0; round < rounds; round++ {
			for i := 0; i < 8192; i++ {
				a := cache.Addr(i) * cache.LineBytes
				c := r.d[i%2] // two L1s: 4096 lines each, 4x their capacity
				kind := Read
				if i%5 == 0 {
					kind = ReadEx
				}
				if kind == ReadEx && c.State(a.Line()) == cache.Shared {
					kind = Upgrade
				}
				if kind == Read && c.State(a.Line()) != cache.Invalid {
					continue
				}
				now += 50 * sim.Nanosecond
				r.l2.Access(now, c, kind, a)
			}
		}
	}
	churn(2)
	infoBefore, pendBefore := r.caps()
	churn(10)
	infoAfter, pendAfter := r.caps()
	for i := range infoBefore {
		if infoAfter[i] != infoBefore[i] {
			t.Errorf("bank %d info table grew %d -> %d under steady churn",
				i, infoBefore[i], infoAfter[i])
		}
		if pendAfter[i] != pendBefore[i] {
			t.Errorf("bank %d pend table grew %d -> %d under steady churn",
				i, pendBefore[i], pendAfter[i])
		}
	}
	r.check(t)
}

// TestInfoSlotReuseUnderOwnershipReplacement: a line that is repeatedly
// invalidated off-chip (ServeRemote exclusive deletes its record) and
// refetched (serveMiss re-inserts it) must cycle through the dense
// table without growing it — the retry traffic TSRF timeout recovery
// generates looks exactly like this loop.
func TestInfoSlotReuseUnderOwnershipReplacement(t *testing.T) {
	r := newRig(t)
	a := cache.Addr(0x40000)
	b := r.l2.BankOf(a.Line())
	now := sim.Time(0)
	r.l2.Access(now, r.d[0], Read, a)
	capBefore := b.info.Cap()
	for i := 0; i < 10000; i++ {
		now += 200 * sim.Nanosecond
		onChip, _, done := r.l2.ServeRemote(now, a.Line(), true)
		if !onChip {
			t.Fatalf("iter %d: line vanished before remote invalidation", i)
		}
		if b.info.Ref(a.Line()) != nil {
			t.Fatalf("iter %d: record survived exclusive remote service", i)
		}
		now = done + sim.Nanosecond
		r.l2.Access(now, r.d[i%8], Read, a)
		if b.info.Ref(a.Line()) == nil {
			t.Fatalf("iter %d: refetch did not re-insert the record", i)
		}
	}
	if got := b.info.Cap(); got != capBefore {
		t.Errorf("info table grew %d -> %d across delete/re-insert churn", capBefore, got)
	}
	// pend is overwritten in place for the same line: exactly one entry.
	if b.pend.Len() != 1 {
		t.Errorf("pend entries = %d, want 1 (same-line blocks must overwrite)", b.pend.Len())
	}
	r.check(t)
}
