package l2

import (
	"fmt"

	"piranha/internal/cache"
	"piranha/internal/l1"
	"piranha/internal/sim"
	"piranha/internal/sortutil"
	"piranha/internal/stats"
)

// ServeRemote is the home-engine hook: a remote node requested a line
// whose home is this chip, and the line may be cached here. It performs
// the on-chip state changes (downgrade for a remote read, invalidation
// for a remote exclusive request) and reports whether the chip supplied
// the data and whether the on-chip copy was dirty.
//
// For a remote read the line becomes shared between this chip and the
// requester (the home's partial directory state is updated so later local
// writes know to invalidate remotely). For an exclusive request every
// on-chip copy is invalidated.
func (l *L2) ServeRemote(now sim.Time, line cache.LineAddr, exclusive bool) (onChip, dirty bool, done sim.Time) {
	b := l.BankOf(line)
	info := b.info.Ref(line)
	if info == nil {
		return false, false, now
	}
	start := b.occupy(l, now, line)
	done = start + l.cfg.FwdLatency
	dirty = info.dirty
	if exclusive {
		l.invalidateSharers(b, line, info, -1)
		b.arr.Invalidate(line)
		b.info.Delete(line)
	} else {
		for id := 0; id < len(l.l1s); id++ {
			if info.sharers&(1<<uint(id)) != 0 {
				l.l1s[id].Downgrade(line)
			}
		}
		info.remote = RemoteShared
		// The reply also updates home memory, so the on-chip copy is
		// no longer the only up-to-date one.
		info.dirty = false
	}
	b.block(line, done)
	return true, dirty, done
}

// FlushDirty forces a line's on-chip dirty state back to memory (the
// persistent-memory barrier of §2.7: the protocol engines intervene to
// push volatile cached state to safe memory). Cached copies remain, but
// downgraded to clean/shared. It reports whether a write-back happened
// and when it completed.
func (l *L2) FlushDirty(now sim.Time, line cache.LineAddr) (bool, sim.Time) {
	b := l.BankOf(line)
	info := b.info.Ref(line)
	if info == nil || !info.dirty {
		return false, now
	}
	start := b.occupy(l, now, line)
	for id := 0; id < len(l.l1s); id++ {
		if info.sharers&(1<<uint(id)) != 0 {
			l.l1s[id].Downgrade(line)
		}
	}
	info.dirty = false
	done := l.mems[b.idx].Write(start, line.Addr())
	l.Stats.WritebacksToMem++
	b.block(line, done)
	return true, done
}

// DirtyLines returns the on-chip dirty lines intersecting [lo, hi)
// (persistent-region barriers flush these). Banks are walked in index
// order and each bank's lines in address order, so the slice — and the
// flush traffic a barrier derives from it — is deterministic.
func (l *L2) DirtyLines(lo, hi cache.Addr) []cache.LineAddr {
	var out []cache.LineAddr
	for _, b := range l.banks {
		for _, line := range b.info.Keys() {
			if info := b.info.Ref(line); info.dirty && line.Addr() >= lo && line.Addr() < hi {
				out = append(out, line)
			}
		}
	}
	return out
}

// CrashVolatile models a power failure: every volatile cache loses its
// contents (L1s and the L2 array alike); only memory survives. Returns
// how many dirty lines were lost (the state a persistent-memory barrier
// would have saved).
func (l *L2) CrashVolatile() (lostDirty int) {
	for _, b := range l.banks {
		b.info.Range(func(line cache.LineAddr, info *lineInfo) bool {
			if info.dirty {
				lostDirty++
			}
			for id := 0; id < len(l.l1s); id++ {
				if info.sharers&(1<<uint(id)) != 0 {
					l.l1s[id].Invalidate(line)
				}
			}
			b.arr.Invalidate(line)
			return true
		})
		b.info.Reset()
		b.pend.Reset()
	}
	return lostDirty
}

// AddClient registers an additional L1-class client of the L2 — the I/O
// chip's PCI/X-front dL1 instance. It must be called before any traffic,
// and the client's ID must be the next free duplicate-tag slot.
func (l *L2) AddClient(c *l1.Cache) {
	if c.ID != len(l.l1s) {
		panic(fmt.Sprintf("l2: client ID %d, want %d", c.ID, len(l.l1s)))
	}
	if len(l.l1s) >= 32 {
		panic("l2: too many clients")
	}
	l.l1s = append(l.l1s, c)
}

// MarkRemoteShared records in the partial directory state that remote
// copies of a home-local line exist (used when the home engine exports a
// line that is also cached on-chip).
func (l *L2) MarkRemoteShared(line cache.LineAddr) {
	if info := l.BankOf(line).info.Ref(line); info != nil {
		info.remote = RemoteShared
	}
}

// HasLine reports whether any on-chip cache holds the line (tests, pe).
//
//piranha:hotpath
func (l *L2) HasLine(line cache.LineAddr) bool {
	return l.BankOf(line).info.Ref(line) != nil
}

// LineDirty reports the dirty status of an on-chip line.
//
//piranha:hotpath
func (l *L2) LineDirty(line cache.LineAddr) bool {
	if info := l.BankOf(line).info.Ref(line); info != nil {
		return info.dirty
	}
	return false
}

// MissBreakdown returns the Figure-6(b) decomposition of L1 misses.
// Upgrades are excluded: the line is already present in the L1, so no
// miss is being served.
func (l *L2) MissBreakdown() stats.MissBreakdown {
	return stats.MissBreakdown{
		L2Hit:  l.Stats.Hits,
		L2Fwd:  l.Stats.Fwds,
		L2Miss: l.Stats.LocalMem + l.Stats.Remote + l.Stats.RemoteDirty,
	}
}

// ResetStats clears the chip-level counters (after warmup).
func (l *L2) ResetStats() {
	l.Stats = Stats{}
	for _, b := range l.banks {
		b.PendWait = 0
		b.PendConflicts = 0
	}
}

// QueueStats reports queueing telemetry: total same-line pending-entry
// wait, total bank-controller wait, and total outstanding-entry wait.
func (l *L2) QueueStats() (pendWait, ctlWait, tsrfWait sim.Time, conflicts uint64) {
	for _, b := range l.banks {
		pendWait += b.PendWait
		ctlWait += b.ctl.WaitTime
		tsrfWait += sim.Time(b.tsrf.WaitTime)
		conflicts += b.PendConflicts
	}
	return
}

// CheckInvariants validates the structural invariants the design relies
// on. It is exercised heavily by tests and cheap enough to run after
// randomized workloads:
//
//  1. Duplicate tags are exact: a bank's sharer bitmask for a line equals
//     the set of L1s that actually hold it.
//  2. Single ownership: every tracked line has exactly one owner, and the
//     owner actually holds a copy (the L2 array if owner==L2).
//  3. At most one L1 holds a line in E or M, and then no other L1 holds
//     it at all and the L2 array does not hold it (non-inclusion of
//     exclusive lines).
//  4. Line info exists exactly for lines resident somewhere on chip.
func (l *L2) CheckInvariants() error {
	// Gather actual L1 residency.
	type res struct {
		mask   uint32
		excl   int // count of E/M holders
		states []cache.MESI
	}
	actual := make(map[cache.LineAddr]*res)
	for _, c := range l.l1s {
		for _, ln := range c.Contents() {
			r := actual[ln.Tag]
			if r == nil {
				r = &res{}
				actual[ln.Tag] = r
			}
			r.mask |= 1 << uint(c.ID)
			r.states = append(r.states, ln.State)
			if ln.State == cache.Exclusive || ln.State == cache.Modified {
				r.excl++
			}
		}
	}
	// Every actual line must be tracked with the exact mask. Lines are
	// visited in address order so that, when several invariants are broken
	// at once, the same violation is reported on every run.
	for _, line := range sortutil.Keys(actual) {
		r := actual[line]
		info := l.BankOf(line).info.Ref(line)
		if info == nil {
			return fmt.Errorf("line %#x held by L1s %#x but untracked", line, r.mask)
		}
		if info.sharers != r.mask {
			return fmt.Errorf("line %#x dup tags %#x, actual %#x", line, info.sharers, r.mask)
		}
		if r.excl > 1 {
			return fmt.Errorf("line %#x exclusive in %d L1s", line, r.excl)
		}
		if r.excl == 1 && len(r.states) > 1 {
			return fmt.Errorf("line %#x exclusive alongside sharers", line)
		}
		inL2 := l.BankOf(line).arr.Lookup(line) != nil
		if l.cfg.Inclusive {
			// Inclusion invariant: every L1-held line has an L2 tag.
			if !inL2 {
				return fmt.Errorf("line %#x held by L1s but absent from the inclusive L2", line)
			}
		} else if r.excl == 1 && inL2 {
			return fmt.Errorf("line %#x exclusive in an L1 and valid in L2", line)
		}
	}
	// Every tracked line must be resident and correctly owned.
	for _, b := range l.banks {
		for _, line := range b.info.Keys() {
			info := b.info.Ref(line)
			inL2 := b.arr.Lookup(line) != nil
			r := actual[line]
			var mask uint32
			if r != nil {
				mask = r.mask
			}
			if info.sharers != mask {
				return fmt.Errorf("line %#x dup tags %#x, actual %#x", line, info.sharers, mask)
			}
			if !inL2 && mask == 0 {
				return fmt.Errorf("line %#x tracked but resident nowhere", line)
			}
			if info.owner == ownerL2 {
				if !inL2 {
					return fmt.Errorf("line %#x owned by L2 but not in L2", line)
				}
			} else {
				if mask&(1<<uint(info.owner)) == 0 {
					return fmt.Errorf("line %#x owner L1 %d does not hold it", line, info.owner)
				}
				if inL2 && !l.cfg.Inclusive {
					return fmt.Errorf("line %#x in L2 but owned by L1 %d", line, info.owner)
				}
			}
		}
	}
	return nil
}
