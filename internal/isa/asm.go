package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled code image plus symbols.
type Program struct {
	Base   uint64 // load address of the first instruction
	Words  []uint32
	Labels map[string]uint64
}

// Assemble translates Alpha-subset assembly. Syntax (one instruction per
// line, ';' or '#' comments):
//
//	loop:   ldq   r1, 8(r2)       ; memory format: disp(base)
//	        addq  r1, 1, r1       ; operate, register or 0..255 literal
//	        stq   r1, 8(r2)
//	        subq  r3, 1, r3
//	        bne   r3, loop        ; branches take a label
//	        wh64  (r4)
//	        jsr   r26, (r5)
//	        ret   (r26)
//	        halt
//
// Assembly is position-dependent with Base as the load address.
func Assemble(src string, base uint64) (*Program, error) {
	type pend struct {
		line  int
		inst  Inst
		label string // branch target to resolve
		addr  uint64
	}
	labels := map[string]uint64{}
	var insts []pend
	addr := base

	parseReg := func(tok string) (Reg, error) {
		tok = strings.TrimSpace(tok)
		if tok == "zero" {
			return Zero, nil
		}
		if !strings.HasPrefix(tok, "r") {
			return 0, fmt.Errorf("expected register, got %q", tok)
		}
		v, err := strconv.Atoi(tok[1:])
		if err != nil || v < 0 || v > 31 {
			return 0, fmt.Errorf("bad register %q", tok)
		}
		return Reg(v), nil
	}
	parseMem := func(tok string) (Reg, int32, error) {
		tok = strings.TrimSpace(tok)
		i := strings.IndexByte(tok, '(')
		if i < 0 || !strings.HasSuffix(tok, ")") {
			return 0, 0, fmt.Errorf("expected disp(reg), got %q", tok)
		}
		disp := int64(0)
		if d := strings.TrimSpace(tok[:i]); d != "" {
			var err error
			disp, err = strconv.ParseInt(d, 0, 32)
			if err != nil || disp < -32768 || disp > 32767 {
				return 0, 0, fmt.Errorf("bad displacement %q", d)
			}
		}
		r, err := parseReg(tok[i+1 : len(tok)-1])
		return r, int32(disp), err
	}

	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		for _, c := range []string{";", "#"} {
			if i := strings.Index(line, c); i >= 0 {
				line = line[:i]
			}
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if _, dup := labels[name]; dup || name == "" {
				return nil, fmt.Errorf("line %d: bad or duplicate label %q", ln+1, name)
			}
			labels[name] = addr
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnem := strings.ToLower(fields[0])
		rest := ""
		if len(fields) > 1 {
			rest = fields[1]
		}
		args := strings.Split(rest, ",")
		for i := range args {
			args[i] = strings.TrimSpace(args[i])
		}
		if rest == "" {
			args = nil
		}

		p := pend{line: ln + 1, addr: addr}
		var err error
		switch mnem {
		case "halt":
			p.inst.Mnem = HALT
		case "lda", "ldah", "ldl", "ldq", "stl", "stq", "ldl_l", "ldq_l", "stl_c", "stq_c":
			mm := map[string]Mnemonic{
				"lda": LDA, "ldah": LDAH, "ldl": LDL, "ldq": LDQ,
				"stl": STL, "stq": STQ, "ldl_l": LDLl, "ldq_l": LDQl,
				"stl_c": STLc, "stq_c": STQc,
			}
			p.inst.Mnem = mm[mnem]
			if len(args) != 2 {
				err = fmt.Errorf("%s needs ra, disp(rb)", mnem)
				break
			}
			if p.inst.Ra, err = parseReg(args[0]); err != nil {
				break
			}
			p.inst.Rb, p.inst.Disp, err = parseMem(args[1])
		case "wh64":
			p.inst.Mnem = WH64
			if len(args) != 1 {
				err = fmt.Errorf("wh64 needs (rb)")
				break
			}
			p.inst.Rb, _, err = parseMem(args[0])
		case "addq", "subq", "mulq", "and", "bis", "xor", "sll", "srl", "cmpeq", "cmplt", "cmple":
			mm := map[string]Mnemonic{
				"addq": ADDQ, "subq": SUBQ, "mulq": MULQ, "and": AND,
				"bis": BIS, "xor": XOR, "sll": SLL, "srl": SRL,
				"cmpeq": CMPEQ, "cmplt": CMPLT, "cmple": CMPLE,
			}
			p.inst.Mnem = mm[mnem]
			if len(args) != 3 {
				err = fmt.Errorf("%s needs ra, rb|lit, rc", mnem)
				break
			}
			if p.inst.Ra, err = parseReg(args[0]); err != nil {
				break
			}
			if v, lerr := strconv.ParseUint(args[1], 0, 8); lerr == nil && !strings.HasPrefix(args[1], "r") {
				p.inst.Lit = uint8(v)
				p.inst.LitValid = true
			} else if p.inst.Rb, err = parseReg(args[1]); err != nil {
				break
			}
			p.inst.Rc, err = parseReg(args[2])
		case "br", "bsr", "beq", "bne", "blt", "bgt":
			mm := map[string]Mnemonic{"br": BR, "bsr": BSR, "beq": BEQ, "bne": BNE, "blt": BLT, "bgt": BGT}
			p.inst.Mnem = mm[mnem]
			switch len(args) {
			case 1: // br label
				p.inst.Ra = Zero
				if mnem == "bsr" {
					p.inst.Ra = RA
				}
				p.label = args[0]
			case 2: // beq r1, label
				if p.inst.Ra, err = parseReg(args[0]); err == nil {
					p.label = args[1]
				}
			default:
				err = fmt.Errorf("%s needs [ra,] label", mnem)
			}
		case "jmp", "jsr", "ret":
			mm := map[string]Mnemonic{"jmp": JMP, "jsr": JSR, "ret": RET}
			p.inst.Mnem = mm[mnem]
			switch len(args) {
			case 1: // jmp (rb) / ret (rb)
				p.inst.Ra = Zero
				if mnem == "ret" {
					p.inst.Rb = RA
					if args[0] != "" {
						p.inst.Rb, _, err = parseMem(args[0])
					}
					break
				}
				p.inst.Rb, _, err = parseMem(args[0])
			case 2: // jsr r26, (rb)
				if p.inst.Ra, err = parseReg(args[0]); err == nil {
					p.inst.Rb, _, err = parseMem(args[1])
				}
			default:
				err = fmt.Errorf("%s needs [ra,] (rb)", mnem)
			}
		default:
			err = fmt.Errorf("unknown mnemonic %q", mnem)
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		insts = append(insts, p)
		addr += 4
	}

	prog := &Program{Base: base, Labels: labels}
	for _, p := range insts {
		if p.label != "" {
			target, ok := labels[p.label]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown label %q", p.line, p.label)
			}
			p.inst.Disp = int32((int64(target) - int64(p.addr) - 4) / 4)
		}
		w, err := Encode(p.inst)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", p.line, err)
		}
		prog.Words = append(prog.Words, w)
	}
	return prog, nil
}
