package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Mnem: HALT},
		{Mnem: LDQ, Ra: 1, Rb: 2, Disp: 8},
		{Mnem: STQ, Ra: 3, Rb: 30, Disp: -16},
		{Mnem: LDL, Ra: 7, Rb: 8, Disp: 32767},
		{Mnem: STL, Ra: 9, Rb: 10, Disp: -32768},
		{Mnem: LDA, Ra: 1, Rb: Zero, Disp: 100},
		{Mnem: LDAH, Ra: 1, Rb: 1, Disp: 2},
		{Mnem: ADDQ, Ra: 1, Rb: 2, Rc: 3},
		{Mnem: ADDQ, Ra: 1, Lit: 255, LitValid: true, Rc: 3},
		{Mnem: SUBQ, Ra: 4, Rb: 5, Rc: 6},
		{Mnem: MULQ, Ra: 1, Lit: 10, LitValid: true, Rc: 2},
		{Mnem: AND, Ra: 1, Rb: 2, Rc: 3},
		{Mnem: BIS, Ra: 1, Rb: 2, Rc: 3},
		{Mnem: XOR, Ra: 1, Lit: 0xff, LitValid: true, Rc: 3},
		{Mnem: SLL, Ra: 1, Lit: 3, LitValid: true, Rc: 1},
		{Mnem: SRL, Ra: 1, Rb: 2, Rc: 1},
		{Mnem: CMPEQ, Ra: 1, Rb: 2, Rc: 3},
		{Mnem: CMPLT, Ra: 1, Rb: 2, Rc: 3},
		{Mnem: CMPLE, Ra: 1, Lit: 4, LitValid: true, Rc: 3},
		{Mnem: BR, Ra: Zero, Disp: 100},
		{Mnem: BSR, Ra: RA, Disp: -5},
		{Mnem: BEQ, Ra: 2, Disp: 1},
		{Mnem: BNE, Ra: 2, Disp: -1},
		{Mnem: BLT, Ra: 2, Disp: 1 << 19},
		{Mnem: BGT, Ra: 2, Disp: -(1 << 20)},
		{Mnem: WH64, Rb: 4},
		{Mnem: JSR, Ra: RA, Rb: 5},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("%v: %v", in.Mnem, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("%v: decode %#x: %v", in.Mnem, w, err)
		}
		if got.Mnem != in.Mnem {
			t.Fatalf("mnem %v -> %v", in.Mnem, got.Mnem)
		}
		switch in.Mnem {
		case HALT, WH64, JSR, JMP, RET:
		default:
			if got.Ra != in.Ra {
				t.Fatalf("%v: Ra %d -> %d", in.Mnem, in.Ra, got.Ra)
			}
		}
		if in.Disp != 0 && got.Disp != in.Disp {
			t.Fatalf("%v: disp %d -> %d", in.Mnem, in.Disp, got.Disp)
		}
		if in.LitValid && (!got.LitValid || got.Lit != in.Lit) {
			t.Fatalf("%v: literal lost", in.Mnem)
		}
	}
}

func TestBranchDisplacementRange(t *testing.T) {
	if _, err := Encode(Inst{Mnem: BR, Disp: 1 << 20}); err == nil {
		t.Fatal("out-of-range branch accepted")
	}
}

func TestMemoryQuadLong(t *testing.T) {
	m := NewMemory()
	m.Write8(0x1000, 0xdeadbeefcafef00d)
	if got := m.Read8(0x1000); got != 0xdeadbeefcafef00d {
		t.Fatalf("read8 %#x", got)
	}
	// ldl sign-extends.
	m.Write4(0x2000, 0x80000000)
	if got := m.Read4(0x2000); got != 0xffffffff80000000 {
		t.Fatalf("read4 sign extension: %#x", got)
	}
	// Cross-page access.
	m.Write8(8190, 0x1122334455667788)
	if got := m.Read8(8190); got != 0x1122334455667788 {
		t.Fatalf("cross-page read %#x", got)
	}
	f := func(a uint32, v uint64) bool {
		m.Write8(uint64(a), v)
		return m.Read8(uint64(a)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleAndRunSum(t *testing.T) {
	// Sum 1..10 into r1.
	p, err := Assemble(`
		lda  r1, 0(zero)
		lda  r2, 10(zero)
	loop:	addq r1, r2, r1
		subq r2, 1, r2
		bne  r2, loop
		halt
	`, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !m.Halt {
		t.Fatal("did not halt")
	}
	if m.R[1] != 55 {
		t.Fatalf("sum = %d, want 55", m.R[1])
	}
}

func TestLoadStoreProgram(t *testing.T) {
	p, err := Assemble(`
		lda  r2, 0(zero)
		ldah r2, 1(r2)        ; r2 = 0x10000... base 64 KB
		lda  r1, 42(zero)
		stq  r1, 16(r2)
		ldq  r3, 16(r2)
		halt
	`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.R[3] != 42 {
		t.Fatalf("r3 = %d", m.R[3])
	}
}

func TestSubroutineCall(t *testing.T) {
	p, err := Assemble(`
		lda  r5, 0(zero)
		ldah r5, 2(r5)       ; address of sub (0x20000)
		jsr  r26, (r5)
		addq r1, 1, r1       ; after return: r1 = 8
		halt
	`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Assemble(`
		lda  r1, 7(zero)
		ret  (r26)
	`, 0x20000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	for i, w := range sub.Words {
		m.Mem.Write4(sub.Base+uint64(i)*4, w)
	}
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.R[1] != 8 {
		t.Fatalf("r1 = %d, want 8", m.R[1])
	}
}

// recordTrace captures memory events.
type recordTrace struct {
	fetches, loads, stores, hints int
	deps                          int
}

func (r *recordTrace) Fetch(uint64) { r.fetches++ }
func (r *recordTrace) Load(_ uint64, d bool) {
	r.loads++
	if d {
		r.deps++
	}
}
func (r *recordTrace) Store(uint64)     { r.stores++ }
func (r *recordTrace) WriteHint(uint64) { r.hints++ }

func TestTraceEvents(t *testing.T) {
	p, err := Assemble(`
		lda  r2, 0(zero)
		ldah r2, 1(r2)
		stq  r2, 0(r2)       ; mem[r2] = r2 (a self-pointer)
		ldq  r3, 0(r2)       ; load
		ldq  r4, 0(r3)       ; pointer-chasing: depends on r3
		wh64 (r2)
		halt
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	tr := &recordTrace{}
	m.Tr = tr
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if tr.loads != 2 || tr.stores != 1 || tr.hints != 1 {
		t.Fatalf("trace %+v", tr)
	}
	if tr.deps != 1 {
		t.Fatalf("dependent loads %d, want 1", tr.deps)
	}
	if tr.fetches != int(m.Retired) {
		t.Fatalf("fetches %d != retired %d", tr.fetches, m.Retired)
	}
}

func TestWH64ZeroesLine(t *testing.T) {
	p, _ := Assemble(`
		lda  r2, 0(zero)
		ldah r2, 1(r2)
		lda  r1, 9(zero)
		stq  r1, 8(r2)
		wh64 (r2)
		ldq  r3, 8(r2)
		halt
	`, 0)
	m := NewMachine(p)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.R[3] != 0 {
		t.Fatalf("wh64 did not zero the line: r3=%d", m.R[3])
	}
}

func TestR31Hardwired(t *testing.T) {
	p, _ := Assemble(`
		lda  r31, 99(zero)
		addq r31, 5, r1
		halt
	`, 0)
	m := NewMachine(p)
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.R[1] != 5 {
		t.Fatalf("r31 not hardwired to zero: r1=%d", m.R[1])
	}
}

func TestAssemblerErrors(t *testing.T) {
	for i, src := range []string{
		"ldq r1",           // missing operand
		"ldq r99, 0(r1)",   // bad register
		"bne r1, nowhere",  // unknown label
		"frob r1, r2, r3",  // unknown mnemonic
		"addq r1, 300, r2", // literal out of range... parsed as reg -> error
		"x: halt\nx: halt", // duplicate label
	} {
		if _, err := Assemble(src, 0); err == nil {
			t.Fatalf("case %d (%q) accepted", i, src)
		}
	}
}

func TestRunLimit(t *testing.T) {
	p, _ := Assemble("loop: br loop", 0)
	m := NewMachine(p)
	n, err := m.Run(500)
	if err != nil || n != 500 {
		t.Fatalf("limit run: n=%d err=%v", n, err)
	}
	if m.Halt {
		t.Fatal("infinite loop halted")
	}
}

func TestLoadLockedStoreConditional(t *testing.T) {
	// A textbook Alpha atomic increment.
	p, err := Assemble(`
		lda   r2, 0(zero)
		ldah  r2, 1(r2)         ; counter address
	retry:	ldq_l r1, 0(r2)
		addq  r1, 1, r1
		stq_c r1, 0(r2)
		beq   r1, retry         ; r1=0 on failure
		ldq   r3, 0(r2)
		halt
	`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.R[3] != 1 {
		t.Fatalf("atomic increment result %d, want 1", m.R[3])
	}
}

func TestStoreConditionalFailsAfterInvalidation(t *testing.T) {
	p, err := Assemble(`
		lda   r2, 0(zero)
		ldah  r2, 1(r2)
		ldq_l r1, 0(r2)
		addq  r1, 1, r1
		stq_c r1, 0(r2)
		halt
	`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	// Run up to the ldq_l, then simulate a coherence invalidation.
	for i := 0; i < 3; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	m.ClearLockFlag()
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.R[1] != 0 {
		t.Fatalf("stq_c should fail after invalidation: r1=%d", m.R[1])
	}
	if got := m.Mem.Read8(0x10000); got != 0 {
		t.Fatalf("failed stq_c wrote memory: %d", got)
	}
}

func TestStoreConditionalFailsOnInterveningStore(t *testing.T) {
	p, err := Assemble(`
		lda   r2, 0(zero)
		ldah  r2, 1(r2)
		ldq_l r1, 0(r2)
		stq   r31, 0(r2)        ; intervening plain store to the line
		stq_c r1, 0(r2)
		halt
	`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.R[1] != 0 {
		t.Fatalf("stq_c should fail after intervening store: r1=%d", m.R[1])
	}
}

func TestLockedPairRoundTrip(t *testing.T) {
	for _, in := range []Inst{
		{Mnem: LDQl, Ra: 1, Rb: 2, Disp: 8},
		{Mnem: LDLl, Ra: 1, Rb: 2, Disp: -8},
		{Mnem: STQc, Ra: 3, Rb: 2, Disp: 16},
		{Mnem: STLc, Ra: 3, Rb: 2, Disp: 0},
	} {
		w, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(w)
		if err != nil || got.Mnem != in.Mnem || got.Disp != in.Disp {
			t.Fatalf("%v round trip: %+v err=%v", in.Mnem, got, err)
		}
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	// Random words must either decode or return an error — never panic
	// or mis-handle (exercises every decoder branch).
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true
		}
		// Anything decodable must re-encode to a word that decodes to
		// the same mnemonic.
		w2, err := Encode(in)
		if err != nil {
			return false
		}
		in2, err := Decode(w2)
		return err == nil && in2.Mnem == in.Mnem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
