package isa

import (
	"fmt"

	"piranha/internal/cache"
)

// Memory is the machine's sparse byte-addressable physical memory.
type Memory struct {
	pages map[uint64][]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{pages: make(map[uint64][]byte)} }

const memPageBytes = 8192

func (m *Memory) page(a uint64) []byte {
	pn := a / memPageBytes
	p, ok := m.pages[pn]
	if !ok {
		p = make([]byte, memPageBytes)
		m.pages[pn] = p
	}
	return p
}

// Read8 loads an unaligned-tolerant little-endian quadword.
func (m *Memory) Read8(a uint64) uint64 {
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.page(a + i)[(a+i)%memPageBytes]) << (8 * i)
	}
	return v
}

// Write8 stores a little-endian quadword.
func (m *Memory) Write8(a uint64, v uint64) {
	for i := uint64(0); i < 8; i++ {
		m.page(a + i)[(a+i)%memPageBytes] = byte(v >> (8 * i))
	}
}

// Read4 loads a longword, sign-extended per Alpha ldl.
func (m *Memory) Read4(a uint64) uint64 {
	var v uint32
	for i := uint64(0); i < 4; i++ {
		v |= uint32(m.page(a + i)[(a+i)%memPageBytes]) << (8 * i)
	}
	return uint64(int64(int32(v)))
}

// Write4 stores a longword.
func (m *Memory) Write4(a uint64, v uint32) {
	for i := uint64(0); i < 4; i++ {
		m.page(a + i)[(a+i)%memPageBytes] = byte(v >> (8 * i))
	}
}

// Trace receives the machine's architectural memory events so a timing
// model (internal/core's chip) can charge them; a nil Trace runs purely
// functionally.
type Trace interface {
	Fetch(pc uint64)
	Load(a uint64, dependent bool)
	Store(a uint64)
	WriteHint(a uint64)
}

// Machine is a functional Alpha-subset interpreter.
type Machine struct {
	PC   uint64
	R    [32]uint64
	Mem  *Memory
	Tr   Trace
	Halt bool

	// Retired counts executed instructions.
	Retired uint64
	// lastLoadReg tracks the destination of the previous load so the
	// trace can mark dependent (pointer-chasing) loads.
	lastLoadReg Reg
	hasLastLoad bool
	// lockFlag/lockAddr implement the Alpha load-locked/store-
	// conditional pair: ldx_l sets them; stx_c succeeds only while the
	// flag holds and the address matches the locked line.
	lockFlag bool
	lockAddr uint64
}

// ClearLockFlag models an intervening write to the locked line by
// another agent (coherence invalidation): the next stx_c fails. Tests
// and multi-machine harnesses drive this.
func (m *Machine) ClearLockFlag() { m.lockFlag = false }

// NewMachine returns a machine with the program loaded.
func NewMachine(p *Program) *Machine {
	m := &Machine{PC: p.Base, Mem: NewMemory()}
	for i, w := range p.Words {
		m.Mem.Write4(p.Base+uint64(i)*4, w)
	}
	return m
}

// reg reads a register (r31 is zero).
func (m *Machine) reg(r Reg) uint64 {
	if r == Zero {
		return 0
	}
	return m.R[r]
}

// setReg writes a register (r31 ignored).
func (m *Machine) setReg(r Reg, v uint64) {
	if r != Zero {
		m.R[r] = v
	}
}

// Step executes one instruction; it returns an error on undecodable words.
func (m *Machine) Step() error {
	if m.Halt {
		return nil
	}
	if m.Tr != nil {
		m.Tr.Fetch(m.PC)
	}
	w := uint32(m.Mem.Read4(m.PC))
	in, err := Decode(w)
	if err != nil {
		return fmt.Errorf("isa: at %#x: %v", m.PC, err)
	}
	next := m.PC + 4
	b := func() uint64 {
		if in.LitValid {
			return uint64(in.Lit)
		}
		return m.reg(in.Rb)
	}
	ea := func() uint64 { return m.reg(in.Rb) + uint64(int64(in.Disp)) }

	clearDep := true
	switch in.Mnem {
	case HALT:
		m.Halt = true
	case LDA:
		m.setReg(in.Ra, ea())
	case LDAH:
		m.setReg(in.Ra, m.reg(in.Rb)+uint64(int64(in.Disp)<<16))
	case LDQ, LDL:
		a := ea()
		if m.Tr != nil {
			dep := m.hasLastLoad && in.Rb == m.lastLoadReg
			m.Tr.Load(a, dep)
		}
		if in.Mnem == LDQ {
			m.setReg(in.Ra, m.Mem.Read8(a))
		} else {
			m.setReg(in.Ra, m.Mem.Read4(a))
		}
		m.lastLoadReg = in.Ra
		m.hasLastLoad = true
		clearDep = false
	case LDQl, LDLl:
		a := ea()
		if m.Tr != nil {
			dep := m.hasLastLoad && in.Rb == m.lastLoadReg
			m.Tr.Load(a, dep)
		}
		if in.Mnem == LDQl {
			m.setReg(in.Ra, m.Mem.Read8(a))
		} else {
			m.setReg(in.Ra, m.Mem.Read4(a))
		}
		m.lockFlag = true
		m.lockAddr = a &^ (cache.LineBytes - 1)
		m.lastLoadReg = in.Ra
		m.hasLastLoad = true
		clearDep = false
	case STQc, STLc:
		a := ea()
		ok := m.lockFlag && m.lockAddr == a&^(cache.LineBytes-1)
		m.lockFlag = false
		if ok {
			if m.Tr != nil {
				m.Tr.Store(a)
			}
			if in.Mnem == STQc {
				m.Mem.Write8(a, m.reg(in.Ra))
			} else {
				m.Mem.Write4(a, uint32(m.reg(in.Ra)))
			}
		}
		// Ra receives the success flag (Alpha semantics).
		m.setReg(in.Ra, boolTo64(ok))
	case STQ, STL:
		a := ea()
		if m.Tr != nil {
			m.Tr.Store(a)
		}
		if in.Mnem == STQ {
			m.Mem.Write8(a, m.reg(in.Ra))
		} else {
			m.Mem.Write4(a, uint32(m.reg(in.Ra)))
		}
		if m.lockFlag && m.lockAddr == a&^(cache.LineBytes-1) {
			m.lockFlag = false
		}
	case WH64:
		a := m.reg(in.Rb) &^ (cache.LineBytes - 1)
		if m.Tr != nil {
			m.Tr.WriteHint(a)
		}
		for i := uint64(0); i < cache.LineBytes; i += 8 {
			m.Mem.Write8(a+i, 0)
		}
	case ADDQ:
		m.setReg(in.Rc, m.reg(in.Ra)+b())
	case SUBQ:
		m.setReg(in.Rc, m.reg(in.Ra)-b())
	case MULQ:
		m.setReg(in.Rc, m.reg(in.Ra)*b())
	case AND:
		m.setReg(in.Rc, m.reg(in.Ra)&b())
	case BIS:
		m.setReg(in.Rc, m.reg(in.Ra)|b())
	case XOR:
		m.setReg(in.Rc, m.reg(in.Ra)^b())
	case SLL:
		m.setReg(in.Rc, m.reg(in.Ra)<<(b()&63))
	case SRL:
		m.setReg(in.Rc, m.reg(in.Ra)>>(b()&63))
	case CMPEQ:
		m.setReg(in.Rc, boolTo64(m.reg(in.Ra) == b()))
	case CMPLT:
		m.setReg(in.Rc, boolTo64(int64(m.reg(in.Ra)) < int64(b())))
	case CMPLE:
		m.setReg(in.Rc, boolTo64(int64(m.reg(in.Ra)) <= int64(b())))
	case BR, BSR:
		m.setReg(in.Ra, next)
		next = next + uint64(int64(in.Disp)*4)
	case BEQ, BNE, BLT, BGT:
		v := int64(m.reg(in.Ra))
		take := false
		switch in.Mnem {
		case BEQ:
			take = v == 0
		case BNE:
			take = v != 0
		case BLT:
			take = v < 0
		case BGT:
			take = v > 0
		}
		if take {
			next = next + uint64(int64(in.Disp)*4)
		}
	case JMP, RET:
		next = m.reg(in.Rb) &^ 3
		m.setReg(in.Ra, m.PC+4)
	case JSR:
		t := m.reg(in.Rb) &^ 3
		m.setReg(in.Ra, m.PC+4)
		next = t
	}
	if clearDep && isLoadBarrier(in.Mnem) {
		m.hasLastLoad = false
	}
	m.PC = next
	m.Retired++
	return nil
}

// isLoadBarrier: register-writing ALU ops between loads break the naive
// pointer-chase dependence heuristic only when they overwrite the chased
// register; keep the heuristic simple and only clear on branches.
func isLoadBarrier(m Mnemonic) bool {
	switch m {
	case BR, BSR, JSR, JMP, RET:
		return true
	}
	return false
}

func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Run executes until halt or limit instructions; it reports how many ran.
func (m *Machine) Run(limit uint64) (uint64, error) {
	start := m.Retired
	for !m.Halt && m.Retired-start < limit {
		if err := m.Step(); err != nil {
			return m.Retired - start, err
		}
	}
	return m.Retired - start, nil
}
