// Package isa implements a faithful subset of the Alpha AXP instruction
// set (paper §2.1: the Piranha core "uses a single-issue, in-order design
// capable of executing the Alpha instruction set"): 32-bit instructions
// with real Alpha opcodes and formats, an assembler/disassembler, and a
// functional interpreter whose fetch/load/store stream drives the memory
// hierarchy for microbenchmarks (pointer chase, stream) and examples.
//
// The subset covers the integer architecture the simulator needs:
// memory format (lda/ldah/ldl/ldq/stl/stq, wh64), operate format with
// register and literal operands (addq, subq, mulq, and, bis, xor, sll,
// srl, cmpeq, cmplt, cmple), branch format (br, bsr, beq, bne, blt, bgt),
// memory-branch format (jmp, jsr, ret) and call_pal halt.
package isa

import "fmt"

// Reg is an Alpha integer register. R31 reads as zero and ignores writes.
type Reg uint8

// Zero is the hardwired zero register.
const Zero Reg = 31

// RA is the conventional return-address register.
const RA Reg = 26

// SP is the conventional stack pointer.
const SP Reg = 30

// Alpha opcode values (bits 31..26).
const (
	opCallPal = 0x00
	opLDA     = 0x08
	opLDAH    = 0x09
	opLDL     = 0x28
	opLDQ     = 0x29
	opLDLl    = 0x2A // ldl_l
	opLDQl    = 0x2B // ldq_l
	opSTL     = 0x2C
	opSTQ     = 0x2D
	opSTLc    = 0x2E // stl_c
	opSTQc    = 0x2F // stq_c
	opINTA    = 0x10 // addq/subq/cmp*
	opINTL    = 0x11 // and/bis/xor
	opINTS    = 0x12 // sll/srl
	opINTM    = 0x13 // mulq
	opMISC    = 0x18 // wh64
	opJSR     = 0x1A
	opBR      = 0x30
	opBSR     = 0x34
	opBEQ     = 0x39
	opBLT     = 0x3A
	opBNE     = 0x3D
	opBGT     = 0x3F
)

// Operate-format function codes.
const (
	fnADDQ  = 0x20
	fnSUBQ  = 0x29
	fnCMPEQ = 0x2D
	fnCMPLT = 0x4D
	fnCMPLE = 0x6D
	fnAND   = 0x00
	fnBIS   = 0x20
	fnXOR   = 0x40
	fnSLL   = 0x39
	fnSRL   = 0x34
	fnMULQ  = 0x20
	fnWH64  = 0xF800 >> 4 // memory-format function field for wh64
)

// Mnemonic identifies a decoded instruction.
type Mnemonic uint8

// Supported mnemonics.
const (
	HALT Mnemonic = iota
	LDA
	LDAH
	LDL
	LDQ
	LDLl // ldl_l: load longword locked
	LDQl // ldq_l: load quadword locked
	STL
	STQ
	STLc // stl_c: store longword conditional
	STQc // stq_c: store quadword conditional
	WH64
	ADDQ
	SUBQ
	MULQ
	AND
	BIS
	XOR
	SLL
	SRL
	CMPEQ
	CMPLT
	CMPLE
	BR
	BSR
	BEQ
	BNE
	BLT
	BGT
	JMP
	JSR
	RET
)

var mnemNames = map[Mnemonic]string{
	HALT: "halt", LDA: "lda", LDAH: "ldah", LDL: "ldl", LDQ: "ldq",
	LDLl: "ldl_l", LDQl: "ldq_l", STLc: "stl_c", STQc: "stq_c",
	STL: "stl", STQ: "stq", WH64: "wh64", ADDQ: "addq", SUBQ: "subq",
	MULQ: "mulq", AND: "and", BIS: "bis", XOR: "xor", SLL: "sll",
	SRL: "srl", CMPEQ: "cmpeq", CMPLT: "cmplt", CMPLE: "cmple",
	BR: "br", BSR: "bsr", BEQ: "beq", BNE: "bne", BLT: "blt", BGT: "bgt",
	JMP: "jmp", JSR: "jsr", RET: "ret",
}

func (m Mnemonic) String() string { return mnemNames[m] }

// Inst is a decoded instruction.
type Inst struct {
	Mnem Mnemonic
	Ra   Reg
	Rb   Reg
	Rc   Reg
	// Disp is the sign-extended 16-bit memory displacement or the
	// 21-bit branch displacement (in instructions).
	Disp int32
	// Lit is the 8-bit literal for operate format; LitValid selects it
	// over Rb.
	Lit      uint8
	LitValid bool
}

// Encode packs an instruction into its 32-bit Alpha encoding.
func Encode(in Inst) (uint32, error) {
	mem := func(op uint32) uint32 {
		return op<<26 | uint32(in.Ra)<<21 | uint32(in.Rb)<<16 | uint32(uint16(in.Disp))
	}
	operate := func(op, fn uint32) uint32 {
		w := op<<26 | uint32(in.Ra)<<21 | uint32(in.Rc)
		if in.LitValid {
			return w | uint32(in.Lit)<<13 | 1<<12 | fn<<5
		}
		return w | uint32(in.Rb)<<16 | fn<<5
	}
	branch := func(op uint32) (uint32, error) {
		if in.Disp < -(1<<20) || in.Disp >= 1<<20 {
			return 0, fmt.Errorf("isa: branch displacement %d out of range", in.Disp)
		}
		return op<<26 | uint32(in.Ra)<<21 | uint32(in.Disp)&0x1fffff, nil
	}
	switch in.Mnem {
	case HALT:
		return opCallPal << 26, nil
	case LDA:
		return mem(opLDA), nil
	case LDAH:
		return mem(opLDAH), nil
	case LDL:
		return mem(opLDL), nil
	case LDQ:
		return mem(opLDQ), nil
	case LDLl:
		return mem(opLDLl), nil
	case LDQl:
		return mem(opLDQl), nil
	case STL:
		return mem(opSTL), nil
	case STQ:
		return mem(opSTQ), nil
	case STLc:
		return mem(opSTLc), nil
	case STQc:
		return mem(opSTQc), nil
	case WH64:
		return opMISC<<26 | uint32(in.Rb)<<16 | 0xF800, nil
	case ADDQ:
		return operate(opINTA, fnADDQ), nil
	case SUBQ:
		return operate(opINTA, fnSUBQ), nil
	case CMPEQ:
		return operate(opINTA, fnCMPEQ), nil
	case CMPLT:
		return operate(opINTA, fnCMPLT), nil
	case CMPLE:
		return operate(opINTA, fnCMPLE), nil
	case AND:
		return operate(opINTL, fnAND), nil
	case BIS:
		return operate(opINTL, fnBIS), nil
	case XOR:
		return operate(opINTL, fnXOR), nil
	case SLL:
		return operate(opINTS, fnSLL), nil
	case SRL:
		return operate(opINTS, fnSRL), nil
	case MULQ:
		return operate(opINTM, fnMULQ), nil
	case BR:
		return branch(opBR)
	case BSR:
		return branch(opBSR)
	case BEQ:
		return branch(opBEQ)
	case BNE:
		return branch(opBNE)
	case BLT:
		return branch(opBLT)
	case BGT:
		return branch(opBGT)
	case JMP, RET:
		return opJSR<<26 | uint32(in.Ra)<<21 | uint32(in.Rb)<<16, nil
	case JSR:
		return opJSR<<26 | uint32(in.Ra)<<21 | uint32(in.Rb)<<16 | 1<<14, nil
	}
	return 0, fmt.Errorf("isa: cannot encode %v", in.Mnem)
}

// Decode unpacks a 32-bit word.
func Decode(w uint32) (Inst, error) {
	op := w >> 26
	ra := Reg(w >> 21 & 31)
	rb := Reg(w >> 16 & 31)
	in := Inst{Ra: ra, Rb: rb}
	memDisp := int32(int16(w & 0xffff))
	brDisp := int32(w&0x1fffff) << 11 >> 11 // sign-extend 21 bits

	switch op {
	case opCallPal:
		in.Mnem = HALT
		return in, nil
	case opLDA, opLDAH, opLDL, opLDQ, opLDLl, opLDQl, opSTL, opSTQ, opSTLc, opSTQc:
		in.Disp = memDisp
		switch op {
		case opLDA:
			in.Mnem = LDA
		case opLDAH:
			in.Mnem = LDAH
		case opLDL:
			in.Mnem = LDL
		case opLDQ:
			in.Mnem = LDQ
		case opLDLl:
			in.Mnem = LDLl
		case opLDQl:
			in.Mnem = LDQl
		case opSTL:
			in.Mnem = STL
		case opSTQ:
			in.Mnem = STQ
		case opSTLc:
			in.Mnem = STLc
		case opSTQc:
			in.Mnem = STQc
		}
		return in, nil
	case opMISC:
		if w&0xffff == 0xF800 {
			in.Mnem = WH64
			return in, nil
		}
	case opINTA, opINTL, opINTS, opINTM:
		fn := w >> 5 & 0x7f
		in.Rc = Reg(w & 31)
		if w&(1<<12) != 0 {
			in.LitValid = true
			in.Lit = uint8(w >> 13 & 0xff)
		}
		type key struct{ op, fn uint32 }
		m := map[key]Mnemonic{
			{opINTA, fnADDQ}: ADDQ, {opINTA, fnSUBQ}: SUBQ,
			{opINTA, fnCMPEQ}: CMPEQ, {opINTA, fnCMPLT}: CMPLT,
			{opINTA, fnCMPLE}: CMPLE,
			{opINTL, fnAND}:   AND, {opINTL, fnBIS}: BIS, {opINTL, fnXOR}: XOR,
			{opINTS, fnSLL}: SLL, {opINTS, fnSRL}: SRL,
			{opINTM, fnMULQ}: MULQ,
		}
		if mn, ok := m[key{op, fn}]; ok {
			in.Mnem = mn
			return in, nil
		}
	case opJSR:
		if w>>14&3 == 1 {
			in.Mnem = JSR
		} else {
			in.Mnem = JMP
		}
		return in, nil
	case opBR, opBSR, opBEQ, opBNE, opBLT, opBGT:
		in.Disp = brDisp
		switch op {
		case opBR:
			in.Mnem = BR
		case opBSR:
			in.Mnem = BSR
		case opBEQ:
			in.Mnem = BEQ
		case opBNE:
			in.Mnem = BNE
		case opBLT:
			in.Mnem = BLT
		case opBGT:
			in.Mnem = BGT
		}
		return in, nil
	}
	return in, fmt.Errorf("isa: cannot decode %#08x", w)
}
