// Package det seeds determinism-analyzer violations for the fixture
// golden test. Comments marked "finding" are expected in the golden
// file; functions marked clean must produce nothing.
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Engine mimics the simulator's scheduling API surface.
type Engine struct{}

// Schedule mimics sim.Engine.Schedule.
func (e *Engine) Schedule(at int64, do func()) {}

// Wallclock reads the host clock twice: two findings.
func Wallclock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// Roll mixes a seeded generator (clean) with the global one (finding).
func Roll() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6) + rand.Intn(6)
}

// PrintAll emits output while ranging over a map: finding.
func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}

// ScheduleAll schedules events while ranging over a map: finding.
func ScheduleAll(e *Engine, m map[string]int64) {
	for _, at := range m {
		e.Schedule(at, nil)
	}
}

// Collect appends to an outer slice with no sorted pass: finding.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedCollect is the canonical collect-then-sort idiom: clean.
func SortedCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Mutate only rewrites the map itself, order-independently: clean.
func Mutate(m map[string]int) {
	for k, v := range m {
		m[k] = v + 1
	}
}

// Fork launches a goroutine outside the fan-out allowlist: finding.
func Fork(done chan struct{}) {
	go func() { close(done) }()
}

// ForkSchedule schedules from inside a launched goroutine — bypassing
// the staging API: two findings (the goroutine itself plus the
// scheduling call), and the direct-call form is one more pair.
func ForkSchedule(e *Engine, at int64) {
	go func() {
		e.Schedule(at, nil)
	}()
	go e.Schedule(at, nil)
}

// Suppressed demonstrates //piranha:allow: no finding may survive.
func Suppressed() time.Time {
	//piranha:allow determinism fixture demonstrates suppression
	return time.Now()
}

// Malformed carries a reason-less allow: the directive is reported and
// suppresses nothing, so the time.Now finding survives too.
func Malformed() time.Time {
	//piranha:allow determinism
	return time.Now()
}
