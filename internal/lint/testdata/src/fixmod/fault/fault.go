// Package fault seeds determinism-analyzer violations specific to
// fault-injection packages: here even explicitly seeded math/rand use is
// banned — fault schedules must flow from seeded sim.RNG streams.
package fault

import "math/rand"

// Roll draws a fault decision from a seeded *rand.Rand. Everywhere else
// the seeded constructor idiom is fine; in a fault package all three
// uses below (rand.New, rand.NewSource, the Intn method) are findings.
func Roll(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Clean draws from a hand-rolled deterministic generator — the sim.RNG
// shape — and must stay silent.
func Clean(state uint64) (uint64, uint64) {
	state ^= state << 13
	state ^= state >> 7
	state ^= state << 17
	return state, state % 10
}
