// Package nilg seeds nilguard fixture violations.
package nilg

// R is a trace-recorder-like type: callers hold a possibly-nil *R and
// call exported methods unconditionally.
//
//piranha:nilguard
type R struct {
	n int
}

// Good begins with the guard: clean.
func (r *R) Good() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Enabled uses the single-statement predicate form: clean.
func (r *R) Enabled() bool { return r != nil }

// Both uses the leading || guard: clean.
func (r *R) Both(limit int) int {
	if r == nil || r.n > limit {
		return 0
	}
	return r.n
}

// Bad dereferences the receiver with no guard: finding.
func (r *R) Bad() int { return r.n }

// Value has a value receiver, which defeats the nil contract: finding.
func (r R) Value() int { return r.n }

// internal is unexported: exempt.
func (r *R) internal() int { return r.n }

// Plain is not annotated; its methods are exempt.
type Plain struct{ n int }

// Loose has no guard but Plain is not a nilguard type: clean.
func (p *Plain) Loose() int { return p.n }
