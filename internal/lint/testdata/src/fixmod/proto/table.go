package proto

// The ledger below seeds one entry of each interesting class:
//
//piranha:unreachable Owned Put an owned line is never re-upgraded
//piranha:unreachable Idle * stale entry: idle is fully handled below
//piranha:unreachable Bogus Get unknown state name

type network struct{}

// Send delivers one message.
func (network) Send(dst int, msg Kind) {}

// NakBusy is a NAK-named message a no-NAK protocol must never put on
// the wire (a var, so it does not join the Kind enum's constants).
var NakBusy = Put

// Dispatch covers Idle (with an exhaustive nested kind switch) and
// Shared, but not Owned: (Owned, Put) is ledgered, while (Owned, Get)
// and (Owned, GetX) are findings.
func Dispatch(s State, k Kind) int {
	switch s {
	case Idle:
		switch k {
		case Get, GetX:
			return 1
		case Put:
			return 2
		}
	case Shared:
		return 3
	}
	return 0
}

// Reply puts a NAK-named identifier in a sent-message position: finding.
func Reply(n network, dst int) {
	n.Send(dst, NakBusy)
}
