// Package proto seeds protocol-table fixture violations: a miniature
// protocol with a state enum, a message-kind enum, and a dispatch file.
package proto

// State is the fixture protocol-state enum.
type State uint8

// Protocol states.
const (
	Idle State = iota
	Shared
	Owned
)

// Kind is the fixture message-kind enum.
type Kind uint8

// Message kinds.
const (
	Get Kind = iota
	GetX
	Put
)
