// Package hot seeds hotpath-analyzer violations for the fixture golden
// test.
package hot

import "fmt"

type sink interface{ Sink() }

type impl struct{ n int }

func (impl) Sink() {}

func consume(s sink) {}

// Hot is annotated and deliberately dirty: every statement introduces
// an allocation the analyzer must flag.
//
//piranha:hotpath
func Hot(name string, n int) string {
	defer func() {}()
	m := map[string]int{}
	_ = m
	s := []int{1, 2}
	_ = s
	consume(impl{n: n})
	var boxed interface{} = n
	_ = boxed
	label := "x" + name
	return fmt.Sprintf("%s%d", label, n)
}

// Box converts its result into an interface return value: finding.
//
//piranha:hotpath
func Box(n int) interface{} {
	return n
}

// Convert is an explicit conversion to an interface type: finding.
//
//piranha:hotpath
func Convert(v impl) sink {
	return sink(v)
}

// Clean is annotated and allocation-free: struct and array literals,
// builtins (panic's boxing is off the hot path), and arithmetic.
//
//piranha:hotpath
func Clean(n int) int {
	type point struct{ x, y int }
	p := point{x: n, y: n}
	a := [2]int{n, n}
	if n < 0 {
		panic("hot: negative")
	}
	return p.x + a[1]
}

// Unannotated may do anything: clean as far as hotpath is concerned.
func Unannotated(name string) string {
	return fmt.Sprintf("<%s>", name)
}
