package lint

// DefaultAnalyzers is the suite piranha-vet runs over this repository:
// all four analyzers, with goroutine fan-out confined to the allowlist —
// the experiment runner plus the parallel engine's phase-worker pool in
// internal/sim — and the protocol table checked against the
// directory-state × request-kind cross-product. Even inside the
// allowlist, goroutines may not call Schedule/After directly; the
// determinism analyzer holds them to the staging API.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		Determinism("internal/runner", "internal/sim"),
		Hotpath(),
		ProtocolTable(PiranhaProto),
		NilGuard(),
	}
}
