package lint

// DefaultAnalyzers is the suite piranha-vet runs over this repository:
// all four analyzers, with goroutine fan-out confined to the experiment
// runner and the protocol table checked against the directory-state ×
// request-kind cross-product.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		Determinism("internal/runner"),
		Hotpath(),
		ProtocolTable(PiranhaProto),
		NilGuard(),
	}
}
