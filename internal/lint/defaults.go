package lint

import "piranha/internal/protocol"

// DefaultAnalyzers is the suite piranha-vet runs over this repository:
// the determinism, hotpath and nil-guard analyzers, plus one
// protocol-table analyzer per registered protocol — the registry
// (internal/protocol) names each protocol's dispatch files and enum
// pair, so registering a rival protocol automatically puts its dispatch
// under the same §3.5 completeness gate. Goroutine fan-out is confined
// to the allowlist — the experiment runner plus the parallel engine's
// phase-worker pool in internal/sim — and even inside the allowlist,
// goroutines may not call Schedule/After directly; the determinism
// analyzer holds them to the staging API.
func DefaultAnalyzers() []Analyzer {
	out := []Analyzer{
		Determinism("internal/runner", "internal/sim"),
		Hotpath(),
	}
	for _, s := range protocol.Registered() {
		out = append(out, ProtocolTable(ProtoConfig{
			Files:    s.Files,
			StatePkg: s.StatePkg, StateName: s.StateName,
			MsgPkg: s.MsgPkg, MsgName: s.MsgName,
		}))
	}
	return append(out, NilGuard())
}
