package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path ("piranha/internal/sim")
	Dir   string // absolute directory
	Name  string // package name
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is a fully parsed and type-checked Go module: every non-test
// package, sharing one FileSet, checked in dependency order.
type Module struct {
	Root string // absolute module root (directory holding go.mod)
	Path string // module path from the go.mod module directive
	Fset *token.FileSet
	Pkgs []*Package // dependency (topological) order

	byPath map[string]*Package
}

// FindModuleRoot walks up from dir to the nearest directory containing
// a go.mod file.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// LoadModule parses and type-checks the module rooted at root (which
// must contain go.mod). Test files, testdata directories, hidden and
// underscore directories, vendor trees, and nested modules are skipped.
// The toolchain's export data (falling back to GOROOT source) resolves
// standard-library imports; in-module imports resolve to the packages
// checked here, so no external driver or x/tools dependency is needed.
func LoadModule(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := modulePath(gomod)
	if modPath == "" {
		return nil, fmt.Errorf("%s: no module directive", filepath.Join(abs, "go.mod"))
	}
	m := &Module{
		Root:   abs,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}

	err = filepath.WalkDir(abs, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != abs {
			name := d.Name()
			if name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return fs.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return fs.SkipDir // nested module
			}
		}
		return m.parseDir(path)
	})
	if err != nil {
		return nil, err
	}

	order, err := m.topoSort()
	if err != nil {
		return nil, err
	}
	imp := &chainImporter{m: m}
	for _, p := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(p.Path, m.Fset, p.Files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.Path, err)
		}
		p.Types, p.Info = tp, info
	}
	m.Pkgs = order
	return m, nil
}

// parseDir parses the buildable non-test Go files of one directory into
// a Package (directories without Go files are skipped).
func (m *Module) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	p := &Package{Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		if excludedByBuildTag(f) {
			continue
		}
		if p.Name == "" {
			p.Name = f.Name.Name
		} else if p.Name != f.Name.Name {
			return fmt.Errorf("%s: packages %s and %s in one directory", dir, p.Name, f.Name.Name)
		}
		p.Files = append(p.Files, f)
	}
	if len(p.Files) == 0 {
		return nil
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return err
	}
	if rel == "." {
		p.Path = m.Path
	} else {
		p.Path = m.Path + "/" + filepath.ToSlash(rel)
	}
	m.byPath[p.Path] = p
	return nil
}

// excludedByBuildTag reports whether a file opts out of every build via
// a "//go:build ignore"-style constraint (the only form the module
// uses; full constraint evaluation is deliberately out of scope).
func excludedByBuildTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build ignore") ||
				strings.HasPrefix(c.Text, "// +build ignore") {
				return true
			}
		}
	}
	return false
}

// topoSort orders packages so that every in-module import precedes its
// importer.
func (m *Module) topoSort() ([]*Package, error) {
	paths := make([]string, 0, len(m.byPath))
	for path := range m.byPath {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	const (
		white = iota
		grey
		black
	)
	state := make(map[string]int, len(paths))
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		p := m.byPath[path]
		if p == nil || state[path] == black {
			return nil
		}
		if state[path] == grey {
			return fmt.Errorf("import cycle through %s", path)
		}
		state[path] = grey
		for _, dep := range m.moduleImports(p) {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, p)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImports lists p's imports that live inside this module, sorted.
func (m *Module) moduleImports(p *Package) []string {
	seen := make(map[string]bool)
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
				seen[path] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for path := range seen {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// chainImporter resolves in-module imports to the packages this loader
// already checked and everything else through the compiler's export
// data, falling back to type-checking GOROOT source (so the tool works
// both against a warm build cache and on a bare toolchain install).
type chainImporter struct {
	m   *Module
	gc  types.Importer
	src types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p := c.m.byPath[path]; p != nil && p.Types != nil {
		return p.Types, nil
	}
	if c.gc == nil {
		c.gc = importer.Default()
		c.src = importer.ForCompiler(c.m.Fset, "source", nil)
	}
	if pkg, err := c.gc.Import(path); err == nil {
		return pkg, nil
	}
	return c.src.Import(path)
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
