package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilGuard returns the analyzer enforcing the nil-receiver contract on
// types annotated //piranha:nilguard (the trace recorder): components
// hold a possibly-nil pointer and call methods unconditionally, so
// every exported method must be nil-safe. Accepted forms:
//
//	func (t *T) M(...) { if t == nil { return ... } ... }
//	func (t *T) M(...) { if t == nil || <more> { return ... } ... }
//	func (t *T) M() bool { return t == nil }   // or t != nil
//
// A value receiver defeats the contract entirely and is flagged too.
func NilGuard() Analyzer {
	return Analyzer{
		Name: "nilguard",
		Run: func(m *Module, p *Package) []Diagnostic {
			guarded := annotatedTypes(p)
			if len(guarded) == 0 {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
						continue
					}
					tname, ptr := recvTypeName(p, fd)
					if tname == "" || !guarded[tname] {
						continue
					}
					if !ptr {
						out = append(out, m.diag("nilguard", fd.Pos(),
							"exported method %s on nilguard type %s must use a pointer receiver to be nil-safe", fd.Name.Name, tname))
						continue
					}
					recv := recvName(fd)
					if recv == "" || recv == "_" {
						out = append(out, m.diag("nilguard", fd.Pos(),
							"exported method %s on nilguard type %s has no named receiver to nil-check", fd.Name.Name, tname))
						continue
					}
					if !nilGuarded(fd, recv) {
						out = append(out, m.diag("nilguard", fd.Pos(),
							"exported method %s on nilguard type %s must begin with `if %s == nil`", fd.Name.Name, tname, recv))
					}
				}
			}
			return out
		},
	}
}

// annotatedTypes collects the names of types in p whose declaration
// carries //piranha:nilguard (on the type spec or its enclosing decl).
func annotatedTypes(p *Package) map[string]bool {
	out := make(map[string]bool)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasDirective(ts.Doc, dirNilguard) || hasDirective(gd.Doc, dirNilguard) {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// recvTypeName resolves a method's receiver to its named type and
// whether the receiver is a pointer.
func recvTypeName(p *Package, fd *ast.FuncDecl) (name string, ptr bool) {
	if len(fd.Recv.List) != 1 {
		return "", false
	}
	t := p.Info.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return "", false
	}
	if pt, ok := t.(*types.Pointer); ok {
		ptr = true
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	return named.Obj().Name(), ptr
}

// recvName returns the receiver's identifier name ("" if anonymous).
func recvName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// nilGuarded reports whether fd's body satisfies the guard contract for
// receiver recv.
func nilGuarded(fd *ast.FuncDecl, recv string) bool {
	body := fd.Body.List
	if len(body) == 0 {
		return true // empty body is trivially nil-safe
	}
	// Single-statement predicate form: return recv ==/!= nil.
	if ret, ok := body[0].(*ast.ReturnStmt); ok && len(body) == 1 && len(ret.Results) == 1 {
		if isRecvNilCompare(ret.Results[0], recv, token.EQL) ||
			isRecvNilCompare(ret.Results[0], recv, token.NEQ) {
			return true
		}
	}
	// Leading-guard form: if recv == nil [|| ...] { ...; return }.
	ifs, ok := body[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	if !isRecvNilCompare(leftmostOr(ifs.Cond), recv, token.EQL) {
		return false
	}
	n := len(ifs.Body.List)
	if n == 0 {
		return false
	}
	_, isReturn := ifs.Body.List[n-1].(*ast.ReturnStmt)
	return isReturn
}

// leftmostOr descends the left spine of a || chain.
func leftmostOr(e ast.Expr) ast.Expr {
	for {
		be, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok || be.Op != token.LOR {
			return ast.Unparen(e)
		}
		e = be.X
	}
}

// isRecvNilCompare reports whether e is `recv op nil` (either operand
// order).
func isRecvNilCompare(e ast.Expr, recv string, op token.Token) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return false
	}
	return (isIdent(be.X, recv) && isIdent(be.Y, "nil")) ||
		(isIdent(be.Y, recv) && isIdent(be.X, "nil"))
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}
