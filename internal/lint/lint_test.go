package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture golden file")

// fixtureAnalyzers is the suite configured for the fixmod mini-module:
// no goroutine-exempt packages, and the protocol table points at the
// fixture's own enums.
func fixtureAnalyzers() []Analyzer {
	return []Analyzer{
		Determinism(),
		Hotpath(),
		ProtocolTable(ProtoConfig{File: "proto/table.go", StateName: "State", MsgName: "Kind"}),
		NilGuard(),
	}
}

var fixtureOnce = sync.OnceValues(func() ([]Diagnostic, error) {
	mod, err := LoadModule(filepath.Join("testdata", "src", "fixmod"))
	if err != nil {
		return nil, err
	}
	return Run(mod, fixtureAnalyzers()), nil
})

func fixtureDiags(t *testing.T) []Diagnostic {
	t.Helper()
	diags, err := fixtureOnce()
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	return diags
}

func TestFixtureGolden(t *testing.T) {
	var b strings.Builder
	for _, d := range fixtureDiags(t) {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	golden := filepath.Join("testdata", "golden", "fixmod.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got := b.String(); got != string(want) {
		t.Errorf("fixture diagnostics diverge from golden (run with -update to regenerate)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEachAnalyzerCatchesSeededViolation is the acceptance check that
// every analyzer fires on its seeded fixture violation.
func TestEachAnalyzerCatchesSeededViolation(t *testing.T) {
	counts := make(map[string]int)
	for _, d := range fixtureDiags(t) {
		counts[d.Analyzer]++
	}
	for _, a := range []string{"determinism", "hotpath", "protocoltable", "nilguard"} {
		if counts[a] == 0 {
			t.Errorf("analyzer %s reported nothing on the seeded fixture", a)
		}
	}
	// The fault-package sim.RNG provenance rule: the seeded rand.New /
	// rand.NewSource / Intn uses in fault/fault.go — fine anywhere else —
	// must all be findings there.
	simRNG := 0
	for _, d := range fixtureDiags(t) {
		if d.File == "fault/fault.go" && strings.Contains(d.Message, "sim.RNG") {
			simRNG++
		}
	}
	if simRNG < 3 {
		t.Errorf("fault-package sim.RNG rule reported %d findings in fault/fault.go, want the 3 seeded rand uses", simRNG)
	}
	// The seeded NAK send and the seeded exhaustiveness hole are
	// distinct protocoltable properties; require both.
	var sawNAK, sawHole, sawStale, sawUnknown bool
	for _, d := range fixtureDiags(t) {
		if d.Analyzer != "protocoltable" {
			continue
		}
		switch {
		case strings.Contains(d.Message, "sent-message position"):
			sawNAK = true
		case strings.Contains(d.Message, "does not handle"):
			sawHole = true
		case strings.Contains(d.Message, "stale"):
			sawStale = true
		case strings.Contains(d.Message, "unknown state"):
			sawUnknown = true
		}
	}
	for name, saw := range map[string]bool{
		"NAK-in-send": sawNAK, "exhaustiveness hole": sawHole,
		"stale ledger entry": sawStale, "unknown ledger name": sawUnknown,
	} {
		if !saw {
			t.Errorf("protocoltable did not report the seeded %s", name)
		}
	}
}

// TestSuppressionHonored checks that the //piranha:allow in the fixture
// swallows the finding on the line below it.
func TestSuppressionHonored(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "fixmod", "det", "det.go"))
	if err != nil {
		t.Fatal(err)
	}
	marker := 0
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "piranha:allow determinism fixture") {
			marker = i + 2 // 1-based line directly below the directive
		}
	}
	if marker == 0 {
		t.Fatal("suppression marker not found in fixture")
	}
	for _, d := range fixtureDiags(t) {
		if d.File == "det/det.go" && d.Line == marker {
			t.Errorf("suppressed diagnostic still reported: %s", d)
		}
	}
}

// TestCleanFixtureFunctionsSilent pins the negative cases: the
// collect-then-sort idiom, map self-mutation, the clean hot-path
// function, and the guarded recorder methods must produce nothing.
func TestCleanFixtureFunctionsSilent(t *testing.T) {
	mustBeSilent := func(file, fn string) {
		t.Helper()
		src, err := os.ReadFile(filepath.Join("testdata", "src", "fixmod", filepath.FromSlash(file)))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(src), "\n")
		start, end := 0, 0
		for i, line := range lines {
			if strings.HasPrefix(line, "func "+fn) || strings.Contains(line, ") "+fn+"(") {
				start = i + 1
				if strings.HasSuffix(line, "}") { // single-line function
					end = start
					break
				}
			}
			if start > 0 && line == "}" {
				end = i + 1
				break
			}
		}
		if start == 0 || end == 0 {
			t.Fatalf("function %s not found in %s", fn, file)
		}
		for _, d := range fixtureDiags(t) {
			if d.File == file && d.Line >= start && d.Line <= end {
				t.Errorf("clean function %s.%s produced %s", file, fn, d)
			}
		}
	}
	mustBeSilent("det/det.go", "SortedCollect")
	mustBeSilent("fault/fault.go", "Clean")
	mustBeSilent("det/det.go", "Mutate")
	mustBeSilent("hot/hot.go", "Clean")
	mustBeSilent("hot/hot.go", "Unannotated")
	mustBeSilent("nilg/nilg.go", "Good")
	mustBeSilent("nilg/nilg.go", "Enabled")
	mustBeSilent("nilg/nilg.go", "Both")
	mustBeSilent("nilg/nilg.go", "Loose")
}

// TestRepoClean is the self-test behind the CI gate: the repository's
// own tree must come out clean under the default analyzer suite.
func TestRepoClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(mod, DefaultAnalyzers()) {
		t.Errorf("repository not vet-clean: %s", d)
	}
}
