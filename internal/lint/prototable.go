package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// ProtoConfig names a protocol's dispatch files and the two enums whose
// cross-product they must cover. Packages are module-relative
// directories ("" means the file's own package). Any registered
// protocol (see internal/protocol) can be turned into one of these —
// the analyzer is not tied to the shipped table.
type ProtoConfig struct {
	File      string   // module-relative path of the dispatch file (used when Files is empty)
	Files     []string // module-relative paths of every dispatch file
	StatePkg  string   // package declaring the protocol-state enum
	StateName string   // its type name
	MsgPkg    string   // package declaring the message-kind enum
	MsgName   string   // its type name
}

// files is the effective dispatch-file list: Files when set, else the
// single legacy File.
func (c ProtoConfig) files() []string {
	if len(c.Files) > 0 {
		return c.Files
	}
	return []string{c.File}
}

var nakIdent = regexp.MustCompile(`Nak|NAK`)

// ProtocolTable returns the analyzer enforcing the paper's §3.5
// protocol completeness properties on each dispatch file:
//
//   - every switch over the state or message enum must handle every
//     declared constant (or carry a default clause), and each
//     unhandled (state, message) pair must appear in an explicit
//     `//piranha:unreachable STATE MSG reason` ledger (`*` wildcards
//     either coordinate);
//   - ledger entries that no longer excuse anything, or that name
//     unknown constants, are themselves findings (the ledger may not
//     rot);
//   - the protocol's primary file — the first in the config's list,
//     by convention its transition table — must contain at least one
//     switch over each enum (deleting the dispatch is not a way to
//     pass); satellite files are coverage-checked on whatever
//     switches they do contain;
//   - no identifier matching Nak|NAK may appear as an argument to a
//     send call: the protocol is NAK-free by design, and this makes
//     that a build-time property.
func ProtocolTable(cfg ProtoConfig) Analyzer {
	return Analyzer{
		Name: "protocoltable",
		Run: func(m *Module, p *Package) []Diagnostic {
			var out []Diagnostic
			for i, rel := range cfg.files() {
				file := findFile(m, p, rel)
				if file == nil {
					continue
				}
				fcfg := cfg
				fcfg.File = rel
				pt := &protoPass{m: m, p: p, cfg: fcfg, file: file, primary: i == 0}
				out = append(out, pt.run()...)
			}
			return out
		},
	}
}

// findFile returns the AST of the package file whose module-relative
// path is rel, if p contains it.
func findFile(m *Module, p *Package, rel string) *ast.File {
	for _, f := range p.Files {
		if name, _ := m.relPos(f.Pos()); name == rel {
			return f
		}
	}
	return nil
}

type protoPass struct {
	m    *Module
	p    *Package
	cfg  ProtoConfig
	file *ast.File
	// primary marks the protocol's first file, which must itself contain
	// the dispatch switches; satellite files only have the switches they
	// do contain coverage-checked.
	primary bool
	out     []Diagnostic
}

type ledgerEntry struct {
	state, msg string
	pos        ast.Node
	used       bool
}

func (pt *protoPass) run() []Diagnostic {
	stateType, stateConsts, err := pt.enum(pt.cfg.StatePkg, pt.cfg.StateName)
	if err != nil {
		return []Diagnostic{pt.m.diag("protocoltable", pt.file.Pos(), "%v", err)}
	}
	msgType, msgConsts, err := pt.enum(pt.cfg.MsgPkg, pt.cfg.MsgName)
	if err != nil {
		return []Diagnostic{pt.m.diag("protocoltable", pt.file.Pos(), "%v", err)}
	}

	ledger := pt.collectLedger(stateConsts, msgConsts)

	// Walk every switch over either enum, collecting unexcused holes.
	sawState, sawMsg := false, false
	ast.Inspect(pt.file, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tv, ok := pt.p.Info.Types[sw.Tag]
		if !ok || tv.Type == nil {
			return true
		}
		switch {
		case types.Identical(tv.Type, stateType):
			sawState = true
			pt.checkSwitch(sw, "state", pt.cfg.StateName, stateConsts, msgConsts, ledger, true)
		case types.Identical(tv.Type, msgType):
			sawMsg = true
			pt.checkSwitch(sw, "message", pt.cfg.MsgName, msgConsts, stateConsts, ledger, false)
		}
		return true
	})
	if pt.primary && !sawState {
		pt.out = append(pt.out, pt.m.diag("protocoltable", pt.file.Pos(),
			"%s contains no switch over %s.%s: the protocol dispatch must be switch-driven so coverage is checkable", pt.cfg.File, pt.statePkgName(), pt.cfg.StateName))
	}
	if pt.primary && !sawMsg {
		pt.out = append(pt.out, pt.m.diag("protocoltable", pt.file.Pos(),
			"%s contains no switch over %s.%s: the protocol dispatch must be switch-driven so coverage is checkable", pt.cfg.File, pt.msgPkgName(), pt.cfg.MsgName))
	}

	// Stale ledger entries.
	for _, e := range ledger {
		if !e.used {
			pt.out = append(pt.out, pt.m.diag("protocoltable", e.pos.Pos(),
				"stale //piranha:unreachable entry (%s, %s): every switch already handles it", e.state, e.msg))
		}
	}

	pt.checkNAK()
	return pt.out
}

func (pt *protoPass) statePkgName() string {
	if pt.cfg.StatePkg == "" {
		return pt.p.Name
	}
	return pt.cfg.StatePkg[strings.LastIndex(pt.cfg.StatePkg, "/")+1:]
}

func (pt *protoPass) msgPkgName() string {
	if pt.cfg.MsgPkg == "" {
		return pt.p.Name
	}
	return pt.cfg.MsgPkg[strings.LastIndex(pt.cfg.MsgPkg, "/")+1:]
}

// enum resolves a named enum type and its declared constants, in
// declaration order.
func (pt *protoPass) enum(relPkg, typeName string) (types.Type, []string, error) {
	pkgPath := pt.p.Path
	if relPkg != "" {
		pkgPath = pt.m.Path + "/" + relPkg
	}
	dp := pt.m.byPath[pkgPath]
	if dp == nil || dp.Types == nil {
		return nil, nil, fmt.Errorf("protocol enum package %s not found in module", pkgPath)
	}
	obj := dp.Types.Scope().Lookup(typeName)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil, fmt.Errorf("protocol enum type %s.%s not found", pkgPath, typeName)
	}
	type namedConst struct {
		name string
		pos  int
	}
	var consts []namedConst
	scope := dp.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), tn.Type()) {
			continue
		}
		if c.Val().Kind() == constant.Int {
			consts = append(consts, namedConst{name, int(c.Pos())})
		}
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].pos < consts[j].pos })
	names := make([]string, len(consts))
	for i, c := range consts {
		names[i] = c.name
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("protocol enum %s.%s declares no constants", pkgPath, typeName)
	}
	return tn.Type(), names, nil
}

// collectLedger parses the //piranha:unreachable directives of the
// dispatch file, validating constant names against the enums.
func (pt *protoPass) collectLedger(stateConsts, msgConsts []string) []*ledgerEntry {
	var out []*ledgerEntry
	for _, cg := range pt.file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, dirUnreachable)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 3 {
				pt.out = append(pt.out, pt.m.diag("protocoltable", c.Pos(),
					"malformed %s: want \"%s STATE MSG reason\"", dirUnreachable, dirUnreachable))
				continue
			}
			state, msg := fields[0], fields[1]
			if state != "*" && !contains(stateConsts, state) {
				pt.out = append(pt.out, pt.m.diag("protocoltable", c.Pos(),
					"unknown state %q in //piranha:unreachable entry (have %s)", state, strings.Join(stateConsts, ", ")))
				continue
			}
			if msg != "*" && !contains(msgConsts, msg) {
				pt.out = append(pt.out, pt.m.diag("protocoltable", c.Pos(),
					"unknown message %q in //piranha:unreachable entry (have %s)", msg, strings.Join(msgConsts, ", ")))
				continue
			}
			out = append(out, &ledgerEntry{state: state, msg: msg, pos: c})
		}
	}
	return out
}

// checkSwitch verifies one switch over an enum: every constant of the
// switched dimension (own) must be cased or defaulted; each hole
// expands to its cross-product pairs against the other dimension and
// must be fully excused by the ledger.
func (pt *protoPass) checkSwitch(sw *ast.SwitchStmt, dim, typeName string, own, other []string, ledger []*ledgerEntry, stateDim bool) {
	covered := make(map[string]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			if name := pt.constName(e); name != "" {
				covered[name] = true
			}
		}
	}
	if hasDefault {
		return
	}
	for _, c := range own {
		if covered[c] {
			continue
		}
		var missing []string
		for _, o := range other {
			state, msg := c, o
			if !stateDim {
				state, msg = o, c
			}
			if excuse(ledger, state, msg) {
				continue
			}
			missing = append(missing, "("+state+", "+msg+")")
		}
		if len(missing) > 0 {
			pt.out = append(pt.out, pt.m.diag("protocoltable", sw.Pos(),
				"switch on %s does not handle %s %s; pairs missing from the //piranha:unreachable ledger: %s",
				typeName, dim, c, strings.Join(missing, ", ")))
		}
	}
}

// constName resolves a case expression to the name of an enum constant.
func (pt *protoPass) constName(e ast.Expr) string {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	if c, ok := pt.p.Info.Uses[id].(*types.Const); ok {
		return c.Name()
	}
	return ""
}

// excuse reports whether the ledger covers (state, msg), marking the
// matching entries used.
func excuse(ledger []*ledgerEntry, state, msg string) bool {
	ok := false
	for _, e := range ledger {
		if (e.state == state || e.state == "*") && (e.msg == msg || e.msg == "*") {
			e.used = true
			ok = true
		}
	}
	return ok
}

// checkNAK flags NAK-looking identifiers in sent-message positions:
// any argument of a call to a function or method named Send/send.
func (pt *protoPass) checkNAK() {
	ast.Inspect(pt.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if name != "Send" && name != "send" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				id, ok := an.(*ast.Ident)
				if ok && nakIdent.MatchString(id.Name) {
					pt.out = append(pt.out, pt.m.diag("protocoltable", id.Pos(),
						"identifier %s in sent-message position: the protocol is NAK-free by design (§3.5)", id.Name))
				}
				return true
			})
		}
		return true
	})
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
