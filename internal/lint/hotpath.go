package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath returns the analyzer enforcing allocation-free bodies for
// functions annotated //piranha:hotpath (the event-engine schedule/pop
// path, trace record methods, and the L1/L2 lookup paths). Flagged
// constructs, each of which introduces a heap allocation or hidden
// call the steady-state simulation loop must not pay:
//
//   - function literals (closure environments escape);
//   - defer statements;
//   - any call into package fmt, and string concatenation;
//   - composite literals of map or slice type (struct and array
//     literals are value assignments and stay);
//   - conversions of concrete values to interface types, explicit or
//     implicit (call arguments, assignments, declarations, returns),
//     detected via go/types. Arguments to builtins (panic, append) are
//     exempt: a panic is already off the hot path.
func Hotpath() Analyzer {
	return Analyzer{
		Name: "hotpath",
		Run: func(m *Module, p *Package) []Diagnostic {
			var out []Diagnostic
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil || !hasDirective(fd.Doc, dirHotpath) {
						continue
					}
					h := &hotPass{m: m, p: p, fd: fd}
					h.check()
					out = append(out, h.out...)
				}
			}
			return out
		},
	}
}

type hotPass struct {
	m   *Module
	p   *Package
	fd  *ast.FuncDecl
	out []Diagnostic
}

func (h *hotPass) diag(pos token.Pos, format string, args ...any) {
	h.out = append(h.out, h.m.diag("hotpath", pos, format, args...))
}

func (h *hotPass) check() {
	name := h.fd.Name.Name
	ast.Inspect(h.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			h.diag(n.Pos(), "closure literal in hot-path function %s allocates its environment", name)
			return false // its body is off the annotated path
		case *ast.DeferStmt:
			h.diag(n.Pos(), "defer in hot-path function %s", name)
		case *ast.CallExpr:
			h.checkCall(n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && h.isStringExpr(n) {
				h.diag(n.Pos(), "string concatenation in hot-path function %s allocates", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && h.isStringExpr(n.Lhs[0]) {
				h.diag(n.Pos(), "string concatenation in hot-path function %s allocates", name)
			}
			h.checkAssign(n)
		case *ast.ValueSpec:
			h.checkValueSpec(n)
		case *ast.ReturnStmt:
			h.checkReturn(n)
		case *ast.CompositeLit:
			switch h.typeOf(n).Underlying().(type) {
			case *types.Map:
				h.diag(n.Pos(), "map literal in hot-path function %s allocates", name)
			case *types.Slice:
				h.diag(n.Pos(), "slice literal in hot-path function %s allocates", name)
			}
		}
		return true
	})
}

func (h *hotPass) typeOf(e ast.Expr) types.Type {
	if tv, ok := h.p.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// isStringExpr reports whether e has string type and is not a
// compile-time constant (constant folding costs nothing at run time).
func (h *hotPass) isStringExpr(e ast.Expr) bool {
	tv, ok := h.p.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// checkCall flags fmt calls, explicit interface conversions, and
// implicit interface conversions at argument positions.
func (h *hotPass) checkCall(call *ast.CallExpr) {
	// fmt anywhere on the hot path (Sprintf, Errorf, even Fprint).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := h.p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			h.diag(call.Pos(), "fmt.%s in hot-path function %s allocates", fn.Name(), h.fd.Name.Name)
			return
		}
	}
	tv, ok := h.p.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x).
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			h.checkConv(tv.Type, call.Args[0], call.Pos())
		}
		return
	}
	if tv.IsBuiltin() {
		return // panic/append/len arguments are exempt
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // s... passes the slice itself
			} else if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = slice.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			h.checkConv(pt, arg, arg.Pos())
		}
	}
}

// checkAssign flags implicit interface conversions in assignments.
func (h *hotPass) checkAssign(n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return // := takes the RHS type; tuple assigns can't convert
	}
	for i := range n.Lhs {
		h.checkConv(h.typeOf(n.Lhs[i]), n.Rhs[i], n.Rhs[i].Pos())
	}
}

// checkValueSpec flags implicit interface conversions in declarations
// with an explicit interface type (var x io.Writer = concreteValue).
func (h *hotPass) checkValueSpec(n *ast.ValueSpec) {
	if n.Type == nil {
		return
	}
	dst := h.typeOf(n.Type)
	for _, v := range n.Values {
		h.checkConv(dst, v, v.Pos())
	}
}

// checkReturn flags implicit interface conversions into the enclosing
// function's interface-typed results.
func (h *hotPass) checkReturn(n *ast.ReturnStmt) {
	fn, ok := h.p.Info.Defs[h.fd.Name].(*types.Func)
	if !ok {
		return
	}
	results := fn.Type().(*types.Signature).Results()
	if len(n.Results) != results.Len() {
		return // bare return or tuple-forwarding call
	}
	for i, r := range n.Results {
		h.checkConv(results.At(i).Type(), r, r.Pos())
	}
}

// checkConv reports a diagnostic when assigning expression src to a
// destination of interface type dst would box a concrete value.
func (h *hotPass) checkConv(dst types.Type, src ast.Expr, pos token.Pos) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := h.p.Info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	st := tv.Type
	if types.IsInterface(st) {
		return
	}
	if basic, ok := st.(*types.Basic); ok && basic.Info()&types.IsUntyped != 0 {
		st = types.Default(st)
	}
	h.diag(pos, "conversion of %s to interface %s in hot-path function %s allocates",
		types.TypeString(st, types.RelativeTo(h.p.Types)),
		types.TypeString(dst, types.RelativeTo(h.p.Types)), h.fd.Name.Name)
}
