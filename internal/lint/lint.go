// Package lint implements piranha-vet, the repository's static-analysis
// suite. Four analyzers enforce the properties the simulator's value
// rests on but the compiler cannot check (DESIGN.md §8):
//
//   - determinism: nothing may leak host nondeterminism (wall-clock
//     time, global math/rand, unsorted map iteration feeding output or
//     event scheduling, goroutines outside internal/runner) into a
//     simulation whose serial and parallel runs must be byte-identical.
//   - hotpath: functions annotated //piranha:hotpath must stay free of
//     allocation-introducing constructs (closures, defer, fmt, string
//     concatenation, map/slice literals, interface conversions).
//   - protocoltable: the directory-protocol dispatch in
//     internal/pe/transactions.go must cover the full cross-product of
//     protocol states and message kinds, with deliberate holes recorded
//     in a //piranha:unreachable ledger, and no NAK may be sent.
//   - nilguard: every exported method on //piranha:nilguard types must
//     begin with the nil-receiver guard the zero-overhead tracing
//     contract depends on.
//
// The suite is built on the standard library's go/ast, go/parser and
// go/types only — no golang.org/x/tools dependency — via the module
// loader in load.go.
//
// Annotation and suppression grammar (all as //-comments):
//
//	//piranha:hotpath                      (function doc comment)
//	//piranha:nilguard                     (type doc comment)
//	//piranha:unreachable STATE MSG reason (protocol file, * wildcards)
//	//piranha:allow analyzer reason        (same line as the finding or
//	                                        the line directly above)
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, in module-relative file coordinates.
type Diagnostic struct {
	File     string // module-relative, slash-separated
	Line     int
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check, run over every package of the module.
type Analyzer struct {
	Name string
	Run  func(m *Module, p *Package) []Diagnostic
}

// Directive comment prefixes.
const (
	dirAllow       = "//piranha:allow"
	dirHotpath     = "//piranha:hotpath"
	dirNilguard    = "//piranha:nilguard"
	dirUnreachable = "//piranha:unreachable"
)

// Run executes the analyzers over every package, applies
// //piranha:allow suppressions, and returns the surviving diagnostics
// sorted by position.
func Run(m *Module, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, p := range m.Pkgs {
			diags = append(diags, a.Run(m, p)...)
		}
	}
	diags = append(diags, m.checkDirectives()...)
	diags = m.applyAllows(diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// relPos converts a token position to module-relative (file, line).
func (m *Module) relPos(pos token.Pos) (string, int) {
	p := m.Fset.Position(pos)
	rel, err := filepath.Rel(m.Root, p.Filename)
	if err != nil {
		rel = p.Filename
	}
	return filepath.ToSlash(rel), p.Line
}

// diag builds a Diagnostic at pos.
func (m *Module) diag(analyzer string, pos token.Pos, format string, args ...any) Diagnostic {
	file, line := m.relPos(pos)
	return Diagnostic{File: file, Line: line, Analyzer: analyzer, Message: fmt.Sprintf(format, args...)}
}

// hasDirective reports whether a doc comment carries the directive
// (exact line, optionally with trailing text after a space).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// allowKey identifies one suppression site.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allows collects every well-formed //piranha:allow directive in the
// module, keyed by (file, line, analyzer).
func (m *Module) allows() map[allowKey]bool {
	out := make(map[allowKey]bool)
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, dirAllow)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						continue // malformed; reported by checkDirectives
					}
					file, line := m.relPos(c.Pos())
					out[allowKey{file, line, fields[0]}] = true
				}
			}
		}
	}
	return out
}

// applyAllows drops diagnostics suppressed by a matching
// //piranha:allow on the same line or the line directly above.
func (m *Module) applyAllows(diags []Diagnostic) []Diagnostic {
	allows := m.allows()
	out := diags[:0]
	for _, d := range diags {
		if allows[allowKey{d.File, d.Line, d.Analyzer}] ||
			allows[allowKey{d.File, d.Line - 1, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// checkDirectives reports malformed //piranha:allow directives (a
// suppression with no analyzer name or no reason silently suppresses
// nothing, which must not pass unnoticed).
func (m *Module) checkDirectives() []Diagnostic {
	var out []Diagnostic
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, dirAllow)
					if !ok {
						continue
					}
					if len(strings.Fields(rest)) < 2 {
						out = append(out, m.diag("directive", c.Pos(),
							"malformed %s: want \"%s analyzer reason\"", dirAllow, dirAllow))
					}
				}
			}
		}
	}
	return out
}

// relPkg returns p's module-relative directory ("" for the root
// package).
func (m *Module) relPkg(p *Package) string {
	if p.Path == m.Path {
		return ""
	}
	return strings.TrimPrefix(p.Path, m.Path+"/")
}

// calleeName returns the bare name of a call's callee: the identifier,
// or the selected method/function name ("" when dynamic).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
