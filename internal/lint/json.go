package lint

import (
	"encoding/json"
	"io"
)

// diagnosticJSON is the stable wire shape shared by piranha-vet -json
// and piranha-mc -json: tooling that consumes one consumes both.
type diagnosticJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON encodes diagnostics as a JSON array (never null — an empty
// run emits []), one object per finding in the given order. Output is
// deterministic for a given diagnostic list.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]diagnosticJSON, 0, len(diags))
	for _, d := range diags {
		out = append(out, diagnosticJSON(d))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
